/**
 * @file
 * End-to-end integration tests: build a full Viking session and run
 * all four system models, checking the paper's headline orderings —
 * Mobile and Thin-client fail the 60 FPS QoE, Multi-Furion meets it at
 * 1 player and degrades at 2, Coterie holds 60 FPS with a high cache
 * hit ratio and an order-of-magnitude lower network load.
 */

#include <gtest/gtest.h>

#include "core/session.hh"

namespace coterie::core {
namespace {

using world::gen::GameId;

/** Shared session (expensive to build; reused across tests). */
const Session &
vikingSession(int players)
{
    static std::unique_ptr<Session> one = [] {
        SessionParams params;
        params.players = 1;
        params.durationS = 30.0;
        return Session::create(GameId::Viking, params);
    }();
    static std::unique_ptr<Session> two = [] {
        SessionParams params;
        params.players = 2;
        params.durationS = 30.0;
        return Session::create(GameId::Viking, params);
    }();
    return players == 1 ? *one : *two;
}

TEST(Session, PreprocessingProducesUsableArtifacts)
{
    const Session &session = vikingSession(1);
    EXPECT_GT(session.partition().leaves.size(), 50u);
    EXPECT_EQ(session.distThresholds().size(),
              session.partition().leaves.size());
    EXPECT_GT(session.similarityParams().decay, 0.1);
    EXPECT_EQ(session.traces().playerCount(), 1);
    EXPECT_GT(session.traces().durationMs(), 29000.0);
}

TEST(Systems, MobileFailsSixtyFps)
{
    const SystemResult result = vikingSession(1).runMobileSystem();
    ASSERT_EQ(result.players.size(), 1u);
    EXPECT_LT(result.avgFps(), 35.0);
    EXPECT_GT(result.avgFps(), 10.0);
    EXPECT_GT(result.players[0].gpuPct, 80.0); // GPU-saturated
}

TEST(Systems, ThinClientFailsSixtyFpsAndHasLongLatency)
{
    const SystemResult result = vikingSession(1).runThinClientSystem();
    EXPECT_LT(result.avgFps(), 35.0);
    EXPECT_GT(result.avgInterFrameMs(), 30.0);
    EXPECT_LT(result.players[0].gpuPct, 25.0); // phone GPU nearly idle
    EXPECT_GT(result.players[0].beMbps, 50.0); // heavy streaming
}

TEST(Systems, MultiFurionMeetsQoeForOnePlayer)
{
    const SystemResult result = vikingSession(1).runMultiFurionSystem();
    EXPECT_GT(result.avgFps(), 55.0);
    EXPECT_LT(result.avgInterFrameMs(), 18.0);
    // Whole-BE prefetch load ~250-290 Mbps per player (Table 9).
    EXPECT_GT(result.players[0].beMbps, 150.0);
}

TEST(Systems, MultiFurionDegradesAtTwoPlayers)
{
    const SystemResult two = vikingSession(2).runMultiFurionSystem();
    const SystemResult one = vikingSession(1).runMultiFurionSystem();
    // The second player's transfers share the channel: per-frame
    // network delay rises substantially, and FPS cannot improve.
    EXPECT_GT(two.avgNetDelayMs(), one.avgNetDelayMs() * 1.3);
    EXPECT_LE(two.avgFps(), one.avgFps() + 0.5);
}

TEST(Systems, CoterieHoldsSixtyFpsForTwoPlayers)
{
    const SystemResult result = vikingSession(2).runCoterieSystem();
    EXPECT_GT(result.avgFps(), 57.0);
    EXPECT_LT(result.avgInterFrameMs(), 17.5);
    for (const PlayerMetrics &m : result.players) {
        EXPECT_LT(m.responsivenessMs, 17.0); // under 16.7 + slack
        EXPECT_LT(m.gpuPct, 75.0);           // within thermal envelope
        EXPECT_LT(m.cpuPct, 45.0);
    }
}

TEST(Systems, CoterieCacheHitRatioHigh)
{
    const SystemResult result = vikingSession(1).runCoterieSystem();
    // Table 6: 80.8% for Viking; allow simulation slack.
    EXPECT_GT(result.avgCacheHitRatio(), 0.6);
    EXPECT_GT(result.players[0].cacheStats.hits, 100u);
}

TEST(Systems, CoterieNetworkLoadFarBelowMultiFurion)
{
    const SystemResult coterie = vikingSession(1).runCoterieSystem();
    const SystemResult furion = vikingSession(1).runMultiFurionSystem();
    // Table 9: 10.6x-25.7x per-player reduction.
    EXPECT_GT(furion.players[0].beMbps,
              coterie.players[0].beMbps * 6.0);
}

TEST(Systems, CoterieWithoutCacheFetchesMore)
{
    const SystemResult with = vikingSession(1).runCoterieSystem(true);
    const SystemResult without =
        vikingSession(1).runCoterieSystem(false);
    EXPECT_GT(without.players[0].beMbps,
              with.players[0].beMbps * 2.0);
    // But still less than Multi-Furion (far BE frames are smaller).
    const SystemResult furion = vikingSession(1).runMultiFurionSystem();
    EXPECT_LT(without.players[0].beMbps, furion.players[0].beMbps);
}

TEST(Systems, ExactMatchCacheAlmostNeverHits)
{
    // Table 5 Version 1: players never revisit exact grid points.
    const SystemResult result =
        vikingSession(1).runMultiFurionSystem(/*withExactCache=*/true);
    EXPECT_LT(result.avgCacheHitRatio(), 0.25);
}

TEST(Systems, FlfPolicyAlsoSustainsSixtyFps)
{
    const SystemResult result =
        vikingSession(1).runCoterieSystem(true, ReplacementPolicy::Flf);
    EXPECT_GT(result.avgFps(), 57.0);
    EXPECT_GT(result.avgCacheHitRatio(), 0.6);
}

TEST(Systems, FrameSizesMatchPaperOrdering)
{
    const SystemResult coterie = vikingSession(1).runCoterieSystem();
    const SystemResult furion = vikingSession(1).runMultiFurionSystem();
    const SystemResult thin = vikingSession(1).runThinClientSystem();
    // far BE < whole BE; thin-client display frames are the largest.
    EXPECT_LT(coterie.players[0].frameKb, furion.players[0].frameKb);
    EXPECT_GT(thin.players[0].frameKb, coterie.players[0].frameKb);
}

TEST(Systems, OverhearingAddsLittleOverIntraPlayerReuse)
{
    // The Section 4.6 conclusion that justifies dropping overhearing
    // from the final design: with similar-frame intra-player reuse
    // already on, promiscuous-mode caching barely moves the needle.
    const Session &session = vikingSession(2);
    const SystemResult base = runCoterie(
        session.systemConfig(), session.distThresholds(), true,
        ReplacementPolicy::Lru, /*overhear=*/false);
    const SystemResult over = runCoterie(
        session.systemConfig(), session.distThresholds(), true,
        ReplacementPolicy::Lru, /*overhear=*/true);
    EXPECT_GT(over.avgFps(), 57.0);
    // Bandwidth improves at most modestly.
    double base_be = 0.0, over_be = 0.0;
    for (const PlayerMetrics &m : base.players)
        base_be += m.beMbps;
    for (const PlayerMetrics &m : over.players)
        over_be += m.beMbps;
    EXPECT_LE(over_be, base_be * 1.05);
    EXPECT_GT(over_be, base_be * 0.5);
}

TEST(Systems, FiTrafficOrdersOfMagnitudeBelowBe)
{
    const SystemResult result = vikingSession(2).runCoterieSystem();
    for (const PlayerMetrics &m : result.players) {
        EXPECT_LT(m.fiKbps / 1000.0, m.beMbps / 10.0);
    }
}

} // namespace
} // namespace coterie::core
