/**
 * @file
 * Tests for the discrete-event simulation queue: temporal ordering,
 * FIFO tie-breaking, horizon semantics, and reentrancy.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace coterie::sim {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.scheduleAt(5.0, [&] { order.push_back(2); });
    q.scheduleAt(1.0, [&] { order.push_back(1); });
    q.scheduleAt(9.0, [&] { order.push_back(3); });
    q.runToCompletion();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(q.now(), 9.0);
}

TEST(EventQueue, SameTimeIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.scheduleAt(3.0, [&, i] { order.push_back(i); });
    q.runToCompletion();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue q;
    double fired_at = -1.0;
    q.scheduleAt(10.0, [&] {
        q.scheduleIn(5.0, [&] { fired_at = q.now(); });
    });
    q.runToCompletion();
    EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(EventQueue, RunUntilStopsAtHorizon)
{
    EventQueue q;
    int fired = 0;
    q.scheduleAt(1.0, [&] { ++fired; });
    q.scheduleAt(100.0, [&] { ++fired; });
    q.runUntil(50.0);
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(q.now(), 50.0);
    EXPECT_EQ(q.pending(), 1u);
    q.runUntil(200.0);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue q;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 100)
            q.scheduleIn(1.0, chain);
    };
    q.scheduleIn(1.0, chain);
    q.runToCompletion();
    EXPECT_EQ(count, 100);
    EXPECT_DOUBLE_EQ(q.now(), 100.0);
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue q;
    q.scheduleAt(5.0, [] {});
    q.runUntil(2.0);
    q.reset();
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_DOUBLE_EQ(q.now(), 0.0);
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, StepReturnsFalseWhenEmpty)
{
    EventQueue q;
    EXPECT_FALSE(q.step());
    q.scheduleAt(1.0, [] {});
    EXPECT_TRUE(q.step());
    EXPECT_FALSE(q.step());
}

TEST(EventQueueDeath, PastSchedulingPanics)
{
    EventQueue q;
    q.scheduleAt(10.0, [] {});
    q.runToCompletion();
    EXPECT_DEATH(q.scheduleAt(5.0, [] {}), "past");
}

} // namespace
} // namespace coterie::sim
