/**
 * @file
 * Tests for the discrete-event simulation queues.
 *
 * The ordering contract (temporal order, same-timestamp FIFO
 * stability, relative scheduling from inside handlers, drain-to-empty
 * vs run-until-horizon, reentrancy) is typed-parameterized over the
 * serial `EventQueue` and the lane-based `ParallelEventQueue` — the
 * parallel merge must preserve exactly what the serial queue promises.
 * Lane-specific behaviour (lane clocks, barrier-deferred posts,
 * deterministic merge order, the conservative lookahead contract) is
 * covered separately below.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/lane_queue.hh"

namespace coterie::sim {
namespace {

/**
 * The ordering-contract suite runs against both engines. The parallel
 * engine with no lanes created degenerates to a single control heap,
 * which must be indistinguishable from the serial queue.
 */
template <typename Q> class EventQueueContract : public ::testing::Test
{
  protected:
    Q q;
};

using Engines = ::testing::Types<EventQueue, ParallelEventQueue>;
TYPED_TEST_SUITE(EventQueueContract, Engines);

TYPED_TEST(EventQueueContract, RunsEventsInTimeOrder)
{
    auto &q = this->q;
    std::vector<int> order;
    q.scheduleAt(5.0, [&] { order.push_back(2); });
    q.scheduleAt(1.0, [&] { order.push_back(1); });
    q.scheduleAt(9.0, [&] { order.push_back(3); });
    q.runToCompletion();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(q.now(), 9.0);
}

TYPED_TEST(EventQueueContract, SameTimeIsFifo)
{
    auto &q = this->q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.scheduleAt(3.0, [&, i] { order.push_back(i); });
    q.runToCompletion();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TYPED_TEST(EventQueueContract, ScheduleInFromInsideAHandlerIsRelative)
{
    auto &q = this->q;
    double fired_at = -1.0;
    q.scheduleAt(10.0, [&] {
        q.scheduleIn(5.0, [&] { fired_at = q.now(); });
    });
    q.runToCompletion();
    EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TYPED_TEST(EventQueueContract, RunUntilStopsAtHorizon)
{
    auto &q = this->q;
    int fired = 0;
    q.scheduleAt(1.0, [&] { ++fired; });
    q.scheduleAt(100.0, [&] { ++fired; });
    q.runUntil(50.0);
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(q.now(), 50.0);
    EXPECT_EQ(q.pending(), 1u);
    q.runUntil(200.0);
    EXPECT_EQ(fired, 2);
}

TYPED_TEST(EventQueueContract, EventsMayScheduleMoreEvents)
{
    auto &q = this->q;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 100)
            q.scheduleIn(1.0, chain);
    };
    q.scheduleIn(1.0, chain);
    q.runToCompletion();
    EXPECT_EQ(count, 100);
    EXPECT_DOUBLE_EQ(q.now(), 100.0);
    EXPECT_EQ(q.executedEvents(), 100u);
}

TYPED_TEST(EventQueueContract, ResetClearsEverything)
{
    auto &q = this->q;
    q.scheduleAt(5.0, [] {});
    q.runUntil(2.0);
    q.reset();
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_DOUBLE_EQ(q.now(), 0.0);
    EXPECT_FALSE(q.step());
}

TYPED_TEST(EventQueueContract, StepReturnsFalseWhenEmpty)
{
    auto &q = this->q;
    EXPECT_FALSE(q.step());
    q.scheduleAt(1.0, [] {});
    EXPECT_TRUE(q.step());
    EXPECT_FALSE(q.step());
}

TEST(EventQueueDeath, PastSchedulingPanics)
{
    EventQueue q;
    q.scheduleAt(10.0, [] {});
    q.runToCompletion();
    EXPECT_DEATH(q.scheduleAt(5.0, [] {}), "past");
}

// --- Lane-engine specifics ------------------------------------------

TEST(LaneQueue, LaneClockStartsAtCreationTime)
{
    ParallelEventQueue q;
    q.scheduleAt(7.0, [&] {
        const std::uint32_t lane = q.createLane();
        EXPECT_DOUBLE_EQ(q.laneNow(lane), 7.0);
        q.runInLane(lane, [&] {
            EXPECT_EQ(q.currentLane(), lane);
            EXPECT_DOUBLE_EQ(q.now(), 7.0);
            // Relative scheduling inside the lane is lane-relative.
            q.scheduleIn(3.0, [&] { EXPECT_DOUBLE_EQ(q.now(), 10.0); });
        });
    });
    q.runToCompletion();
    EXPECT_EQ(q.executedEvents(), 2u);
}

TEST(LaneQueue, LaneEventsRouteThroughTheSchedulingLane)
{
    ParallelEventQueue q;
    const std::uint32_t a = q.createLane();
    const std::uint32_t b = q.createLane();
    std::vector<std::string> log; // mutated only via postControl
    for (const auto &[lane, tag] :
         {std::pair{a, "a"}, std::pair{b, "b"}}) {
        q.runInLane(lane, [&, tag = std::string(tag)] {
            q.scheduleIn(1.0, [&, tag] {
                q.scheduleIn(1.0, [&, tag] {
                    q.postControl([&, tag] { log.push_back(tag + "2"); });
                });
                q.postControl([&, tag] { log.push_back(tag + "1"); });
            });
        });
    }
    q.runToCompletion();
    EXPECT_EQ(q.lanePending(a), 0u);
    EXPECT_EQ(q.lanePending(b), 0u);
    // With no control events and no cross-lane traffic both lanes
    // drain fully in one round; at the barrier posts drain in (lane
    // id, posted time, sequence) order — all of lane a's before any of
    // lane b's.
    EXPECT_EQ(log,
              (std::vector<std::string>{"a1", "a2", "b1", "b2"}));
}

TEST(LaneQueue, PostedActionsDrainBeforeControlEventsAtTheBarrier)
{
    ParallelEventQueue q;
    const std::uint32_t lane = q.createLane();
    std::vector<std::string> order;
    q.scheduleAt(10.0, [&] { order.push_back("control@10"); });
    q.runInLane(lane, [&] {
        q.scheduleAt(4.0, [&] {
            q.postControl([&] { order.push_back("posted@4"); });
        });
    });
    q.runToCompletion();
    EXPECT_EQ(order,
              (std::vector<std::string>{"posted@4", "control@10"}));
    // The control clock at the barrier had already advanced to the
    // round horizon, and ends at the last control event.
    EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

TEST(LaneQueue, MergeOrderIsLaneThenTimestampThenSequence)
{
    // Two sender lanes cross-schedule into a third; deliveries must
    // interleave by timestamp with lane id breaking ties, regardless
    // of which lane's events happened to run first.
    ParallelEventQueue q;
    q.noteLookaheadFloor(5.0);
    q.enableCrossLane();
    const std::uint32_t a = q.createLane();
    const std::uint32_t b = q.createLane();
    const std::uint32_t sink = q.createLane();
    std::vector<std::string> deliveries;
    auto deliver = [&](std::string tag) {
        return [&, tag = std::move(tag)] {
            q.postControl(
                [&, tag] { deliveries.push_back(tag); });
        };
    };
    q.runInLane(a, [&] {
        q.scheduleAt(1.0, [&, deliver] {
            q.scheduleCross(sink, 8.0, deliver("a@8"));
            q.scheduleCross(sink, 6.0, deliver("a@6"));
        });
    });
    q.runInLane(b, [&] {
        q.scheduleAt(1.0, [&, deliver] {
            q.scheduleCross(sink, 6.0, deliver("b@6"));
        });
    });
    q.runToCompletion();
    EXPECT_EQ(deliveries,
              (std::vector<std::string>{"a@6", "b@6", "a@8"}));
}

TEST(LaneQueue, CrossLaneRespectsTheLookaheadCap)
{
    // With cross-lane traffic enabled no lane may advance more than
    // the lookahead floor past the slowest lane in one round, so a
    // send issued at t can still land at t + lookahead.
    ParallelEventQueue q;
    q.noteLookaheadFloor(2.0);
    q.enableCrossLane();
    const std::uint32_t fast = q.createLane();
    const std::uint32_t slow = q.createLane();
    double deliveredAt = -1.0;
    q.runInLane(slow, [&] {
        q.scheduleAt(9.0, [&] {
            q.scheduleCross(fast, 11.0,
                            [&] { deliveredAt = q.now(); });
        });
    });
    q.runInLane(fast, [&] {
        // Busy events well past the sender's send time.
        for (double t = 1.0; t <= 20.0; t += 1.0)
            q.scheduleAt(t, [] {});
    });
    q.runToCompletion();
    EXPECT_DOUBLE_EQ(deliveredAt, 11.0);
}

TEST(LaneQueue, ExecutionIsIdenticalAtAnyWorkerCount)
{
    // The same lane topology produces the same merge log on repeated
    // runs — the log is a pure function of simulation state. (CI
    // additionally diffs whole fleet snapshots across COTERIE_THREADS
    // values; this guards the engine-level contract.)
    auto run = [] {
        ParallelEventQueue q;
        std::vector<std::string> log;
        for (int lane = 1; lane <= 4; ++lane) {
            const std::uint32_t id = q.createLane();
            q.runInLane(id, [&, lane] {
                for (int k = 0; k < 16; ++k) {
                    q.scheduleIn(0.5 * k, [&, lane, k] {
                        q.postControl([&, lane, k] {
                            log.push_back(std::to_string(lane) + ":" +
                                          std::to_string(k));
                        });
                    });
                }
            });
        }
        q.runToCompletion();
        return log;
    };
    EXPECT_EQ(run(), run());
}

TEST(LaneQueueDeath, CrossLaneBelowLookaheadPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            ParallelEventQueue q;
            q.noteLookaheadFloor(5.0);
            q.enableCrossLane();
            const std::uint32_t a = q.createLane();
            const std::uint32_t b = q.createLane();
            (void)b;
            q.runInLane(a, [&] {
                q.scheduleAt(1.0, [&] {
                    q.scheduleCross(b, 2.0, [] {}); // floor is 5
                });
            });
            q.runToCompletion();
        },
        "lookahead");
}

TEST(LaneQueueDeath, CrossLaneWithoutEnablementPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            ParallelEventQueue q;
            const std::uint32_t a = q.createLane();
            q.runInLane(a, [&] {
                q.scheduleAt(1.0,
                             [&] { q.scheduleCross(a, 100.0, [] {}); });
            });
            q.runToCompletion();
        },
        "enableCrossLane");
}

} // namespace
} // namespace coterie::sim
