/**
 * @file
 * Tests for the FI synchronisation model against Table 9's measured
 * figures: ~1 Kbps for a single player, tens to hundreds of Kbps for
 * 2-4 players, and 2-3 ms sync latency.
 */

#include <gtest/gtest.h>

#include "net/fi_sync.hh"

namespace coterie::net {
namespace {

TEST(FiSync, SinglePlayerHeartbeatAboutOneKbps)
{
    FiSync sync({}, 1);
    EXPECT_GT(sync.bandwidthKbps(1), 0.2);
    EXPECT_LT(sync.bandwidthKbps(1), 3.0);
}

TEST(FiSync, MultiplayerBandwidthMatchesTable9Ranges)
{
    FiSync sync({}, 1);
    // Table 9 FI columns across the three games:
    //   2P: 52-71 Kbps, 3P: 129-153 Kbps, 4P: 260-275 Kbps.
    EXPECT_NEAR(sync.bandwidthKbps(2), 61.0, 25.0);
    EXPECT_NEAR(sync.bandwidthKbps(3), 140.0, 45.0);
    EXPECT_NEAR(sync.bandwidthKbps(4), 267.0, 70.0);
}

TEST(FiSync, BandwidthMonotoneInPlayers)
{
    FiSync sync({}, 1);
    double prev = 0.0;
    for (int players = 1; players <= 8; ++players) {
        const double bw = sync.bandwidthKbps(players);
        EXPECT_GT(bw, prev);
        prev = bw;
    }
}

TEST(FiSync, BandwidthOrdersBelowBeTraffic)
{
    // "2-4 orders of magnitude lower than the traffic for BE": BE runs
    // tens of Mbps; FI must stay under ~0.5 Mbps at 4 players.
    FiSync sync({}, 1);
    EXPECT_LT(sync.bandwidthKbps(4), 500.0);
}

TEST(FiSync, LatencyInPaperRange)
{
    FiSync sync({}, 7);
    for (int i = 0; i < 100; ++i) {
        const double lat = sync.syncLatencyMs(4);
        EXPECT_GT(lat, 1.0);  // round trip floor
        EXPECT_LT(lat, 6.0);  // well under a frame interval
    }
}

TEST(FiSync, LatencyGrowsMildlyWithPlayers)
{
    FiSyncParams params;
    params.latencyJitterMs = 0.0;
    FiSync sync(params, 3);
    EXPECT_LT(sync.syncLatencyMs(2), sync.syncLatencyMs(8));
    // But stays bounded: even 8 players sync within a frame.
    EXPECT_LT(sync.syncLatencyMs(8), 16.7);
}

} // namespace
} // namespace coterie::net
