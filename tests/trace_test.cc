/**
 * @file
 * Tests for trace containers and IO: grid-path extraction, path length,
 * save/load round trip, and the multiplayer separation metric.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "trace/trace.hh"

namespace coterie::trace {
namespace {

using geom::Rect;
using geom::Vec2;

PlayerTrace
lineTrace(int id, Vec2 from, Vec2 step, int n)
{
    PlayerTrace tr;
    tr.playerId = id;
    for (int i = 0; i < n; ++i) {
        TracePoint tp;
        tp.timeMs = i * 16.67;
        tp.position = from + step * static_cast<double>(i);
        tp.yaw = step.angle();
        tr.points.push_back(tp);
    }
    return tr;
}

TEST(PlayerTrace, PathLength)
{
    const PlayerTrace tr = lineTrace(0, {0, 0}, {1, 0}, 11);
    EXPECT_NEAR(tr.pathLength(), 10.0, 1e-9);
    EXPECT_DOUBLE_EQ(PlayerTrace{}.pathLength(), 0.0);
}

TEST(PlayerTrace, GridPathRemovesConsecutiveDuplicates)
{
    const world::GridMap grid(Rect{{0, 0}, {100, 100}}, 1.0);
    // Steps of 0.3 m on a 1 m grid: several ticks per grid point.
    const PlayerTrace tr = lineTrace(0, {10, 10}, {0.3, 0.0}, 20);
    const auto path = tr.gridPath(grid);
    EXPECT_LT(path.size(), tr.points.size());
    for (std::size_t i = 1; i < path.size(); ++i)
        EXPECT_FALSE(path[i] == path[i - 1]);
}

TEST(SessionTrace, DurationIsMaxOverPlayers)
{
    SessionTrace session;
    session.players.push_back(lineTrace(0, {0, 0}, {1, 0}, 10));
    session.players.push_back(lineTrace(1, {0, 0}, {1, 0}, 20));
    EXPECT_NEAR(session.durationMs(), 19 * 16.67, 1e-6);
}

TEST(SessionTrace, SaveLoadRoundTrip)
{
    SessionTrace session;
    session.game = "TestGame";
    session.tickMs = 16.67;
    session.players.push_back(lineTrace(0, {1, 2}, {0.5, 0.25}, 7));
    session.players.push_back(lineTrace(1, {3, 4}, {0.1, -0.2}, 5));

    const std::string path = testing::TempDir() + "/coterie_trace.txt";
    ASSERT_TRUE(saveTrace(session, path));
    const SessionTrace loaded = loadTrace(path);
    std::remove(path.c_str());

    EXPECT_EQ(loaded.game, session.game);
    EXPECT_NEAR(loaded.tickMs, session.tickMs, 1e-9);
    ASSERT_EQ(loaded.playerCount(), 2);
    for (int p = 0; p < 2; ++p) {
        const auto &a = session.players[p];
        const auto &b = loaded.players[p];
        ASSERT_EQ(a.points.size(), b.points.size());
        EXPECT_EQ(a.playerId, b.playerId);
        for (std::size_t i = 0; i < a.points.size(); ++i) {
            EXPECT_NEAR(a.points[i].position.x, b.points[i].position.x,
                        1e-5);
            EXPECT_NEAR(a.points[i].position.y, b.points[i].position.y,
                        1e-5);
            EXPECT_NEAR(a.points[i].yaw, b.points[i].yaw, 1e-5);
        }
    }
}

TEST(SessionTraceDeath, LoadMissingFileFatal)
{
    EXPECT_DEATH(loadTrace("/nonexistent/coterie.trace"), "cannot open");
}

TEST(MeanPlayerSeparation, ParallelLinesKeepDistance)
{
    SessionTrace session;
    session.players.push_back(lineTrace(0, {0, 0}, {1, 0}, 50));
    session.players.push_back(lineTrace(1, {0, 3}, {1, 0}, 50));
    EXPECT_NEAR(meanPlayerSeparation(session), 3.0, 1e-9);
}

TEST(MeanPlayerSeparation, SinglePlayerIsZero)
{
    SessionTrace session;
    session.players.push_back(lineTrace(0, {0, 0}, {1, 0}, 10));
    EXPECT_DOUBLE_EQ(meanPlayerSeparation(session), 0.0);
}

} // namespace
} // namespace coterie::trace
