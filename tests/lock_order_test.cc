/**
 * @file
 * Tests for the runtime lock-order validator (support/lock_order.hh).
 *
 * The LockOrderRegistry unit tests run in every build configuration.
 * The death tests drive the live hooks through support::Mutex /
 * MutexLock and therefore only run when CMake compiled the validator
 * in (COTERIE_LOCK_ORDER_ENABLED=1, i.e. sanitizer or Debug builds);
 * elsewhere they GTEST_SKIP.
 */

#include <gtest/gtest.h>

#include "support/lock_order.hh"
#include "support/thread_annotations.hh"

namespace {

using coterie::support::Mutex;
using coterie::support::MutexLock;
using coterie::support::lockorder::LockOrderRegistry;

TEST(LockOrderRegistry, ConsistentOrderAccumulatesEdges)
{
    LockOrderRegistry reg;
    EXPECT_EQ(reg.record("a", "b"), "");
    EXPECT_EQ(reg.record("b", "c"), "");
    EXPECT_EQ(reg.record("a", "c"), ""); // consistent with a->b->c
    EXPECT_EQ(reg.edgeCount(), 3u);
    // Re-recording a known edge is a no-op.
    EXPECT_EQ(reg.record("a", "b"), "");
    EXPECT_EQ(reg.edgeCount(), 3u);
}

TEST(LockOrderRegistry, DirectInversionReturnsWitnessPath)
{
    LockOrderRegistry reg;
    ASSERT_EQ(reg.record("a", "b"), "");
    const std::string path = reg.record("b", "a");
    EXPECT_EQ(path, "a -> b");
    // The inverting edge must NOT have been inserted.
    EXPECT_EQ(reg.edgeCount(), 1u);
}

TEST(LockOrderRegistry, TransitiveInversionNamesFullPath)
{
    LockOrderRegistry reg;
    ASSERT_EQ(reg.record("a", "b"), "");
    ASSERT_EQ(reg.record("b", "c"), "");
    EXPECT_EQ(reg.record("c", "a"), "a -> b -> c");
}

TEST(LockOrderRegistry, SameNameIsRankEqual)
{
    // Two instances sharing a name (per-shard mutexes) are never
    // ordered against each other: record() treats the pair as a
    // no-op, neither edge nor inversion.
    LockOrderRegistry reg;
    EXPECT_EQ(reg.record("shard", "shard"), "");
    EXPECT_EQ(reg.edgeCount(), 0u);
}

#if COTERIE_LOCK_ORDER_ENABLED

bool
validatorLive()
{
    return coterie::support::lockorder::enabled();
}

TEST(LockOrderValidatorDeathTest, InversionAbortNamesBothMutexes)
{
    if (!validatorLive())
        GTEST_SKIP() << "COTERIE_LOCK_ORDER=0 in environment";
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    static Mutex a{"deathA"};
    static Mutex b{"deathB"};
    { // Establish deathA -> deathB.
        MutexLock la(a);
        MutexLock lb(b);
    }
    // Invert it: the abort message must name both mutexes.
    EXPECT_DEATH(
        {
            MutexLock lb(b);
            MutexLock la(a);
        },
        "deathA.*deathB|deathB.*deathA");
}

TEST(LockOrderValidatorDeathTest, RecursiveAcquisitionAborts)
{
    if (!validatorLive())
        GTEST_SKIP() << "COTERIE_LOCK_ORDER=0 in environment";
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    static Mutex m{"deathRecursive"};
    EXPECT_DEATH(
        {
            MutexLock l1(m);
            MutexLock l2(m);
        },
        "deathRecursive");
}

TEST(LockOrderValidator, ConsistentOrderAndTryLockPass)
{
    if (!validatorLive())
        GTEST_SKIP() << "COTERIE_LOCK_ORDER=0 in environment";
    static Mutex x{"liveX"};
    static Mutex y{"liveY"};
    { // x -> y, twice: stable order is fine.
        MutexLock lx(x);
        MutexLock ly(y);
    }
    {
        MutexLock lx(x);
        MutexLock ly(y);
    }
    { // tryLock against the order must NOT abort (no edge recorded).
        MutexLock ly(y);
        ASSERT_TRUE(x.tryLock());
        x.unlock();
    }
    SUCCEED();
}

#else // !COTERIE_LOCK_ORDER_ENABLED

TEST(LockOrderValidatorDeathTest, InversionAbortNamesBothMutexes)
{
    GTEST_SKIP() << "validator compiled away "
                    "(COTERIE_LOCK_ORDER resolved OFF)";
}

#endif // COTERIE_LOCK_ORDER_ENABLED

} // namespace
