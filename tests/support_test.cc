/**
 * @file
 * Tests for the support library: RNG determinism and distribution
 * sanity, statistics accumulators, and histogram binning.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/rng.hh"
#include "support/stats.hh"

namespace coterie {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double lo = 1.0, hi = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        lo = std::min(lo, u);
        hi = std::max(hi, u);
    }
    EXPECT_LT(lo, 0.01);
    EXPECT_GT(hi, 0.99);
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng rng(9);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(3, 7);
        ASSERT_GE(v, 3);
        ASSERT_LE(v, 7);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMomentsApproximatelyCorrect)
{
    Rng rng(11);
    RunningStats stats;
    for (int i = 0; i < 50000; ++i)
        stats.add(rng.normal(5.0, 2.0));
    EXPECT_NEAR(stats.mean(), 5.0, 0.05);
    EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate)
{
    Rng rng(13);
    RunningStats stats;
    for (int i = 0; i < 50000; ++i)
        stats.add(rng.exponential(4.0));
    EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(Rng, ChanceFrequencyMatchesProbability)
{
    Rng rng(17);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(21);
    Rng child = a.fork();
    EXPECT_NE(a.next(), child.next());
}

TEST(HashMix, DistinctInputsDistinctOutputs)
{
    std::set<std::uint64_t> outputs;
    for (std::uint64_t i = 0; i < 1000; ++i)
        outputs.insert(hashMix(i));
    EXPECT_EQ(outputs.size(), 1000u);
}

TEST(HashCombine, OrderSensitive)
{
    EXPECT_NE(hashCombine(hashMix(1), hashMix(2)),
              hashCombine(hashMix(2), hashMix(1)));
}

TEST(RunningStats, BasicMoments)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesCombinedStream)
{
    Rng rng(31);
    RunningStats all, a, b;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.normal();
        all.add(v);
        (i % 2 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SampleSet, MergeAppendsAllSamples)
{
    SampleSet a, b, all;
    Rng rng(17);
    for (int i = 0; i < 400; ++i) {
        const double v = rng.normal();
        (i % 3 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    // Percentiles over the merged set match the combined stream: merge
    // must re-sort, not just concatenate.
    for (double p : {10.0, 50.0, 90.0, 99.0})
        EXPECT_NEAR(a.percentile(p), all.percentile(p), 1e-12) << p;
}

TEST(SampleSet, MergeWithEmptySets)
{
    SampleSet a, empty;
    a.add(1.0);
    a.add(2.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_DOUBLE_EQ(empty.median(), 1.5);
}

TEST(SampleSet, ExactPercentiles)
{
    SampleSet s;
    for (int i = 100; i >= 1; --i) // reverse order: must sort internally
        s.add(i);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 100.0);
    EXPECT_NEAR(s.median(), 50.5, 1e-9);
    EXPECT_NEAR(s.percentile(0.0), 1.0, 1e-9);
    EXPECT_NEAR(s.percentile(100.0), 100.0, 1e-9);
}

TEST(SampleSet, FractionAboveThreshold)
{
    SampleSet s;
    for (int i = 1; i <= 10; ++i)
        s.add(i);
    EXPECT_DOUBLE_EQ(s.fractionAbove(5.0), 0.5);
    EXPECT_DOUBLE_EQ(s.fractionAbove(10.0), 0.0);
    EXPECT_DOUBLE_EQ(s.fractionAbove(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.fractionAtOrBelow(5.0), 0.5);
}

TEST(SampleSet, CdfIsMonotone)
{
    SampleSet s;
    Rng rng(5);
    for (int i = 0; i < 500; ++i)
        s.add(rng.normal());
    const auto cdf = s.cdf(50);
    ASSERT_EQ(cdf.size(), 50u);
    for (std::size_t i = 1; i < cdf.size(); ++i) {
        EXPECT_GE(cdf[i].first, cdf[i - 1].first);
        EXPECT_GT(cdf[i].second, cdf[i - 1].second);
    }
    EXPECT_NEAR(cdf.back().second, 1.0, 1e-9);
}

TEST(Histogram, BinningAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);   // bin 0
    h.add(9.5);   // bin 9
    h.add(-3.0);  // clamps to bin 0
    h.add(42.0);  // clamps to bin 9
    h.add(5.0);   // bin 5
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.bin(0), 2u);
    EXPECT_EQ(h.bin(9), 2u);
    EXPECT_EQ(h.bin(5), 1u);
    EXPECT_DOUBLE_EQ(h.binLow(5), 5.0);
    EXPECT_DOUBLE_EQ(h.binHigh(5), 6.0);
    EXPECT_FALSE(h.render().empty());
}

TEST(Histogram, MergeFoldsCounts)
{
    Histogram a(0.0, 10.0, 10), b(0.0, 10.0, 10);
    a.add(0.5);
    a.add(5.5);
    b.add(5.5);
    b.add(9.5);
    b.add(42.0); // clamps to bin 9
    a.merge(b);
    EXPECT_EQ(a.total(), 5u);
    EXPECT_EQ(a.bin(0), 1u);
    EXPECT_EQ(a.bin(5), 2u);
    EXPECT_EQ(a.bin(9), 2u);
}

TEST(Histogram, MergeMatchesCombinedStream)
{
    Histogram shardA(-3.0, 3.0, 24), shardB(-3.0, 3.0, 24);
    Histogram all(-3.0, 3.0, 24);
    Rng rng(23);
    for (int i = 0; i < 2000; ++i) {
        const double v = rng.normal();
        (i % 2 ? shardA : shardB).add(v);
        all.add(v);
    }
    shardA.merge(shardB);
    EXPECT_EQ(shardA.total(), all.total());
    for (std::size_t i = 0; i < all.bins(); ++i)
        EXPECT_EQ(shardA.bin(i), all.bin(i)) << "bin " << i;
}

} // namespace
} // namespace coterie
