/**
 * @file
 * Tests for the block-transform intra codec: round-trip quality,
 * quality/size monotonicity, content-dependent sizing (the property the
 * bandwidth experiments rely on), and determinism.
 */

#include <gtest/gtest.h>

#include "image/codec.hh"
#include "image/ssim.hh"
#include "support/rng.hh"

namespace coterie::image {
namespace {

Image
gradientImage(int w, int h)
{
    Image img(w, h);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            img.at(x, y) = Rgb{static_cast<std::uint8_t>(x * 255 / w),
                               static_cast<std::uint8_t>(y * 255 / h),
                               128};
    return img;
}

Image
noiseImage(int w, int h, std::uint64_t seed)
{
    Image img(w, h);
    Rng rng(seed);
    for (auto &p : img.pixels())
        p = Rgb{static_cast<std::uint8_t>(rng.uniformInt(0, 255)),
                static_cast<std::uint8_t>(rng.uniformInt(0, 255)),
                static_cast<std::uint8_t>(rng.uniformInt(0, 255))};
    return img;
}

TEST(Codec, RoundTripPreservesDimensions)
{
    const Image src = gradientImage(64, 48);
    const Image out = decode(encode(src));
    EXPECT_EQ(out.width(), 64);
    EXPECT_EQ(out.height(), 48);
}

TEST(Codec, RoundTripQualityIsHigh)
{
    const Image src = gradientImage(96, 96);
    CodecParams params;
    params.quality = 80;
    const double s = ssim(src, decode(encode(src, params)));
    EXPECT_GT(s, 0.95);
}

TEST(Codec, FlatImageNearlyLossless)
{
    const Image src(64, 64, Rgb{77, 140, 200});
    const Image out = decode(encode(src));
    EXPECT_LT(src.meanAbsDiff(out), 2.0);
}

TEST(Codec, HigherQualityMeansLargerAndBetter)
{
    const Image src = noiseImage(96, 96, 9);
    std::size_t prev_size = 0;
    double prev_ssim = 0.0;
    for (int q : {20, 50, 90}) {
        CodecParams params;
        params.quality = q;
        const EncodedFrame enc = encode(src, params);
        const double s = ssim(src, decode(enc));
        EXPECT_GT(enc.sizeBytes(), prev_size) << "quality " << q;
        EXPECT_GT(s, prev_ssim) << "quality " << q;
        prev_size = enc.sizeBytes();
        prev_ssim = s;
    }
}

TEST(Codec, BusyContentCostsMoreThanFlatContent)
{
    const Image flat(128, 128, Rgb{100, 100, 100});
    const Image busy = noiseImage(128, 128, 4);
    const auto flat_bytes = encode(flat).sizeBytes();
    const auto busy_bytes = encode(busy).sizeBytes();
    EXPECT_GT(busy_bytes, flat_bytes * 5);
}

TEST(Codec, Deterministic)
{
    const Image src = noiseImage(64, 64, 2);
    const EncodedFrame a = encode(src);
    const EncodedFrame b = encode(src);
    EXPECT_EQ(a.bytes, b.bytes);
}

TEST(Codec, ChromaSubsamplingShrinksStream)
{
    const Image src = noiseImage(128, 128, 6);
    CodecParams with;
    with.chromaSubsample = true;
    CodecParams without;
    without.chromaSubsample = false;
    EXPECT_LT(encode(src, with).sizeBytes(),
              encode(src, without).sizeBytes());
    // And both round-trip acceptably.
    EXPECT_GT(ssim(src, decode(encode(src, without))), 0.5);
}

TEST(Codec, NonMultipleOfBlockSizeDimensions)
{
    const Image src = gradientImage(37, 23);
    const Image out = decode(encode(src));
    EXPECT_EQ(out.width(), 37);
    EXPECT_EQ(out.height(), 23);
    EXPECT_LT(src.meanAbsDiff(out), 12.0);
}

TEST(Codec, OnePixelImage)
{
    Image src(1, 1, Rgb{200, 40, 90});
    const Image out = decode(encode(src));
    EXPECT_LT(src.meanAbsDiff(out), 8.0);
}

} // namespace
} // namespace coterie::image
