/**
 * @file
 * Cross-module determinism and fuzz tests: identical seeds must yield
 * bit-identical experiment results end to end (the reproducibility
 * guarantee every bench relies on), and the codec must round-trip
 * arbitrary content without corruption.
 */

#include <gtest/gtest.h>

#include "core/session.hh"
#include "image/codec.hh"
#include "image/ssim.hh"
#include "image/video.hh"
#include "support/rng.hh"

namespace coterie {
namespace {

TEST(Determinism, SessionsWithSameSeedMatchExactly)
{
    core::SessionParams params;
    params.players = 2;
    params.durationS = 10.0;
    params.seed = 77;
    auto a = core::Session::create(world::gen::GameId::Pool, params);
    auto b = core::Session::create(world::gen::GameId::Pool, params);

    ASSERT_EQ(a->partition().leaves.size(), b->partition().leaves.size());
    for (std::size_t i = 0; i < a->partition().leaves.size(); ++i) {
        EXPECT_DOUBLE_EQ(a->partition().leaves[i].cutoffRadius,
                         b->partition().leaves[i].cutoffRadius);
        EXPECT_DOUBLE_EQ(a->distThresholds()[i], b->distThresholds()[i]);
    }
    EXPECT_DOUBLE_EQ(a->similarityParams().decay,
                     b->similarityParams().decay);

    const auto ra = a->runCoterieSystem();
    const auto rb = b->runCoterieSystem();
    ASSERT_EQ(ra.players.size(), rb.players.size());
    for (std::size_t p = 0; p < ra.players.size(); ++p) {
        EXPECT_EQ(ra.players[p].framesDisplayed,
                  rb.players[p].framesDisplayed);
        EXPECT_EQ(ra.players[p].framesFetched,
                  rb.players[p].framesFetched);
        EXPECT_DOUBLE_EQ(ra.players[p].interFrameMs,
                         rb.players[p].interFrameMs);
        EXPECT_DOUBLE_EQ(ra.players[p].beMbps, rb.players[p].beMbps);
    }
}

TEST(Determinism, DifferentSeedsChangeTheOutcome)
{
    core::SessionParams a_params;
    a_params.players = 1;
    a_params.durationS = 10.0;
    a_params.seed = 1;
    core::SessionParams b_params = a_params;
    b_params.seed = 2;
    auto a = core::Session::create(world::gen::GameId::Pool, a_params);
    auto b = core::Session::create(world::gen::GameId::Pool, b_params);
    // Traces differ, so fetch counts differ (with high probability).
    const auto ra = a->runCoterieSystem();
    const auto rb = b->runCoterieSystem();
    EXPECT_NE(ra.players[0].gridTransitions,
              rb.players[0].gridTransitions);
}

/** Codec fuzz: random content of random sizes must round-trip. */
class CodecFuzz : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CodecFuzz, RoundTripsArbitraryContent)
{
    Rng rng(GetParam());
    const int w = static_cast<int>(rng.uniformInt(1, 90));
    const int h = static_cast<int>(rng.uniformInt(1, 90));
    image::Image img(w, h);
    // Mix of flat runs, gradients, and noise.
    const int mode = static_cast<int>(rng.uniformInt(0, 2));
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            switch (mode) {
              case 0:
                img.at(x, y) = {static_cast<std::uint8_t>(
                                    rng.uniformInt(0, 255)),
                                static_cast<std::uint8_t>(
                                    rng.uniformInt(0, 255)),
                                static_cast<std::uint8_t>(
                                    rng.uniformInt(0, 255))};
                break;
              case 1:
                img.at(x, y) = {static_cast<std::uint8_t>(x * 255 /
                                                          std::max(1, w)),
                                static_cast<std::uint8_t>(y * 255 /
                                                          std::max(1, h)),
                                77};
                break;
              default:
                img.at(x, y) = {200, 40, 120};
            }
        }
    }
    image::CodecParams params;
    params.quality = static_cast<int>(rng.uniformInt(1, 100));
    params.chromaSubsample = rng.chance(0.5);
    const image::Image out =
        image::decode(image::encode(img, params));
    ASSERT_EQ(out.width(), w);
    ASSERT_EQ(out.height(), h);
    // Round trip must be sane even at quality 1 (no corruption).
    EXPECT_LT(img.meanAbsDiff(out), 80.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz,
                         testing::Range<std::uint64_t>(1, 25));

/** Video fuzz: random sequences round-trip with sane fidelity. */
class VideoFuzz : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(VideoFuzz, RoundTripsArbitrarySequences)
{
    Rng rng(GetParam() ^ 0xF00D);
    const int w = static_cast<int>(rng.uniformInt(8, 64));
    const int h = static_cast<int>(rng.uniformInt(8, 64));
    const int n = static_cast<int>(rng.uniformInt(1, 12));
    std::vector<image::Image> frames;
    image::Image frame(w, h);
    for (auto &p : frame.pixels())
        p = {static_cast<std::uint8_t>(rng.uniformInt(0, 255)),
             static_cast<std::uint8_t>(rng.uniformInt(0, 255)), 90};
    for (int i = 0; i < n; ++i) {
        // Perturb a few pixels per frame (slow scene evolution).
        for (int k = 0; k < w * h / 16; ++k) {
            const auto x = static_cast<int>(rng.uniformInt(0, w - 1));
            const auto y = static_cast<int>(rng.uniformInt(0, h - 1));
            frame.at(x, y).r = static_cast<std::uint8_t>(
                rng.uniformInt(0, 255));
        }
        frames.push_back(frame);
    }
    image::VideoParams params;
    params.gopLength = static_cast<int>(rng.uniformInt(1, 6));
    const auto decoded =
        image::decodeVideo(image::encodeVideo(frames, params));
    ASSERT_EQ(decoded.size(), frames.size());
    for (std::size_t i = 0; i < frames.size(); ++i)
        EXPECT_LT(frames[i].meanAbsDiff(decoded[i]), 40.0) << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, VideoFuzz,
                         testing::Range<std::uint64_t>(1, 15));

} // namespace
} // namespace coterie
