/**
 * @file
 * Tests for the user-study discontinuity scoring model (Table 10):
 * SSIM-to-score mapping, distribution normalisation, and the replay
 * producing mostly 4-5 scores under Coterie-style reuse.
 */

#include <gtest/gtest.h>

#include "core/dist_thresh.hh"
#include "core/discontinuity.hh"
#include "trace/trajectory.hh"
#include "world/gen/generators.hh"

namespace coterie::core {
namespace {

TEST(ScoreForSsim, MonotoneMapping)
{
    EXPECT_EQ(scoreForSsim(0.999), 5);
    EXPECT_EQ(scoreForSsim(0.95), 5);
    EXPECT_EQ(scoreForSsim(0.90), 4);
    EXPECT_EQ(scoreForSsim(0.85), 3);
    EXPECT_EQ(scoreForSsim(0.75), 2);
    EXPECT_EQ(scoreForSsim(0.5), 1);
    int prev = 1;
    for (double s = 0.5; s <= 1.0; s += 0.01) {
        const int score = scoreForSsim(s);
        EXPECT_GE(score, prev);
        prev = score;
    }
}

TEST(ScoreDistribution, MeanOfPointMass)
{
    ScoreDistribution d;
    d.fraction[4] = 1.0;
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    ScoreDistribution mixed;
    mixed.fraction[2] = 0.5;
    mixed.fraction[4] = 0.5;
    EXPECT_DOUBLE_EQ(mixed.mean(), 4.0);
}

struct ReplayFixture : testing::Test
{
    ReplayFixture()
        : world(world::gen::makeWorld(world::gen::GameId::Viking, 42)),
          grid(world::gen::makeGrid(
              world::gen::gameInfo(world::gen::GameId::Viking))),
          partition(partitionWorld(world, device::pixel2(), {})),
          regions(world.bounds(), partition.leaves)
    {
    }

    world::VirtualWorld world;
    world::GridMap grid;
    PartitionResult partition;
    RegionIndex regions;
};

TEST_F(ReplayFixture, CoterieReplayScoresMostlyImperceptible)
{
    // 20-second single-player trace, as in the paper's user study.
    trace::TrajectoryParams tp;
    tp.players = 1;
    tp.durationS = 20.0;
    tp.seed = 6;
    const auto session = trace::generateTrace(
        world::gen::gameInfo(world::gen::GameId::Viking), world, tp);

    const AnalyticSimilarity model;
    const auto thresholds =
        deriveDistThresholds(regions, model, {});
    const ScoreDistribution dist = scoreTraceReplay(
        session.players[0], grid, regions, model, thresholds);

    double total = 0.0;
    for (double f : dist.fraction)
        total += f;
    EXPECT_NEAR(total, 1.0, 1e-9);
    // Table 10: ~95% of responses are 4 or 5, none below 3; our denser
    // village produces somewhat more score-3 switches in small-cutoff
    // regions (the paper's volunteers noticed the same spots).
    EXPECT_GT(dist.fraction[3] + dist.fraction[4], 0.6);
    EXPECT_LT(dist.fraction[0] + dist.fraction[1], 0.1);
    EXPECT_GT(dist.mean(), 3.5);
}

TEST_F(ReplayFixture, EmptyTraceIsImperceptible)
{
    trace::PlayerTrace empty;
    const AnalyticSimilarity model;
    const ScoreDistribution dist =
        scoreTraceReplay(empty, grid, regions, model, {});
    EXPECT_DOUBLE_EQ(dist.fraction[4], 1.0);
}

TEST_F(ReplayFixture, ZeroThresholdsForceMoreSwitchesNotWorseScores)
{
    // With zero reuse distance every grid transition switches frames,
    // but adjacent far-BE frames are still similar: scores stay high,
    // there are just more of them.
    trace::TrajectoryParams tp;
    tp.players = 1;
    tp.durationS = 10.0;
    tp.seed = 6;
    const auto session = trace::generateTrace(
        world::gen::gameInfo(world::gen::GameId::Viking), world, tp);
    const AnalyticSimilarity model;
    const std::vector<double> zero(partition.leaves.size(), 0.0);
    const ScoreDistribution dist = scoreTraceReplay(
        session.players[0], grid, regions, model, zero);
    EXPECT_GT(dist.mean(), 4.2);
}

} // namespace
} // namespace coterie::core
