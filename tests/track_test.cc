/**
 * @file
 * Tests for the closed-loop race track: closure, arc-length
 * parameterisation, tangents, containment, and distance queries.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "world/gen/track.hh"

namespace coterie::world::gen {
namespace {

using geom::Rect;
using geom::Vec2;

const Rect kBounds{{0, 0}, {1000, 800}};

TEST(Track, LoopCloses)
{
    Track track(kBounds, 42);
    const Vec2 start = track.pointAt(0.0);
    const Vec2 wrapped = track.pointAt(track.length());
    EXPECT_NEAR(start.distance(wrapped), 0.0, 1e-6);
}

TEST(Track, ArcLengthParameterisation)
{
    Track track(kBounds, 42);
    // Moving ds along the track moves ~ds in space (within polyline
    // discretisation error).
    const double ds = 5.0;
    for (double s = 0.0; s < track.length(); s += track.length() / 13) {
        const double step =
            track.pointAt(s).distance(track.pointAt(s + ds));
        EXPECT_NEAR(step, ds, 0.5) << "at s=" << s;
    }
}

TEST(Track, StaysInsideBounds)
{
    Track track(kBounds, 7);
    for (double s = 0.0; s < track.length(); s += 3.0)
        EXPECT_TRUE(kBounds.containsClosed(track.pointAt(s)));
}

TEST(Track, NegativeArcLengthWraps)
{
    Track track(kBounds, 42);
    const Vec2 a = track.pointAt(-10.0);
    const Vec2 b = track.pointAt(track.length() - 10.0);
    EXPECT_NEAR(a.distance(b), 0.0, 1e-6);
}

TEST(Track, TangentIsUnitAndForward)
{
    Track track(kBounds, 42);
    for (double s = 0.0; s < track.length(); s += track.length() / 17) {
        const Vec2 t = track.tangentAt(s);
        EXPECT_NEAR(t.length(), 1.0, 1e-9);
        // Tangent points toward the next position.
        const Vec2 ahead = track.pointAt(s + 2.0) - track.pointAt(s);
        EXPECT_GT(t.dot(ahead.normalized()), 0.9);
    }
}

TEST(Track, DistanceToCenterlineZeroOnTrack)
{
    Track track(kBounds, 42);
    EXPECT_LT(track.distanceTo(track.pointAt(123.0)), 1.5);
    // Center of the loop is far from the ring.
    EXPECT_GT(track.distanceTo(kBounds.center()), 50.0);
}

TEST(Track, DeterministicInSeed)
{
    Track a(kBounds, 5), b(kBounds, 5), c(kBounds, 6);
    EXPECT_NEAR(a.pointAt(100).distance(b.pointAt(100)), 0.0, 1e-12);
    EXPECT_GT(a.pointAt(100).distance(c.pointAt(100)), 0.1);
}

TEST(Track, LengthIsPlausibleForBounds)
{
    Track track(kBounds, 42);
    // An ellipse with radii ~0.38 * dims has circumference well over
    // the world's half-perimeter and below its full perimeter.
    EXPECT_GT(track.length(), 1500.0);
    EXPECT_LT(track.length(), 3600.0);
}

} // namespace
} // namespace coterie::world::gen
