/**
 * @file
 * Tests for the coterie-scope observability layer: the Json value
 * type, the lock-striped MetricsRegistry (including a concurrent
 * first-touch hammer run through the shared pool so TSan sees the
 * real contention pattern), timer shard-folding, scoped trace spans
 * (nesting and cross-thread interleaving), and a golden round-trip of
 * the exported Chrome trace_event document.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "support/parallel.hh"
#include "support/stats.hh"

namespace coterie::obs {
namespace {

// --- Json -------------------------------------------------------------

TEST(Json, ScalarConstructionAndAccess)
{
    EXPECT_TRUE(Json().isNull());
    EXPECT_TRUE(Json(true).asBool());
    EXPECT_FALSE(Json(false).asBool(true));
    EXPECT_DOUBLE_EQ(Json(2.5).asNumber(), 2.5);
    EXPECT_DOUBLE_EQ(Json(7).asNumber(), 7.0);
    EXPECT_EQ(Json("hi").asString(), "hi");
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    Json obj = Json::object();
    obj.set("zebra", Json(1));
    obj.set("apple", Json(2));
    obj.set("mango", Json(3));
    ASSERT_EQ(obj.members().size(), 3u);
    EXPECT_EQ(obj.members()[0].first, "zebra");
    EXPECT_EQ(obj.members()[1].first, "apple");
    EXPECT_EQ(obj.members()[2].first, "mango");
    EXPECT_EQ(obj.dump(), R"({"zebra":1,"apple":2,"mango":3})");
}

TEST(Json, SetOverwritesExistingKeyInPlace)
{
    Json obj = Json::object();
    obj.set("a", Json(1));
    obj.set("b", Json(2));
    obj.set("a", Json(9));
    ASSERT_EQ(obj.members().size(), 2u);
    EXPECT_EQ(obj.members()[0].first, "a");
    EXPECT_DOUBLE_EQ(obj.at("a").asNumber(), 9.0);
}

TEST(Json, DumpEscapesControlAndQuoteCharacters)
{
    Json obj = Json::object();
    obj.set("s", Json(std::string("a\"b\\c\n\t\x01")));
    const std::string text = obj.dump();
    EXPECT_NE(text.find("\\\""), std::string::npos);
    EXPECT_NE(text.find("\\\\"), std::string::npos);
    EXPECT_NE(text.find("\\n"), std::string::npos);
    EXPECT_NE(text.find("\\t"), std::string::npos);
    EXPECT_NE(text.find("\\u0001"), std::string::npos);

    std::string error;
    const Json back = Json::parse(text, &error);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_EQ(back.at("s").asString(), "a\"b\\c\n\t\x01");
}

TEST(Json, ParseHandlesNestedDocument)
{
    std::string error;
    const Json doc = Json::parse(
        R"({"a": [1, 2.5, -3e2], "b": {"c": null, "d": [true, false]},)"
        R"( "e": "x"})",
        &error);
    ASSERT_TRUE(error.empty()) << error;
    ASSERT_TRUE(doc.isObject());
    ASSERT_TRUE(doc.at("a").isArray());
    ASSERT_EQ(doc.at("a").items().size(), 3u);
    EXPECT_DOUBLE_EQ(doc.at("a").items()[2].asNumber(), -300.0);
    EXPECT_TRUE(doc.at("b").at("c").isNull());
    EXPECT_TRUE(doc.at("b").at("d").items()[0].asBool());
    EXPECT_EQ(doc.at("e").asString(), "x");
    EXPECT_FALSE(doc.contains("missing"));
    EXPECT_TRUE(doc.at("missing").isNull());
}

TEST(Json, ParseReportsErrorsWithPosition)
{
    const char *broken[] = {"{", "[1, ]", "{\"a\" 1}", "tru",
                            "\"unterminated", "{\"a\":1} trailing"};
    for (const char *text : broken) {
        std::string error;
        const Json v = Json::parse(text, &error);
        EXPECT_FALSE(error.empty()) << "no error for: " << text;
        EXPECT_TRUE(v.isNull()) << "non-null result for: " << text;
    }
}

TEST(Json, DumpParseRoundTripPreservesStructure)
{
    Json doc = Json::object();
    doc.set("pi", Json(3.141592653589793));
    doc.set("n", Json(std::uint64_t{1234567}));
    Json arr = Json::array();
    arr.push(Json("one"));
    arr.push(Json(true));
    arr.push(Json());
    doc.set("arr", std::move(arr));

    for (int indent : {-1, 0, 2}) {
        std::string error;
        const Json back = Json::parse(doc.dump(indent), &error);
        ASSERT_TRUE(error.empty()) << error;
        EXPECT_DOUBLE_EQ(back.at("pi").asNumber(), 3.141592653589793);
        EXPECT_DOUBLE_EQ(back.at("n").asNumber(), 1234567.0);
        ASSERT_EQ(back.at("arr").items().size(), 3u);
        EXPECT_EQ(back.at("arr").items()[0].asString(), "one");
        EXPECT_TRUE(back.at("arr").items()[1].asBool());
        EXPECT_TRUE(back.at("arr").items()[2].isNull());
    }
}

// --- MetricsRegistry --------------------------------------------------

TEST(MetricsRegistry, HandlesAreStableAndPerName)
{
    MetricsRegistry reg;
    Counter &a = reg.counter("test.a");
    Counter &b = reg.counter("test.b");
    EXPECT_NE(&a, &b);
    EXPECT_EQ(&a, &reg.counter("test.a"));

    a.add();
    a.add(4);
    EXPECT_EQ(a.value(), 5u);

    Gauge &g = reg.gauge("test.g");
    g.set(2.5);
    EXPECT_DOUBLE_EQ(reg.gauge("test.g").value(), 2.5);

    // A counter and a gauge may share a name without colliding.
    EXPECT_EQ(reg.counter("test.g").value(), 0u);
    EXPECT_EQ(reg.size(), 4u);
}

TEST(MetricsRegistry, SnapshotJsonSortsKeysAndReportsValues)
{
    MetricsRegistry reg;
    reg.counter("z.last").add(3);
    reg.counter("a.first").add(1);
    reg.gauge("m.gauge").set(0.5);
    reg.timer("t.timer").observe(10.0);
    reg.timer("t.timer").observe(30.0);

    const Json snap = reg.snapshotJson();
    const auto &counters = snap.at("counters").members();
    ASSERT_EQ(counters.size(), 2u);
    EXPECT_EQ(counters[0].first, "a.first");
    EXPECT_EQ(counters[1].first, "z.last");
    EXPECT_DOUBLE_EQ(snap.at("counters").at("z.last").asNumber(), 3.0);
    EXPECT_DOUBLE_EQ(snap.at("gauges").at("m.gauge").asNumber(), 0.5);

    const Json &timer = snap.at("timers").at("t.timer");
    EXPECT_DOUBLE_EQ(timer.at("count").asNumber(), 2.0);
    EXPECT_DOUBLE_EQ(timer.at("mean").asNumber(), 20.0);
    EXPECT_DOUBLE_EQ(timer.at("min").asNumber(), 10.0);
    EXPECT_DOUBLE_EQ(timer.at("max").asNumber(), 30.0);

    const std::string csv = reg.snapshotCsv();
    EXPECT_NE(csv.find("counter,a.first,"), std::string::npos);
    EXPECT_NE(csv.find("timer,t.timer,"), std::string::npos);
}

TEST(MetricsRegistry, ConcurrentFirstTouchHammer)
{
    // Many pool workers race to first-touch a shared set of names
    // across every stripe while hammering increments. Run under TSan
    // in the sanitizer matrix, this is the registry's thread-safety
    // proof; the value checks below prove no increment is lost.
    MetricsRegistry reg;
    constexpr int kNames = 64;
    constexpr std::int64_t kOps = 4096;

    std::vector<std::string> names;
    names.reserve(kNames);
    for (int i = 0; i < kNames; ++i)
        names.push_back("hammer.metric_" + std::to_string(i));

    support::parallelFor(0, kOps, 1, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
            const std::string &name =
                names[static_cast<std::size_t>(i) % kNames];
            reg.counter(name).add(1);
            reg.gauge(name).set(static_cast<double>(i));
            reg.timer(name).observe(static_cast<double>(i % 7) + 0.5);
        }
    });

    std::uint64_t total = 0;
    for (const std::string &name : names)
        total += reg.counter(name).value();
    EXPECT_EQ(total, static_cast<std::uint64_t>(kOps));

    std::size_t observations = 0;
    for (const std::string &name : names)
        observations += reg.timer(name).snapshot().stats.count();
    EXPECT_EQ(observations, static_cast<std::size_t>(kOps));
    EXPECT_EQ(reg.size(), 3u * kNames);
}

TEST(Timer, ShardFoldMatchesAllObservations)
{
    Timer timer;
    constexpr std::int64_t kN = 10000;
    // Observed from many pool threads -> lands in multiple shards.
    support::parallelFor(0, kN, 64, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i)
            timer.observe(1.0 + static_cast<double>(i % 100));
    });

    const Timer::Snapshot snap = timer.snapshot();
    EXPECT_EQ(snap.stats.count(), static_cast<std::size_t>(kN));
    EXPECT_DOUBLE_EQ(snap.stats.min(), 1.0);
    EXPECT_DOUBLE_EQ(snap.stats.max(), 100.0);
    EXPECT_NEAR(snap.stats.mean(), 50.5, 1e-9);
    EXPECT_EQ(snap.hist.total(), static_cast<std::size_t>(kN));
}

TEST(Timer, NonFiniteObservationsAreDroppedAndHistStaysFinite)
{
    Timer timer;
    timer.observe(0.0); // zero-duration scope: hist clamps before log10
    timer.observe(std::nan(""));          // dropped
    timer.observe(std::numeric_limits<double>::infinity()); // dropped
    const Timer::Snapshot snap = timer.snapshot();
    EXPECT_EQ(snap.stats.count(), 1u);
    EXPECT_EQ(snap.hist.total(), 1u);
    EXPECT_DOUBLE_EQ(snap.stats.mean(), 0.0);
    // The zero observation lands in the bottom edge bin, not -inf.
    EXPECT_EQ(snap.hist.bin(0), 1u);
}

// --- Trace spans ------------------------------------------------------

/** Fixture that isolates each test's events in the global recorder. */
class TraceTest : public ::testing::Test
{
  protected:
    void SetUp() override { TraceRecorder::global().start(); }
    void TearDown() override
    {
        TraceRecorder::global().stop();
        TraceRecorder::global().clear();
    }
};

/** Find all trace events with the given name. */
std::vector<Json>
eventsNamed(const Json &doc, const std::string &name)
{
    std::vector<Json> out;
    for (const Json &ev : doc.at("traceEvents").items())
        if (ev.at("name").asString() == name)
            out.push_back(ev);
    return out;
}

TEST_F(TraceTest, RecorderApiWorksInEitherTelemetryConfig)
{
    // The recorder itself stays linkable and functional with
    // -DCOTERIE_TELEMETRY=OFF; only the macros compile away.
    TraceRecorder::global().counter("test.track", 1.0);
    TraceRecorder::global().instant("test.tick", "test");
    TraceRecorder::global().stop();
    std::string error;
    const Json doc =
        Json::parse(TraceRecorder::global().exportJson(), &error);
    ASSERT_TRUE(error.empty()) << error;
    EXPECT_EQ(eventsNamed(doc, "test.track").size(), 1u);
    EXPECT_EQ(eventsNamed(doc, "test.tick").size(), 1u);
}

#if COTERIE_TELEMETRY_ENABLED

TEST_F(TraceTest, NestedSpansAreContainedInParent)
{
    {
        COTERIE_SPAN("test.outer", "test");
        {
            COTERIE_SPAN("test.inner", "test");
        }
        {
            COTERIE_SPAN("test.inner", "test");
        }
    }
    TraceRecorder::global().stop();

    const Json doc = TraceRecorder::global().toJson();
    const auto outer = eventsNamed(doc, "test.outer");
    const auto inner = eventsNamed(doc, "test.inner");
    ASSERT_EQ(outer.size(), 1u);
    ASSERT_EQ(inner.size(), 2u);

    const double oBegin = outer[0].at("ts").asNumber();
    const double oEnd = oBegin + outer[0].at("dur").asNumber();
    for (const Json &ev : inner) {
        EXPECT_EQ(ev.at("ph").asString(), "X");
        EXPECT_EQ(ev.at("cat").asString(), "test");
        const double begin = ev.at("ts").asNumber();
        const double end = begin + ev.at("dur").asNumber();
        EXPECT_GE(begin, oBegin);
        EXPECT_LE(end, oEnd);
    }
    // The two inner spans do not overlap: sequential scopes.
    const double aEnd =
        inner[0].at("ts").asNumber() + inner[0].at("dur").asNumber();
    EXPECT_LE(aEnd, inner[1].at("ts").asNumber());
}

TEST_F(TraceTest, InterleavedSpansFromPoolWorkersKeepTheirTid)
{
    support::parallelFor(0, 64, 1, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
            COTERIE_SPAN("test.chunk", "test");
        }
    });
    TraceRecorder::global().stop();

    const Json doc = TraceRecorder::global().toJson();
    const auto chunks = eventsNamed(doc, "test.chunk");
    ASSERT_EQ(chunks.size(), 64u);

    std::set<int> tids;
    for (const Json &ev : chunks) {
        tids.insert(static_cast<int>(ev.at("tid").asNumber()));
        EXPECT_DOUBLE_EQ(ev.at("pid").asNumber(), 1.0);
    }
    // Every recording tid got thread_name metadata.
    std::set<int> namedTids;
    for (const Json &ev : doc.at("traceEvents").items())
        if (ev.at("ph").asString() == "M")
            namedTids.insert(static_cast<int>(ev.at("tid").asNumber()));
    for (int tid : tids)
        EXPECT_TRUE(namedTids.count(tid)) << "no metadata for tid " << tid;
}

TEST_F(TraceTest, SpansOutsideRecordingWindowAreDropped)
{
    TraceRecorder::global().stop();
    {
        COTERIE_SPAN("test.dropped", "test");
    }
    EXPECT_EQ(TraceRecorder::global().eventCount(), 0u);

    TraceRecorder::global().start();
    {
        COTERIE_SPAN("test.kept", "test");
    }
    TraceRecorder::global().stop();
    const Json doc = TraceRecorder::global().toJson();
    EXPECT_TRUE(eventsNamed(doc, "test.dropped").empty());
    EXPECT_EQ(eventsNamed(doc, "test.kept").size(), 1u);
}

TEST_F(TraceTest, GoldenTraceJsonRoundTrip)
{
    {
        COTERIE_NAMED_SPAN(span, "test.frame", "render");
        span.simTimeMs(33.4);
    }
    TraceRecorder::global().counter("test.queue_depth", 3.0);
    TraceRecorder::global().instant("test.marker", "test");
    TraceRecorder::global().stop();

    // The export must itself re-parse: that is the contract with
    // chrome://tracing / Perfetto and with tools/trace_report.
    std::string error;
    const Json doc =
        Json::parse(TraceRecorder::global().exportJson(), &error);
    ASSERT_TRUE(error.empty()) << error;
    EXPECT_EQ(doc.at("displayTimeUnit").asString(), "ms");
    ASSERT_TRUE(doc.at("traceEvents").isArray());

    const auto frames = eventsNamed(doc, "test.frame");
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].at("ph").asString(), "X");
    EXPECT_EQ(frames[0].at("cat").asString(), "render");
    EXPECT_GE(frames[0].at("ts").asNumber(), 0.0);
    EXPECT_GE(frames[0].at("dur").asNumber(), 0.0);
    EXPECT_DOUBLE_EQ(frames[0].at("args").at("sim_ms").asNumber(), 33.4);

    const auto counters = eventsNamed(doc, "test.queue_depth");
    ASSERT_EQ(counters.size(), 1u);
    EXPECT_EQ(counters[0].at("ph").asString(), "C");
    EXPECT_DOUBLE_EQ(counters[0].at("args").at("value").asNumber(), 3.0);

    const auto instants = eventsNamed(doc, "test.marker");
    ASSERT_EQ(instants.size(), 1u);
    EXPECT_EQ(instants[0].at("ph").asString(), "i");
    EXPECT_EQ(instants[0].at("s").asString(), "t");

    // Every event carries the required trace_event fields.
    for (const Json &ev : doc.at("traceEvents").items()) {
        EXPECT_TRUE(ev.contains("name"));
        EXPECT_TRUE(ev.contains("ph"));
        EXPECT_TRUE(ev.contains("pid"));
        EXPECT_TRUE(ev.contains("tid"));
        if (ev.at("ph").asString() != "M")
            EXPECT_TRUE(ev.contains("ts"));
    }
}

TEST_F(TraceTest, StartClearsPreviousEvents)
{
    {
        COTERIE_SPAN("test.old", "test");
    }
    EXPECT_EQ(TraceRecorder::global().eventCount(), 1u);
    TraceRecorder::global().start();
    EXPECT_EQ(TraceRecorder::global().eventCount(), 0u);
}

#endif // COTERIE_TELEMETRY_ENABLED

// --- Histogram quantiles (timer shards) -------------------------------

/** Deterministic latency-ish population spanning several decades. */
std::vector<double>
latencyPopulation(std::size_t n)
{
    std::vector<double> values;
    values.reserve(n);
    std::uint64_t state = 0x9E3779B97F4A7C15ull;
    for (std::size_t i = 0; i < n; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const double frac =
            static_cast<double>(state >> 11) / 9007199254740992.0;
        // 0.05 ms .. 50 ms, log-uniform: the timer's working range.
        values.push_back(std::pow(10.0, -1.3 + 3.0 * frac));
    }
    return values;
}

TEST(Histogram, QuantileWithinOneBinOfExact)
{
    // The Timer spec: log10(value) over [-4, 4) in 256 bins, so the
    // worst-case relative error of a quantile estimate (after undoing
    // the log) is one bin width: 10^(8/256) - 1 ~= 7.5%.
    const double kBinFactor = std::pow(10.0, 8.0 / 256.0);
    Histogram hist(Timer::kLogLo, Timer::kLogHi, Timer::kLogBins);
    SampleSet exact;
    for (const double v : latencyPopulation(10000)) {
        hist.add(std::log10(v));
        exact.add(v);
    }
    for (const double q : {0.50, 0.90, 0.99, 0.999}) {
        const double est = std::pow(10.0, hist.quantile(q));
        const double ref = exact.percentile(100.0 * q);
        EXPECT_LE(est, ref * kBinFactor) << "q=" << q;
        EXPECT_GE(est, ref / kBinFactor) << "q=" << q;
    }
}

TEST(Histogram, MergedShardsMatchSingleShardBitForBit)
{
    // Per-thread timer shards fold by count addition, so quantiles of
    // the merged histogram must equal the single-shard reference
    // exactly — not approximately — regardless of how observations
    // were scattered across shards or the order shards merge in.
    const auto values = latencyPopulation(4096);
    Histogram reference(Timer::kLogLo, Timer::kLogHi, Timer::kLogBins);
    std::vector<Histogram> shards(
        8, Histogram(Timer::kLogLo, Timer::kLogHi, Timer::kLogBins));
    for (std::size_t i = 0; i < values.size(); ++i) {
        const double lg = std::log10(values[i]);
        reference.add(lg);
        shards[i % shards.size()].add(lg);
    }

    Histogram forward(Timer::kLogLo, Timer::kLogHi, Timer::kLogBins);
    for (const Histogram &s : shards)
        forward.merge(s);
    Histogram backward(Timer::kLogLo, Timer::kLogHi, Timer::kLogBins);
    for (auto it = shards.rbegin(); it != shards.rend(); ++it)
        backward.merge(*it);

    ASSERT_EQ(forward.total(), reference.total());
    ASSERT_EQ(backward.total(), reference.total());
    for (const double q : {0.01, 0.25, 0.50, 0.90, 0.99, 0.999}) {
        const double ref = reference.quantile(q);
        // Bit-identical: == on doubles, deliberately.
        EXPECT_EQ(forward.quantile(q), ref) << "q=" << q;
        EXPECT_EQ(backward.quantile(q), ref) << "q=" << q;
    }
}

TEST(Timer, SnapshotQuantilesTrackExactPercentiles)
{
    Timer timer;
    SampleSet exact;
    for (const double v : latencyPopulation(2000)) {
        timer.observe(v);
        exact.add(v);
    }
    const Timer::Snapshot snap = timer.snapshot();
    ASSERT_EQ(snap.hist.total(), 2000u);
    const double kBinFactor = std::pow(10.0, 8.0 / 256.0);
    for (const double q : {0.50, 0.99}) {
        const double est = std::pow(10.0, snap.hist.quantile(q));
        const double ref = exact.percentile(100.0 * q);
        EXPECT_LE(est, ref * kBinFactor) << "q=" << q;
        EXPECT_GE(est, ref / kBinFactor) << "q=" << q;
    }
}

TEST(MetricsRegistry, TimerSnapshotExportsQuantileKeys)
{
    MetricsRegistry reg;
    for (const double v : latencyPopulation(512))
        reg.timer("frame.latency_ms").observe(v);
    const Json snap = reg.snapshotJson();
    const Json &t = snap.at("timers").at("frame.latency_ms");
    ASSERT_TRUE(t.contains("p50"));
    ASSERT_TRUE(t.contains("p99"));
    ASSERT_TRUE(t.contains("p999"));
    const double p50 = t.at("p50").asNumber();
    const double p99 = t.at("p99").asNumber();
    const double p999 = t.at("p999").asNumber();
    EXPECT_LE(p50, p99);
    EXPECT_LE(p99, p999);
    EXPECT_GE(p50, t.at("min").asNumber() * 0.9);
    EXPECT_LE(p999, t.at("max").asNumber() * 1.1);
    // The snapshot embeds the SLO registry as a top-level section.
    EXPECT_TRUE(snap.contains("slo"));
}

TEST(MetricsRegistry, SnapshotJsonIsStableAcrossIdenticalRuns)
{
    // Same observations -> byte-identical dump: the property the CI
    // chaos job relies on when diffing snapshots across
    // COTERIE_THREADS settings.
    const auto values = latencyPopulation(256);
    const auto run = [&values] {
        MetricsRegistry reg;
        for (const double v : values)
            reg.timer("stable.t_ms").observe(v);
        reg.counter("stable.count").add(values.size());
        reg.gauge("stable.gauge").set(42.5);
        return reg.snapshotJson().dump(2);
    };
    EXPECT_EQ(run(), run());
}

} // namespace
} // namespace coterie::obs
