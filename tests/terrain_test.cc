/**
 * @file
 * Tests for the procedural terrain: determinism, continuity, flat
 * floors, ray-march/heightfield consistency, and the foothold query
 * used to place the player camera.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "support/rng.hh"
#include "world/terrain.hh"

namespace coterie::world {
namespace {

using geom::Ray;
using geom::Vec2;
using geom::Vec3;

TEST(Terrain, DeterministicInSeed)
{
    TerrainParams p;
    p.seed = 77;
    Terrain a(p), b(p);
    for (double x = 0; x < 50; x += 7.3)
        EXPECT_DOUBLE_EQ(a.heightAt({x, x * 2}), b.heightAt({x, x * 2}));
    p.seed = 78;
    Terrain c(p);
    bool differs = false;
    for (double x = 0; x < 50; x += 7.3)
        differs |= a.heightAt({x, x}) != c.heightAt({x, x});
    EXPECT_TRUE(differs);
}

TEST(Terrain, HeightBoundedByAmplitude)
{
    TerrainParams p;
    p.amplitude = 3.0;
    Terrain t(p);
    for (double x = -100; x < 100; x += 3.7)
        for (double y = -100; y < 100; y += 11.1)
            EXPECT_LE(std::abs(t.heightAt({x, y})), p.amplitude + 1e-9);
}

TEST(Terrain, Continuity)
{
    Terrain t{TerrainParams{}};
    const double h0 = t.heightAt({10.0, 10.0});
    const double h1 = t.heightAt({10.001, 10.0});
    EXPECT_NEAR(h0, h1, 0.01);
}

TEST(Terrain, FlatFloorIsZero)
{
    TerrainParams p;
    p.flat = true;
    Terrain t(p);
    EXPECT_DOUBLE_EQ(t.heightAt({12.3, -4.5}), 0.0);
    EXPECT_EQ(t.normalAt({1, 1}), Vec3(0.0, 1.0, 0.0));
}

TEST(Terrain, FootholdEqualsHeight)
{
    Terrain t{TerrainParams{}};
    const Vec2 p{31.0, 8.0};
    EXPECT_DOUBLE_EQ(t.foothold(p), t.heightAt(p));
}

TEST(Terrain, NormalIsUnitAndUpish)
{
    Terrain t{TerrainParams{}};
    for (double x = 0; x < 60; x += 13.7) {
        const Vec3 n = t.normalAt({x, 2 * x});
        EXPECT_NEAR(n.length(), 1.0, 1e-9);
        EXPECT_GT(n.y, 0.5); // gentle terrain: mostly up
    }
}

TEST(Terrain, DownwardRayHitsSurfaceAtHeight)
{
    Terrain t{TerrainParams{}};
    const Vec2 ground{25.0, 40.0};
    Ray ray;
    ray.origin = geom::lift(ground, 50.0);
    ray.dir = {0.0, -1.0, 0.0};
    const auto hit = t.intersect(ray, 1000.0);
    ASSERT_TRUE(hit.has_value());
    const Vec3 p = ray.at(*hit);
    EXPECT_NEAR(p.y, t.heightAt(p.ground()), 0.05);
}

TEST(Terrain, UpwardRayEscapes)
{
    Terrain t{TerrainParams{}};
    Ray ray;
    ray.origin = {10.0, 10.0, 10.0};
    ray.dir = Vec3{0.1, 1.0, 0.1}.normalized();
    EXPECT_FALSE(t.intersect(ray, 1000.0).has_value());
}

TEST(Terrain, RayStartingBelowSurfaceIsClippedOut)
{
    Terrain t{TerrainParams{}};
    Ray ray;
    // Start well below any terrain and look horizontally: the clipped
    // start is below ground, which the renderer treats as "clipped".
    ray.origin = {10.0, -50.0, 10.0};
    ray.dir = {1.0, 0.0, 0.0};
    EXPECT_FALSE(t.intersect(ray, 200.0).has_value());
}

TEST(Terrain, FlatFloorRayIntersection)
{
    TerrainParams p;
    p.flat = true;
    Terrain t(p);
    Ray ray;
    ray.origin = {0.0, 2.0, 0.0};
    ray.dir = Vec3{1.0, -1.0, 0.0}.normalized();
    const auto hit = t.intersect(ray, 100.0);
    ASSERT_TRUE(hit.has_value());
    EXPECT_NEAR(ray.at(*hit).y, 0.0, 1e-9);
}

TEST(Terrain, MarchMatchesReferenceOverRaySweep)
{
    // The SIMD-batched march (scalar prologue + 4-wide sample batches)
    // must be bit-identical to the preserved per-sample reference
    // march: same hit/miss decision and the exact same distance.
    TerrainParams p;
    p.seed = 9;
    p.amplitude = 4.0;
    Terrain t(p);
    int hits = 0, misses = 0;
    for (double ox = -40; ox <= 40; ox += 16.0) {
        for (double oy : {1.5, 6.0, 30.0}) {
            for (double pitch : {-0.8, -0.2, -0.02, 0.0, 0.15}) {
                for (double yaw = 0.0; yaw < 6.0; yaw += 0.9) {
                    Ray ray;
                    ray.origin = {ox, oy, -ox * 0.5};
                    ray.dir = Vec3{std::cos(yaw) * std::cos(pitch),
                                   std::sin(pitch),
                                   std::sin(yaw) * std::cos(pitch)}
                                  .normalized();
                    const auto fast = t.intersect(ray, 300.0);
                    const auto ref = t.intersectReference(ray, 300.0);
                    ASSERT_EQ(fast.has_value(), ref.has_value());
                    if (ref) {
                        EXPECT_EQ(*fast, *ref);
                        ++hits;
                    } else {
                        ++misses;
                    }
                }
            }
        }
    }
    // The sweep must exercise both outcomes to mean anything.
    EXPECT_GT(hits, 100);
    EXPECT_GT(misses, 100);
}

TEST(Terrain, AbortBeyondPreservesAcceptedHits)
{
    // Contract used by the renderer: capping the march at a known
    // object hit may only change outcomes *beyond* the cap. If the
    // capped march reports a hit, it is the uncapped hit; and any
    // uncapped hit at or before the cap survives capping.
    TerrainParams p;
    p.seed = 5;
    Terrain t(p);
    Rng rng(31);
    for (int i = 0; i < 400; ++i) {
        Ray ray;
        ray.origin = {rng.uniform(-50, 50), rng.uniform(0.5, 25),
                      rng.uniform(-50, 50)};
        ray.dir = Vec3{rng.normal(), rng.normal() * 0.4, rng.normal()}
                      .normalized();
        const auto full = t.intersect(ray, 200.0);
        const double cap = rng.uniform(0.5, 150.0);
        const auto capped = t.intersect(ray, 200.0, cap);
        if (capped) {
            ASSERT_TRUE(full.has_value());
            EXPECT_EQ(*capped, *full);
        }
        if (full && *full <= cap) {
            ASSERT_TRUE(capped.has_value());
            EXPECT_EQ(*capped, *full);
        }
    }
    // An infinite cap is exactly the uncapped march.
    Ray ray;
    ray.origin = {3.0, 8.0, -2.0};
    ray.dir = Vec3{0.6, -0.25, 0.4}.normalized();
    const auto inf_cap = t.intersect(
        ray, 200.0, std::numeric_limits<double>::infinity());
    const auto plain = t.intersect(ray, 200.0);
    ASSERT_EQ(inf_cap.has_value(), plain.has_value());
    if (plain)
        EXPECT_EQ(*inf_cap, *plain);
}

TEST(Terrain, TrianglesWithinScalesWithArea)
{
    TerrainParams p;
    p.trianglesPerM2 = 10.0;
    Terrain t(p);
    const double t1 = t.trianglesWithin({0, 0}, 10.0);
    const double t2 = t.trianglesWithin({0, 0}, 20.0);
    EXPECT_NEAR(t2 / t1, 4.0, 1e-9);
    EXPECT_NEAR(t1, 10.0 * M_PI * 100.0, 1e-6);
}

TEST(Terrain, ColorVariesAcrossTerrain)
{
    Terrain t{TerrainParams{}};
    const auto c1 = t.colorAt({0, 0});
    bool varies = false;
    for (double x = 5; x < 200 && !varies; x += 17)
        varies = !(t.colorAt({x, x}) == c1);
    EXPECT_TRUE(varies);
}

} // namespace
} // namespace coterie::world
