/**
 * @file
 * Tests for the shared thread pool and the determinism contract of the
 * parallel frame pipeline: chunk boundaries and results independent of
 * thread count, exception propagation, nested-parallelFor safety, and
 * serial-vs-pooled equivalence for the renderer, the partitioner, and
 * the server's offline pre-render pass.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/partitioner.hh"
#include "core/server.hh"
#include "render/cost_model.hh"
#include "render/renderer.hh"
#include "support/parallel.hh"
#include "world/gen/generators.hh"

namespace coterie::support {
namespace {

// Force a multi-worker shared pool even on single-core CI hosts so the
// pooled code paths genuinely run threaded (the pool reads the env var
// on first use, which is after static initialization).
const bool forcedThreads = [] {
    setenv("COTERIE_THREADS", "4", /*overwrite=*/0);
    return true;
}();

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr int n = 1013;
    std::vector<std::atomic<int>> visits(n);
    pool.parallelFor(0, n, 7, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i)
            visits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(visits[static_cast<std::size_t>(i)].load(), 1) << i;
}

TEST(ThreadPool, ChunkBoundariesIndependentOfThreadCount)
{
    const auto chunksOf = [](ThreadPool &pool) {
        std::mutex m;
        std::set<std::pair<std::int64_t, std::int64_t>> chunks;
        pool.parallelFor(3, 260, 16,
                         [&](std::int64_t b, std::int64_t e) {
                             std::lock_guard<std::mutex> lock(m);
                             chunks.emplace(b, e);
                         });
        return chunks;
    };
    ThreadPool serial(1), pooled(5);
    EXPECT_EQ(chunksOf(serial), chunksOf(pooled));
}

TEST(ThreadPool, OrderedReductionIsDeterministic)
{
    const auto sumOf = [](ThreadPool &pool) {
        constexpr std::int64_t n = 10000, grain = 37;
        std::vector<double> chunkSums((n + grain - 1) / grain, 0.0);
        pool.parallelFor(0, n, grain,
                         [&](std::int64_t b, std::int64_t e) {
                             double acc = 0.0;
                             for (std::int64_t i = b; i < e; ++i)
                                 acc += std::sin(static_cast<double>(i));
                             chunkSums[static_cast<std::size_t>(
                                 b / grain)] = acc;
                         });
        double total = 0.0;
        for (double s : chunkSums)
            total += s;
        return total;
    };
    ThreadPool serial(1), four(4), eight(8);
    const double reference = sumOf(serial);
    EXPECT_EQ(reference, sumOf(four));   // bit-identical, not just near
    EXPECT_EQ(reference, sumOf(eight));
}

TEST(ThreadPool, PropagatesFirstExceptionAndSurvives)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(0, 1000, 1,
                         [&](std::int64_t b, std::int64_t) {
                             if (b == 37)
                                 throw std::runtime_error("chunk 37");
                         }),
        std::runtime_error);

    // The pool must stay fully usable after a failed job.
    std::atomic<int> ran{0};
    pool.parallelFor(0, 100, 5, [&](std::int64_t b, std::int64_t e) {
        ran.fetch_add(static_cast<int>(e - b));
    });
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock)
{
    ThreadPool pool(4);
    constexpr int outer = 16, inner = 64;
    std::vector<std::int64_t> sums(outer, 0);
    pool.parallelFor(0, outer, 1, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t o = b; o < e; ++o) {
            // Nested call: must execute inline on this worker.
            parallelFor(0, inner, 8,
                        [&](std::int64_t ib, std::int64_t ie) {
                            for (std::int64_t i = ib; i < ie; ++i)
                                sums[static_cast<std::size_t>(o)] += i;
                        });
        }
    });
    for (int o = 0; o < outer; ++o)
        EXPECT_EQ(sums[static_cast<std::size_t>(o)],
                  inner * (inner - 1) / 2);
}

TEST(ThreadPool, ParallelMapPreservesOrder)
{
    const auto squares = parallelMap<std::int64_t>(
        257, 16, [](std::int64_t i) { return i * i; });
    ASSERT_EQ(squares.size(), 257u);
    for (std::int64_t i = 0; i < 257; ++i)
        EXPECT_EQ(squares[static_cast<std::size_t>(i)], i * i);
}

world::VirtualWorld
tinyWorld()
{
    world::TerrainParams terrain;
    terrain.flat = true;
    world::VirtualWorld world("tiny", {{0, 0}, {60, 60}}, terrain);
    world::WorldObject box;
    box.shape = world::Shape::Box;
    box.position = {33, 1.0, 30};
    box.dims = {2, 2, 2};
    box.color = {200, 40, 40};
    world.addObject(box);
    world::WorldObject far_box;
    far_box.shape = world::Shape::Box;
    far_box.position = {50, 2.0, 30};
    far_box.dims = {4, 4, 4};
    far_box.color = {40, 40, 200};
    world.addObject(far_box);
    world.finalize();
    return world;
}

TEST(ParallelPipeline, RenderedFramesIdenticalSerialVsPool)
{
    const world::VirtualWorld world = tinyWorld();
    const render::Renderer renderer(world);
    render::RenderOptions serial;
    serial.threads = 1;
    render::RenderOptions pooled;
    pooled.threads = 0;
    const geom::Vec3 eye = world.eyePosition({30, 30});
    EXPECT_EQ(renderer.renderPanorama(eye, 96, 48, serial),
              renderer.renderPanorama(eye, 96, 48, pooled));
    render::Camera cam;
    cam.position = eye;
    EXPECT_EQ(renderer.renderPerspective(cam, 64, 48, serial),
              renderer.renderPerspective(cam, 64, 48, pooled));
}

TEST(ParallelPipeline, PartitionLeavesIdenticalSerialVsPool)
{
    const auto world =
        world::gen::makeWorld(world::gen::GameId::Pool, 42);
    core::PartitionParams serial;
    serial.threads = 1;
    core::PartitionParams pooled;
    pooled.threads = 0;
    const auto a = core::partitionWorld(world, device::pixel2(), serial);
    const auto b = core::partitionWorld(world, device::pixel2(), pooled);
    ASSERT_EQ(a.leaves.size(), b.leaves.size());
    EXPECT_EQ(a.cutoffCalculations, b.cutoffCalculations);
    for (std::size_t i = 0; i < a.leaves.size(); ++i) {
        const core::LeafRegion &la = a.leaves[i];
        const core::LeafRegion &lb = b.leaves[i];
        EXPECT_EQ(la.id, lb.id);
        EXPECT_EQ(la.depth, lb.depth);
        EXPECT_EQ(la.rect.lo.x, lb.rect.lo.x);
        EXPECT_EQ(la.rect.hi.y, lb.rect.hi.y);
        EXPECT_EQ(la.cutoffRadius, lb.cutoffRadius); // bit-identical
        EXPECT_EQ(la.triangleDensity, lb.triangleDensity);
        EXPECT_EQ(la.reachable, lb.reachable);
    }
}

TEST(ParallelPipeline, CutoffCostCacheMatchesFreeFunctionBitExact)
{
    const auto world =
        world::gen::makeWorld(world::gen::GameId::Pool, 42);
    const geom::Vec2 eye = world.bounds().center();
    const render::CostModelParams params;
    const render::LocationCostCache cache(world, eye, 200.0, params);
    for (double r : {0.5, 1.0, 3.7, 12.0, 48.5, 120.0, 200.0}) {
        EXPECT_EQ(cache.renderTimeMs(0.0, r),
                  render::renderTimeMs(world, eye, 0.0, r, params))
            << "radius " << r;
    }
}

TEST(ParallelPipeline, ServerPrerenderDeterministicSerialVsPool)
{
    const world::VirtualWorld world = tinyWorld();
    core::PartitionParams params;
    params.maxDepth = 2;
    params.minDepth = 1;
    params.samplesPerRegion = 2;
    const auto partition =
        core::partitionWorld(world, device::pixel2(), params);
    const core::RegionIndex regions(world.bounds(), partition.leaves);
    const world::GridMap grid(world.bounds(), 20.0);
    const core::FrameStore store(world, grid, regions);

    const auto serial = store.prerenderFarBe(1, 48, 24, /*threads=*/1);
    const auto pooled = store.prerenderFarBe(1, 48, 24, /*threads=*/0);
    EXPECT_EQ(serial.frames,
              static_cast<std::uint64_t>(grid.cols() * grid.rows()));
    EXPECT_EQ(serial.frames, pooled.frames);
    EXPECT_EQ(serial.encodedBytes, pooled.encodedBytes);
    EXPECT_GT(serial.encodedBytes, 0u);
}

} // namespace
} // namespace coterie::support
