/**
 * @file
 * Tests for the virtual-world grid discretisation, including the
 * Table 3 grid-point counts of all nine study games.
 */

#include <gtest/gtest.h>

#include "world/gen/generators.hh"
#include "world/grid.hh"

namespace coterie::world {
namespace {

using geom::Rect;
using geom::Vec2;

TEST(GridMap, BasicDimensions)
{
    GridMap grid(Rect{{0, 0}, {10, 5}}, 1.0);
    EXPECT_EQ(grid.cols(), 10);
    EXPECT_EQ(grid.rows(), 5);
    EXPECT_EQ(grid.pointCount(), 50u);
}

TEST(GridMap, SnapRoundTrip)
{
    GridMap grid(Rect{{0, 0}, {100, 100}}, 0.5);
    const GridPoint g = grid.snap({10.26, 20.74});
    const Vec2 p = grid.position(g);
    EXPECT_NEAR(p.x, 10.5, 1e-9);
    EXPECT_NEAR(p.y, 20.5, 1e-9);
    // Snapping a grid-point position returns the same point.
    EXPECT_EQ(grid.snap(p), g);
}

TEST(GridMap, SnapClampsOutOfBounds)
{
    GridMap grid(Rect{{0, 0}, {10, 10}}, 1.0);
    const GridPoint g = grid.snap({-5.0, 50.0});
    EXPECT_EQ(g.ix, 0);
    EXPECT_EQ(g.iy, grid.rows() - 1);
}

TEST(GridMap, IndexIsDenseRowMajor)
{
    GridMap grid(Rect{{0, 0}, {10, 10}}, 1.0);
    EXPECT_EQ(grid.index({0, 0}), 0u);
    EXPECT_EQ(grid.index({1, 0}), 1u);
    EXPECT_EQ(grid.index({0, 1}),
              static_cast<std::uint64_t>(grid.cols()));
    EXPECT_LT(grid.index({grid.cols() - 1, grid.rows() - 1}),
              grid.pointCount());
}

TEST(GridMap, DistanceInMeters)
{
    GridMap grid(Rect{{0, 0}, {100, 100}}, 0.25);
    EXPECT_DOUBLE_EQ(grid.distance({0, 0}, {4, 0}), 1.0);
    EXPECT_DOUBLE_EQ(grid.distance({0, 0}, {3, 4}), 0.25 * 5.0);
}

/** Table 3: grid point counts in millions, per game. */
struct GridCountCase
{
    world::gen::GameId game;
    double paperMillions;
};

class Table3GridCounts : public testing::TestWithParam<GridCountCase>
{
};

TEST_P(Table3GridCounts, MatchesPaperWithin5Percent)
{
    const auto &info = world::gen::gameInfo(GetParam().game);
    const GridMap grid = world::gen::makeGrid(info);
    const double millions = static_cast<double>(grid.pointCount()) / 1e6;
    EXPECT_NEAR(millions, GetParam().paperMillions,
                GetParam().paperMillions * 0.05)
        << info.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllGames, Table3GridCounts,
    testing::Values(
        GridCountCase{world::gen::GameId::Viking, 24.90},
        GridCountCase{world::gen::GameId::CTS, 268.40},
        GridCountCase{world::gen::GameId::Racing, 7.70},
        GridCountCase{world::gen::GameId::DS, 3.00},
        GridCountCase{world::gen::GameId::FPS, 5.09},
        GridCountCase{world::gen::GameId::Soccer, 14.90},
        GridCountCase{world::gen::GameId::Pool, 0.13},
        GridCountCase{world::gen::GameId::Bowling, 1.43},
        GridCountCase{world::gen::GameId::Corridor, 1.54}),
    [](const testing::TestParamInfo<GridCountCase> &info) {
        return world::gen::gameInfo(info.param.game).name;
    });

} // namespace
} // namespace coterie::world
