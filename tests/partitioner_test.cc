/**
 * @file
 * Tests for the adaptive quadtree partitioner: leaves tile the world
 * exactly, cutoffs are conservative, the region index locates points
 * correctly, reachability-restricted sampling, Constraint-1 violation
 * rates (the Figure 6 property), and depth bounds.
 */

#include <gtest/gtest.h>

#include "core/partitioner.hh"
#include "support/rng.hh"
#include "world/gen/generators.hh"

namespace coterie::core {
namespace {

using geom::Vec2;
using world::gen::GameId;
using world::gen::gameInfo;
using world::gen::makeWorld;

PartitionResult
partitionViking()
{
    static const auto result = [] {
        const auto world = makeWorld(GameId::Viking, 42);
        return partitionWorld(world, device::pixel2(), {});
    }();
    return result;
}

TEST(Partitioner, LeavesTileTheWorldByArea)
{
    const auto world = makeWorld(GameId::Viking, 42);
    const PartitionResult result = partitionViking();
    double area = 0.0;
    for (const LeafRegion &leaf : result.leaves)
        area += leaf.rect.area();
    EXPECT_NEAR(area, world.bounds().area(),
                world.bounds().area() * 1e-9);
}

TEST(Partitioner, EveryPointHasExactlyOneLeaf)
{
    const auto world = makeWorld(GameId::Viking, 42);
    const PartitionResult result = partitionViking();
    Rng rng(8);
    for (int i = 0; i < 500; ++i) {
        const Vec2 p{rng.uniform(world.bounds().lo.x,
                                 world.bounds().hi.x),
                     rng.uniform(world.bounds().lo.y,
                                 world.bounds().hi.y)};
        int owners = 0;
        for (const LeafRegion &leaf : result.leaves)
            owners += leaf.rect.contains(p);
        EXPECT_EQ(owners, 1);
    }
}

TEST(Partitioner, RegionIndexAgreesWithLinearScan)
{
    const auto world = makeWorld(GameId::Viking, 42);
    const PartitionResult result = partitionViking();
    const RegionIndex index(world.bounds(), result.leaves);
    Rng rng(9);
    for (int i = 0; i < 500; ++i) {
        const Vec2 p{rng.uniform(world.bounds().lo.x,
                                 world.bounds().hi.x),
                     rng.uniform(world.bounds().lo.y,
                                 world.bounds().hi.y)};
        const LeafRegion &found = index.leafAt(p);
        EXPECT_TRUE(found.rect.containsClosed(p));
    }
}

TEST(Partitioner, LeafCutoffsArePositiveAndBounded)
{
    const PartitionResult result = partitionViking();
    PartitionParams params;
    for (const LeafRegion &leaf : result.leaves) {
        EXPECT_GE(leaf.cutoffRadius, params.constraint.minRadius);
        EXPECT_LE(leaf.cutoffRadius, params.constraint.maxRadius);
    }
}

TEST(Partitioner, DepthRespectsMaxDepth)
{
    const PartitionResult result = partitionViking();
    EXPECT_LE(result.maxLeafDepth, PartitionParams{}.maxDepth);
    EXPECT_GE(result.avgLeafDepth, 1.0);
    EXPECT_LE(result.avgLeafDepth,
              static_cast<double>(result.maxLeafDepth));
}

TEST(Partitioner, VikingDeeperThanBowling)
{
    // Table 3 ordering: the clustered village splits deeper than the
    // homogeneous bowling alley.
    const auto bowling_world = makeWorld(GameId::Bowling, 42);
    const auto bowling =
        partitionWorld(bowling_world, device::pixel2(), {});
    const PartitionResult viking = partitionViking();
    EXPECT_GT(viking.avgLeafDepth, bowling.avgLeafDepth);
    EXPECT_GT(viking.leaves.size(), bowling.leaves.size());
}

TEST(Partitioner, CalculationsReducedVsGridPoints)
{
    // The headline of §4.3: a handful of thousands of cutoff
    // calculations instead of tens of millions of grid points.
    const PartitionResult result = partitionViking();
    const auto grid = world::gen::makeGrid(gameInfo(GameId::Viking));
    EXPECT_LT(result.cutoffCalculations, grid.pointCount() / 1000);
    // Samples happen at every visited quadtree node: K per node, and a
    // quadtree with L leaves has (L - 1) / 3 internal nodes.
    const std::uint64_t leaves = result.leaves.size();
    const std::uint64_t nodes = leaves + (leaves - 1) / 3;
    EXPECT_EQ(result.cutoffCalculations,
              static_cast<std::uint64_t>(
                  PartitionParams{}.samplesPerRegion) *
                  nodes);
}

TEST(Partitioner, ConstraintViolationRateLow)
{
    // Figure 6 with K = 10: violations under a few percent over
    // random roam locations (the paper reports < 0.25% over traces; we
    // allow slack for the simulated world's sharper density edges).
    const auto world = makeWorld(GameId::Viking, 42);
    const PartitionResult result = partitionViking();
    const RegionIndex index(world.bounds(), result.leaves);
    Rng rng(10);
    std::vector<Vec2> locations;
    for (int i = 0; i < 400; ++i) {
        locations.push_back(
            Vec2{rng.uniform(world.bounds().lo.x, world.bounds().hi.x),
                 rng.uniform(world.bounds().lo.y, world.bounds().hi.y)});
    }
    const double rate = constraintViolationRate(
        world, device::pixel2(), index, locations,
        PartitionParams{}.constraint);
    // The paper reports < 0.25% over trace locations; our synthetic
    // world has sharper density edges, so allow more headroom while
    // still requiring the vast majority of locations to be safe.
    EXPECT_LT(rate, 0.15);
}

TEST(Partitioner, MoreSamplesLowerViolationRate)
{
    // The Figure 6 trend: larger K -> fewer violations (statistically).
    const auto world = makeWorld(GameId::Viking, 42);
    const auto &profile = device::pixel2();
    Rng rng(11);
    std::vector<Vec2> locations;
    for (int i = 0; i < 300; ++i)
        locations.push_back(
            Vec2{rng.uniform(world.bounds().lo.x, world.bounds().hi.x),
                 rng.uniform(world.bounds().lo.y, world.bounds().hi.y)});

    PartitionParams few;
    few.samplesPerRegion = 2;
    PartitionParams many;
    many.samplesPerRegion = 12;
    const auto part_few = partitionWorld(world, profile, few);
    const auto part_many = partitionWorld(world, profile, many);
    const RegionIndex idx_few(world.bounds(), part_few.leaves);
    const RegionIndex idx_many(world.bounds(), part_many.leaves);
    const double rate_few = constraintViolationRate(
        world, profile, idx_few, locations, few.constraint);
    const double rate_many = constraintViolationRate(
        world, profile, idx_many, locations, many.constraint);
    EXPECT_LE(rate_many, rate_few + 0.02);
}

TEST(Partitioner, ReachabilityMarksOffTrackLeavesUnreachable)
{
    const auto &info = gameInfo(GameId::Racing);
    const auto world = makeWorld(GameId::Racing, 42);
    PartitionParams params;
    params.reachable = world::gen::makeReachability(info, world);
    const auto result = partitionWorld(world, device::pixel2(), params);
    int reachable = 0, unreachable = 0;
    for (const LeafRegion &leaf : result.leaves)
        (leaf.reachable ? reachable : unreachable)++;
    EXPECT_GT(reachable, 10);
    EXPECT_GT(unreachable, 10);
}

TEST(Partitioner, DeterministicInSeed)
{
    const auto world = makeWorld(GameId::Pool, 42);
    const auto a = partitionWorld(world, device::pixel2(), {});
    const auto b = partitionWorld(world, device::pixel2(), {});
    ASSERT_EQ(a.leaves.size(), b.leaves.size());
    for (std::size_t i = 0; i < a.leaves.size(); ++i)
        EXPECT_DOUBLE_EQ(a.leaves[i].cutoffRadius,
                         b.leaves[i].cutoffRadius);
}

TEST(Partitioner, ModeledHoursWithinPaperOrder)
{
    // Table 3: offline processing takes between ~0.1 and ~7 hours.
    const PartitionResult result = partitionViking();
    EXPECT_GT(result.modeledHours, 0.05);
    EXPECT_LT(result.modeledHours, 24.0);
}

} // namespace
} // namespace coterie::core
