/**
 * @file
 * Tests for the render-cost model: monotonicity in the depth annulus,
 * LOD falloff, saturation behaviour, world-bounded terrain reach, and
 * the near/far layer split adding up.
 */

#include <gtest/gtest.h>

#include "render/cost_model.hh"
#include "world/gen/generators.hh"

namespace coterie::render {
namespace {

using geom::Vec2;
using world::gen::GameId;
using world::gen::makeWorld;

TEST(CostModel, MonotoneInOuterRadius)
{
    const auto world = makeWorld(GameId::Viking, 42);
    const Vec2 eye = world.bounds().center();
    double prev = 0.0;
    for (double r : {1.0, 4.0, 16.0, 64.0, 200.0}) {
        const double tris = effectiveTriangles(world, eye, 0.0, r);
        EXPECT_GE(tris, prev) << "r=" << r;
        prev = tris;
    }
}

TEST(CostModel, RenderTimeIncludesBaseCost)
{
    const auto world = makeWorld(GameId::Pool, 42);
    CostModelParams params;
    const double rt =
        renderTimeMs(world, world.bounds().center(), 0.0, 0.01, params);
    EXPECT_GE(rt, params.baseMs);
}

TEST(CostModel, DenseLocationCostsMoreThanSparse)
{
    const auto world = makeWorld(GameId::Viking, 42);
    // Market square (center) vs a corner.
    const double dense = effectiveTriangles(
        world, world.bounds().center(), 0.0, 10.0);
    const double sparse = effectiveTriangles(
        world, world.bounds().lo + Vec2{3.0, 3.0}, 0.0, 10.0);
    EXPECT_GT(dense, sparse * 1.5);
}

TEST(CostModel, LodReducesDistantContribution)
{
    const auto world = makeWorld(GameId::CTS, 42);
    const Vec2 eye = world.bounds().center();
    CostModelParams strong;
    strong.lodDistance = 10.0;
    strong.saturationTriangles = 0.0; // isolate LOD
    CostModelParams weak;
    weak.lodDistance = 100.0;
    weak.saturationTriangles = 0.0;
    EXPECT_LT(effectiveTriangles(world, eye, 0.0, 400.0, strong),
              effectiveTriangles(world, eye, 0.0, 400.0, weak));
}

TEST(CostModel, SaturationCompressesHugeScenes)
{
    const auto world = makeWorld(GameId::CTS, 42);
    const Vec2 eye = world.bounds().center();
    CostModelParams unsat;
    unsat.saturationTriangles = 0.0;
    CostModelParams sat;
    const double raw = effectiveTriangles(world, eye, 0.0, 600.0, unsat);
    const double compressed =
        effectiveTriangles(world, eye, 0.0, 600.0, sat);
    EXPECT_LT(compressed, raw);
    EXPECT_LT(compressed, sat.saturationTriangles);
}

TEST(CostModel, AnnulusSplitApproximatelyAdditiveBeforeSaturation)
{
    const auto world = makeWorld(GameId::Viking, 42);
    const Vec2 eye = world.bounds().center() + Vec2{20.0, 10.0};
    CostModelParams params;
    params.saturationTriangles = 0.0; // additivity holds pre-saturation
    const double cutoff = 8.0;
    const double near_tris =
        effectiveTriangles(world, eye, 0.0, cutoff, params);
    const double far_tris =
        effectiveTriangles(world, eye, cutoff, 600.0, params);
    const double whole =
        effectiveTriangles(world, eye, 0.0, 600.0, params);
    // Objects are binned by footprint distance, so the two layers
    // partition the whole (terrain integral is exactly additive).
    EXPECT_NEAR(near_tris + far_tris, whole, whole * 0.02);
}

TEST(CostModel, TerrainReachClampedByWorldBounds)
{
    // A small world's terrain cannot contribute as if it were endless:
    // cost from the world center must exceed cost from a corner-facing
    // view of... rather: the same params on a tiny world yield less
    // terrain cost than on a huge world.
    const auto small = makeWorld(GameId::Pool, 42);     // 10x13
    const auto big = makeWorld(GameId::Bowling, 42);    // 34x41
    CostModelParams params;
    params.saturationTriangles = 0.0;
    // Compare pure-terrain annuli well beyond both worlds' objects: use
    // the far band where only terrain remains.
    const double small_far = effectiveTriangles(
        small, small.bounds().center(), 60.0, 600.0, params);
    const double big_far = effectiveTriangles(
        big, big.bounds().center(), 60.0, 600.0, params);
    EXPECT_DOUBLE_EQ(small_far, 0.0); // nothing beyond a 10x13 room
    EXPECT_DOUBLE_EQ(big_far, 0.0);
    const double small_mid = effectiveTriangles(
        small, small.bounds().center(), 0.0, 600.0, params);
    const double big_mid = effectiveTriangles(
        big, big.bounds().center(), 0.0, 600.0, params);
    EXPECT_GT(big_mid, small_mid);
}

TEST(CostModel, MobileWholeSceneInPaperRegime)
{
    // Table 1 Mobile rows: the three evaluation games render their
    // whole scene in ~30-55 ms on the device (21-27 FPS), far above
    // the 16.7 ms budget.
    for (GameId id :
         {GameId::Viking, GameId::CTS, GameId::Racing}) {
        const auto world = makeWorld(id, 42);
        const Vec2 eye = world.bounds().center() +
                         Vec2{world.bounds().width() * 0.1, 0.0};
        const double rt = renderTimeMs(world, eye, 0.0, 600.0, {});
        EXPECT_GT(rt, 16.7) << world.name();
        EXPECT_LT(rt, 80.0) << world.name();
    }
}

} // namespace
} // namespace coterie::render
