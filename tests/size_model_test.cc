/**
 * @file
 * Tests for the calibrated H.264 frame-size model against the paper's
 * anchor points: 4K whole-BE panoramas ~440-580 KB, far-BE ~150-280 KB,
 * Thin-client display frames ~590-680 KB (Tables 1 and 8).
 */

#include <gtest/gtest.h>

#include "image/size_model.hh"

namespace coterie::image {
namespace {

TEST(SizeModel, WholeBeAnchorsInPaperRange)
{
    FrameSizeSpec spec;
    spec.content = FrameContent::WholeBE;
    spec.complexity = 0.3;
    const double kb_low = modelFrameBytes(spec) / 1024.0;
    spec.complexity = 0.6;
    const double kb_high = modelFrameBytes(spec) / 1024.0;
    EXPECT_GT(kb_low, 300.0);
    EXPECT_LT(kb_high, 900.0);
}

TEST(SizeModel, FarBeRoughlyHalfToThirdOfWhole)
{
    FrameSizeSpec whole;
    whole.content = FrameContent::WholeBE;
    whole.complexity = 0.5;
    FrameSizeSpec far = whole;
    far.content = FrameContent::FarBE;
    const double ratio =
        static_cast<double>(modelFrameBytes(far)) /
        static_cast<double>(modelFrameBytes(whole));
    EXPECT_GT(ratio, 0.25);
    EXPECT_LT(ratio, 0.6);
}

TEST(SizeModel, FovFrameMatchesThinClientRange)
{
    FrameSizeSpec spec;
    spec.content = FrameContent::FovFrame;
    spec.width = 1920;
    spec.height = 1080;
    spec.complexity = 0.5;
    const double kb = modelFrameBytes(spec) / 1024.0;
    EXPECT_GT(kb, 400.0);
    EXPECT_LT(kb, 800.0);
}

TEST(SizeModel, MonotoneInComplexity)
{
    FrameSizeSpec spec;
    spec.content = FrameContent::FarBE;
    std::size_t prev = 0;
    for (double c : {0.0, 0.2, 0.5, 0.8, 1.0}) {
        spec.complexity = c;
        const std::size_t bytes = modelFrameBytes(spec);
        EXPECT_GT(bytes, prev);
        prev = bytes;
    }
}

TEST(SizeModel, ScalesWithResolution)
{
    FrameSizeSpec big;
    big.content = FrameContent::WholeBE;
    FrameSizeSpec small = big;
    small.width = 1920;
    small.height = 1080;
    const auto big_bytes = modelFrameBytes(big);
    const auto small_bytes = modelFrameBytes(small);
    // 4x pixels -> ~4x bytes (modulo fixed overhead).
    EXPECT_NEAR(static_cast<double>(big_bytes) /
                    static_cast<double>(small_bytes),
                4.0, 0.3);
}

TEST(SizeModel, ComplexityClamped)
{
    FrameSizeSpec lo;
    lo.complexity = -5.0;
    FrameSizeSpec zero;
    zero.complexity = 0.0;
    EXPECT_EQ(modelFrameBytes(lo), modelFrameBytes(zero));
    FrameSizeSpec hi;
    hi.complexity = 99.0;
    FrameSizeSpec one;
    one.complexity = 1.0;
    EXPECT_EQ(modelFrameBytes(hi), modelFrameBytes(one));
}

} // namespace
} // namespace coterie::image
