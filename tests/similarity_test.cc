/**
 * @file
 * Tests for the similarity models — the scientific heart of the paper:
 * the near-object effect (whole-BE frames of adjacent locations are
 * dissimilar; far-BE frames are similar), monotonicity of far-BE SSIM
 * in the cutoff radius (Figure 5), and the analytic surrogate's
 * agreement with rendered SSIM.
 */

#include <gtest/gtest.h>

#include "core/similarity.hh"
#include "world/gen/generators.hh"

namespace coterie::core {
namespace {

using geom::Vec2;
using world::gen::GameId;
using world::gen::makeWorld;

const world::VirtualWorld &
viking()
{
    static const world::VirtualWorld world = makeWorld(GameId::Viking, 42);
    return world;
}

/** A location in the dense village with near objects. */
Vec2
denseSpot()
{
    return viking().bounds().center() + Vec2{9.0, 7.0};
}

TEST(RenderedSimilarity, IdenticalLocationScoresOne)
{
    const RenderedSimilarity model(viking(), 96, 48);
    EXPECT_NEAR(model.farBeSsim(denseSpot(), denseSpot(), 10.0), 1.0,
                1e-9);
}

TEST(RenderedSimilarity, NearObjectEffect)
{
    // The paper's §4.2 observation: for adjacent grid points (3.1 cm
    // apart), whole-BE frames are NOT similar (SSIM < 0.9) while far-BE
    // frames after decoupling ARE (SSIM > 0.9).
    const RenderedSimilarity model(viking(), 192, 96);
    const Vec2 a = denseSpot();
    const Vec2 b = a + Vec2{1.0 / 32.0, 0.0};
    const double whole = model.farBeSsim(a, b, 0.0);
    const double far = model.farBeSsim(a, b, 8.0);
    EXPECT_LT(whole, 0.9);
    EXPECT_GT(far, 0.9);
    EXPECT_GT(far, whole + 0.05);
}

TEST(RenderedSimilarity, MonotoneInCutoffRadius)
{
    // Figure 5: SSIM between nearby far-BE frames rises quickly and
    // monotonically with the cutoff radius.
    const RenderedSimilarity model(viking(), 128, 64);
    const Vec2 a = denseSpot();
    const Vec2 b = a + Vec2{0.1, 0.0};
    double prev = 0.0;
    for (double cutoff : {1.0, 3.0, 8.0, 20.0}) {
        const double s = model.farBeSsim(a, b, cutoff);
        EXPECT_GE(s, prev - 0.02) << "cutoff " << cutoff;
        prev = s;
    }
    EXPECT_GT(prev, 0.95);
}

TEST(RenderedSimilarity, DecaysWithDisplacement)
{
    const RenderedSimilarity model(viking(), 128, 64);
    const Vec2 a = denseSpot();
    const double near = model.farBeSsim(a, a + Vec2{0.05, 0.0}, 6.0);
    const double far = model.farBeSsim(a, a + Vec2{2.0, 0.0}, 6.0);
    EXPECT_GT(near, far);
}

TEST(AnalyticSimilarity, BasicShape)
{
    const AnalyticSimilarity model;
    EXPECT_DOUBLE_EQ(model.farBeSsim({0, 0}, {0, 0}, 5.0), 1.0);
    // Monotone decreasing in displacement.
    double prev = 1.0;
    for (double d : {0.05, 0.2, 1.0, 5.0}) {
        const double s = model.farBeSsim({0, 0}, {d, 0}, 5.0);
        EXPECT_LT(s, prev);
        prev = s;
    }
    // Bounded below by the floor.
    EXPECT_GE(model.farBeSsim({0, 0}, {1000, 0}, 5.0),
              model.params().floor - 1e-9);
}

TEST(AnalyticSimilarity, MonotoneInCutoff)
{
    const AnalyticSimilarity model;
    EXPECT_LT(model.farBeSsim({0, 0}, {0.5, 0}, 2.0),
              model.farBeSsim({0, 0}, {0.5, 0}, 20.0));
}

TEST(AnalyticSimilarity, MaxDisplacementIsExactInverse)
{
    const AnalyticSimilarity model;
    for (double cutoff : {2.0, 10.0, 50.0}) {
        const double d = model.maxDisplacement(cutoff, 0.9);
        const double s = model.farBeSsim({0, 0}, {d, 0}, cutoff);
        EXPECT_NEAR(s, 0.9, 1e-9) << "cutoff " << cutoff;
    }
}

TEST(AnalyticSimilarity, MaxDisplacementScalesWithCutoff)
{
    const AnalyticSimilarity model;
    EXPECT_GT(model.maxDisplacement(50.0, 0.9),
              model.maxDisplacement(5.0, 0.9) * 5.0);
}

TEST(AnalyticSimilarityDeath, ThresholdBelowFloorPanics)
{
    const AnalyticSimilarity model;
    EXPECT_DEATH(model.maxDisplacement(5.0, 0.05), "range");
}

TEST(Calibration, FitsDecayToRenderedData)
{
    const auto params = calibrateAnalytic(viking(), {4.0, 12.0}, 4, 5);
    EXPECT_GT(params.decay, 0.2);
    EXPECT_LT(params.decay, 20.0);
    // The calibrated analytic model should rank displacements the same
    // way the renderer does at a probe point.
    const AnalyticSimilarity analytic(params);
    const RenderedSimilarity rendered(viking(), 128, 64);
    const Vec2 a = denseSpot();
    const double cutoff = 8.0;
    const double rendered_small =
        rendered.farBeSsim(a, a + Vec2{0.05, 0}, cutoff);
    const double analytic_small =
        analytic.farBeSsim(a, a + Vec2{0.05, 0}, cutoff);
    EXPECT_NEAR(analytic_small, rendered_small, 0.12);
}

} // namespace
} // namespace coterie::core
