/**
 * @file
 * Tests for the reuse-distance derivation (§5.3): the returned distance
 * guarantees SSIM >= 0.9 under the similarity model, grows with the
 * cutoff radius, and the per-region minimum is conservative.
 */

#include <gtest/gtest.h>

#include "core/dist_thresh.hh"
#include "world/gen/generators.hh"

namespace coterie::core {
namespace {

using geom::Vec2;

TEST(DistThresh, SsimAtThresholdMeetsTarget)
{
    const AnalyticSimilarity model;
    DistThreshParams params;
    Rng rng(3);
    for (double cutoff : {2.0, 8.0, 40.0}) {
        const double d =
            distThreshAt(model, {50, 50}, cutoff, params, rng);
        ASSERT_GT(d, 0.0);
        EXPECT_GE(model.farBeSsim({50, 50}, {50 + d, 50}, cutoff),
                  params.ssimThreshold - 0.02);
    }
}

TEST(DistThresh, GrowsWithCutoff)
{
    const AnalyticSimilarity model;
    DistThreshParams params;
    Rng rng(3);
    const double small =
        distThreshAt(model, {0, 0}, 2.0, params, rng);
    const double large =
        distThreshAt(model, {0, 0}, 60.0, params, rng);
    EXPECT_GT(large, small * 5.0);
}

TEST(DistThresh, CappedAtStartDistance)
{
    // With a huge cutoff, the analytic SSIM barely decays and the
    // search bracket saturates.
    AnalyticSimilarityParams loose;
    loose.decay = 0.25;
    const AnalyticSimilarity model(loose);
    DistThreshParams params;
    params.startDistance = 32.0;
    Rng rng(5);
    const double d =
        distThreshAt(model, {0, 0}, 5000.0, params, rng);
    EXPECT_DOUBLE_EQ(d, 32.0);
}

TEST(DistThresh, PerRegionDerivationCoversAllLeaves)
{
    const auto world =
        world::gen::makeWorld(world::gen::GameId::Pool, 42);
    const auto partition = partitionWorld(world, device::pixel2(), {});
    const RegionIndex index(world.bounds(), partition.leaves);
    const AnalyticSimilarity model;
    const auto thresholds = deriveDistThresholds(index, model, {});
    ASSERT_EQ(thresholds.size(), partition.leaves.size());
    for (std::size_t i = 0; i < thresholds.size(); ++i) {
        EXPECT_GE(thresholds[i], 0.0);
        EXPECT_LE(thresholds[i], DistThreshParams{}.startDistance);
        // Region minimum is conservative: no larger than the analytic
        // inverse at the leaf's cutoff.
        EXPECT_LE(thresholds[i],
                  model.maxDisplacement(
                      partition.leaves[i].cutoffRadius, 0.9) +
                      DistThreshParams{}.tolerance + 1e-9);
    }
}

TEST(DistThresh, LargerCutoffLeavesGetLargerThresholds)
{
    const auto world =
        world::gen::makeWorld(world::gen::GameId::Viking, 42);
    const auto partition = partitionWorld(world, device::pixel2(), {});
    const RegionIndex index(world.bounds(), partition.leaves);
    const AnalyticSimilarity model;
    const auto thresholds = deriveDistThresholds(index, model, {});
    // Correlation between leaf cutoff and threshold must be positive.
    double mean_c = 0, mean_t = 0;
    for (std::size_t i = 0; i < thresholds.size(); ++i) {
        mean_c += partition.leaves[i].cutoffRadius;
        mean_t += thresholds[i];
    }
    mean_c /= thresholds.size();
    mean_t /= thresholds.size();
    double cov = 0;
    for (std::size_t i = 0; i < thresholds.size(); ++i) {
        cov += (partition.leaves[i].cutoffRadius - mean_c) *
               (thresholds[i] - mean_t);
    }
    EXPECT_GT(cov, 0.0);
}

} // namespace
} // namespace coterie::core
