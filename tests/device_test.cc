/**
 * @file
 * Tests for the phone model: decode latency scaling, CPU/GPU load
 * composition and clamping, the power model's ~4 W Coterie operating
 * point (Figure 12), battery life, and the thermal RC model.
 */

#include <gtest/gtest.h>

#include "device/phone.hh"
#include "device/power.hh"
#include "device/thermal.hh"

namespace coterie::device {
namespace {

TEST(Phone, DecodeScalesWithResolution)
{
    const PhoneProfile &p = pixel2();
    const double pano_4k = decodeMs(p, 3840, 2160);
    const double display = decodeMs(p, 1920, 1080);
    EXPECT_GT(pano_4k, display);
    // Hardware decoder does 4K panoramas within a frame interval.
    EXPECT_LT(pano_4k, 16.7);
    EXPECT_GT(pano_4k, 5.0);
}

TEST(Phone, GpuLoadFromRenderTime)
{
    const PhoneProfile &p = pixel2();
    // 10 ms render at 60 fps = 60% busy + compose overhead.
    EXPECT_NEAR(gpuLoadPct(p, 10.0, 60.0), 65.0, 1.0);
    // Saturates at 100.
    EXPECT_DOUBLE_EQ(gpuLoadPct(p, 50.0, 60.0), 100.0);
    EXPECT_GE(gpuLoadPct(p, 0.0, 0.0), 0.0);
}

TEST(Phone, CpuLoadComposition)
{
    const PhoneProfile &p = pixel2();
    CpuLoadInputs idle;
    idle.rendering = false;
    const double base = cpuLoadPct(p, idle);
    CpuLoadInputs busy;
    busy.networkMbps = 250.0;
    busy.decodeFps = 60.0;
    busy.syncHz = 60.0;
    busy.rendering = true;
    const double loaded = cpuLoadPct(p, busy);
    EXPECT_GT(loaded, base + 10.0);
    EXPECT_LE(loaded, 100.0);
}

TEST(Power, CoterieOperatingPointAboutFourWatts)
{
    // Figure 12: steady ~4 W under Coterie (CPU ~30%, GPU ~55%,
    // tens of Mbps on the radio, display locked at 100%).
    PowerInputs in;
    in.cpuPct = 30.0;
    in.gpuPct = 55.0;
    in.networkMbps = 30.0;
    in.displayOn = true;
    const double watts = powerDrawW(PowerModel{}, in);
    EXPECT_NEAR(watts, 4.0, 0.6);
}

TEST(Power, MonotoneInEachComponent)
{
    const PowerModel model;
    PowerInputs in;
    in.cpuPct = 20;
    in.gpuPct = 20;
    in.networkMbps = 10;
    const double base = powerDrawW(model, in);
    PowerInputs more = in;
    more.cpuPct = 60;
    EXPECT_GT(powerDrawW(model, more), base);
    more = in;
    more.gpuPct = 80;
    EXPECT_GT(powerDrawW(model, more), base);
    more = in;
    more.networkMbps = 300;
    EXPECT_GT(powerDrawW(model, more), base);
    more = in;
    more.displayOn = false;
    EXPECT_LT(powerDrawW(model, more), base);
}

TEST(Power, BatteryLifeOverTwoPointFiveHours)
{
    // Paper: at ~4 W the 2770 mAh battery lasts > 2.5 hours.
    EXPECT_GT(batteryLifeHours(pixel2(), 4.0), 2.5);
    EXPECT_LT(batteryLifeHours(pixel2(), 4.0), 3.5);
}

TEST(Thermal, RelaxesTowardSteadyState)
{
    ThermalModel model{ThermalParams{}};
    const double target = model.steadyStateC(4.0);
    for (int i = 0; i < 3600; ++i) // 1 h at 1 s steps: several taus
        model.step(4.0, 1.0);
    EXPECT_NEAR(model.temperatureC(), target, 1.0);
}

TEST(Thermal, StaysUnderPixel2LimitAtCoteriePower)
{
    // Figure 12: SoC temperature rises gradually but stays below the
    // 52 C thermal-engine limit over a 30-minute 4-player run.
    ThermalModel model{ThermalParams{}};
    for (int i = 0; i < 1800; ++i)
        model.step(4.2, 1.0);
    EXPECT_LT(model.temperatureC(), pixel2().thermalLimitC);
    EXPECT_GT(model.temperatureC(), 35.0); // it does heat up
}

TEST(Thermal, MonotoneRiseUnderConstantPower)
{
    ThermalModel model{ThermalParams{}};
    double prev = model.temperatureC();
    for (int i = 0; i < 20; ++i) {
        model.step(4.0, 30.0);
        EXPECT_GE(model.temperatureC(), prev);
        prev = model.temperatureC();
    }
}

TEST(Thermal, CoolsWhenPowerDrops)
{
    ThermalModel model{ThermalParams{}};
    for (int i = 0; i < 600; ++i)
        model.step(5.0, 1.0);
    const double hot = model.temperatureC();
    for (int i = 0; i < 600; ++i)
        model.step(0.5, 1.0);
    EXPECT_LT(model.temperatureC(), hot);
}

} // namespace
} // namespace coterie::device
