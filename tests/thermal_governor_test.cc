/**
 * @file
 * Tests for the thermal governor and the channel's jitter/loss options
 * (failure-injection substrate): throttling kicks in only above the
 * limit, and a lossy/jittery channel degrades gracefully instead of
 * breaking the simulation.
 */

#include <gtest/gtest.h>

#include "device/thermal.hh"
#include "net/channel.hh"
#include "support/stats.hh"

namespace coterie {
namespace {

TEST(ThermalGovernor, NoThrottleBelowLimit)
{
    device::ThermalGovernor governor;
    EXPECT_DOUBLE_EQ(governor.renderTimeMultiplier(30.0), 1.0);
    EXPECT_DOUBLE_EQ(governor.renderTimeMultiplier(52.0), 1.0);
    EXPECT_DOUBLE_EQ(governor.throttledFps(10.0, 45.0), 60.0);
}

TEST(ThermalGovernor, ThrottleGrowsAboveLimit)
{
    device::ThermalGovernor governor;
    const double mild = governor.renderTimeMultiplier(54.0);
    const double severe = governor.renderTimeMultiplier(60.0);
    EXPECT_GT(mild, 1.0);
    EXPECT_GT(severe, mild);
    // A 12 ms render at +8 C over the limit blows the 16.7 ms budget.
    EXPECT_LT(governor.throttledFps(12.0, 60.0), 60.0);
}

TEST(ThermalGovernor, CoterieOperatingPointNeverThrottles)
{
    // Figure 12: the steady-state temperature at Coterie's ~4 W stays
    // below the 52 C limit, so the governor multiplier is exactly 1.
    device::ThermalModel model{device::ThermalParams{}};
    for (int i = 0; i < 3600; ++i)
        model.step(4.2, 1.0);
    device::ThermalGovernor governor;
    EXPECT_DOUBLE_EQ(
        governor.renderTimeMultiplier(model.temperatureC()), 1.0);
}

TEST(ThermalGovernor, MobileWorkloadWouldThrottle)
{
    // A Mobile-style 100% GPU workload draws ~6.5 W: the steady state
    // exceeds the limit and the governor engages — the paper's point
    // about temperature control restricting long runs.
    device::ThermalModel model{device::ThermalParams{}};
    for (int i = 0; i < 7200; ++i)
        model.step(6.5, 1.0);
    device::ThermalGovernor governor;
    EXPECT_GT(model.temperatureC(), governor.limitC);
    EXPECT_GT(governor.renderTimeMultiplier(model.temperatureC()), 1.0);
}

TEST(ChannelFaults, JitterDelaysButDelivers)
{
    sim::EventQueue queue;
    net::ChannelParams params;
    params.baseLatencyMs = 1.0;
    params.jitterMeanMs = 5.0;
    params.contentionPenalty = 0.0;
    net::SharedChannel channel(queue, params);
    int done = 0;
    RunningStats latency;
    for (int i = 0; i < 200; ++i) {
        const sim::TimeMs start = queue.now();
        channel.startTransfer(125000, [&, start](sim::TimeMs t) {
            ++done;
            latency.add(t - start);
        });
    }
    queue.runToCompletion();
    EXPECT_EQ(done, 200);
    // Mean latency exceeds the no-jitter case (1 ms + transfer time).
    EXPECT_GT(latency.mean(), 1.0 + 2.0);
    // And the latencies vary (jitter is actually random).
    EXPECT_GT(latency.stddev(), 1.0);
}

TEST(ChannelFaults, LossAddsRetransmissionCost)
{
    auto run = [](double loss) {
        sim::EventQueue queue;
        net::ChannelParams params;
        params.baseLatencyMs = 0.5;
        params.contentionPenalty = 0.0;
        params.lossProbability = loss;
        net::SharedChannel channel(queue, params);
        RunningStats latency;
        for (int i = 0; i < 300; ++i) {
            const sim::TimeMs start = queue.now();
            channel.startTransfer(250000, [&, start](sim::TimeMs t) {
                latency.add(t - start);
            });
        }
        queue.runToCompletion();
        return latency.mean();
    };
    // With every transfer hit (p=1), the 10% payload re-serve plus the
    // 8 ms penalty must show up clearly in the mean latency.
    EXPECT_GT(run(1.0), run(0.0) * 1.08);
}

TEST(ChannelFaults, FaultDrawsAreDeterministicInSeed)
{
    auto trace = [](std::uint64_t seed) {
        sim::EventQueue queue;
        net::ChannelParams params;
        params.jitterMeanMs = 3.0;
        params.lossProbability = 0.2;
        params.seed = seed;
        net::SharedChannel channel(queue, params);
        std::vector<double> completions;
        for (int i = 0; i < 50; ++i)
            channel.startTransfer(
                100000, [&](sim::TimeMs t) { completions.push_back(t); });
        queue.runToCompletion();
        return completions;
    };
    EXPECT_EQ(trace(9), trace(9));
    EXPECT_NE(trace(9), trace(10));
}

} // namespace
} // namespace coterie
