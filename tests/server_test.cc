/**
 * @file
 * Tests for the frame store (server-side catalogue): deterministic
 * sizes, far-BE smaller than whole-BE (the 2-3x factor behind
 * "Coterie w/o cache" in Figure 11), and sane absolute values.
 */

#include <gtest/gtest.h>

#include "core/server.hh"
#include "world/gen/generators.hh"

namespace coterie::core {
namespace {

using world::GridPoint;
using world::gen::GameId;

struct ServerFixture : testing::Test
{
    ServerFixture()
        : world(world::gen::makeWorld(GameId::Viking, 42)),
          grid(world::gen::makeGrid(
              world::gen::gameInfo(GameId::Viking))),
          partition(partitionWorld(world, device::pixel2(), {})),
          regions(world.bounds(), partition.leaves),
          frames(world, grid, regions)
    {
    }

    world::VirtualWorld world;
    world::GridMap grid;
    PartitionResult partition;
    RegionIndex regions;
    FrameStore frames;
};

TEST_F(ServerFixture, SizesAreDeterministic)
{
    const GridPoint g{100, 100};
    EXPECT_EQ(frames.farBeBytes(g), frames.farBeBytes(g));
    EXPECT_EQ(frames.wholeBeBytes(g), frames.wholeBeBytes(g));
    EXPECT_EQ(frames.fovFrameBytes(g), frames.fovFrameBytes(g));
}

TEST_F(ServerFixture, SizesAreQueryOrderIndependent)
{
    // The complexity cache is keyed per leaf region and first-writer
    // wins, so the cached value must be a pure function of the leaf —
    // never of whichever query point happened to arrive first. On the
    // parallel engine concurrent sessions race to seed it; a
    // query-derived value would make frame sizes (and therefore whole
    // simulations) depend on lane interleaving.
    GridPoint a{100, 100};
    GridPoint b = a;
    const LeafRegion &leafA = regions.leafAt(grid.position(a));
    for (std::int64_t dx = 1; dx < 50; ++dx) {
        const GridPoint cand{a.ix + dx, a.iy};
        if (&regions.leafAt(grid.position(cand)) == &leafA) {
            b = cand;
            break;
        }
    }
    ASSERT_NE(a.ix, b.ix) << "no second grid point in the same leaf";

    FrameStore ab(world, grid, regions);
    FrameStore ba(world, grid, regions);
    const auto abFar = ab.farBeBytes(a);    // a seeds the leaf
    const auto baFarB = ba.farBeBytes(b);   // b seeds the leaf
    EXPECT_EQ(abFar, ab.farBeBytes(b));     // same leaf, same bytes
    EXPECT_EQ(baFarB, ba.farBeBytes(a));
    EXPECT_EQ(abFar, baFarB);               // order never mattered
    EXPECT_EQ(ab.wholeBeBytes(a), ba.wholeBeBytes(b));
    EXPECT_EQ(ab.wholeBeBytes(b), ba.wholeBeBytes(a));
}

TEST_F(ServerFixture, FarBeSmallerThanWholeBe)
{
    // §4.3: near BE and far BE frames are each about half the original
    // BE frame; far-BE transfers are 2-3x smaller than whole-BE.
    for (std::int64_t x = 200; x < grid.cols(); x += grid.cols() / 7) {
        const GridPoint g{x, grid.rows() / 2};
        const double ratio =
            static_cast<double>(frames.wholeBeBytes(g)) /
            static_cast<double>(frames.farBeBytes(g));
        EXPECT_GT(ratio, 1.5) << "at x=" << x;
        EXPECT_LT(ratio, 5.0) << "at x=" << x;
    }
}

TEST_F(ServerFixture, AbsoluteSizesInPaperRange)
{
    // Viking Village: whole-BE ~550 KB, far-BE ~280 KB (Tables 1, 8).
    const double whole_kb = frames.meanWholeBeKb();
    const double far_kb = frames.meanFarBeKb();
    EXPECT_GT(whole_kb, 300.0);
    EXPECT_LT(whole_kb, 900.0);
    EXPECT_GT(far_kb, 120.0);
    EXPECT_LT(far_kb, 450.0);
}

TEST_F(ServerFixture, DenseRegionsEncodeLarger)
{
    // Content complexity follows object density.
    const GridPoint market = grid.snap(world.bounds().center());
    const GridPoint edge = grid.snap({4.0, 4.0});
    EXPECT_GE(frames.wholeBeBytes(market), frames.wholeBeBytes(edge));
}

TEST_F(ServerFixture, FovFramesAtDisplayResolution)
{
    const GridPoint g{500, 500};
    const double kb = frames.fovFrameBytes(g) / 1024.0;
    // Table 1 Thin-client: 586-680 KB per streamed frame.
    EXPECT_GT(kb, 250.0);
    EXPECT_LT(kb, 900.0);
}

} // namespace
} // namespace coterie::core
