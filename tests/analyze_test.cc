/**
 * @file
 * Tests for coterie-analyze (tools/lint): the tokenizer, the
 * per-file model, and the three cross-translation-unit analyses.
 *
 * Fixtures are in-memory (path, content) pairs fed to buildRepoModel
 * — no filesystem. As in lint_test.cc, fixture code lives in raw
 * string literals, which the tokenizer reduces to single String
 * tokens, so scanning this file with coterie-lint stays clean.
 */

#include <gtest/gtest.h>

#include "analyze.hh"
#include "model.hh"
#include "token.hh"

namespace {

using coterie::lint::analyzeLayering;
using coterie::lint::analyzeLockOrder;
using coterie::lint::analyzeRepo;
using coterie::lint::analyzeUnusedIncludes;
using coterie::lint::buildFileModel;
using coterie::lint::buildRepoModel;
using coterie::lint::defaultLayerConfig;
using coterie::lint::FileModel;
using coterie::lint::Finding;
using coterie::lint::LayerConfig;
using coterie::lint::parseAllowlist;
using coterie::lint::RepoModel;
using coterie::lint::Tok;
using coterie::lint::tokenize;
using coterie::lint::TokenStream;

bool
fired(const std::vector<Finding> &findings, const std::string &rule)
{
    for (const Finding &f : findings)
        if (f.rule == rule)
            return true;
    return false;
}

const Finding *
firstOf(const std::vector<Finding> &findings, const std::string &rule)
{
    for (const Finding &f : findings)
        if (f.rule == rule)
            return &f;
    return nullptr;
}

// ---------------------------------------------------------------- tokenizer

TEST(Tokenizer, RawStringsBecomeSingleTokens)
{
    const TokenStream ts =
        tokenize("auto s = R\"x(int hidden; std::thread t;)x\";\n");
    bool sawString = false;
    for (const auto &t : ts.tokens) {
        if (t.kind == Tok::String) {
            sawString = true;
            EXPECT_EQ(t.text, "int hidden; std::thread t;");
        }
        EXPECT_NE(t.text, "hidden"); // never lexed as code
    }
    EXPECT_TRUE(sawString);
}

TEST(Tokenizer, LineContinuationsSpliceWithCorrectLines)
{
    // The macro body continues across a backslash-newline; the token
    // after the directive keeps its *physical* line.
    const TokenStream ts = tokenize("#define FOO \\\n    barbaz\nint x;\n");
    ASSERT_EQ(ts.directives.size(), 1u);
    EXPECT_EQ(ts.directives[0].name, "define");
    EXPECT_EQ(ts.directives[0].arg, "FOO");
    EXPECT_EQ(ts.directives[0].line, 1);
    bool sawX = false;
    for (const auto &t : ts.tokens)
        if (t.kind == Tok::Ident && t.text == "x") {
            sawX = true;
            EXPECT_EQ(t.line, 3);
        }
    EXPECT_TRUE(sawX);
}

TEST(Tokenizer, BlockCommentsDoNotNest)
{
    // Per the standard the first */ closes the comment, so `int a;`
    // is code even after a stray inner /*.
    const TokenStream ts =
        tokenize("/* outer /* inner */ int a; /* tail */\n");
    bool sawA = false;
    for (const auto &t : ts.tokens)
        if (t.kind == Tok::Ident && t.text == "a")
            sawA = true;
    EXPECT_TRUE(sawA);
}

TEST(Tokenizer, PpNumbersKeepSeparatorsAndExponents)
{
    const TokenStream ts = tokenize("double d = 1'000.5e-3 + 0x1.8p+1;\n");
    std::vector<std::string> nums;
    for (const auto &t : ts.tokens)
        if (t.kind == Tok::Number)
            nums.push_back(t.text);
    ASSERT_EQ(nums.size(), 2u);
    EXPECT_EQ(nums[0], "1'000.5e-3");
    EXPECT_EQ(nums[1], "0x1.8p+1");
}

TEST(Tokenizer, ScopeAndArrowArePunctUnits)
{
    const TokenStream ts = tokenize("a::b->c;\n");
    std::vector<std::string> punct;
    for (const auto &t : ts.tokens)
        if (t.kind == Tok::Punct)
            punct.push_back(t.text);
    ASSERT_GE(punct.size(), 2u);
    EXPECT_EQ(punct[0], "::");
    EXPECT_EQ(punct[1], "->");
}

TEST(Tokenizer, IncludesBecomeDirectivesNotTokens)
{
    const TokenStream ts =
        tokenize("#include \"support/logging.hh\"\n#include <vector>\n");
    ASSERT_EQ(ts.directives.size(), 2u);
    EXPECT_EQ(ts.directives[0].arg, "support/logging.hh");
    EXPECT_FALSE(ts.directives[0].systemInclude);
    EXPECT_EQ(ts.directives[1].arg, "vector");
    EXPECT_TRUE(ts.directives[1].systemInclude);
    EXPECT_TRUE(ts.tokens.empty()); // include lines carry no code
}

// ------------------------------------------------------------------- model

TEST(FileModelTest, MutexDeclsCarryClassScope)
{
    const FileModel m = buildFileModel("src/x/s.hh", tokenize(R"fx(
struct Outer
{
    struct Inner
    {
        support::Mutex innerMu{"n"};
    };
    support::Mutex outerMu;
};
)fx"));
    ASSERT_EQ(m.mutexDecls.size(), 2u);
    EXPECT_EQ(m.mutexDecls[0].scope, "Outer::Inner");
    EXPECT_EQ(m.mutexDecls[0].name, "innerMu");
    EXPECT_EQ(m.mutexDecls[1].scope, "Outer");
    EXPECT_EQ(m.mutexDecls[1].name, "outerMu");
}

TEST(FileModelTest, RequiresOnDeclarationIsCollected)
{
    const FileModel m = buildFileModel("src/x/s.hh", tokenize(R"fx(
class Cache
{
    void evictOne() COTERIE_REQUIRES(mutex_);
    support::Mutex mutex_;
};
)fx"));
    ASSERT_EQ(m.declRequires.size(), 1u);
    EXPECT_EQ(m.declRequires[0].klass, "Cache");
    EXPECT_EQ(m.declRequires[0].name, "evictOne");
    ASSERT_EQ(m.declRequires[0].mutexes.size(), 1u);
    EXPECT_EQ(m.declRequires[0].mutexes[0], "mutex_");
}

TEST(FileModelTest, NestedRaiiLocksProduceEdges)
{
    const FileModel m = buildFileModel("src/x/s.cc", tokenize(R"fx(
void Pool::submit()
{
    support::MutexLock outer(submitMutex_);
    {
        support::MutexLock inner(mutex_);
    }
}
)fx"));
    ASSERT_EQ(m.funcs.size(), 1u);
    EXPECT_EQ(m.funcs[0].klass, "Pool");
    ASSERT_EQ(m.funcs[0].edges.size(), 1u);
    EXPECT_EQ(m.funcs[0].edges[0].fromExpr, "submitMutex_");
    EXPECT_EQ(m.funcs[0].edges[0].toExpr, "mutex_");
}

// ---------------------------------------------------------------- layering

TEST(Layering, SkipLayerIncludeIsFlagged)
{
    const RepoModel repo = buildRepoModel({
        {"src/support/low.hh", "#include \"core/high.hh\"\n"},
        {"src/core/high.hh", "\n"},
    });
    const auto findings =
        analyzeLayering(repo, defaultLayerConfig());
    ASSERT_TRUE(fired(findings, "layering"));
    const Finding *f = firstOf(findings, "layering");
    EXPECT_EQ(f->file, "src/support/low.hh");
    EXPECT_EQ(f->line, 1);
}

TEST(Layering, DownwardIncludeIsLegal)
{
    const RepoModel repo = buildRepoModel({
        {"src/core/high.hh", "#include \"support/low.hh\"\n"},
        {"src/support/low.hh", "\n"},
    });
    EXPECT_TRUE(analyzeLayering(repo, defaultLayerConfig()).empty());
}

TEST(Layering, AllowlistedExceptionIsSilenced)
{
    const RepoModel repo = buildRepoModel({
        {"src/support/low.hh", "#include \"core/high.hh\"\n"},
        {"src/core/high.hh", "\n"},
    });
    LayerConfig cfg = defaultLayerConfig();
    parseAllowlist("# comment\n"
                   "src/support/low.hh src/core/high.hh # why\n",
                   cfg);
    EXPECT_FALSE(fired(analyzeLayering(repo, cfg), "layering"));
}

TEST(Layering, IncludeCycleIsDetected)
{
    const RepoModel repo = buildRepoModel({
        {"src/world/a.hh", "#include \"world/b.hh\"\n"},
        {"src/world/b.hh", "#include \"world/a.hh\"\n"},
    });
    const auto findings =
        analyzeLayering(repo, defaultLayerConfig());
    ASSERT_TRUE(fired(findings, "include-cycle"));
    const Finding *f = firstOf(findings, "include-cycle");
    // Both participants appear in the message.
    EXPECT_NE(f->message.find("src/world/a.hh"), std::string::npos);
    EXPECT_NE(f->message.find("src/world/b.hh"), std::string::npos);
}

// ------------------------------------------------------------- lock order

/** Two methods of one class locking {a, b} in opposite orders. */
constexpr const char *kTwoMutexCycle = R"fx(
struct S
{
    support::Mutex a{"S::a"};
    support::Mutex b{"S::b"};
    void f();
    void g();
};
void S::f()
{
    support::MutexLock la(a);
    support::MutexLock lb(b);
}
void S::g()
{
    support::MutexLock lb(b);
    support::MutexLock la(a);
}
)fx";

TEST(LockOrder, TwoMutexCycleIsReportedWithBothWitnesses)
{
    const RepoModel repo =
        buildRepoModel({{"src/x/s.cc", kTwoMutexCycle}});
    const auto findings = analyzeLockOrder(repo);
    ASSERT_TRUE(fired(findings, "lock-order-cycle"));
    const Finding *f = firstOf(findings, "lock-order-cycle");
    // The message carries a witness file:line for *each* edge of the
    // cycle — both inversion paths.
    EXPECT_NE(f->message.find("S::a"), std::string::npos);
    EXPECT_NE(f->message.find("S::b"), std::string::npos);
    EXPECT_NE(f->message.find("src/x/s.cc:12"), std::string::npos);
    EXPECT_NE(f->message.find("src/x/s.cc:17"), std::string::npos);
}

TEST(LockOrder, ThreeMutexCycleIsReported)
{
    const RepoModel repo = buildRepoModel({{"src/x/s.cc", R"fx(
struct S
{
    support::Mutex a;
    support::Mutex b;
    support::Mutex c;
    void f();
    void g();
    void h();
};
void S::f() { support::MutexLock l1(a); support::MutexLock l2(b); }
void S::g() { support::MutexLock l1(b); support::MutexLock l2(c); }
void S::h() { support::MutexLock l1(c); support::MutexLock l2(a); }
)fx"}});
    EXPECT_TRUE(fired(analyzeLockOrder(repo), "lock-order-cycle"));
}

TEST(LockOrder, RequiresContractContributesEdges)
{
    // evict() REQUIRES(a) and locks b, so a precedes b; locking b
    // then a elsewhere closes the cycle. The REQUIRES lives on the
    // *declaration* only, as in the real codebase.
    const RepoModel repo = buildRepoModel({{"src/x/s.cc", R"fx(
struct S
{
    support::Mutex a;
    support::Mutex b;
    void evict() COTERIE_REQUIRES(a);
    void other();
};
void S::evict() { support::MutexLock lb(b); }
void S::other()
{
    support::MutexLock lb(b);
    support::MutexLock la(a);
}
)fx"}});
    EXPECT_TRUE(fired(analyzeLockOrder(repo), "lock-order-cycle"));
}

TEST(LockOrder, SequentialScopedLocksAreNotOrdered)
{
    // Scoped re-lock guard: each lock is released before the next is
    // taken (sibling scopes), so opposite sequences must NOT report a
    // cycle — there is no point where both are held.
    const RepoModel repo = buildRepoModel({{"src/x/s.cc", R"fx(
struct S
{
    support::Mutex a;
    support::Mutex b;
    void f();
    void g();
};
void S::f()
{
    { support::MutexLock la(a); }
    { support::MutexLock lb(b); }
}
void S::g()
{
    { support::MutexLock lb(b); }
    { support::MutexLock la(a); }
}
)fx"}});
    EXPECT_FALSE(fired(analyzeLockOrder(repo), "lock-order-cycle"));
}

TEST(LockOrder, CallPropagationSeesHelperAcquisition)
{
    // f holds a and calls helper(), which locks b: edge a -> b. g
    // locks b then a directly: cycle through the propagated edge.
    const RepoModel repo = buildRepoModel({{"src/x/s.cc", R"fx(
struct S
{
    support::Mutex a;
    support::Mutex b;
    void f();
    void g();
    void helper();
};
void S::helper() { support::MutexLock lb(b); }
void S::f()
{
    support::MutexLock la(a);
    helper();
}
void S::g()
{
    support::MutexLock lb(b);
    support::MutexLock la(a);
}
)fx"}});
    EXPECT_TRUE(fired(analyzeLockOrder(repo), "lock-order-cycle"));
}

TEST(LockOrder, BareNameCollisionIsAmbiguity)
{
    const RepoModel repo = buildRepoModel({{"src/x/s.cc", R"fx(
struct S1 { support::Mutex m; };
struct S2 { support::Mutex m; };
void f(S1 &s1, S2 &s2)
{
    support::MutexLock l1(s1.m);
    support::MutexLock l2(s2.m);
}
)fx"}});
    const auto findings = analyzeLockOrder(repo);
    ASSERT_TRUE(fired(findings, "lock-order-ambiguity"));
    const Finding *f = firstOf(findings, "lock-order-ambiguity");
    EXPECT_NE(f->message.find("'m'"), std::string::npos);
}

// --------------------------------------------------------- unused includes

TEST(UnusedInclude, UnreferencedHeaderIsFlagged)
{
    const RepoModel repo = buildRepoModel({
        {"src/support/util.hh", "inline int fortyTwo() { return 42; }\n"},
        {"src/core/user.cc",
         "#include \"support/util.hh\"\nint main2() { return 0; }\n"},
    });
    const auto findings = analyzeUnusedIncludes(repo);
    ASSERT_TRUE(fired(findings, "unused-include"));
    EXPECT_EQ(firstOf(findings, "unused-include")->file,
              "src/core/user.cc");
}

TEST(UnusedInclude, TransitiveUseCountsAsUse)
{
    // user.cc uses util.hh's symbol reached *through* the umbrella:
    // the export closure makes that include count as used. The
    // umbrella's own re-export include IS flagged (the pass is
    // IWYU-strict; pure re-export headers document themselves with
    // lint:allow), so assert on the findings precisely.
    const RepoModel repo = buildRepoModel({
        {"src/support/util.hh", "inline int fortyTwo() { return 42; }\n"},
        {"src/support/umbrella.hh", "#include \"support/util.hh\"\n"},
        {"src/core/user.cc",
         "#include \"support/umbrella.hh\"\n"
         "int v() { return fortyTwo(); }\n"},
    });
    const auto findings = analyzeUnusedIncludes(repo);
    for (const Finding &f : findings)
        EXPECT_NE(f.file, "src/core/user.cc")
            << "transitively-used include wrongly flagged";
    // The strict finding on the re-export itself:
    ASSERT_TRUE(fired(findings, "unused-include"));
    EXPECT_EQ(firstOf(findings, "unused-include")->file,
              "src/support/umbrella.hh");
}

TEST(UnusedInclude, OwnInterfaceHeaderIsExempt)
{
    const RepoModel repo = buildRepoModel({
        {"src/core/thing.hh", "int thing();\n"},
        {"src/core/thing.cc",
         "#include \"core/thing.hh\"\nstatic int unrelated;\n"},
    });
    EXPECT_FALSE(
        fired(analyzeUnusedIncludes(repo), "unused-include"));
}

// ------------------------------------------------- suppressions + graphs

TEST(AnalyzeRepoTest, LintAllowSuppressesAnalysisFindings)
{
    const RepoModel repo = buildRepoModel({
        {"src/support/util.hh", "inline int fortyTwo() { return 42; }\n"},
        {"src/core/user.cc",
         "// lint:allow(unused-include) kept for the side effects\n"
         "#include \"support/util.hh\"\n"
         "int main2() { return 0; }\n"},
    });
    std::size_t suppressed = 0;
    const auto findings =
        analyzeRepo(repo, defaultLayerConfig(), &suppressed);
    EXPECT_FALSE(fired(findings, "unused-include"));
    EXPECT_EQ(suppressed, 1u);
}

TEST(GraphDump, DotOutputsContainBothDags)
{
    const RepoModel repo =
        buildRepoModel({{"src/x/s.cc", kTwoMutexCycle},
                        {"src/core/high.hh",
                         "#include \"support/low.hh\"\n"},
                        {"src/support/low.hh", "\n"}});
    const std::string inc =
        coterie::lint::includeGraphDot(repo, defaultLayerConfig());
    EXPECT_NE(inc.find("digraph coterie_includes"), std::string::npos);
    EXPECT_NE(
        inc.find("\"src/core/high.hh\" -> \"src/support/low.hh\""),
        std::string::npos);
    const std::string locks = coterie::lint::lockOrderDot(repo);
    EXPECT_NE(locks.find("digraph coterie_lock_order"),
              std::string::npos);
    EXPECT_NE(locks.find("\"S::a\" -> \"S::b\""), std::string::npos);
}

} // namespace
