/**
 * @file
 * Tests for offline-artifact persistence: save/load round trip, graceful
 * rejection of malformed files, and integration with a real partition.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "core/dist_thresh.hh"
#include "core/offline_io.hh"
#include "world/gen/generators.hh"

namespace coterie::core {
namespace {

std::string
tempPath(const char *name)
{
    return testing::TempDir() + "/" + name;
}

TEST(OfflineIo, RoundTripPreservesEverything)
{
    const auto world =
        world::gen::makeWorld(world::gen::GameId::Pool, 42);
    const auto partition = partitionWorld(world, device::pixel2(), {});
    const RegionIndex regions(world.bounds(), partition.leaves);
    const AnalyticSimilarity model;
    const auto thresholds = deriveDistThresholds(regions, model, {});

    OfflineArtifacts artifacts;
    artifacts.game = "Pool";
    artifacts.device = "Pixel 2";
    artifacts.worldBounds = world.bounds();
    artifacts.leaves = partition.leaves;
    artifacts.distThresholds = thresholds;

    const std::string path = tempPath("coterie_artifacts.txt");
    ASSERT_TRUE(saveArtifacts(artifacts, path));
    const auto loaded = loadArtifacts(path);
    std::remove(path.c_str());
    ASSERT_TRUE(loaded.has_value());

    EXPECT_EQ(loaded->game, "Pool");
    EXPECT_EQ(loaded->device, "Pixel 2");
    EXPECT_DOUBLE_EQ(loaded->worldBounds.hi.x, world.bounds().hi.x);
    ASSERT_EQ(loaded->leaves.size(), partition.leaves.size());
    ASSERT_EQ(loaded->distThresholds.size(), thresholds.size());
    for (std::size_t i = 0; i < thresholds.size(); ++i) {
        EXPECT_EQ(loaded->leaves[i].id, partition.leaves[i].id);
        EXPECT_NEAR(loaded->leaves[i].cutoffRadius,
                    partition.leaves[i].cutoffRadius, 1e-6);
        EXPECT_EQ(loaded->leaves[i].depth, partition.leaves[i].depth);
        EXPECT_EQ(loaded->leaves[i].reachable,
                  partition.leaves[i].reachable);
        EXPECT_NEAR(loaded->distThresholds[i], thresholds[i], 1e-6);
        EXPECT_NEAR(loaded->leaves[i].rect.lo.x,
                    partition.leaves[i].rect.lo.x, 1e-6);
    }

    // A loaded bundle drives a working RegionIndex.
    const RegionIndex reloaded(loaded->worldBounds, loaded->leaves);
    EXPECT_GT(reloaded.cutoffAt(world.bounds().center()), 0.0);
}

TEST(OfflineIo, MissingFileReturnsNullopt)
{
    EXPECT_FALSE(loadArtifacts("/nonexistent/bundle.txt").has_value());
}

TEST(OfflineIo, RejectsWrongMagic)
{
    const std::string path = tempPath("coterie_bad_magic.txt");
    std::FILE *f = std::fopen(path.c_str(), "w");
    std::fprintf(f, "not-coterie 1\n");
    std::fclose(f);
    EXPECT_FALSE(loadArtifacts(path).has_value());
    std::remove(path.c_str());
}

TEST(OfflineIo, RejectsWrongVersion)
{
    const std::string path = tempPath("coterie_bad_version.txt");
    std::FILE *f = std::fopen(path.c_str(), "w");
    std::fprintf(f, "coterie-offline 999\ngame X\ndevice Y\n");
    std::fclose(f);
    EXPECT_FALSE(loadArtifacts(path).has_value());
    std::remove(path.c_str());
}

TEST(OfflineIo, RejectsTruncatedLeafTable)
{
    const std::string path = tempPath("coterie_truncated.txt");
    std::FILE *f = std::fopen(path.c_str(), "w");
    std::fprintf(f, "coterie-offline 1\ngame X\ndevice Y\n"
                    "bounds 0 0 10 10\nleaves 5\n"
                    "0 0 0 5 5 1 3.0 100 1 0.2\n"); // only 1 of 5
    std::fclose(f);
    EXPECT_FALSE(loadArtifacts(path).has_value());
    std::remove(path.c_str());
}

TEST(OfflineIo, SaveFailsOnBadPath)
{
    OfflineArtifacts artifacts;
    artifacts.leaves.push_back({});
    artifacts.distThresholds.push_back(0.0);
    EXPECT_FALSE(saveArtifacts(artifacts, "/nonexistent_dir/x.txt"));
}

} // namespace
} // namespace coterie::core
