/**
 * @file
 * Tests for the shared 802.11ac channel model: single-transfer timing,
 * processor-sharing fairness (the N-fold slowdown at the heart of the
 * paper's scaling argument), contention penalty, and accounting.
 */

#include <gtest/gtest.h>

#include <vector>

#include "net/channel.hh"

namespace coterie::net {
namespace {

TEST(SharedChannel, SingleTransferMatchesLineRate)
{
    sim::EventQueue queue;
    ChannelParams params;
    params.goodputMbps = 500.0;
    params.baseLatencyMs = 1.0;
    params.contentionPenalty = 0.0;
    SharedChannel channel(queue, params);

    double completed_at = -1.0;
    // 625000 bytes = 5 Mb at 500 Mbps -> 10 ms + 1 ms base.
    channel.startTransfer(625000, [&](sim::TimeMs t) { completed_at = t; });
    queue.runToCompletion();
    EXPECT_NEAR(completed_at, 11.0, 0.01);
    EXPECT_EQ(channel.bytesDelivered(), 625000u);
}

TEST(SharedChannel, TwoConcurrentTransfersHalveThroughput)
{
    sim::EventQueue queue;
    ChannelParams params;
    params.goodputMbps = 100.0;
    params.baseLatencyMs = 0.0;
    params.contentionPenalty = 0.0;
    SharedChannel channel(queue, params);

    std::vector<double> done;
    for (int i = 0; i < 2; ++i) {
        channel.startTransfer(
            125000, [&](sim::TimeMs t) { done.push_back(t); });
    }
    queue.runToCompletion();
    ASSERT_EQ(done.size(), 2u);
    // 1 Mb each at a fair share of 50 Mbps -> both finish at 20 ms.
    EXPECT_NEAR(done[0], 20.0, 0.1);
    EXPECT_NEAR(done[1], 20.0, 0.1);
}

TEST(SharedChannel, LateArrivalSharesRemainingCapacity)
{
    sim::EventQueue queue;
    ChannelParams params;
    params.goodputMbps = 100.0;
    params.baseLatencyMs = 0.0;
    params.contentionPenalty = 0.0;
    SharedChannel channel(queue, params);

    double t1 = -1, t2 = -1;
    channel.startTransfer(250000, [&](sim::TimeMs t) { t1 = t; }); // 2 Mb
    queue.scheduleAt(10.0, [&] {
        channel.startTransfer(125000,
                              [&](sim::TimeMs t) { t2 = t; }); // 1 Mb
    });
    queue.runToCompletion();
    // T1 runs alone for 10 ms (1 Mb done), then shares: remaining 1 Mb
    // at 50 Mbps = 20 ms -> t1 = 30. T2: 1 Mb at 50 Mbps -> t2 = 30.
    EXPECT_NEAR(t1, 30.0, 0.2);
    EXPECT_NEAR(t2, 30.0, 0.2);
}

TEST(SharedChannel, ContentionPenaltyReducesAggregate)
{
    sim::EventQueue q1, q2;
    ChannelParams fair;
    fair.baseLatencyMs = 0.0;
    fair.contentionPenalty = 0.0;
    ChannelParams penalized = fair;
    penalized.contentionPenalty = 0.05;
    SharedChannel a(q1, fair), b(q2, penalized);

    double done_fair = 0, done_penalized = 0;
    for (int i = 0; i < 4; ++i) {
        a.startTransfer(125000, [&](sim::TimeMs t) { done_fair = t; });
        b.startTransfer(125000,
                        [&](sim::TimeMs t) { done_penalized = t; });
    }
    q1.runToCompletion();
    q2.runToCompletion();
    EXPECT_GT(done_penalized, done_fair * 1.05);
}

TEST(SharedChannel, ManySmallTransfersAllComplete)
{
    sim::EventQueue queue;
    SharedChannel channel(queue, {});
    int completed = 0;
    for (int i = 0; i < 200; ++i)
        channel.startTransfer(10000 + i * 13,
                              [&](sim::TimeMs) { ++completed; });
    queue.runToCompletion();
    EXPECT_EQ(completed, 200);
    EXPECT_EQ(channel.active(), 0u);
}

TEST(SharedChannel, ChainedTransfersDoNotLivelock)
{
    // Regression: residual sub-epsilon bits once produced a
    // zero-width event loop at a fixed timestamp.
    sim::EventQueue queue;
    SharedChannel channel(queue, {});
    int count = 0;
    std::function<void(sim::TimeMs)> next = [&](sim::TimeMs) {
        if (++count < 50)
            channel.startTransfer(204783, next); // odd size on purpose
    };
    channel.startTransfer(204783, next);
    queue.runUntil(60000.0);
    EXPECT_EQ(count, 50);
}

TEST(SharedChannel, RetransmitPenaltyAndFractionAccounting)
{
    // lossProbability = 1 makes the loss episode deterministic: the
    // transfer pays the retransmit penalty up front and re-serves the
    // scripted fraction of the payload.
    ChannelParams clean;
    clean.goodputMbps = 100.0;
    clean.baseLatencyMs = 1.0;
    clean.contentionPenalty = 0.0;
    ChannelParams lossy = clean;
    lossy.lossProbability = 1.0;
    lossy.retransmitPenaltyMs = 8.0;
    lossy.retransmitFraction = 0.25;

    sim::EventQueue q1, q2;
    SharedChannel a(q1, clean), b(q2, lossy);
    double t_clean = -1.0, t_lossy = -1.0;
    // 125000 bytes = 1 Mb: 10 ms at 100 Mbps.
    a.startTransfer(125000, [&](sim::TimeMs t) { t_clean = t; });
    b.startTransfer(125000, [&](sim::TimeMs t) { t_lossy = t; });
    q1.runToCompletion();
    q2.runToCompletion();

    EXPECT_NEAR(t_clean, 11.0, 0.01);
    // 1 ms base + 8 ms penalty + 12.5 ms for the 1.25x payload.
    EXPECT_NEAR(t_lossy, 21.5, 0.01);
    // Accounting stays in application bytes: the re-served fraction
    // is link overhead, not delivered payload.
    EXPECT_EQ(b.bytesDelivered(), 125000u);
}

TEST(SharedChannel, ContentionEfficiencyFloorsAtThirtyPercent)
{
    // With 20 stations and a 5% per-extra-station penalty the raw
    // efficiency would be 0.05; the MAC floor clamps it at 0.3.
    sim::EventQueue queue;
    ChannelParams params;
    params.goodputMbps = 100.0;
    params.baseLatencyMs = 0.0;
    params.contentionPenalty = 0.05;
    SharedChannel channel(queue, params);

    std::vector<double> done;
    for (int i = 0; i < 20; ++i)
        channel.startTransfer(125000,
                              [&](sim::TimeMs t) { done.push_back(t); });
    queue.runToCompletion();
    ASSERT_EQ(done.size(), 20u);
    // 20 Mb aggregate at 100 Mbps * 0.3 = 30 Mbps -> 666.7 ms; without
    // the floor (efficiency 0.05) it would take 4000 ms.
    for (const double t : done)
        EXPECT_NEAR(t, 20.0 * 1e6 / 30e3, 1.0);
}

TEST(SharedChannel, CancelDuringLatencyPhaseIsSilent)
{
    sim::EventQueue queue;
    ChannelParams params;
    params.baseLatencyMs = 5.0;
    SharedChannel channel(queue, params);

    bool completed = false;
    const TransferId id = channel.startTransfer(
        125000, [&](sim::TimeMs) { completed = true; });
    EXPECT_EQ(channel.pendingStarts(), 1u);
    EXPECT_TRUE(channel.cancel(id));
    EXPECT_EQ(channel.pendingStarts(), 0u);
    queue.runToCompletion();
    EXPECT_FALSE(completed);
    EXPECT_EQ(channel.cancelledCount(), 1u);
    EXPECT_EQ(channel.bytesDelivered(), 0u);
    // A second cancel of the same id reports failure.
    EXPECT_FALSE(channel.cancel(id));
}

TEST(SharedChannel, CancelMidFlightReleasesTheLinkShare)
{
    sim::EventQueue queue;
    ChannelParams params;
    params.goodputMbps = 100.0;
    params.baseLatencyMs = 0.0;
    params.contentionPenalty = 0.0;
    SharedChannel channel(queue, params);

    double t_a = -1.0;
    bool b_completed = false;
    channel.startTransfer(250000, [&](sim::TimeMs t) { t_a = t; });
    const TransferId b = channel.startTransfer(
        250000, [&](sim::TimeMs) { b_completed = true; });
    queue.scheduleAt(10.0, [&] { EXPECT_TRUE(channel.cancel(b)); });
    queue.runToCompletion();
    // Shared 50/50 for 10 ms (0.5 Mb each served), then A runs alone:
    // 1.5 Mb at 100 Mbps -> done at 25 ms (40 ms if B had stayed).
    EXPECT_NEAR(t_a, 25.0, 0.2);
    EXPECT_FALSE(b_completed);
    EXPECT_EQ(channel.cancelledCount(), 1u);
}

TEST(SharedChannel, DeadlineExpiryDropsTheTransfer)
{
    sim::EventQueue queue;
    ChannelParams params;
    params.goodputMbps = 500.0;
    params.baseLatencyMs = 1.0;
    params.contentionPenalty = 0.0;
    SharedChannel channel(queue, params);

    bool completed = false;
    double expired_at = -1.0;
    TransferOptions opts;
    opts.deadlineMs = 6.0; // the transfer needs 11 ms
    opts.onExpired = [&](sim::TimeMs t) { expired_at = t; };
    channel.startTransfer(625000, [&](sim::TimeMs) { completed = true; },
                          opts);
    queue.runToCompletion();
    EXPECT_FALSE(completed);
    EXPECT_NEAR(expired_at, 6.0, 1e-9);
    EXPECT_EQ(channel.expiredCount(), 1u);
    EXPECT_EQ(channel.active(), 0u);
}

TEST(SharedChannel, DeadlineExpiryDuringLatencyPhase)
{
    sim::EventQueue queue;
    ChannelParams params;
    params.baseLatencyMs = 5.0;
    SharedChannel channel(queue, params);

    bool completed = false;
    double expired_at = -1.0;
    TransferOptions opts;
    opts.deadlineMs = 2.0; // lapses before the transfer hits the wire
    opts.onExpired = [&](sim::TimeMs t) { expired_at = t; };
    channel.startTransfer(1000, [&](sim::TimeMs) { completed = true; },
                          opts);
    queue.runToCompletion();
    EXPECT_FALSE(completed);
    EXPECT_NEAR(expired_at, 2.0, 1e-9);
    EXPECT_EQ(channel.expiredCount(), 1u);
}

TEST(SharedChannel, GenerousDeadlineDoesNotFire)
{
    sim::EventQueue queue;
    ChannelParams params;
    params.goodputMbps = 500.0;
    params.baseLatencyMs = 1.0;
    params.contentionPenalty = 0.0;
    SharedChannel channel(queue, params);

    double completed_at = -1.0;
    bool expired = false;
    TransferOptions opts;
    opts.deadlineMs = 30.0;
    opts.onExpired = [&](sim::TimeMs) { expired = true; };
    channel.startTransfer(
        625000, [&](sim::TimeMs t) { completed_at = t; }, opts);
    queue.runToCompletion();
    EXPECT_NEAR(completed_at, 11.0, 0.01);
    EXPECT_FALSE(expired);
    EXPECT_EQ(channel.expiredCount(), 0u);
    EXPECT_EQ(channel.bytesDelivered(), 625000u);
}

TEST(SharedChannel, MeanThroughputAccounting)
{
    sim::EventQueue queue;
    ChannelParams params;
    params.baseLatencyMs = 0.0;
    params.contentionPenalty = 0.0;
    SharedChannel channel(queue, params);
    channel.startTransfer(6250000, [](sim::TimeMs) {}); // 50 Mb
    queue.runToCompletion();
    // 50 Mb over 100 ms = 500 Mbps mean while active.
    EXPECT_NEAR(channel.meanThroughputMbps(), 500.0, 1.0);
}

} // namespace
} // namespace coterie::net
