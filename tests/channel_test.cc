/**
 * @file
 * Tests for the shared 802.11ac channel model: single-transfer timing,
 * processor-sharing fairness (the N-fold slowdown at the heart of the
 * paper's scaling argument), contention penalty, and accounting.
 */

#include <gtest/gtest.h>

#include <vector>

#include "net/channel.hh"

namespace coterie::net {
namespace {

TEST(SharedChannel, SingleTransferMatchesLineRate)
{
    sim::EventQueue queue;
    ChannelParams params;
    params.goodputMbps = 500.0;
    params.baseLatencyMs = 1.0;
    params.contentionPenalty = 0.0;
    SharedChannel channel(queue, params);

    double completed_at = -1.0;
    // 625000 bytes = 5 Mb at 500 Mbps -> 10 ms + 1 ms base.
    channel.startTransfer(625000, [&](sim::TimeMs t) { completed_at = t; });
    queue.runToCompletion();
    EXPECT_NEAR(completed_at, 11.0, 0.01);
    EXPECT_EQ(channel.bytesDelivered(), 625000u);
}

TEST(SharedChannel, TwoConcurrentTransfersHalveThroughput)
{
    sim::EventQueue queue;
    ChannelParams params;
    params.goodputMbps = 100.0;
    params.baseLatencyMs = 0.0;
    params.contentionPenalty = 0.0;
    SharedChannel channel(queue, params);

    std::vector<double> done;
    for (int i = 0; i < 2; ++i) {
        channel.startTransfer(
            125000, [&](sim::TimeMs t) { done.push_back(t); });
    }
    queue.runToCompletion();
    ASSERT_EQ(done.size(), 2u);
    // 1 Mb each at a fair share of 50 Mbps -> both finish at 20 ms.
    EXPECT_NEAR(done[0], 20.0, 0.1);
    EXPECT_NEAR(done[1], 20.0, 0.1);
}

TEST(SharedChannel, LateArrivalSharesRemainingCapacity)
{
    sim::EventQueue queue;
    ChannelParams params;
    params.goodputMbps = 100.0;
    params.baseLatencyMs = 0.0;
    params.contentionPenalty = 0.0;
    SharedChannel channel(queue, params);

    double t1 = -1, t2 = -1;
    channel.startTransfer(250000, [&](sim::TimeMs t) { t1 = t; }); // 2 Mb
    queue.scheduleAt(10.0, [&] {
        channel.startTransfer(125000,
                              [&](sim::TimeMs t) { t2 = t; }); // 1 Mb
    });
    queue.runToCompletion();
    // T1 runs alone for 10 ms (1 Mb done), then shares: remaining 1 Mb
    // at 50 Mbps = 20 ms -> t1 = 30. T2: 1 Mb at 50 Mbps -> t2 = 30.
    EXPECT_NEAR(t1, 30.0, 0.2);
    EXPECT_NEAR(t2, 30.0, 0.2);
}

TEST(SharedChannel, ContentionPenaltyReducesAggregate)
{
    sim::EventQueue q1, q2;
    ChannelParams fair;
    fair.baseLatencyMs = 0.0;
    fair.contentionPenalty = 0.0;
    ChannelParams penalized = fair;
    penalized.contentionPenalty = 0.05;
    SharedChannel a(q1, fair), b(q2, penalized);

    double done_fair = 0, done_penalized = 0;
    for (int i = 0; i < 4; ++i) {
        a.startTransfer(125000, [&](sim::TimeMs t) { done_fair = t; });
        b.startTransfer(125000,
                        [&](sim::TimeMs t) { done_penalized = t; });
    }
    q1.runToCompletion();
    q2.runToCompletion();
    EXPECT_GT(done_penalized, done_fair * 1.05);
}

TEST(SharedChannel, ManySmallTransfersAllComplete)
{
    sim::EventQueue queue;
    SharedChannel channel(queue, {});
    int completed = 0;
    for (int i = 0; i < 200; ++i)
        channel.startTransfer(10000 + i * 13,
                              [&](sim::TimeMs) { ++completed; });
    queue.runToCompletion();
    EXPECT_EQ(completed, 200);
    EXPECT_EQ(channel.active(), 0u);
}

TEST(SharedChannel, ChainedTransfersDoNotLivelock)
{
    // Regression: residual sub-epsilon bits once produced a
    // zero-width event loop at a fixed timestamp.
    sim::EventQueue queue;
    SharedChannel channel(queue, {});
    int count = 0;
    std::function<void(sim::TimeMs)> next = [&](sim::TimeMs) {
        if (++count < 50)
            channel.startTransfer(204783, next); // odd size on purpose
    };
    channel.startTransfer(204783, next);
    queue.runUntil(60000.0);
    EXPECT_EQ(count, 50);
}

TEST(SharedChannel, MeanThroughputAccounting)
{
    sim::EventQueue queue;
    ChannelParams params;
    params.baseLatencyMs = 0.0;
    params.contentionPenalty = 0.0;
    SharedChannel channel(queue, params);
    channel.startTransfer(6250000, [](sim::TimeMs) {}); // 50 Mb
    queue.runToCompletion();
    // 50 Mb over 100 ms = 500 Mbps mean while active.
    EXPECT_NEAR(channel.meanThroughputMbps(), 500.0, 1.0);
}

} // namespace
} // namespace coterie::net
