/**
 * @file
 * Tests for WorldObject geometry and the VirtualWorld spatial queries:
 * objectsWithin, near-set signatures (stability and angular-size
 * filtering), triangle counts, and eye placement.
 */

#include <gtest/gtest.h>

#include "world/world.hh"

namespace coterie::world {
namespace {

using geom::Rect;
using geom::Vec2;
using geom::Vec3;

WorldObject
boxAt(Vec2 at, double size, std::uint32_t triangles)
{
    WorldObject obj;
    obj.shape = Shape::Box;
    obj.position = geom::lift(at, size / 2);
    obj.dims = Vec3{size, size, size};
    obj.triangles = triangles;
    return obj;
}

VirtualWorld
smallWorld()
{
    TerrainParams terrain;
    terrain.flat = true;
    terrain.trianglesPerM2 = 2.0;
    VirtualWorld world("test", Rect{{0, 0}, {100, 100}}, terrain,
                       SceneType::Outdoor);
    world.addObject(boxAt({10, 10}, 2.0, 1000));
    world.addObject(boxAt({50, 50}, 4.0, 2000));
    world.addObject(boxAt({52, 50}, 1.0, 500));
    world.addObject(boxAt({90, 90}, 2.0, 800));
    world.finalize();
    return world;
}

TEST(WorldObject, BoundsPerShape)
{
    WorldObject sphere;
    sphere.shape = Shape::Sphere;
    sphere.position = {0, 0, 0};
    sphere.dims = {2.0, 0, 0};
    EXPECT_EQ(sphere.bounds().lo, Vec3(-2, -2, -2));
    EXPECT_EQ(sphere.bounds().hi, Vec3(2, 2, 2));
    EXPECT_DOUBLE_EQ(sphere.maxDimension(), 4.0);

    WorldObject cyl;
    cyl.shape = Shape::CylinderY;
    cyl.position = {1, 0, 1};
    cyl.dims = {0.5, 3.0, 0};
    EXPECT_EQ(cyl.bounds().lo, Vec3(0.5, 0.0, 0.5));
    EXPECT_EQ(cyl.bounds().hi, Vec3(1.5, 3.0, 1.5));
    EXPECT_DOUBLE_EQ(cyl.maxDimension(), 3.0);

    WorldObject box = boxAt({5, 5}, 2.0, 1);
    EXPECT_EQ(box.bounds().lo, Vec3(4.0, 0.0, 4.0));
    EXPECT_EQ(box.bounds().hi, Vec3(6.0, 2.0, 6.0));
}

TEST(World, AddAssignsSequentialIds)
{
    VirtualWorld world = smallWorld();
    EXPECT_EQ(world.objects().size(), 4u);
    for (std::uint32_t i = 0; i < 4; ++i)
        EXPECT_EQ(world.object(i).id, i);
}

TEST(WorldDeath, AddAfterFinalizePanics)
{
    VirtualWorld world = smallWorld();
    EXPECT_DEATH(world.addObject(boxAt({1, 1}, 1.0, 1)), "finalize");
}

TEST(World, ObjectsWithinFindsByRadius)
{
    VirtualWorld world = smallWorld();
    auto near = world.objectsWithin({50, 50}, 5.0);
    EXPECT_EQ(near.size(), 2u); // the 4m box and its 1m neighbour
    near = world.objectsWithin({50, 50}, 80.0);
    EXPECT_EQ(near.size(), 4u);
    near = world.objectsWithin({0, 0}, 1.0);
    EXPECT_TRUE(near.empty());
}

TEST(World, NearSetSignatureStableAndOrderFree)
{
    VirtualWorld world = smallWorld();
    const auto sig1 = world.nearSetSignature({50, 50}, 10.0);
    const auto sig2 = world.nearSetSignature({50, 50}, 10.0);
    EXPECT_EQ(sig1, sig2);
}

TEST(World, NearSetSignatureChangesWhenLargeObjectLeaves)
{
    VirtualWorld world = smallWorld();
    // At radius 6 both central objects are in range; at radius 1 none.
    const auto sig_wide = world.nearSetSignature({50, 50}, 6.0);
    const auto sig_narrow = world.nearSetSignature({50, 50}, 0.5);
    EXPECT_NE(sig_wide, sig_narrow);
}

TEST(World, NearSetSignatureIgnoresAngularlySmallObjects)
{
    VirtualWorld world = smallWorld();
    // The 1m box at (52,50) seen from 30m away subtends ~0.03 rad:
    // excluded at the default threshold, so the signature equals one
    // computed without it in range.
    const auto with_small = world.nearSetSignature({80, 50}, 29.0);
    const auto without = world.nearSetSignature({80, 50}, 25.0);
    // Both exclude everything except (possibly) the small box; the
    // angular filter makes them equal.
    EXPECT_EQ(with_small, without);
}

TEST(World, TrianglesWithinIncludesTerrainAndObjects)
{
    VirtualWorld world = smallWorld();
    const double tris = world.trianglesWithin({50, 50}, 5.0);
    // Terrain: 2 tri/m^2 * pi * 25 ~ 157; objects: 2000 + 500.
    EXPECT_NEAR(tris, 157.0 + 2500.0, 5.0);
}

TEST(World, TriangleDensityExcludesTerrain)
{
    VirtualWorld world = smallWorld();
    const double density = world.triangleDensity({50, 50}, 5.0);
    EXPECT_NEAR(density, 2500.0 / (M_PI * 25.0), 1.0);
    EXPECT_DOUBLE_EQ(world.triangleDensity({5, 90}, 2.0), 0.0);
}

TEST(World, EyePositionUsesFootholdPlusEyeHeight)
{
    VirtualWorld world = smallWorld();
    world.setEyeHeight(1.6);
    const Vec3 eye = world.eyePosition({20, 20});
    EXPECT_DOUBLE_EQ(eye.y, 1.6); // flat floor
    EXPECT_EQ(eye.ground(), Vec2(20.0, 20.0));
}

TEST(World, SkyColorDiffersIndoorsAndOutdoors)
{
    VirtualWorld outdoor = smallWorld();
    TerrainParams terrain;
    terrain.flat = true;
    VirtualWorld indoor("in", Rect{{0, 0}, {10, 10}}, terrain,
                        SceneType::Indoor);
    EXPECT_FALSE(outdoor.skyColor(0.2) == indoor.skyColor(0.2));
    // Outdoor sky gradient: zenith darker blue than horizon.
    EXPECT_NE(outdoor.skyColor(0.0).r, outdoor.skyColor(1.4).r);
}

TEST(World, MoveSemantics)
{
    VirtualWorld world = smallWorld();
    const std::size_t n = world.objects().size();
    VirtualWorld moved = std::move(world);
    EXPECT_EQ(moved.objects().size(), n);
    EXPECT_TRUE(moved.finalized());
    EXPECT_EQ(moved.objectsWithin({50, 50}, 5.0).size(), 2u);
}

} // namespace
} // namespace coterie::world
