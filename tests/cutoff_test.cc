/**
 * @file
 * Tests for Constraint 1 and the per-location maximal cutoff search:
 * the returned radius satisfies the budget, is maximal up to the search
 * tolerance, shrinks with object density, and respects bounds.
 */

#include <gtest/gtest.h>

#include "core/cutoff.hh"
#include "world/gen/track.hh"
#include "world/gen/generators.hh"

namespace coterie::core {
namespace {

using geom::Vec2;
using world::gen::GameId;
using world::gen::makeWorld;

TEST(CutoffConstraint, BudgetArithmetic)
{
    CutoffConstraint c;
    c.frameBudgetMs = 16.7;
    c.rtFiMs = 4.0;
    c.utilizationTarget = 1.0;
    EXPECT_NEAR(c.nearBudgetMs(), 12.7, 1e-9);
    c.utilizationTarget = 0.5;
    EXPECT_NEAR(c.nearBudgetMs(), 6.35, 1e-9);
}

TEST(Cutoff, ReturnedRadiusSatisfiesConstraint)
{
    const auto world = makeWorld(GameId::Viking, 42);
    const auto &profile = device::pixel2();
    const CutoffConstraint constraint;
    for (const Vec2 eye :
         {world.bounds().center(), world.bounds().center() + Vec2{30, 15},
          Vec2{10.0, 10.0}}) {
        const double radius =
            maxCutoffRadius(world, eye, profile, constraint);
        EXPECT_LT(nearBeRenderTimeMs(world, eye, radius, profile),
                  constraint.nearBudgetMs());
    }
}

TEST(Cutoff, RadiusIsMaximalUpToTolerance)
{
    const auto world = makeWorld(GameId::Viking, 42);
    const auto &profile = device::pixel2();
    const CutoffConstraint constraint;
    const Vec2 eye = world.bounds().center() + Vec2{12.0, 7.0};
    const double radius =
        maxCutoffRadius(world, eye, profile, constraint, 0.1);
    if (radius < constraint.maxRadius - 1.0) {
        // One tolerance step further must violate (or be borderline).
        EXPECT_GE(nearBeRenderTimeMs(world, eye, radius + 0.3, profile),
                  constraint.nearBudgetMs() * 0.97);
    }
}

TEST(Cutoff, DenseMarketSmallerThanOutskirts)
{
    const auto world = makeWorld(GameId::Viking, 42);
    const auto &profile = device::pixel2();
    const double market =
        maxCutoffRadius(world, world.bounds().center(), profile);
    const double outskirts =
        maxCutoffRadius(world, Vec2{8.0, 8.0}, profile);
    EXPECT_LT(market, outskirts);
    // Figure 8: the market square anchors the ~2 m bins.
    EXPECT_LT(market, 8.0);
}

TEST(Cutoff, SparseTrackWorldReachesLargeRadii)
{
    const auto world = makeWorld(GameId::Racing, 42);
    const auto &profile = device::pixel2();
    // Sample along the track (the reachable corridor): stretches far
    // from the forest and the mountains allow very large radii.
    world::gen::Track track(world.bounds(),
                            world.terrain().params().seed);
    double best = 0.0;
    for (double s = 0.0; s < track.length(); s += track.length() / 24) {
        best = std::max(
            best, maxCutoffRadius(world, track.pointAt(s), profile));
    }
    // Figure 7: Racing Mountain cutoffs spread up to ~180 m; in our
    // world the off-track mountain field caps the corridor maximum
    // slightly lower (see EXPERIMENTS.md).
    EXPECT_GT(best, 75.0);
}

TEST(Cutoff, RespectsMaxRadiusCeiling)
{
    const auto world = makeWorld(GameId::Racing, 42);
    const auto &profile = device::pixel2();
    CutoffConstraint constraint;
    constraint.maxRadius = 25.0;
    for (double x = 100; x < 900; x += 200) {
        EXPECT_LE(maxCutoffRadius(world, Vec2{x, 500.0}, profile,
                                  constraint),
                  25.0 + 1e-9);
    }
}

TEST(Cutoff, MinRadiusFloorInImpossiblyDenseSpot)
{
    const auto world = makeWorld(GameId::Viking, 42);
    const auto &profile = device::pixel2();
    CutoffConstraint constraint;
    // Make the budget absurdly small: even the minimum radius violates,
    // and the floor is returned.
    constraint.rtFiMs = 16.0;
    constraint.utilizationTarget = 0.2;
    const double radius = maxCutoffRadius(
        world, world.bounds().center(), profile, constraint);
    EXPECT_DOUBLE_EQ(radius, constraint.minRadius);
}

TEST(Cutoff, TighterBudgetShrinksRadius)
{
    const auto world = makeWorld(GameId::CTS, 42);
    const auto &profile = device::pixel2();
    CutoffConstraint generous;
    CutoffConstraint tight;
    tight.rtFiMs = 10.0;
    const Vec2 eye = world.bounds().center();
    EXPECT_LE(maxCutoffRadius(world, eye, profile, tight),
              maxCutoffRadius(world, eye, profile, generous));
}

TEST(CutoffDeath, ImpossibleBudgetPanics)
{
    const auto world = makeWorld(GameId::Pool, 42);
    CutoffConstraint constraint;
    constraint.rtFiMs = 20.0; // exceeds the whole frame budget
    EXPECT_DEATH(maxCutoffRadius(world, world.bounds().center(),
                                 device::pixel2(), constraint),
                 "budget");
}

} // namespace
} // namespace coterie::core
