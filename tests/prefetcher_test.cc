/**
 * @file
 * Tests for the prefetcher: cover-set geometry (lookahead along the
 * movement heading plus lateral spread), cache-aware miss filtering,
 * and the anchored near-set signatures in cache keys.
 */

#include <gtest/gtest.h>

#include "core/prefetcher.hh"
#include "world/gen/generators.hh"

namespace coterie::core {
namespace {

using geom::Vec2;
using world::GridPoint;
using world::gen::GameId;

struct PrefetcherFixture : testing::Test
{
    PrefetcherFixture()
        : world(world::gen::makeWorld(GameId::Viking, 42)),
          grid(world::gen::makeGrid(
              world::gen::gameInfo(GameId::Viking))),
          partition(partitionWorld(world, device::pixel2(), {})),
          regions(world.bounds(), partition.leaves)
    {
    }

    world::VirtualWorld world;
    world::GridMap grid;
    PartitionResult partition;
    RegionIndex regions;
};

TEST_F(PrefetcherFixture, CoverSetLiesAhead)
{
    Prefetcher prefetcher(world, grid, regions, {});
    const Vec2 pos{60.0, 60.0};
    const GridPoint at = grid.snap(pos);
    const double heading = 0.0; // +x
    const auto cover = prefetcher.coverSet(at, pos, heading);
    EXPECT_FALSE(cover.empty());
    for (const GridPoint g : cover) {
        const Vec2 p = grid.position(g);
        EXPECT_GE(p.x, pos.x - grid.spacing() * 1.5) << "behind player";
        EXPECT_FALSE(g == at);
    }
}

TEST_F(PrefetcherFixture, CoverSetSizeBoundedByParams)
{
    PrefetcherParams params;
    params.lookaheadSteps = 3;
    params.lateralSpread = 2;
    Prefetcher prefetcher(world, grid, regions, params);
    const Vec2 pos{60.0, 60.0};
    const auto cover = prefetcher.coverSet(grid.snap(pos), pos, 0.4);
    EXPECT_LE(cover.size(), 15u); // 3 * 5 max, minus dedup
    EXPECT_GE(cover.size(), 3u);
}

TEST_F(PrefetcherFixture, CoverSetUnique)
{
    Prefetcher prefetcher(world, grid, regions, {});
    const Vec2 pos{60.0, 60.0};
    const auto cover = prefetcher.coverSet(grid.snap(pos), pos, 1.1);
    for (std::size_t i = 0; i < cover.size(); ++i)
        for (std::size_t j = i + 1; j < cover.size(); ++j)
            EXPECT_FALSE(cover[i] == cover[j]);
}

TEST_F(PrefetcherFixture, MissesWithoutCacheReturnsFullCoverSet)
{
    Prefetcher prefetcher(world, grid, regions, {});
    const Vec2 pos{60.0, 60.0};
    const GridPoint at = grid.snap(pos);
    const auto cover = prefetcher.coverSet(at, pos, 0.0);
    const auto misses =
        prefetcher.misses(at, pos, 0.0, nullptr, {});
    EXPECT_EQ(misses.size(), cover.size());
}

TEST_F(PrefetcherFixture, MissesShrinkAsCacheFills)
{
    Prefetcher prefetcher(world, grid, regions, {});
    FrameCache cache;
    const Vec2 pos{60.0, 60.0};
    const GridPoint at = grid.snap(pos);
    std::vector<double> thresholds(partition.leaves.size(), 0.5);

    const auto first =
        prefetcher.misses(at, pos, 0.0, &cache, thresholds);
    for (const PrefetchTarget &t : first)
        cache.insert(prefetcher.keyFor(t.point), 1000);
    const auto second =
        prefetcher.misses(at, pos, 0.0, &cache, thresholds);
    EXPECT_TRUE(second.empty());
}

TEST_F(PrefetcherFixture, KeyCarriesRegionAndAnchoredSignature)
{
    Prefetcher prefetcher(world, grid, regions, {});
    const Vec2 pos{60.0, 60.0};
    const GridPoint g = grid.snap(pos);
    const FrameCache::Key key = prefetcher.keyFor(g);
    EXPECT_EQ(key.gridKey, grid.key(g));
    EXPECT_EQ(key.leafRegionId, regions.leafAt(pos).id);

    // Anchoring: a neighbouring grid point (3.1 cm away, same anchor
    // cell) carries the same signature.
    const GridPoint neighbour{g.ix + 1, g.iy};
    const FrameCache::Key key2 = prefetcher.keyFor(neighbour);
    EXPECT_EQ(key.nearSetSignature, key2.nearSetSignature);
}

TEST_F(PrefetcherFixture, SignatureChangesAcrossTheMap)
{
    Prefetcher prefetcher(world, grid, regions, {});
    const FrameCache::Key a = prefetcher.keyFor(grid.snap({60, 60}));
    const FrameCache::Key b = prefetcher.keyFor(grid.snap({120, 90}));
    EXPECT_NE(a.nearSetSignature, b.nearSetSignature);
}

} // namespace
} // namespace coterie::core
