/**
 * @file
 * Tests for the frame-lifecycle causal tracer, the deadline SLO
 * engine, and the always-on flight recorder: hop stamping and
 * critical-path computation (including stall descent into the linked
 * fetch record), deadline scoring/attribution and its JSON summary,
 * SLO publication into the metrics snapshot, flight-ring wraparound
 * and dump parsing, and the crash-dump path (an injected
 * COTERIE_ASSERT must leave a parseable flight dump behind).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/flight.hh"
#include "obs/frame_trace.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/slo.hh"
#include "support/logging.hh"
#include "support/stats.hh"

namespace coterie::obs {
namespace {

class FrameTraceTest : public testing::Test
{
  protected:
    void SetUp() override { SloRegistry::global().clear(); }
    void TearDown() override { SloRegistry::global().clear(); }
};

TEST_F(FrameTraceTest, HopNamesCoverEveryEnumerator)
{
    for (std::size_t i = 0; i < kHopCount; ++i) {
        const Hop h = static_cast<Hop>(i);
        EXPECT_NE(hopName(h), nullptr);
        EXPECT_NE(std::string(hopName(h)), "");
        // Event names are "frame." + hopName.
        EXPECT_EQ(std::string(hopEventName(h)),
                  std::string("frame.") + hopName(h));
    }
    EXPECT_EQ(std::string(hopName(Hop::StallWait)), "stall_wait");
    EXPECT_EQ(std::string(hopName(Hop::CacheJoin)), "cache_join");
}

TEST_F(FrameTraceTest, CompletionComputesLatencyAndCriticalPath)
{
    FrameTracer tracer("t/hops");
    FrameTraceContext ctx =
        tracer.mint(FrameTracer::Kind::Frame, 3, 7, 100.0);
    ASSERT_TRUE(ctx.active());
    ctx.hop(Hop::Render, 100.0, 110.0);
    ctx.hop(Hop::Decode, 110.0, 112.0);
    tracer.complete(ctx, 112.0);

    const auto *rec =
        tracer.find(FrameTracer::Kind::Frame, 3, 7);
    ASSERT_NE(rec, nullptr);
    EXPECT_TRUE(rec->completed);
    EXPECT_FALSE(rec->aborted);
    EXPECT_DOUBLE_EQ(rec->latencyMs, 12.0);
    EXPECT_EQ(rec->hops.size(), 2u);
    EXPECT_EQ(rec->criticalPath, "render");
    EXPECT_EQ(ctx.hops, 2);
}

TEST_F(FrameTraceTest, CriticalPathSumsHopFamilies)
{
    // Two transfer attempts (5 + 4 = 9 ms) outweigh one 6 ms render:
    // attribution is per hop *family*, not per single longest hop.
    FrameTracer tracer("t/families");
    FrameTraceContext ctx =
        tracer.mint(FrameTracer::Kind::Fetch, 0, 1, 0.0);
    ctx.hop(Hop::Transfer, 0.0, 5.0);
    ctx.hop(Hop::Render, 5.0, 11.0);
    ctx.hop(Hop::Transfer, 11.0, 15.0);
    tracer.complete(ctx, 15.0);
    const auto *rec = tracer.find(FrameTracer::Kind::Fetch, 0, 1);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->criticalPath, "transfer");
}

TEST_F(FrameTraceTest, StallDescendsIntoLinkedFetch)
{
    FrameTracer tracer("t/stall");
    // The fetch whose delivery unblocks the frame: transfer-dominant.
    FrameTraceContext fetch =
        tracer.mint(FrameTracer::Kind::Fetch, 1, 42, 0.0);
    fetch.hop(Hop::Request, 0.0, 0.0);
    fetch.hop(Hop::Backlog, 0.0, 2.0);
    fetch.hop(Hop::Transfer, 2.0, 30.0);
    tracer.complete(fetch, 30.0);

    // The displayed frame spent almost all its time stalled on it.
    FrameTraceContext frame =
        tracer.mint(FrameTracer::Kind::Frame, 1, 5, 0.0);
    frame.hop(Hop::StallWait, 0.0, 30.0);
    tracer.link(frame, fetch);
    frame.hop(Hop::Merge, 30.0, 31.0);
    tracer.complete(frame, 31.0);

    const auto *rec = tracer.find(FrameTracer::Kind::Frame, 1, 5);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->criticalPath, "stall_wait/transfer");

    // Without a link the path stays flat.
    FrameTraceContext orphan =
        tracer.mint(FrameTracer::Kind::Frame, 1, 6, 0.0);
    orphan.hop(Hop::StallWait, 0.0, 20.0);
    orphan.hop(Hop::Merge, 20.0, 21.0);
    tracer.complete(orphan, 21.0);
    const auto *orec = tracer.find(FrameTracer::Kind::Frame, 1, 6);
    ASSERT_NE(orec, nullptr);
    EXPECT_EQ(orec->criticalPath, "stall_wait");
}

TEST_F(FrameTraceTest, WallOnlyHopsStayOffTheSimCriticalPath)
{
    FrameTracer tracer("t/wall");
    FrameTraceContext ctx =
        tracer.mint(FrameTracer::Kind::Fetch, 0, 9, 0.0);
    // An enormous wall-clock cache probe must not beat 1 ms of
    // sim-time transfer: wall hops carry no sim attribution.
    ctx.hopWall(Hop::CacheLookup, 0, 50'000'000);
    ctx.hop(Hop::Transfer, 0.0, 1.0);
    tracer.complete(ctx, 1.0);
    const auto *rec = tracer.find(FrameTracer::Kind::Fetch, 0, 9);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->criticalPath, "transfer");
    ASSERT_EQ(rec->hops.size(), 2u);
    EXPECT_LT(rec->hops[0].simBeginMs, 0.0);
    EXPECT_EQ(rec->hops[0].wallDurNs, 50'000'000u);
}

TEST_F(FrameTraceTest, InertContextIsANoOpEverywhere)
{
    FrameTraceContext inert;
    EXPECT_FALSE(inert.active());
    inert.hop(Hop::Render, 0.0, 1.0);          // must not crash
    inert.hopWall(Hop::CacheLookup, 0, 1);
    FrameTracer tracer("t/inert");
    tracer.complete(inert, 1.0);
    tracer.abort(inert, 1.0);
    EXPECT_EQ(tracer.recordCount(), 0u);
    EXPECT_EQ(tracer.deadlines().frames(), 0u);
}

TEST_F(FrameTraceTest, AbortedRecordsAreNotScored)
{
    FrameTracer tracer("t/abort");
    FrameTraceContext ctx =
        tracer.mint(FrameTracer::Kind::Frame, 0, 1, 0.0);
    ctx.hop(Hop::Render, 0.0, 5.0);
    tracer.abort(ctx, 5.0);
    const auto *rec = tracer.find(FrameTracer::Kind::Frame, 0, 1);
    ASSERT_NE(rec, nullptr);
    EXPECT_TRUE(rec->aborted);
    EXPECT_FALSE(rec->completed);
    EXPECT_EQ(tracer.deadlines().frames(), 0u);
}

TEST_F(FrameTraceTest, OnlyFrameRecordsFeedTheDeadlineTracker)
{
    FrameTracer tracer("t/kinds");
    FrameTraceContext fetch =
        tracer.mint(FrameTracer::Kind::Fetch, 0, 1, 0.0);
    fetch.hop(Hop::Transfer, 0.0, 40.0);
    tracer.complete(fetch, 40.0); // slow, but fetches are not frames
    FrameTraceContext frame =
        tracer.mint(FrameTracer::Kind::Frame, 0, 1, 0.0);
    frame.hop(Hop::Render, 0.0, 10.0);
    tracer.complete(frame, 10.0);
    EXPECT_EQ(tracer.deadlines().frames(), 1u);
    EXPECT_EQ(tracer.deadlines().misses(), 0u);
}

// --- DeadlineTracker ---------------------------------------------------

TEST(DeadlineTracker, ScoresMissesAndAttributesHops)
{
    DeadlineTracker tracker; // 16.7 ms budget
    tracker.record(0, 10.0, "render");
    tracker.record(0, 20.0, "render");
    tracker.record(1, 30.0, "stall_wait/transfer");
    EXPECT_EQ(tracker.frames(), 3u);
    EXPECT_EQ(tracker.misses(), 2u);
    EXPECT_DOUBLE_EQ(tracker.budgetMs(), kFrameBudgetMs);

    const Json summary = tracker.toJson();
    EXPECT_EQ(summary.at("frames").asNumber(), 3.0);
    EXPECT_EQ(summary.at("misses").asNumber(), 2.0);
    EXPECT_NEAR(summary.at("miss_rate").asNumber(), 2.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(summary.at("latency").at("p50_ms").asNumber(),
                     20.0);
    EXPECT_DOUBLE_EQ(summary.at("latency").at("max_ms").asNumber(),
                     30.0);
    const Json &byHop = summary.at("misses_by_hop");
    EXPECT_EQ(byHop.at("render").asNumber(), 1.0);
    EXPECT_EQ(byHop.at("stall_wait/transfer").asNumber(), 1.0);
    const Json &client1 = summary.at("clients").at("1");
    EXPECT_EQ(client1.at("frames").asNumber(), 1.0);
    EXPECT_EQ(client1.at("misses").asNumber(), 1.0);
}

TEST(DeadlineTracker, PercentilesAreExactOverTheSampleList)
{
    DeadlineTracker tracker;
    SampleSet reference;
    for (int i = 1; i <= 200; ++i) {
        const double latency = 0.1 * i; // 0.1 .. 20 ms
        tracker.record(static_cast<std::uint16_t>(i % 4), latency,
                       "render");
        reference.add(latency);
    }
    // Exact SampleSet percentiles on both sides: bit-identical, the
    // property the "metrics p99 matches trace-derived p99" acceptance
    // criterion leans on.
    EXPECT_EQ(tracker.percentile(50.0), reference.percentile(50.0));
    EXPECT_EQ(tracker.percentile(99.0), reference.percentile(99.0));
    EXPECT_EQ(tracker.percentile(99.9), reference.percentile(99.9));
}

// --- SLO publication ---------------------------------------------------

TEST_F(FrameTraceTest, FinishPublishesSloUnderTheSessionLabel)
{
    FrameTracer tracer("pool/2p/coterie");
    SampleSet reference;
    for (int i = 0; i < 100; ++i) {
        FrameTraceContext ctx = tracer.mint(
            FrameTracer::Kind::Frame, static_cast<std::uint16_t>(i % 2),
            static_cast<std::uint64_t>(i), 0.0);
        const double latency = 5.0 + 0.2 * i; // 5 .. 24.8 ms
        ctx.hop(Hop::Render, 0.0, latency);
        tracer.complete(ctx, latency);
        reference.add(latency);
    }
    tracer.finish();

    ASSERT_EQ(SloRegistry::global().size(), 1u);
    const Json slo = SloRegistry::global().snapshotJson();
    ASSERT_TRUE(slo.contains("pool/2p/coterie"));
    const Json &summary = slo.at("pool/2p/coterie");
    EXPECT_EQ(summary.at("frames").asNumber(), 100.0);
    // The published p99 is the tracer's own exact percentile — and
    // both equal the reference sample list bit for bit.
    EXPECT_EQ(summary.at("latency").at("p99_ms").asNumber(),
              tracer.deadlines().percentile(99.0));
    EXPECT_EQ(summary.at("latency").at("p99_ms").asNumber(),
              reference.percentile(99.0));

    // Any metrics snapshot re-exports the global SLO registry.
    MetricsRegistry registry;
    const Json snap = registry.snapshotJson();
    ASSERT_TRUE(snap.contains("slo"));
    EXPECT_TRUE(snap.at("slo").contains("pool/2p/coterie"));

    // Re-publishing under the same label replaces (last write wins).
    FrameTracer again("pool/2p/coterie");
    FrameTraceContext ctx =
        again.mint(FrameTracer::Kind::Frame, 0, 0, 0.0);
    ctx.hop(Hop::Render, 0.0, 1.0);
    again.complete(ctx, 1.0);
    again.finish();
    EXPECT_EQ(SloRegistry::global().size(), 1u);
    EXPECT_EQ(SloRegistry::global()
                  .snapshotJson()
                  .at("pool/2p/coterie")
                  .at("frames")
                  .asNumber(),
              1.0);
}

TEST_F(FrameTraceTest, SloSnapshotDumpIsDeterministic)
{
    // Same records -> byte-identical registry dump regardless of
    // publish order: the chaos harness diffs these across
    // COTERIE_THREADS runs.
    const auto publishBoth = [](bool reversed) {
        SloRegistry::global().clear();
        DeadlineTracker a, b;
        a.record(0, 10.0, "render");
        a.record(1, 21.0, "transfer");
        b.record(0, 8.0, "decode");
        if (reversed) {
            SloRegistry::global().publish("s/b", b.toJson());
            SloRegistry::global().publish("s/a", a.toJson());
        } else {
            SloRegistry::global().publish("s/a", a.toJson());
            SloRegistry::global().publish("s/b", b.toJson());
        }
        return SloRegistry::global().snapshotJson().dump(2);
    };
    EXPECT_EQ(publishBoth(false), publishBoth(true));
}

// --- Flight recorder ---------------------------------------------------

#if COTERIE_FLIGHT_ENABLED

TEST(FlightRecorder, RingWrapsAndDumpParses)
{
    const std::string path = "frame_trace_flight_wrap.json";
    // Overfill this thread's ring; the recorder keeps the newest
    // kRingCapacity events and the dump must still be valid JSON.
    for (std::size_t i = 0; i < flight::kRingCapacity + 512; ++i)
        flight::recordFrameHop("frame.render", "flight/test", 1,
                               2, i, static_cast<double>(i), 1.0, 0, 0);
    flight::recordFrameDone("flight/test", 1, 2, 999, 1000.0, 21.5,
                            16.7, "render");
    ASSERT_TRUE(flight::dump(path));

    bool ok = true;
    std::string text;
    {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        char buf[1 << 16];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
            text.append(buf, n);
        ok = std::ferror(f) == 0;
        std::fclose(f);
    }
    ASSERT_TRUE(ok);
    std::string error;
    const Json doc = Json::parse(text, &error);
    ASSERT_TRUE(error.empty()) << error;
    ASSERT_TRUE(doc.contains("traceEvents"));

    std::size_t hops = 0, dones = 0;
    for (const Json &ev : doc.at("traceEvents").items()) {
        const std::string name = ev.at("name").asString();
        if (name == "frame.render" &&
            ev.at("ph").asString() == "X") {
            ++hops;
            // Sim-timeline events live under pid 2, track = client.
            EXPECT_EQ(ev.at("pid").asNumber(), 2.0);
            EXPECT_EQ(ev.at("tid").asNumber(), 2.0);
        } else if (name == "frame.done") {
            ++dones;
            EXPECT_DOUBLE_EQ(
                ev.at("args").at("latency_ms").asNumber(), 21.5);
            EXPECT_EQ(ev.at("args").at("critical_path").asString(),
                      "render");
            EXPECT_TRUE(ev.at("args").at("miss").asBool());
        }
    }
    // The ring wrapped: at most kRingCapacity survivors, and the ones
    // that did survive are the newest (the frame.done among them).
    EXPECT_GT(hops, 0u);
    EXPECT_LE(hops, flight::kRingCapacity);
    EXPECT_EQ(dones, 1u);
    std::remove(path.c_str());
}

TEST(FlightRecorder, InternIsIdempotentAndStable)
{
    const char *a = flight::intern("flight/label");
    const char *b = flight::intern("flight/label");
    const char *c = flight::intern("flight/other");
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_STREQ(a, "flight/label");
}

TEST(FlightRecorder, TracerHopsLandInTheRing)
{
    const std::size_t before = flight::eventCount();
    FrameTracer tracer("flight/tracer");
    FrameTraceContext ctx =
        tracer.mint(FrameTracer::Kind::Frame, 0, 1, 0.0);
    ctx.hop(Hop::Render, 0.0, 10.0);
    tracer.complete(ctx, 10.0);
    // One event per hop plus the completion marker — but a full ring
    // (earlier tests may have saturated it) overwrites in place, so
    // cap the expectation at the ring capacity.
    EXPECT_GE(flight::eventCount(),
              std::min(before + 2, flight::kRingCapacity));
}

using FlightDeathTest = testing::Test;

TEST(FlightDeathTest, InjectedAssertLeavesAParseableDump)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const std::string path = "frame_trace_flight_death.json";
    std::remove(path.c_str());
    // The death-test child inherits the env var, records an event (which
    // lazily arms the panic hook), then trips an assert; the hook must
    // write the dump before the abort.
    ASSERT_EQ(setenv("COTERIE_FLIGHT_DUMP", path.c_str(), 1), 0);
    EXPECT_DEATH(
        {
            flight::recordInstant("flight.crash_marker", "test", 5.0);
            COTERIE_ASSERT(false, "injected flight-dump crash");
        },
        "injected flight-dump crash");
    unsetenv("COTERIE_FLIGHT_DUMP");

    std::string text;
    {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        ASSERT_NE(f, nullptr)
            << "panic hook did not write the flight dump";
        char buf[1 << 16];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
            text.append(buf, n);
        std::fclose(f);
    }
    std::string error;
    const Json doc = Json::parse(text, &error);
    ASSERT_TRUE(error.empty()) << error;
    bool sawMarker = false;
    for (const Json &ev : doc.at("traceEvents").items())
        if (ev.at("name").asString() == "flight.crash_marker")
            sawMarker = true;
    EXPECT_TRUE(sawMarker);
    std::remove(path.c_str());
}

#else // COTERIE_FLIGHT_ENABLED

TEST(FlightRecorder, CompiledOutEntryPointsAreInertNoOps)
{
    static_assert(!flight::kCompiledIn);
    flight::recordInstant("gone", "test");
    EXPECT_EQ(flight::eventCount(), 0u);
    EXPECT_FALSE(flight::dump("unused.json"));
    EXPECT_STREQ(flight::intern("anything"), "");
}

#endif // COTERIE_FLIGHT_ENABLED

} // namespace
} // namespace coterie::obs
