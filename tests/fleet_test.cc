/**
 * @file
 * Fleet orchestration tests: the SessionManager's strict no-op
 * contract (one session, no governor == the solo code path bit for
 * bit), per-coterie fault isolation (a sibling under chaos or a
 * confined exception never perturbs another session's frame output),
 * admission control verdicts, the load-governor degradation ladder,
 * and cross-session sharing of the world-keyed panorama cache.
 *
 * Determinism contract: every assertion here compares sim-time-derived
 * values, and the CI fleet job re-runs this binary at
 * COTERIE_THREADS=1/2/4 diffing the COTERIE_FLEET_DUMP snapshots bit
 * for bit.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/fleet.hh"
#include "core/session.hh"
#include "core/systems/systems.hh"

namespace coterie {
namespace {

using core::AdmissionDecision;
using core::AdmissionVerdict;
using core::FleetCapacity;
using core::FleetResult;
using core::FleetSessionSpec;
using core::GovernorParams;
using core::PlayerMetrics;
using core::Session;
using core::SessionManager;
using core::SessionParams;
using core::SessionPhase;
using core::SystemConfig;
using core::SystemResult;
using sim::FaultPlan;

/** Shared 20 s two-player base (expensive; built once per binary). */
const Session &
fleetBase()
{
    static std::unique_ptr<Session> session = [] {
        SessionParams params;
        params.players = 2;
        params.durationS = 20.0;
        params.seed = 42;
        return Session::create(world::gen::GameId::Viking, params);
    }();
    return *session;
}

/** Bit-exact per-player snapshot (hexfloat doubles), chaos_test style. */
std::string
snapshot(const SystemResult &result)
{
    std::string out = result.systemName + "\n";
    char buf[512];
    for (const PlayerMetrics &m : result.players) {
        std::snprintf(
            buf, sizeof buf,
            "p%d f=%llu/%llu g=%llu s=%llu d=%llu r=%llu t=%llu "
            "x=%llu dc=%llu rj=%llu | %a %a %a %a %a %a %a %a\n",
            m.playerId,
            static_cast<unsigned long long>(m.framesDisplayed),
            static_cast<unsigned long long>(m.framesFetched),
            static_cast<unsigned long long>(m.gridTransitions),
            static_cast<unsigned long long>(m.stalls),
            static_cast<unsigned long long>(m.framesDegraded),
            static_cast<unsigned long long>(m.netRetries),
            static_cast<unsigned long long>(m.netTimeouts),
            static_cast<unsigned long long>(m.fetchGiveups),
            static_cast<unsigned long long>(m.disconnects),
            static_cast<unsigned long long>(m.rejoins), m.fps,
            m.interFrameMs, m.responsivenessMs, m.beMbps,
            m.cacheHitRatio, m.stallMs, m.rejoinHitRatio, m.netDelayMs);
        out += buf;
    }
    std::snprintf(buf, sizeof buf, "chan=%a\n", result.channelUtilMbps);
    out += buf;
    return out;
}

/** Per-frame hexfloat dump of the frame logs (byte-identity checks). */
std::string
frameLogSnapshot(const SystemResult &result)
{
    std::string out;
    char buf[256];
    for (std::size_t p = 0; p < result.frameLogs.size(); ++p) {
        std::snprintf(buf, sizeof buf, "player %zu n=%zu\n", p,
                      result.frameLogs[p].size());
        out += buf;
        for (const core::FrameLogEntry &e : result.frameLogs[p]) {
            std::snprintf(buf, sizeof buf, "%a %a %a %llu %d\n",
                          e.displayMs, e.latencyMs, e.renderMs,
                          static_cast<unsigned long long>(e.bytesFetched),
                          e.degraded ? 1 : 0);
            out += buf;
        }
    }
    return out;
}

/** The solo reference run, with frame logging on. */
SystemResult
soloRun()
{
    SystemConfig config = fleetBase().systemConfig();
    config.recordFrameLog = true;
    return core::runCoterie(config, fleetBase().distThresholds());
}

// ---------------------------------------------------------------------
// Strict no-op: one session, governor off == the solo code path
// ---------------------------------------------------------------------

TEST(Fleet, SingleSessionIsBitIdenticalToSolo)
{
    const SystemResult solo = soloRun();

    SessionManager mgr; // default capacity, governor disabled
    FleetSessionSpec spec;
    spec.base = &fleetBase();
    spec.recordFrameLog = true;
    const AdmissionDecision d = mgr.submit(spec);
    ASSERT_EQ(d.verdict, AdmissionVerdict::Admitted);
    ASSERT_EQ(d.id, 1u);
    const FleetResult fleet = mgr.run();

    ASSERT_EQ(fleet.sessions.size(), 1u);
    EXPECT_EQ(fleet.sessions[0].phase, SessionPhase::Completed);
    EXPECT_EQ(snapshot(fleet.sessions[0].result), snapshot(solo));
    ASSERT_FALSE(solo.frameLogs.empty());
    EXPECT_EQ(fleet.sessions[0].result.frameLogs, solo.frameLogs);
    EXPECT_EQ(fleet.evictions, 0u);
    EXPECT_EQ(fleet.faults, 0u);
    EXPECT_EQ(fleet.shedTransitions, 0u);
}

// ---------------------------------------------------------------------
// Fault isolation: chaos or a confined crash in one coterie never
// perturbs a sibling's frame output
// ---------------------------------------------------------------------

TEST(Fleet, SiblingsUnderChaosAndFaultLeaveSessionUntouched)
{
    const SystemResult solo = soloRun();

    SessionManager mgr;
    // Session A: clean, frame-logged — must match solo byte for byte.
    FleetSessionSpec clean;
    clean.base = &fleetBase();
    clean.recordFrameLog = true;
    // Session B: outage mid-run with the resilience layer on.
    FleetSessionSpec chaotic;
    chaotic.base = &fleetBase();
    chaotic.faults.outage(5000.0, 5600.0);
    chaotic.resilience.enabled = true;
    // Session C: throws from its frame loop; the error boundary must
    // confine it.
    FleetSessionSpec crashing;
    crashing.base = &fleetBase();
    crashing.injectFaultAtMs = 4000.0;

    ASSERT_EQ(mgr.submit(clean).verdict, AdmissionVerdict::Admitted);
    ASSERT_EQ(mgr.submit(chaotic).verdict, AdmissionVerdict::Admitted);
    ASSERT_EQ(mgr.submit(crashing).verdict, AdmissionVerdict::Admitted);
    const FleetResult fleet = mgr.run();

    ASSERT_EQ(fleet.sessions.size(), 3u);
    const auto &a = fleet.sessions[0];
    const auto &b = fleet.sessions[1];
    const auto &c = fleet.sessions[2];

    // A: byte-identical to the solo run despite both siblings.
    EXPECT_EQ(a.phase, SessionPhase::Completed);
    EXPECT_EQ(snapshot(a.result), snapshot(solo));
    EXPECT_EQ(a.result.frameLogs, solo.frameLogs);

    // B: ran to completion and actually saw its outage.
    EXPECT_EQ(b.phase, SessionPhase::Completed);
    std::uint64_t b_retries = 0;
    for (const PlayerMetrics &m : b.result.players)
        b_retries += m.netRetries;
    EXPECT_GT(b_retries, 0u);

    // C: confined, quarantined, reported.
    EXPECT_EQ(c.phase, SessionPhase::Faulted);
    EXPECT_EQ(c.faultReason, "injected session fault");
    EXPECT_EQ(fleet.faults, 1u);
    EXPECT_LT(c.finishedAtMs, 5000.0); // quarantined at the fault
    // The crashed session still yields partial results.
    std::uint64_t c_frames = 0;
    for (const PlayerMetrics &m : c.result.players)
        c_frames += m.framesDisplayed;
    EXPECT_GT(c_frames, 0u);

    // CI cross-thread determinism hook: append the snapshots so the
    // fleet job can diff COTERIE_THREADS=1/2/4 runs bit for bit.
    if (const char *path = std::getenv("COTERIE_FLEET_DUMP")) {
        if (std::FILE *dump = std::fopen(path, "a")) {
            std::fprintf(dump, "== solo ==\n%s", snapshot(solo).c_str());
            for (const auto &s : fleet.sessions)
                std::fprintf(dump, "== session %u (%s) ==\n%s", s.id,
                             core::sessionPhaseName(s.phase),
                             snapshot(s.result).c_str());
            std::fprintf(dump, "== frame log A ==\n%s",
                         frameLogSnapshot(a.result).c_str());
            std::fclose(dump);
        }
    }
}

// ---------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------

/** Short-run spec (regenerated 3 s traces) for capacity tests. */
FleetSessionSpec
shortSpec(std::uint64_t traceSeed)
{
    FleetSessionSpec spec;
    spec.base = &fleetBase();
    spec.durationS = 3.0;
    spec.traceSeed = traceSeed;
    return spec;
}

TEST(Fleet, AdmissionVerdictsFollowTheCapacityModel)
{
    FleetCapacity cap;
    cap.maxSessions = 1;
    cap.admissionQueueLimit = 1;
    SessionManager mgr(cap);

    const AdmissionDecision first = mgr.submit(shortSpec(101));
    const AdmissionDecision second = mgr.submit(shortSpec(102));
    const AdmissionDecision third = mgr.submit(shortSpec(103));
    EXPECT_EQ(first.verdict, AdmissionVerdict::Admitted);
    EXPECT_EQ(second.verdict, AdmissionVerdict::Queued);
    EXPECT_EQ(third.verdict, AdmissionVerdict::Rejected);
    EXPECT_STREQ(third.reason, "admission queue full");

    // A session that could never fit is rejected outright, not queued.
    FleetSessionSpec huge = shortSpec(104);
    huge.players = 1000;
    EXPECT_EQ(mgr.submit(huge).verdict, AdmissionVerdict::Rejected);

    const FleetResult fleet = mgr.run();
    ASSERT_EQ(fleet.sessions.size(), 2u); // rejected specs not adopted
    EXPECT_EQ(fleet.admitted, 1u);
    EXPECT_EQ(fleet.queuedAdmissions, 1u);
    EXPECT_EQ(fleet.rejected, 2u);
    // The queued session started the instant the first finished.
    EXPECT_EQ(fleet.sessions[0].phase, SessionPhase::Completed);
    EXPECT_EQ(fleet.sessions[1].phase, SessionPhase::Completed);
    EXPECT_GE(fleet.sessions[1].startedAtMs,
              fleet.sessions[0].finishedAtMs);
    std::uint64_t queued_frames = 0;
    for (const PlayerMetrics &m : fleet.sessions[1].result.players)
        queued_frames += m.framesDisplayed;
    EXPECT_GT(queued_frames, 0u);
}

TEST(Fleet, RenderLoadCeilingRejects)
{
    FleetCapacity cap;
    // One 2-player session costs ~2 * 2.5 ms * 60 Hz = 300 ms/s.
    cap.maxRenderLoadMsPerS = 400.0;
    cap.admissionQueueLimit = 0;
    SessionManager mgr(cap);
    EXPECT_EQ(mgr.submit(shortSpec(1)).verdict,
              AdmissionVerdict::Admitted);
    EXPECT_EQ(mgr.submit(shortSpec(2)).verdict,
              AdmissionVerdict::Rejected);
    mgr.run();
}

// ---------------------------------------------------------------------
// Load governor: escalating shed ladder, eviction last
// ---------------------------------------------------------------------

GovernorParams
testGovernor()
{
    GovernorParams gov;
    gov.enabled = true;
    gov.tickMs = 250.0;
    gov.shedMissRate = 0.05;
    gov.degradeMissRate = 0.15;
    gov.evictMissRate = 0.50;
    gov.evictStrikes = 3;
    gov.recoverMissRate = 0.01;
    return gov;
}

/** A session that cannot make progress: cacheless under a collapsed
 *  link, with no resilience escape hatch. */
FleetSessionSpec
hopelessSpec()
{
    FleetSessionSpec spec;
    spec.base = &fleetBase();
    spec.withCache = false;
    spec.faults.bandwidthCollapse(2000.0, 20000.0, 0.01);
    return spec;
}

TEST(Fleet, GovernorEscalatesShedBeforeEvicting)
{
    SessionManager mgr({}, testGovernor());
    ASSERT_EQ(mgr.submit(hopelessSpec()).verdict,
              AdmissionVerdict::Admitted);
    const FleetResult fleet = mgr.run();

    ASSERT_EQ(fleet.sessions.size(), 1u);
    const auto &s = fleet.sessions[0];
    // The ladder walked every rung: throttle, degrade, then — after
    // evictStrikes consecutive hopeless ticks — quarantine.
    EXPECT_GE(fleet.shedTransitions, 1u);
    EXPECT_GE(fleet.degradeTransitions, 1u);
    EXPECT_EQ(fleet.evictions, 1u);
    EXPECT_EQ(s.phase, SessionPhase::Evicted);
    // Eviction can only happen after evictStrikes governor ticks, and
    // must land well before the session's natural 20 s horizon.
    EXPECT_GE(s.finishedAtMs, 3 * 250.0);
    EXPECT_LT(s.finishedAtMs, 20000.0);
    // Cumulative SLO accounting survived into the report.
    EXPECT_GT(s.slo.frames, 0u);
}

TEST(Fleet, GovernorDecisionsAreDeterministic)
{
    auto run = [] {
        SessionManager mgr({}, testGovernor());
        mgr.submit(hopelessSpec());
        FleetResult fleet = mgr.run();
        char buf[64];
        std::snprintf(buf, sizeof buf, "%a|%d|%llu",
                      fleet.sessions[0].finishedAtMs,
                      fleet.sessions[0].shedLevel,
                      static_cast<unsigned long long>(fleet.evictions));
        return snapshot(fleet.sessions[0].result) + buf;
    };
    EXPECT_EQ(run(), run());
}

TEST(Fleet, HealthySessionNeverSheds)
{
    GovernorParams gov = testGovernor();
    gov.shedMissRate = 0.8; // clean runs stay far below this
    gov.degradeMissRate = 0.9;
    gov.evictMissRate = 0.95;
    SessionManager mgr({}, gov);
    FleetSessionSpec spec;
    spec.base = &fleetBase();
    ASSERT_EQ(mgr.submit(spec).verdict, AdmissionVerdict::Admitted);
    const FleetResult fleet = mgr.run();
    EXPECT_EQ(fleet.shedTransitions, 0u);
    EXPECT_EQ(fleet.evictions, 0u);
    EXPECT_EQ(fleet.sessions[0].shedLevel, 0);
    EXPECT_EQ(fleet.sessions[0].phase, SessionPhase::Completed);
}

// ---------------------------------------------------------------------
// Cross-session sharing of the world-keyed panorama cache
// ---------------------------------------------------------------------

TEST(Fleet, SameWorldSessionsShareRenders)
{
    SessionManager mgr;
    // Two bases over the *same* world (same game + seed), both wired
    // to the manager's shared cache — the multi-tenant deployment
    // shape. Short runs; similarity calibration skipped for speed.
    SessionParams sp;
    sp.players = 2;
    sp.durationS = 5.0;
    sp.seed = 42;
    sp.calibrateSimilarity = false;
    sp.frameStore.sharedPanoCache = mgr.panoCache();
    const auto base1 = Session::create(world::gen::GameId::Viking, sp);
    const auto base2 = Session::create(world::gen::GameId::Viking, sp);

    FleetSessionSpec spec1;
    spec1.base = base1.get();
    spec1.renderOnFetch = true;
    spec1.renderWidth = 48;
    spec1.renderHeight = 24;
    FleetSessionSpec spec2 = spec1;
    spec2.base = base2.get();
    ASSERT_EQ(mgr.submit(spec1).verdict, AdmissionVerdict::Admitted);
    ASSERT_EQ(mgr.submit(spec2).verdict, AdmissionVerdict::Admitted);
    const FleetResult fleet = mgr.run();

    ASSERT_EQ(fleet.sessions.size(), 2u);
    EXPECT_GT(fleet.sessions[0].fleetRenders, 0u);
    EXPECT_GT(fleet.sessions[1].fleetRenders, 0u);
    // Identical traces on an identical world: every delivery session 2
    // realizes was already rendered by session 1 an instant earlier,
    // so the shared cache serves it for free.
    EXPECT_GT(fleet.panoCache.hits, 0u);
    EXPECT_GE(fleet.panoCache.hits, fleet.sessions[1].fleetRenders);
    // Eviction-charge accounting: every resident byte is charged to
    // the session that caused its render (session 1 here), and hits
    // never move the charge.
    EXPECT_EQ(mgr.panoCache()->ownerBytes(1), fleet.panoCache.bytes);
    EXPECT_EQ(mgr.panoCache()->ownerBytes(2), 0u);
    // Departing sessions left no in-flight claims behind.
    EXPECT_EQ(fleet.panoCache.claimsReleased, 0u);
    EXPECT_EQ(fleet.panoCache.orphanRenders, 0u);
}

} // namespace
} // namespace coterie
