/**
 * @file
 * Tests for the offline→online round trip: a session rebuilt from saved
 * artifacts must behave identically to the session that produced them
 * (same leaves, same thresholds, same end-to-end results), closing the
 * loop exercised by tools/coterie_offline.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "core/session.hh"

namespace coterie::core {
namespace {

using world::gen::GameId;

OfflineArtifacts
artifactsOf(const Session &session)
{
    OfflineArtifacts artifacts;
    artifacts.game = session.info().name;
    artifacts.device = session.params().profile.name;
    artifacts.worldBounds = session.world().bounds();
    artifacts.leaves = session.partition().leaves;
    artifacts.distThresholds = session.distThresholds();
    return artifacts;
}

TEST(SessionArtifacts, RoundTripMatchesFreshPreprocessing)
{
    SessionParams params;
    params.players = 1;
    params.durationS = 10.0;
    params.seed = 21;
    auto fresh = Session::create(GameId::Pool, params);

    // Save and reload through the on-disk format.
    const std::string path =
        testing::TempDir() + "/coterie_session_artifacts.txt";
    ASSERT_TRUE(saveArtifacts(artifactsOf(*fresh), path));
    const auto loaded = loadArtifacts(path);
    std::remove(path.c_str());
    ASSERT_TRUE(loaded.has_value());

    auto restored =
        Session::createFromArtifacts(GameId::Pool, *loaded, params);

    ASSERT_EQ(restored->partition().leaves.size(),
              fresh->partition().leaves.size());
    for (std::size_t i = 0; i < fresh->distThresholds().size(); ++i) {
        EXPECT_NEAR(restored->distThresholds()[i],
                    fresh->distThresholds()[i], 1e-6);
        EXPECT_NEAR(restored->partition().leaves[i].cutoffRadius,
                    fresh->partition().leaves[i].cutoffRadius, 1e-6);
    }

    // End-to-end behaviour is identical.
    const SystemResult a = fresh->runCoterieSystem();
    const SystemResult b = restored->runCoterieSystem();
    ASSERT_EQ(a.players.size(), b.players.size());
    EXPECT_EQ(a.players[0].framesDisplayed, b.players[0].framesDisplayed);
    EXPECT_EQ(a.players[0].framesFetched, b.players[0].framesFetched);
    EXPECT_DOUBLE_EQ(a.players[0].beMbps, b.players[0].beMbps);
}

TEST(SessionArtifacts, SkipsTheExpensivePreprocessing)
{
    SessionParams params;
    params.players = 1;
    params.durationS = 5.0;
    auto fresh = Session::create(GameId::Pool, params);
    const OfflineArtifacts artifacts = artifactsOf(*fresh);

    // Rebuilding from artifacts performs no cutoff calculations.
    auto restored =
        Session::createFromArtifacts(GameId::Pool, artifacts, params);
    EXPECT_EQ(restored->partition().cutoffCalculations, 0u);
    EXPECT_GT(restored->partition().leaves.size(), 0u);
}

TEST(SessionArtifactsDeath, WrongGamePanics)
{
    SessionParams params;
    params.players = 1;
    params.durationS = 5.0;
    auto fresh = Session::create(GameId::Pool, params);
    const OfflineArtifacts artifacts = artifactsOf(*fresh);
    EXPECT_DEATH(
        Session::createFromArtifacts(GameId::Bowling, artifacts, params),
        "belong");
}

} // namespace
} // namespace coterie::core
