/**
 * @file
 * Tests for stereo projection: eye geometry, parallax behaviour (near
 * content shifts between eyes, far content barely), composite layout,
 * and the split-path stereo (per-eye near render over a shared far
 * panorama) against full per-eye renders.
 */

#include <gtest/gtest.h>

#include "image/ssim.hh"
#include "render/stereo.hh"
#include "world/gen/generators.hh"

namespace coterie::render {
namespace {

using geom::Vec3;

TEST(Stereo, EyeCamerasSeparatedByIpd)
{
    Camera head;
    head.position = {10, 1.7, 10};
    head.yaw = 0.8;
    StereoParams params;
    const auto [left, right] = eyeCameras(head, params);
    EXPECT_NEAR(left.position.distance(right.position),
                params.ipdMeters, 1e-12);
    // Midpoint is the head position; yaw unchanged.
    const Vec3 mid = (left.position + right.position) * 0.5;
    EXPECT_NEAR(mid.distance(head.position), 0.0, 1e-12);
    EXPECT_DOUBLE_EQ(left.yaw, head.yaw);
    // Separation is horizontal.
    EXPECT_DOUBLE_EQ(left.position.y, right.position.y);
}

TEST(Stereo, CompositePlacesEyesSideBySide)
{
    StereoFrame frame;
    frame.left = image::Image(4, 3, {10, 0, 0});
    frame.right = image::Image(4, 3, {0, 20, 0});
    const image::Image panel = frame.composite();
    EXPECT_EQ(panel.width(), 8);
    EXPECT_EQ(panel.height(), 3);
    EXPECT_EQ(panel.at(0, 0), (image::Rgb{10, 0, 0}));
    EXPECT_EQ(panel.at(4, 0), (image::Rgb{0, 20, 0}));
}

TEST(Stereo, NearContentHasMoreParallaxThanFar)
{
    const auto world =
        world::gen::makeWorld(world::gen::GameId::Pool, 11);
    const Renderer renderer(world);
    Camera head;
    head.position = world.eyePosition({5.0, 6.5});
    head.yaw = 1.2;
    StereoParams params;
    params.eyeWidth = 128;
    params.eyeHeight = 96;
    // Exaggerate the IPD so parallax is measurable at low resolution.
    params.ipdMeters = 0.3;

    RenderOptions near_opts;
    near_opts.layer = DepthLayer::nearBe(3.0);
    RenderOptions far_opts;
    far_opts.layer = DepthLayer::farBe(3.0);
    const StereoFrame near_pair =
        renderStereo(renderer, head, params, near_opts);
    const StereoFrame far_pair =
        renderStereo(renderer, head, params, far_opts);
    // Left/right near layers differ more than left/right far layers.
    const double near_diff =
        near_pair.left.meanAbsDiff(near_pair.right);
    const double far_diff = far_pair.left.meanAbsDiff(far_pair.right);
    EXPECT_GT(near_diff, far_diff);
}

TEST(Stereo, PanoramaPathApproximatesFullPerEyeRender)
{
    const auto world =
        world::gen::makeWorld(world::gen::GameId::Pool, 11);
    const Renderer renderer(world);
    Camera head;
    head.position = world.eyePosition({5.0, 6.5});
    head.yaw = 0.4;
    const double cutoff = 3.0;
    StereoParams params;
    params.eyeWidth = 96;
    params.eyeHeight = 72;

    RenderOptions far_opts;
    far_opts.layer = DepthLayer::farBe(cutoff);
    const image::Image pano = renderer.renderPanorama(
        head.position, 768, 384, far_opts);
    const StereoFrame split =
        stereoFromPanorama(renderer, pano, head, cutoff, params);
    const StereoFrame truth = renderStereo(renderer, head, params);

    EXPECT_GT(image::ssim(split.left, truth.left), 0.6);
    EXPECT_GT(image::ssim(split.right, truth.right), 0.6);
}

} // namespace
} // namespace coterie::render
