/**
 * @file
 * Panorama render cache: hit/miss accounting, single-flight de-dup,
 * LRU eviction under a byte budget, failure takeover, and end-to-end
 * transparency through FrameStore (a cached far-BE panorama is the
 * exact frame the renderer would have produced).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>

#include "core/pano_cache.hh"
#include "core/server.hh"
#include "support/parallel.hh"
#include "world/gen/generators.hh"

namespace coterie::core {
namespace {

using geom::Vec2;
using image::Image;
using world::gen::GameId;

PanoKey
testKey(std::int64_t qx, std::int64_t qy)
{
    PanoKey key;
    key.worldTag = 0x7e57;
    key.qx = qx;
    key.qy = qy;
    key.width = 4;
    key.height = 4;
    return key;
}

Image
solidImage(int w, int h, std::uint8_t v)
{
    Image img(w, h);
    for (auto &px : img.pixels())
        px = {v, v, v};
    return img;
}

TEST(PanoCache, HitMissAndStats)
{
    PanoramaRenderCache cache(1 << 20);
    std::atomic<int> renders{0};
    const auto render = [&] {
        ++renders;
        return solidImage(4, 4, 9);
    };

    const auto a1 = cache.getOrRender(testKey(0, 0), render);
    const auto a2 = cache.getOrRender(testKey(0, 0), render);
    EXPECT_EQ(a1.get(), a2.get()); // literally the same frame
    EXPECT_EQ(renders.load(), 1);

    cache.getOrRender(testKey(1, 0), render);
    EXPECT_EQ(renders.load(), 2);

    const PanoCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.bytes, 2u * 4 * 4 * 3);
    EXPECT_EQ(stats.evictions, 0u);
}

TEST(PanoCache, KeySchemesDoNotCollide)
{
    // Same indices, but one key is grid-scheme (pitchBits == 0) and the
    // other quantized-location-scheme: they must be distinct entries.
    PanoramaRenderCache cache(1 << 20);
    std::atomic<int> renders{0};
    const auto render = [&] {
        ++renders;
        return solidImage(4, 4, 1);
    };
    PanoKey grid_key = testKey(5, 5);
    PanoKey cell_key = testKey(5, 5);
    cell_key.pitchBits = 0x4010000000000000ull; // 4.0
    cache.getOrRender(grid_key, render);
    cache.getOrRender(cell_key, render);
    EXPECT_EQ(renders.load(), 2);
}

TEST(PanoCache, SingleFlightConcurrentMisses)
{
    // N concurrent requests for one key: exactly one render; every
    // other request is a hit (arrived after completion) or an
    // inflight join (arrived during the render) — never a second
    // render.
    constexpr int kRequests = 16;
    PanoramaRenderCache cache(1 << 20);
    std::atomic<int> renders{0};
    support::parallelFor(
        0, kRequests, 1,
        [&](std::int64_t b, std::int64_t e) {
            for (std::int64_t i = b; i < e; ++i) {
                const auto img = cache.getOrRender(testKey(7, 7), [&] {
                    ++renders;
                    return solidImage(16, 16, 3);
                });
                ASSERT_TRUE(img);
                EXPECT_EQ(img->pixels()[0].r, 3);
            }
        },
        4);
    EXPECT_EQ(renders.load(), 1);
    const PanoCacheStats stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits + stats.inflightJoins,
              static_cast<std::uint64_t>(kRequests - 1));
}

TEST(PanoCache, LruEvictionUnderByteBudget)
{
    // Budget fits exactly two 4x4 frames (48 bytes each).
    PanoramaRenderCache cache(96);
    std::atomic<int> renders{0};
    const auto render = [&] {
        ++renders;
        return solidImage(4, 4, 2);
    };
    cache.getOrRender(testKey(0, 0), render); // A
    cache.getOrRender(testKey(1, 0), render); // B
    cache.getOrRender(testKey(0, 0), render); // touch A (hit)
    cache.getOrRender(testKey(2, 0), render); // C -> evicts LRU = B
    EXPECT_EQ(renders.load(), 3);

    PanoCacheStats stats = cache.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.evictedBytes, 48u);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_LE(stats.bytes, 96u);

    cache.getOrRender(testKey(0, 0), render); // A still resident
    EXPECT_EQ(renders.load(), 3);
    cache.getOrRender(testKey(1, 0), render); // B was evicted
    EXPECT_EQ(renders.load(), 4);
}

TEST(PanoCache, FailedRenderReleasesClaim)
{
    PanoramaRenderCache cache(1 << 20);
    EXPECT_THROW(cache.getOrRender(
                     testKey(9, 9),
                     []() -> Image { throw std::runtime_error("gpu"); }),
                 std::runtime_error);
    // The claim was withdrawn: a retry renders fresh instead of
    // deadlocking on a forever-in-flight entry.
    std::atomic<int> renders{0};
    const auto img = cache.getOrRender(testKey(9, 9), [&] {
        ++renders;
        return solidImage(4, 4, 8);
    });
    EXPECT_EQ(renders.load(), 1);
    EXPECT_EQ(img->pixels()[0].g, 8);
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(PanoCache, ClearDropsCompletedEntries)
{
    PanoramaRenderCache cache(1 << 20);
    std::atomic<int> renders{0};
    const auto render = [&] {
        ++renders;
        return solidImage(4, 4, 5);
    };
    cache.getOrRender(testKey(0, 0), render);
    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().bytes, 0u);
    cache.getOrRender(testKey(0, 0), render);
    EXPECT_EQ(renders.load(), 2);
}

/** FrameStore integration over a real world + partition. */
struct PanoCacheFixture : testing::Test
{
    PanoCacheFixture()
        : world(world::gen::makeWorld(GameId::Viking, 42)),
          grid(world::gen::makeGrid(
              world::gen::gameInfo(GameId::Viking))),
          partition(partitionWorld(world, device::pixel2(), {})),
          regions(world.bounds(), partition.leaves),
          frames(world, grid, regions)
    {
    }

    world::VirtualWorld world;
    world::GridMap grid;
    PartitionResult partition;
    RegionIndex regions;
    FrameStore frames;
};

TEST_F(PanoCacheFixture, SameCellSharesOneRender)
{
    const double thresh = 8.0;
    const double pitch = std::max(thresh, grid.spacing());
    const geom::Rect &b = world.bounds();
    // Two distinct positions inside the same quantization cell, and a
    // third in the neighboring cell.
    const Vec2 p1{b.lo.x + 2.25 * pitch, b.lo.y + 2.25 * pitch};
    const Vec2 p2{b.lo.x + 2.75 * pitch, b.lo.y + 2.75 * pitch};
    const Vec2 p3{b.lo.x + 3.25 * pitch, b.lo.y + 2.25 * pitch};

    const auto f1 = frames.farBePanorama(p1, thresh, 48, 24);
    const auto f2 = frames.farBePanorama(p2, thresh, 48, 24);
    const auto f3 = frames.farBePanorama(p3, thresh, 48, 24);
    EXPECT_EQ(f1.get(), f2.get()); // shared cached frame
    EXPECT_NE(f1.get(), f3.get());

    const PanoCacheStats stats = frames.panoCacheStats();
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.hits, 1u);
}

TEST_F(PanoCacheFixture, CachedPanoramaMatchesDirectRender)
{
    const double thresh = 8.0;
    const double pitch = std::max(thresh, grid.spacing());
    const geom::Rect &b = world.bounds();
    const Vec2 pos{b.lo.x + 5.6 * pitch, b.lo.y + 4.4 * pitch};
    const auto cached = frames.farBePanorama(pos, thresh, 48, 24);

    // Reconstruct the cell-representative render the cache performs.
    const auto qx = static_cast<std::int64_t>(
        std::floor((pos.x - b.lo.x) / pitch));
    const auto qy = static_cast<std::int64_t>(
        std::floor((pos.y - b.lo.y) / pitch));
    const Vec2 rep{
        std::clamp(b.lo.x + (qx + 0.5) * pitch, b.lo.x, b.hi.x),
        std::clamp(b.lo.y + (qy + 0.5) * pitch, b.lo.y, b.hi.y)};
    const render::Renderer renderer(world);
    render::RenderOptions opts;
    opts.layer = render::DepthLayer::farBe(regions.cutoffAt(rep));
    const Image direct =
        renderer.renderPanorama(world.eyePosition(rep), 48, 24, opts);
    EXPECT_TRUE(cached->pixels() == direct.pixels());
}

TEST_F(PanoCacheFixture, PrerenderSecondPassIsAllHits)
{
    const auto first = frames.prerenderFarBe(192, 32, 16);
    const PanoCacheStats after_first = frames.panoCacheStats();
    EXPECT_EQ(after_first.misses, first.frames);

    const auto second = frames.prerenderFarBe(192, 32, 16);
    const PanoCacheStats after_second = frames.panoCacheStats();
    EXPECT_EQ(second.frames, first.frames);
    EXPECT_EQ(second.encodedBytes, first.encodedBytes);
    // Every second-pass frame came out of the cache.
    EXPECT_EQ(after_second.misses, after_first.misses);
    EXPECT_EQ(after_second.hits, after_first.hits + second.frames);
}

TEST_F(PanoCacheFixture, EightClientsRenderOncePerDistinctCell)
{
    // Four position pairs, each pair within one quantization cell:
    // eight "clients" cost exactly four renders (ISSUE acceptance:
    // renders == distinct quantized locations).
    const double thresh = 8.0;
    const double pitch = std::max(thresh, grid.spacing());
    const geom::Rect &b = world.bounds();
    std::vector<Vec2> clients;
    for (int pair = 0; pair < 4; ++pair) {
        const double cx = b.lo.x + (2.0 * pair + 2.25) * pitch;
        const double cy = b.lo.y + 2.25 * pitch;
        clients.push_back({cx, cy});
        clients.push_back({cx + 0.4 * pitch, cy + 0.4 * pitch});
    }
    support::parallelFor(
        0, static_cast<std::int64_t>(clients.size()), 1,
        [&](std::int64_t s, std::int64_t e) {
            for (std::int64_t i = s; i < e; ++i)
                frames.farBePanorama(clients[static_cast<std::size_t>(i)],
                                     thresh, 32, 16);
        },
        4);
    const PanoCacheStats stats = frames.panoCacheStats();
    EXPECT_EQ(stats.misses, 4u);
    EXPECT_EQ(stats.hits + stats.inflightJoins, 4u);
}

TEST_F(PanoCacheFixture, SerialAndPooledRendersAreBitIdentical)
{
    // Two independent stores so both actually render: one serial, one
    // on the pool. The frames must match bit for bit (the determinism
    // invariant the cache relies on to share frames across clients).
    FrameStore serial(world, grid, regions);
    const Vec2 pos = world.bounds().center();
    const auto pooled = frames.farBePanorama(pos, 8.0, 64, 32, 0);
    const auto single = serial.farBePanorama(pos, 8.0, 64, 32, 1);
    EXPECT_TRUE(pooled->pixels() == single->pixels());
}

} // namespace
} // namespace coterie::core
