/**
 * @file
 * Panorama render cache: hit/miss accounting, single-flight de-dup,
 * LRU eviction under a byte budget, failure takeover, and end-to-end
 * transparency through FrameStore (a cached far-BE panorama is the
 * exact frame the renderer would have produced).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "core/pano_cache.hh"
#include "core/server.hh"
#include "support/parallel.hh"
#include "world/gen/generators.hh"

namespace coterie::core {
namespace {

using geom::Vec2;
using image::Image;
using world::gen::GameId;

PanoKey
testKey(std::int64_t qx, std::int64_t qy)
{
    PanoKey key;
    key.worldTag = 0x7e57;
    key.qx = qx;
    key.qy = qy;
    key.width = 4;
    key.height = 4;
    return key;
}

Image
solidImage(int w, int h, std::uint8_t v)
{
    Image img(w, h);
    for (auto &px : img.pixels())
        px = {v, v, v};
    return img;
}

TEST(PanoCache, HitMissAndStats)
{
    PanoramaRenderCache cache(1 << 20);
    std::atomic<int> renders{0};
    const auto render = [&] {
        ++renders;
        return solidImage(4, 4, 9);
    };

    const auto a1 = cache.getOrRender(testKey(0, 0), render);
    const auto a2 = cache.getOrRender(testKey(0, 0), render);
    EXPECT_EQ(a1.get(), a2.get()); // literally the same frame
    EXPECT_EQ(renders.load(), 1);

    cache.getOrRender(testKey(1, 0), render);
    EXPECT_EQ(renders.load(), 2);

    const PanoCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.bytes, 2u * 4 * 4 * 3);
    EXPECT_EQ(stats.evictions, 0u);
}

TEST(PanoCache, KeySchemesDoNotCollide)
{
    // Same indices, but one key is grid-scheme (pitchBits == 0) and the
    // other quantized-location-scheme: they must be distinct entries.
    PanoramaRenderCache cache(1 << 20);
    std::atomic<int> renders{0};
    const auto render = [&] {
        ++renders;
        return solidImage(4, 4, 1);
    };
    PanoKey grid_key = testKey(5, 5);
    PanoKey cell_key = testKey(5, 5);
    cell_key.pitchBits = 0x4010000000000000ull; // 4.0
    cache.getOrRender(grid_key, render);
    cache.getOrRender(cell_key, render);
    EXPECT_EQ(renders.load(), 2);
}

TEST(PanoCache, SingleFlightConcurrentMisses)
{
    // N concurrent requests for one key: exactly one render; every
    // other request is a hit (arrived after completion) or an
    // inflight join (arrived during the render) — never a second
    // render.
    constexpr int kRequests = 16;
    PanoramaRenderCache cache(1 << 20);
    std::atomic<int> renders{0};
    support::parallelFor(
        0, kRequests, 1,
        [&](std::int64_t b, std::int64_t e) {
            for (std::int64_t i = b; i < e; ++i) {
                const auto img = cache.getOrRender(testKey(7, 7), [&] {
                    ++renders;
                    return solidImage(16, 16, 3);
                });
                ASSERT_TRUE(img);
                EXPECT_EQ(img->pixels()[0].r, 3);
            }
        },
        4);
    EXPECT_EQ(renders.load(), 1);
    const PanoCacheStats stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits + stats.inflightJoins,
              static_cast<std::uint64_t>(kRequests - 1));
}

TEST(PanoCache, LruEvictionUnderByteBudget)
{
    // Budget fits exactly two 4x4 frames (48 bytes each).
    PanoramaRenderCache cache(96);
    std::atomic<int> renders{0};
    const auto render = [&] {
        ++renders;
        return solidImage(4, 4, 2);
    };
    cache.getOrRender(testKey(0, 0), render); // A
    cache.getOrRender(testKey(1, 0), render); // B
    cache.getOrRender(testKey(0, 0), render); // touch A (hit)
    cache.getOrRender(testKey(2, 0), render); // C -> evicts LRU = B
    EXPECT_EQ(renders.load(), 3);

    PanoCacheStats stats = cache.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.evictedBytes, 48u);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_LE(stats.bytes, 96u);

    cache.getOrRender(testKey(0, 0), render); // A still resident
    EXPECT_EQ(renders.load(), 3);
    cache.getOrRender(testKey(1, 0), render); // B was evicted
    EXPECT_EQ(renders.load(), 4);
}

TEST(PanoCache, FailedRenderReleasesClaim)
{
    PanoramaRenderCache cache(1 << 20);
    EXPECT_THROW(cache.getOrRender(
                     testKey(9, 9),
                     []() -> Image { throw std::runtime_error("gpu"); }),
                 std::runtime_error);
    // The claim was withdrawn: a retry renders fresh instead of
    // deadlocking on a forever-in-flight entry.
    std::atomic<int> renders{0};
    const auto img = cache.getOrRender(testKey(9, 9), [&] {
        ++renders;
        return solidImage(4, 4, 8);
    });
    EXPECT_EQ(renders.load(), 1);
    EXPECT_EQ(img->pixels()[0].g, 8);
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(PanoCache, ClearDropsCompletedEntries)
{
    PanoramaRenderCache cache(1 << 20);
    std::atomic<int> renders{0};
    const auto render = [&] {
        ++renders;
        return solidImage(4, 4, 5);
    };
    cache.getOrRender(testKey(0, 0), render);
    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().bytes, 0u);
    cache.getOrRender(testKey(0, 0), render);
    EXPECT_EQ(renders.load(), 2);
}

TEST(PanoCache, WorldTagsNeverCollide)
{
    // Identical quantized coordinates and dimensions under different
    // world tags are different panoramas — a fleet sharing one cache
    // across worlds must never serve one world's sky to another.
    PanoramaRenderCache cache(1 << 20);
    std::atomic<int> renders{0};
    const auto render = [&] {
        ++renders;
        return solidImage(4, 4, 6);
    };
    PanoKey viking = testKey(3, 3);
    PanoKey fps = testKey(3, 3);
    fps.worldTag = 0x0f95;
    cache.getOrRender(viking, render);
    cache.getOrRender(fps, render);
    EXPECT_EQ(renders.load(), 2);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(PanoCache, ReleaseClaimsOrphansInFlightRender)
{
    // Regression for the fleet claim leak: a session destroyed while
    // its render is in flight must not leave a forever-pending claim.
    // releaseClaims fires *during* the render (exactly what session
    // teardown does); the finished image is handed back uncached.
    PanoramaRenderCache cache(1 << 20);
    std::size_t released = 0;
    const auto img = cache.getOrRender(
        testKey(2, 2),
        [&] {
            released = cache.releaseClaims(/*owner=*/7);
            return solidImage(4, 4, 4);
        },
        nullptr, /*owner=*/7);
    ASSERT_TRUE(img); // the caller still gets its frame
    EXPECT_EQ(img->pixels()[0].r, 4);
    EXPECT_EQ(released, 1u);

    PanoCacheStats stats = cache.stats();
    EXPECT_EQ(stats.claimsReleased, 1u);
    EXPECT_EQ(stats.orphanRenders, 1u);
    EXPECT_EQ(stats.entries, 0u); // never published, never charged
    EXPECT_EQ(cache.ownerBytes(7), 0u);

    // The key is renderable again by anyone — no deadlocked claim.
    std::atomic<int> renders{0};
    cache.getOrRender(testKey(2, 2), [&] {
        ++renders;
        return solidImage(4, 4, 4);
    });
    EXPECT_EQ(renders.load(), 1);
}

TEST(PanoCache, CrossOwnerHitsLeaveChargeWithRenderer)
{
    // Sibling sessions hit each other's entries for free: the session
    // that caused the render keeps the residency charge.
    PanoramaRenderCache cache(1 << 20);
    const auto render = [] { return solidImage(4, 4, 1); };
    cache.getOrRender(testKey(0, 0), render, nullptr, /*owner=*/1);
    cache.getOrRender(testKey(0, 0), render, nullptr, /*owner=*/2);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.ownerBytes(1), 48u);
    EXPECT_EQ(cache.ownerBytes(2), 0u);
}

TEST(PanoCache, EvictionChargesHeaviestOwnerFirst)
{
    // Budget fits two 4x4 frames. Session 1 renders two panoramas;
    // session 2's first render then forces an eviction — the victim
    // comes from the heaviest-charged owner (session 1, LRU within),
    // not from the newcomer, so one hot session cannot starve a
    // sibling's working set.
    PanoramaRenderCache cache(96);
    std::atomic<int> renders{0};
    const auto render = [&] {
        ++renders;
        return solidImage(4, 4, 2);
    };
    cache.getOrRender(testKey(0, 0), render, nullptr, 1); // A
    cache.getOrRender(testKey(1, 0), render, nullptr, 1); // B
    cache.getOrRender(testKey(2, 0), render, nullptr, 2); // C evicts A
    EXPECT_EQ(renders.load(), 3);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.ownerBytes(1), 48u);
    EXPECT_EQ(cache.ownerBytes(2), 48u);

    cache.getOrRender(testKey(1, 0), render, nullptr, 1); // B resident
    cache.getOrRender(testKey(2, 0), render, nullptr, 2); // C resident
    EXPECT_EQ(renders.load(), 3);
    cache.getOrRender(testKey(0, 0), render, nullptr, 1); // A was evicted
    EXPECT_EQ(renders.load(), 4);
}

/** FrameStore integration over a real world + partition. */
struct PanoCacheFixture : testing::Test
{
    PanoCacheFixture()
        : world(world::gen::makeWorld(GameId::Viking, 42)),
          grid(world::gen::makeGrid(
              world::gen::gameInfo(GameId::Viking))),
          partition(partitionWorld(world, device::pixel2(), {})),
          regions(world.bounds(), partition.leaves),
          frames(world, grid, regions)
    {
    }

    world::VirtualWorld world;
    world::GridMap grid;
    PartitionResult partition;
    RegionIndex regions;
    FrameStore frames;
};

TEST_F(PanoCacheFixture, SameCellSharesOneRender)
{
    const double thresh = 8.0;
    const double pitch = std::max(thresh, grid.spacing());
    const geom::Rect &b = world.bounds();
    // Two distinct positions inside the same quantization cell, and a
    // third in the neighboring cell.
    const Vec2 p1{b.lo.x + 2.25 * pitch, b.lo.y + 2.25 * pitch};
    const Vec2 p2{b.lo.x + 2.75 * pitch, b.lo.y + 2.75 * pitch};
    const Vec2 p3{b.lo.x + 3.25 * pitch, b.lo.y + 2.25 * pitch};

    const auto f1 = frames.farBePanorama(p1, thresh, 48, 24);
    const auto f2 = frames.farBePanorama(p2, thresh, 48, 24);
    const auto f3 = frames.farBePanorama(p3, thresh, 48, 24);
    EXPECT_EQ(f1.get(), f2.get()); // shared cached frame
    EXPECT_NE(f1.get(), f3.get());

    const PanoCacheStats stats = frames.panoCacheStats();
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.hits, 1u);
}

TEST_F(PanoCacheFixture, CachedPanoramaMatchesDirectRender)
{
    const double thresh = 8.0;
    const double pitch = std::max(thresh, grid.spacing());
    const geom::Rect &b = world.bounds();
    const Vec2 pos{b.lo.x + 5.6 * pitch, b.lo.y + 4.4 * pitch};
    const auto cached = frames.farBePanorama(pos, thresh, 48, 24);

    // Reconstruct the cell-representative render the cache performs.
    const auto qx = static_cast<std::int64_t>(
        std::floor((pos.x - b.lo.x) / pitch));
    const auto qy = static_cast<std::int64_t>(
        std::floor((pos.y - b.lo.y) / pitch));
    const Vec2 rep{
        std::clamp(b.lo.x + (qx + 0.5) * pitch, b.lo.x, b.hi.x),
        std::clamp(b.lo.y + (qy + 0.5) * pitch, b.lo.y, b.hi.y)};
    const render::Renderer renderer(world);
    render::RenderOptions opts;
    opts.layer = render::DepthLayer::farBe(regions.cutoffAt(rep));
    const Image direct =
        renderer.renderPanorama(world.eyePosition(rep), 48, 24, opts);
    EXPECT_TRUE(cached->pixels() == direct.pixels());
}

TEST_F(PanoCacheFixture, PrerenderSecondPassIsAllHits)
{
    const auto first = frames.prerenderFarBe(192, 32, 16);
    const PanoCacheStats after_first = frames.panoCacheStats();
    EXPECT_EQ(after_first.misses, first.frames);

    const auto second = frames.prerenderFarBe(192, 32, 16);
    const PanoCacheStats after_second = frames.panoCacheStats();
    EXPECT_EQ(second.frames, first.frames);
    EXPECT_EQ(second.encodedBytes, first.encodedBytes);
    // Every second-pass frame came out of the cache.
    EXPECT_EQ(after_second.misses, after_first.misses);
    EXPECT_EQ(after_second.hits, after_first.hits + second.frames);
}

TEST_F(PanoCacheFixture, EightClientsRenderOncePerDistinctCell)
{
    // Four position pairs, each pair within one quantization cell:
    // eight "clients" cost exactly four renders (ISSUE acceptance:
    // renders == distinct quantized locations).
    const double thresh = 8.0;
    const double pitch = std::max(thresh, grid.spacing());
    const geom::Rect &b = world.bounds();
    std::vector<Vec2> clients;
    for (int pair = 0; pair < 4; ++pair) {
        const double cx = b.lo.x + (2.0 * pair + 2.25) * pitch;
        const double cy = b.lo.y + 2.25 * pitch;
        clients.push_back({cx, cy});
        clients.push_back({cx + 0.4 * pitch, cy + 0.4 * pitch});
    }
    support::parallelFor(
        0, static_cast<std::int64_t>(clients.size()), 1,
        [&](std::int64_t s, std::int64_t e) {
            for (std::int64_t i = s; i < e; ++i)
                frames.farBePanorama(clients[static_cast<std::size_t>(i)],
                                     thresh, 32, 16);
        },
        4);
    const PanoCacheStats stats = frames.panoCacheStats();
    EXPECT_EQ(stats.misses, 4u);
    EXPECT_EQ(stats.hits + stats.inflightJoins, 4u);
}

TEST_F(PanoCacheFixture, SerialAndPooledRendersAreBitIdentical)
{
    // Two independent stores so both actually render: one serial, one
    // on the pool. The frames must match bit for bit (the determinism
    // invariant the cache relies on to share frames across clients).
    FrameStore serial(world, grid, regions);
    const Vec2 pos = world.bounds().center();
    const auto pooled = frames.farBePanorama(pos, 8.0, 64, 32, 0);
    const auto single = serial.farBePanorama(pos, 8.0, 64, 32, 1);
    EXPECT_TRUE(pooled->pixels() == single->pixels());
}

TEST_F(PanoCacheFixture, SameWorldStoresShareOneCacheAcrossSessions)
{
    // The fleet deployment shape: two sessions (FrameStores) over the
    // same world wired to one externally owned cache. Session 2's
    // first render of any cell session 1 already produced is a hit —
    // and the residency charge stays with session 1.
    const auto shared = std::make_shared<PanoramaRenderCache>(64ull << 20);
    FrameStoreParams params;
    params.sharedPanoCache = shared;
    FrameStore store1(world, grid, regions, params);
    FrameStore store2(world, grid, regions, params);
    ASSERT_EQ(store1.worldTag(), store2.worldTag());
    ASSERT_EQ(&store1.panoCache(), shared.get());

    const Vec2 pos = world.bounds().center();
    const auto first = store1.farBePanorama(pos, 8.0, 48, 24, 1, nullptr,
                                            /*cacheOwner=*/1);
    const auto second = store2.farBePanorama(pos, 8.0, 48, 24, 1, nullptr,
                                             /*cacheOwner=*/2);
    EXPECT_EQ(first.get(), second.get()); // literally the same frame
    const PanoCacheStats stats = shared->stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(shared->ownerBytes(1), stats.bytes);
    EXPECT_EQ(shared->ownerBytes(2), 0u);
}

TEST_F(PanoCacheFixture, DifferentWorldsNeverShareRenders)
{
    // Two sessions over *different* worlds on one shared cache: the
    // world tag in every key keeps their panoramas apart even at
    // identical positions and resolutions.
    const auto shared = std::make_shared<PanoramaRenderCache>(64ull << 20);
    FrameStoreParams params;
    params.sharedPanoCache = shared;
    FrameStore viking(world, grid, regions, params);

    world::VirtualWorld other = world::gen::makeWorld(GameId::FPS, 42);
    world::GridMap otherGrid =
        world::gen::makeGrid(world::gen::gameInfo(GameId::FPS));
    PartitionResult otherPartition =
        partitionWorld(other, device::pixel2(), {});
    RegionIndex otherRegions(other.bounds(), otherPartition.leaves);
    FrameStore fps(other, otherGrid, otherRegions, params);
    ASSERT_NE(viking.worldTag(), fps.worldTag());

    const Vec2 pos = world.bounds().center();
    viking.farBePanorama(pos, 8.0, 48, 24, 1, nullptr, 1);
    fps.farBePanorama(pos, 8.0, 48, 24, 1, nullptr, 2);
    const PanoCacheStats stats = shared->stats();
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.entries, 2u);
}

} // namespace
} // namespace coterie::core
