/**
 * @file
 * Tests for the Image frame buffer: pixel access, luma, downsampling,
 * cropping, diffing, and PPM output.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "image/image.hh"

namespace coterie::image {
namespace {

TEST(Image, ConstructionAndFill)
{
    Image img(4, 3, Rgb{10, 20, 30});
    EXPECT_EQ(img.width(), 4);
    EXPECT_EQ(img.height(), 3);
    EXPECT_EQ(img.pixelCount(), 12u);
    EXPECT_EQ(img.at(3, 2), (Rgb{10, 20, 30}));
    EXPECT_TRUE(Image().empty());
}

TEST(Image, PixelWrites)
{
    Image img(2, 2);
    img.at(1, 0) = Rgb{255, 0, 0};
    EXPECT_EQ(img.at(1, 0), (Rgb{255, 0, 0}));
    EXPECT_EQ(img.at(0, 0), Rgb{});
}

TEST(Image, LumaWeightsSumToOne)
{
    EXPECT_NEAR(luma(Rgb{255, 255, 255}), 255.0, 1e-9);
    EXPECT_DOUBLE_EQ(luma(Rgb{0, 0, 0}), 0.0);
    EXPECT_GT(luma(Rgb{0, 255, 0}), luma(Rgb{255, 0, 0}));
    EXPECT_GT(luma(Rgb{255, 0, 0}), luma(Rgb{0, 0, 255}));
}

TEST(Image, LumaPlaneMatchesPerPixelLuma)
{
    Image img(2, 1);
    img.at(0, 0) = Rgb{100, 50, 25};
    img.at(1, 0) = Rgb{0, 255, 0};
    const auto plane = img.lumaPlane();
    ASSERT_EQ(plane.size(), 2u);
    EXPECT_DOUBLE_EQ(plane[0], luma(img.at(0, 0)));
    EXPECT_DOUBLE_EQ(plane[1], luma(img.at(1, 0)));
}

TEST(Image, DownsampleAveragesBlocks)
{
    Image img(2, 2);
    img.at(0, 0) = Rgb{0, 0, 0};
    img.at(1, 0) = Rgb{100, 100, 100};
    img.at(0, 1) = Rgb{100, 100, 100};
    img.at(1, 1) = Rgb{200, 200, 200};
    const Image small = img.downsample(2);
    EXPECT_EQ(small.width(), 1);
    EXPECT_EQ(small.height(), 1);
    EXPECT_EQ(small.at(0, 0), (Rgb{100, 100, 100}));
    // Factor 1 is the identity.
    EXPECT_EQ(img.downsample(1), img);
}

TEST(Image, CropClampsToBounds)
{
    Image img(4, 4, Rgb{9, 9, 9});
    img.at(2, 2) = Rgb{1, 2, 3};
    const Image sub = img.crop(2, 2, 10, 10);
    EXPECT_EQ(sub.width(), 2);
    EXPECT_EQ(sub.height(), 2);
    EXPECT_EQ(sub.at(0, 0), (Rgb{1, 2, 3}));
}

TEST(Image, MeanAbsDiff)
{
    Image a(2, 1, Rgb{10, 10, 10});
    Image b(2, 1, Rgb{20, 10, 10});
    EXPECT_DOUBLE_EQ(a.meanAbsDiff(a), 0.0);
    EXPECT_NEAR(a.meanAbsDiff(b), 10.0 / 3.0, 1e-12);
}

TEST(Image, WritePpmProducesValidHeaderAndSize)
{
    Image img(3, 2, Rgb{1, 2, 3});
    const std::string path = testing::TempDir() + "/coterie_img.ppm";
    ASSERT_TRUE(img.writePpm(path));
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char magic[3] = {};
    int w = 0, h = 0, maxval = 0;
    ASSERT_EQ(std::fscanf(f, "%2s %d %d %d", magic, &w, &h, &maxval), 4);
    EXPECT_STREQ(magic, "P6");
    EXPECT_EQ(w, 3);
    EXPECT_EQ(h, 2);
    EXPECT_EQ(maxval, 255);
    std::fclose(f);
    std::remove(path.c_str());
}

TEST(Image, WritePpmFailsOnBadPath)
{
    Image img(1, 1);
    EXPECT_FALSE(img.writePpm("/nonexistent_dir_xyz/file.ppm"));
}

} // namespace
} // namespace coterie::image
