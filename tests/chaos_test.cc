/**
 * @file
 * Chaos harness tests: deterministic fault injection (sim/faults) and
 * the client/server resilience layer (net/resilience, the FrameServer
 * fan-out guard, FiSync drop tolerance), plus full multiplayer
 * sessions under scripted fault schedules.
 *
 * The determinism contract under test: every chaos run is a pure
 * function of (seed, fault plan) — bit-identical metrics snapshots on
 * repeat runs and at any `COTERIE_THREADS` (the CI chaos job re-runs
 * this binary at 1/2/4 workers). An empty plan with resilience
 * disabled must reproduce the pre-chaos Coterie system bit for bit.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/session.hh"
#include "net/channel.hh"
#include "obs/slo.hh"
#include "net/endpoints.hh"
#include "net/fi_sync.hh"
#include "net/resilience.hh"
#include "sim/faults.hh"

namespace coterie {
namespace {

using core::PlayerMetrics;
using core::Session;
using core::SessionParams;
using core::SystemResult;
using sim::EventQueue;
using sim::FaultPlan;
using sim::TimeMs;

// ---------------------------------------------------------------------
// FaultPlan query semantics
// ---------------------------------------------------------------------

TEST(FaultPlan, EmptyPlanDegradesNothing)
{
    const FaultPlan plan;
    EXPECT_TRUE(plan.empty());
    EXPECT_DOUBLE_EQ(plan.extraLossProbability(0.0), 0.0);
    EXPECT_DOUBLE_EQ(plan.extraLatencyMs(500.0), 0.0);
    EXPECT_DOUBLE_EQ(plan.bandwidthFactor(1e6), 1.0);
    EXPECT_FALSE(plan.serverStalled(0.0));
    EXPECT_FALSE(plan.disconnected(0, 0.0));
    EXPECT_EQ(plan.activeEpisodes(0.0), 0);
    EXPECT_TRUE(std::isinf(plan.nextBoundaryAfter(0.0)));
}

TEST(FaultPlan, EpisodeWindowsAreHalfOpen)
{
    FaultPlan plan;
    plan.lossBurst(100.0, 200.0, 0.5);
    EXPECT_DOUBLE_EQ(plan.extraLossProbability(99.9), 0.0);
    EXPECT_DOUBLE_EQ(plan.extraLossProbability(100.0), 0.5); // inclusive
    EXPECT_DOUBLE_EQ(plan.extraLossProbability(199.9), 0.5);
    EXPECT_DOUBLE_EQ(plan.extraLossProbability(200.0), 0.0); // exclusive
}

TEST(FaultPlan, OverlappingEffectsCompose)
{
    FaultPlan plan;
    plan.lossBurst(0.0, 100.0, 0.4)
        .lossBurst(50.0, 150.0, 0.8) // sum clamps at 1
        .latencySpike(0.0, 100.0, 5.0)
        .latencySpike(0.0, 100.0, 2.5)
        .bandwidthCollapse(0.0, 100.0, 0.5)
        .bandwidthCollapse(0.0, 100.0, 0.4);
    EXPECT_DOUBLE_EQ(plan.extraLossProbability(10.0), 0.4);
    EXPECT_DOUBLE_EQ(plan.extraLossProbability(60.0), 1.0); // clamped
    EXPECT_DOUBLE_EQ(plan.extraLatencyMs(10.0), 7.5);
    EXPECT_DOUBLE_EQ(plan.bandwidthFactor(10.0), 0.2); // multiplies
    EXPECT_EQ(plan.activeEpisodes(60.0), 6);
}

TEST(FaultPlan, OutageZeroesBandwidthRegardlessOfCollapses)
{
    FaultPlan plan;
    plan.bandwidthCollapse(0.0, 100.0, 0.9).outage(40.0, 60.0);
    EXPECT_DOUBLE_EQ(plan.bandwidthFactor(39.0), 0.9);
    EXPECT_DOUBLE_EQ(plan.bandwidthFactor(50.0), 0.0);
    EXPECT_DOUBLE_EQ(plan.bandwidthFactor(60.0), 0.9);
}

TEST(FaultPlan, NextBoundaryWalksEpisodeEdges)
{
    FaultPlan plan;
    plan.lossBurst(100.0, 200.0, 0.1).outage(150.0, 300.0);
    EXPECT_DOUBLE_EQ(plan.nextBoundaryAfter(0.0), 100.0);
    EXPECT_DOUBLE_EQ(plan.nextBoundaryAfter(100.0), 150.0);
    EXPECT_DOUBLE_EQ(plan.nextBoundaryAfter(150.0), 200.0);
    EXPECT_DOUBLE_EQ(plan.nextBoundaryAfter(200.0), 300.0);
    EXPECT_TRUE(std::isinf(plan.nextBoundaryAfter(300.0)));
}

TEST(FaultPlan, ChainedStallsAndDisconnectsFollowToTheEnd)
{
    FaultPlan plan;
    plan.serverStall(0.0, 100.0)
        .serverStall(90.0, 250.0) // overlaps: stall ends at 250
        .disconnect(10.0, 50.0, 1)
        .disconnect(40.0, 80.0, 1) // chained for client 1
        .disconnect(0.0, 30.0, -1); // broadcast
    EXPECT_DOUBLE_EQ(plan.serverStallEndsAt(10.0), 250.0);
    EXPECT_DOUBLE_EQ(plan.serverStallEndsAt(250.0), 250.0);
    EXPECT_TRUE(plan.disconnected(7, 10.0)); // broadcast hits everyone
    EXPECT_DOUBLE_EQ(plan.reconnectsAt(1, 15.0), 80.0);
    EXPECT_DOUBLE_EQ(plan.reconnectsAt(7, 15.0), 30.0);
    EXPECT_FALSE(plan.disconnected(7, 30.0));
}

TEST(FaultPlan, ScaledSeverityInterpolatesAndDropsInertEpisodes)
{
    FaultPlan plan;
    plan.lossBurst(0.0, 100.0, 0.6)
        .latencySpike(0.0, 100.0, 10.0)
        .bandwidthCollapse(0.0, 100.0, 0.2)
        .outage(50.0, 150.0);

    const FaultPlan zero = plan.scaled(0.0);
    EXPECT_TRUE(zero.empty()); // severity 0 degrades nothing

    const FaultPlan half = plan.scaled(0.5);
    EXPECT_DOUBLE_EQ(half.extraLossProbability(10.0), 0.3);
    EXPECT_DOUBLE_EQ(half.extraLatencyMs(10.0), 5.0);
    EXPECT_DOUBLE_EQ(half.bandwidthFactor(10.0), 0.6); // 1-(1-0.2)/2
    EXPECT_DOUBLE_EQ(half.bandwidthFactor(60.0), 0.0); // outage active
    EXPECT_DOUBLE_EQ(half.bandwidthFactor(110.0), 1.0); // duration halved

    const FaultPlan full = plan.scaled(1.0);
    EXPECT_EQ(full.size(), plan.size());
    EXPECT_DOUBLE_EQ(full.extraLossProbability(10.0), 0.6);
    EXPECT_DOUBLE_EQ(full.bandwidthFactor(120.0), 0.0);
}

// ---------------------------------------------------------------------
// ResilientFetcher over a faulty channel
// ---------------------------------------------------------------------

/** One client's network stack over a scripted link. */
struct NetRig
{
    explicit NetRig(net::ChannelParams cp = {},
                    net::FrameServerParams sp = {},
                    std::uint64_t frameBytes = 125000)
        : channel(queue, cp, &plan),
          server(
              queue, channel,
              [frameBytes](std::uint64_t) { return frameBytes; }, sp,
              &plan)
    {
    }

    net::ResilientFetcher makeFetcher(net::ResilienceParams rp)
    {
        rp.enabled = true;
        return net::ResilientFetcher(queue, server, rp);
    }

    EventQueue queue;
    FaultPlan plan;
    net::SharedChannel channel;
    net::FrameServer server;
};

TEST(ResilientFetcher, CleanFetchIsAPassThrough)
{
    NetRig rig;
    net::ResilienceParams rp;
    rp.timeoutMs = 60.0;
    auto fetcher = rig.makeFetcher(rp);

    double delivered_at = -1.0;
    fetcher.fetch(7, [&](std::uint64_t key, TimeMs at) {
        EXPECT_EQ(key, 7u);
        delivered_at = at;
    });
    rig.queue.runToCompletion();
    EXPECT_GT(delivered_at, 0.0);
    EXPECT_EQ(fetcher.stats().delivered, 1u);
    EXPECT_EQ(fetcher.stats().retries, 0u);
    EXPECT_EQ(fetcher.stats().timeouts, 0u);
    EXPECT_EQ(fetcher.stats().failures, 0u);
    EXPECT_EQ(rig.server.requestsServed(), 1u);
}

TEST(ResilientFetcher, TimesOutRetriesAndRecoversAfterOutage)
{
    NetRig rig;
    rig.plan.outage(0.0, 300.0);
    net::ResilienceParams rp;
    rp.timeoutMs = 50.0;
    rp.maxAttempts = 12;
    auto fetcher = rig.makeFetcher(rp);

    double delivered_at = -1.0;
    bool failed = false;
    fetcher.fetch(
        1, [&](std::uint64_t, TimeMs at) { delivered_at = at; },
        [&](std::uint64_t, TimeMs) { failed = true; });
    rig.queue.runToCompletion();

    EXPECT_FALSE(failed);
    EXPECT_GT(delivered_at, 300.0); // only after the outage lifts
    EXPECT_GE(fetcher.stats().timeouts, 1u);
    EXPECT_GE(fetcher.stats().retries, 1u);
    EXPECT_EQ(fetcher.stats().recoveries, 1u);
    EXPECT_EQ(fetcher.stats().delivered, 1u);
    // Every timed-out attempt released its link share.
    EXPECT_EQ(rig.channel.active(), 0u);
    EXPECT_GE(rig.channel.expiredCount(), 1u);
}

TEST(ResilientFetcher, GivesUpAfterMaxAttempts)
{
    NetRig rig;
    rig.plan.outage(0.0, 1e9); // link never recovers in this run
    net::ResilienceParams rp;
    rp.timeoutMs = 20.0;
    rp.maxAttempts = 3;
    auto fetcher = rig.makeFetcher(rp);

    bool delivered = false;
    double failed_at = -1.0;
    fetcher.fetch(
        1, [&](std::uint64_t, TimeMs) { delivered = true; },
        [&](std::uint64_t, TimeMs at) { failed_at = at; });
    rig.queue.runUntil(5000.0);

    EXPECT_FALSE(delivered);
    EXPECT_GT(failed_at, 0.0);
    EXPECT_EQ(fetcher.stats().timeouts, 3u);
    EXPECT_EQ(fetcher.stats().retries, 2u);
    EXPECT_EQ(fetcher.stats().failures, 1u);
    EXPECT_FALSE(fetcher.inFlight(1));
}

TEST(ResilientFetcher, DuplicateFetchesAttachToTheOutstandingAttempt)
{
    NetRig rig;
    net::ResilienceParams rp;
    auto fetcher = rig.makeFetcher(rp);

    int deliveries = 0;
    fetcher.fetch(9, [&](std::uint64_t, TimeMs) { ++deliveries; });
    fetcher.fetch(9, [&](std::uint64_t, TimeMs) { ++deliveries; });
    fetcher.fetch(9, [&](std::uint64_t, TimeMs) { ++deliveries; });
    rig.queue.runToCompletion();

    EXPECT_EQ(deliveries, 3);           // every caller hears back
    EXPECT_EQ(rig.server.requestsServed(), 1u); // one wire request
    EXPECT_EQ(fetcher.stats().duplicates, 2u);
}

TEST(ResilientFetcher, CancelAllDropsFetchesWithoutCallbacks)
{
    NetRig rig;
    rig.plan.outage(0.0, 500.0);
    net::ResilienceParams rp;
    rp.timeoutMs = 40.0;
    auto fetcher = rig.makeFetcher(rp);

    bool any_callback = false;
    fetcher.fetch(1, [&](std::uint64_t, TimeMs) { any_callback = true; },
                  [&](std::uint64_t, TimeMs) { any_callback = true; });
    fetcher.fetch(2, [&](std::uint64_t, TimeMs) { any_callback = true; });
    rig.queue.scheduleAt(100.0, [&] {
        EXPECT_EQ(fetcher.cancelAll(), 2u);
    });
    rig.queue.runToCompletion();

    EXPECT_FALSE(any_callback);
    EXPECT_EQ(fetcher.stats().cancelled, 2u);
    EXPECT_FALSE(fetcher.inFlight(1));
    EXPECT_FALSE(fetcher.inFlight(2));
}

TEST(ResilientFetcher, RetryScheduleIsDeterministic)
{
    auto run = [] {
        NetRig rig;
        rig.plan.outage(0.0, 200.0).lossBurst(200.0, 400.0, 0.5);
        net::ResilienceParams rp;
        rp.timeoutMs = 30.0;
        rp.maxAttempts = 10;
        rp.seed = 77;
        auto fetcher = rig.makeFetcher(rp);
        std::vector<double> deliveries;
        for (std::uint64_t key = 0; key < 4; ++key)
            fetcher.fetch(key, [&](std::uint64_t, TimeMs at) {
                deliveries.push_back(at);
            });
        rig.queue.runToCompletion();
        char buf[64];
        std::string snap;
        for (const double t : deliveries) {
            std::snprintf(buf, sizeof buf, "%a;", t);
            snap += buf;
        }
        snap += std::to_string(fetcher.stats().retries) + "/" +
                std::to_string(fetcher.stats().timeouts);
        return snap;
    };
    EXPECT_EQ(run(), run()); // bit-identical schedules
}

// ---------------------------------------------------------------------
// FrameServer fan-out guard + scripted stalls
// ---------------------------------------------------------------------

TEST(FrameServer, FanOutGuardBoundsInFlightTransfers)
{
    net::FrameServerParams sp;
    sp.maxInFlight = 2;
    NetRig rig({}, sp);

    int delivered = 0;
    for (std::uint64_t key = 0; key < 6; ++key)
        rig.server.request(key, [&](std::uint64_t, TimeMs) {
            ++delivered;
            EXPECT_LE(rig.server.inFlight(), 2u);
        });
    EXPECT_EQ(rig.server.inFlight(), 2u);
    EXPECT_EQ(rig.server.backlog(), 4u);
    rig.queue.runToCompletion();
    EXPECT_EQ(delivered, 6);
    EXPECT_EQ(rig.server.backlog(), 0u);
    EXPECT_EQ(rig.server.requestsServed(), 6u);
}

TEST(FrameServer, ScriptedStallDefersServiceUntilTheEnd)
{
    NetRig rig;
    rig.plan.serverStall(0.0, 100.0);

    double delivered_at = -1.0;
    rig.server.request(1, [&](std::uint64_t, TimeMs at) {
        delivered_at = at;
    });
    EXPECT_EQ(rig.server.backlog(), 1u);
    EXPECT_EQ(rig.server.stallDeferrals(), 1u);
    rig.queue.runToCompletion();
    EXPECT_GT(delivered_at, 100.0); // served only after the stall
}

TEST(FrameServer, BackloggedRequestsExpireWhenTheirDeadlineLapses)
{
    NetRig rig;
    rig.plan.serverStall(0.0, 200.0);

    bool delivered = false;
    double expired_at = -1.0;
    net::RequestOptions opts;
    opts.deadlineMs = 50.0; // lapses inside the stall
    opts.onExpired = [&](std::uint64_t, TimeMs at) { expired_at = at; };
    rig.server.request(1, [&](std::uint64_t, TimeMs) {
        delivered = true;
    }, opts);
    rig.queue.runToCompletion();
    EXPECT_FALSE(delivered);
    EXPECT_GE(expired_at, 50.0);
}

TEST(FrameServer, CancelCoversBacklogAndWire)
{
    net::FrameServerParams sp;
    sp.maxInFlight = 1;
    NetRig rig({}, sp);

    bool a_done = false, b_done = false;
    const net::RequestId a =
        rig.server.request(1, [&](std::uint64_t, TimeMs) { a_done = true; });
    const net::RequestId b =
        rig.server.request(2, [&](std::uint64_t, TimeMs) { b_done = true; });
    EXPECT_TRUE(rig.server.cancel(b)); // backlogged
    EXPECT_TRUE(rig.server.cancel(a)); // on the wire
    rig.queue.runToCompletion();
    EXPECT_FALSE(a_done);
    EXPECT_FALSE(b_done);
    EXPECT_EQ(rig.server.requestsServed(), 0u);
    EXPECT_FALSE(rig.server.cancel(a)); // unknown now
}

// ---------------------------------------------------------------------
// FiSync drop tolerance
// ---------------------------------------------------------------------

TEST(FiSync, ZeroLossDrawsTheHistoricalRandomStream)
{
    net::FiSyncParams params;
    net::FiSync a(params, 11), b(params, 11);
    for (int i = 0; i < 16; ++i)
        EXPECT_DOUBLE_EQ(a.syncLatencyMs(4), b.syncLatencyMs(4, 0.0));
}

TEST(FiSync, DeadReckonsThroughToleratedDropsThenStalls)
{
    net::FiSyncParams params;
    params.latencyJitterMs = 0.0; // deterministic clean latency
    params.dropToleranceTicks = 3;
    net::FiSync sync(params, 5);

    const double clean = params.meanLatencyMs * 2.0 + 0.08 * 3;
    // Three consecutive losses are papered over with dead reckoning.
    for (int i = 0; i < 3; ++i)
        EXPECT_NEAR(sync.syncLatencyMs(4, 1.0),
                    clean + params.deadReckonPenaltyMs, 1e-9);
    // The fourth blocks a retransmit round trip...
    EXPECT_NEAR(sync.syncLatencyMs(4, 1.0),
                clean + params.retransmitWaitMs, 1e-9);
    // ...and resets the tolerance window.
    EXPECT_NEAR(sync.syncLatencyMs(4, 1.0),
                clean + params.deadReckonPenaltyMs, 1e-9);
    EXPECT_EQ(sync.dropsTolerated(), 4u);
    EXPECT_EQ(sync.syncStalls(), 1u);
}

// ---------------------------------------------------------------------
// Full multiplayer sessions under scripted fault schedules
// ---------------------------------------------------------------------

/** Shared session (expensive to build; reused across chaos tests). */
const Session &
chaosSession()
{
    static std::unique_ptr<Session> session = [] {
        SessionParams params;
        params.players = 2;
        params.durationS = 30.0;
        params.seed = 42;
        return Session::create(world::gen::GameId::Viking, params);
    }();
    return *session;
}

/**
 * Bit-exact metrics snapshot: every counter and double (hexfloat, so
 * equality means identical bits) of every player.
 */
std::string
snapshot(const SystemResult &result)
{
    std::string out = result.systemName + "\n";
    char buf[512];
    for (const PlayerMetrics &m : result.players) {
        std::snprintf(
            buf, sizeof buf,
            "p%d f=%llu/%llu g=%llu s=%llu d=%llu r=%llu t=%llu "
            "x=%llu dc=%llu rj=%llu | %a %a %a %a %a %a %a %a\n",
            m.playerId,
            static_cast<unsigned long long>(m.framesDisplayed),
            static_cast<unsigned long long>(m.framesFetched),
            static_cast<unsigned long long>(m.gridTransitions),
            static_cast<unsigned long long>(m.stalls),
            static_cast<unsigned long long>(m.framesDegraded),
            static_cast<unsigned long long>(m.netRetries),
            static_cast<unsigned long long>(m.netTimeouts),
            static_cast<unsigned long long>(m.fetchGiveups),
            static_cast<unsigned long long>(m.disconnects),
            static_cast<unsigned long long>(m.rejoins), m.fps,
            m.interFrameMs, m.responsivenessMs, m.beMbps,
            m.cacheHitRatio, m.stallMs, m.rejoinHitRatio, m.netDelayMs);
        out += buf;
    }
    std::snprintf(buf, sizeof buf, "chan=%a\n", result.channelUtilMbps);
    out += buf;
    return out;
}

net::ResilienceParams
defaultResilience()
{
    net::ResilienceParams rp;
    rp.enabled = true;
    return rp;
}

/** The four scripted schedules of the acceptance criteria. */
std::vector<std::pair<std::string, FaultPlan>>
chaosSchedules()
{
    std::vector<std::pair<std::string, FaultPlan>> schedules;
    {
        FaultPlan plan; // WLAN interference: losses + latency
        plan.lossBurst(5000.0, 15000.0, 0.35)
            .latencySpike(5000.0, 15000.0, 4.0);
        schedules.emplace_back("loss_latency", plan);
    }
    {
        FaultPlan plan; // congestion collapse + a brief server stall
        plan.bandwidthCollapse(8000.0, 16000.0, 0.06)
            .serverStall(4000.0, 4400.0);
        schedules.emplace_back("collapse_stall", plan);
    }
    {
        FaultPlan plan; // hard outage
        plan.outage(10000.0, 10600.0);
        schedules.emplace_back("outage", plan);
    }
    {
        FaultPlan plan; // client 1 drops off the WLAN and rejoins
        plan.disconnect(5000.0, 8000.0, 1);
        schedules.emplace_back("disconnect_rejoin", plan);
    }
    return schedules;
}

TEST(ChaosSession, SchedulesAreBitIdenticalOnRepeatRuns)
{
    const Session &session = chaosSession();
    // With COTERIE_CHAOS_DUMP=<path> the snapshots are appended to that
    // file so the CI chaos job can diff them bit for bit across
    // COTERIE_THREADS=1/2/4 runs of this binary.
    std::FILE *dump = nullptr;
    if (const char *path = std::getenv("COTERIE_CHAOS_DUMP"))
        dump = std::fopen(path, "a");
    for (const auto &[name, plan] : chaosSchedules()) {
        const SystemResult a =
            session.runCoterieChaos(plan, defaultResilience());
        const SystemResult b =
            session.runCoterieChaos(plan, defaultResilience());
        EXPECT_EQ(snapshot(a), snapshot(b)) << "schedule " << name;
        if (dump != nullptr)
            std::fprintf(dump, "== %s ==\n%s", name.c_str(),
                         snapshot(a).c_str());
    }
    if (dump != nullptr) {
        // The deadline SLO summaries are sim-time derived only, so
        // they must also diff bit-identical across COTERIE_THREADS.
        std::fprintf(
            dump, "== slo ==\n%s\n",
            obs::SloRegistry::global().snapshotJson().dump(2).c_str());
        std::fclose(dump);
    }
}

TEST(ChaosSession, EmptyPlanWithResilienceOffIsTheCleanRun)
{
    const Session &session = chaosSession();
    const FaultPlan empty;
    net::ResilienceParams off; // .enabled = false
    const SystemResult chaos = session.runCoterieChaos(empty, off);
    const SystemResult clean = session.runCoterieSystem();
    // The resilience layer must be a strict no-op when nothing is
    // scripted: same code path, same rng stream, same bits.
    EXPECT_EQ(snapshot(chaos), snapshot(clean));
}

TEST(ChaosSession, DisconnectedClientRejoinsAndRecoversItsCache)
{
    const Session &session = chaosSession();
    FaultPlan plan;
    plan.disconnect(5000.0, 8000.0, 1);
    const SystemResult result =
        session.runCoterieChaos(plan, defaultResilience());

    ASSERT_EQ(result.players.size(), 2u);
    const PlayerMetrics &dropped = result.players[1];
    EXPECT_EQ(dropped.disconnects, 1u);
    EXPECT_EQ(dropped.rejoins, 1u);
    // The rejoin probe window (settle 3 s, probe 8 s after the 8 s
    // rejoin) must show the cover set re-synced: >= 95% of displayed
    // frames served without a stall or degradation.
    ASSERT_GE(dropped.rejoinHitRatio, 0.0) << "probe window not hit";
    EXPECT_GE(dropped.rejoinHitRatio, 0.95);
    // The untouched player never noticed.
    EXPECT_EQ(result.players[0].disconnects, 0u);
}

TEST(ChaosSession, ResilienceConvertsStallTimeIntoDegradedFrames)
{
    const Session &session = chaosSession();
    FaultPlan plan; // a rough patch: collapse then a hard outage
    plan.bandwidthCollapse(8000.0, 14000.0, 0.05)
        .outage(15000.0, 15600.0);

    net::ResilienceParams off; // faults on, resilience off
    const SystemResult bare = session.runCoterieChaos(plan, off);
    const SystemResult resilient =
        session.runCoterieChaos(plan, defaultResilience());

    double bare_stall_ms = 0.0, resilient_stall_ms = 0.0;
    std::uint64_t degraded = 0, retries = 0;
    for (const PlayerMetrics &m : bare.players)
        bare_stall_ms += m.stallMs;
    for (const PlayerMetrics &m : resilient.players) {
        resilient_stall_ms += m.stallMs;
        degraded += m.framesDegraded;
        retries += m.netRetries;
    }
    // Degraded-frame substitution caps every freeze at ~one tick, so
    // total frozen time collapses versus the bare client.
    EXPECT_LT(resilient_stall_ms, bare_stall_ms * 0.5);
    EXPECT_GT(degraded, 0u);
    // And the fault window actually exercised the retry machinery.
    EXPECT_GT(retries, 0u);
}

} // namespace
} // namespace coterie
