/**
 * @file
 * Edge-condition tests for the split-rendering pipeline simulation:
 * starved channels (forced stall path), degenerate reuse thresholds,
 * generous channels, and config validation. Uses the small Pool world
 * to keep setup cheap.
 */

#include <gtest/gtest.h>

#include "core/session.hh"

namespace coterie::core {
namespace {

std::unique_ptr<Session>
poolSession(double channelMbps, int players = 1)
{
    SessionParams params;
    params.players = players;
    params.durationS = 12.0;
    params.seed = 5;
    params.channel.goodputMbps = channelMbps;
    return Session::create(world::gen::GameId::Pool, params);
}

TEST(SplitSystemEdge, StarvedChannelDegradesButKeepsRunning)
{
    // 5 Mbps cannot carry even cached-mode prefetching smoothly: the
    // stall path dominates, FPS collapses, but the simulation stays
    // live and accounts every frame.
    auto session = poolSession(5.0);
    const SystemResult result = session->runCoterieSystem();
    const PlayerMetrics &m = result.players.front();
    EXPECT_GT(m.framesDisplayed, 20u); // ~1 frame per ~350 ms transfer
    EXPECT_LT(result.avgFps(), 59.0);
    EXPECT_GT(result.avgNetDelayMs(), 50.0);
    // Bandwidth cannot exceed the pipe.
    EXPECT_LE(m.beMbps, 5.5);
}

TEST(SplitSystemEdge, GenerousChannelIsNotTheBottleneck)
{
    auto session = poolSession(2000.0);
    const SystemResult result = session->runCoterieSystem();
    EXPECT_GT(result.avgFps(), 59.0);
    EXPECT_LT(result.avgNetDelayMs(), 5.0);
}

TEST(SplitSystemEdge, ZeroThresholdsStillWorkViaExactHits)
{
    // With all reuse distances forced to zero, only exact grid-point
    // hits remain (prefetched frames are consumed exactly once); the
    // system must still sustain the pipeline on a fast channel.
    auto session = poolSession(1000.0);
    const std::vector<double> zeros(session->distThresholds().size(),
                                    0.0);
    const SystemResult result =
        runCoterie(session->systemConfig(), zeros, true);
    EXPECT_GT(result.avgFps(), 50.0);
    // Nearly every transition fetches.
    EXPECT_LT(result.avgCacheHitRatio(), 0.5);
}

TEST(SplitSystemEdge, MultiFurionAndCoterieCountTransitionsIdentically)
{
    auto session = poolSession(500.0);
    const SystemResult furion = session->runMultiFurionSystem();
    const SystemResult coterie = session->runCoterieSystem();
    // Same traces -> same grid transitions, regardless of system.
    EXPECT_EQ(furion.players[0].gridTransitions,
              coterie.players[0].gridTransitions);
}

TEST(SplitSystemEdge, ResponsivenessNeverBelowSensorPlusMerge)
{
    auto session = poolSession(500.0);
    const SystemConfig config = session->systemConfig();
    const SystemResult result = session->runCoterieSystem();
    for (const PlayerMetrics &m : result.players) {
        EXPECT_GE(m.responsivenessMs,
                  config.sensorMs + config.mergeMs);
    }
}

TEST(SplitSystemEdgeDeath, IncompleteConfigPanics)
{
    SystemConfig empty;
    EXPECT_DEATH(runCoterie(empty, {}, true), "incomplete");
}

} // namespace
} // namespace coterie::core
