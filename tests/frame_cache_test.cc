/**
 * @file
 * Tests for the frame cache: the three lookup criteria, closest-wins
 * tie breaking, exact-only mode (cache Versions 1/2), replacement
 * policies (LRU vs FLF vs Random), capacity enforcement, and stats.
 */

#include <gtest/gtest.h>

#include "core/frame_cache.hh"

namespace coterie::core {
namespace {

FrameCache::Key
keyAt(double x, double y, std::uint32_t region = 1,
      std::uint64_t sig = 0xAA)
{
    FrameCache::Key key;
    key.gridKey =
        static_cast<std::uint64_t>(x * 1000) * 100000 +
        static_cast<std::uint64_t>(y * 1000);
    key.position = {x, y};
    key.leafRegionId = region;
    key.nearSetSignature = sig;
    return key;
}

TEST(FrameCache, ExactHitAlwaysMatches)
{
    FrameCache cache;
    const auto key = keyAt(5.0, 5.0);
    cache.insert(key, 1000);
    const auto hit = cache.lookup(key, 0.0);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, key.gridKey);
    EXPECT_EQ(cache.stats().exactHits, 1u);
}

TEST(FrameCache, SimilarHitWithinThreshold)
{
    FrameCache cache;
    cache.insert(keyAt(5.0, 5.0), 1000);
    EXPECT_TRUE(cache.lookup(keyAt(5.3, 5.0), 0.5).has_value());
    EXPECT_FALSE(cache.lookup(keyAt(6.0, 5.0), 0.5).has_value());
}

TEST(FrameCache, Criterion2DifferentRegionRejected)
{
    FrameCache cache;
    cache.insert(keyAt(5.0, 5.0, /*region=*/1), 1000);
    EXPECT_FALSE(
        cache.lookup(keyAt(5.1, 5.0, /*region=*/2), 1.0).has_value());
    EXPECT_GT(cache.stats().rejectedRegion, 0u);
}

TEST(FrameCache, Criterion3DifferentNearSetRejected)
{
    FrameCache cache;
    cache.insert(keyAt(5.0, 5.0, 1, /*sig=*/0xAA), 1000);
    EXPECT_FALSE(
        cache.lookup(keyAt(5.1, 5.0, 1, /*sig=*/0xBB), 1.0).has_value());
    EXPECT_GT(cache.stats().rejectedSignature, 0u);
}

TEST(FrameCache, ClosestCandidateWins)
{
    FrameCache cache;
    const auto far_key = keyAt(5.0, 5.0);
    const auto near_key = keyAt(5.4, 5.0);
    cache.insert(far_key, 1000);
    cache.insert(near_key, 1000);
    const auto hit = cache.lookup(keyAt(5.5, 5.0), 1.0);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, near_key.gridKey);
}

TEST(FrameCache, ExactOnlyModeIgnoresSimilarFrames)
{
    FrameCacheParams params;
    params.mode = MatchMode::ExactOnly;
    FrameCache cache(params);
    cache.insert(keyAt(5.0, 5.0), 1000);
    EXPECT_FALSE(cache.lookup(keyAt(5.01, 5.0), 10.0).has_value());
    EXPECT_TRUE(cache.lookup(keyAt(5.0, 5.0), 0.0).has_value());
}

TEST(FrameCache, LargeThresholdWidensBucketScan)
{
    FrameCacheParams params;
    params.bucketEdge = 1.0;
    FrameCache cache(params);
    cache.insert(keyAt(0.0, 0.0), 1000);
    // Candidate 5 buckets away must still be found with a threshold
    // larger than the bucket edge.
    EXPECT_TRUE(cache.lookup(keyAt(5.0, 0.0), 6.0).has_value());
}

TEST(FrameCache, CapacityEnforced)
{
    FrameCacheParams params;
    params.capacityBytes = 10000;
    FrameCache cache(params);
    for (int i = 0; i < 20; ++i)
        cache.insert(keyAt(i, 0.0), 1000);
    EXPECT_LE(cache.bytesUsed(), params.capacityBytes);
    EXPECT_LE(cache.entryCount(), 10u);
    EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(FrameCache, LruEvictsLeastRecentlyUsed)
{
    FrameCacheParams params;
    params.capacityBytes = 3000;
    params.policy = ReplacementPolicy::Lru;
    FrameCache cache(params);
    const auto a = keyAt(1.0, 0.0);
    const auto b = keyAt(2.0, 0.0);
    const auto c = keyAt(3.0, 0.0);
    cache.insert(a, 1000);
    cache.insert(b, 1000);
    cache.insert(c, 1000);
    // Touch a and c; inserting d must evict b.
    cache.lookup(a, 0.0);
    cache.lookup(c, 0.0);
    cache.insert(keyAt(4.0, 0.0), 1000);
    EXPECT_TRUE(cache.containsExact(a.gridKey));
    EXPECT_FALSE(cache.containsExact(b.gridKey));
    EXPECT_TRUE(cache.containsExact(c.gridKey));
}

TEST(FrameCache, FlfEvictsFurthestFromPlayer)
{
    FrameCacheParams params;
    params.capacityBytes = 3000;
    params.policy = ReplacementPolicy::Flf;
    FrameCache cache(params);
    const auto near_key = keyAt(1.0, 1.0);
    const auto far_key = keyAt(90.0, 90.0);
    const auto mid_key = keyAt(10.0, 10.0);
    cache.insert(near_key, 1000);
    cache.insert(far_key, 1000);
    cache.insert(mid_key, 1000);
    cache.setPlayerPosition({0.0, 0.0});
    cache.insert(keyAt(2.0, 2.0), 1000); // evicts the furthest
    EXPECT_TRUE(cache.containsExact(near_key.gridKey));
    EXPECT_FALSE(cache.containsExact(far_key.gridKey));
}

TEST(FrameCache, RandomPolicyStillBoundsMemory)
{
    FrameCacheParams params;
    params.capacityBytes = 5000;
    params.policy = ReplacementPolicy::Random;
    FrameCache cache(params);
    for (int i = 0; i < 50; ++i)
        cache.insert(keyAt(i, i), 1000);
    EXPECT_LE(cache.bytesUsed(), params.capacityBytes);
}

TEST(FrameCache, DuplicateInsertIgnored)
{
    FrameCache cache;
    const auto key = keyAt(5.0, 5.0);
    cache.insert(key, 1000);
    cache.insert(key, 1000);
    EXPECT_EQ(cache.entryCount(), 1u);
    EXPECT_EQ(cache.bytesUsed(), 1000u);
}

TEST(FrameCache, PeekHasNoSideEffects)
{
    FrameCache cache;
    cache.insert(keyAt(5.0, 5.0), 1000);
    const auto before = cache.stats().lookups;
    EXPECT_TRUE(cache.peek(keyAt(5.1, 5.0), 0.5).has_value());
    EXPECT_EQ(cache.stats().lookups, before);
}

TEST(FrameCache, HitRatioAccounting)
{
    FrameCache cache;
    cache.insert(keyAt(5.0, 5.0), 1000);
    cache.lookup(keyAt(5.0, 5.0), 0.0);  // hit
    cache.lookup(keyAt(50.0, 50.0), 0.1); // miss
    EXPECT_EQ(cache.stats().lookups, 2u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_DOUBLE_EQ(cache.stats().hitRatio(), 0.5);
    cache.resetStats();
    EXPECT_EQ(cache.stats().lookups, 0u);
}

TEST(FrameCache, NegativeCoordinatesSupported)
{
    FrameCache cache;
    FrameCache::Key key;
    key.gridKey = 424242;
    key.position = {-15.3, -7.8};
    key.leafRegionId = 3;
    key.nearSetSignature = 0xCC;
    cache.insert(key, 500);
    FrameCache::Key probe = key;
    probe.gridKey = 424243;
    probe.position = {-15.2, -7.8};
    EXPECT_TRUE(cache.lookup(probe, 0.5).has_value());
}

} // namespace
} // namespace coterie::core
