/**
 * @file
 * Tests for the software renderer: sky/terrain/object shading, the
 * near/far depth-layer decomposition invariant (near merged over far
 * equals the whole frame), chroma-key transparency, panorama cropping,
 * and texture determinism.
 */

#include <gtest/gtest.h>

#include "render/renderer.hh"
#include "world/gen/generators.hh"

namespace coterie::render {
namespace {

using geom::Vec2;
using geom::Vec3;
using image::Image;
using image::Rgb;
using world::SceneType;
using world::TerrainParams;
using world::VirtualWorld;
using world::WorldObject;

VirtualWorld
tinyWorld()
{
    TerrainParams terrain;
    terrain.flat = true;
    VirtualWorld world("tiny", {{0, 0}, {60, 60}}, terrain);
    WorldObject near_box;
    near_box.shape = world::Shape::Box;
    near_box.position = {33, 1.0, 30};
    near_box.dims = {2, 2, 2};
    near_box.color = {200, 40, 40};
    world.addObject(near_box);
    WorldObject far_box;
    far_box.shape = world::Shape::Box;
    far_box.position = {50, 2.0, 30};
    far_box.dims = {4, 4, 4};
    far_box.color = {40, 40, 200};
    world.addObject(far_box);
    world.finalize();
    return world;
}

TEST(Renderer, SkyAboveHorizonOutdoors)
{
    const VirtualWorld world = tinyWorld();
    const Renderer renderer(world);
    geom::Ray up;
    up.origin = world.eyePosition({30, 30});
    up.dir = {0.0, 1.0, 0.0};
    RenderOptions opts;
    opts.texture = false;
    const Rgb sky = renderer.shadeRay(up, opts);
    EXPECT_EQ(sky, world.skyColor(M_PI / 2));
}

TEST(Renderer, GroundBelowFeet)
{
    const VirtualWorld world = tinyWorld();
    const Renderer renderer(world);
    geom::Ray down;
    down.origin = world.eyePosition({10, 10});
    down.dir = {0.0, -1.0, 0.0};
    RenderOptions opts;
    opts.texture = false;
    opts.shading = false;
    const Rgb ground = renderer.shadeRay(down, opts);
    EXPECT_EQ(ground, world.terrain().colorAt({10, 10}));
}

TEST(Renderer, ObjectOccludesSkyAndGetsItsColor)
{
    const VirtualWorld world = tinyWorld();
    const Renderer renderer(world);
    geom::Ray toward;
    toward.origin = {30.0, 1.0, 30.0};
    toward.dir = Vec3{1.0, 0.0, 0.0}; // toward the red box at x=33
    RenderOptions opts;
    opts.texture = false;
    opts.shading = false;
    EXPECT_EQ(renderer.shadeRay(toward, opts), (Rgb{200, 40, 40}));
}

TEST(Renderer, NearLayerClipsFarContentToChromaKey)
{
    const VirtualWorld world = tinyWorld();
    const Renderer renderer(world);
    geom::Ray toward;
    toward.origin = {30.0, 2.0, 30.0};
    toward.dir = Vec3{1.0, 0.05, 0.0}.normalized(); // slightly upward
    RenderOptions near_opts;
    near_opts.layer = DepthLayer::nearBe(1.5); // red box at 2m excluded
    near_opts.texture = false;
    EXPECT_EQ(renderer.shadeRay(toward, near_opts), near_opts.clipKey);
}

TEST(Renderer, FarLayerSkipsNearContent)
{
    const VirtualWorld world = tinyWorld();
    const Renderer renderer(world);
    geom::Ray toward;
    toward.origin = {30.0, 2.0, 30.0};
    toward.dir = Vec3{1.0, 0.0, 0.0};
    RenderOptions far_opts;
    far_opts.layer = DepthLayer::farBe(10.0); // past the red box (3m)
    far_opts.texture = false;
    far_opts.shading = false;
    // The ray now sees the blue box at 20m instead of the red at 3m.
    EXPECT_EQ(renderer.shadeRay(toward, far_opts), (Rgb{40, 40, 200}));
}

TEST(Renderer, MergeOfNearAndFarEqualsWholeFrame)
{
    // The core split-rendering invariant: render near BE and far BE
    // separately at the same cutoff and merge; the result must equal
    // the whole-scene render (modulo nothing — same rays, same
    // shading).
    const world::VirtualWorld world =
        world::gen::makeWorld(world::gen::GameId::Pool, 11);
    const Renderer renderer(world);
    const Vec3 eye = world.eyePosition({5.0, 6.0});
    const double cutoff = 4.0;

    RenderOptions whole;
    const Image full = renderer.renderPanorama(eye, 96, 48, whole);
    RenderOptions near_opts;
    near_opts.layer = DepthLayer::nearBe(cutoff);
    const Image near_img = renderer.renderPanorama(eye, 96, 48, near_opts);
    RenderOptions far_opts;
    far_opts.layer = DepthLayer::farBe(cutoff);
    const Image far_img = renderer.renderPanorama(eye, 96, 48, far_opts);

    const Image merged = Renderer::merge(near_img, far_img);
    // Allow a tiny number of boundary pixels to differ (points exactly
    // at the cutoff).
    int mismatches = 0;
    for (int y = 0; y < full.height(); ++y)
        for (int x = 0; x < full.width(); ++x)
            mismatches += !(merged.at(x, y) == full.at(x, y));
    EXPECT_LE(mismatches, full.width() * full.height() / 100);
}

TEST(Renderer, PanoramaDirectionRoundTrip)
{
    for (double u : {0.1, 0.4, 0.7, 0.95}) {
        for (double v : {0.1, 0.5, 0.9}) {
            const Vec3 dir = panoramaDirection(u, v);
            EXPECT_NEAR(dir.length(), 1.0, 1e-12);
            double u2, v2;
            directionToPanoramaUv(dir, u2, v2);
            EXPECT_NEAR(u2, u, 1e-9);
            EXPECT_NEAR(v2, v, 1e-9);
        }
    }
}

TEST(Renderer, CropPanoramaMatchesPerspectiveApproximately)
{
    const world::VirtualWorld world =
        world::gen::makeWorld(world::gen::GameId::Pool, 11);
    const Renderer renderer(world);
    const Vec3 eye = world.eyePosition({5.0, 6.0});
    RenderOptions opts;
    const Image pano = renderer.renderPanorama(eye, 512, 256, opts);

    Camera cam;
    cam.position = eye;
    cam.yaw = 0.7;
    const Image direct = renderer.renderPerspective(cam, 64, 64, opts);
    const Image cropped = cropPanoramaToView(pano, cam, 64, 64);
    // Nearest-texel resampling: expect agreement, not equality.
    EXPECT_LT(direct.meanAbsDiff(cropped), 40.0);
}

TEST(Renderer, DeterministicAcrossThreadCounts)
{
    const VirtualWorld world = tinyWorld();
    const Renderer renderer(world);
    RenderOptions serial;
    serial.threads = 1;
    RenderOptions parallel;
    parallel.threads = 4;
    const Vec3 eye = world.eyePosition({30, 30});
    EXPECT_EQ(renderer.renderPanorama(eye, 64, 32, serial),
              renderer.renderPanorama(eye, 64, 32, parallel));
}

/**
 * Render the same view through all three paths and require byte
 * equality. The pano resolution deliberately includes the poles (first
 * and last rows, where the row basis degenerates toward sp=±1) and the
 * yaw seam (first and last columns).
 */
void
expectPathsAgree(const Renderer &renderer, const Vec3 &eye,
                 RenderOptions opts, const char *tag)
{
    opts.path = RenderPath::SeedScalar;
    const Image seed = renderer.renderPanorama(eye, 64, 32, opts);
    opts.path = RenderPath::Scalar;
    const Image scalar = renderer.renderPanorama(eye, 64, 32, opts);
    opts.path = RenderPath::Batched;
    const Image batched = renderer.renderPanorama(eye, 64, 32, opts);
    EXPECT_EQ(scalar, seed) << tag << ": scalar pano != seed pano";
    EXPECT_EQ(batched, seed) << tag << ": batched pano != seed pano";

    Camera cam;
    cam.position = eye;
    cam.yaw = 0.7;
    cam.pitch = -0.2;
    opts.path = RenderPath::SeedScalar;
    const Image pseed = renderer.renderPerspective(cam, 40, 30, opts);
    opts.path = RenderPath::Batched;
    const Image pbatched = renderer.renderPerspective(cam, 40, 30, opts);
    EXPECT_EQ(pbatched, pseed) << tag << ": batched persp != seed persp";
}

TEST(Renderer, RenderPathsAgreeAcrossWorlds)
{
    using world::gen::GameId;
    for (GameId id : {GameId::Racing, GameId::CTS, GameId::Viking}) {
        const world::VirtualWorld world = world::gen::makeWorld(id, 42);
        const Renderer renderer(world);
        const Vec3 eye = world.eyePosition(world.bounds().center());
        RenderOptions whole;
        expectPathsAgree(renderer, eye, whole, world.name().c_str());
    }
}

TEST(Renderer, RenderPathsAgreeOnDepthLayers)
{
    // The near layer exercises the clip-key path (finite farClip) and
    // the far layer the shifted tMin window; both must agree across
    // paths, including which pixels collapse to the chroma key.
    const world::VirtualWorld world =
        world::gen::makeWorld(world::gen::GameId::Racing, 42);
    const Renderer renderer(world);
    const Vec3 eye = world.eyePosition(world.bounds().center());
    RenderOptions near_opts;
    near_opts.layer = DepthLayer::nearBe(25.0);
    expectPathsAgree(renderer, eye, near_opts, "racing/near");
    RenderOptions far_opts;
    far_opts.layer = DepthLayer::farBe(25.0);
    expectPathsAgree(renderer, eye, far_opts, "racing/far");
}

TEST(Renderer, BatchedPathDeterministicAcrossThreadCounts)
{
    // Chunked row batching must not leak scheduling into pixels: the
    // batched path at 1 and 4 threads produces identical frames (the
    // scalar analogue is covered by DeterministicAcrossThreadCounts).
    const world::VirtualWorld world =
        world::gen::makeWorld(world::gen::GameId::Pool, 11);
    const Renderer renderer(world);
    const Vec3 eye = world.eyePosition({5.0, 6.0});
    RenderOptions serial;
    serial.threads = 1;
    RenderOptions parallel;
    parallel.threads = 4;
    EXPECT_EQ(renderer.renderPanorama(eye, 64, 32, serial),
              renderer.renderPanorama(eye, 64, 32, parallel));
}

TEST(Renderer, TextureAddsHighFrequencyDetail)
{
    const world::VirtualWorld world =
        world::gen::makeWorld(world::gen::GameId::Pool, 11);
    const Renderer renderer(world);
    const Vec3 eye = world.eyePosition({5.0, 6.0});
    RenderOptions with;
    RenderOptions without;
    without.texture = false;
    const Image tex = renderer.renderPanorama(eye, 96, 48, with);
    const Image flat = renderer.renderPanorama(eye, 96, 48, without);
    // Textured frames differ from flat ones and are reproducible.
    EXPECT_GT(tex.meanAbsDiff(flat), 2.0);
    EXPECT_EQ(tex, renderer.renderPanorama(eye, 96, 48, with));
}

TEST(RendererDeath, MergeSizeMismatchPanics)
{
    const Image a(4, 4), b(5, 4);
    EXPECT_DEATH(Renderer::merge(a, b), "mismatch");
}

} // namespace
} // namespace coterie::render
