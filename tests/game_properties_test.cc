/**
 * @file
 * Cross-game property sweeps: invariants that must hold for every one
 * of the nine study worlds — quadtree tiling and point location, the
 * near/far merge identity, cutoffs satisfying Constraint 1 at random
 * reachable points, and eye placement above the terrain.
 */

#include <gtest/gtest.h>

#include "core/partitioner.hh"
#include "render/renderer.hh"
#include "support/rng.hh"
#include "world/gen/generators.hh"

namespace coterie {
namespace {

using core::LeafRegion;
using core::PartitionParams;
using core::PartitionResult;
using core::RegionIndex;
using world::gen::GameId;
using world::gen::gameInfo;
using world::gen::makeWorld;

class GameProperty : public testing::TestWithParam<GameId>
{
  protected:
    const world::gen::GameInfo &info() const
    {
        return gameInfo(GetParam());
    }
};

TEST_P(GameProperty, QuadtreeTilesAndLocates)
{
    const auto world = makeWorld(GetParam(), 42);
    PartitionParams params;
    params.reachable = world::gen::makeReachability(info(), world);
    const PartitionResult result =
        core::partitionWorld(world, device::pixel2(), params);
    ASSERT_FALSE(result.leaves.empty());

    double area = 0.0;
    for (const LeafRegion &leaf : result.leaves)
        area += leaf.rect.area();
    EXPECT_NEAR(area, world.bounds().area(),
                world.bounds().area() * 1e-9);

    const RegionIndex index(world.bounds(), result.leaves);
    Rng rng(GetParam() == GameId::CTS ? 2u : 3u);
    for (int i = 0; i < 120; ++i) {
        const geom::Vec2 p{
            rng.uniform(world.bounds().lo.x, world.bounds().hi.x),
            rng.uniform(world.bounds().lo.y, world.bounds().hi.y)};
        EXPECT_TRUE(index.leafAt(p).rect.containsClosed(p));
    }
}

TEST_P(GameProperty, ReachableCutoffsMeetConstraintOne)
{
    const auto world = makeWorld(GetParam(), 42);
    PartitionParams params;
    params.reachable = world::gen::makeReachability(info(), world);
    const PartitionResult result =
        core::partitionWorld(world, device::pixel2(), params);
    const RegionIndex index(world.bounds(), result.leaves);
    Rng rng(11);
    int checked = 0, violations = 0;
    for (int i = 0; i < 600 && checked < 100; ++i) {
        const geom::Vec2 p{
            rng.uniform(world.bounds().lo.x, world.bounds().hi.x),
            rng.uniform(world.bounds().lo.y, world.bounds().hi.y)};
        if (params.reachable && !params.reachable(p))
            continue;
        ++checked;
        if (core::nearBeRenderTimeMs(world, p, index.cutoffAt(p),
                                     device::pixel2()) >=
            params.constraint.nearBudgetMs()) {
            ++violations;
        }
    }
    ASSERT_GT(checked, 20);
    // Safety-factored region cutoffs keep violations rare.
    EXPECT_LT(violations, checked / 10) << info().name;
}

TEST_P(GameProperty, NearPlusFarMergesToWholeFrame)
{
    const auto world = makeWorld(GetParam(), 42);
    const render::Renderer renderer(world);
    Rng rng(5);
    const geom::Vec2 p =
        world.bounds().clamp(world.bounds().center() +
                             geom::Vec2{rng.uniform(-5.0, 5.0),
                                        rng.uniform(-5.0, 5.0)});
    const geom::Vec3 eye = world.eyePosition(p);
    const double cutoff = 6.0;

    const auto whole = renderer.renderPanorama(eye, 64, 32, {});
    render::RenderOptions near_opts;
    near_opts.layer = render::DepthLayer::nearBe(cutoff);
    render::RenderOptions far_opts;
    far_opts.layer = render::DepthLayer::farBe(cutoff);
    const auto merged = render::Renderer::merge(
        renderer.renderPanorama(eye, 64, 32, near_opts),
        renderer.renderPanorama(eye, 64, 32, far_opts));
    int mismatches = 0;
    for (int y = 0; y < whole.height(); ++y)
        for (int x = 0; x < whole.width(); ++x)
            mismatches += !(merged.at(x, y) == whole.at(x, y));
    EXPECT_LE(mismatches, whole.width() * whole.height() / 50)
        << info().name;
}

TEST_P(GameProperty, EyeStandsAboveTheGround)
{
    const auto world = makeWorld(GetParam(), 42);
    Rng rng(7);
    for (int i = 0; i < 50; ++i) {
        const geom::Vec2 p{
            rng.uniform(world.bounds().lo.x, world.bounds().hi.x),
            rng.uniform(world.bounds().lo.y, world.bounds().hi.y)};
        const geom::Vec3 eye = world.eyePosition(p);
        EXPECT_NEAR(eye.y - world.terrain().heightAt(p),
                    world.eyeHeight(), 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllGames, GameProperty,
    testing::Values(GameId::Racing, GameId::DS, GameId::Viking,
                    GameId::CTS, GameId::FPS, GameId::Soccer,
                    GameId::Pool, GameId::Bowling, GameId::Corridor),
    [](const testing::TestParamInfo<GameId> &info) {
        return gameInfo(info.param).name;
    });

} // namespace
} // namespace coterie
