/**
 * @file
 * Tests for trajectory synthesis: bounds containment, realistic speeds,
 * track following, and the two multiplayer-locality properties the
 * paper measures — players stay close to each other but never traverse
 * exactly the same path (Table 5's Version-1/2 result).
 */

#include <gtest/gtest.h>

#include "trace/trajectory.hh"

namespace coterie::trace {
namespace {

using world::gen::GameId;
using world::gen::gameInfo;
using world::gen::makeWorld;

TrajectoryParams
shortParams(int players, std::uint64_t seed = 3)
{
    TrajectoryParams tp;
    tp.players = players;
    tp.durationS = 20.0;
    tp.seed = seed;
    return tp;
}

class TrajectoryPerGame : public testing::TestWithParam<GameId>
{
};

TEST_P(TrajectoryPerGame, StaysInBoundsAtGameSpeed)
{
    const auto &info = gameInfo(GetParam());
    const auto world = makeWorld(GetParam(), 42);
    const SessionTrace session =
        generateTrace(info, world, shortParams(2));
    ASSERT_EQ(session.playerCount(), 2);
    for (const PlayerTrace &tr : session.players) {
        ASSERT_GT(tr.points.size(), 100u);
        for (const TracePoint &tp : tr.points)
            EXPECT_TRUE(world.bounds().containsClosed(tp.position));
        // Mean speed ~ the game's player speed.
        const double duration_s =
            tr.points.back().timeMs / 1000.0;
        const double speed = tr.pathLength() / duration_s;
        // Small indoor rooms clamp movement at the walls, pulling the
        // realized speed further below the nominal walking speed.
        EXPECT_GT(speed, info.playerSpeed * 0.2) << info.name;
        EXPECT_LT(speed, info.playerSpeed * 2.0) << info.name;
    }
}

TEST_P(TrajectoryPerGame, DeterministicInSeed)
{
    const auto &info = gameInfo(GetParam());
    const auto world = makeWorld(GetParam(), 42);
    const auto a = generateTrace(info, world, shortParams(2, 9));
    const auto b = generateTrace(info, world, shortParams(2, 9));
    ASSERT_EQ(a.players[1].points.size(), b.players[1].points.size());
    for (std::size_t i = 0; i < a.players[1].points.size(); i += 37) {
        EXPECT_EQ(a.players[1].points[i].position,
                  b.players[1].points[i].position);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Games, TrajectoryPerGame,
    testing::Values(GameId::Viking, GameId::Racing, GameId::Pool),
    [](const testing::TestParamInfo<GameId> &info) {
        return gameInfo(info.param).name;
    });

TEST(Trajectory, PlayersStayInProximity)
{
    const auto &info = gameInfo(GameId::Viking);
    const auto world = makeWorld(GameId::Viking, 42);
    const SessionTrace session =
        generateTrace(info, world, shortParams(4));
    // "Multiple avatars closely follow each other": mean pairwise
    // separation is a few meters, far below the world diagonal.
    const double sep = meanPlayerSeparation(session);
    EXPECT_LT(sep, 25.0);
    EXPECT_GT(sep, 0.5);
}

TEST(Trajectory, PlayersNeverTraverseIdenticalPaths)
{
    // The Table 5 Version-2 result depends on trajectories of distinct
    // players never being grid-identical.
    const auto &info = gameInfo(GameId::Viking);
    const auto world = makeWorld(GameId::Viking, 42);
    const SessionTrace session =
        generateTrace(info, world, shortParams(2));
    const world::GridMap grid = world::gen::makeGrid(info);
    const auto path0 = session.players[0].gridPath(grid);
    const auto path1 = session.players[1].gridPath(grid);
    std::size_t overlap = 0;
    std::set<std::uint64_t> visited0;
    for (const auto g : path0)
        visited0.insert(grid.key(g));
    for (const auto g : path1)
        overlap += visited0.count(grid.key(g));
    // Some incidental crossings are fine; identical paths are not.
    EXPECT_LT(static_cast<double>(overlap),
              0.5 * static_cast<double>(path1.size()));
}

TEST(Trajectory, TrackPlayersFollowTheTrack)
{
    const auto &info = gameInfo(GameId::Racing);
    const auto world = makeWorld(GameId::Racing, 42);
    const auto reachable = world::gen::makeReachability(info, world);
    const SessionTrace session =
        generateTrace(info, world, shortParams(2));
    for (const PlayerTrace &tr : session.players) {
        std::size_t off_track = 0;
        for (std::size_t i = 0; i < tr.points.size(); i += 20)
            off_track += !reachable(tr.points[i].position);
        EXPECT_EQ(off_track, 0u);
    }
}

TEST(Trajectory, RacersChaseEachOther)
{
    const auto &info = gameInfo(GameId::Racing);
    const auto world = makeWorld(GameId::Racing, 42);
    const SessionTrace session =
        generateTrace(info, world, shortParams(3));
    // Racing proximity: cars within tens of meters around the track.
    EXPECT_LT(meanPlayerSeparation(session), 120.0);
}

TEST(Trajectory, SinglePlayerSupported)
{
    const auto &info = gameInfo(GameId::Corridor);
    const auto world = makeWorld(GameId::Corridor, 42);
    const SessionTrace session =
        generateTrace(info, world, shortParams(1));
    EXPECT_EQ(session.playerCount(), 1);
}

} // namespace
} // namespace coterie::trace
