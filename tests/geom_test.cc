/**
 * @file
 * Tests for vectors, bounding boxes, rectangles/quadrants, and the
 * ray-primitive intersection routines (including property sweeps).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "geom/aabb.hh"
#include "geom/intersect.hh"
#include "geom/region.hh"
#include "geom/vec.hh"
#include "support/rng.hh"

namespace coterie::geom {
namespace {

TEST(Vec2, Arithmetic)
{
    const Vec2 a{1.0, 2.0}, b{3.0, -1.0};
    EXPECT_EQ(a + b, Vec2(4.0, 1.0));
    EXPECT_EQ(a - b, Vec2(-2.0, 3.0));
    EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
    EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
    EXPECT_DOUBLE_EQ(Vec2(3.0, 4.0).length(), 5.0);
    EXPECT_DOUBLE_EQ(a.distance(b), std::sqrt(4.0 + 9.0));
}

TEST(Vec2, PerpIsOrthogonal)
{
    const Vec2 v{2.5, -1.5};
    EXPECT_DOUBLE_EQ(v.dot(v.perp()), 0.0);
}

TEST(Vec2, AngleRoundTrip)
{
    for (double theta : {0.0, 0.5, 1.5, 3.0, -2.0}) {
        const Vec2 v = Vec2::fromAngle(theta);
        EXPECT_NEAR(std::cos(v.angle()), std::cos(theta), 1e-12);
        EXPECT_NEAR(std::sin(v.angle()), std::sin(theta), 1e-12);
    }
}

TEST(Vec3, CrossProduct)
{
    const Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
    EXPECT_EQ(x.cross(y), z);
    EXPECT_EQ(y.cross(z), x);
    EXPECT_EQ(z.cross(x), y);
}

TEST(Vec3, NormalizedHasUnitLength)
{
    const Vec3 v = Vec3{3.0, -4.0, 12.0}.normalized();
    EXPECT_NEAR(v.length(), 1.0, 1e-12);
    EXPECT_EQ(Vec3{}.normalized(), Vec3{});
}

TEST(Vec3, GroundProjectionAndLift)
{
    const Vec3 p{2.0, 7.0, -3.0};
    EXPECT_EQ(p.ground(), Vec2(2.0, -3.0));
    EXPECT_EQ(lift(Vec2{2.0, -3.0}, 7.0), p);
}

TEST(Aabb, ExtendAndContain)
{
    Aabb box;
    EXPECT_FALSE(box.valid());
    box.extend(Vec3{0, 0, 0});
    box.extend(Vec3{2, 3, 4});
    EXPECT_TRUE(box.valid());
    EXPECT_TRUE(box.contains(Vec3{1, 1, 1}));
    EXPECT_FALSE(box.contains(Vec3{3, 1, 1}));
    EXPECT_EQ(box.center(), Vec3(1.0, 1.5, 2.0));
    EXPECT_DOUBLE_EQ(box.surfaceArea(), 2.0 * (6 + 12 + 8));
}

TEST(Aabb, OverlapsAndDistance)
{
    const Aabb a{{0, 0, 0}, {1, 1, 1}};
    const Aabb b{{0.5, 0.5, 0.5}, {2, 2, 2}};
    const Aabb c{{3, 3, 3}, {4, 4, 4}};
    EXPECT_TRUE(a.overlaps(b));
    EXPECT_FALSE(a.overlaps(c));
    EXPECT_DOUBLE_EQ(a.distanceSq(Vec3{0.5, 0.5, 0.5}), 0.0);
    EXPECT_DOUBLE_EQ(a.distanceSq(Vec3{2.0, 1.0, 1.0}), 1.0);
}

TEST(Rect, QuadrantsTileTheRect)
{
    const Rect r{{0, 0}, {8, 4}};
    const auto quads = r.quadrants();
    double area = 0.0;
    for (const Rect &q : quads)
        area += q.area();
    EXPECT_DOUBLE_EQ(area, r.area());
    // Every point of the parent is in exactly one (half-open) quadrant.
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        const Vec2 p{rng.uniform(0.0, 8.0), rng.uniform(0.0, 4.0)};
        int owners = 0;
        for (const Rect &q : quads)
            owners += q.contains(p);
        EXPECT_EQ(owners, 1) << p.x << "," << p.y;
    }
}

TEST(Rect, ClampIntoBounds)
{
    const Rect r{{0, 0}, {10, 10}};
    EXPECT_EQ(r.clamp(Vec2{-5, 20}), Vec2(0.0, 10.0));
    EXPECT_EQ(r.clamp(Vec2{5, 5}), Vec2(5.0, 5.0));
}

TEST(Intersect, RaySphereFrontHit)
{
    Ray ray;
    ray.origin = {0, 0, 0};
    ray.dir = {1, 0, 0};
    const auto t = intersectSphere(ray, Vec3{5, 0, 0}, 1.0);
    ASSERT_TRUE(t.has_value());
    EXPECT_NEAR(*t, 4.0, 1e-9);
}

TEST(Intersect, RaySphereInsideHitsExit)
{
    Ray ray;
    ray.origin = {5, 0, 0};
    ray.dir = {1, 0, 0};
    const auto t = intersectSphere(ray, Vec3{5, 0, 0}, 1.0);
    ASSERT_TRUE(t.has_value());
    EXPECT_NEAR(*t, 1.0, 1e-9);
}

TEST(Intersect, RaySphereMiss)
{
    Ray ray;
    ray.origin = {0, 0, 0};
    ray.dir = {1, 0, 0};
    EXPECT_FALSE(intersectSphere(ray, Vec3{5, 3, 0}, 1.0).has_value());
    // Behind the origin.
    EXPECT_FALSE(intersectSphere(ray, Vec3{-5, 0, 0}, 1.0).has_value());
}

TEST(Intersect, RayBoxWithNormal)
{
    Ray ray;
    ray.origin = {-5, 0.5, 0.5};
    ray.dir = {1, 0, 0};
    Vec3 normal;
    const Aabb box{{0, 0, 0}, {1, 1, 1}};
    const auto t = intersectBox(ray, box, &normal);
    ASSERT_TRUE(t.has_value());
    EXPECT_NEAR(*t, 5.0, 1e-9);
    EXPECT_EQ(normal, Vec3(-1.0, 0.0, 0.0));
}

TEST(Intersect, RayBoxRespectsInterval)
{
    Ray ray;
    ray.origin = {-5, 0.5, 0.5};
    ray.dir = {1, 0, 0};
    ray.tMax = 3.0; // box starts at t=5
    EXPECT_FALSE(
        intersectBox(ray, Aabb{{0, 0, 0}, {1, 1, 1}}).has_value());
    ray.tMax = 1e9;
    ray.tMin = 7.0; // past the box
    EXPECT_FALSE(
        intersectBox(ray, Aabb{{0, 0, 0}, {1, 1, 1}}).has_value());
}

TEST(Intersect, RayGround)
{
    Ray ray;
    ray.origin = {0, 10, 0};
    ray.dir = Vec3{0, -1, 0};
    const auto t = intersectGround(ray, 2.0);
    ASSERT_TRUE(t.has_value());
    EXPECT_NEAR(*t, 8.0, 1e-9);
    ray.dir = {1, 0, 0};
    EXPECT_FALSE(intersectGround(ray, 2.0).has_value());
}

TEST(Intersect, RayCylinderSideAndCaps)
{
    Ray side;
    side.origin = {-5, 1.0, 0};
    side.dir = {1, 0, 0};
    Vec3 n;
    auto t = intersectCylinderY(side, Vec3{0, 0, 0}, 1.0, 2.0, &n);
    ASSERT_TRUE(t.has_value());
    EXPECT_NEAR(*t, 4.0, 1e-9);
    EXPECT_NEAR(n.x, -1.0, 1e-9);

    Ray top;
    top.origin = {0, 10, 0};
    top.dir = {0, -1, 0};
    t = intersectCylinderY(top, Vec3{0, 0, 0}, 1.0, 2.0, &n);
    ASSERT_TRUE(t.has_value());
    EXPECT_NEAR(*t, 8.0, 1e-9);
    EXPECT_NEAR(n.y, 1.0, 1e-9);

    Ray miss;
    miss.origin = {-5, 5.0, 0};
    miss.dir = {1, 0, 0}; // passes above the cylinder
    EXPECT_FALSE(
        intersectCylinderY(miss, Vec3{0, 0, 0}, 1.0, 2.0).has_value());
}

/** Property: box slab predicate agrees with the full intersection. */
TEST(IntersectProperty, SlabTestConsistentWithBoxIntersect)
{
    Rng rng(99);
    for (int i = 0; i < 2000; ++i) {
        Ray ray;
        ray.origin = {rng.uniform(-10, 10), rng.uniform(-10, 10),
                      rng.uniform(-10, 10)};
        ray.dir = Vec3{rng.normal(), rng.normal(), rng.normal()}
                      .normalized();
        if (ray.dir.lengthSq() < 0.5)
            continue;
        const Vec3 lo{rng.uniform(-5, 0), rng.uniform(-5, 0),
                      rng.uniform(-5, 0)};
        const Aabb box{lo, lo + Vec3{rng.uniform(0.5, 5),
                                     rng.uniform(0.5, 5),
                                     rng.uniform(0.5, 5)}};
        const bool full = intersectBox(ray, box).has_value();
        const bool slab = rayHitsAabb(ray, box, ray.tMax);
        // Slab test may be a superset (it has no normal/interval
        // subtleties), but must never miss a real hit.
        if (full) {
            EXPECT_TRUE(slab);
        }
    }
}

/** Property: sphere hit points actually lie on the sphere. */
TEST(IntersectProperty, SphereHitOnSurface)
{
    Rng rng(123);
    for (int i = 0; i < 2000; ++i) {
        Ray ray;
        ray.origin = {rng.uniform(-20, 20), rng.uniform(-20, 20),
                      rng.uniform(-20, 20)};
        ray.dir = Vec3{rng.normal(), rng.normal(), rng.normal()}
                      .normalized();
        const Vec3 center{rng.uniform(-10, 10), rng.uniform(-10, 10),
                          rng.uniform(-10, 10)};
        const double radius = rng.uniform(0.5, 4.0);
        const auto t = intersectSphere(ray, center, radius);
        if (t.has_value()) {
            const double dist = ray.at(*t).distance(center);
            EXPECT_NEAR(dist, radius, 1e-6);
        }
    }
}

} // namespace
} // namespace coterie::geom
