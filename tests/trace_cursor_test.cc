/**
 * @file
 * Tests for the interpolating trace cursor: midpoint interpolation,
 * clamping, yaw wrap-around, speed estimation, and consistency with
 * the raw tick samples.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "trace/trace.hh"

namespace coterie::trace {
namespace {

PlayerTrace
straightTrace(int ticks, double stepX)
{
    PlayerTrace tr;
    for (int i = 0; i < ticks; ++i) {
        TracePoint tp;
        tp.timeMs = i * 10.0;
        tp.position = {i * stepX, 0.0};
        tp.yaw = 0.0;
        tr.points.push_back(tp);
    }
    return tr;
}

TEST(TraceCursor, ExactTicksMatchSamples)
{
    const PlayerTrace tr = straightTrace(10, 1.0);
    const TraceCursor cursor(tr, 10.0);
    for (int i = 0; i < 10; ++i) {
        const TracePoint tp = cursor.at(i * 10.0);
        EXPECT_NEAR(tp.position.x, tr.points[i].position.x, 1e-9);
    }
}

TEST(TraceCursor, MidTickInterpolatesLinearly)
{
    const PlayerTrace tr = straightTrace(10, 2.0);
    const TraceCursor cursor(tr, 10.0);
    EXPECT_NEAR(cursor.at(15.0).position.x, 3.0, 1e-9);
    EXPECT_NEAR(cursor.at(17.5).position.x, 3.5, 1e-9);
}

TEST(TraceCursor, ClampsOutsideTheTrace)
{
    const PlayerTrace tr = straightTrace(5, 1.0);
    const TraceCursor cursor(tr, 10.0);
    EXPECT_NEAR(cursor.at(-100.0).position.x, 0.0, 1e-9);
    EXPECT_NEAR(cursor.at(1e6).position.x, 4.0, 1e-9);
    EXPECT_DOUBLE_EQ(cursor.durationMs(), 40.0);
}

TEST(TraceCursor, YawInterpolatesAlongShorterArc)
{
    PlayerTrace tr;
    TracePoint a;
    a.timeMs = 0.0;
    a.yaw = 3.0; // near +pi
    TracePoint b;
    b.timeMs = 10.0;
    b.yaw = -3.0; // near -pi: shorter arc crosses pi, not zero
    tr.points = {a, b};
    const TraceCursor cursor(tr, 10.0);
    const double mid = cursor.at(5.0).yaw;
    // Midpoint of the short arc is ~pi (3.14), not 0.
    EXPECT_GT(std::abs(mid), 3.0);
}

TEST(TraceCursor, SpeedMatchesConstantVelocity)
{
    // 0.5 m per 10 ms tick = 50 m/s.
    const PlayerTrace tr = straightTrace(100, 0.5);
    const TraceCursor cursor(tr, 10.0);
    EXPECT_NEAR(cursor.speedAt(500.0), 50.0, 0.5);
}

TEST(TraceCursor, SpeedZeroWhenStationary)
{
    PlayerTrace tr;
    for (int i = 0; i < 10; ++i) {
        TracePoint tp;
        tp.timeMs = i * 10.0;
        tp.position = {7.0, 7.0};
        tr.points.push_back(tp);
    }
    const TraceCursor cursor(tr, 10.0);
    EXPECT_NEAR(cursor.speedAt(50.0), 0.0, 1e-9);
}

TEST(TraceCursorDeath, EmptyTracePanics)
{
    PlayerTrace empty;
    EXPECT_DEATH(TraceCursor(empty, 10.0), "empty");
}

} // namespace
} // namespace coterie::trace
