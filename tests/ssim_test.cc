/**
 * @file
 * Tests for the SSIM metric: identity, symmetry, range, and the
 * monotone-degradation property the frame-similarity machinery relies
 * on (more noise -> lower SSIM; small shifts on textured content ->
 * lower SSIM than on flat content).
 */

#include <gtest/gtest.h>

#include "image/ssim.hh"
#include "support/rng.hh"

namespace coterie::image {
namespace {

Image
noiseImage(int w, int h, std::uint64_t seed)
{
    Image img(w, h);
    Rng rng(seed);
    for (auto &p : img.pixels()) {
        p.r = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
        p.g = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
        p.b = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
    }
    return img;
}

Image
addNoise(const Image &base, double sigma, std::uint64_t seed)
{
    Image out = base;
    Rng rng(seed);
    for (auto &p : out.pixels()) {
        auto jitter = [&](std::uint8_t c) {
            const double v = c + rng.normal(0.0, sigma);
            return static_cast<std::uint8_t>(
                std::clamp(v, 0.0, 255.0));
        };
        p = Rgb{jitter(p.r), jitter(p.g), jitter(p.b)};
    }
    return out;
}

TEST(Ssim, IdenticalImagesScoreOne)
{
    const Image img = noiseImage(64, 64, 1);
    EXPECT_NEAR(ssim(img, img), 1.0, 1e-12);
}

TEST(Ssim, Symmetric)
{
    const Image a = noiseImage(64, 64, 1);
    const Image b = addNoise(a, 20.0, 2);
    EXPECT_NEAR(ssim(a, b), ssim(b, a), 1e-12);
}

TEST(Ssim, UncorrelatedNoiseScoresLow)
{
    const Image a = noiseImage(64, 64, 1);
    const Image b = noiseImage(64, 64, 2);
    EXPECT_LT(ssim(a, b), 0.2);
}

TEST(Ssim, MonotoneInNoiseLevel)
{
    const Image base = noiseImage(96, 96, 7);
    double prev = 1.0;
    for (double sigma : {2.0, 8.0, 24.0, 60.0}) {
        const double s = ssim(base, addNoise(base, sigma, 11));
        EXPECT_LT(s, prev) << "sigma=" << sigma;
        prev = s;
    }
}

TEST(Ssim, FlatImagesWithEqualMeansScoreHigh)
{
    const Image a(32, 32, Rgb{128, 128, 128});
    const Image b(32, 32, Rgb{129, 129, 129});
    EXPECT_GT(ssim(a, b), 0.99);
}

TEST(Ssim, BrightnessShiftPenalized)
{
    const Image a(64, 64, Rgb{100, 100, 100});
    const Image b(64, 64, Rgb{200, 200, 200});
    // Pure luminance shift on zero-variance content: only the
    // luminance term penalizes (~0.8).
    EXPECT_LT(ssim(a, b), 0.85);
}

TEST(Ssim, ShiftedTexturePenalizedMoreThanShiftedFlat)
{
    // Build a textured image and a flat image; shift both by 2 px.
    const Image tex = noiseImage(96, 96, 5);
    Image tex_shift(96, 96);
    for (int y = 0; y < 96; ++y)
        for (int x = 0; x < 96; ++x)
            tex_shift.at(x, y) = tex.at((x + 2) % 96, y);
    const Image flat(96, 96, Rgb{50, 90, 140});
    const Image flat_shift = flat; // shifting flat is a no-op
    EXPECT_LT(ssim(tex, tex_shift) + 0.3, ssim(flat, flat_shift));
}

TEST(Ssim, SmallImageDegenerateWindowStillWorks)
{
    const Image a(4, 4, Rgb{10, 10, 10});
    const Image b(4, 4, Rgb{10, 10, 10});
    EXPECT_NEAR(ssim(a, b), 1.0, 1e-9);
}

TEST(Ssim, StrideParameterKeepsResultClose)
{
    const Image a = noiseImage(64, 64, 3);
    const Image b = addNoise(a, 15.0, 4);
    SsimParams dense;
    dense.stride = 1;
    SsimParams sparse;
    sparse.stride = 8;
    EXPECT_NEAR(ssim(a, b, dense), ssim(a, b, sparse), 0.05);
}

TEST(Ssim, SlidingKernelMatchesNaiveReferenceOnRandomImages)
{
    // The production kernel (per-column running sums, pool-parallel
    // bands) must agree with the naive O(win^2)-per-window formulation
    // to within 1e-12 across overlap factors and odd geometries.
    struct Case { int w, h, win, stride; };
    for (const Case &c : {Case{64, 64, 8, 4}, Case{128, 64, 8, 1},
                          Case{512, 256, 8, 4}, Case{96, 48, 11, 3},
                          Case{70, 130, 16, 5}}) {
        const Image a = noiseImage(c.w, c.h, 21);
        const Image b = addNoise(a, 18.0, 22);
        SsimParams params;
        params.windowSize = c.win;
        params.stride = c.stride;
        const double fast = ssim(a, b, params);
        const double naive = ssimLumaReference(
            a.lumaPlane(), b.lumaPlane(), c.w, c.h, params);
        EXPECT_NEAR(fast, naive, 1e-12)
            << c.w << "x" << c.h << " win=" << c.win
            << " stride=" << c.stride;
    }
}

TEST(Ssim, BitIdenticalToReferenceAtStrideEqualsWindow)
{
    const Image a = noiseImage(128, 96, 31);
    const Image b = addNoise(a, 25.0, 32);
    SsimParams params;
    params.windowSize = 8;
    params.stride = 8; // disjoint windows: the kernels must agree exactly
    EXPECT_EQ(ssim(a, b, params),
              ssimLumaReference(a.lumaPlane(), b.lumaPlane(), 128, 96,
                                params));
}

TEST(Ssim, SerialAndPooledKernelsBitIdentical)
{
    const Image a = noiseImage(256, 128, 41);
    const Image b = addNoise(a, 12.0, 42);
    SsimParams serial;
    serial.threads = 1;
    SsimParams pooled;
    pooled.threads = 0;
    EXPECT_EQ(ssim(a, b, serial), ssim(a, b, pooled));
}

TEST(SsimDeath, MismatchedSizesPanic)
{
    const Image a(8, 8), b(9, 8);
    EXPECT_DEATH(ssim(a, b), "mismatch");
}

} // namespace
} // namespace coterie::image
