/**
 * @file
 * Tests for the sequence (I/P-frame) codec: round-trip fidelity, the
 * compression advantage of P-frames on similar frames (the far-BE
 * premise), GOP structure, and drift-free reconstruction.
 */

#include <gtest/gtest.h>

#include "image/metrics.hh"
#include "image/ssim.hh"
#include "image/video.hh"
#include <cmath>

#include "support/rng.hh"

namespace coterie::image {
namespace {

/** A smooth textured frame drifting by @p phase — a far-BE stand-in:
 *  nearby far-BE panoramas differ by tiny sub-texel shifts. */
Image
texturedFrame(int w, int h, double phase, std::uint64_t seed)
{
    Image img(w, h);
    const double s0 = static_cast<double>(seed % 97);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            const double v =
                127.0 +
                60.0 * std::sin((x + phase + s0) / 6.0) *
                    std::cos(y / 5.0) +
                40.0 * std::sin((x - 2.0 * phase) / 17.0);
            const auto b = static_cast<std::uint8_t>(
                std::clamp(v, 0.0, 255.0));
            img.at(x, y) = {b, static_cast<std::uint8_t>(255 - b), 128};
        }
    }
    return img;
}

std::vector<Image>
slowPan(int frames)
{
    std::vector<Image> out;
    for (int i = 0; i < frames; ++i)
        out.push_back(texturedFrame(96, 64, i * 0.4, 7));
    return out;
}

TEST(Video, RoundTripFidelity)
{
    const auto frames = slowPan(10);
    const EncodedVideo video = encodeVideo(frames);
    const auto decoded = decodeVideo(video);
    ASSERT_EQ(decoded.size(), frames.size());
    for (std::size_t i = 0; i < frames.size(); ++i) {
        EXPECT_GT(ssim(frames[i], decoded[i]), 0.85)
            << "frame " << i;
    }
}

TEST(Video, GopStructure)
{
    VideoParams params;
    params.gopLength = 4;
    const EncodedVideo video = encodeVideo(slowPan(10), params);
    ASSERT_EQ(video.frames.size(), 10u);
    for (std::size_t i = 0; i < video.frames.size(); ++i) {
        const FrameType expected =
            i % 4 == 0 ? FrameType::Intra : FrameType::Predicted;
        EXPECT_EQ(video.frames[i].type, expected) << "frame " << i;
    }
}

TEST(Video, PFramesSmallerThanIFramesOnSimilarContent)
{
    const EncodedVideo video = encodeVideo(slowPan(8));
    ASSERT_GE(video.frames.size(), 2u);
    const double i_size =
        static_cast<double>(video.frames[0].sizeBytes());
    double p_total = 0.0;
    int p_count = 0;
    for (std::size_t i = 1; i < video.frames.size(); ++i) {
        if (video.frames[i].type == FrameType::Predicted) {
            p_total += static_cast<double>(video.frames[i].sizeBytes());
            ++p_count;
        }
    }
    ASSERT_GT(p_count, 0);
    EXPECT_LT(p_total / p_count, i_size * 0.7);
}

TEST(Video, SequenceBeatsIndependentStills)
{
    const auto frames = slowPan(8);
    const EncodedVideo video = encodeVideo(frames);
    std::size_t stills = 0;
    for (const Image &frame : frames)
        stills += encode(frame).sizeBytes();
    EXPECT_LT(video.totalBytes(), stills);
}

TEST(Video, NoDriftAcrossLongGop)
{
    // Reconstructed references prevent quantisation-error accumulation:
    // the last P-frame of a long GOP is as faithful as the first.
    VideoParams params;
    params.gopLength = 16;
    const auto frames = slowPan(16);
    const auto decoded = decodeVideo(encodeVideo(frames, params));
    const double first = ssim(frames[1], decoded[1]);
    const double last = ssim(frames[15], decoded[15]);
    EXPECT_NEAR(first, last, 0.06);
}

TEST(Video, SingleFrameSequence)
{
    const std::vector<Image> one{texturedFrame(32, 32, 0, 1)};
    const auto decoded = decodeVideo(encodeVideo(one));
    ASSERT_EQ(decoded.size(), 1u);
    EXPECT_GT(ssim(one[0], decoded[0]), 0.85);
}

TEST(Video, StaticSceneCompressesExtremely)
{
    std::vector<Image> frames(6, texturedFrame(96, 64, 0, 3));
    const EncodedVideo video = encodeVideo(frames);
    // Identical frames: P-frames shrink to the structural floor (one
    // DC delta + end-of-block marker per 8x8 block).
    for (std::size_t i = 1; i < video.frames.size(); ++i) {
        EXPECT_LT(video.frames[i].sizeBytes(),
                  video.frames[0].sizeBytes() / 4);
    }
}

TEST(VideoDeath, EmptySequencePanics)
{
    EXPECT_DEATH(encodeVideo({}), "empty");
}

} // namespace
} // namespace coterie::image
