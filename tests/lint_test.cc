/**
 * @file
 * Tests for the coterie-lint rule engine (tools/lint).
 *
 * Fixture snippets live in raw string literals; the engine strips
 * string literals before matching, so scanning this file with
 * coterie-lint itself stays clean — the fixtures are inert by
 * construction. One passing and one violating case per rule, plus
 * suppression-comment handling and the comment/string stripper.
 */

#include <gtest/gtest.h>

#include "lint.hh"

namespace {

using coterie::lint::checkSource;
using coterie::lint::Finding;
using coterie::lint::stripCommentsAndStrings;

std::vector<Finding>
run(const std::string &path, const std::string &src)
{
    return checkSource(path, src);
}

bool
fired(const std::vector<Finding> &findings, const std::string &rule)
{
    for (const Finding &f : findings)
        if (f.rule == rule)
            return true;
    return false;
}

TEST(LintStrip, CommentsAndStringsAreBlanked)
{
    const std::string src = R"fx(int a; // trailing time(now)
/* block rand( */ int b;
const char *s = "getenv(inside)";
)fx";
    const std::string stripped = stripCommentsAndStrings(src);
    EXPECT_EQ(stripped.find("time("), std::string::npos);
    EXPECT_EQ(stripped.find("rand("), std::string::npos);
    EXPECT_EQ(stripped.find("getenv"), std::string::npos);
    EXPECT_NE(stripped.find("int a;"), std::string::npos);
    EXPECT_NE(stripped.find("int b;"), std::string::npos);
    // Line structure is preserved for diagnostics.
    EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'),
              std::count(src.begin(), src.end(), '\n'));
}

TEST(LintStrip, RawStringsAndCharLiterals)
{
    const std::string src =
        "auto r = R\"x(std::thread inside)x\";\n"
        "char c = '\\'';\n"
        "int sep = 1'000'000;\n";
    const std::string stripped = stripCommentsAndStrings(src);
    EXPECT_EQ(stripped.find("std::thread"), std::string::npos);
    // Digit separators survive (not char literals).
    EXPECT_NE(stripped.find("1'000'000"), std::string::npos);
}

TEST(LintWallclockRng, ViolationInCore)
{
    const auto findings = run("src/core/bad.cc", R"(
#include <cstdlib>
int f() { return rand(); }
double g() { return std::chrono::system_clock::now().time_since_epoch().count(); }
const char *h() { return getenv("HOME"); }
)");
    ASSERT_TRUE(fired(findings, "no-wallclock-rng"));
    // file:line diagnostics point at the offending lines.
    EXPECT_EQ(findings[0].file, "src/core/bad.cc");
    EXPECT_EQ(findings[0].line, 3);
}

TEST(LintWallclockRng, SupportAndTestsAreExempt)
{
    const std::string src = "int f() { return rand(); }\n";
    EXPECT_FALSE(fired(run("src/support/rng.cc", src),
                       "no-wallclock-rng"));
    EXPECT_FALSE(fired(run("tests/foo_test.cc", src),
                       "no-wallclock-rng"));
}

TEST(LintWallclockRng, IdentifiersContainingTimeDoNotFire)
{
    const auto findings = run("src/render/ok.cc", R"(
double renderTimeMs(double x) { return x; }
double t = renderTimeMs(3.0);
)");
    EXPECT_FALSE(fired(findings, "no-wallclock-rng"));
}

TEST(LintRawThread, ViolationAnywhere)
{
    const std::string src = "#include <thread>\n"
                            "void f() { std::thread t; t.detach(); }\n";
    EXPECT_TRUE(fired(run("src/core/bad.cc", src), "no-raw-thread"));
    EXPECT_TRUE(fired(run("tests/bad_test.cc", src), "no-raw-thread"));
    EXPECT_TRUE(fired(run("bench/bad.cc", src), "no-raw-thread"));
}

TEST(LintRawThread, PoolAndHardwareConcurrencyAllowed)
{
    EXPECT_FALSE(fired(run("src/support/parallel.cc",
                           "std::thread t;\n"),
                       "no-raw-thread"));
    EXPECT_FALSE(fired(run("bench/ok.cc",
                           "unsigned n = "
                           "std::thread::hardware_concurrency();\n"),
                       "no-raw-thread"));
}

TEST(LintUsingNamespace, HeaderViolatesSourceDoesNot)
{
    const std::string src = "#pragma once\nusing namespace std;\n";
    EXPECT_TRUE(fired(run("src/geom/bad.hh", src),
                      "no-using-namespace-header"));
    EXPECT_FALSE(fired(run("src/geom/ok.cc", "using namespace std;\n"),
                       "no-using-namespace-header"));
}

TEST(LintPragmaOnce, MissingAndPresent)
{
    const auto bad = run("src/geom/bad.hh", "struct X {};\n");
    ASSERT_TRUE(fired(bad, "pragma-once"));
    EXPECT_EQ(bad[0].line, 1);
    EXPECT_FALSE(fired(run("src/geom/ok.hh",
                           "#pragma once\nstruct X {};\n"),
                       "pragma-once"));
    // Sources never need it.
    EXPECT_FALSE(fired(run("src/geom/ok.cc", "struct X {};\n"),
                       "pragma-once"));
}

TEST(LintConsoleIo, ViolationAndLoggingExemption)
{
    const std::string src = "#include <iostream>\n"
                            "void f() { std::cout << 1; }\n";
    EXPECT_TRUE(fired(run("src/core/bad.cc", src),
                      "no-direct-console-io"));
    EXPECT_FALSE(fired(run("src/support/logging.cc", src),
                       "no-direct-console-io"));
    // printf to a FILE* (serialization) is fine; stderr is not.
    EXPECT_FALSE(fired(run("src/trace/ok.cc",
                           "void f(FILE *fp) { fprintf(fp, \"x\"); }\n"),
                       "no-direct-console-io"));
    EXPECT_TRUE(fired(run("src/trace/bad.cc",
                          "void f() { fprintf(stderr, \"x\"); }\n"),
                      "no-direct-console-io"));
    // Tests and benches may print.
    EXPECT_FALSE(fired(run("bench/ok.cc", src),
                       "no-direct-console-io"));
}

TEST(LintMutexGuardedBy, UnannotatedMemberFires)
{
    const std::string bad = "#pragma once\n"
                            "#include <mutex>\n"
                            "class C { std::mutex m_; };\n";
    const auto findings = run("src/net/bad.hh", bad);
    ASSERT_TRUE(fired(findings, "mutex-guarded-by"));
    EXPECT_EQ(findings[0].line, 3);

    const std::string good =
        "#pragma once\n"
        "#include \"support/thread_annotations.hh\"\n"
        "class C {\n"
        "    coterie::support::Mutex m_;\n"
        "    int v_ COTERIE_GUARDED_BY(m_);\n"
        "};\n";
    EXPECT_FALSE(fired(run("src/net/ok.hh", good), "mutex-guarded-by"));
    // Outside src/ the annotation discipline is not enforced.
    EXPECT_FALSE(fired(run("tests/ok_test.cc",
                           "std::mutex m_;\n"),
                       "mutex-guarded-by"));
}

TEST(LintAmbientClock, ViolationInSrc)
{
    const auto findings = run("src/core/bad.cc", R"(
#include <chrono>
auto t0 = std::chrono::steady_clock::now();
)");
    ASSERT_TRUE(fired(findings, "ambient-clock"));
    EXPECT_EQ(findings[0].file, "src/core/bad.cc");
}

TEST(LintAmbientClock, TimeCallAndBareClockNamesFire)
{
    EXPECT_TRUE(fired(run("src/render/bad.cc",
                          "long t = time(nullptr);\n"),
                      "ambient-clock"));
    EXPECT_TRUE(fired(run("src/net/bad.cc",
                          "using clock = high_resolution_clock;\n"),
                      "ambient-clock"));
}

TEST(LintAmbientClock, ObsClockAndNonSrcAreExempt)
{
    const std::string src =
        "auto t0 = std::chrono::steady_clock::now();\n";
    EXPECT_FALSE(fired(run("src/obs/clock.cc", src), "ambient-clock"));
    EXPECT_FALSE(fired(run("src/obs/clock.hh", src), "ambient-clock"));
    // Tests, benches, and tools may read wall clocks freely.
    EXPECT_FALSE(fired(run("tests/foo_test.cc", src), "ambient-clock"));
    EXPECT_FALSE(fired(run("bench/foo.cc", src), "ambient-clock"));
}

TEST(LintAmbientClock, IdentifiersContainingClockDoNotFire)
{
    const auto findings = run("src/obs/metrics.cc", R"(
double wallClockSeconds = 0.0;
void observeClockDrift(double ms);
)");
    EXPECT_FALSE(fired(findings, "ambient-clock"));
}

TEST(LintSuppression, SameLineAndLineAbove)
{
    const std::string sameLine =
        "int f() { return rand(); } // lint:allow(no-wallclock-rng)\n";
    EXPECT_TRUE(run("src/core/x.cc", sameLine).empty());

    const std::string lineAbove =
        "// lint:allow(no-wallclock-rng)\n"
        "int f() { return rand(); }\n";
    EXPECT_TRUE(run("src/core/x.cc", lineAbove).empty());

    std::size_t suppressed = 0;
    checkSource("src/core/x.cc", sameLine, &suppressed);
    EXPECT_EQ(suppressed, 1u);
}

TEST(LintSuppression, WrongRuleNameDoesNotSuppress)
{
    const std::string src =
        "int f() { return rand(); } // lint:allow(no-raw-thread)\n";
    EXPECT_TRUE(fired(run("src/core/x.cc", src), "no-wallclock-rng"));
}

TEST(LintSuppression, AllAndLists)
{
    EXPECT_TRUE(run("src/core/x.cc",
                    "int f() { return rand(); } // lint:allow(all)\n")
                    .empty());
    EXPECT_TRUE(
        run("src/core/x.cc",
            "int f() { return rand(); } "
            "// lint:allow(no-direct-console-io, no-wallclock-rng)\n")
            .empty());
}

TEST(LintEpochGuardedSchedule, UnguardedThisCaptureFires)
{
    // A scheduled callback that captures `this` and touches members
    // with no revalidation: the classic stale-event bug.
    const auto findings = run("src/net/bad.cc", R"fx(
void Channel::rearm()
{
    queue_.scheduleIn(eta_, [this] { progressAndReschedule(); });
}
)fx");
    ASSERT_TRUE(fired(findings, "epoch-guarded-schedule"));
    EXPECT_EQ(findings[0].line, 4);
}

TEST(LintEpochGuardedSchedule, EpochComparisonPasses)
{
    // The reference pattern from net/channel.cc: stamp an epoch,
    // compare it on wake.
    const auto findings = run("src/net/good.cc", R"fx(
void Channel::rearm()
{
    const std::uint64_t epoch = ++epoch_;
    queue_.scheduleIn(eta_, [this, epoch] {
        if (epoch == epoch_)
            progressAndReschedule();
    });
}
)fx");
    EXPECT_FALSE(fired(findings, "epoch-guarded-schedule"));
}

TEST(LintEpochGuardedSchedule, MembershipLookupPasses)
{
    // Generation/membership revalidation (net/resilience.cc): a
    // cancelled fetch makes the wake-up a no-op.
    const auto findings = run("src/net/good2.cc", R"fx(
void Fetcher::backoff(std::uint64_t key, std::uint64_t gen)
{
    queue_.scheduleIn(delay, [this, key, gen] {
        const auto it = pending_.find(key);
        if (it == pending_.end())
            return;
        issueAttempt(key);
    });
}
)fx");
    EXPECT_FALSE(fired(findings, "epoch-guarded-schedule"));
}

TEST(LintEpochGuardedSchedule, NonThisCapturesAreOutOfScope)
{
    // Free-function session loops capture locals by reference, not
    // `this`; their lifetime is the enclosing run, not an object.
    const auto findings = run("src/core/loop.cc", R"fx(
void run()
{
    queue.scheduleIn(1.0, [&, pid] { schedule_frame(pid); });
}
)fx");
    EXPECT_FALSE(fired(findings, "epoch-guarded-schedule"));
}

TEST(LintEpochGuardedSchedule, AllowCommentSuppresses)
{
    // The callee-revalidates pattern (channel.cc beginPending) is
    // justified with an allow on the call line.
    const auto findings = run("src/net/fwd.cc", R"fx(
void Channel::arm(TransferId id)
{
    queue_.scheduleIn(delay, // lint:allow(epoch-guarded-schedule)
                      [this, id] { beginPending(id); });
}
)fx");
    EXPECT_FALSE(fired(findings, "epoch-guarded-schedule"));
}

TEST(LintEpochGuardedSchedule, DeclarationsDoNotFire)
{
    const auto findings = run("src/sim/queue.hh", R"fx(
#pragma once
struct EventQueue
{
    void scheduleAt(TimeMs when, EventFn fn);
    void scheduleIn(TimeMs delay, EventFn fn);
};
)fx");
    EXPECT_FALSE(fired(findings, "epoch-guarded-schedule"));
}

TEST(LintUnboundedQueue, UndocumentedDequeMemberFires)
{
    // A queue-shaped member with no growth story: one slow consumer
    // away from a silent leak.
    const auto findings = run("src/net/mailbox.hh", R"fx(
#pragma once
#include <deque>
struct Mailbox
{
    std::deque<Message> inbox_;
};
)fx");
    ASSERT_TRUE(fired(findings, "unbounded-queue"));
    EXPECT_EQ(findings[0].line, 6);
}

TEST(LintUnboundedQueue, QueueNamedVectorFires)
{
    const auto findings = run("src/core/work.hh", R"fx(
#pragma once
#include <vector>
struct Scheduler
{
    std::vector<Job> pendingJobs_;
};
)fx");
    EXPECT_TRUE(fired(findings, "unbounded-queue"));
}

TEST(LintUnboundedQueue, DocumentedCapPasses)
{
    // The client pipe pattern: the cap is stated where the member
    // lives, either in the block above or on the line itself.
    const auto findings = run("src/core/pipe.hh", R"fx(
#pragma once
#include <deque>
struct ClientState
{
    /** Capped at 6 entries — request_frame drops the most
     *  speculative tail beyond that. */
    std::deque<Key> pipe;
    std::deque<Id> fifo_; ///< bounded by the admission queue limit
};
)fx");
    EXPECT_FALSE(fired(findings, "unbounded-queue"));
}

TEST(LintUnboundedQueue, PlainVectorsAreOutOfScope)
{
    // Vectors without a queue-shaped name are value storage, not
    // producer/consumer hand-off; they stay out of scope.
    const auto findings = run("src/core/data.hh", R"fx(
#pragma once
#include <vector>
struct Table
{
    std::vector<double> samples_;
};
)fx");
    EXPECT_FALSE(fired(findings, "unbounded-queue"));
}

TEST(LintUnboundedQueue, AllowCommentSuppresses)
{
    // The tracer's session-lifetime record store: growth is the
    // feature, justified with the escape hatch.
    const auto findings = run("src/obs/records.hh", R"fx(
#pragma once
#include <deque>
struct Tracer
{
    std::deque<Record> records_; // lint:allow(unbounded-queue)
};
)fx");
    EXPECT_FALSE(fired(findings, "unbounded-queue"));
}

TEST(LintUnboundedQueue, OutsideSrcIsOutOfScope)
{
    const auto findings = run("tools/thing.cc", R"fx(
#include <deque>
std::deque<int> scratch_;
)fx");
    EXPECT_FALSE(fired(findings, "unbounded-queue"));
}

TEST(LintRules, PtrKeyedContainerFlagsPointerKeys)
{
    const auto findings = run("src/core/owners.cc", R"fx(
#include <unordered_map>
struct Object;
std::unordered_map<const Object *, int> byPtr;
)fx");
    EXPECT_TRUE(fired(findings, "ptr-keyed-container"));

    // Pointer *values* are fine — only the key drives iteration order.
    const auto ok = run("src/core/owners.cc", R"fx(
#include <unordered_map>
struct Object;
std::unordered_map<unsigned long, Object *> byId;
)fx");
    EXPECT_FALSE(fired(ok, "ptr-keyed-container"));
}

TEST(LintRules, PtrKeyedContainerHandlesNestedTemplates)
{
    // The key type ends at the first top-level comma, so a pointer
    // inside the *mapped* type must not fire.
    const auto ok = run("src/core/owners.cc", R"fx(
#include <unordered_map>
#include <vector>
struct Object;
std::unordered_map<unsigned, std::vector<Object *>> lists;
)fx");
    EXPECT_FALSE(fired(ok, "ptr-keyed-container"));
}

TEST(LintRules, AddressOrderingFlagsUintptrCasts)
{
    const auto findings = run("src/world/ids.cc", R"fx(
#include <cstdint>
unsigned long long id(const void *p)
{
    return reinterpret_cast<std::uintptr_t>(p);
}
)fx");
    EXPECT_TRUE(fired(findings, "address-ordering"));

    const auto hash = run("src/world/ids.cc", R"fx(
#include <functional>
struct Object;
std::hash<Object *> hasher;
)fx");
    EXPECT_TRUE(fired(hash, "address-ordering"));
}

TEST(LintRules, AmbientRngFlagsStdEnginesOutsideSupport)
{
    const auto findings = run("src/sim/jitter.cc", R"fx(
#include <random>
std::mt19937 gen;
)fx");
    EXPECT_TRUE(fired(findings, "ambient-rng"));

    // support/ owns the seeded generators.
    const auto ok = run("src/support/rng.cc", R"fx(
#include <random>
std::mt19937 gen;
)fx");
    EXPECT_FALSE(fired(ok, "ambient-rng"));
}

TEST(LintRules, SimdAmbientMathFlagsLibmInCloneKernels)
{
    const auto findings = run("src/render/kern.cc", R"fx(
#include "support/simd.hh"
COTERIE_SIMD_CLONES void kern(double *out, const double *in)
{
    out[0] = std::sin(in[0]);
}
)fx");
    EXPECT_TRUE(fired(findings, "simd-ambient-math"));

    // sqrt is exactly rounded; outside-kernel transcendentals are
    // also fine.
    const auto ok = run("src/render/kern.cc", R"fx(
#include "support/simd.hh"
#include <cmath>
COTERIE_SIMD_CLONES void kern(double *out, const double *in)
{
    out[0] = std::sqrt(in[0]);
}
double plain(double x) { return std::sin(x); }
)fx");
    EXPECT_FALSE(fired(ok, "simd-ambient-math"));
}

TEST(LintRules, CrossLaneFlagsForeignQueueScheduling)
{
    const auto findings = run("src/core/widget.cc", R"fx(
void Widget::poke(SessionManager &mgr)
{
    mgr.queue().scheduleAt(5.0, [] {});
    const double t = mgr.queue().now();
    other_->queue().scheduleIn(1.0, [] {});
}
)fx");
    EXPECT_TRUE(fired(findings, "cross-lane"));
    int hits = 0;
    for (const Finding &f : findings)
        if (f.rule == "cross-lane")
            ++hits;
    EXPECT_EQ(hits, 3);
}

TEST(LintRules, CrossLaneOwnQueueAndMergeApiPass)
{
    // A member queue reference, the merge API, and observe-only
    // accessors are all legal lane interaction.
    const auto ok = run("src/core/widget.cc", R"fx(
void Widget::tick()
{
    queue_.scheduleIn(1.0, [] {});
    queue_.scheduleAt(queue_.now() + 5.0, [] {});
    queue_.postControl([] {});
    queue_.scheduleCross(2, queue_.now() + lookahead_, [] {});
    const auto backlog = mgr_.queue().pending();
    const auto done = mgr_.queue().executedEvents();
}
)fx");
    EXPECT_FALSE(fired(ok, "cross-lane"));
}

TEST(LintRules, CrossLaneScopeAndSuppression)
{
    // The engine itself (src/sim/) and code outside src/ are out of
    // scope; lint:allow(cross-lane) silences a deliberate crossing.
    EXPECT_FALSE(fired(run("src/sim/lane_queue.cc",
                           "void f(Q &q) { q.queue().now(); }"),
                       "cross-lane"));
    EXPECT_FALSE(fired(run("tests/fleet_test.cc",
                           "void f(M &m) { m.queue().now(); }"),
                       "cross-lane"));
    const auto ok = run("src/core/widget.cc", R"fx(
void Widget::poke(SessionManager &mgr)
{
    // lint:allow(cross-lane)
    mgr.queue().scheduleAt(5.0, [] {});
}
)fx");
    EXPECT_FALSE(fired(ok, "cross-lane"));
}

TEST(LintEngine, RulesAreRegisteredAndNamed)
{
    const auto &rules = coterie::lint::rules();
    ASSERT_EQ(rules.size(), 14u);
    for (const auto &rule : rules) {
        EXPECT_FALSE(rule.name.empty());
        EXPECT_FALSE(rule.description.empty());
        EXPECT_TRUE(static_cast<bool>(rule.check));
    }
}

} // namespace
