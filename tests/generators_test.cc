/**
 * @file
 * Tests for the nine procedural game worlds: construction, determinism,
 * dimensional fidelity to Table 3, genre metadata of Table 2, density
 * character (Viking clustered, CTS uniform, track worlds sparse), and
 * reachability predicates.
 */

#include <gtest/gtest.h>

#include "support/rng.hh"
#include "world/gen/generators.hh"
#include "world/gen/track.hh"

namespace coterie::world::gen {
namespace {

using geom::Vec2;

TEST(Generators, AllNineGamesListed)
{
    EXPECT_EQ(allGames().size(), 9u);
    // Table 2 composition: 6 outdoor, 3 indoor.
    int outdoor = 0, indoor = 0;
    for (const GameInfo &info : allGames())
        (info.sceneType == SceneType::Outdoor ? outdoor : indoor)++;
    EXPECT_EQ(outdoor, 6);
    EXPECT_EQ(indoor, 3);
}

TEST(Generators, EvaluationGamesAreTheTestbedTriple)
{
    const auto eval = evaluationGames();
    ASSERT_EQ(eval.size(), 3u);
    EXPECT_EQ(eval[0], GameId::Viking);
    EXPECT_EQ(eval[1], GameId::CTS);
    EXPECT_EQ(eval[2], GameId::Racing);
}

class EveryGame : public testing::TestWithParam<GameId>
{
};

TEST_P(EveryGame, BuildsFinalizedNonEmptyWorld)
{
    const VirtualWorld world = makeWorld(GetParam(), 42);
    EXPECT_TRUE(world.finalized());
    EXPECT_GT(world.objects().size(), 10u);
    const GameInfo &info = gameInfo(GetParam());
    EXPECT_DOUBLE_EQ(world.bounds().width(), info.width);
    EXPECT_DOUBLE_EQ(world.bounds().height(), info.height);
    EXPECT_EQ(world.name(), info.name);
    EXPECT_EQ(world.sceneType(), info.sceneType);
}

TEST_P(EveryGame, DeterministicInSeed)
{
    const VirtualWorld a = makeWorld(GetParam(), 7);
    const VirtualWorld b = makeWorld(GetParam(), 7);
    ASSERT_EQ(a.objects().size(), b.objects().size());
    for (std::size_t i = 0; i < a.objects().size(); ++i) {
        EXPECT_EQ(a.objects()[i].position, b.objects()[i].position);
        EXPECT_EQ(a.objects()[i].triangles, b.objects()[i].triangles);
    }
    const VirtualWorld c = makeWorld(GetParam(), 8);
    // Indoor layouts have fixed furniture sites, so compare mesh
    // complexity too when looking for seed-driven variation.
    bool differs = a.objects().size() != c.objects().size();
    for (std::size_t i = 0; !differs && i < a.objects().size(); ++i) {
        differs = !(a.objects()[i].position == c.objects()[i].position) ||
                  a.objects()[i].triangles != c.objects()[i].triangles;
    }
    EXPECT_TRUE(differs);
}

TEST_P(EveryGame, ObjectsLieWithinBounds)
{
    const VirtualWorld world = makeWorld(GetParam(), 42);
    int outside = 0;
    for (const WorldObject &obj : world.objects()) {
        if (!world.bounds().containsClosed(obj.footprint()))
            ++outside;
    }
    // Cluster scatter may graze edges; essentially everything inside.
    EXPECT_LE(outside, static_cast<int>(world.objects().size() / 50));
}

INSTANTIATE_TEST_SUITE_P(
    AllGames, EveryGame,
    testing::Values(GameId::Racing, GameId::DS, GameId::Viking,
                    GameId::CTS, GameId::FPS, GameId::Soccer, GameId::Pool,
                    GameId::Bowling, GameId::Corridor),
    [](const testing::TestParamInfo<GameId> &info) {
        return gameInfo(info.param).name;
    });

TEST(Generators, VikingIsDenserThanRacingPerArea)
{
    const VirtualWorld viking = makeWorld(GameId::Viking, 42);
    const VirtualWorld racing = makeWorld(GameId::Racing, 42);
    const double viking_density =
        static_cast<double>(viking.objects().size()) /
        viking.bounds().area();
    const double racing_density =
        static_cast<double>(racing.objects().size()) /
        racing.bounds().area();
    EXPECT_GT(viking_density, racing_density * 20.0);
}

TEST(Generators, VikingDensityVariesMoreThanCts)
{
    // Coefficient of variation of local triangle density: Viking's
    // clustered village vs CTS's quasi-uniform forest (the property
    // behind Table 3's quadtree depths).
    auto density_cv = [](const VirtualWorld &world) {
        Rng rng(5);
        double sum = 0, sum2 = 0;
        const int n = 120;
        for (int i = 0; i < n; ++i) {
            const Vec2 p{rng.uniform(world.bounds().lo.x,
                                     world.bounds().hi.x),
                         rng.uniform(world.bounds().lo.y,
                                     world.bounds().hi.y)};
            const double d = world.triangleDensity(p, 8.0);
            sum += d;
            sum2 += d * d;
        }
        const double mean = sum / n;
        const double var = sum2 / n - mean * mean;
        return mean > 0 ? std::sqrt(var) / mean : 0.0;
    };
    const VirtualWorld viking = makeWorld(GameId::Viking, 42);
    const VirtualWorld cts = makeWorld(GameId::CTS, 42);
    EXPECT_GT(density_cv(viking), density_cv(cts));
}

TEST(Generators, IndoorWorldsAreFlatWithWalls)
{
    for (GameId id : {GameId::Pool, GameId::Bowling, GameId::Corridor}) {
        const VirtualWorld world = makeWorld(id, 42);
        EXPECT_TRUE(world.terrain().params().flat);
        bool has_wall = false;
        for (const WorldObject &obj : world.objects())
            has_wall |= obj.kind == AssetKind::Wall;
        EXPECT_TRUE(has_wall) << world.name();
    }
}

TEST(Generators, ReachabilityTrackCorridor)
{
    const GameInfo &info = gameInfo(GameId::Racing);
    const VirtualWorld world = makeWorld(GameId::Racing, 42);
    const auto reachable = makeReachability(info, world);
    ASSERT_TRUE(static_cast<bool>(reachable));
    Track track({{0, 0}, {info.width, info.height}},
                world.terrain().params().seed);
    EXPECT_TRUE(reachable(track.pointAt(100.0)));
    EXPECT_FALSE(reachable(world.bounds().center()));
}

TEST(Generators, ReachabilityUnrestrictedForRoamGames)
{
    const GameInfo &info = gameInfo(GameId::Viking);
    const VirtualWorld world = makeWorld(GameId::Viking, 42);
    EXPECT_FALSE(static_cast<bool>(makeReachability(info, world)));
}

TEST(Generators, GridSpeedConsistency)
{
    // A player at the game's typical speed crosses about one grid
    // point per 60 Hz tick (the paper's per-interval prefetch cadence).
    for (const GameInfo &info : allGames()) {
        const double per_tick = info.playerSpeed / 60.0;
        EXPECT_NEAR(per_tick, info.gridSpacing, info.gridSpacing * 0.6)
            << info.name;
    }
}

TEST(GeneratorsDeath, GameInfoUnknownIdPanics)
{
    EXPECT_DEATH(gameInfo(static_cast<GameId>(99)), "unknown");
}

} // namespace
} // namespace coterie::world::gen
