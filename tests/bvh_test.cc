/**
 * @file
 * Property tests for the BVH: closest-hit and disc queries must agree
 * exactly with brute force over randomized worlds and rays.
 */

#include <gtest/gtest.h>

#include <optional>

#include "geom/intersect.hh"
#include "support/rng.hh"
#include "world/bvh.hh"

namespace coterie::world {
namespace {

using geom::Aabb;
using geom::Hit;
using geom::Ray;
using geom::Vec2;
using geom::Vec3;

std::vector<WorldObject>
randomObjects(int n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<WorldObject> objects;
    for (int i = 0; i < n; ++i) {
        WorldObject obj;
        obj.id = static_cast<std::uint32_t>(i);
        const int kind = static_cast<int>(rng.uniformInt(0, 2));
        obj.position = {rng.uniform(-50, 50), rng.uniform(0, 10),
                        rng.uniform(-50, 50)};
        if (kind == 0) {
            obj.shape = Shape::Sphere;
            obj.dims = {rng.uniform(0.5, 3.0), 0, 0};
        } else if (kind == 1) {
            obj.shape = Shape::Box;
            obj.dims = {rng.uniform(0.5, 4.0), rng.uniform(0.5, 4.0),
                        rng.uniform(0.5, 4.0)};
        } else {
            obj.shape = Shape::CylinderY;
            obj.dims = {rng.uniform(0.3, 2.0), rng.uniform(1.0, 6.0), 0};
        }
        objects.push_back(obj);
    }
    return objects;
}

/** Brute-force closest hit for cross-checking. */
std::optional<std::pair<double, std::uint32_t>>
bruteClosest(const std::vector<WorldObject> &objects, const Ray &ray)
{
    std::optional<std::pair<double, std::uint32_t>> best;
    for (const WorldObject &obj : objects) {
        std::optional<double> t;
        switch (obj.shape) {
          case Shape::Sphere:
            t = geom::intersectSphere(ray, obj.position, obj.dims.x);
            break;
          case Shape::Box:
            t = geom::intersectBox(
                ray, Aabb{obj.position - obj.dims * 0.5,
                          obj.position + obj.dims * 0.5});
            break;
          case Shape::CylinderY:
            t = geom::intersectCylinderY(ray, obj.position, obj.dims.x,
                                         obj.dims.y);
            break;
        }
        if (t && (!best || *t < best->first))
            best = {{*t, obj.id}};
    }
    return best;
}

class BvhProperty : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BvhProperty, ClosestHitMatchesBruteForce)
{
    const auto objects = randomObjects(60, GetParam());
    const Bvh bvh(objects);
    Rng rng(GetParam() ^ 0xabc);
    for (int i = 0; i < 500; ++i) {
        Ray ray;
        ray.origin = {rng.uniform(-60, 60), rng.uniform(-5, 20),
                      rng.uniform(-60, 60)};
        ray.dir = Vec3{rng.normal(), rng.normal() * 0.3, rng.normal()}
                      .normalized();
        const Hit hit = bvh.closestHit(ray);
        const auto brute = bruteClosest(objects, ray);
        if (brute) {
            ASSERT_TRUE(hit.valid());
            EXPECT_NEAR(hit.t, brute->first, 1e-9);
            EXPECT_EQ(hit.objectId, brute->second);
        } else {
            EXPECT_FALSE(hit.valid());
        }
    }
}

TEST_P(BvhProperty, DiscQueryMatchesBruteForce)
{
    const auto objects = randomObjects(80, GetParam());
    const Bvh bvh(objects);
    Rng rng(GetParam() ^ 0xdef);
    for (int i = 0; i < 200; ++i) {
        const Vec2 center{rng.uniform(-60, 60), rng.uniform(-60, 60)};
        const double radius = rng.uniform(1.0, 30.0);
        auto got = bvh.queryDisc(center, radius);
        std::sort(got.begin(), got.end());

        std::vector<std::uint32_t> expected;
        const double r2 = radius * radius;
        for (const WorldObject &obj : objects) {
            const Aabb b = obj.bounds();
            const double dx = std::max(
                {b.lo.x - center.x, 0.0, center.x - b.hi.x});
            const double dz = std::max(
                {b.lo.z - center.y, 0.0, center.y - b.hi.z});
            if (dx * dx + dz * dz <= r2)
                expected.push_back(obj.id);
        }
        EXPECT_EQ(got, expected);
    }
}

/**
 * The tentpole invariant: the binned-SAH tree and the median-split tree
 * return the *same bits* for every ray — same t, same object, same
 * normal and point — because closest-hit with the deterministic
 * tie-break (min object id among min-t hits) is a property of the
 * object set, not of the tree shape or traversal order. Rendering is
 * therefore build-policy independent, which is what lets the renderer
 * switch to SAH without perturbing determinism_test.
 */
TEST_P(BvhProperty, SahMatchesMedianBitExact)
{
    const auto objects = randomObjects(120, GetParam() ^ 0x5a5a);
    const Bvh sah(objects, BvhBuildPolicy::BinnedSah);
    const Bvh median(objects, BvhBuildPolicy::Median);
    Rng rng(GetParam() ^ 0xfeed);
    for (int i = 0; i < 2000; ++i) {
        Ray ray;
        ray.origin = {rng.uniform(-60, 60), rng.uniform(-5, 20),
                      rng.uniform(-60, 60)};
        ray.dir = Vec3{rng.normal(), rng.normal() * 0.4, rng.normal()}
                      .normalized();
        if (i % 7 == 0)
            ray.tMax = rng.uniform(5.0, 80.0); // clipped layers too
        const Hit a = sah.closestHit(ray);
        const Hit b = median.closestHit(ray);
        ASSERT_EQ(a.valid(), b.valid());
        if (a.valid()) {
            EXPECT_EQ(a.t, b.t);
            EXPECT_EQ(a.objectId, b.objectId);
            EXPECT_EQ(a.normal.x, b.normal.x);
            EXPECT_EQ(a.normal.y, b.normal.y);
            EXPECT_EQ(a.normal.z, b.normal.z);
            EXPECT_EQ(a.point.x, b.point.x);
            EXPECT_EQ(a.point.y, b.point.y);
            EXPECT_EQ(a.point.z, b.point.z);
        }
        EXPECT_EQ(sah.anyHit(ray), median.anyHit(ray));
    }
}

/**
 * The preserved pre-overhaul traversal (bench_render's A/B baseline)
 * agrees with the ordered traversal on both tree shapes. Exact-t ties
 * between distinct objects do not occur in these random worlds, so
 * object ids must match too.
 */
TEST_P(BvhProperty, SeedBaselineTraversalAgrees)
{
    const auto objects = randomObjects(100, GetParam() ^ 0xbeef);
    const Bvh sah(objects, BvhBuildPolicy::BinnedSah);
    const Bvh median(objects, BvhBuildPolicy::Median);
    Rng rng(GetParam() ^ 0xcafe);
    for (int i = 0; i < 500; ++i) {
        Ray ray;
        ray.origin = {rng.uniform(-60, 60), rng.uniform(-5, 20),
                      rng.uniform(-60, 60)};
        ray.dir = Vec3{rng.normal(), rng.normal() * 0.3, rng.normal()}
                      .normalized();
        for (const Bvh *bvh : {&sah, &median}) {
            const Hit fast = bvh->closestHit(ray);
            const Hit base = bvh->closestHitSeedBaseline(ray);
            ASSERT_EQ(fast.valid(), base.valid());
            if (fast.valid()) {
                EXPECT_EQ(fast.t, base.t);
                EXPECT_EQ(fast.objectId, base.objectId);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BvhProperty,
                         testing::Values(1, 2, 3, 4, 5));

/** SAH binning degenerates to median when every centroid coincides. */
TEST(Bvh, SahHandlesCoincidentCenters)
{
    std::vector<WorldObject> objects;
    for (int i = 0; i < 37; ++i) {
        WorldObject obj;
        obj.id = static_cast<std::uint32_t>(i);
        obj.shape = Shape::Sphere;
        obj.position = {3.0, 1.0, -2.0}; // all identical
        obj.dims = {0.5 + 0.01 * i, 0, 0};
        objects.push_back(obj);
    }
    const Bvh bvh(objects, BvhBuildPolicy::BinnedSah);
    Ray ray;
    ray.origin = {-20, 1, -2};
    ray.dir = {1, 0, 0};
    const Hit hit = bvh.closestHit(ray);
    ASSERT_TRUE(hit.valid());
    // Largest sphere's surface is nearest; ties impossible here.
    EXPECT_EQ(hit.objectId, 36u);
    EXPECT_EQ(bvh.queryDisc({3.0, -2.0}, 1.0).size(), objects.size());
}

TEST(Bvh, SahSingleObjectAndEmpty)
{
    const Bvh empty({}, BvhBuildPolicy::BinnedSah);
    Ray ray;
    ray.origin = {0, 1, 0};
    ray.dir = {1, 0, 0};
    EXPECT_FALSE(empty.closestHit(ray).valid());

    std::vector<WorldObject> one;
    WorldObject obj;
    obj.shape = Shape::Sphere;
    obj.position = {6, 1, 0};
    obj.dims = {1.0, 0, 0};
    one.push_back(obj);
    const Bvh bvh(one, BvhBuildPolicy::BinnedSah);
    const Hit hit = bvh.closestHit(ray);
    ASSERT_TRUE(hit.valid());
    EXPECT_NEAR(hit.t, 5.0, 1e-12);
}

/**
 * Overlapping identical shapes: the tie-break must pick the smallest
 * object id regardless of build policy.
 */
TEST(Bvh, TieBreaksOnObjectIdAcrossPolicies)
{
    std::vector<WorldObject> objects;
    for (int i = 0; i < 6; ++i) {
        WorldObject obj;
        obj.id = static_cast<std::uint32_t>(i);
        obj.shape = Shape::Box;
        obj.position = {10, 1, 0};
        obj.dims = {2, 2, 2};
        objects.push_back(obj);
    }
    // Shuffle insertion order by reversing ids' positions in the vector
    // (ids stay attached to the objects).
    std::reverse(objects.begin(), objects.end());
    Ray ray;
    ray.origin = {0, 1, 0};
    ray.dir = {1, 0, 0};
    for (const auto policy :
         {BvhBuildPolicy::Median, BvhBuildPolicy::BinnedSah}) {
        const Bvh bvh(objects, policy);
        const Hit hit = bvh.closestHit(ray);
        ASSERT_TRUE(hit.valid());
        EXPECT_EQ(hit.objectId, 0u);
    }
}

/** The callback overload yields exactly the vector overload's order. */
TEST(Bvh, QueryDiscCallbackMatchesVector)
{
    const auto objects = randomObjects(90, 77);
    const Bvh bvh(objects);
    Rng rng(78);
    for (int i = 0; i < 100; ++i) {
        const Vec2 center{rng.uniform(-60, 60), rng.uniform(-60, 60)};
        const double radius = rng.uniform(1.0, 40.0);
        const auto vec = bvh.queryDisc(center, radius);
        std::vector<std::uint32_t> cb;
        bvh.queryDisc(center, radius,
                      [&](std::uint32_t id) { cb.push_back(id); });
        EXPECT_EQ(cb, vec);
    }
}

TEST(Bvh, EmptyWorld)
{
    const std::vector<WorldObject> none;
    const Bvh bvh(none);
    Ray ray;
    ray.origin = {0, 0, 0};
    ray.dir = {1, 0, 0};
    EXPECT_FALSE(bvh.closestHit(ray).valid());
    EXPECT_FALSE(bvh.anyHit(ray));
    EXPECT_TRUE(bvh.queryDisc({0, 0}, 100.0).empty());
}

TEST(Bvh, AnyHitAgreesWithClosestHit)
{
    const auto objects = randomObjects(40, 9);
    const Bvh bvh(objects);
    Rng rng(10);
    for (int i = 0; i < 300; ++i) {
        Ray ray;
        ray.origin = {rng.uniform(-60, 60), rng.uniform(-5, 15),
                      rng.uniform(-60, 60)};
        ray.dir = Vec3{rng.normal(), rng.normal() * 0.2, rng.normal()}
                      .normalized();
        EXPECT_EQ(bvh.anyHit(ray), bvh.closestHit(ray).valid());
    }
}

TEST_P(BvhProperty, PacketLanesMatchScalarClosestHit)
{
    // The packet traversal must be bit-identical per lane to the
    // scalar traversal on that lane's ray — same t, id, point, and
    // normal — including lanes that miss and packets whose lanes point
    // into different octants (which defeats lane-0's ordered descent
    // for the other lanes; the per-lane prune + tie-break rule keeps
    // the result traversal-order independent).
    const auto objects = randomObjects(60, GetParam());
    const Bvh bvh(objects);
    Rng rng(GetParam() ^ 0x9a7);
    for (int i = 0; i < 200; ++i) {
        const Vec3 origin{rng.uniform(-60, 60), rng.uniform(-5, 20),
                          rng.uniform(-60, 60)};
        double dx[geom::RayPacket::kLanes], dy[geom::RayPacket::kLanes],
            dz[geom::RayPacket::kLanes];
        const bool mixed = i % 3 == 0;
        for (int l = 0; l < geom::RayPacket::kLanes; ++l) {
            Vec3 dir{rng.normal(), rng.normal() * 0.3, rng.normal()};
            // Every third packet scatters its lanes across octants
            // instead of the coherent row-batch shape.
            if (mixed && l % 2 == 1)
                dir = dir * -1.0;
            dir = dir.normalized();
            dx[l] = dir.x;
            dy[l] = dir.y;
            dz[l] = dir.z;
        }
        // Alternate the whole-scene interval with a depth-layer-style
        // narrow clip window.
        const double t_min = i % 4 == 0 ? 5.0 : 1e-4;
        const double t_max = i % 4 == 0 ? 40.0 : 1e30;
        const geom::RayPacket pack =
            geom::makeRayPacket(origin, dx, dy, dz, t_min, t_max);
        Hit packet[geom::RayPacket::kLanes];
        bvh.closestHitPacket(pack, packet);
        for (int l = 0; l < geom::RayPacket::kLanes; ++l) {
            const Hit scalar = bvh.closestHit(pack.lane(l));
            EXPECT_EQ(packet[l].valid(), scalar.valid());
            EXPECT_EQ(packet[l].objectId, scalar.objectId);
            EXPECT_EQ(packet[l].t, scalar.t);
            if (scalar.valid()) {
                EXPECT_EQ(packet[l].point, scalar.point);
                EXPECT_EQ(packet[l].normal, scalar.normal);
            }
        }
    }
}

TEST(Bvh, PacketOnEmptyWorldMissesAllLanes)
{
    const Bvh bvh(std::vector<WorldObject>{});
    double dx[geom::RayPacket::kLanes] = {1, 0, 0, -1};
    double dy[geom::RayPacket::kLanes] = {0, 1, 0, 0};
    double dz[geom::RayPacket::kLanes] = {0, 0, 1, 0};
    const geom::RayPacket pack =
        geom::makeRayPacket({0, 0, 0}, dx, dy, dz, 1e-4, 1e30);
    Hit out[geom::RayPacket::kLanes];
    bvh.closestHitPacket(pack, out);
    for (int l = 0; l < geom::RayPacket::kLanes; ++l) {
        EXPECT_FALSE(out[l].valid());
        EXPECT_EQ(out[l].t, pack.tMax);
    }
}

TEST(Bvh, RespectsRayInterval)
{
    std::vector<WorldObject> objects;
    WorldObject obj;
    obj.shape = Shape::Sphere;
    obj.position = {10, 0, 0};
    obj.dims = {1.0, 0, 0};
    objects.push_back(obj);
    const Bvh bvh(objects);
    Ray ray;
    ray.origin = {0, 0, 0};
    ray.dir = {1, 0, 0};
    ray.tMax = 5.0; // sphere is at t=9
    EXPECT_FALSE(bvh.closestHit(ray).valid());
    ray.tMax = 1e30;
    ray.tMin = 12.0; // past the sphere
    EXPECT_FALSE(bvh.closestHit(ray).valid());
    ray.tMin = 1e-4;
    EXPECT_TRUE(bvh.closestHit(ray).valid());
}

} // namespace
} // namespace coterie::world
