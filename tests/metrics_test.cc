/**
 * @file
 * Tests for the extra image metrics: MSE/PSNR, the per-tile SSIM map,
 * and PPM read/write round trips.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "image/metrics.hh"
#include "support/rng.hh"

namespace coterie::image {
namespace {

Image
noiseImage(int w, int h, std::uint64_t seed)
{
    Image img(w, h);
    Rng rng(seed);
    for (auto &p : img.pixels())
        p = {static_cast<std::uint8_t>(rng.uniformInt(0, 255)),
             static_cast<std::uint8_t>(rng.uniformInt(0, 255)),
             static_cast<std::uint8_t>(rng.uniformInt(0, 255))};
    return img;
}

TEST(Metrics, MseZeroForIdentical)
{
    const Image img = noiseImage(32, 32, 1);
    EXPECT_DOUBLE_EQ(mse(img, img), 0.0);
    EXPECT_TRUE(std::isinf(psnr(img, img)));
}

TEST(Metrics, MseOfKnownLumaShift)
{
    const Image a(16, 16, Rgb{100, 100, 100});
    const Image b(16, 16, Rgb{110, 110, 110});
    // Luma shift of exactly 10 -> MSE 100.
    EXPECT_NEAR(mse(a, b), 100.0, 1e-6);
    EXPECT_NEAR(psnr(a, b), 10.0 * std::log10(255.0 * 255.0 / 100.0),
                1e-6);
}

TEST(Metrics, PsnrDecreasesWithNoise)
{
    const Image base = noiseImage(64, 64, 2);
    Image lightly = base, heavily = base;
    Rng rng(3);
    for (auto &p : lightly.pixels())
        p.r = static_cast<std::uint8_t>(
            std::clamp<int>(p.r + rng.uniformInt(-5, 5), 0, 255));
    for (auto &p : heavily.pixels())
        p.r = static_cast<std::uint8_t>(
            std::clamp<int>(p.r + rng.uniformInt(-60, 60), 0, 255));
    EXPECT_GT(psnr(base, lightly), psnr(base, heavily));
}

TEST(Metrics, SsimMapLocalisesDamage)
{
    Image a = noiseImage(64, 64, 4);
    Image b = a;
    // Destroy only the top-left 16x16 tile.
    Rng rng(5);
    for (int y = 0; y < 16; ++y)
        for (int x = 0; x < 16; ++x)
            b.at(x, y) = {static_cast<std::uint8_t>(
                              rng.uniformInt(0, 255)),
                          0, 0};
    const SsimMap map = ssimMap(a, b, 16);
    ASSERT_EQ(map.tilesX, 4);
    ASSERT_EQ(map.tilesY, 4);
    EXPECT_LT(map.at(0, 0), 0.5);
    EXPECT_GT(map.at(3, 3), 0.99);
    EXPECT_LT(map.min(), 0.5);
    EXPECT_GT(map.mean(), map.min());
}

TEST(Metrics, PpmRoundTrip)
{
    const Image img = noiseImage(23, 17, 6);
    const std::string path = testing::TempDir() + "/coterie_rt.ppm";
    ASSERT_TRUE(img.writePpm(path));
    const Image back = readPpm(path);
    std::remove(path.c_str());
    ASSERT_FALSE(back.empty());
    EXPECT_EQ(back, img);
}

TEST(Metrics, ReadPpmRejectsGarbage)
{
    EXPECT_TRUE(readPpm("/nonexistent/x.ppm").empty());
    const std::string path = testing::TempDir() + "/coterie_bad.ppm";
    std::FILE *f = std::fopen(path.c_str(), "w");
    std::fprintf(f, "P3 2 2 255\n0 0 0\n");
    std::fclose(f);
    EXPECT_TRUE(readPpm(path).empty());
    std::remove(path.c_str());
}

} // namespace
} // namespace coterie::image
