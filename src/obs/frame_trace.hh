/**
 * @file
 * Frame-lifecycle causal tracing: every frame a client displays (and
 * every fetch that feeds one) yields one causal record tracing the
 * request end to end through the pipeline.
 *
 * A `FrameTraceContext` is minted at the client's frame request and
 * travels by value with the work: `Prefetcher` cover-set misses,
 * `net::Channel` transfers, `FrameServer` fan-out and backlog,
 * `PanoramaRenderCache` lookups (including single-flight joins), the
 * codec, delivery, and merge/display. Each stage stamps a `Hop` — a
 * sim-time interval plus a wall-clock timestamp — into the record via
 * `FrameTracer::hop()`. When the frame completes, the tracer computes
 * the critical path (the hop family with the largest total sim-time;
 * a frame dominated by `StallWait` descends into its linked fetch
 * record, yielding paths like `"stall_wait/transfer"`), scores the
 * frame against the deadline budget (`DeadlineTracker`), and emits
 * the flight-recorder events live.
 *
 * `finish()` (end of a session run) exports the records as sim-
 * timeline events into `TraceRecorder` (pid 2, one track per client —
 * `trace_report --frames` consumes these from a live trace or a
 * flight dump interchangeably) and publishes the SLO summary to
 * `SloRegistry::global()` under the session label.
 *
 * Determinism: the tracer is observe-only and all exported values are
 * sim-time derived. Records are created and mutated exclusively from
 * the serial event loop; the mutex exists so concurrent readers
 * (snapshots) are safe, not to order writers.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/slo.hh"
#include "support/thread_annotations.hh"

namespace coterie::obs {

/** One causal stage of a frame's lifecycle. */
enum class Hop : std::uint8_t {
    Request,     ///< client issues an on-demand frame request
    Prefetch,    ///< prefetcher issues a cover-set miss fetch
    PipeWait,    ///< queued behind earlier requests on the client pipe
    Backlog,     ///< queued in the server fan-out backlog
    Transfer,    ///< on the wire (one hop per retry attempt)
    CacheLookup, ///< panorama cache hit
    CacheJoin,   ///< joined an in-flight render (single-flight)
    Render,      ///< server-side panorama render
    Codec,       ///< encode on the server
    Decode,      ///< decode on the client
    Sync,        ///< frame-interval sync wait
    StallWait,   ///< client stalled waiting for a delivery
    Merge,       ///< merge near/far layers for display
    Display,     ///< display scan-out
};

/** Number of Hop enumerators (array sizing). */
inline constexpr std::size_t kHopCount =
    static_cast<std::size_t>(Hop::Display) + 1;

/** Lower-case hop name: "request", "stall_wait", ... */
const char *hopName(Hop hop);

/** Trace-event name: "frame.request", "frame.stall_wait", ... (static
 *  literals, safe to store in flight-recorder events). */
const char *hopEventName(Hop hop);

class FrameTracer;

/**
 * The causal identity that travels with a frame's work: which tracer
 * owns the record, which session/client/frame it is, and how many
 * hops have been stamped so far. Cheap to copy; a default-constructed
 * (or tracer-less) context is inert and every operation on it is a
 * no-op, so un-traced call paths need no branches.
 */
struct FrameTraceContext
{
    FrameTracer *tracer = nullptr;
    std::uint32_t session = 0;
    std::uint16_t client = 0;
    std::uint64_t frame = 0;   ///< frame number (or fetch sequence)
    std::uint32_t recordId = 0;
    std::uint8_t hops = 0;     ///< hop counter (stamped so far)

    bool active() const { return tracer != nullptr; }

    /** Stamp a hop spanning [beginMs, endMs] sim-time. */
    void hop(Hop h, double beginMs, double endMs);

    /**
     * Stamp a hop that is wall-clock work inside one sim instant
     * (server-side cache lookups, single-flight joins, actual
     * renders): no sim-time attribution, so it never enters the
     * sim-side critical path, but the wall interval is kept for
     * forensics.
     */
    void hopWall(Hop h, std::uint64_t wallBeginNs,
                 std::uint64_t wallEndNs);
};

/**
 * Per-session-run collector of causal frame records. One instance per
 * `runSplitSystem` invocation; `label` keys the published SLO summary
 * (`<game>/<N>p/<system>`).
 */
class FrameTracer
{
  public:
    /** What a record traces. */
    enum class Kind : std::uint8_t {
        Fetch, ///< one frame fetch: request -> delivery
        Frame, ///< one displayed frame: schedule -> display
    };

    struct HopRecord
    {
        Hop hop;
        double simBeginMs; ///< < 0 -> wall-only hop (hopWall)
        double simDurMs;
        std::uint64_t wallNs;    ///< wall clock at the stamp (or begin)
        std::uint64_t wallDurNs; ///< wall duration (hopWall only)
    };

    struct FrameRecord
    {
        Kind kind;
        std::uint16_t client;
        std::uint64_t frame;
        double mintedMs;
        double doneMs = -1.0;
        double latencyMs = 0.0;
        bool completed = false;
        bool aborted = false;
        std::uint32_t link = 0; ///< 1 + linked fetch recordId; 0 none
        std::string criticalPath;
        std::vector<HopRecord> hops;
    };

    FrameTracer(std::string label, double budgetMs = kFrameBudgetMs);

    FrameTracer(const FrameTracer &) = delete;
    FrameTracer &operator=(const FrameTracer &) = delete;

    const std::string &label() const { return label_; }

    /** Mint a new causal record; the returned context travels with
     *  the work. @p nowMs is the sim time of the originating event. */
    FrameTraceContext mint(Kind kind, std::uint16_t client,
                           std::uint64_t frame, double nowMs);

    /** Stamp a hop into @p ctx's record (sim interval + wall stamp);
     *  increments the context's hop counter. No-op when inert. */
    void hop(FrameTraceContext &ctx, Hop h, double beginMs,
             double endMs);

    /** Stamp a wall-only hop (see FrameTraceContext::hopWall). */
    void hopWall(FrameTraceContext &ctx, Hop h,
                 std::uint64_t wallBeginNs, std::uint64_t wallEndNs);

    /** Link a displayed frame to the fetch whose delivery unblocked
     *  it, so critical paths can descend through the stall. */
    void link(const FrameTraceContext &frameCtx,
              const FrameTraceContext &fetchCtx);

    /**
     * Complete the record at sim time @p doneMs: latency becomes
     * `doneMs - mintedMs`, the critical path is computed, Frame
     * records are scored against the deadline, and flight-recorder
     * events are emitted.
     */
    void complete(FrameTraceContext &ctx, double doneMs);

    /** Mark the record abandoned (expired fetch, disconnect). */
    void abort(FrameTraceContext &ctx, double nowMs);

    /**
     * End of run: export all records as sim-timeline frame events
     * into `TraceRecorder::global()` (when recording) and publish the
     * SLO summary to `SloRegistry::global()` under the label.
     */
    void finish();

    /** The deadline scoreboard (valid for the tracer's lifetime). */
    const DeadlineTracker &deadlines() const { return deadlines_; }

    /** Completed-record lookup for tests; nullptr when absent. */
    const FrameRecord *find(Kind kind, std::uint16_t client,
                            std::uint64_t frame) const;

    std::size_t recordCount() const;

  private:
    const FrameRecord *findLocked(Kind kind, std::uint16_t client,
                                  std::uint64_t frame) const
        COTERIE_REQUIRES(mutex_);
    std::string criticalPathLocked(const FrameRecord &rec) const
        COTERIE_REQUIRES(mutex_);

    std::string label_;
    const char *flightLabel_; ///< intern()-ed copy for ring events
    std::uint32_t sessionId_;

    mutable support::Mutex mutex_{"FrameTracer::mutex_"};
    // deque: records must not move — contexts hold indices and
    // completion touches linked records. Grows one record per causal
    // hop for the whole session (exported+cleared at finish), which is
    // the tracer's job, not a leak.
    std::deque<FrameRecord> records_ // lint:allow(unbounded-queue)
        COTERIE_GUARDED_BY(mutex_);
    DeadlineTracker deadlines_ COTERIE_GUARDED_BY(mutex_);
};

} // namespace coterie::obs
