/**
 * @file
 * Minimal JSON value type: parse, build, serialize.
 *
 * The telemetry layer needs three things no other module provided:
 * emitting Chrome `trace_event` files and metrics snapshots with
 * correct escaping, re-reading those files in `tools/trace_report`,
 * and round-trip testing the exported format. This is a deliberately
 * small, dependency-free implementation — objects preserve insertion
 * order (so serialization is deterministic and diffs are stable), and
 * numbers are doubles printed with enough digits to round-trip.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace coterie::obs {

/** A JSON value (null / bool / number / string / array / object). */
class Json
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Json() : type_(Type::Null) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double n) : type_(Type::Number), num_(n) {}
    Json(int n) : type_(Type::Number), num_(n) {}
    Json(std::int64_t n)
        : type_(Type::Number), num_(static_cast<double>(n))
    {
    }
    Json(std::uint64_t n)
        : type_(Type::Number), num_(static_cast<double>(n))
    {
    }
    Json(const char *s) : type_(Type::String), str_(s) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}

    static Json array() { return Json(Type::Array); }
    static Json object() { return Json(Type::Object); }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    bool asBool(bool fallback = false) const
    {
        return type_ == Type::Bool ? bool_ : fallback;
    }
    double asNumber(double fallback = 0.0) const
    {
        return type_ == Type::Number ? num_ : fallback;
    }
    const std::string &asString() const { return str_; }

    /** Array elements (empty unless isArray). */
    const std::vector<Json> &items() const { return items_; }
    /** Object members in insertion order (empty unless isObject). */
    const std::vector<std::pair<std::string, Json>> &members() const
    {
        return members_;
    }

    /** Object lookup; returns a shared null value when absent. */
    const Json &at(const std::string &key) const;
    bool contains(const std::string &key) const;

    /** Append to an array (converts a Null value into an array). */
    Json &push(Json value);
    /** Set an object member (converts a Null value into an object). */
    Json &set(const std::string &key, Json value);

    /**
     * Serialize. @p indent < 0 -> compact single line; otherwise
     * pretty-print with that many spaces per level.
     */
    std::string dump(int indent = -1) const;

    /**
     * Parse a JSON document. On failure returns Null and, when
     * @p error is given, stores a position-annotated message.
     */
    static Json parse(const std::string &text,
                      std::string *error = nullptr);

  private:
    explicit Json(Type t) : type_(t) {}

    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Json> items_;
    std::vector<std::pair<std::string, Json>> members_;
};

} // namespace coterie::obs
