#include "obs/flight.hh"

#if COTERIE_FLIGHT_ENABLED

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <vector>

#include "obs/clock.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "support/logging.hh"
#include "support/thread_annotations.hh"

namespace coterie::obs::flight {
namespace {

/**
 * One per-thread ring. Single writer (the owning thread); readers
 * snapshot `head` with acquire and walk backwards. The slot being
 * written while a dump reads it may be torn — dump() drops any event
 * with a null name, which every half-written slot has until the final
 * store publishes it.
 */
struct Ring
{
    std::atomic<std::uint64_t> head{0}; ///< events ever written
    int slot = 0;                       ///< obs thread slot, dump tid
    FlightEvent events[kRingCapacity];
};

struct Registry
{
    support::Mutex mutex{"flight::Registry::mutex"};
    std::vector<Ring *> rings COTERIE_GUARDED_BY(mutex);
    std::set<std::string> internPool COTERIE_GUARDED_BY(mutex);
};

Registry &
registry()
{
    // Leaked: rings may be written (and the panic hook may dump)
    // during static destruction.
    static Registry *r = new Registry();
    return *r;
}

// Raw pointer on purpose: trivially-destructible TLS, so threads
// exiting during process teardown never run user code.
thread_local Ring *t_ring = nullptr;

Ring &
ring()
{
    if (t_ring == nullptr) {
        auto *r = new Ring(); // leaked alongside the registry
        r->slot = threadSlot();
        {
            Registry &reg = registry();
            support::MutexLock lock(reg.mutex);
            reg.rings.push_back(r);
        }
        t_ring = r;
        installPanicDump();
    }
    return *t_ring;
}

void
write(const FlightEvent &e)
{
    Ring &r = ring();
    const std::uint64_t idx = r.head.load(std::memory_order_relaxed);
    r.events[idx % kRingCapacity] = e;
    r.head.store(idx + 1, std::memory_order_release);
}

void
panicDump()
{
    const std::string path = defaultDumpPath();
    // The process is aborting: write straight to stderr, the logging
    // machinery may be the thing that panicked.
    std::fprintf(stderr, // lint:allow(no-direct-console-io)
                 "[flight] dumping %zu events to %s\n", eventCount(),
                 path.c_str());
    dump(path);
}

} // namespace

void
recordSpan(const char *name, const char *category,
           std::uint64_t beginNs, std::uint64_t endNs, double simMs)
{
    FlightEvent e;
    e.kind = EventKind::Span;
    e.name = name;
    e.category = category;
    e.wallBeginNs = beginNs;
    e.wallDurNs = endNs >= beginNs ? endNs - beginNs : 0;
    e.simBeginMs = simMs;
    write(e);
}

void
recordFrameHop(const char *name, const char *label,
               std::uint32_t session, std::uint16_t client,
               std::uint64_t frame, double simBeginMs, double simDurMs,
               std::uint64_t wallBeginNs, std::uint64_t wallDurNs)
{
    FlightEvent e;
    e.kind = EventKind::FrameHop;
    e.name = name;
    e.category = "frame";
    e.label = label;
    e.session = session;
    e.client = client;
    e.frame = frame;
    e.simBeginMs = simBeginMs;
    e.simDurMs = simDurMs;
    e.wallBeginNs = wallBeginNs;
    e.wallDurNs = wallDurNs;
    write(e);
}

void
recordFrameDone(const char *label, std::uint32_t session,
                std::uint16_t client, std::uint64_t frame, double simMs,
                double latencyMs, double budgetMs,
                const char *criticalPath)
{
    FlightEvent e;
    e.kind = EventKind::FrameDone;
    e.name = "frame.done";
    e.category = "frame";
    e.label = label;
    e.session = session;
    e.client = client;
    e.frame = frame;
    e.simBeginMs = simMs;
    e.value = latencyMs;
    e.value2 = budgetMs;
    e.critical = criticalPath;
    write(e);
}

void
recordInstant(const char *name, const char *category, double simMs)
{
    FlightEvent e;
    e.kind = EventKind::Instant;
    e.name = name;
    e.category = category;
    e.wallBeginNs = monotonicNowNs();
    e.simBeginMs = simMs;
    write(e);
}

const char *
intern(const std::string &s)
{
    Registry &reg = registry();
    support::MutexLock lock(reg.mutex);
    return reg.internPool.insert(s).first->c_str();
}

std::size_t
eventCount()
{
    std::vector<Ring *> rings;
    {
        Registry &reg = registry();
        support::MutexLock lock(reg.mutex);
        rings = reg.rings;
    }
    std::size_t total = 0;
    for (const Ring *r : rings) {
        const std::uint64_t head =
            r->head.load(std::memory_order_acquire);
        total += head < kRingCapacity ? head : kRingCapacity;
    }
    return total;
}

bool
dump(const std::string &path)
{
    std::vector<Ring *> rings;
    {
        Registry &reg = registry();
        support::MutexLock lock(reg.mutex);
        rings = reg.rings;
    }

    // Wall timestamps are exported relative to the earliest event so
    // the dump lines up at t=0 like a TraceRecorder export.
    std::uint64_t epochNs = UINT64_MAX;
    for (const Ring *r : rings) {
        const std::uint64_t head =
            r->head.load(std::memory_order_acquire);
        const std::uint64_t count =
            head < kRingCapacity ? head : kRingCapacity;
        for (std::uint64_t i = head - count; i < head; ++i) {
            const FlightEvent &e = r->events[i % kRingCapacity];
            if (e.name != nullptr && e.wallBeginNs > 0)
                epochNs = std::min(epochNs, e.wallBeginNs);
        }
    }
    if (epochNs == UINT64_MAX)
        epochNs = 0;
    const auto relUs = [epochNs](std::uint64_t ns) {
        return ns >= epochNs
                   ? static_cast<double>(ns - epochNs) / 1000.0
                   : 0.0;
    };

    Json traceEvents = Json::array();

    // Process/thread metadata: pid 1 = wall-clock spans by obs thread
    // slot, pid 2 = sim-timeline frame events by client id (the same
    // layout TraceRecorder uses, so trace_report and Perfetto treat a
    // flight dump and a live trace identically).
    {
        Json args = Json::object();
        args.set("name", Json("wall (flight)"));
        Json m = Json::object();
        m.set("ph", Json("M"));
        m.set("name", Json("process_name"));
        m.set("pid", Json(1));
        m.set("args", std::move(args));
        traceEvents.push(std::move(m));
    }
    {
        Json args = Json::object();
        args.set("name", Json("frames (sim)"));
        Json m = Json::object();
        m.set("ph", Json("M"));
        m.set("name", Json("process_name"));
        m.set("pid", Json(2));
        m.set("args", std::move(args));
        traceEvents.push(std::move(m));
    }
    for (const Ring *r : rings) {
        Json args = Json::object();
        args.set("name", Json(r->slot == 0
                                  ? std::string("main/slot0")
                                  : "slot" + std::to_string(r->slot)));
        Json m = Json::object();
        m.set("ph", Json("M"));
        m.set("name", Json("thread_name"));
        m.set("pid", Json(1));
        m.set("tid", Json(r->slot));
        m.set("args", std::move(args));
        traceEvents.push(std::move(m));
    }

    for (const Ring *r : rings) {
        const std::uint64_t head =
            r->head.load(std::memory_order_acquire);
        const std::uint64_t count =
            head < kRingCapacity ? head : kRingCapacity;
        for (std::uint64_t i = head - count; i < head; ++i) {
            const FlightEvent &e = r->events[i % kRingCapacity];
            if (e.name == nullptr) // unwritten or torn slot
                continue;
            Json j = Json::object();
            switch (e.kind) {
            case EventKind::Span: {
                j.set("ph", Json("X"));
                j.set("name", Json(e.name));
                j.set("cat",
                      Json(e.category ? e.category : "span"));
                j.set("pid", Json(1));
                j.set("tid", Json(r->slot));
                j.set("ts", Json(relUs(e.wallBeginNs)));
                j.set("dur",
                      Json(static_cast<double>(e.wallDurNs) / 1000.0));
                if (e.simBeginMs >= 0.0) {
                    Json args = Json::object();
                    args.set("sim_ms", Json(e.simBeginMs));
                    j.set("args", std::move(args));
                }
                break;
            }
            case EventKind::FrameHop: {
                j.set("ph", Json("X"));
                j.set("name", Json(e.name));
                j.set("cat", Json("frame"));
                // Wall-only hops (sim time unknown: cache lookups,
                // joins, renders inside one sim instant) render on the
                // wall timeline instead of the sim-frame timeline.
                const bool wallOnly = e.simBeginMs < 0.0;
                j.set("pid", Json(wallOnly ? 1 : 2));
                j.set("tid", Json(wallOnly
                                      ? r->slot
                                      : static_cast<int>(e.client)));
                if (wallOnly) {
                    j.set("ts", Json(relUs(e.wallBeginNs)));
                    j.set("dur",
                          Json(static_cast<double>(e.wallDurNs) /
                               1000.0));
                } else {
                    j.set("ts", Json(e.simBeginMs * 1000.0));
                    j.set("dur", Json(e.simDurMs * 1000.0));
                }
                Json args = Json::object();
                args.set("label", Json(e.label ? e.label : ""));
                args.set("client",
                         Json(static_cast<int>(e.client)));
                args.set("frame", Json(e.frame));
                if (e.wallDurNs > 0)
                    args.set("wall_us",
                             Json(static_cast<double>(e.wallDurNs) /
                                  1000.0));
                j.set("args", std::move(args));
                break;
            }
            case EventKind::FrameDone: {
                j.set("ph", Json("i"));
                j.set("name", Json("frame.done"));
                j.set("cat", Json("frame"));
                j.set("pid", Json(2));
                j.set("tid", Json(static_cast<int>(e.client)));
                j.set("ts", Json(e.simBeginMs * 1000.0));
                j.set("s", Json("t"));
                Json args = Json::object();
                args.set("label", Json(e.label ? e.label : ""));
                args.set("client",
                         Json(static_cast<int>(e.client)));
                args.set("frame", Json(e.frame));
                args.set("latency_ms", Json(e.value));
                args.set("budget_ms", Json(e.value2));
                args.set("miss", Json(e.value > e.value2));
                args.set("critical_path",
                         Json(e.critical ? e.critical : ""));
                j.set("args", std::move(args));
                break;
            }
            case EventKind::Instant: {
                j.set("ph", Json("i"));
                j.set("name", Json(e.name));
                j.set("cat",
                      Json(e.category ? e.category : "flight"));
                j.set("pid", Json(1));
                j.set("tid", Json(r->slot));
                j.set("ts", Json(relUs(e.wallBeginNs)));
                j.set("s", Json("t"));
                if (e.simBeginMs >= 0.0) {
                    Json args = Json::object();
                    args.set("sim_ms", Json(e.simBeginMs));
                    j.set("args", std::move(args));
                }
                break;
            }
            }
            traceEvents.push(std::move(j));
        }
    }

    Json out = Json::object();
    out.set("displayTimeUnit", Json("ms"));
    out.set("traceEvents", std::move(traceEvents));

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const std::string text = out.dump(1);
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    std::fclose(f);
    return ok;
}

std::string
defaultDumpPath()
{
    // Dump-path config only — never feeds simulation state.
    if (const char *env = // lint:allow(no-wallclock-rng)
        std::getenv("COTERIE_FLIGHT_DUMP"))
        if (*env != '\0')
            return env;
    return "coterie.flight.json";
}

void
installPanicDump()
{
    static std::atomic<bool> installed{false};
    if (!installed.exchange(true, std::memory_order_acq_rel))
        setPanicHook(&panicDump);
}

void
dumpOnEpisodeBoundary()
{
    // Opt-in trigger only — never feeds simulation state.
    if (std::getenv( // lint:allow(no-wallclock-rng)
            "COTERIE_FLIGHT_DUMP") != nullptr)
        dump(defaultDumpPath());
}

} // namespace coterie::obs::flight

#endif // COTERIE_FLIGHT_ENABLED
