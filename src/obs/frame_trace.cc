#include "obs/frame_trace.hh"

#include <array>
#include <atomic>

#include "obs/clock.hh"
#include "obs/flight.hh"
#include "obs/trace.hh"
#include "support/logging.hh"

namespace coterie::obs {

const char *
hopName(Hop hop)
{
    switch (hop) {
      case Hop::Request:     return "request";
      case Hop::Prefetch:    return "prefetch";
      case Hop::PipeWait:    return "pipe_wait";
      case Hop::Backlog:     return "backlog";
      case Hop::Transfer:    return "transfer";
      case Hop::CacheLookup: return "cache_lookup";
      case Hop::CacheJoin:   return "cache_join";
      case Hop::Render:      return "render";
      case Hop::Codec:       return "codec";
      case Hop::Decode:      return "decode";
      case Hop::Sync:        return "sync";
      case Hop::StallWait:   return "stall_wait";
      case Hop::Merge:       return "merge";
      case Hop::Display:     return "display";
    }
    return "?";
}

const char *
hopEventName(Hop hop)
{
    switch (hop) {
      case Hop::Request:     return "frame.request";
      case Hop::Prefetch:    return "frame.prefetch";
      case Hop::PipeWait:    return "frame.pipe_wait";
      case Hop::Backlog:     return "frame.backlog";
      case Hop::Transfer:    return "frame.transfer";
      case Hop::CacheLookup: return "frame.cache_lookup";
      case Hop::CacheJoin:   return "frame.cache_join";
      case Hop::Render:      return "frame.render";
      case Hop::Codec:       return "frame.codec";
      case Hop::Decode:      return "frame.decode";
      case Hop::Sync:        return "frame.sync";
      case Hop::StallWait:   return "frame.stall_wait";
      case Hop::Merge:       return "frame.merge";
      case Hop::Display:     return "frame.display";
    }
    return "frame.?";
}

void
FrameTraceContext::hop(Hop h, double beginMs, double endMs)
{
    if (tracer != nullptr)
        tracer->hop(*this, h, beginMs, endMs);
}

void
FrameTraceContext::hopWall(Hop h, std::uint64_t wallBeginNs,
                           std::uint64_t wallEndNs)
{
    if (tracer != nullptr)
        tracer->hopWall(*this, h, wallBeginNs, wallEndNs);
}

FrameTracer::FrameTracer(std::string label, double budgetMs)
    : label_(std::move(label)), flightLabel_(flight::intern(label_)),
      deadlines_(budgetMs)
{
    // Distinguishes session runs in flight dumps (forensics only;
    // never exported into deterministic sim-side artifacts).
    static std::atomic<std::uint32_t> nextSession{1};
    sessionId_ = nextSession.fetch_add(1, std::memory_order_relaxed);
}

FrameTraceContext
FrameTracer::mint(Kind kind, std::uint16_t client, std::uint64_t frame,
                  double nowMs)
{
    FrameTraceContext ctx;
    ctx.tracer = this;
    ctx.session = sessionId_;
    ctx.client = client;
    ctx.frame = frame;

    support::MutexLock lock(mutex_);
    ctx.recordId = static_cast<std::uint32_t>(records_.size());
    FrameRecord rec;
    rec.kind = kind;
    rec.client = client;
    rec.frame = frame;
    rec.mintedMs = nowMs;
    records_.push_back(std::move(rec));
    return ctx;
}

void
FrameTracer::hop(FrameTraceContext &ctx, Hop h, double beginMs,
                 double endMs)
{
    COTERIE_ASSERT(ctx.tracer == this, "context from another tracer");
    const double durMs = endMs >= beginMs ? endMs - beginMs : 0.0;
    const std::uint64_t wallNs = monotonicNowNs();
    {
        support::MutexLock lock(mutex_);
        COTERIE_ASSERT(ctx.recordId < records_.size(),
                       "bad frame-trace record id ", ctx.recordId);
        records_[ctx.recordId].hops.push_back(
            HopRecord{h, beginMs, durMs, wallNs, 0});
    }
    ++ctx.hops;
    flight::recordFrameHop(hopEventName(h), flightLabel_, ctx.session,
                           ctx.client, ctx.frame, beginMs, durMs,
                           wallNs, 0);
}

void
FrameTracer::hopWall(FrameTraceContext &ctx, Hop h,
                     std::uint64_t wallBeginNs, std::uint64_t wallEndNs)
{
    COTERIE_ASSERT(ctx.tracer == this, "context from another tracer");
    const std::uint64_t durNs =
        wallEndNs >= wallBeginNs ? wallEndNs - wallBeginNs : 0;
    {
        support::MutexLock lock(mutex_);
        COTERIE_ASSERT(ctx.recordId < records_.size(),
                       "bad frame-trace record id ", ctx.recordId);
        records_[ctx.recordId].hops.push_back(
            HopRecord{h, -1.0, 0.0, wallBeginNs, durNs});
    }
    ++ctx.hops;
    flight::recordFrameHop(hopEventName(h), flightLabel_, ctx.session,
                           ctx.client, ctx.frame, -1.0, 0.0,
                           wallBeginNs, durNs);
}

void
FrameTracer::link(const FrameTraceContext &frameCtx,
                  const FrameTraceContext &fetchCtx)
{
    if (frameCtx.tracer != this || fetchCtx.tracer != this)
        return;
    support::MutexLock lock(mutex_);
    COTERIE_ASSERT(frameCtx.recordId < records_.size() &&
                       fetchCtx.recordId < records_.size(),
                   "bad frame-trace link");
    records_[frameCtx.recordId].link = fetchCtx.recordId + 1;
}

std::string
FrameTracer::criticalPathLocked(const FrameRecord &rec) const
{
    const auto dominant = [](const FrameRecord &r) -> int {
        std::array<double, kHopCount> totals{};
        for (const HopRecord &h : r.hops)
            totals[static_cast<std::size_t>(h.hop)] += h.simDurMs;
        int best = -1;
        double bestTotal = 0.0;
        for (std::size_t i = 0; i < kHopCount; ++i) {
            // Strict '>' keeps the earliest pipeline stage on ties,
            // which is stable across runs (totals are sim-derived).
            if (totals[i] > bestTotal) {
                bestTotal = totals[i];
                best = static_cast<int>(i);
            }
        }
        return best;
    };

    const int top = dominant(rec);
    if (top < 0)
        return "none";
    const Hop topHop = static_cast<Hop>(top);
    if (topHop == Hop::StallWait && rec.link != 0) {
        // The frame spent its budget waiting on a fetch: descend into
        // the linked fetch record to name the real bottleneck.
        const FrameRecord &fetch = records_[rec.link - 1];
        const int sub = dominant(fetch);
        if (sub >= 0) {
            return std::string("stall_wait/") +
                   hopName(static_cast<Hop>(sub));
        }
    }
    return hopName(topHop);
}

void
FrameTracer::complete(FrameTraceContext &ctx, double doneMs)
{
    if (ctx.tracer != this)
        return;
    std::string criticalPath;
    double latencyMs = 0.0;
    Kind kind;
    {
        support::MutexLock lock(mutex_);
        COTERIE_ASSERT(ctx.recordId < records_.size(),
                       "bad frame-trace record id ", ctx.recordId);
        FrameRecord &rec = records_[ctx.recordId];
        rec.doneMs = doneMs;
        rec.latencyMs = latencyMs =
            doneMs >= rec.mintedMs ? doneMs - rec.mintedMs : 0.0;
        rec.completed = true;
        rec.criticalPath = criticalPath = criticalPathLocked(rec);
        kind = rec.kind;
        if (kind == Kind::Frame)
            deadlines_.record(ctx.client, latencyMs, criticalPath);
    }
    if (kind == Kind::Frame) {
        flight::recordFrameDone(flightLabel_, ctx.session, ctx.client,
                                ctx.frame, doneMs, latencyMs,
                                deadlines_.budgetMs(),
                                flight::intern(criticalPath));
    }
}

void
FrameTracer::abort(FrameTraceContext &ctx, double nowMs)
{
    if (ctx.tracer != this)
        return;
    support::MutexLock lock(mutex_);
    COTERIE_ASSERT(ctx.recordId < records_.size(),
                   "bad frame-trace record id ", ctx.recordId);
    FrameRecord &rec = records_[ctx.recordId];
    rec.aborted = true;
    rec.doneMs = nowMs;
}

void
FrameTracer::finish()
{
    Json summary;
    {
        support::MutexLock lock(mutex_);
        summary = deadlines_.toJson();

        TraceRecorder &recorder = TraceRecorder::global();
        if (recorder.enabled()) {
            for (const FrameRecord &rec : records_) {
                const int tid = static_cast<int>(rec.client);
                for (const HopRecord &h : rec.hops) {
                    if (h.simBeginMs < 0.0)
                        continue; // wall-only hop: no sim timeline slot
                    Json args = Json::object();
                    args.set("label", Json(label_));
                    args.set("client",
                             Json(static_cast<int>(rec.client)));
                    args.set("frame", Json(rec.frame));
                    recorder.frameSpan(hopEventName(h.hop), tid,
                                       h.simBeginMs, h.simDurMs,
                                       std::move(args));
                }
                if (rec.kind != Kind::Frame || !rec.completed)
                    continue;
                Json args = Json::object();
                args.set("label", Json(label_));
                args.set("client", Json(static_cast<int>(rec.client)));
                args.set("frame", Json(rec.frame));
                args.set("latency_ms", Json(rec.latencyMs));
                args.set("budget_ms", Json(deadlines_.budgetMs()));
                args.set("miss",
                         Json(rec.latencyMs > deadlines_.budgetMs()));
                args.set("critical_path", Json(rec.criticalPath));
                recorder.frameInstant("frame.done", tid, rec.doneMs,
                                      std::move(args));
            }
        }
    }
    SloRegistry::global().publish(label_, std::move(summary));
}

const FrameTracer::FrameRecord *
FrameTracer::find(Kind kind, std::uint16_t client,
                  std::uint64_t frame) const
{
    support::MutexLock lock(mutex_);
    return findLocked(kind, client, frame);
}

const FrameTracer::FrameRecord *
FrameTracer::findLocked(Kind kind, std::uint16_t client,
                        std::uint64_t frame) const
{
    // Latest match wins (a frame id can be re-fetched after expiry).
    for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
        if (it->kind == kind && it->client == client &&
            it->frame == frame) {
            return &*it;
        }
    }
    return nullptr;
}

std::size_t
FrameTracer::recordCount() const
{
    support::MutexLock lock(mutex_);
    return records_.size();
}

} // namespace coterie::obs
