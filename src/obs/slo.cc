#include "obs/slo.hh"

namespace coterie::obs {

void
DeadlineTracker::record(std::uint16_t client, double latencyMs,
                        const std::string &criticalPath)
{
    ++frames_;
    latencies_.add(latencyMs);
    byClient_[client].add(latencyMs);
    if (latencyMs > budgetMs_) {
        ++misses_;
        ++missesByClient_[client];
        ++missesByHop_[criticalPath];
    }
}

Json
DeadlineTracker::toJson() const
{
    Json out = Json::object();
    out.set("budget_ms", Json(budgetMs_));
    out.set("frames", Json(frames_));
    out.set("misses", Json(misses_));
    out.set("miss_rate",
            Json(frames_ > 0 ? static_cast<double>(misses_) /
                                   static_cast<double>(frames_)
                             : 0.0));
    if (frames_ > 0) {
        Json lat = Json::object();
        lat.set("mean_ms", Json(latencies_.mean()));
        lat.set("p50_ms", Json(latencies_.percentile(50.0)));
        lat.set("p99_ms", Json(latencies_.percentile(99.0)));
        lat.set("p999_ms", Json(latencies_.percentile(99.9)));
        lat.set("max_ms", Json(latencies_.max()));
        out.set("latency", std::move(lat));
    }

    Json clients = Json::object();
    for (const auto &[client, samples] : byClient_) {
        Json c = Json::object();
        c.set("frames", Json(static_cast<std::uint64_t>(
                            samples.count())));
        const auto missIt = missesByClient_.find(client);
        c.set("misses", Json(missIt != missesByClient_.end()
                                 ? missIt->second
                                 : std::uint64_t{0}));
        c.set("p50_ms", Json(samples.percentile(50.0)));
        c.set("p99_ms", Json(samples.percentile(99.0)));
        clients.set(std::to_string(client), std::move(c));
    }
    out.set("clients", std::move(clients));

    Json byHop = Json::object();
    for (const auto &[hop, count] : missesByHop_)
        byHop.set(hop, Json(count));
    out.set("misses_by_hop", std::move(byHop));
    return out;
}

SloRegistry &
SloRegistry::global()
{
    // Leaked so late publishers (static-destruction-order races in
    // tests) never touch a destroyed registry.
    static SloRegistry *registry = new SloRegistry();
    return *registry;
}

void
SloRegistry::publish(const std::string &label, Json summary)
{
    support::MutexLock lock(mutex_);
    sessions_[label] = std::move(summary);
}

Json
SloRegistry::snapshotJson() const
{
    support::MutexLock lock(mutex_);
    Json out = Json::object();
    for (const auto &[label, summary] : sessions_)
        out.set(label, summary);
    return out;
}

void
SloRegistry::clear()
{
    support::MutexLock lock(mutex_);
    sessions_.clear();
}

std::size_t
SloRegistry::size() const
{
    support::MutexLock lock(mutex_);
    return sessions_.size();
}

} // namespace coterie::obs
