/**
 * @file
 * The ONLY wall-clock access point in `src/`.
 *
 * Coterie's determinism contract (bit-identical Far-BE frames, seeded
 * experiments) means simulation logic must never read ambient time —
 * the `ambient-clock` coterie-lint rule bans `std::chrono::*_clock`
 * and `time(` everywhere in `src/` except this pair of files. Code
 * that legitimately needs wall time (telemetry spans, offline
 * preprocessing wall-clock reporting) funnels through here, which
 * keeps every such site greppable and reviewable.
 *
 * Everything here is observe-only: readings may feed logs, metrics,
 * and trace exports, never simulation state.
 */

#pragma once

#include <cstdint>

namespace coterie::obs {

/**
 * Monotonic wall-clock nanoseconds since an arbitrary process-local
 * epoch. Never decreases; unrelated to civil time.
 */
std::uint64_t monotonicNowNs();

/** Seconds elapsed between two `monotonicNowNs` readings. */
inline double
secondsBetweenNs(std::uint64_t beginNs, std::uint64_t endNs)
{
    return static_cast<double>(endNs - beginNs) * 1e-9;
}

/** Milliseconds elapsed between two `monotonicNowNs` readings. */
inline double
millisBetweenNs(std::uint64_t beginNs, std::uint64_t endNs)
{
    return static_cast<double>(endNs - beginNs) * 1e-6;
}

/** Wall-clock stopwatch for coarse phase timing (observe-only). */
class Stopwatch
{
  public:
    Stopwatch() : begin_(monotonicNowNs()) {}

    /** Seconds since construction (or the last restart). */
    double elapsedSeconds() const
    {
        return secondsBetweenNs(begin_, monotonicNowNs());
    }

    /** Milliseconds since construction (or the last restart). */
    double elapsedMillis() const
    {
        return millisBetweenNs(begin_, monotonicNowNs());
    }

    void restart() { begin_ = monotonicNowNs(); }

  private:
    std::uint64_t begin_;
};

} // namespace coterie::obs
