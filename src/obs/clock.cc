#include "obs/clock.hh"

// The determinism lint (`ambient-clock`) exempts exactly this file and
// its header: every other file in src/ must come here for wall time.
#include <chrono>

namespace coterie::obs {

std::uint64_t
monotonicNowNs()
{
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

} // namespace coterie::obs
