/**
 * @file
 * Always-on flight recorder: fixed-size, lock-free, per-thread ring
 * buffers of compact binary frame/span events.
 *
 * Unlike the opt-in `TraceRecorder` (which allocates per event and
 * only records between start()/stop()), the flight recorder is always
 * armed: every `COTERIE_SPAN` scope and every frame-tracer hop drops
 * one fixed-size POD event into the calling thread's ring. Each ring
 * is single-writer (its owning thread) with a release-published head,
 * so the steady-state cost is two clock reads plus one 96-byte store —
 * negligible against any pipeline stage — and recording never takes a
 * lock. Rings are leaked intentionally (trivially-destructible state,
 * no TLS-teardown hazards) and overwrite oldest-first, so the recorder
 * always holds the last ~4096 events per thread.
 *
 * The payoff is crash forensics: the rings are dumped to a
 * Perfetto-loadable Chrome trace_event file on
 *  - `COTERIE_ASSERT` / `COTERIE_PANIC` failure (via the
 *    `support::setPanicHook` hook, installed on first use — this also
 *    covers lock-order validator panics),
 *  - `sim::FaultDriver` episode boundaries when `COTERIE_FLIGHT_DUMP`
 *    is set in the environment, and
 *  - explicit `flight::dump(path)` calls (tests, tools).
 * `COTERIE_FLIGHT_DUMP=<path>` overrides the default dump path
 * (`coterie.flight.json`). A dump taken while writers are live is
 * best-effort: the one in-flight slot per ring may be torn and is
 * dropped if implausible.
 *
 * Configuring with `-DCOTERIE_FLIGHT=OFF` compiles the recorder away:
 * every entry point below degrades to an inline no-op and
 * `libcoterie_obs` carries zero recorder symbols (CI checks this with
 * `nm`), mirroring the `COTERIE_TELEMETRY` contract.
 *
 * Determinism: the recorder is observe-only. Nothing reads an event
 * back into simulation state, and `determinism_test` is bit-identical
 * with the recorder ON or OFF at any `COTERIE_THREADS`.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace coterie::obs::flight {

/** Event kinds stored in the rings. */
enum class EventKind : std::uint8_t {
    Span = 0,     ///< wall-clock scope (COTERIE_SPAN)
    FrameHop = 1, ///< one causal hop of a frame record (sim timeline)
    FrameDone = 2, ///< frame completion: latency vs deadline budget
    Instant = 3,  ///< point event (fault boundaries, markers)
};

/**
 * One ring slot. Plain-old-data on purpose: rings are leaked arrays
 * of these, written in place with no construction or destruction.
 * All `const char *` members must point at static literals or
 * `intern()`-ed strings (process lifetime) — never at stack or
 * short-lived heap storage.
 */
struct FlightEvent
{
    std::uint64_t wallBeginNs = 0;
    std::uint64_t wallDurNs = 0;
    double simBeginMs = -1.0; ///< < 0 -> no sim-time attribution
    double simDurMs = 0.0;
    double value = 0.0;  ///< FrameDone: latency_ms
    double value2 = 0.0; ///< FrameDone: budget_ms
    const char *name = nullptr;
    const char *category = nullptr;
    const char *label = nullptr;    ///< session label (FrameHop/Done)
    const char *critical = nullptr; ///< FrameDone: critical-path string
    std::uint64_t frame = 0;
    std::uint32_t session = 0;
    std::uint16_t client = 0;
    EventKind kind = EventKind::Span;
};

#if COTERIE_FLIGHT_ENABLED

/** Compile-time switch, usable in `if constexpr`. */
inline constexpr bool kCompiledIn = true;

/** Events each per-thread ring retains (oldest overwritten first). */
inline constexpr std::size_t kRingCapacity = 4096;

/** Record a completed wall-clock span (ScopedSpan destructor). */
void recordSpan(const char *name, const char *category,
                std::uint64_t beginNs, std::uint64_t endNs,
                double simMs = -1.0);

/** Record one causal hop of a frame record (sim-time interval with
 *  wall-time attribution). @p name must be a static literal
 *  (`frame.<hop>`); @p label an intern()-ed session label. */
void recordFrameHop(const char *name, const char *label,
                    std::uint32_t session, std::uint16_t client,
                    std::uint64_t frame, double simBeginMs,
                    double simDurMs, std::uint64_t wallBeginNs,
                    std::uint64_t wallDurNs);

/** Record a frame completion scored against the deadline budget. */
void recordFrameDone(const char *label, std::uint32_t session,
                     std::uint16_t client, std::uint64_t frame,
                     double simMs, double latencyMs, double budgetMs,
                     const char *criticalPath);

/** Record a point event (fault episode boundaries, markers). */
void recordInstant(const char *name, const char *category,
                   double simMs = -1.0);

/**
 * Copy @p s into the process-lifetime intern pool and return a stable
 * pointer, suitable for FlightEvent string members. Idempotent per
 * distinct content.
 */
const char *intern(const std::string &s);

/** Total events currently retained across all rings (best-effort). */
std::size_t eventCount();

/**
 * Write every ring's retained events as a Chrome trace_event JSON
 * document (wall spans under pid 1, sim-timeline frame events under
 * pid 2). Returns false on I/O failure.
 */
bool dump(const std::string &path);

/** The dump path crash/boundary dumps use: `$COTERIE_FLIGHT_DUMP` or
 *  `coterie.flight.json`. */
std::string defaultDumpPath();

/**
 * Install the panic-hook crash dump (idempotent). Called lazily on
 * first recorded event; call explicitly from binaries that want the
 * dump armed before any instrumentation fires.
 */
void installPanicDump();

/** FaultDriver episode-boundary trigger: dump to the default path iff
 *  `COTERIE_FLIGHT_DUMP` is set in the environment. */
void dumpOnEpisodeBoundary();

#else // flight recorder compiled out: inline no-ops, zero symbols

inline constexpr bool kCompiledIn = false;
inline constexpr std::size_t kRingCapacity = 0;

inline void
recordSpan(const char *, const char *, std::uint64_t, std::uint64_t,
           double = -1.0)
{
}

inline void
recordFrameHop(const char *, const char *, std::uint32_t, std::uint16_t,
               std::uint64_t, double, double, std::uint64_t,
               std::uint64_t)
{
}

inline void
recordFrameDone(const char *, std::uint32_t, std::uint16_t,
                std::uint64_t, double, double, double, const char *)
{
}

inline void
recordInstant(const char *, const char *, double = -1.0)
{
}

inline const char *
intern(const std::string &)
{
    return "";
}

inline std::size_t
eventCount()
{
    return 0;
}

inline bool
dump(const std::string &)
{
    return false;
}

inline std::string
defaultDumpPath()
{
    return {};
}

inline void
installPanicDump()
{
}

inline void
dumpOnEpisodeBoundary()
{
}

#endif // COTERIE_FLIGHT_ENABLED

} // namespace coterie::obs::flight
