/**
 * @file
 * Deadline SLO engine: scores every completed frame against the
 * 16.7 ms QoE budget and attributes misses to the pipeline hop that
 * dominated the frame's critical path.
 *
 * `DeadlineTracker` accumulates one latency sample per displayed frame
 * (exact `SampleSet` percentiles, so p50/p99/p99.9 here match any
 * other consumer of the same latency list bit-for-bit) plus per-client
 * breakdowns and a per-hop miss-attribution table. `FrameTracer`
 * (obs/frame_trace.hh) owns one per session run and feeds it from the
 * causal frame records; at the end of a run the summary is published
 * to `SloRegistry::global()` under the session label and exported in
 * the metrics JSON snapshot's top-level `"slo"` section.
 *
 * Everything here is simulated-time only — no wall-clock values enter
 * the JSON — so snapshots diff bit-identical across `COTERIE_THREADS`
 * settings (the determinism contract the chaos harness checks).
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/json.hh"
#include "support/stats.hh"
#include "support/thread_annotations.hh"

namespace coterie::obs {

/** The paper's per-frame QoE deadline (60 Hz refresh), in sim ms. */
inline constexpr double kFrameBudgetMs = 16.7;

/**
 * Per-session deadline scoreboard. Not internally synchronized: the
 * owner (`FrameTracer`) serializes access under its own mutex.
 */
class DeadlineTracker
{
  public:
    explicit DeadlineTracker(double budgetMs = kFrameBudgetMs)
        : budgetMs_(budgetMs)
    {
    }

    /**
     * Score one completed frame: @p latencyMs against the budget,
     * with @p criticalPath naming the dominant hop ("render",
     * "stall_wait/transfer", ...) for miss attribution.
     */
    void record(std::uint16_t client, double latencyMs,
                const std::string &criticalPath);

    double budgetMs() const { return budgetMs_; }
    std::uint64_t frames() const { return frames_; }
    std::uint64_t misses() const { return misses_; }

    /** Exact percentile over all recorded latencies, p in [0, 100]. */
    double percentile(double p) const
    {
        return latencies_.percentile(p);
    }

    /**
     * Summary as JSON (sim-time derived only): frame/miss counts,
     * p50/p99/p999 latency, per-client percentiles, and the per-hop
     * miss attribution table, keys sorted for stable diffs.
     */
    Json toJson() const;

  private:
    double budgetMs_;
    std::uint64_t frames_ = 0;
    std::uint64_t misses_ = 0;
    SampleSet latencies_;
    std::map<std::uint16_t, SampleSet> byClient_;
    std::map<std::uint16_t, std::uint64_t> missesByClient_;
    std::map<std::string, std::uint64_t> missesByHop_;
};

/**
 * Process-wide label -> session SLO summary store, last-write-wins
 * (re-running a config replaces its summary). The metrics snapshot
 * embeds it as the `"slo"` section.
 */
class SloRegistry
{
  public:
    SloRegistry() = default;
    SloRegistry(const SloRegistry &) = delete;
    SloRegistry &operator=(const SloRegistry &) = delete;

    static SloRegistry &global();

    /** Publish @p summary under @p label, replacing any previous. */
    void publish(const std::string &label, Json summary);

    /** All published summaries, keys sorted (std::map order). */
    Json snapshotJson() const;

    /** Drop all published summaries (tests). */
    void clear();

    std::size_t size() const;

  private:
    mutable support::Mutex mutex_{"SloRegistry::mutex_"};
    std::map<std::string, Json> sessions_ COTERIE_GUARDED_BY(mutex_);
};

} // namespace coterie::obs
