/**
 * @file
 * coterie-scope trace spans: Chrome `trace_event` export of the frame
 * pipeline, loadable in Perfetto / chrome://tracing.
 *
 * `COTERIE_SPAN("render.panorama", "render")` opens an RAII span that
 * records a complete ("ph":"X") event with wall-clock begin/duration
 * (read only through obs/clock), the recording thread's slot as `tid`,
 * and — when the call site attaches it — the simulation time as a
 * `sim_ms` arg, so wall-time spans can be correlated with sim-time
 * behaviour. `TraceRecorder::counter` emits "ph":"C" counter tracks;
 * the pool telemetry hooks (installed by `installPoolTelemetry`) use
 * them for thread-pool queue depth and worker utilisation.
 *
 * Recording is opt-in: spans are dropped (two relaxed atomic loads)
 * until `TraceRecorder::global().start()`. With
 * `-DCOTERIE_TELEMETRY=OFF` the span macros compile away entirely;
 * the recorder API itself stays linkable so tools and tests build in
 * both configurations.
 *
 * Span taxonomy (see DESIGN.md §8): span names reuse the metric naming
 * scheme minus the unit suffix (`render.panorama`, `codec.encode`);
 * the category is the owning layer (`render`, `image`, `core`, `net`,
 * `support`).
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/clock.hh"
#include "obs/flight.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "support/thread_annotations.hh"

namespace coterie::obs {

/** Collects trace events and exports Chrome trace_event JSON. */
class TraceRecorder
{
  public:
    TraceRecorder() = default;
    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    /** The process-wide recorder the span macros feed. */
    static TraceRecorder &global();

    /** Clear any previous events and begin recording. */
    void start();
    /** Stop recording (events are kept for export). */
    void stop();
    /** Drop all recorded events. */
    void clear();

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Record a complete span. @p simMs attaches simulated time as an
     * arg when non-negative (wall and sim time share no epoch; the
     * arg is attribution, not an axis).
     */
    void complete(const char *name, const char *category,
                  std::uint64_t beginNs, std::uint64_t endNs,
                  double simMs = -1.0);

    /** Record a counter-track sample ("ph":"C"). */
    void counter(const char *name, double value);

    /** Record an instant event ("ph":"i", thread scope). @p simMs
     *  attaches simulated time as an arg when non-negative (used by
     *  the fault-injection driver's episode boundary markers). */
    void instant(const char *name, const char *category,
                 double simMs = -1.0);

    /**
     * Record a sim-timeline frame span (category "frame", pid 2, one
     * track per client): ts/dur are the *simulated* interval, so the
     * frame causal records render as a timeline of their own next to
     * the wall-clock spans. Fed by `FrameTracer::finish()`; consumed
     * by `trace_report --frames`.
     */
    void frameSpan(const char *name, int clientTid, double simBeginMs,
                   double simDurMs, Json args);

    /** Record a sim-timeline frame instant ("frame.done"). */
    void frameInstant(const char *name, int clientTid, double simMs,
                      Json args);

    std::size_t eventCount() const;

    /**
     * Export everything recorded so far as a Chrome trace_event
     * document: `{"displayTimeUnit": "ms", "traceEvents": [...]}` with
     * per-thread `thread_name` metadata. Timestamps are microseconds
     * relative to the first `start()`.
     */
    Json toJson() const;
    std::string exportJson() const { return toJson().dump(1); }
    bool exportToFile(const std::string &path) const;

  private:
    enum class Phase : std::uint8_t {
        Complete,
        Counter,
        Instant,
        FrameSpan,    ///< sim-timeline span, pid 2 (frame tracer)
        FrameInstant, ///< sim-timeline instant, pid 2
    };

    struct Event
    {
        Phase phase;
        int tid;
        std::string name;
        std::string category;
        std::uint64_t beginNs;
        std::uint64_t durNs;
        double value;  ///< counter sample; FrameSpan: sim dur ms
        double simMs;  ///< < 0 -> absent; Frame*: sim begin ms
        Json args;     ///< Frame* payload (label/client/frame/...)
    };

    void push(Event event);

    std::atomic<bool> enabled_{false};
    mutable support::Mutex mutex_{"TraceRecorder::mutex_"};
    std::vector<Event> events_ COTERIE_GUARDED_BY(mutex_);
    std::uint64_t epochNs_ COTERIE_GUARDED_BY(mutex_) = 0;
};

/**
 * Install the thread-pool telemetry bridge (queue-depth and
 * worker-utilisation counter tracks + `pool.*` metrics). Idempotent;
 * called automatically by `TraceRecorder::start()`.
 */
void installPoolTelemetry();

#if COTERIE_TELEMETRY_ENABLED

/**
 * RAII span. Two independent sinks share the clock readings:
 *  - `TraceRecorder` gets a complete event iff recording was on at
 *    entry (spans straddling the recording window are dropped, as
 *    before);
 *  - the flight recorder (obs/flight.hh) gets every span,
 *    unconditionally, into the calling thread's ring.
 * With the flight recorder compiled out this collapses back to the
 * recorder-only behaviour, including skipping the clock reads when
 * recording is off.
 */
class ScopedSpan
{
  public:
    ScopedSpan(const char *name, const char *category)
        : name_(name), category_(category),
          recorderArmed_(TraceRecorder::global().enabled())
    {
        if (recorderArmed_ || flight::kCompiledIn)
            beginNs_ = monotonicNowNs();
    }

    ~ScopedSpan()
    {
        if (!recorderArmed_ && !flight::kCompiledIn)
            return;
        const std::uint64_t endNs = monotonicNowNs();
        flight::recordSpan(name_, category_, beginNs_, endNs, simMs_);
        if (recorderArmed_) {
            TraceRecorder::global().complete(name_, category_, beginNs_,
                                             endNs, simMs_);
        }
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** Attach simulated-time attribution to this span. */
    void simTimeMs(double ms) { simMs_ = ms; }

  private:
    const char *name_;
    const char *category_;
    const bool recorderArmed_;
    std::uint64_t beginNs_ = 0;
    double simMs_ = -1.0;
};

#else // telemetry compiled out: spans are empty objects

class ScopedSpan
{
  public:
    ScopedSpan(const char *, const char *) {}
    void simTimeMs(double) {}
};

#endif // COTERIE_TELEMETRY_ENABLED

/** Anonymous span covering the enclosing scope. */
#define COTERIE_SPAN(name, category)                                         \
    [[maybe_unused]] ::coterie::obs::ScopedSpan COTERIE_OBS_CAT(             \
        coterieObsSpan_, __LINE__)(name, category)

/** Named span, for call sites that attach simTimeMs() or end early. */
#define COTERIE_NAMED_SPAN(var, name, category)                              \
    ::coterie::obs::ScopedSpan var(name, category)

} // namespace coterie::obs
