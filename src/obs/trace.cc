#include "obs/trace.hh"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "support/parallel.hh"

namespace coterie::obs {

TraceRecorder &
TraceRecorder::global()
{
    static TraceRecorder recorder;
    return recorder;
}

void
TraceRecorder::start()
{
    installPoolTelemetry();
    {
        support::MutexLock lock(mutex_);
        events_.clear();
        epochNs_ = monotonicNowNs();
    }
    enabled_.store(true, std::memory_order_relaxed);
}

void
TraceRecorder::stop()
{
    enabled_.store(false, std::memory_order_relaxed);
}

void
TraceRecorder::clear()
{
    support::MutexLock lock(mutex_);
    events_.clear();
}

void
TraceRecorder::push(Event event)
{
    support::MutexLock lock(mutex_);
    events_.push_back(std::move(event));
}

void
TraceRecorder::complete(const char *name, const char *category,
                        std::uint64_t beginNs, std::uint64_t endNs,
                        double simMs)
{
    if (!enabled())
        return;
    Event e;
    e.phase = Phase::Complete;
    e.tid = threadSlot();
    e.name = name;
    e.category = category;
    e.beginNs = beginNs;
    e.durNs = endNs >= beginNs ? endNs - beginNs : 0;
    e.value = 0.0;
    e.simMs = simMs;
    push(std::move(e));
}

void
TraceRecorder::counter(const char *name, double value)
{
    if (!enabled())
        return;
    Event e;
    e.phase = Phase::Counter;
    e.tid = threadSlot();
    e.name = name;
    e.category = "counter";
    e.beginNs = monotonicNowNs();
    e.durNs = 0;
    e.value = value;
    e.simMs = -1.0;
    push(std::move(e));
}

void
TraceRecorder::instant(const char *name, const char *category,
                       double simMs)
{
    if (!enabled())
        return;
    Event e;
    e.phase = Phase::Instant;
    e.tid = threadSlot();
    e.name = name;
    e.category = category;
    e.beginNs = monotonicNowNs();
    e.durNs = 0;
    e.value = 0.0;
    e.simMs = simMs;
    push(std::move(e));
}

void
TraceRecorder::frameSpan(const char *name, int clientTid,
                         double simBeginMs, double simDurMs, Json args)
{
    if (!enabled())
        return;
    Event e;
    e.phase = Phase::FrameSpan;
    e.tid = clientTid;
    e.name = name;
    e.category = "frame";
    e.beginNs = 0;
    e.durNs = 0;
    e.value = simDurMs;
    e.simMs = simBeginMs;
    e.args = std::move(args);
    push(std::move(e));
}

void
TraceRecorder::frameInstant(const char *name, int clientTid,
                            double simMs, Json args)
{
    if (!enabled())
        return;
    Event e;
    e.phase = Phase::FrameInstant;
    e.tid = clientTid;
    e.name = name;
    e.category = "frame";
    e.beginNs = 0;
    e.durNs = 0;
    e.value = 0.0;
    e.simMs = simMs;
    e.args = std::move(args);
    push(std::move(e));
}

std::size_t
TraceRecorder::eventCount() const
{
    support::MutexLock lock(mutex_);
    return events_.size();
}

Json
TraceRecorder::toJson() const
{
    std::vector<Event> events;
    std::uint64_t epochNs = 0;
    {
        support::MutexLock lock(mutex_);
        events = events_;
        epochNs = epochNs_;
    }

    Json traceEvents = Json::array();

    // Thread-name metadata so Perfetto labels tracks by obs slot.
    // Frame events (pid 2) carry client ids as tids and get their own
    // process label instead.
    int maxTid = -1;
    bool haveFrameEvents = false;
    for (const Event &e : events) {
        if (e.phase == Phase::FrameSpan ||
            e.phase == Phase::FrameInstant) {
            haveFrameEvents = true;
            continue;
        }
        maxTid = std::max(maxTid, e.tid);
    }
    if (haveFrameEvents) {
        Json args = Json::object();
        args.set("name", Json("frames (sim)"));
        Json m = Json::object();
        m.set("ph", Json("M"));
        m.set("name", Json("process_name"));
        m.set("pid", Json(2));
        m.set("args", std::move(args));
        traceEvents.push(std::move(m));
    }
    for (int tid = 0; tid <= maxTid; ++tid) {
        Json args = Json::object();
        args.set("name", Json(tid == 0 ? std::string("main/slot0")
                                       : "slot" + std::to_string(tid)));
        Json m = Json::object();
        m.set("ph", Json("M"));
        m.set("name", Json("thread_name"));
        m.set("pid", Json(1));
        m.set("tid", Json(tid));
        m.set("args", std::move(args));
        traceEvents.push(std::move(m));
    }

    const auto relUs = [epochNs](std::uint64_t ns) {
        return ns >= epochNs
                   ? static_cast<double>(ns - epochNs) / 1000.0
                   : 0.0;
    };

    for (const Event &e : events) {
        Json j = Json::object();
        switch (e.phase) {
        case Phase::Complete: {
            j.set("ph", Json("X"));
            j.set("name", Json(e.name));
            j.set("cat", Json(e.category));
            j.set("pid", Json(1));
            j.set("tid", Json(e.tid));
            j.set("ts", Json(relUs(e.beginNs)));
            j.set("dur", Json(static_cast<double>(e.durNs) / 1000.0));
            if (e.simMs >= 0.0) {
                Json args = Json::object();
                args.set("sim_ms", Json(e.simMs));
                j.set("args", std::move(args));
            }
            break;
        }
        case Phase::Counter: {
            j.set("ph", Json("C"));
            j.set("name", Json(e.name));
            j.set("pid", Json(1));
            j.set("tid", Json(e.tid));
            j.set("ts", Json(relUs(e.beginNs)));
            Json args = Json::object();
            args.set("value", Json(e.value));
            j.set("args", std::move(args));
            break;
        }
        case Phase::Instant: {
            j.set("ph", Json("i"));
            j.set("name", Json(e.name));
            j.set("cat", Json(e.category));
            j.set("pid", Json(1));
            j.set("tid", Json(e.tid));
            j.set("ts", Json(relUs(e.beginNs)));
            j.set("s", Json("t"));
            if (e.simMs >= 0.0) {
                Json args = Json::object();
                args.set("sim_ms", Json(e.simMs));
                j.set("args", std::move(args));
            }
            break;
        }
        case Phase::FrameSpan: {
            j.set("ph", Json("X"));
            j.set("name", Json(e.name));
            j.set("cat", Json("frame"));
            j.set("pid", Json(2));
            j.set("tid", Json(e.tid));
            // Sim milliseconds -> trace microseconds: the frame
            // timeline has its own (simulated) clock domain.
            j.set("ts", Json(e.simMs * 1000.0));
            j.set("dur", Json(e.value * 1000.0));
            j.set("args", e.args);
            break;
        }
        case Phase::FrameInstant: {
            j.set("ph", Json("i"));
            j.set("name", Json(e.name));
            j.set("cat", Json("frame"));
            j.set("pid", Json(2));
            j.set("tid", Json(e.tid));
            j.set("ts", Json(e.simMs * 1000.0));
            j.set("s", Json("t"));
            j.set("args", e.args);
            break;
        }
        }
        traceEvents.push(std::move(j));
    }

    Json out = Json::object();
    out.set("displayTimeUnit", Json("ms"));
    out.set("traceEvents", std::move(traceEvents));
    return out;
}

bool
TraceRecorder::exportToFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const std::string text = exportJson();
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    std::fclose(f);
    return ok;
}

namespace {

/**
 * Bridges support::ThreadPool's observer hooks into counter tracks and
 * `pool.*` metrics. Observe-only: it records and never touches pool
 * state. Installed once for the process lifetime (the pool requires
 * the observer to outlive all pool use).
 */
class PoolTracer final : public support::PoolObserver
{
  public:
    void onJobBegin(std::int64_t chunkCount) override
    {
        const int depth =
            queueDepth_.fetch_add(1, std::memory_order_relaxed) + 1;
        COTERIE_COUNT("pool.jobs");
        COTERIE_COUNT_N("pool.chunks", chunkCount);
        TraceRecorder::global().counter(
            "pool.queue_depth", static_cast<double>(depth));
    }

    void onJobEnd(std::int64_t /*chunkCount*/) override
    {
        const int depth =
            queueDepth_.fetch_sub(1, std::memory_order_relaxed) - 1;
        TraceRecorder::global().counter(
            "pool.queue_depth", static_cast<double>(depth));
    }

    void onWorkerActivity(int activeWorkers, int workerCount) override
    {
        TraceRecorder::global().counter(
            "pool.active_workers", static_cast<double>(activeWorkers));
        if (workerCount > 0) {
            COTERIE_GAUGE_SET("pool.worker_utilization",
                              static_cast<double>(activeWorkers) /
                                  static_cast<double>(workerCount));
        }
    }

  private:
    std::atomic<int> queueDepth_{0};
};

} // namespace

void
installPoolTelemetry()
{
    // Leaked singleton: the pool observer contract requires the
    // observer to outlive every pool job, including ones racing with
    // static destruction.
    static PoolTracer *tracer = [] {
        auto *t = new PoolTracer();
        support::setPoolObserver(t);
        return t;
    }();
    (void)tracer;
}

} // namespace coterie::obs
