/**
 * @file
 * coterie-scope metrics: counters, gauges, and timer-histograms.
 *
 * The paper's headline claims are quantitative (>= 95% frame-cache hit
 * ratio, per-frame latency under the 16.7 ms QoE bound, 4.2x bandwidth
 * reduction); this registry makes the running system report them
 * instead of leaving them to post-hoc bench math.
 *
 * Design:
 *  - `MetricsRegistry` is lock-striped: the name -> metric lookup
 *    hashes into independent stripes so concurrent first-touch from
 *    pool workers does not serialize. Metric objects have stable
 *    addresses, and the `COTERIE_*` macros cache the resolved handle
 *    in a function-local static, so the steady-state cost is one
 *    atomic op (counters/gauges) or one shard lock (timers).
 *  - `Timer` shards its accumulators by thread slot and folds them on
 *    snapshot via `RunningStats::merge` + `Histogram::merge`, so pool
 *    workers never contend on one mutex.
 *  - Everything is observe-only. Telemetry must never feed back into
 *    simulation state: `determinism_test` runs bit-identical with
 *    telemetry on at any `COTERIE_THREADS`.
 *  - Compiled out: configuring with `-DCOTERIE_TELEMETRY=OFF` leaves
 *    the library functional (tests and tools still link) but expands
 *    every instrumentation macro to nothing, so the frame pipeline
 *    carries zero telemetry cost.
 *
 * Naming scheme (see DESIGN.md §8): `<layer>.<thing>[_<unit>]`, e.g.
 * `render.panorama_ms`, `cache.hits`, `net.transfer_sim_ms`. The
 * `_sim_ms` suffix marks simulated-time observations; `_ms` marks wall
 * time (always read through obs/clock).
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/clock.hh"
#include "obs/json.hh"
#include "support/stats.hh"
#include "support/thread_annotations.hh"

namespace coterie::obs {

/**
 * Stable, dense id for the calling thread (0 = first thread that asked).
 * Used for timer sharding and trace-event `tid` attribution.
 */
int threadSlot();

/** Monotonically increasing event count. */
class Counter
{
  public:
    void add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }

    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Distribution of observations (durations in ms, or unit-free values
 * like binary-search iteration counts). Keeps running moments plus a
 * log10 histogram; sharded by thread slot so concurrent observers do
 * not contend.
 */
class Timer
{
  public:
    /**
     * Histogram spec: log10(value) over [1e-4, 1e4) in 256 bins, i.e.
     * 32 bins per decade. Quantile estimates interpolate within a bin,
     * so the worst-case relative error is one bin width:
     * 10^(8/256) - 1 ~= 7.5%. Bins merge by addition, which makes the
     * estimate shard-order-insensitive (see Histogram::quantile).
     */
    static constexpr double kLogLo = -4.0;
    static constexpr double kLogHi = 4.0;
    static constexpr std::size_t kLogBins = 256;

    Timer();

    /** Record one observation (clamped to a positive finite value). */
    void observe(double value);

    /** Record a wall-clock duration taken between two clock readings. */
    void observeNs(std::uint64_t beginNs, std::uint64_t endNs)
    {
        observe(millisBetweenNs(beginNs, endNs));
    }

    /** Merged view across all shards. */
    struct Snapshot
    {
        RunningStats stats;
        Histogram hist{kLogLo, kLogHi, kLogBins};
    };
    Snapshot snapshot() const;

  private:
    static constexpr int kShards = 8;
    struct Shard
    {
        mutable support::Mutex shardMutex{"Timer::Shard::shardMutex"};
        RunningStats stats COTERIE_GUARDED_BY(shardMutex);
        Histogram hist COTERIE_GUARDED_BY(shardMutex){kLogLo, kLogHi,
                                                 kLogBins};
    };
    Shard shards_[kShards];
};

/** RAII wall-clock scope feeding a Timer (reads obs/clock only). */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Timer &timer)
        : timer_(timer), begin_(monotonicNowNs())
    {
    }
    ~ScopedTimer() { timer_.observeNs(begin_, monotonicNowNs()); }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Timer &timer_;
    std::uint64_t begin_;
};

/**
 * Thread-safe name -> metric registry with JSON/CSV snapshot export.
 * Returned references stay valid for the registry's lifetime (and for
 * `global()`, the process lifetime), so call sites may cache them.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The process-wide registry all instrumentation macros feed. */
    static MetricsRegistry &global();

    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);
    Timer &timer(std::string_view name);

    /**
     * Snapshot as JSON: `{"counters": {...}, "gauges": {...},
     * "timers": {name: {count, mean, min, max, stddev, sum, p50, p99,
     * p999}}, "slo": {label: {...}}}`, keys sorted for stable diffs.
     * Timer percentiles are mergeable histogram estimates (see
     * `Timer::kLogBins`); the `slo` section re-exports
     * `SloRegistry::global()` — per-session deadline scoreboards with
     * *exact* percentiles over the frame latency samples.
     */
    Json snapshotJson() const;

    /** Snapshot as CSV rows: `kind,name,count,value,mean,min,max`. */
    std::string snapshotCsv() const;

    /** Write the JSON snapshot to a file; false on I/O failure. */
    bool writeJson(const std::string &path) const;

    /** Number of registered metrics (all kinds). */
    std::size_t size() const;

  private:
    /** One lock stripe of the name lookup. */
    struct Stripe
    {
        mutable support::Mutex stripeMutex{
            "MetricsRegistry::Stripe::stripeMutex"};
        std::vector<std::pair<std::string, std::unique_ptr<Counter>>>
            counters COTERIE_GUARDED_BY(stripeMutex);
        std::vector<std::pair<std::string, std::unique_ptr<Gauge>>>
            gauges COTERIE_GUARDED_BY(stripeMutex);
        std::vector<std::pair<std::string, std::unique_ptr<Timer>>>
            timers COTERIE_GUARDED_BY(stripeMutex);
    };
    static constexpr std::size_t kStripes = 16;

    Stripe &stripeFor(std::string_view name);

    Stripe stripes_[kStripes];
};

} // namespace coterie::obs

// --- Instrumentation macros -------------------------------------------
//
// These are the only telemetry entry points the pipeline uses; with
// `-DCOTERIE_TELEMETRY=OFF` they all compile to nothing.

#define COTERIE_OBS_CAT2(a, b) a##b
#define COTERIE_OBS_CAT(a, b) COTERIE_OBS_CAT2(a, b)

#if COTERIE_TELEMETRY_ENABLED

/** Increment the named counter by @p n. */
#define COTERIE_COUNT_N(name, n)                                             \
    do {                                                                     \
        static ::coterie::obs::Counter &coterieObsCounter =                  \
            ::coterie::obs::MetricsRegistry::global().counter(name);         \
        coterieObsCounter.add(                                               \
            static_cast<std::uint64_t>(n));                                  \
    } while (0)

/** Set the named gauge to @p v. */
#define COTERIE_GAUGE_SET(name, v)                                           \
    do {                                                                     \
        static ::coterie::obs::Gauge &coterieObsGauge =                      \
            ::coterie::obs::MetricsRegistry::global().gauge(name);           \
        coterieObsGauge.set(static_cast<double>(v));                         \
    } while (0)

/** Record one observation into the named timer-histogram. */
#define COTERIE_OBSERVE(name, v)                                             \
    do {                                                                     \
        static ::coterie::obs::Timer &coterieObsTimer =                      \
            ::coterie::obs::MetricsRegistry::global().timer(name);           \
        coterieObsTimer.observe(static_cast<double>(v));                     \
    } while (0)

/** Time the enclosing scope (wall clock) into the named timer. */
#define COTERIE_TIMER_SCOPE(name)                                            \
    static ::coterie::obs::Timer &COTERIE_OBS_CAT(coterieObsTimer_,          \
                                                  __LINE__) =                \
        ::coterie::obs::MetricsRegistry::global().timer(name);               \
    ::coterie::obs::ScopedTimer COTERIE_OBS_CAT(                             \
        coterieObsTimerScope_,                                               \
        __LINE__)(COTERIE_OBS_CAT(coterieObsTimer_, __LINE__))

#else // telemetry compiled out

#define COTERIE_COUNT_N(name, n)                                             \
    do {                                                                     \
    } while (0)
#define COTERIE_GAUGE_SET(name, v)                                           \
    do {                                                                     \
    } while (0)
#define COTERIE_OBSERVE(name, v)                                             \
    do {                                                                     \
    } while (0)
#define COTERIE_TIMER_SCOPE(name) static_assert(true)

#endif // COTERIE_TELEMETRY_ENABLED

/** Increment the named counter by one. */
#define COTERIE_COUNT(name) COTERIE_COUNT_N(name, 1)
