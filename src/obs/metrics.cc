#include "obs/metrics.hh"

#include "obs/slo.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <sstream>

namespace coterie::obs {

int
threadSlot()
{
    static std::atomic<int> next{0};
    thread_local const int slot = next.fetch_add(1);
    return slot;
}

Timer::Timer() = default;

void
Timer::observe(double value)
{
    if (!std::isfinite(value))
        return;
    // Histogram is over log10(value); clamp so the log stays finite
    // (zero-duration scopes land in the bottom edge bin).
    const double clamped = std::max(value, 1e-9);
    Shard &shard =
        shards_[static_cast<std::size_t>(threadSlot()) % kShards];
    support::MutexLock lock(shard.shardMutex);
    shard.stats.add(value);
    shard.hist.add(std::log10(clamped));
}

Timer::Snapshot
Timer::snapshot() const
{
    Snapshot merged;
    for (const Shard &shard : shards_) {
        support::MutexLock lock(shard.shardMutex);
        merged.stats.merge(shard.stats);
        merged.hist.merge(shard.hist);
    }
    return merged;
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

MetricsRegistry::Stripe &
MetricsRegistry::stripeFor(std::string_view name)
{
    return stripes_[std::hash<std::string_view>{}(name) % kStripes];
}

namespace {

/** Find-or-insert in a name-keyed vector of unique_ptrs. */
template <typename T>
T &
findOrCreate(std::vector<std::pair<std::string, std::unique_ptr<T>>> &vec,
             std::string_view name)
{
    for (auto &[key, value] : vec)
        if (key == name)
            return *value;
    vec.emplace_back(std::string(name), std::make_unique<T>());
    return *vec.back().second;
}

} // namespace

Counter &
MetricsRegistry::counter(std::string_view name)
{
    Stripe &stripe = stripeFor(name);
    support::MutexLock lock(stripe.stripeMutex);
    return findOrCreate(stripe.counters, name);
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    Stripe &stripe = stripeFor(name);
    support::MutexLock lock(stripe.stripeMutex);
    return findOrCreate(stripe.gauges, name);
}

Timer &
MetricsRegistry::timer(std::string_view name)
{
    Stripe &stripe = stripeFor(name);
    support::MutexLock lock(stripe.stripeMutex);
    return findOrCreate(stripe.timers, name);
}

std::size_t
MetricsRegistry::size() const
{
    std::size_t n = 0;
    for (const Stripe &stripe : stripes_) {
        support::MutexLock lock(stripe.stripeMutex);
        n += stripe.counters.size() + stripe.gauges.size() +
             stripe.timers.size();
    }
    return n;
}

Json
MetricsRegistry::snapshotJson() const
{
    // Collect name-sorted views of each kind for stable export.
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Timer::Snapshot>> timers;
    for (const Stripe &stripe : stripes_) {
        support::MutexLock lock(stripe.stripeMutex);
        for (const auto &[name, c] : stripe.counters)
            counters.emplace_back(name, c->value());
        for (const auto &[name, g] : stripe.gauges)
            gauges.emplace_back(name, g->value());
        for (const auto &[name, t] : stripe.timers)
            timers.emplace_back(name, t->snapshot());
    }
    const auto byName = [](const auto &a, const auto &b) {
        return a.first < b.first;
    };
    std::sort(counters.begin(), counters.end(), byName);
    std::sort(gauges.begin(), gauges.end(), byName);
    std::sort(timers.begin(), timers.end(), byName);

    Json countersJson = Json::object();
    for (const auto &[name, v] : counters)
        countersJson.set(name, Json(v));
    Json gaugesJson = Json::object();
    for (const auto &[name, v] : gauges)
        gaugesJson.set(name, Json(v));
    Json timersJson = Json::object();
    for (const auto &[name, snap] : timers) {
        Json t = Json::object();
        t.set("count", Json(static_cast<std::uint64_t>(
                           snap.stats.count())));
        t.set("mean", Json(snap.stats.mean()));
        t.set("min", Json(snap.stats.min()));
        t.set("max", Json(snap.stats.max()));
        t.set("stddev", Json(snap.stats.stddev()));
        t.set("sum", Json(snap.stats.sum()));
        // The histogram stores log10(value); undo the transform so
        // percentiles come out in the timer's own unit.
        const auto pct = [&snap](double q) {
            return snap.stats.count() > 0
                       ? std::pow(10.0, snap.hist.quantile(q))
                       : 0.0;
        };
        t.set("p50", Json(pct(0.50)));
        t.set("p99", Json(pct(0.99)));
        t.set("p999", Json(pct(0.999)));
        timersJson.set(name, std::move(t));
    }

    Json out = Json::object();
    out.set("counters", std::move(countersJson));
    out.set("gauges", std::move(gaugesJson));
    out.set("timers", std::move(timersJson));
    out.set("slo", SloRegistry::global().snapshotJson());
    return out;
}

std::string
MetricsRegistry::snapshotCsv() const
{
    const Json snap = snapshotJson();
    std::ostringstream os;
    os << "kind,name,count,value,mean,min,max\n";
    for (const auto &[name, v] : snap.at("counters").members())
        os << "counter," << name << "," << v.dump() << ",,,,\n";
    for (const auto &[name, v] : snap.at("gauges").members())
        os << "gauge," << name << ",," << v.dump() << ",,,\n";
    for (const auto &[name, t] : snap.at("timers").members()) {
        os << "timer," << name << "," << t.at("count").dump() << ",,"
           << t.at("mean").dump() << "," << t.at("min").dump() << ","
           << t.at("max").dump() << "\n";
    }
    return os.str();
}

bool
MetricsRegistry::writeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const std::string text = snapshotJson().dump(2);
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    std::fclose(f);
    return ok;
}

} // namespace coterie::obs
