#include "obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace coterie::obs {

namespace {

const Json kNull{};

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendNumber(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        // JSON has no NaN/Inf; telemetry values are clamped upstream,
        // so this is a belt-and-braces fallback, not a code path.
        out += "null";
        return;
    }
    char buf[40];
    // Integers (the common case: counts, ticks) print exactly;
    // %.17g round-trips every other double.
    if (v == std::floor(v) && std::fabs(v) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    }
    out += buf;
}

/** Recursive-descent parser over a raw character range. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    Json run()
    {
        Json v = parseValue();
        skipWs();
        if (!failed_ && pos_ != text_.size())
            fail("trailing characters after document");
        return failed_ ? Json() : v;
    }

  private:
    void
    fail(const std::string &msg)
    {
        if (!failed_ && error_)
            *error_ = msg + " at offset " + std::to_string(pos_);
        failed_ = true;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        const std::size_t len = std::char_traits<char>::length(word);
        if (text_.compare(pos_, len, word) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    Json
    parseValue()
    {
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of document");
            return {};
        }
        const char c = text_[pos_];
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return Json(parseString());
        if (literal("true"))
            return Json(true);
        if (literal("false"))
            return Json(false);
        if (literal("null"))
            return {};
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
            return parseNumber();
        fail(std::string("unexpected character '") + c + "'");
        return {};
    }

    Json
    parseNumber()
    {
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        const double v = std::strtod(start, &end);
        if (end == start) {
            fail("malformed number");
            return {};
        }
        pos_ += static_cast<std::size_t>(end - start);
        return Json(v);
    }

    std::string
    parseString()
    {
        std::string out;
        ++pos_; // opening quote
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    break;
                const char esc = text_[pos_++];
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size()) {
                        fail("truncated \\u escape");
                        return out;
                    }
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else {
                            fail("bad \\u escape digit");
                            return out;
                        }
                    }
                    // UTF-8 encode (BMP only; telemetry strings are
                    // ASCII, surrogate pairs are out of scope).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                  }
                  default:
                    fail(std::string("unknown escape '\\") + esc + "'");
                    return out;
                }
            } else {
                out += c;
            }
        }
        fail("unterminated string");
        return out;
    }

    Json
    parseArray()
    {
        Json arr = Json::array();
        ++pos_; // '['
        skipWs();
        if (consume(']'))
            return arr;
        for (;;) {
            arr.push(parseValue());
            if (failed_)
                return arr;
            skipWs();
            if (consume(']'))
                return arr;
            if (!consume(',')) {
                fail("expected ',' or ']' in array");
                return arr;
            }
        }
    }

    Json
    parseObject()
    {
        Json obj = Json::object();
        ++pos_; // '{'
        skipWs();
        if (consume('}'))
            return obj;
        for (;;) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected string key in object");
                return obj;
            }
            std::string key = parseString();
            skipWs();
            if (!consume(':')) {
                fail("expected ':' after object key");
                return obj;
            }
            obj.set(key, parseValue());
            if (failed_)
                return obj;
            skipWs();
            if (consume('}'))
                return obj;
            if (!consume(',')) {
                fail("expected ',' or '}' in object");
                return obj;
            }
        }
    }

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

} // namespace

const Json &
Json::at(const std::string &key) const
{
    for (const auto &[k, v] : members_)
        if (k == key)
            return v;
    return kNull;
}

bool
Json::contains(const std::string &key) const
{
    for (const auto &[k, v] : members_)
        if (k == key)
            return true;
    return false;
}

Json &
Json::push(Json value)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    items_.push_back(std::move(value));
    return *this;
}

Json &
Json::set(const std::string &key, Json value)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    for (auto &[k, v] : members_) {
        if (k == key) {
            v = std::move(value);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(value));
    return *this;
}

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    const bool pretty = indent >= 0;
    const auto newline = [&](int d) {
        if (pretty) {
            out += '\n';
            out.append(static_cast<std::size_t>(indent * d), ' ');
        }
    };
    switch (type_) {
      case Type::Null: out += "null"; break;
      case Type::Bool: out += bool_ ? "true" : "false"; break;
      case Type::Number: appendNumber(out, num_); break;
      case Type::String: appendEscaped(out, str_); break;
      case Type::Array:
        out += '[';
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            items_[i].dumpTo(out, indent, depth + 1);
        }
        if (!items_.empty())
            newline(depth);
        out += ']';
        break;
      case Type::Object:
        out += '{';
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            appendEscaped(out, members_[i].first);
            out += pretty ? ": " : ":";
            members_[i].second.dumpTo(out, indent, depth + 1);
        }
        if (!members_.empty())
            newline(depth);
        out += '}';
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

Json
Json::parse(const std::string &text, std::string *error)
{
    return Parser(text, error).run();
}

} // namespace coterie::obs
