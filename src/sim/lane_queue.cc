#include "sim/lane_queue.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "support/logging.hh"
#include "support/parallel.hh"

namespace coterie::sim {

namespace {

/**
 * Which lane the calling thread is currently executing in. The round
 * executor (and runInLane) stamps this around lane code so the
 * existing `queue.scheduleAt/scheduleIn/now` calls inside a session's
 * object graph route to the session's own lane with no signature
 * changes. Owner-tagged so nested engines (a solo run inside a fleet
 * barrier, tests with several queues) never cross-route.
 */
struct LaneCtx
{
    ParallelEventQueue *owner = nullptr;
    std::uint32_t lane = 0;
};

thread_local LaneCtx tlsLaneCtx;

/** RAII lane-context scope (restores the previous context, so nested
 *  runInLane bodies and barrier-time solo work compose). */
class LaneScope
{
  public:
    LaneScope(ParallelEventQueue *owner, std::uint32_t lane)
        : saved_(tlsLaneCtx)
    {
        tlsLaneCtx = LaneCtx{owner, lane};
    }
    ~LaneScope() { tlsLaneCtx = saved_; }
    LaneScope(const LaneScope &) = delete;
    LaneScope &operator=(const LaneScope &) = delete;

  private:
    LaneCtx saved_;
};

} // namespace

ParallelEventQueue::~ParallelEventQueue() = default;

std::uint32_t
ParallelEventQueue::createLane()
{
    if (!laneMode_)
        return 0;
    COTERIE_ASSERT(currentLane() == 0,
                   "createLane must be called from the control plane");
    auto lane = std::make_unique<Lane>();
    const auto id = static_cast<std::uint32_t>(lanes_.size()) + 1;
    lane->q = std::make_unique<LaneQueue>(id, now_);
    lanes_.push_back(std::move(lane));
    return id;
}

TimeMs
ParallelEventQueue::laneNow(std::uint32_t lane) const
{
    COTERIE_ASSERT(lane >= 1 && lane <= lanes_.size(),
                   "laneNow: no such lane ", lane);
    return lanes_[lane - 1]->q->now();
}

std::size_t
ParallelEventQueue::lanePending(std::uint32_t lane) const
{
    COTERIE_ASSERT(lane >= 1 && lane <= lanes_.size(),
                   "lanePending: no such lane ", lane);
    return lanes_[lane - 1]->q->pending();
}

std::uint32_t
ParallelEventQueue::currentLane() const
{
    return tlsLaneCtx.owner == this ? tlsLaneCtx.lane : 0;
}

void
ParallelEventQueue::runInLane(std::uint32_t lane,
                              const std::function<void()> &fn)
{
    if (lane == 0) {
        fn();
        return;
    }
    COTERIE_ASSERT(lane <= lanes_.size(), "runInLane: no such lane ",
                   lane);
    LaneScope scope(this, lane);
    fn();
}

void
ParallelEventQueue::postControl(EventFn fn)
{
    const std::uint32_t lane = currentLane();
    if (lane == 0) {
        controlPosted_.push_back(
            Posted{now_, controlPostSeq_++, std::move(fn)});
        return;
    }
    Lane &ln = *lanes_[lane - 1];
    ln.posted.push_back(Posted{ln.q->now(), ln.postSeq++, std::move(fn)});
}

void
ParallelEventQueue::setBarrierHook(std::function<void()> hook)
{
    barrierHook_ = std::move(hook);
}

void
ParallelEventQueue::noteLookaheadFloor(TimeMs floorMs)
{
    COTERIE_ASSERT(floorMs > 0.0,
                   "lookahead floor must be positive: ", floorMs);
    lookahead_ = std::min(lookahead_, floorMs);
}

void
ParallelEventQueue::enableCrossLane()
{
    COTERIE_ASSERT(lookahead_ > 0.0 && std::isfinite(lookahead_),
                   "enableCrossLane needs a declared finite lookahead "
                   "floor (noteLookaheadFloor)");
    crossLane_ = true;
}

void
ParallelEventQueue::scheduleCross(std::uint32_t targetLane, TimeMs when,
                                  EventFn fn)
{
    const std::uint32_t from = currentLane();
    COTERIE_ASSERT(from != 0,
                   "scheduleCross is lane-to-lane; the control plane "
                   "schedules into lanes via runInLane");
    COTERIE_ASSERT(crossLane_, "scheduleCross without enableCrossLane");
    COTERIE_ASSERT(targetLane >= 1 && targetLane <= lanes_.size(),
                   "scheduleCross: no such lane ", targetLane);
    Lane &ln = *lanes_[from - 1];
    COTERIE_ASSERT(when >= ln.q->now() + lookahead_,
                   "scheduleCross violates the conservative lookahead "
                   "contract: ",
                   when, " < ", ln.q->now(), " + ", lookahead_);
    ln.outbox.push_back(
        CrossEvent{targetLane, when, ln.sendSeq++, std::move(fn)});
}

TimeMs
ParallelEventQueue::now() const
{
    const std::uint32_t lane = currentLane();
    return lane == 0 ? now_ : lanes_[lane - 1]->q->now();
}

void
ParallelEventQueue::scheduleAt(TimeMs when, EventFn fn)
{
    const std::uint32_t lane = currentLane();
    if (lane == 0) {
        EventQueue::scheduleAt(when, std::move(fn));
        return;
    }
    lanes_[lane - 1]->q->scheduleAt(when, std::move(fn));
}

std::size_t
ParallelEventQueue::pending()
    const
{
    // Control backlog plus every lane's. Meaningful at barriers (the
    // governor's pressure signal); unspecified mid-round.
    std::size_t n = heap_.size();
    for (const auto &ln : lanes_)
        n += ln->q->pending();
    return n;
}

bool
ParallelEventQueue::step()
{
    COTERIE_ASSERT(lanes_.empty(),
                   "single-step is serial-mode only; lanes advance in "
                   "rounds (runUntil/runToCompletion)");
    return EventQueue::step();
}

TimeMs
ParallelEventQueue::nextEventAt() const
{
    TimeMs t = EventQueue::nextEventAt();
    for (const auto &ln : lanes_)
        t = std::min(t, ln->q->nextEventAt());
    return t;
}

std::uint64_t
ParallelEventQueue::executedEvents() const
{
    std::uint64_t n = executed_;
    for (const auto &ln : lanes_)
        n += ln->q->executedEvents();
    return n;
}

bool
ParallelEventQueue::anyLaneWork() const
{
    for (const auto &ln : lanes_)
        if (ln->q->pending() != 0)
            return true;
    return false;
}

bool
ParallelEventQueue::anyPosted() const
{
    if (!controlPosted_.empty())
        return true;
    for (const auto &ln : lanes_)
        if (!ln->posted.empty() || !ln->outbox.empty())
            return true;
    return false;
}

TimeMs
ParallelEventQueue::minLaneNow() const
{
    TimeMs t = std::numeric_limits<TimeMs>::infinity();
    for (const auto &ln : lanes_)
        t = std::min(t, ln->q->now());
    return t;
}

void
ParallelEventQueue::round(TimeMs cap)
{
    // 1. The round horizon: the next control event (nothing a lane
    //    cannot yet see can happen before it), capped by the caller's
    //    horizon and — when cross-lane traffic is enabled — by the
    //    conservative lookahead bound: no lane may outrun the earliest
    //    event the slowest lane could still send it.
    TimeMs horizon = cap;
    if (!heap_.empty())
        horizon = std::min(horizon, heap_.top().when);
    if (crossLane_ && !lanes_.empty())
        horizon = std::min(horizon, minLaneNow() + lookahead_);

    // 2. Advance every lane to the horizon in parallel. Chunk grain 1
    //    = one lane per chunk; chunk boundaries (and therefore what
    //    each lane executes) are thread-count independent, and each
    //    lane runs on exactly one thread per round, so intra-lane
    //    order is the serial engine's order exactly.
    if (!lanes_.empty()) {
        support::parallelFor(
            0, static_cast<std::int64_t>(lanes_.size()), 1,
            [&](std::int64_t b, std::int64_t e) {
                for (std::int64_t i = b; i < e; ++i) {
                    Lane &ln = *lanes_[static_cast<std::size_t>(i)];
                    LaneScope scope(this,
                                    static_cast<std::uint32_t>(i) + 1);
                    if (std::isinf(horizon))
                        ln.q->runToCompletion();
                    else
                        ln.q->runUntil(horizon);
                }
            });
    }

    // 3. Merge cross-lane sends in (source lane id, timestamp,
    //    sequence) order. The lookahead contract guarantees every
    //    `when` is at or past the horizon the target just reached, so
    //    insertion never violates the target's clock.
    for (auto &lnp : lanes_) {
        Lane &ln = *lnp;
        if (ln.outbox.empty())
            continue;
        std::stable_sort(ln.outbox.begin(), ln.outbox.end(),
                         [](const CrossEvent &a, const CrossEvent &b) {
                             if (a.when != b.when)
                                 return a.when < b.when;
                             return a.seq < b.seq;
                         });
        for (CrossEvent &ev : ln.outbox)
            lanes_[ev.target - 1]->q->scheduleAt(ev.when,
                                                 std::move(ev.fn));
        ln.outbox.clear();
    }

    // 4. Advance the control clock to the barrier instant before any
    //    control-plane code runs: with a finite horizon that is the
    //    horizon itself; with lanes fully drained it is the farthest
    //    lane clock (both pure functions of simulation state).
    if (std::isinf(horizon)) {
        for (const auto &ln : lanes_)
            now_ = std::max(now_, ln->q->now());
    } else {
        now_ = std::max(now_, horizon);
    }

    // 5. Barrier hook (the fleet's deferred shared-cache render
    //    batch), then lane-posted control actions in (lane id, posted
    //    time, sequence) order — already sorted by construction: the
    //    control buffer is lane 0, lane buffers append in monotone
    //    (time, sequence) order.
    if (barrierHook_)
        barrierHook_();
    std::vector<Posted> posted;
    posted.swap(controlPosted_);
    for (auto &lnp : lanes_) {
        for (Posted &p : lnp->posted)
            posted.push_back(std::move(p));
        lnp->posted.clear();
    }
    for (Posted &p : posted)
        p.fn();

    // 6. Control events up to the horizon, serially. These may admit
    //    new sessions (creating lanes) or schedule further control
    //    events inside the round; the loop keeps the control plane
    //    exactly as serial as the old engine.
    while (!heap_.empty() && heap_.top().when <= horizon)
        EventQueue::step();
}

void
ParallelEventQueue::runToCompletion()
{
    COTERIE_ASSERT(!running_, "re-entrant run on ParallelEventQueue");
    running_ = true;
    while (!heap_.empty() || anyLaneWork() || anyPosted())
        round(std::numeric_limits<TimeMs>::infinity());
    running_ = false;
}

void
ParallelEventQueue::runUntil(TimeMs horizon)
{
    COTERIE_ASSERT(!running_, "re-entrant run on ParallelEventQueue");
    running_ = true;
    auto workDue = [&] {
        if (!heap_.empty() && heap_.top().when <= horizon)
            return true;
        for (const auto &ln : lanes_)
            if (ln->q->nextEventAt() <= horizon)
                return true;
        return anyPosted();
    };
    while (workDue())
        round(horizon);
    now_ = std::max(now_, horizon);
    for (auto &ln : lanes_)
        ln->q->runUntil(horizon); // no events left <= horizon: clock bump
    running_ = false;
}

void
ParallelEventQueue::reset()
{
    COTERIE_ASSERT(!running_, "reset during run");
    EventQueue::reset();
    lanes_.clear();
    controlPosted_.clear();
    controlPostSeq_ = 0;
    crossLane_ = false;
    lookahead_ = kNoLookahead;
}

} // namespace coterie::sim
