/**
 * @file
 * Deterministic, sim-time-scripted fault injection (the chaos harness).
 *
 * Coterie's QoE argument (Tables 6/7, the 16.7 ms frame budget) assumes
 * the 802.11ac WLAN mostly delivers far-BE megaframes on time. A
 * FaultPlan scripts *when it does not*: composable episodes — loss
 * bursts, latency spikes, bandwidth collapse, full channel outage,
 * server prerender stalls, per-client disconnect/rejoin — each active
 * over a half-open sim-time window [startMs, endMs).
 *
 * The plan is a pure function of simulation time: every query
 * (`extraLossProbability(t)`, `bandwidthFactor(t)`, ...) depends only
 * on the scripted episodes and @p t, never on wall clocks or call
 * order, so chaos runs are bit-identical at any `COTERIE_THREADS`.
 * Consumers (SharedChannel, FrameServer, the split-rendering client)
 * hold a `const FaultPlan *`; a null or empty plan must be a strict
 * no-op — the degradation hooks all collapse to the pre-chaos code
 * path.
 *
 * `FaultDriver` is the observe-only companion: it schedules one event
 * per episode boundary that emits trace instants, counter tracks, and
 * the `fault.episodes` counter, so chaos runs are diagnosable from a
 * single `tools/trace_report` invocation. It never mutates simulation
 * state.
 */

#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/event_queue.hh"

namespace coterie::sim {

/** The degradation modes a plan can script. */
enum class FaultKind : std::uint8_t
{
    LossBurst,         ///< added TCP loss-episode probability
    LatencySpike,      ///< added per-transfer latency (ms)
    BandwidthCollapse, ///< goodput multiplied by a factor < 1
    Outage,            ///< channel delivers nothing
    ServerStall,       ///< server cannot start serving new requests
    Disconnect,        ///< a client drops off the WLAN entirely
};

/** Stable lowercase name for a fault kind (trace/report labels). */
const char *faultKindName(FaultKind kind);

/** One scripted degradation episode, active over [startMs, endMs). */
struct FaultEpisode
{
    FaultKind kind = FaultKind::LossBurst;
    TimeMs startMs = 0.0;
    TimeMs endMs = 0.0;
    /**
     * Kind-specific magnitude:
     *  - LossBurst: added loss-episode probability in [0, 1]
     *  - LatencySpike: added per-transfer latency, ms
     *  - BandwidthCollapse: remaining-capacity factor in (0, 1]
     *  - Outage / ServerStall / Disconnect: unused (0)
     */
    double magnitude = 0.0;
    /** Disconnect only: affected client id; -1 means every client. */
    int clientId = -1;
};

/**
 * An ordered script of fault episodes plus the time-varying queries the
 * degradation hooks evaluate. Copyable value type; episodes may overlap
 * freely (effects compose: losses and latencies add, bandwidth factors
 * multiply).
 */
class FaultPlan
{
  public:
    FaultPlan() = default;

    /** Append an episode (episodes need not be sorted). */
    FaultPlan &add(const FaultEpisode &episode);

    // Chainable episode builders.
    FaultPlan &lossBurst(TimeMs start, TimeMs end, double addedProbability);
    FaultPlan &latencySpike(TimeMs start, TimeMs end, double extraMs);
    FaultPlan &bandwidthCollapse(TimeMs start, TimeMs end, double factor);
    FaultPlan &outage(TimeMs start, TimeMs end);
    FaultPlan &serverStall(TimeMs start, TimeMs end);
    FaultPlan &disconnect(TimeMs start, TimeMs end, int clientId);

    bool empty() const { return episodes_.empty(); }
    std::size_t size() const { return episodes_.size(); }
    const std::vector<FaultEpisode> &episodes() const { return episodes_; }

    /** Sum of active LossBurst magnitudes at @p t, clamped to [0, 1]. */
    double extraLossProbability(TimeMs t) const;

    /** Sum of active LatencySpike magnitudes at @p t (ms). */
    double extraLatencyMs(TimeMs t) const;

    /**
     * Product of active BandwidthCollapse factors at @p t, 0 during an
     * Outage. 1 when nothing is active.
     */
    double bandwidthFactor(TimeMs t) const;

    /** True while any ServerStall episode is active. */
    bool serverStalled(TimeMs t) const;

    /**
     * End of the stall in force at @p t, following chained/overlapping
     * ServerStall episodes; @p t itself when no stall is active.
     */
    TimeMs serverStallEndsAt(TimeMs t) const;

    /** True while @p clientId (or everyone) is scripted offline. */
    bool disconnected(int clientId, TimeMs t) const;

    /** End of the disconnect in force for @p clientId at @p t
     *  (chained episodes followed); @p t when connected. */
    TimeMs reconnectsAt(int clientId, TimeMs t) const;

    /** Number of episodes active at @p t (trace counter track). */
    int activeEpisodes(TimeMs t) const;

    /**
     * The next episode start or end strictly after @p t, or +infinity
     * when the script has run out. Lets the channel bound its
     * progress-integration steps to piecewise-constant fault windows.
     */
    TimeMs nextBoundaryAfter(TimeMs t) const;

    /**
     * The plan rescaled to @p severity in [0, 1]: loss/latency
     * magnitudes scale linearly, a bandwidth factor f becomes
     * 1 - (1 - f) * severity, and the binary episodes (outage, stall,
     * disconnect) keep their start but scale their duration. Severity 0
     * therefore degrades nothing; severity 1 is the plan as written.
     * The bench_chaos QoE-vs-severity sweep is built on this.
     */
    FaultPlan scaled(double severity) const;

  private:
    std::vector<FaultEpisode> episodes_;
};

/**
 * Observe-only chaos narrator: walks a plan's episode boundaries on the
 * event queue, emitting `fault.<kind>` begin/end trace instants (with
 * sim-time args), a `fault.active_episodes` counter track, and the
 * `fault.episodes` metric — nothing else. Arm once before running the
 * queue; the driver must outlive the run.
 */
class FaultDriver
{
  public:
    /**
     * @p label (optional) prefixes every emitted event name
     * (`<label>/fault.<kind>.begin`), attributing episodes to one
     * session when a fleet interleaves several fault plans on a
     * shared queue. Empty = the bare `fault.<kind>` names.
     */
    FaultDriver(EventQueue &queue, const FaultPlan &plan,
                std::string label = {});

    /** Schedule the boundary events (idempotent per driver). */
    void arm();

  private:
    void emitBoundary(const FaultEpisode &episode, bool begin);

    EventQueue &queue_;
    const FaultPlan &plan_;
    std::string label_;
    bool armed_ = false;
};

} // namespace coterie::sim
