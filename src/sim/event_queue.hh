/**
 * @file
 * Discrete-event simulation core.
 *
 * The network model (shared 802.11ac channel, flows, clients) and the
 * end-to-end system benches run on this queue. Time is kept in double
 * milliseconds, matching the paper's reporting unit.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

namespace coterie::sim {

/** Simulation time in milliseconds. */
using TimeMs = double;

/** Callback invoked when an event fires. */
using EventFn = std::function<void()>;

/**
 * A priority-ordered event queue with stable FIFO ordering among events
 * scheduled for the same instant.
 *
 * The interface is virtual so a drop-in parallel engine
 * (`sim::ParallelEventQueue`, lane_queue.hh) can shard events into
 * per-session lanes behind the same `scheduleAt`/`scheduleIn`/`now`
 * surface; every consumer holds an `EventQueue&` and never needs to
 * know which engine drives it.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    virtual ~EventQueue() = default;

    /** Current simulation time. */
    virtual TimeMs now() const { return now_; }

    /** Schedule @p fn to run at absolute time @p when (>= now). */
    virtual void scheduleAt(TimeMs when, EventFn fn);

    /** Schedule @p fn to run @p delay ms from now. (Non-virtual: it
     *  delegates to the virtual now()/scheduleAt pair.) */
    void scheduleIn(TimeMs delay, EventFn fn);

    /** Number of pending events. */
    virtual std::size_t pending() const { return heap_.size(); }

    /** Time of the earliest pending event (+inf when empty). For the
     *  serial queue this is the head of the single heap; the parallel
     *  engine overrides it with the minimum across control and lane
     *  heaps. */
    virtual TimeMs nextEventAt() const
    {
        return heap_.empty()
                   ? std::numeric_limits<TimeMs>::infinity()
                   : heap_.top().when;
    }

    /** Run a single event; returns false when the queue is empty. */
    virtual bool step();

    /** Run until the queue drains or time would exceed @p horizon. */
    virtual void runUntil(TimeMs horizon);

    /** Run until the queue drains completely. */
    virtual void runToCompletion();

    /** Drop all pending events and reset the clock to zero. */
    virtual void reset();

    /** Events executed since construction (throughput reporting). */
    virtual std::uint64_t executedEvents() const { return executed_; }

    /**
     * A channel (or any cross-lane coupling) declares its minimum
     * cross-entity interaction delay — the conservative-PDES lookahead
     * floor. The serial engine has no lanes to synchronize, so this is
     * a no-op; `ParallelEventQueue` records the minimum declared floor
     * and uses it to bound how far lanes may run ahead of each other
     * when cross-lane traffic is enabled.
     */
    virtual void noteLookaheadFloor(TimeMs floorMs) { (void)floorMs; }

  protected:
    struct Event
    {
        TimeMs when;
        std::uint64_t seq;
        EventFn fn;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    TimeMs now_ = 0.0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

} // namespace coterie::sim

