/**
 * @file
 * Discrete-event simulation core.
 *
 * The network model (shared 802.11ac channel, flows, clients) and the
 * end-to-end system benches run on this queue. Time is kept in double
 * milliseconds, matching the paper's reporting unit.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace coterie::sim {

/** Simulation time in milliseconds. */
using TimeMs = double;

/** Callback invoked when an event fires. */
using EventFn = std::function<void()>;

/**
 * A priority-ordered event queue with stable FIFO ordering among events
 * scheduled for the same instant.
 */
class EventQueue
{
  public:
    /** Current simulation time. */
    TimeMs now() const { return now_; }

    /** Schedule @p fn to run at absolute time @p when (>= now). */
    void scheduleAt(TimeMs when, EventFn fn);

    /** Schedule @p fn to run @p delay ms from now. */
    void scheduleIn(TimeMs delay, EventFn fn);

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /** Run a single event; returns false when the queue is empty. */
    bool step();

    /** Run until the queue drains or time would exceed @p horizon. */
    void runUntil(TimeMs horizon);

    /** Run until the queue drains completely. */
    void runToCompletion();

    /** Drop all pending events and reset the clock to zero. */
    void reset();

  private:
    struct Event
    {
        TimeMs when;
        std::uint64_t seq;
        EventFn fn;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    TimeMs now_ = 0.0;
    std::uint64_t nextSeq_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

} // namespace coterie::sim

