#include "sim/event_queue.hh"

#include <utility>

#include "support/logging.hh"

namespace coterie::sim {

void
EventQueue::scheduleAt(TimeMs when, EventFn fn)
{
    COTERIE_ASSERT(when >= now_, "event scheduled in the past: ", when,
                   " < ", now_);
    heap_.push(Event{when, nextSeq_++, std::move(fn)});
}

void
EventQueue::scheduleIn(TimeMs delay, EventFn fn)
{
    COTERIE_ASSERT(delay >= 0.0, "negative delay: ", delay);
    // Virtual dispatch on both now() and scheduleAt: under the lane
    // engine a relative delay is lane-relative, and the event lands in
    // the scheduling lane's heap.
    scheduleAt(now() + delay, std::move(fn));
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    Event ev = heap_.top();
    heap_.pop();
    now_ = ev.when;
    ++executed_;
    ev.fn();
    return true;
}

void
EventQueue::runUntil(TimeMs horizon)
{
    while (!heap_.empty() && heap_.top().when <= horizon) {
        if (!step())
            break;
    }
    now_ = std::max(now_, horizon);
}

void
EventQueue::runToCompletion()
{
    while (step()) {
    }
}

void
EventQueue::reset()
{
    now_ = 0.0;
    nextSeq_ = 0;
    executed_ = 0;
    heap_ = {};
}

} // namespace coterie::sim
