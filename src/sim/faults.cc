#include "sim/faults.hh"

#include <algorithm>
#include <cmath>

#include "obs/flight.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "support/logging.hh"

namespace coterie::sim {

namespace {

/** Episode active test for the half-open window [startMs, endMs). */
bool
activeAt(const FaultEpisode &e, TimeMs t)
{
    return t >= e.startMs && t < e.endMs;
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::LossBurst: return "loss_burst";
      case FaultKind::LatencySpike: return "latency_spike";
      case FaultKind::BandwidthCollapse: return "bandwidth_collapse";
      case FaultKind::Outage: return "outage";
      case FaultKind::ServerStall: return "server_stall";
      case FaultKind::Disconnect: return "disconnect";
    }
    return "unknown";
}

FaultPlan &
FaultPlan::add(const FaultEpisode &episode)
{
    COTERIE_ASSERT(episode.endMs >= episode.startMs,
                   "fault episode must not end before it starts");
    episodes_.push_back(episode);
    return *this;
}

FaultPlan &
FaultPlan::lossBurst(TimeMs start, TimeMs end, double addedProbability)
{
    return add({FaultKind::LossBurst, start, end,
                std::clamp(addedProbability, 0.0, 1.0), -1});
}

FaultPlan &
FaultPlan::latencySpike(TimeMs start, TimeMs end, double extraMs)
{
    return add({FaultKind::LatencySpike, start, end,
                std::max(0.0, extraMs), -1});
}

FaultPlan &
FaultPlan::bandwidthCollapse(TimeMs start, TimeMs end, double factor)
{
    return add({FaultKind::BandwidthCollapse, start, end,
                std::clamp(factor, 1e-6, 1.0), -1});
}

FaultPlan &
FaultPlan::outage(TimeMs start, TimeMs end)
{
    return add({FaultKind::Outage, start, end, 0.0, -1});
}

FaultPlan &
FaultPlan::serverStall(TimeMs start, TimeMs end)
{
    return add({FaultKind::ServerStall, start, end, 0.0, -1});
}

FaultPlan &
FaultPlan::disconnect(TimeMs start, TimeMs end, int clientId)
{
    return add({FaultKind::Disconnect, start, end, 0.0, clientId});
}

double
FaultPlan::extraLossProbability(TimeMs t) const
{
    double p = 0.0;
    for (const FaultEpisode &e : episodes_)
        if (e.kind == FaultKind::LossBurst && activeAt(e, t))
            p += e.magnitude;
    return std::min(1.0, p);
}

double
FaultPlan::extraLatencyMs(TimeMs t) const
{
    double ms = 0.0;
    for (const FaultEpisode &e : episodes_)
        if (e.kind == FaultKind::LatencySpike && activeAt(e, t))
            ms += e.magnitude;
    return ms;
}

double
FaultPlan::bandwidthFactor(TimeMs t) const
{
    double factor = 1.0;
    for (const FaultEpisode &e : episodes_) {
        if (!activeAt(e, t))
            continue;
        if (e.kind == FaultKind::Outage)
            return 0.0;
        if (e.kind == FaultKind::BandwidthCollapse)
            factor *= e.magnitude;
    }
    return factor;
}

bool
FaultPlan::serverStalled(TimeMs t) const
{
    for (const FaultEpisode &e : episodes_)
        if (e.kind == FaultKind::ServerStall && activeAt(e, t))
            return true;
    return false;
}

TimeMs
FaultPlan::serverStallEndsAt(TimeMs t) const
{
    // Follow chained/overlapping stalls: keep extending while some
    // stall covers the current end time.
    TimeMs end = t;
    bool extended = true;
    while (extended) {
        extended = false;
        for (const FaultEpisode &e : episodes_) {
            if (e.kind == FaultKind::ServerStall && activeAt(e, end) &&
                e.endMs > end) {
                end = e.endMs;
                extended = true;
            }
        }
    }
    return end;
}

bool
FaultPlan::disconnected(int clientId, TimeMs t) const
{
    for (const FaultEpisode &e : episodes_)
        if (e.kind == FaultKind::Disconnect && activeAt(e, t) &&
            (e.clientId < 0 || e.clientId == clientId))
            return true;
    return false;
}

TimeMs
FaultPlan::reconnectsAt(int clientId, TimeMs t) const
{
    TimeMs end = t;
    bool extended = true;
    while (extended) {
        extended = false;
        for (const FaultEpisode &e : episodes_) {
            if (e.kind == FaultKind::Disconnect && activeAt(e, end) &&
                (e.clientId < 0 || e.clientId == clientId) &&
                e.endMs > end) {
                end = e.endMs;
                extended = true;
            }
        }
    }
    return end;
}

int
FaultPlan::activeEpisodes(TimeMs t) const
{
    int n = 0;
    for (const FaultEpisode &e : episodes_)
        if (activeAt(e, t))
            ++n;
    return n;
}

TimeMs
FaultPlan::nextBoundaryAfter(TimeMs t) const
{
    TimeMs next = std::numeric_limits<TimeMs>::infinity();
    for (const FaultEpisode &e : episodes_) {
        if (e.startMs > t)
            next = std::min(next, e.startMs);
        if (e.endMs > t)
            next = std::min(next, e.endMs);
    }
    return next;
}

FaultPlan
FaultPlan::scaled(double severity) const
{
    const double s = std::clamp(severity, 0.0, 1.0);
    FaultPlan plan;
    for (FaultEpisode e : episodes_) {
        switch (e.kind) {
          case FaultKind::LossBurst:
          case FaultKind::LatencySpike:
            e.magnitude *= s;
            break;
          case FaultKind::BandwidthCollapse:
            e.magnitude = 1.0 - (1.0 - e.magnitude) * s;
            break;
          case FaultKind::Outage:
          case FaultKind::ServerStall:
          case FaultKind::Disconnect:
            e.endMs = e.startMs + (e.endMs - e.startMs) * s;
            break;
        }
        // Episodes scaled to nothing are dropped so the empty-plan
        // no-op guarantee holds at severity 0.
        const bool inert =
            (e.kind == FaultKind::LossBurst && e.magnitude <= 0.0) ||
            (e.kind == FaultKind::LatencySpike && e.magnitude <= 0.0) ||
            (e.kind == FaultKind::BandwidthCollapse &&
             e.magnitude >= 1.0) ||
            e.endMs <= e.startMs;
        if (!inert)
            plan.add(e);
    }
    return plan;
}

FaultDriver::FaultDriver(EventQueue &queue, const FaultPlan &plan,
                         std::string label)
    : queue_(queue), plan_(plan), label_(std::move(label))
{
}

void
FaultDriver::emitBoundary(const FaultEpisode &episode, bool begin)
{
    const TimeMs now = queue_.now();
    const std::string name = (label_.empty() ? std::string()
                                             : label_ + "/") +
                             "fault." + faultKindName(episode.kind) +
                             (begin ? ".begin" : ".end");
    obs::TraceRecorder::global().instant(name.c_str(), "fault", now);
    obs::TraceRecorder::global().counter(
        "fault.active_episodes",
        static_cast<double>(plan_.activeEpisodes(now)));
    // Episode boundaries are natural flight-recorder checkpoints: mark
    // the boundary in the ring, and snapshot the ring to disk when the
    // operator opted in via COTERIE_FLIGHT_DUMP.
    obs::flight::recordInstant(obs::flight::intern(name), "fault", now);
    obs::flight::dumpOnEpisodeBoundary();
    if (begin)
        COTERIE_COUNT("fault.episodes");
}

void
FaultDriver::arm()
{
    if (armed_)
        return;
    armed_ = true;
    for (const FaultEpisode &episode : plan_.episodes()) {
        // Capture by value from the plan (the driver references the
        // caller's plan; both must outlive the run by contract, so no
        // revalidation guard is needed in these callbacks).
        const FaultEpisode e = episode;
        const TimeMs now = queue_.now();
        queue_.scheduleAt(std::max(now, e.startMs), // lint:allow(epoch-guarded-schedule)
                          [this, e] { emitBoundary(e, true); });
        queue_.scheduleAt(std::max(now, e.endMs), // lint:allow(epoch-guarded-schedule)
                          [this, e] { emitBoundary(e, false); });
    }
}

} // namespace coterie::sim
