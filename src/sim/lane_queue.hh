/**
 * @file
 * Parallel discrete-event engine: per-session lanes with conservative
 * lookahead (DESIGN.md §12).
 *
 * The serial `sim::EventQueue` drives the whole fleet on one core. The
 * engine here shards events into **lanes** — one serial `LaneQueue`
 * per fleet session plus a lane-0 *control plane* (the manager's
 * admission wakes, governor ticks, and finalize horizons). Rounds
 * alternate:
 *
 *   1. every lane advances independently (on the shared thread pool)
 *      up to the round horizon — the next control-event time, further
 *      capped at `min(laneNow) + lookahead` when cross-lane traffic is
 *      enabled (the conservative-PDES null-message bound; the channel
 *      latency floor registered via noteLookaheadFloor);
 *   2. cross-lane sends buffered during the round merge into their
 *      target lanes in **(source lane id, timestamp, sequence)** order;
 *   3. the barrier hook runs (the fleet drains its deferred
 *      shared-cache render batch here);
 *   4. lane-posted control actions drain in the same (lane id, posted
 *      time, sequence) order;
 *   5. control events at or before the horizon run serially.
 *
 * Determinism argument: within a lane, events run in exactly the
 * serial engine's (time, FIFO-sequence) order on one thread at a time.
 * Across lanes, every interaction is funneled through steps 2–5, whose
 * order is a pure function of simulation state — never of wall-clock
 * interleaving — so results are bit-identical at any COTERIE_THREADS.
 *
 * Routing is implicit: code running inside a lane (its events, or a
 * `runInLane` body) sees `now()` as the lane clock and `scheduleAt`
 * lands in the lane's own heap, so `SharedChannel`, `FrameServer`,
 * `FaultDriver` and the whole per-session stack work unchanged against
 * their existing `sim::EventQueue&` reference.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "sim/event_queue.hh"

namespace coterie::sim {

/**
 * One serial event lane. Exactly the serial `EventQueue` contract
 * (same-time FIFO, relative scheduling, run-until-horizon), plus an
 * identity and a creation-time clock: a lane born at control time T
 * starts with `now() == T`, so a session started mid-run schedules
 * relative to its admission instant just as it would on the shared
 * serial queue.
 */
class LaneQueue final : public EventQueue
{
  public:
    LaneQueue(std::uint32_t id, TimeMs startClock) : id_(id)
    {
        now_ = startClock;
    }

    std::uint32_t id() const { return id_; }

  private:
    const std::uint32_t id_;
};

/**
 * The parallel engine. A drop-in `EventQueue`: with no lanes created
 * it degenerates to the serial queue (one control heap, global FIFO
 * sequence), which is also the serial baseline the benches A/B
 * against.
 */
class ParallelEventQueue final : public EventQueue
{
  public:
    /** @p laneMode false forces the serial degenerate mode: createLane
     *  returns 0 and everything runs on the control heap. */
    explicit ParallelEventQueue(bool laneMode = true)
        : laneMode_(laneMode)
    {
    }

    ~ParallelEventQueue() override;

    // --- Lane management -------------------------------------------

    /** Create a lane whose clock starts at the control clock. Returns
     *  its id (>= 1), or 0 in serial mode (events stay on the control
     *  heap). Call from the control plane, never from inside a lane. */
    std::uint32_t createLane();

    /** Lanes created so far (excluding the control plane). */
    std::size_t laneCount() const { return lanes_.size(); }

    /** Lane-local clock (asserts the lane exists). */
    TimeMs laneNow(std::uint32_t lane) const;

    /** Pending events in one lane. */
    std::size_t lanePending(std::uint32_t lane) const;

    /**
     * The lane the calling thread is executing in: 0 for the control
     * plane / outside the engine, otherwise the lane id. Lane context
     * is established by the round executor around lane events and by
     * runInLane.
     */
    std::uint32_t currentLane() const;

    /**
     * Run @p fn with lane context established: `now()` reads the lane
     * clock and `scheduleAt`/`scheduleIn` land in the lane's heap.
     * This is how a session's object graph is constructed *into* its
     * lane — ctor-time scheduling (fault-driver arming, client frame
     * staggering) lands in-lane without any signature changes. With
     * lane 0 (serial mode) @p fn just runs inline.
     */
    void runInLane(std::uint32_t lane, const std::function<void()> &fn);

    // --- Barrier-deferred cross-lane interaction -------------------

    /**
     * Defer @p fn to the next round barrier, to run on the control
     * plane after all lanes have joined. Posts drain in (lane id,
     * posted lane time, sequence) order — the deterministic merge
     * order — before any control event at the horizon runs. This is
     * the only legal way for lane code to reach state owned by the
     * control plane or by another lane.
     */
    void postControl(EventFn fn);

    /** Control-plane callback invoked at every round barrier (after
     *  lanes join and cross-lane merges apply, before posted actions
     *  and control events). The fleet drains its deferred render
     *  batch here. */
    void setBarrierHook(std::function<void()> hook);

    // --- Conservative cross-lane scheduling ------------------------

    /** Record the minimum declared cross-lane interaction delay. */
    void noteLookaheadFloor(TimeMs floorMs) override;

    /** The recorded lookahead floor (infinity until declared). */
    TimeMs lookaheadFloorMs() const { return lookahead_; }

    /**
     * Enable conservative cross-lane scheduling: every round horizon
     * is additionally capped at `min(laneNow) + lookaheadFloorMs()`,
     * so no lane can outrun the earliest event another lane could
     * still send it. Requires a declared (finite, positive) lookahead
     * floor. Call before running; fleets of isolated sessions never
     * need it (their mutual lookahead is infinite).
     */
    void enableCrossLane();

    /**
     * Schedule @p fn into another lane from inside a lane. The
     * conservative contract: @p when must be at least the sender's
     * `now()` plus the lookahead floor — the channel's per-transfer
     * latency floor guarantees any real cross-session interaction
     * satisfies this. The event is buffered in the sender's outbox and
     * merged into the target lane at the round barrier in (source lane
     * id, timestamp, sequence) order.
     */
    void scheduleCross(std::uint32_t targetLane, TimeMs when, EventFn fn);

    // --- EventQueue interface --------------------------------------

    TimeMs now() const override;
    void scheduleAt(TimeMs when, EventFn fn) override;
    std::size_t pending() const override;
    TimeMs nextEventAt() const override;
    bool step() override;
    void runUntil(TimeMs horizon) override;
    void runToCompletion() override;
    void reset() override;
    std::uint64_t executedEvents() const override;

  private:
    struct Posted
    {
        TimeMs at;         ///< sender's lane clock at post time
        std::uint64_t seq; ///< per-lane post sequence
        EventFn fn;
    };
    struct CrossEvent
    {
        std::uint32_t target;
        TimeMs when;
        std::uint64_t seq; ///< per-sender-lane send sequence
        EventFn fn;
    };
    /** Per-lane state beyond the heap itself. The deferred buffers are
     *  written only by the lane's own (single) executing thread during
     *  a round and drained only at barriers, so they need no locks.
     *  Growth is bounded by the events of one round: every barrier
     *  empties them. */
    struct Lane
    {
        std::unique_ptr<LaneQueue> q;
        std::vector<Posted> posted;     // bounded: drained every barrier
        std::vector<CrossEvent> outbox; // bounded: drained every barrier
        std::uint64_t postSeq = 0;
        std::uint64_t sendSeq = 0;
    };

    bool anyLaneWork() const;
    bool anyPosted() const;
    TimeMs minLaneNow() const;
    /** One round up to @p cap (cap = +inf for runToCompletion). */
    void round(TimeMs cap);

    const bool laneMode_;
    bool crossLane_ = false;
    TimeMs lookahead_ = kNoLookahead;
    std::vector<std::unique_ptr<Lane>> lanes_;
    /** Control-plane posts (lane id 0 in the merge order). Bounded:
     *  drained every barrier. */
    std::vector<Posted> controlPosted_;
    std::uint64_t controlPostSeq_ = 0;
    std::function<void()> barrierHook_;
    bool running_ = false;

    static constexpr TimeMs kNoLookahead =
        std::numeric_limits<TimeMs>::infinity();
};

} // namespace coterie::sim
