/**
 * @file
 * Shared wireless channel model (802.11ac WLAN).
 *
 * The paper's scaling bottleneck is the shared downlink: with N players
 * the per-frame transfer latency grows ~N-fold (Table 1). We model the
 * channel as a processor-sharing fluid link: concurrent transfers split
 * the measured TCP goodput (500 Mbps in the paper's testbed) equally,
 * plus a fixed per-transfer latency floor (TCP/WiFi RTT).
 *
 * Chaos hooks: an optional `sim::FaultPlan` makes the link time-varying
 * — loss bursts raise the retransmission-episode probability, latency
 * spikes stretch the pre-transfer floor, bandwidth collapses scale the
 * goodput, and outages freeze service entirely. Progress is integrated
 * piecewise between fault boundaries, so scripted degradation is exact
 * and deterministic. Transfers are addressable (`TransferId`) and can
 * be cancelled mid-flight or given a hard per-transfer deadline; both
 * release the cancelled transfer's share of the link immediately (the
 * TCP-reset analogue the resilience layer relies on). A null or empty
 * plan and default options reproduce the pre-chaos channel bit for
 * bit.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>

#include "obs/frame_trace.hh"
#include "sim/event_queue.hh"
#include "sim/faults.hh"
#include "support/rng.hh"

namespace coterie::net {

/** Completion callback for a transfer. */
using TransferDone = std::function<void(sim::TimeMs completedAt)>;

/** Handle for an issued transfer; 0 is never a valid id. */
using TransferId = std::uint64_t;
inline constexpr TransferId kInvalidTransfer = 0;

/** Per-transfer delivery constraints (all optional). */
struct TransferOptions
{
    /**
     * Hard deadline measured from the startTransfer call (ms); if the
     * payload has not fully arrived by then the transfer is dropped,
     * its link share is released, and @p onExpired fires instead of
     * the completion callback. <= 0 disables.
     */
    double deadlineMs = 0.0;
    /** Fired (at the deadline) when the transfer expires. */
    TransferDone onExpired;
    /** Causal trace identity travelling with the payload; a Transfer
     *  hop is stamped at delivery (or at expiry). Inert by default. */
    obs::FrameTraceContext trace;
};

/** Channel configuration. */
struct ChannelParams
{
    double goodputMbps = 500.0;  ///< measured TCP throughput (iperf)
    double baseLatencyMs = 1.2;  ///< request + ACK RTT floor
    /** MAC efficiency loss per extra concurrent station (contention
     *  overhead beyond pure fair sharing), e.g. 0.03 = 3% per extra.
     *  Efficiency never drops below the 0.3 floor. */
    double contentionPenalty = 0.03;
    /**
     * Random per-transfer extra latency (ms, exponential mean); models
     * WiFi MAC backoff jitter. 0 disables.
     */
    double jitterMeanMs = 0.0;
    /**
     * Probability that a transfer suffers a TCP loss/retransmission
     * episode, which adds retransmitPenaltyMs and re-serves a fraction
     * of the payload. 0 disables. A FaultPlan's loss bursts add to
     * this per transfer.
     */
    double lossProbability = 0.0;
    double retransmitPenaltyMs = 8.0;
    double retransmitFraction = 0.1;
    /** Seed for the jitter/loss draws. */
    std::uint64_t seed = 1234;
};

/**
 * Processor-sharing shared link driven by an EventQueue. Start a
 * transfer with startTransfer(); all in-flight transfers progress at
 * capacity / nActive, recomputed whenever membership changes or a
 * scripted fault boundary passes.
 */
class SharedChannel
{
  public:
    SharedChannel(sim::EventQueue &queue, ChannelParams params = {},
                  const sim::FaultPlan *faults = nullptr);

    /** Begin transferring @p bytes; @p done fires on completion. */
    TransferId startTransfer(std::uint64_t bytes, TransferDone done);

    /** As above with per-transfer options (deadline, expiry). */
    TransferId startTransfer(std::uint64_t bytes, TransferDone done,
                             TransferOptions options);

    /**
     * Abort a pending or in-flight transfer. Its callbacks never fire
     * and its link share is released at once. Returns false when the
     * id is unknown (already delivered, expired, or cancelled).
     */
    bool cancel(TransferId id);

    /** Number of in-flight transfers (excludes latency-phase starts). */
    std::size_t active() const { return transfers_.size(); }

    /** Transfers still in their pre-transfer latency phase. */
    std::size_t pendingStarts() const { return pending_.size(); }

    /** Total bytes delivered since construction. */
    std::uint64_t bytesDelivered() const { return bytesDelivered_; }

    /** Transfers dropped by cancel() / a missed deadline. */
    std::uint64_t cancelledCount() const { return cancelled_; }
    std::uint64_t expiredCount() const { return expired_; }

    /** Average utilised throughput over the simulation so far (Mbps). */
    double meanThroughputMbps() const;

    const ChannelParams &params() const { return params_; }
    const sim::FaultPlan *faults() const { return faults_; }

    /**
     * Conservative-PDES lookahead floor (DESIGN.md §12): no transfer
     * can complete — and therefore no cross-entity interaction through
     * this channel can take effect — sooner than the fixed
     * request+ACK RTT floor after it is requested. The constructor
     * declares this bound to the driving queue (`noteLookaheadFloor`),
     * which is what lets a parallel engine advance other lanes up to
     * `now + lookaheadFloorMs()` without waiting on this one.
     */
    sim::TimeMs lookaheadFloorMs() const { return params_.baseLatencyMs; }

  private:
    struct Transfer
    {
        double remainingBits = 0.0;
        std::uint64_t totalBytes = 0;
        sim::TimeMs requestedAt = 0.0; ///< sim time startTransfer ran
        sim::TimeMs deadlineAt =
            std::numeric_limits<double>::infinity();
        TransferDone done;
        TransferDone onExpired;
        obs::FrameTraceContext trace;
    };

    /** Fault-scaled per-transfer service rate (bits/ms) at time @p t
     *  under the current membership. */
    double rateBitsPerMsAt(sim::TimeMs t) const;

    /** Integrate service piecewise over [lastUpdate_, now] — segments
     *  split at fault boundaries, where the rate steps. */
    void serveUntil(sim::TimeMs now);

    /** Advance all transfers to now, fire completions (after the
     *  membership scan — callbacks may re-enter), then reschedule. */
    void progressAndReschedule();

    /** Move a latency-phase transfer onto the wire (start event). */
    void beginPending(TransferId id);

    /** Deadline event: drop @p id if it is late, firing onExpired. */
    void cancelIfExpired(TransferId id);

    sim::EventQueue &queue_;
    ChannelParams params_;
    const sim::FaultPlan *faults_ = nullptr;
    std::map<TransferId, Transfer> transfers_; ///< on the wire
    std::map<TransferId, Transfer> pending_;   ///< latency phase
    TransferId nextId_ = 0;
    std::uint64_t epoch_ = 0; ///< invalidates stale finish events
    sim::TimeMs lastUpdate_ = 0.0;
    std::uint64_t bytesDelivered_ = 0;
    std::uint64_t cancelled_ = 0;
    std::uint64_t expired_ = 0;
    Rng rng_;
};

} // namespace coterie::net
