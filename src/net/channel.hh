/**
 * @file
 * Shared wireless channel model (802.11ac WLAN).
 *
 * The paper's scaling bottleneck is the shared downlink: with N players
 * the per-frame transfer latency grows ~N-fold (Table 1). We model the
 * channel as a processor-sharing fluid link: concurrent transfers split
 * the measured TCP goodput (500 Mbps in the paper's testbed) equally,
 * plus a fixed per-transfer latency floor (TCP/WiFi RTT).
 */

#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "sim/event_queue.hh"
#include "support/rng.hh"

namespace coterie::net {

/** Completion callback for a transfer. */
using TransferDone = std::function<void(sim::TimeMs completedAt)>;

/** Channel configuration. */
struct ChannelParams
{
    double goodputMbps = 500.0;  ///< measured TCP throughput (iperf)
    double baseLatencyMs = 1.2;  ///< request + ACK RTT floor
    /** MAC efficiency loss per extra concurrent station (contention
     *  overhead beyond pure fair sharing), e.g. 0.03 = 3% per extra. */
    double contentionPenalty = 0.03;
    /**
     * Random per-transfer extra latency (ms, exponential mean); models
     * WiFi MAC backoff jitter. 0 disables.
     */
    double jitterMeanMs = 0.0;
    /**
     * Probability that a transfer suffers a TCP loss/retransmission
     * episode, which adds retransmitPenaltyMs and re-serves a fraction
     * of the payload. 0 disables.
     */
    double lossProbability = 0.0;
    double retransmitPenaltyMs = 8.0;
    double retransmitFraction = 0.1;
    /** Seed for the jitter/loss draws. */
    std::uint64_t seed = 1234;
};

/**
 * Processor-sharing shared link driven by an EventQueue. Start a
 * transfer with startTransfer(); all in-flight transfers progress at
 * capacity / nActive, recomputed whenever membership changes.
 */
class SharedChannel
{
  public:
    SharedChannel(sim::EventQueue &queue, ChannelParams params = {});

    /** Begin transferring @p bytes; @p done fires on completion. */
    void startTransfer(std::uint64_t bytes, TransferDone done);

    /** Number of in-flight transfers. */
    std::size_t active() const { return transfers_.size(); }

    /** Total bytes delivered since construction. */
    std::uint64_t bytesDelivered() const { return bytesDelivered_; }

    /** Average utilised throughput over the simulation so far (Mbps). */
    double meanThroughputMbps() const;

    const ChannelParams &params() const { return params_; }

  private:
    struct Transfer
    {
        double remainingBits = 0.0;
        std::uint64_t totalBytes = 0;
        sim::TimeMs requestedAt = 0.0; ///< sim time startTransfer ran
        TransferDone done;
    };

    /** Per-transfer service rate (bits/ms) under current contention. */
    double currentRateBitsPerMs() const;

    /** Advance all transfers to now, then reschedule the next finish. */
    void progressAndReschedule();

    sim::EventQueue &queue_;
    ChannelParams params_;
    std::map<std::uint64_t, Transfer> transfers_;
    std::uint64_t nextId_ = 0;
    std::uint64_t epoch_ = 0; ///< invalidates stale finish events
    sim::TimeMs lastUpdate_ = 0.0;
    std::uint64_t bytesDelivered_ = 0;
    Rng rng_;
};

} // namespace coterie::net

