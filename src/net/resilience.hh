/**
 * @file
 * Client-side fetch resilience: deadline-aware timeouts, capped
 * exponential backoff with deterministic jitter, duplicate-request
 * suppression, and give-up signalling.
 *
 * The split-rendering client's QoE rests on far-BE megaframes arriving
 * inside the prefetch window; when the WLAN misbehaves (see
 * sim/faults.hh) a naive client parks a TCP stream behind a dead
 * transfer and stalls. `ResilientFetcher` wraps `FrameServer::request`
 * with a per-attempt deadline: an attempt that misses it is cancelled
 * at the channel (releasing its share of the link — the TCP-reset
 * analogue) and re-issued after backoff. Retry jitter is drawn from a
 * seeded generator in event order, so chaos runs stay bit-identical at
 * any `COTERIE_THREADS`.
 *
 * Give-up is explicit: after `maxAttempts` the fetch fails and the
 * caller decides — the Coterie client substitutes the newest stale
 * panorama (the paper's own frame-similarity argument makes this
 * QoE-sound) and accounts a *degraded* frame rather than a stall.
 *
 * With `timeoutMs <= 0` (or when no attempt ever times out) the
 * fetcher is a transparent pass-through: it issues exactly the
 * requests the bare client would, in the same order, with no extra
 * randomness — the strict no-op the empty-FaultPlan acceptance check
 * relies on.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "net/endpoints.hh"
#include "support/rng.hh"

namespace coterie::net {

/** Client resilience policy knobs. */
struct ResilienceParams
{
    /** Master switch; off = the pre-chaos client code path. */
    bool enabled = false;
    /**
     * Per-attempt deadline (ms). Chosen against the prefetch window,
     * not the 16.7 ms frame budget: a megaframe transfer legitimately
     * takes a few ms under contention, so the timeout only fires when
     * the link is genuinely degraded. <= 0 disables timeouts (fetches
     * then behave exactly like bare requests).
     */
    double timeoutMs = 60.0;
    /** Exponential backoff: base * 2^(attempt-1), capped. */
    double backoffBaseMs = 8.0;
    double backoffCapMs = 160.0;
    /** Deterministic jitter: each backoff is scaled by a uniform
     *  factor in [1 - frac, 1 + frac] drawn from the fetcher seed. */
    double backoffJitterFrac = 0.25;
    /** Total attempts (first try included) before giving up. */
    int maxAttempts = 5;
    /**
     * Stall age (ms) after which the client substitutes the newest
     * stale cached panorama and accounts a degraded frame instead of
     * stalling further. One display tick by default: a resilient
     * client never freezes longer than a vsync when it has anything
     * plausible to show. The threshold is paid once per miss —
     * while the repair fetch stays outstanding, consecutive ticks
     * keep re-displaying at cadence (reprojection-style) rather than
     * re-freezing for another threshold.
     */
    double degradeAfterMs = 1000.0 / 60.0;
    /** Rejoin probe: hit-ratio measurement window after a disconnect
     *  ends, preceded by a settle period for the cover-set re-sync. */
    double rejoinSettleMs = 3000.0;
    double rejoinProbeMs = 8000.0;
    /** Seed for the backoff jitter draws (forked per client). */
    std::uint64_t seed = 4242;
};

/** Cumulative fetcher accounting (per client). */
struct FetchStats
{
    std::uint64_t delivered = 0;
    std::uint64_t retries = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t failures = 0;   ///< give-ups after maxAttempts
    std::uint64_t duplicates = 0; ///< suppressed concurrent fetches
    std::uint64_t cancelled = 0;  ///< dropped by cancelAll()
    std::uint64_t recoveries = 0; ///< deliveries that needed a retry
};

/**
 * Retry/timeout wrapper around one client's view of the FrameServer.
 * Not thread-safe; lives on the simulation thread like everything
 * else in the event-driven session.
 */
class ResilientFetcher
{
  public:
    /** Delivery / give-up callbacks (sim-time stamped). */
    using Delivered =
        std::function<void(std::uint64_t key, sim::TimeMs at)>;
    using Failed = std::function<void(std::uint64_t key, sim::TimeMs at)>;

    ResilientFetcher(sim::EventQueue &queue, FrameServer &server,
                     ResilienceParams params);

    /**
     * Fetch @p key. A concurrent fetch of the same key attaches to the
     * outstanding attempt (duplicate suppression) instead of issuing a
     * second request. @p onFailed (optional) fires after the final
     * attempt times out.
     */
    void fetch(std::uint64_t key, Delivered onDelivered,
               Failed onFailed = {});

    /**
     * As above, with a causal trace context that rides every attempt
     * (each retry stamps its own Transfer hop; backlog waits stamp
     * Backlog hops). When the fetch attaches to an outstanding
     * attempt whose context is inert, the attempt adopts @p trace.
     */
    void fetch(std::uint64_t key, obs::FrameTraceContext trace,
               Delivered onDelivered, Failed onFailed = {});

    /** Whether @p key has an outstanding fetch (attempt or backoff). */
    bool inFlight(std::uint64_t key) const
    {
        return pending_.count(key) > 0;
    }

    /**
     * Abandon every outstanding fetch without firing callbacks (the
     * disconnect path: a client that drops off the WLAN resets its
     * streams). Returns how many fetches were dropped.
     */
    std::size_t cancelAll();

    const FetchStats &stats() const { return stats_; }
    const ResilienceParams &params() const { return params_; }

  private:
    struct PendingFetch
    {
        int attempt = 1;
        sim::TimeMs firstIssuedAt = 0.0;
        RequestId requestId = kInvalidRequest; ///< 0 while backing off
        std::uint64_t generation = 0; ///< guards backoff wake-ups
        obs::FrameTraceContext trace;
        std::vector<Delivered> onDelivered;
        std::vector<Failed> onFailed;
    };

    void issueAttempt(std::uint64_t key);
    void onAttemptExpired(std::uint64_t key, sim::TimeMs at);
    void onDelivered(std::uint64_t key, sim::TimeMs at);
    double backoffDelayMs(int attempt);

    sim::EventQueue &queue_;
    FrameServer &server_;
    ResilienceParams params_;
    std::map<std::uint64_t, PendingFetch> pending_;
    FetchStats stats_;
    Rng rng_;
};

} // namespace coterie::net
