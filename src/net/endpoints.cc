#include "net/endpoints.hh"

#include <algorithm>
#include <utility>

#include "obs/metrics.hh"

namespace coterie::net {

FrameServer::FrameServer(sim::EventQueue &queue, SharedChannel &channel,
                         FrameSizeFn frameSize, FrameServerParams params,
                         const sim::FaultPlan *faults)
    : queue_(queue), channel_(channel), frameSize_(std::move(frameSize)),
      params_(params), faults_(faults)
{
}

bool
FrameServer::stalledNow() const
{
    return faults_ != nullptr && faults_->serverStalled(queue_.now());
}

RequestId
FrameServer::request(std::uint64_t frameKey, FrameDelivered onDelivery)
{
    return request(frameKey, std::move(onDelivery), RequestOptions{});
}

RequestId
FrameServer::request(std::uint64_t frameKey, FrameDelivered onDelivery,
                     RequestOptions options)
{
    const RequestId id = ++nextId_;
    Waiting w;
    w.frameKey = frameKey;
    w.issuedAt = queue_.now();
    w.deadlineMs = options.deadlineMs;
    w.onDelivery = std::move(onDelivery);
    w.onExpired = std::move(options.onExpired);
    w.trace = options.trace;

    const bool capacity =
        params_.maxInFlight <= 0 ||
        inflight_.size() < static_cast<std::size_t>(params_.maxInFlight);
    if (capacity && !stalledNow()) {
        startRequest(id, std::move(w));
        return id;
    }

    // Fan-out guard / scripted stall: the request joins the FIFO
    // backlog and is re-served when a slot frees or the stall ends.
    if (stalledNow()) {
        ++stallDeferrals_;
        COTERIE_COUNT("server.stall_deferrals");
    } else {
        COTERIE_COUNT("server.backlogged");
    }
    fifo_.push_back(id);
    waiting_.emplace(id, std::move(w));
    pumpPending();
    return id;
}

void
FrameServer::startRequest(RequestId id, Waiting w)
{
    const std::uint64_t bytes = frameSize_(w.frameKey);
    const sim::TimeMs now = queue_.now();
    const std::uint64_t frameKey = w.frameKey;
    const sim::TimeMs issued = w.issuedAt;

    // Time between issue and wire start was spent in the fan-out
    // backlog (or a scripted server stall).
    if (now > issued)
        w.trace.hop(obs::Hop::Backlog, issued, now);

    TransferOptions topts;
    topts.trace = w.trace;
    if (w.deadlineMs > 0.0) {
        // The deadline was issued at request time; a backlogged wait
        // consumes part of it.
        const double remaining = w.issuedAt + w.deadlineMs - now;
        if (remaining <= 0.0) {
            COTERIE_COUNT("server.expired_in_backlog");
            if (w.onExpired)
                w.onExpired(frameKey, now);
            return;
        }
        topts.deadlineMs = remaining;
        topts.onExpired = [this, id, frameKey,
                           onExpired = std::move(w.onExpired)](
                              sim::TimeMs at) {
            inflight_.erase(id);
            if (onExpired)
                onExpired(frameKey, at);
            pumpPending();
        };
    }

    const TransferId tid = channel_.startTransfer(
        bytes,
        [this, id, frameKey, issued,
         onDelivery = std::move(w.onDelivery)](sim::TimeMs at) {
            ++served_;
            latency_.add(at - issued);
            inflight_.erase(id);
            if (onDelivery)
                onDelivery(frameKey, at);
            pumpPending();
        },
        std::move(topts));
    inflight_.emplace(id, tid);
}

void
FrameServer::pumpPending()
{
    while (!fifo_.empty()) {
        if (params_.maxInFlight > 0 &&
            inflight_.size() >=
                static_cast<std::size_t>(params_.maxInFlight))
            return;
        if (stalledNow())
            break;
        const RequestId id = fifo_.front();
        fifo_.pop_front();
        const auto it = waiting_.find(id);
        if (it == waiting_.end())
            continue; // cancelled while backlogged
        Waiting w = std::move(it->second);
        waiting_.erase(it);
        startRequest(id, std::move(w));
    }

    // Stalled with work queued: wake up exactly at the scripted stall
    // end (drop-and-requeue — the backlog survives, service restarts).
    if (!fifo_.empty() && stalledNow()) {
        const sim::TimeMs end =
            faults_->serverStallEndsAt(queue_.now());
        if (stallPumpAt_ != end) {
            stallPumpAt_ = end;
            // The wake-up revalidates via pumpPending's own stall and
            // capacity checks (and stallPumpAt_), so a stale event is
            // harmless.
            queue_.scheduleAt(end, [this, end] {
                if (stallPumpAt_ == end) {
                    stallPumpAt_ = -1.0;
                    pumpPending();
                }
            });
        }
    }
}

bool
FrameServer::cancel(RequestId id)
{
    if (waiting_.erase(id) > 0)
        return true; // lazy fifo entry is skipped at pump time
    const auto it = inflight_.find(id);
    if (it == inflight_.end())
        return false;
    const TransferId tid = it->second;
    inflight_.erase(it);
    channel_.cancel(tid);
    pumpPending(); // the slot is free again
    return true;
}

} // namespace coterie::net
