#include "net/endpoints.hh"

#include <utility>

namespace coterie::net {

FrameServer::FrameServer(sim::EventQueue &queue, SharedChannel &channel,
                         FrameSizeFn frameSize)
    : queue_(queue), channel_(channel), frameSize_(std::move(frameSize))
{
}

void
FrameServer::request(std::uint64_t frameKey, FrameDelivered onDelivery)
{
    const std::uint64_t bytes = frameSize_(frameKey);
    const sim::TimeMs issued = queue_.now();
    channel_.startTransfer(
        bytes, [this, frameKey, issued,
                onDelivery = std::move(onDelivery)](sim::TimeMs at) {
            ++served_;
            latency_.add(at - issued);
            if (onDelivery)
                onDelivery(frameKey, at);
        });
}

} // namespace coterie::net
