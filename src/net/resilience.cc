#include "net/resilience.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/flight.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace coterie::net {

ResilientFetcher::ResilientFetcher(sim::EventQueue &queue,
                                   FrameServer &server,
                                   ResilienceParams params)
    : queue_(queue), server_(server), params_(params), rng_(params.seed)
{
}

void
ResilientFetcher::fetch(std::uint64_t key, Delivered onDelivered,
                        Failed onFailed)
{
    fetch(key, obs::FrameTraceContext{}, std::move(onDelivered),
          std::move(onFailed));
}

void
ResilientFetcher::fetch(std::uint64_t key, obs::FrameTraceContext trace,
                        Delivered onDelivered, Failed onFailed)
{
    if (const auto it = pending_.find(key); it != pending_.end()) {
        // Duplicate suppression: ride the outstanding attempt instead
        // of issuing a second request for the same megaframe.
        ++stats_.duplicates;
        COTERIE_COUNT("net.duplicate_fetches");
        if (!it->second.trace.active())
            it->second.trace = trace;
        it->second.onDelivered.push_back(std::move(onDelivered));
        if (onFailed)
            it->second.onFailed.push_back(std::move(onFailed));
        return;
    }
    PendingFetch pf;
    pf.firstIssuedAt = queue_.now();
    pf.trace = trace;
    pf.onDelivered.push_back(std::move(onDelivered));
    if (onFailed)
        pf.onFailed.push_back(std::move(onFailed));
    pending_.emplace(key, std::move(pf));
    issueAttempt(key);
}

void
ResilientFetcher::issueAttempt(std::uint64_t key)
{
    auto &pf = pending_.at(key);
    RequestOptions opts;
    opts.trace = pf.trace;
    if (params_.timeoutMs > 0.0) {
        opts.deadlineMs = params_.timeoutMs;
        opts.onExpired = [this](std::uint64_t k, sim::TimeMs at) {
            onAttemptExpired(k, at);
        };
    }
    pf.requestId = server_.request(
        key,
        [this](std::uint64_t k, sim::TimeMs at) { onDelivered(k, at); },
        std::move(opts));
}

double
ResilientFetcher::backoffDelayMs(int attempt)
{
    // attempt is the upcoming attempt number (>= 2); the wait before it
    // grows as base * 2^(attempt - 2), capped.
    const double exp =
        params_.backoffBaseMs *
        std::pow(2.0, static_cast<double>(attempt - 2));
    double delay = std::min(exp, params_.backoffCapMs);
    if (params_.backoffJitterFrac > 0.0) {
        const double frac = std::min(params_.backoffJitterFrac, 1.0);
        delay *= rng_.uniform(1.0 - frac, 1.0 + frac);
    }
    return std::max(delay, 1e-3);
}

void
ResilientFetcher::onAttemptExpired(std::uint64_t key, sim::TimeMs at)
{
    const auto it = pending_.find(key);
    if (it == pending_.end())
        return; // raced with cancelAll
    PendingFetch &pf = it->second;
    pf.requestId = kInvalidRequest;
    ++stats_.timeouts;
    COTERIE_COUNT("net.timeouts");

    if (pf.attempt >= params_.maxAttempts) {
        // Give up: hand the decision back to the client (which will
        // degrade to its newest stale panorama instead of stalling).
        ++stats_.failures;
        COTERIE_COUNT("net.fetch_giveups");
        // Give-ups are rare, diagnosis-critical moments: mark them in
        // both the counter namespace dashboards scrape and the
        // always-on flight recorder, so a post-mortem ring dump shows
        // exactly when the fetcher abandoned a megaframe.
        COTERIE_COUNT("net.fetch.gave_up");
        obs::flight::recordInstant("net.fetch.gave_up", "net", at);
        std::vector<Failed> failed = std::move(pf.onFailed);
        pending_.erase(it);
        for (Failed &cb : failed)
            cb(key, at);
        return;
    }

    ++pf.attempt;
    ++stats_.retries;
    COTERIE_COUNT("net.retries");
    obs::TraceRecorder::global().counter(
        "net.retries", static_cast<double>(stats_.retries));
    const double delay = backoffDelayMs(pf.attempt);
    // The wake-up revalidates key membership and the generation stamp,
    // so a cancelAll (disconnect) between now and then voids it.
    const std::uint64_t gen = ++pf.generation;
    queue_.scheduleIn(delay, [this, key, gen] {
        const auto pit = pending_.find(key);
        if (pit == pending_.end() || pit->second.generation != gen)
            return; // fetch cancelled or superseded while backing off
        issueAttempt(key);
    });
}

void
ResilientFetcher::onDelivered(std::uint64_t key, sim::TimeMs at)
{
    const auto it = pending_.find(key);
    if (it == pending_.end())
        return; // raced with cancelAll
    PendingFetch &pf = it->second;
    ++stats_.delivered;
    if (pf.attempt > 1) {
        ++stats_.recoveries;
        COTERIE_COUNT("net.recoveries");
        // Time from the first issue to eventual delivery: how long the
        // retry loop took to punch through the fault.
        COTERIE_OBSERVE("net.recovery_sim_ms", at - pf.firstIssuedAt);
    }
    std::vector<Delivered> delivered = std::move(pf.onDelivered);
    pending_.erase(it);
    for (Delivered &cb : delivered)
        cb(key, at);
}

std::size_t
ResilientFetcher::cancelAll()
{
    const std::size_t n = pending_.size();
    for (auto &[key, pf] : pending_) {
        if (pf.requestId != kInvalidRequest)
            server_.cancel(pf.requestId);
        ++pf.generation; // voids any in-flight backoff wake-up
    }
    pending_.clear();
    stats_.cancelled += n;
    if (n > 0)
        COTERIE_COUNT_N("net.fetches_cancelled", n);
    return n;
}

} // namespace coterie::net
