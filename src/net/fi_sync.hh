/**
 * @file
 * Foreground-interaction synchronisation channel — the PUN substitute.
 *
 * Each client publishes its FI state (pose, controller, animation
 * triggers) every frame; the server aggregates and all players retrieve
 * the combined state for the next render interval. The paper measures
 * this at 2-3 ms per sync and 1 Kbps - 275 Kbps of traffic, 2-4 orders
 * of magnitude below BE traffic (Table 9).
 */

#pragma once

#include <cstdint>

#include "support/rng.hh"

namespace coterie::net {

/** Configuration of the FI sync fabric. */
struct FiSyncParams
{
    /** Serialized FI state per player per tick (position, rotation,
     *  animation state), bytes. */
    std::uint32_t bytesPerPlayerTick = 32;
    /** Sync ticks per second (every frame). */
    double tickHz = 60.0;
    /** Mean one-way latency (ms); paper: 2-3 ms round trip. */
    double meanLatencyMs = 1.1;
    double latencyJitterMs = 0.35;
};

/**
 * Analytic model of PUN-style object sync. Stateless per tick: returns
 * latency samples and aggregate bandwidth figures.
 */
class FiSync
{
  public:
    FiSync(FiSyncParams params, std::uint64_t seed);

    /**
     * Latency for one client to sync its FI with the server and fetch
     * the combined state (ms). Mildly increasing in player count.
     */
    double syncLatencyMs(int players);

    /**
     * Aggregate FI bandwidth with @p players active, in Kbps: each
     * player uploads its state and downloads the other players' states
     * each tick. With one player there are no remote duplicates to
     * feed, only a heartbeat.
     */
    double bandwidthKbps(int players) const;

    const FiSyncParams &params() const { return params_; }

  private:
    FiSyncParams params_;
    Rng rng_;
};

} // namespace coterie::net

