/**
 * @file
 * Foreground-interaction synchronisation channel — the PUN substitute.
 *
 * Each client publishes its FI state (pose, controller, animation
 * triggers) every frame; the server aggregates and all players retrieve
 * the combined state for the next render interval. The paper measures
 * this at 2-3 ms per sync and 1 Kbps - 275 Kbps of traffic, 2-4 orders
 * of magnitude below BE traffic (Table 9).
 *
 * Drop tolerance: FI updates are tiny and frequent, so a lost tick is
 * cheap to hide — the client dead-reckons remote players from their
 * last velocity for up to `dropToleranceTicks` consecutive losses
 * (paying only a small extrapolation cost) before it must block a full
 * retransmit round trip. This is what keeps scripted loss bursts from
 * turning every FI tick into a stall.
 */

#pragma once

#include <cstdint>

#include "support/rng.hh"

namespace coterie::net {

/** Configuration of the FI sync fabric. */
struct FiSyncParams
{
    /** Serialized FI state per player per tick (position, rotation,
     *  animation state), bytes. */
    std::uint32_t bytesPerPlayerTick = 32;
    /** Sync ticks per second (every frame). */
    double tickHz = 60.0;
    /** Mean one-way latency (ms); paper: 2-3 ms round trip. */
    double meanLatencyMs = 1.1;
    double latencyJitterMs = 0.35;
    /** Consecutive lost sync ticks the client papers over with dead
     *  reckoning before blocking on a retransmit. */
    int dropToleranceTicks = 3;
    /** Extrapolation cost per dead-reckoned tick (ms): recomputing
     *  remote transforms from the last known velocities. */
    double deadReckonPenaltyMs = 0.4;
    /** Blocking retransmit wait once tolerance is exhausted (ms) —
     *  roughly one display tick. */
    double retransmitWaitMs = 1000.0 / 60.0;
};

/**
 * Analytic model of PUN-style object sync. Stateless per tick: returns
 * latency samples and aggregate bandwidth figures.
 */
class FiSync
{
  public:
    FiSync(FiSyncParams params, std::uint64_t seed);

    /**
     * Latency for one client to sync its FI with the server and fetch
     * the combined state (ms). Mildly increasing in player count.
     */
    double syncLatencyMs(int players);

    /**
     * As above under a lossy channel: each tick is lost with
     * @p lossProbability. Tolerated losses cost only the dead-reckoning
     * penalty; beyond `dropToleranceTicks` consecutive losses the sync
     * blocks a retransmit wait. With lossProbability == 0 this draws
     * exactly the same random stream as the 1-arg overload.
     */
    double syncLatencyMs(int players, double lossProbability);

    /** Lost ticks hidden by dead reckoning so far. */
    std::uint64_t dropsTolerated() const { return dropsTolerated_; }

    /** Sync stalls after exhausting the drop tolerance. */
    std::uint64_t syncStalls() const { return syncStalls_; }

    /**
     * Aggregate FI bandwidth with @p players active, in Kbps: each
     * player uploads its state and downloads the other players' states
     * each tick. With one player there are no remote duplicates to
     * feed, only a heartbeat.
     */
    double bandwidthKbps(int players) const;

    const FiSyncParams &params() const { return params_; }

  private:
    FiSyncParams params_;
    Rng rng_;
    int consecutiveDrops_ = 0;
    std::uint64_t dropsTolerated_ = 0;
    std::uint64_t syncStalls_ = 0;
};

} // namespace coterie::net

