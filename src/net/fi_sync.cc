#include "net/fi_sync.hh"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hh"

namespace coterie::net {

FiSync::FiSync(FiSyncParams params, std::uint64_t seed)
    : params_(params), rng_(seed)
{
}

double
FiSync::syncLatencyMs(int players)
{
    return syncLatencyMs(players, 0.0);
}

double
FiSync::syncLatencyMs(int players, double lossProbability)
{
    // Round trip: upload own FI, download combined FI. Slightly more
    // serialization work with more players.
    const double base = 2.0 * params_.meanLatencyMs;
    const double per_player = 0.08 * std::max(0, players - 1);
    const double jitter =
        std::abs(rng_.normal(0.0, params_.latencyJitterMs));
    const double clean = base + per_player + jitter;
    // The loss draw happens only under a lossy channel, so the clean
    // path consumes exactly the historical random stream.
    if (lossProbability <= 0.0 || !rng_.chance(lossProbability)) {
        consecutiveDrops_ = 0;
        return clean;
    }
    if (++consecutiveDrops_ <= params_.dropToleranceTicks) {
        // Tolerated drop: dead-reckon remote players from their last
        // velocity instead of waiting for the lost update.
        ++dropsTolerated_;
        COTERIE_COUNT("fi.drops_tolerated");
        return clean + params_.deadReckonPenaltyMs;
    }
    // Tolerance exhausted: block until a retransmitted update lands.
    consecutiveDrops_ = 0;
    ++syncStalls_;
    COTERIE_COUNT("fi.sync_stalls");
    return clean + params_.retransmitWaitMs;
}

double
FiSync::bandwidthKbps(int players) const
{
    const double per_tick_bytes =
        static_cast<double>(params_.bytesPerPlayerTick);
    if (players <= 1) {
        // Heartbeat only: one state upload per tick, nothing to fetch.
        return per_tick_bytes * params_.tickHz * 8.0 / 1e3 * 0.065;
    }
    // Each of N players uploads 1 state and downloads N-1 states per
    // tick, all through the server.
    const double n = players;
    const double bytes_per_s =
        n * (1.0 + (n - 1.0)) * per_tick_bytes * params_.tickHz;
    return bytes_per_s * 8.0 / 1e3;
}

} // namespace coterie::net
