/**
 * @file
 * Server / client network endpoints over the shared channel: the
 * frame-request protocol (client asks for the pre-rendered panorama of
 * a grid point; server replies with the encoded frame bytes over TCP).
 */

#pragma once

#include <cstdint>
#include <functional>

#include "net/channel.hh"
#include "support/stats.hh"

namespace coterie::net {

/** Resolves a frame request to its encoded size in bytes. */
using FrameSizeFn = std::function<std::uint64_t(std::uint64_t frameKey)>;

/** Delivery callback: frame key + when it arrived. */
using FrameDelivered =
    std::function<void(std::uint64_t frameKey, sim::TimeMs at)>;

/**
 * The rendering server's network face: accepts requests, serves the
 * encoded pre-rendered frame over the shared channel. Per-request
 * service time (lookup of a pre-rendered frame) is negligible; the
 * paper measured server CPU under 12%.
 */
class FrameServer
{
  public:
    FrameServer(sim::EventQueue &queue, SharedChannel &channel,
                FrameSizeFn frameSize);

    /** A client requests @p frameKey; @p onDelivery fires at arrival. */
    void request(std::uint64_t frameKey, FrameDelivered onDelivery);

    /** Number of requests served so far. */
    std::uint64_t requestsServed() const { return served_; }

    /** Distribution of transfer latencies (ms). */
    const RunningStats &transferLatency() const { return latency_; }

  private:
    sim::EventQueue &queue_;
    SharedChannel &channel_;
    FrameSizeFn frameSize_;
    std::uint64_t served_ = 0;
    RunningStats latency_;
};

} // namespace coterie::net

