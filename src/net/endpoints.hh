/**
 * @file
 * Server / client network endpoints over the shared channel: the
 * frame-request protocol (client asks for the pre-rendered panorama of
 * a grid point; server replies with the encoded frame bytes over TCP).
 *
 * Resilience hooks: requests are addressable (`RequestId`) so a client
 * can cancel or deadline an outstanding fetch; the server enforces a
 * fan-out guard (bounded concurrent transfers, FIFO backlog beyond the
 * bound) and honours scripted `ServerStall` fault episodes by deferring
 * new service starts until the stall ends (drop-and-requeue: stalled
 * work returns to the backlog instead of blocking the event loop).
 * With default parameters and no fault plan the server is bit-for-bit
 * the pre-chaos pass-through.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "net/channel.hh"
#include "support/stats.hh"

namespace coterie::net {

/** Resolves a frame request to its encoded size in bytes. */
using FrameSizeFn = std::function<std::uint64_t(std::uint64_t frameKey)>;

/** Delivery callback: frame key + when it arrived. */
using FrameDelivered =
    std::function<void(std::uint64_t frameKey, sim::TimeMs at)>;

/** Handle for an issued request; 0 is never a valid id. */
using RequestId = std::uint64_t;
inline constexpr RequestId kInvalidRequest = 0;

/** Server-side fan-out guard configuration. */
struct FrameServerParams
{
    /**
     * Maximum transfers the server keeps on the wire concurrently;
     * further requests wait in a FIFO backlog. 0 = unbounded (the
     * pre-chaos behaviour).
     */
    int maxInFlight = 0;
};

/** Per-request delivery constraints (all optional). */
struct RequestOptions
{
    /** Hard deadline from the request call (ms); the request is
     *  dropped (wherever it is: backlog or wire) and @p onExpired
     *  fires when it lapses. <= 0 disables. */
    double deadlineMs = 0.0;
    FrameDelivered onExpired;
    /** Causal trace identity travelling with the request; a Backlog
     *  hop is stamped for any fan-out queueing and the context is
     *  forwarded onto the wire transfer. Inert by default. */
    obs::FrameTraceContext trace;
};

/**
 * The rendering server's network face: accepts requests, serves the
 * encoded pre-rendered frame over the shared channel. Per-request
 * service time (lookup of a pre-rendered frame) is negligible; the
 * paper measured server CPU under 12%.
 */
class FrameServer
{
  public:
    FrameServer(sim::EventQueue &queue, SharedChannel &channel,
                FrameSizeFn frameSize, FrameServerParams params = {},
                const sim::FaultPlan *faults = nullptr);

    /** A client requests @p frameKey; @p onDelivery fires at arrival. */
    RequestId request(std::uint64_t frameKey, FrameDelivered onDelivery);

    /** As above with per-request options (deadline, expiry). */
    RequestId request(std::uint64_t frameKey, FrameDelivered onDelivery,
                      RequestOptions options);

    /**
     * Abort a backlogged or in-flight request; its callbacks never
     * fire. Returns false when the id is unknown (delivered, expired,
     * or already cancelled).
     */
    bool cancel(RequestId id);

    /** Number of requests served so far. */
    std::uint64_t requestsServed() const { return served_; }

    /** Requests waiting in the fan-out backlog right now. */
    std::size_t backlog() const { return waiting_.size(); }

    /** Requests currently on the wire. */
    std::size_t inFlight() const { return inflight_.size(); }

    /** Requests deferred by a scripted server stall so far. */
    std::uint64_t stallDeferrals() const { return stallDeferrals_; }

    /** Distribution of transfer latencies (ms). */
    const RunningStats &transferLatency() const { return latency_; }

  private:
    struct Waiting
    {
        std::uint64_t frameKey = 0;
        sim::TimeMs issuedAt = 0.0;
        double deadlineMs = 0.0; ///< original request deadline (0 = none)
        FrameDelivered onDelivery;
        FrameDelivered onExpired;
        obs::FrameTraceContext trace;
    };

    /** True while a scripted ServerStall episode is in force. */
    bool stalledNow() const;

    /** Put request @p id on the wire (translating its deadline to the
     *  time remaining). */
    void startRequest(RequestId id, Waiting w);

    /** Drain the backlog while capacity allows and no stall is in
     *  force; schedules its own wake-up at the stall end otherwise. */
    void pumpPending();

    sim::EventQueue &queue_;
    SharedChannel &channel_;
    FrameSizeFn frameSize_;
    FrameServerParams params_;
    const sim::FaultPlan *faults_ = nullptr;
    RequestId nextId_ = 0;
    /** Backlog order, drained FIFO by pumpPending. Bounded by the
     *  clients' outstanding-request windows (each client pipelines at
     *  most a handful of fetches and never re-requests a key it is
     *  already waiting on), not by the server itself. */
    std::deque<RequestId> fifo_;
    std::map<RequestId, Waiting> waiting_; ///< backlog bodies
    std::map<RequestId, TransferId> inflight_;
    sim::TimeMs stallPumpAt_ = -1.0; ///< pending stall-end wake-up
    std::uint64_t served_ = 0;
    std::uint64_t stallDeferrals_ = 0;
    RunningStats latency_;
};

} // namespace coterie::net
