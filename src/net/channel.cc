#include "net/channel.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "support/logging.hh"

namespace coterie::net {

SharedChannel::SharedChannel(sim::EventQueue &queue, ChannelParams params,
                             const sim::FaultPlan *faults)
    : queue_(queue), params_(params), faults_(faults), rng_(params.seed)
{
    COTERIE_ASSERT(params.goodputMbps > 0.0, "channel needs capacity");
    // Declare the per-transfer RTT floor as the conservative cross-lane
    // lookahead bound. A zero floor (some unit tests simplify latency
    // away) declares nothing: such a channel provides no lookahead, so
    // it must never couple two lanes.
    if (params.baseLatencyMs > 0.0)
        queue_.noteLookaheadFloor(params.baseLatencyMs);
}

double
SharedChannel::rateBitsPerMsAt(sim::TimeMs t) const
{
    if (transfers_.empty())
        return 0.0;
    const auto n = static_cast<double>(transfers_.size());
    // Fair share with a mild MAC contention penalty per extra station.
    const double efficiency =
        std::max(0.3, 1.0 - params_.contentionPenalty * (n - 1.0));
    double capacity_bits_per_ms = params_.goodputMbps * 1e3;
    if (faults_)
        capacity_bits_per_ms *= faults_->bandwidthFactor(t);
    return capacity_bits_per_ms * efficiency / n;
}

void
SharedChannel::serveUntil(sim::TimeMs now)
{
    // The rate is piecewise constant: it only steps at fault-episode
    // boundaries (membership changes always re-enter through
    // progressAndReschedule, which calls serveUntil first). Integrate
    // each constant segment separately so scripted degradation is
    // exact.
    sim::TimeMs t = lastUpdate_;
    while (t < now && !transfers_.empty()) {
        sim::TimeMs seg_end = now;
        if (faults_)
            seg_end = std::min(seg_end, faults_->nextBoundaryAfter(t));
        const double rate = rateBitsPerMsAt(t);
        if (rate > 0.0) {
            const double served = rate * (seg_end - t);
            for (auto &[id, tr] : transfers_)
                tr.remainingBits =
                    std::max(0.0, tr.remainingBits - served);
        }
        t = seg_end;
    }
    lastUpdate_ = now;
}

void
SharedChannel::progressAndReschedule()
{
    const sim::TimeMs now = queue_.now();
    serveUntil(now);

    // Collect completions (possibly several at identical finish time)
    // before firing any callback: a `done` may re-enter the channel
    // (start a transfer, cancel another) and must not invalidate this
    // scan.
    std::vector<TransferDone> finished;
    for (auto it = transfers_.begin(); it != transfers_.end();) {
        if (it->second.remainingBits <= 1e-3) {
            bytesDelivered_ += it->second.totalBytes;
            COTERIE_COUNT("net.frames_delivered");
            COTERIE_COUNT_N("net.bytes_delivered",
                            it->second.totalBytes);
            // Simulated request-to-delivery latency (includes the
            // pre-transfer latency floor and any contention slowdown).
            COTERIE_OBSERVE("net.transfer_sim_ms",
                            now - it->second.requestedAt);
            it->second.trace.hop(obs::Hop::Transfer,
                                 it->second.requestedAt, now);
            if (it->second.done)
                finished.push_back(std::move(it->second.done));
            it = transfers_.erase(it);
        } else {
            ++it;
        }
    }

    // Fire the collected completions. Each may mutate membership; any
    // nested progressAndReschedule bumps the epoch, and the final
    // reschedule below recomputes from the post-callback state.
    for (TransferDone &done : finished)
        done(now);

    if (transfers_.empty())
        return;

    // Schedule an event at the earliest projected finish, capped at
    // the next fault boundary (where the service rate steps).
    double min_remaining = std::numeric_limits<double>::infinity();
    for (const auto &[id, tr] : transfers_)
        min_remaining = std::min(min_remaining, tr.remainingBits);
    const double rate = rateBitsPerMsAt(now);
    // Floor the reschedule step: double rounding can leave a transfer
    // with sub-epsilon residual bits, and a zero-width event would
    // livelock the queue at a fixed timestamp.
    double eta = rate > 0.0
                     ? std::max(min_remaining / rate, 1e-6)
                     : std::numeric_limits<double>::infinity();
    if (faults_) {
        const sim::TimeMs boundary = faults_->nextBoundaryAfter(now);
        if (boundary < std::numeric_limits<double>::infinity())
            eta = std::min(eta, std::max(boundary - now, 1e-6));
    }
    if (eta == std::numeric_limits<double>::infinity())
        return; // outage with no scripted end: deadlines/cancel only
    const std::uint64_t epoch = ++epoch_;
    queue_.scheduleIn(eta, [this, epoch] {
        if (epoch == epoch_)
            progressAndReschedule();
    });
}

TransferId
SharedChannel::startTransfer(std::uint64_t bytes, TransferDone done)
{
    return startTransfer(bytes, std::move(done), TransferOptions{});
}

TransferId
SharedChannel::startTransfer(std::uint64_t bytes, TransferDone done,
                             TransferOptions options)
{
    const sim::TimeMs requestedAt = queue_.now();
    // The latency floor (plus optional MAC jitter, loss episodes, and
    // scripted latency spikes) is modeled by delaying the transfer
    // start; a loss episode also re-serves part of the payload.
    double delay = params_.baseLatencyMs;
    double effective_bytes = static_cast<double>(bytes);
    if (params_.jitterMeanMs > 0.0)
        delay += rng_.exponential(1.0 / params_.jitterMeanMs);
    const double loss_probability =
        std::min(1.0, params_.lossProbability +
                          (faults_ ? faults_->extraLossProbability(
                                         requestedAt)
                                   : 0.0));
    if (loss_probability > 0.0 && rng_.chance(loss_probability)) {
        delay += params_.retransmitPenaltyMs;
        effective_bytes *= 1.0 + params_.retransmitFraction;
        COTERIE_COUNT("net.loss_episodes");
    }
    if (faults_)
        delay += faults_->extraLatencyMs(requestedAt);
    COTERIE_COUNT("net.transfers");
    COTERIE_COUNT_N("net.bytes_requested", bytes);

    const TransferId id = ++nextId_;
    Transfer tr;
    tr.remainingBits = effective_bytes * 8.0;
    tr.totalBytes = bytes;
    tr.requestedAt = requestedAt;
    if (options.deadlineMs > 0.0) {
        tr.deadlineAt = requestedAt + options.deadlineMs;
        tr.onExpired = std::move(options.onExpired);
    }
    tr.trace = options.trace;
    tr.done = std::move(done);
    pending_.emplace(id, std::move(tr));

    // The start event revalidates against pending_ — a cancel() or
    // deadline expiry during the latency phase must make it a no-op.
    queue_.scheduleIn(delay, // lint:allow(epoch-guarded-schedule)
                      [this, id] { beginPending(id); });
    if (options.deadlineMs > 0.0) {
        // cancelIfExpired revalidates id membership + deadline itself.
        queue_.scheduleIn(options.deadlineMs, // lint:allow(epoch-guarded-schedule)
                          [this, id] { cancelIfExpired(id); });
    }
    return id;
}

void
SharedChannel::beginPending(TransferId id)
{
    const auto it = pending_.find(id);
    if (it == pending_.end())
        return; // cancelled or expired during the latency phase
    Transfer tr = std::move(it->second);
    pending_.erase(it);
    progressAndReschedule(); // bring existing transfers up to now
    transfers_.emplace(id, std::move(tr));
    obs::TraceRecorder::global().counter(
        "net.active_transfers",
        static_cast<double>(transfers_.size()));
    progressAndReschedule(); // recompute with the new membership
}

void
SharedChannel::cancelIfExpired(TransferId id)
{
    const sim::TimeMs now = queue_.now();
    TransferDone onExpired;
    obs::FrameTraceContext trace;
    sim::TimeMs requestedAt = now;
    if (const auto pit = pending_.find(id); pit != pending_.end()) {
        if (now < pit->second.deadlineAt)
            return;
        onExpired = std::move(pit->second.onExpired);
        trace = pit->second.trace;
        requestedAt = pit->second.requestedAt;
        pending_.erase(pit);
    } else if (const auto tit = transfers_.find(id);
               tit != transfers_.end()) {
        if (now < tit->second.deadlineAt)
            return;
        onExpired = std::move(tit->second.onExpired);
        trace = tit->second.trace;
        requestedAt = tit->second.requestedAt;
        // Bring everyone up to now before the membership change, then
        // recompute: the dropped transfer's share is released at once.
        progressAndReschedule();
        // The catch-up above may have completed (and erased) this very
        // transfer at exactly the deadline; delivery wins the tie.
        const auto again = transfers_.find(id);
        if (again == transfers_.end())
            return;
        transfers_.erase(again);
        progressAndReschedule();
    } else {
        return; // already delivered or cancelled
    }
    ++expired_;
    COTERIE_COUNT("net.expired");
    // The wire time was spent even though nothing arrived: stamp it so
    // retries show one Transfer hop per attempt.
    trace.hop(obs::Hop::Transfer, requestedAt, now);
    if (onExpired)
        onExpired(now);
}

bool
SharedChannel::cancel(TransferId id)
{
    if (pending_.erase(id) > 0) {
        ++cancelled_;
        COTERIE_COUNT("net.cancelled");
        return true;
    }
    const auto it = transfers_.find(id);
    if (it == transfers_.end())
        return false;
    // Catch up before the membership change so the cancelled transfer
    // is charged exactly the service it consumed.
    progressAndReschedule();
    const auto again = transfers_.find(id);
    if (again == transfers_.end())
        return false; // completed at this very instant; not cancelled
    transfers_.erase(again);
    ++cancelled_;
    COTERIE_COUNT("net.cancelled");
    progressAndReschedule();
    return true;
}

double
SharedChannel::meanThroughputMbps() const
{
    const double elapsed = queue_.now();
    if (elapsed <= 0.0)
        return 0.0;
    return static_cast<double>(bytesDelivered_) * 8.0 / 1e3 / elapsed;
}

} // namespace coterie::net
