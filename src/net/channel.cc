#include "net/channel.hh"

#include <algorithm>
#include <limits>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "support/logging.hh"

namespace coterie::net {

SharedChannel::SharedChannel(sim::EventQueue &queue, ChannelParams params)
    : queue_(queue), params_(params), rng_(params.seed)
{
    COTERIE_ASSERT(params.goodputMbps > 0.0, "channel needs capacity");
}

double
SharedChannel::currentRateBitsPerMs() const
{
    if (transfers_.empty())
        return 0.0;
    const auto n = static_cast<double>(transfers_.size());
    // Fair share with a mild MAC contention penalty per extra station.
    const double efficiency =
        std::max(0.3, 1.0 - params_.contentionPenalty * (n - 1.0));
    const double capacity_bits_per_ms = params_.goodputMbps * 1e3;
    return capacity_bits_per_ms * efficiency / n;
}

void
SharedChannel::progressAndReschedule()
{
    const sim::TimeMs now = queue_.now();
    const double elapsed = now - lastUpdate_;
    if (elapsed > 0.0 && !transfers_.empty()) {
        const double served = currentRateBitsPerMs() * elapsed;
        for (auto &[id, tr] : transfers_)
            tr.remainingBits = std::max(0.0, tr.remainingBits - served);
    }
    lastUpdate_ = now;

    // Fire completions (possibly several at identical finish time).
    for (auto it = transfers_.begin(); it != transfers_.end();) {
        if (it->second.remainingBits <= 1e-3) {
            TransferDone done = std::move(it->second.done);
            bytesDelivered_ += it->second.totalBytes;
            COTERIE_COUNT("net.frames_delivered");
            COTERIE_COUNT_N("net.bytes_delivered",
                            it->second.totalBytes);
            // Simulated request-to-delivery latency (includes the
            // pre-transfer latency floor and any contention slowdown).
            COTERIE_OBSERVE("net.transfer_sim_ms",
                            now - it->second.requestedAt);
            it = transfers_.erase(it);
            if (done)
                done(now);
        } else {
            ++it;
        }
    }

    if (transfers_.empty())
        return;

    // Schedule an event at the earliest projected finish.
    double min_remaining = std::numeric_limits<double>::infinity();
    for (const auto &[id, tr] : transfers_)
        min_remaining = std::min(min_remaining, tr.remainingBits);
    const double rate = currentRateBitsPerMs();
    // Floor the reschedule step: double rounding can leave a transfer
    // with sub-epsilon residual bits, and a zero-width event would
    // livelock the queue at a fixed timestamp.
    const double eta = std::max(min_remaining / rate, 1e-6);
    const std::uint64_t epoch = ++epoch_;
    queue_.scheduleIn(eta, [this, epoch] {
        if (epoch == epoch_)
            progressAndReschedule();
    });
}

void
SharedChannel::startTransfer(std::uint64_t bytes, TransferDone done)
{
    // The latency floor (plus optional MAC jitter and loss episodes)
    // is modeled by delaying the transfer start; a loss episode also
    // re-serves part of the payload.
    double delay = params_.baseLatencyMs;
    double effective_bytes = static_cast<double>(bytes);
    if (params_.jitterMeanMs > 0.0)
        delay += rng_.exponential(1.0 / params_.jitterMeanMs);
    if (params_.lossProbability > 0.0 &&
        rng_.chance(params_.lossProbability)) {
        delay += params_.retransmitPenaltyMs;
        effective_bytes *= 1.0 + params_.retransmitFraction;
    }
    COTERIE_COUNT("net.transfers");
    COTERIE_COUNT_N("net.bytes_requested", bytes);
    const sim::TimeMs requestedAt = queue_.now();
    queue_.scheduleIn(delay, [this, bytes, effective_bytes, requestedAt,
                              done = std::move(done)]() {
        progressAndReschedule(); // bring existing transfers up to now
        Transfer tr;
        tr.remainingBits = effective_bytes * 8.0;
        tr.totalBytes = bytes;
        tr.requestedAt = requestedAt;
        tr.done = done;
        transfers_.emplace(nextId_++, std::move(tr));
        obs::TraceRecorder::global().counter(
            "net.active_transfers",
            static_cast<double>(transfers_.size()));
        progressAndReschedule(); // recompute with the new membership
    });
}

double
SharedChannel::meanThroughputMbps() const
{
    const double elapsed = queue_.now();
    if (elapsed <= 0.0)
        return 0.0;
    return static_cast<double>(bytesDelivered_) * 8.0 / 1e3 / elapsed;
}

} // namespace coterie::net
