#include "device/thermal.hh"

#include <cmath>

namespace coterie::device {

ThermalModel::ThermalModel(ThermalParams params)
    : params_(params), tempC_(params.initialC)
{
}

double
ThermalModel::steadyStateC(double watts) const
{
    return params_.ambientC + watts * params_.thermalResistanceCPerW;
}

void
ThermalModel::step(double watts, double dtS)
{
    const double target = steadyStateC(watts);
    const double alpha = 1.0 - std::exp(-dtS / params_.timeConstantS);
    tempC_ += (target - tempC_) * alpha;
}

} // namespace coterie::device
