/**
 * @file
 * Mobile-device performance model.
 *
 * One profile (Pixel 2) is calibrated against the paper's Table 1
 * measurements and reused unchanged across every experiment: render
 * throughput (triangles/s feeding render/cost_model), hardware H.264
 * decode latency, CPU cost of network processing and decode, and the
 * GPU-utilisation mapping. See DESIGN.md §4 for the calibration rule.
 */

#pragma once

#include "render/cost_model.hh"

namespace coterie::device {

/** Static hardware profile of a phone. */
struct PhoneProfile
{
    const char *name = "Pixel 2";

    /** Triangle-throughput render model (render/cost_model). */
    render::CostModelParams cost{};

    /** Hardware video decoder: fixed + per-megapixel latency (ms). */
    double decodeBaseMs = 1.5;
    double decodeMsPerMegapixel = 1.05;

    /** CPU-load components (percent of total multicore capacity). */
    double cpuBasePct = 6.0;          ///< game logic, sensors, OS
    double cpuPctPerMbps = 0.040;     ///< packet processing per Mbps
    double cpuPctPerDecodeFps = 0.08; ///< decoder driver per decoded fps
    double cpuPctPerSyncHz = 0.03;    ///< FI sync serialization per Hz
    double cpuRenderSharePct = 2.0;   ///< CPU side of render submission

    /** Display/compose overhead on the GPU (percent). */
    double gpuComposePct = 5.0;

    /** Memory available for the frame cache (bytes). */
    std::size_t cacheBudgetBytes = 1200ull * 1024 * 1024;

    /** Battery capacity (mAh) and nominal voltage, for endurance. */
    double batteryMah = 2770.0;
    double batteryVolts = 3.85;

    /** SoC thermal throttle limit (Celsius), Pixel 2 config. */
    double thermalLimitC = 52.0;
};

/** The calibrated Pixel 2 profile used throughout the benches. */
const PhoneProfile &pixel2();

/** Decode latency of a frame of w x h pixels (hardware decoder). */
double decodeMs(const PhoneProfile &profile, int width, int height);

/** GPU utilisation given render ms consumed per displayed frame. */
double gpuLoadPct(const PhoneProfile &profile, double renderMsPerFrame,
                  double fps);

/** CPU utilisation from the component loads. */
struct CpuLoadInputs
{
    double networkMbps = 0.0;
    double decodeFps = 0.0;
    double syncHz = 0.0;
    bool rendering = true;
};
double cpuLoadPct(const PhoneProfile &profile, const CpuLoadInputs &in);

} // namespace coterie::device

