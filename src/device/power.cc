#include "device/power.hh"

namespace coterie::device {

double
powerDrawW(const PowerModel &model, const PowerInputs &in)
{
    double watts = model.idleW;
    watts += model.cpuMaxW * in.cpuPct / 100.0;
    watts += model.gpuMaxW * in.gpuPct / 100.0;
    watts += model.radioBaseW + model.radioWPerMbps * in.networkMbps;
    if (in.displayOn)
        watts += model.displayW;
    return watts;
}

double
batteryLifeHours(const PhoneProfile &profile, double watts)
{
    const double capacity_wh =
        profile.batteryMah / 1000.0 * profile.batteryVolts;
    return watts > 0.0 ? capacity_wh / watts : 0.0;
}

} // namespace coterie::device
