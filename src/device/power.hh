/**
 * @file
 * Battery power-draw model: component-level sum of idle, CPU, GPU,
 * radio and display power, calibrated to the paper's measured ~4 W
 * steady draw on Pixel 2 under Coterie (Figure 12).
 */

#pragma once

#include "device/phone.hh"

namespace coterie::device {

/** Power model coefficients (watts). */
struct PowerModel
{
    double idleW = 0.75;
    double cpuMaxW = 2.2;      ///< at 100% multicore load
    double gpuMaxW = 2.4;      ///< at 100% GPU load
    double radioBaseW = 0.28;  ///< WiFi associated, mostly idle
    double radioWPerMbps = 0.0035;
    double displayW = 1.15;    ///< VR mode locks brightness at 100%
};

/** Instantaneous utilisation snapshot. */
struct PowerInputs
{
    double cpuPct = 0.0;
    double gpuPct = 0.0;
    double networkMbps = 0.0;
    bool displayOn = true;
};

/** Total draw in watts. */
double powerDrawW(const PowerModel &model, const PowerInputs &in);

/** Runtime in hours on @p profile's battery at constant @p watts. */
double batteryLifeHours(const PhoneProfile &profile, double watts);

} // namespace coterie::device

