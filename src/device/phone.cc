#include "device/phone.hh"

#include <algorithm>

namespace coterie::device {

const PhoneProfile &
pixel2()
{
    static const PhoneProfile profile = [] {
        PhoneProfile p;
        p.name = "Pixel 2";
        p.cost.nsPerTriangle = 50.0;
        p.cost.baseMs = 1.0;
        p.cost.lodDistance = 35.0;
        p.cost.cullDistance = 600.0;
        return p;
    }();
    return profile;
}

double
decodeMs(const PhoneProfile &profile, int width, int height)
{
    const double megapixels =
        static_cast<double>(width) * static_cast<double>(height) / 1e6;
    return profile.decodeBaseMs + profile.decodeMsPerMegapixel * megapixels;
}

double
gpuLoadPct(const PhoneProfile &profile, double renderMsPerFrame, double fps)
{
    const double busy = renderMsPerFrame * fps / 10.0; // ms*fps -> percent
    return std::clamp(busy + profile.gpuComposePct, 0.0, 100.0);
}

double
cpuLoadPct(const PhoneProfile &profile, const CpuLoadInputs &in)
{
    double load = profile.cpuBasePct;
    load += profile.cpuPctPerMbps * in.networkMbps;
    load += profile.cpuPctPerDecodeFps * in.decodeFps;
    load += profile.cpuPctPerSyncHz * in.syncHz;
    if (in.rendering)
        load += profile.cpuRenderSharePct;
    return std::clamp(load, 0.0, 100.0);
}

} // namespace coterie::device
