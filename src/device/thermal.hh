/**
 * @file
 * First-order RC thermal model of the phone SoC: temperature relaxes
 * toward ambient + P * Rth with time constant tau. Reproduces the
 * paper's Figure 12 temperature traces (gradual rise, staying under
 * the Pixel 2 thermal-engine limit of 52 C).
 */

#pragma once

namespace coterie::device {

/** Thermal RC parameters. */
struct ThermalParams
{
    double ambientC = 26.0;
    double thermalResistanceCPerW = 5.4; ///< steady delta-T per watt
    double timeConstantS = 420.0;        ///< chassis heat-up time
    double initialC = 28.0;              ///< skin-warm start
};

/** Integrates SoC temperature under a power trace. */
class ThermalModel
{
  public:
    explicit ThermalModel(ThermalParams params = {});

    /** Advance @p dtS seconds at constant draw @p watts. */
    void step(double watts, double dtS);

    double temperatureC() const { return tempC_; }

    /** Steady-state temperature at constant @p watts. */
    double steadyStateC(double watts) const;

  private:
    ThermalParams params_;
    double tempC_;
};

/**
 * Thermal governor: above the throttle limit the SoC sheds frequency,
 * multiplying render times. The paper's systems are engineered to stay
 * below the limit ("sustain long running ... without being restricted
 * by temperature control"); this model quantifies what happens when a
 * workload does not.
 */
struct ThermalGovernor
{
    double limitC = 52.0;          ///< Pixel 2 thermal-engine setpoint
    double slowdownPerDegree = 0.08; ///< render-time multiplier slope

    /** Render-time multiplier at SoC temperature @p tempC (>= 1). */
    double
    renderTimeMultiplier(double tempC) const
    {
        if (tempC <= limitC)
            return 1.0;
        return 1.0 + slowdownPerDegree * (tempC - limitC);
    }

    /** Effective FPS after throttling a 60 FPS pipeline whose render
     *  time is @p renderMs at nominal frequency. */
    double
    throttledFps(double renderMs, double tempC,
                 double frameBudgetMs = 1000.0 / 60.0) const
    {
        const double effective = renderMs * renderTimeMultiplier(tempC);
        return effective <= frameBudgetMs ? 60.0 : 1000.0 / effective;
    }
};

} // namespace coterie::device

