/**
 * @file
 * Lightweight statistics accumulators used by the benches and the
 * simulation: running mean/variance, percentile sampling, histograms,
 * and CDF extraction (figures 1, 2, 7 are CDFs).
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace coterie {

/**
 * Streaming mean / variance / min / max accumulator (Welford).
 */
class RunningStats
{
  public:
    /** Fold one observation into the accumulator. */
    void add(double x);

    /** Number of observations so far. */
    std::size_t count() const { return n_; }
    /** Arithmetic mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Unbiased sample variance (0 when < 2 samples). */
    double variance() const;
    /** Sample standard deviation. */
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Stores every sample; supports exact percentiles and CDF dumps.
 * Intended for experiment-sized populations (up to a few million).
 */
class SampleSet
{
  public:
    void add(double x);
    void reserve(std::size_t n) { samples_.reserve(n); }

    /** Append every sample of another set (per-thread shard folding). */
    void merge(const SampleSet &other);

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }
    double mean() const;
    double min() const;
    double max() const;

    /** Exact percentile, p in [0, 100]; linear interpolation. */
    double percentile(double p) const;
    double median() const { return percentile(50.0); }

    /** Fraction of samples strictly above the threshold. */
    double fractionAbove(double threshold) const;
    /** Fraction of samples at or below the threshold. */
    double fractionAtOrBelow(double threshold) const;

    /**
     * Extract an n-point CDF as (value, cumulative fraction) pairs,
     * evenly spaced in cumulative probability.
     */
    std::vector<std::pair<double, double>> cdf(std::size_t points = 100) const;

    const std::vector<double> &samples() const { return samples_; }

  private:
    void ensureSorted() const;

    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/** Fixed-bin histogram over [lo, hi); out-of-range clamps to edge bins. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);
    std::size_t bin(std::size_t i) const { return counts_.at(i); }
    std::size_t bins() const { return counts_.size(); }
    std::size_t total() const { return total_; }
    double binLow(std::size_t i) const;
    double binHigh(std::size_t i) const;

    /** Render a terminal-friendly bar chart (for bench output). */
    std::string render(std::size_t width = 50) const;

    /**
     * Fold another histogram's counts into this one. Panics unless the
     * two histograms share the same [lo, hi) range and bin count (the
     * per-thread telemetry shards are constructed from one spec, so a
     * mismatch is a programming error, not data).
     */
    void merge(const Histogram &other);

    /**
     * Mergeable quantile estimate, @p q in [0, 1]: walk the cumulative
     * counts to the bin holding the q-th fraction of the mass, then
     * interpolate linearly inside it. Because merge() just adds
     * counts, quantiles of merged per-thread shards are *identical* to
     * the single-shard reference — the estimate is order-insensitive.
     * Accuracy is bounded by the bin width: the result is within one
     * bin of the exact sample quantile. Returns lo() when empty.
     */
    double quantile(double q) const;

    double lo() const { return lo_; }
    double hi() const { return hi_; }

  private:
    double lo_, hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

} // namespace coterie

