/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant violations
 * (aborts), fatal() for unrecoverable user errors (clean exit(1)),
 * warn()/inform() for non-fatal status messages.
 */

#pragma once

#include <cstdlib>
#include <sstream>
#include <string>

namespace coterie {

/** Severity of a log message. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

namespace detail {

/** Emit a formatted log line to stderr; aborts/exits per level. */
[[noreturn]] void logAndDie(LogLevel level, const char *file, int line,
                            const std::string &msg);
void log(LogLevel level, const char *file, int line, const std::string &msg);

/** Stream-concatenate a variadic pack into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Enable/disable inform() output globally (benches silence it). */
void setVerbose(bool verbose);
bool verbose();

/**
 * Hook invoked exactly once, right before a COTERIE_PANIC /
 * COTERIE_ASSERT failure aborts the process. The flight recorder
 * installs its crash-dump here (obs/flight.hh); the hook must be
 * async-signal-unsafe-tolerant in the sense that the process is
 * already doomed — it may allocate and do file I/O, but it must not
 * panic recursively (re-entry is suppressed).
 */
using PanicHook = void (*)();
void setPanicHook(PanicHook hook);

} // namespace coterie

/** Internal invariant violated: print and abort (core-dumpable). */
#define COTERIE_PANIC(...)                                                   \
    ::coterie::detail::logAndDie(::coterie::LogLevel::Panic, __FILE__,       \
                                 __LINE__,                                   \
                                 ::coterie::detail::concat(__VA_ARGS__))

/** Unrecoverable user/configuration error: print and exit(1). */
#define COTERIE_FATAL(...)                                                   \
    ::coterie::detail::logAndDie(::coterie::LogLevel::Fatal, __FILE__,       \
                                 __LINE__,                                   \
                                 ::coterie::detail::concat(__VA_ARGS__))

/** Suspicious but survivable condition. */
#define COTERIE_WARN(...)                                                    \
    ::coterie::detail::log(::coterie::LogLevel::Warn, __FILE__, __LINE__,    \
                           ::coterie::detail::concat(__VA_ARGS__))

/** Informational status message (suppressed unless verbose). */
#define COTERIE_INFORM(...)                                                  \
    ::coterie::detail::log(::coterie::LogLevel::Inform, __FILE__, __LINE__,  \
                           ::coterie::detail::concat(__VA_ARGS__))

/** Checked assertion that survives NDEBUG; use for cheap invariants. */
#define COTERIE_ASSERT(cond, ...)                                            \
    do {                                                                     \
        if (!(cond)) {                                                       \
            COTERIE_PANIC("assertion failed: " #cond " ", __VA_ARGS__);     \
        }                                                                    \
    } while (0)

