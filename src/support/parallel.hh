/**
 * @file
 * Shared thread pool and deterministic data-parallel helpers.
 *
 * Every parallel stage of the frame pipeline (panorama rendering, the
 * quadtree partitioner's per-region cutoff searches, offline
 * pre-render + encode, the SSIM kernel) submits work to one persistent,
 * lazily-initialized pool instead of spawning threads per call.
 *
 * Determinism contract: `parallelFor` splits [begin, end) into chunks
 * whose boundaries depend only on (begin, end, grain) — never on the
 * worker count — so a kernel that accumulates per chunk and reduces in
 * chunk order produces bit-identical results at any `COTERIE_THREADS`
 * value, including 1. Which worker executes a chunk is unspecified;
 * what each chunk computes is not.
 *
 * Pool size: `COTERIE_THREADS` env var if set (>= 1), else
 * std::thread::hardware_concurrency(). A size of 1 means no worker
 * threads — everything runs inline on the caller. Nested parallelFor
 * calls (from inside a pool task) always run inline, so kernels may
 * compose freely without deadlock.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "support/thread_annotations.hh"

namespace coterie::support {

/** Chunked loop body: invoked once per chunk with [chunkBegin, chunkEnd). */
using ChunkFn = std::function<void(std::int64_t, std::int64_t)>;

/**
 * Observe-only telemetry hooks into the pool (queue depth and worker
 * utilisation tracks for the trace exporter). `support` must not
 * depend on `obs`, so the observability layer registers itself here
 * instead of the pool calling it directly. Callbacks may fire from
 * any worker thread and must be thread-safe; they must never block on
 * pool progress or mutate pool state. The installed observer must
 * outlive all pool use (obs installs a process-lifetime singleton).
 */
class PoolObserver
{
  public:
    virtual ~PoolObserver() = default;
    /** A pooled job with @p chunkCount chunks was submitted. */
    virtual void onJobBegin(std::int64_t chunkCount) = 0;
    /** That job completed (all chunks done). */
    virtual void onJobEnd(std::int64_t chunkCount) = 0;
    /** A worker started/stopped running chunks. */
    virtual void onWorkerActivity(int activeWorkers, int workerCount) = 0;
};

/** Install (or clear, with nullptr) the process-wide pool observer. */
void setPoolObserver(PoolObserver *observer);

/**
 * Persistent worker pool. Use the process-wide `instance()` (what the
 * free helpers below dispatch to); standalone instances are
 * constructible for tests that need a specific worker count.
 */
class ThreadPool
{
  public:
    /** @p threads total lanes including the caller; <= 1 -> no workers. */
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * The shared pool, created on first use. Size comes from
     * `COTERIE_THREADS` (else hardware concurrency), clamped to
     * [1, 256].
     */
    static ThreadPool &instance();

    /** Total parallel lanes (worker threads + the calling thread). */
    int concurrency() const { return workerCount_ + 1; }

    /**
     * Run @p fn over [begin, end) in chunks of @p grain indices
     * (grain <= 0 picks a thread-count-independent default). The
     * caller participates; returns after every chunk has completed.
     * The first exception thrown by any chunk is rethrown here (the
     * remaining chunks are skipped).
     */
    void parallelFor(std::int64_t begin, std::int64_t end,
                     std::int64_t grain, const ChunkFn &fn);

    /** True while inside a pool task (nested calls run inline). */
    static bool onWorkerThread();

  private:
    struct Job;

    void workerLoop();
    static void runChunks(Job &job);

    Mutex mutex_{"ThreadPool::mutex_"};
    CondVar workCv_;
    CondVar doneCv_;
    Mutex submitMutex_{"ThreadPool::submitMutex_"}; ///< serializes concurrent top-level jobs
    Job *job_ COTERIE_GUARDED_BY(mutex_) = nullptr;
    std::uint64_t generation_ COTERIE_GUARDED_BY(mutex_) = 0;
    int activeWorkers_ COTERIE_GUARDED_BY(mutex_) = 0;
    bool stop_ COTERIE_GUARDED_BY(mutex_) = false;
    int workerCount_ = 0; ///< immutable after the constructor
    std::vector<std::thread> workers_;
};

/**
 * Chunked parallel loop on the shared pool. @p threads: 0 = shared
 * pool, 1 = force serial inline execution (also used for the
 * serial-vs-pooled determinism checks); other values use the pool.
 */
void parallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 const ChunkFn &fn, int threads = 0);

/**
 * Map i -> fn(i) for i in [0, n) into an ordered vector. Results are
 * positionally stored, so the output never depends on scheduling.
 */
template <typename T, typename Fn>
std::vector<T>
parallelMap(std::int64_t n, std::int64_t grain, Fn &&fn, int threads = 0)
{
    std::vector<T> out(static_cast<std::size_t>(n > 0 ? n : 0));
    parallelFor(
        0, n, grain,
        [&](std::int64_t b, std::int64_t e) {
            for (std::int64_t i = b; i < e; ++i)
                out[static_cast<std::size_t>(i)] = fn(i);
        },
        threads);
    return out;
}

} // namespace coterie::support
