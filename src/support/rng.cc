#include "support/rng.hh"

#include <cmath>

#include "support/logging.hh"

namespace coterie {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
hashMix(std::uint64_t value)
{
    std::uint64_t state = value;
    return splitmix64(state);
}

std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    // Boost-style combine lifted to 64 bits.
    return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    COTERIE_ASSERT(lo <= hi, "uniform bounds inverted: ", lo, " > ", hi);
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    COTERIE_ASSERT(lo <= hi, "uniformInt bounds inverted");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    std::uint64_t draw;
    do {
        draw = next();
    } while (draw >= limit);
    return lo + static_cast<std::int64_t>(draw % span);
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal_ = radius * std::sin(theta);
    hasCachedNormal_ = true;
    return radius * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::exponential(double lambda)
{
    COTERIE_ASSERT(lambda > 0.0, "exponential rate must be positive");
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / lambda;
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace coterie
