#include "support/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/logging.hh"

namespace coterie {

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double total = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ +
           delta * delta * static_cast<double>(n_) *
               static_cast<double>(other.n_) / total;
    mean_ = (mean_ * static_cast<double>(n_) +
             other.mean_ * static_cast<double>(other.n_)) / total;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
    n_ += other.n_;
}

void
SampleSet::add(double x)
{
    samples_.push_back(x);
    sorted_ = false;
}

void
SampleSet::merge(const SampleSet &other)
{
    if (other.samples_.empty())
        return;
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
}

double
SampleSet::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (double s : samples_)
        sum += s;
    return sum / static_cast<double>(samples_.size());
}

double
SampleSet::min() const
{
    ensureSorted();
    return samples_.empty() ? 0.0 : samples_.front();
}

double
SampleSet::max() const
{
    ensureSorted();
    return samples_.empty() ? 0.0 : samples_.back();
}

void
SampleSet::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
SampleSet::percentile(double p) const
{
    COTERIE_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range: ", p);
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    if (samples_.size() == 1)
        return samples_[0];
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= samples_.size())
        return samples_.back();
    return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double
SampleSet::fractionAbove(double threshold) const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    const auto it =
        std::upper_bound(samples_.begin(), samples_.end(), threshold);
    return static_cast<double>(samples_.end() - it) /
           static_cast<double>(samples_.size());
}

double
SampleSet::fractionAtOrBelow(double threshold) const
{
    return 1.0 - fractionAbove(threshold);
}

std::vector<std::pair<double, double>>
SampleSet::cdf(std::size_t points) const
{
    std::vector<std::pair<double, double>> out;
    if (samples_.empty() || points == 0)
        return out;
    ensureSorted();
    out.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        const double frac =
            static_cast<double>(i + 1) / static_cast<double>(points);
        const auto idx = static_cast<std::size_t>(
            frac * static_cast<double>(samples_.size() - 1));
        out.emplace_back(samples_[idx], frac);
    }
    return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    COTERIE_ASSERT(hi > lo && bins > 0, "bad histogram spec");
}

void
Histogram::add(double x)
{
    const double frac = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::ptrdiff_t>(
        frac * static_cast<double>(counts_.size()));
    idx = std::clamp<std::ptrdiff_t>(
        idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

double
Histogram::binLow(std::size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts_.size());
}

double
Histogram::binHigh(std::size_t i) const
{
    return binLow(i + 1);
}

void
Histogram::merge(const Histogram &other)
{
    COTERIE_ASSERT(lo_ == other.lo_ && hi_ == other.hi_ &&
                       counts_.size() == other.counts_.size(),
                   "merging histograms with different specs: [", lo_, ", ",
                   hi_, ")x", counts_.size(), " vs [", other.lo_, ", ",
                   other.hi_, ")x", other.counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
}

double
Histogram::quantile(double q) const
{
    if (total_ == 0)
        return lo_;
    q = std::clamp(q, 0.0, 1.0);
    // Target rank in (0, total]: the smallest bin whose cumulative
    // count reaches it holds the quantile.
    const double target =
        std::max(1.0, q * static_cast<double>(total_));
    std::size_t cumulative = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        const double before = static_cast<double>(cumulative);
        cumulative += counts_[i];
        if (static_cast<double>(cumulative) >= target) {
            // Linear interpolation inside the bin: counts are assumed
            // uniformly spread across the bin's value range.
            const double within =
                (target - before) / static_cast<double>(counts_[i]);
            return binLow(i) + within * (binHigh(i) - binLow(i));
        }
    }
    return hi_;
}

std::string
Histogram::render(std::size_t width) const
{
    std::ostringstream os;
    std::size_t peak = 1;
    for (auto c : counts_)
        peak = std::max(peak, c);
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const auto bar = static_cast<std::size_t>(
            static_cast<double>(counts_[i]) / static_cast<double>(peak) *
            static_cast<double>(width));
        os << "[" << binLow(i) << ", " << binHigh(i) << ") "
           << std::string(bar, '#') << " " << counts_[i] << "\n";
    }
    return os.str();
}

} // namespace coterie
