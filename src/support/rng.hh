/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in the library takes an explicit seed so that
 * all experiments are exactly reproducible. The generator is xoshiro256++,
 * seeded via SplitMix64 (the construction recommended by its authors).
 */

#pragma once

#include <cstdint>

namespace coterie {

/** SplitMix64 step; used standalone for hashing and for seeding Rng. */
std::uint64_t splitmix64(std::uint64_t &state);

/** Mix an arbitrary 64-bit value into a well-distributed hash. */
std::uint64_t hashMix(std::uint64_t value);

/** Combine two hashes (order-sensitive). */
std::uint64_t hashCombine(std::uint64_t a, std::uint64_t b);

/**
 * xoshiro256++ PRNG. Small, fast, and good enough for simulation;
 * deliberately not cryptographic.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box-Muller (cached second value). */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Exponential with the given rate parameter lambda (> 0). */
    double exponential(double lambda);

    /** Bernoulli trial with success probability p. */
    bool chance(double p);

    /** Derive an independent child generator (for parallel substreams). */
    Rng fork();

  private:
    std::uint64_t s_[4];
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

} // namespace coterie

