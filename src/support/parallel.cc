#include "support/parallel.hh"

#include <algorithm>
#include <cstdlib>

namespace coterie::support {

namespace {

/** True while this thread is executing inside a pool task — on worker
 *  threads always, on the calling thread while it participates in a
 *  job. Nested parallelFor calls check it and run inline. */
thread_local bool tlsInPoolTask = false;

int
envThreadCount()
{
    if (const char *env = std::getenv("COTERIE_THREADS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return static_cast<int>(std::min(v, 256L));
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return std::clamp(static_cast<int>(hw), 1, 256);
}

/** The installed telemetry observer (nullptr when none). */
std::atomic<PoolObserver *> gPoolObserver{nullptr};

PoolObserver *
poolObserver()
{
    return gPoolObserver.load(std::memory_order_acquire);
}

} // namespace

void
setPoolObserver(PoolObserver *observer)
{
    gPoolObserver.store(observer, std::memory_order_release);
}

/** One parallelFor invocation: fixed chunk grid + completion tracking. */
struct ThreadPool::Job
{
    std::int64_t begin = 0;
    std::int64_t grain = 1;
    std::int64_t chunkCount = 0;
    std::int64_t end = 0;
    const ChunkFn *fn = nullptr;
    std::atomic<std::int64_t> nextChunk{0};
    std::atomic<std::int64_t> doneChunks{0};
    std::atomic<bool> cancelled{false};
    Mutex errorMutex{"ThreadPool::Job::errorMutex"};
    std::exception_ptr error COTERIE_GUARDED_BY(errorMutex);
};

ThreadPool::ThreadPool(int threads)
{
    workerCount_ = std::max(0, threads - 1);
    workers_.reserve(static_cast<std::size_t>(workerCount_));
    for (int i = 0; i < workerCount_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex_);
        stop_ = true;
    }
    workCv_.notifyAll();
    for (std::thread &worker : workers_)
        worker.join();
}

ThreadPool &
ThreadPool::instance()
{
    static ThreadPool pool(envThreadCount());
    return pool;
}

bool
ThreadPool::onWorkerThread()
{
    return tlsInPoolTask;
}

void
ThreadPool::runChunks(Job &job)
{
    for (;;) {
        const std::int64_t chunk = job.nextChunk.fetch_add(1);
        if (chunk >= job.chunkCount)
            return;
        if (!job.cancelled.load(std::memory_order_relaxed)) {
            try {
                const std::int64_t b = job.begin + chunk * job.grain;
                const std::int64_t e = std::min(job.end, b + job.grain);
                (*job.fn)(b, e);
            } catch (...) {
                MutexLock lock(job.errorMutex);
                if (!job.error)
                    job.error = std::current_exception();
                job.cancelled.store(true, std::memory_order_relaxed);
            }
        }
        job.doneChunks.fetch_add(1);
    }
}

void
ThreadPool::workerLoop()
{
    tlsInPoolTask = true;
    std::uint64_t seen = 0;
    for (;;) {
        Job *job = nullptr;
        int active = 0;
        {
            MutexLock lock(mutex_);
            while (!stop_ && generation_ == seen)
                workCv_.wait(lock);
            if (stop_)
                return;
            seen = generation_;
            job = job_;
            if (!job)
                continue; // late wake-up: the job already finished
            active = ++activeWorkers_;
        }
        if (PoolObserver *obs = poolObserver())
            obs->onWorkerActivity(active, workerCount_);
        runChunks(*job);
        {
            MutexLock lock(mutex_);
            active = --activeWorkers_;
        }
        if (PoolObserver *obs = poolObserver())
            obs->onWorkerActivity(active, workerCount_);
        doneCv_.notifyAll();
    }
}

void
ThreadPool::parallelFor(std::int64_t begin, std::int64_t end,
                        std::int64_t grain, const ChunkFn &fn)
{
    if (end <= begin)
        return;
    const std::int64_t n = end - begin;
    if (grain <= 0) {
        // Thread-count-independent default: ~64 chunks regardless of
        // pool size, so chunk boundaries (and therefore chunk-local
        // accumulation) never depend on COTERIE_THREADS.
        grain = std::max<std::int64_t>(1, (n + 63) / 64);
    }
    const std::int64_t chunks = (n + grain - 1) / grain;

    // Serial paths: no workers, a single chunk, or a nested call from
    // inside a pool task (running it inline avoids deadlock and keeps
    // kernels composable).
    if (workerCount_ == 0 || chunks == 1 || tlsInPoolTask) {
        for (std::int64_t c = 0; c < chunks; ++c) {
            const std::int64_t b = begin + c * grain;
            fn(b, std::min(end, b + grain));
        }
        return;
    }

    Job job;
    job.begin = begin;
    job.end = end;
    job.grain = grain;
    job.chunkCount = chunks;
    job.fn = &fn;

    // One job at a time; concurrent top-level callers queue here.
    MutexLock submitLock(submitMutex_);
    if (PoolObserver *obs = poolObserver())
        obs->onJobBegin(chunks);
    {
        MutexLock lock(mutex_);
        job_ = &job;
        ++generation_;
    }
    workCv_.notifyAll();

    tlsInPoolTask = true; // caller-lane nested calls must run inline
    runChunks(job);
    tlsInPoolTask = false;

    {
        // Wait until every chunk has run *and* every worker has left
        // runChunks (a worker may still hold a reference to the job
        // after the final chunk completes).
        MutexLock lock(mutex_);
        while (job.doneChunks.load() < job.chunkCount ||
               activeWorkers_ != 0)
            doneCv_.wait(lock);
        job_ = nullptr;
    }

    if (PoolObserver *obs = poolObserver())
        obs->onJobEnd(chunks);

    std::exception_ptr error;
    {
        MutexLock lock(job.errorMutex);
        error = job.error;
    }
    if (error)
        std::rethrow_exception(error);
}

void
parallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
            const ChunkFn &fn, int threads)
{
    if (threads == 1) {
        if (end <= begin)
            return;
        if (grain <= 0)
            grain = std::max<std::int64_t>(1, (end - begin + 63) / 64);
        for (std::int64_t b = begin; b < end; b += grain)
            fn(b, std::min(end, b + grain));
        return;
    }
    ThreadPool::instance().parallelFor(begin, end, grain, fn);
}

} // namespace coterie::support
