#include "support/lock_order.hh"

#include "support/logging.hh"

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

namespace coterie::support::lockorder {

std::string
LockOrderRegistry::pathBetween(const std::string &from,
                               const std::string &to) const
{
    // Iterative DFS, reconstructing the witness through parent links.
    std::map<std::string, std::string> parent;
    std::vector<const std::string *> work;
    parent.emplace(from, "");
    work.push_back(&from);
    while (!work.empty()) {
        const std::string &u = *work.back();
        work.pop_back();
        const auto it = succ_.find(u);
        if (it == succ_.end())
            continue;
        for (const std::string &v : it->second) {
            if (!parent.emplace(v, u).second)
                continue;
            if (v == to) {
                std::string path = to;
                for (std::string p = u; !p.empty();
                     p = parent.at(p))
                    path = p + " -> " + path;
                return path;
            }
            work.push_back(&*it->second.find(v));
        }
    }
    return "";
}

std::string
LockOrderRegistry::record(const std::string &held,
                          const std::string &acquired)
{
    if (held == acquired)
        return ""; // same rank (distinct instances sharing a name)
    const auto it = succ_.find(held);
    if (it != succ_.end() && it->second.count(acquired))
        return ""; // known edge, nothing to re-check
    const std::string inverse = pathBetween(acquired, held);
    if (!inverse.empty())
        return inverse;
    succ_[held].insert(acquired);
    return "";
}

std::size_t
LockOrderRegistry::edgeCount() const
{
    std::size_t n = 0;
    for (const auto &[_, outs] : succ_)
        n += outs.size();
    return n;
}

#if COTERIE_LOCK_ORDER_ENABLED

namespace {

struct Held
{
    const void *mtx;
    const char *name;
};

// The per-thread held stack must stay usable during thread teardown:
// thread_local destructors (metrics shard folds, pool cleanup) may
// acquire mutexes after later-constructed thread_locals are already
// destroyed. A trivially-destructible POD array has no destructor, so
// there is no destruction-order window — unlike a std::vector, whose
// freed buffer the hooks would scribble over.
constexpr int kMaxHeld = 64;
thread_local Held tlsHeld[kMaxHeld];
thread_local int tlsHeldCount = 0;

// Same reasoning for the global registry: worker threads can run
// hooks while main's static destructors execute, so these singletons
// are intentionally leaked (never destroyed). The registry's own lock
// cannot be an instrumented support::Mutex — the hooks would recurse
// into themselves — so it uses the raw standard primitive.
std::mutex &
registryMutex()
{
    // lint:allow(mutex-guarded-by) — guards registry(), can't recurse
    static std::mutex *mu = new std::mutex;
    return *mu;
}

LockOrderRegistry &
registry()
{
    static LockOrderRegistry *r = new LockOrderRegistry;
    return *r;
}

} // namespace

bool
enabled()
{
    static const bool on = [] {
        const char *env = std::getenv("COTERIE_LOCK_ORDER");
        return !(env && std::strcmp(env, "0") == 0);
    }();
    return on;
}

void
pushHeld(const void *mtx, const char *name)
{
    if (tlsHeldCount >= kMaxHeld)
        COTERIE_PANIC("lock-order: a thread holds more than ",
                      kMaxHeld, " mutexes at once (acquiring \"", name,
                      "\") — almost certainly a leak of held locks");
    tlsHeld[tlsHeldCount++] = {mtx, name};
}

void
onAcquire(const void *mtx, const char *name)
{
    if (!enabled())
        return;
    for (int i = 0; i < tlsHeldCount; ++i)
        if (tlsHeld[i].mtx == mtx)
            COTERIE_PANIC("lock-order: recursive acquisition of "
                          "mutex \"",
                          name, "\" on one thread");
    {
        std::lock_guard<std::mutex> guard(registryMutex());
        for (int i = 0; i < tlsHeldCount; ++i) {
            const std::string inverse =
                registry().record(tlsHeld[i].name, name);
            if (!inverse.empty())
                COTERIE_PANIC(
                    "lock-order inversion: acquiring mutex \"", name,
                    "\" while holding \"", tlsHeld[i].name,
                    "\" inverts the established order ", inverse,
                    " (static counterpart: coterie-lint "
                    "lock-order-cycle; set COTERIE_LOCK_ORDER=0 to "
                    "bypass while debugging)");
        }
    }
    pushHeld(mtx, name);
}

void
onTryAcquire(const void *mtx, const char *name)
{
    if (!enabled())
        return;
    pushHeld(mtx, name);
}

void
onRelease(const void *mtx)
{
    if (!enabled())
        return;
    for (int i = tlsHeldCount - 1; i >= 0; --i)
        if (tlsHeld[i].mtx == mtx) {
            for (int j = i; j + 1 < tlsHeldCount; ++j)
                tlsHeld[j] = tlsHeld[j + 1];
            --tlsHeldCount;
            return;
        }
}

#endif // COTERIE_LOCK_ORDER_ENABLED

} // namespace coterie::support::lockorder
