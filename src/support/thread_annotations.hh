/**
 * @file
 * Clang thread-safety annotations and annotated locking primitives.
 *
 * Coterie's headline invariant — bit-identical Far-BE frames shared
 * across players — only holds if pool-shared state is race-free. These
 * macros make the locking discipline machine-checked: build with clang
 * and `-DCOTERIE_THREAD_SAFETY=ON` (adds `-Wthread-safety -Werror`) and
 * any access to a `COTERIE_GUARDED_BY` member outside its mutex is a
 * compile error. Under gcc (or clang without the attribute support) the
 * macros expand to nothing, so the annotations are free documentation.
 *
 * libstdc++'s std::mutex/std::lock_guard carry no annotations, so the
 * analysis cannot see through them. `Mutex`, `MutexLock`, and `CondVar`
 * below are thin annotated wrappers (the abseil pattern); all
 * pool-shared state in `src/` must use them — `coterie-lint`'s
 * `mutex-guarded-by` rule enforces that every mutex member lives in a
 * file that actually uses GUARDED_BY.
 */

#pragma once

#include "support/lock_order.hh"

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define COTERIE_TSA(x) __attribute__((x))
#endif
#endif
#ifndef COTERIE_TSA
#define COTERIE_TSA(x) // no-op outside clang
#endif

#define COTERIE_CAPABILITY(x) COTERIE_TSA(capability(x))
#define COTERIE_SCOPED_CAPABILITY COTERIE_TSA(scoped_lockable)
#define COTERIE_GUARDED_BY(x) COTERIE_TSA(guarded_by(x))
#define COTERIE_PT_GUARDED_BY(x) COTERIE_TSA(pt_guarded_by(x))
#define COTERIE_REQUIRES(...) COTERIE_TSA(requires_capability(__VA_ARGS__))
#define COTERIE_ACQUIRE(...) COTERIE_TSA(acquire_capability(__VA_ARGS__))
#define COTERIE_RELEASE(...) COTERIE_TSA(release_capability(__VA_ARGS__))
#define COTERIE_TRY_ACQUIRE(...)                                             \
    COTERIE_TSA(try_acquire_capability(__VA_ARGS__))
#define COTERIE_EXCLUDES(...) COTERIE_TSA(locks_excluded(__VA_ARGS__))
#define COTERIE_ASSERT_CAPABILITY(x) COTERIE_TSA(assert_capability(x))
#define COTERIE_RETURN_CAPABILITY(x) COTERIE_TSA(lock_returned(x))
#define COTERIE_NO_THREAD_SAFETY_ANALYSIS                                    \
    COTERIE_TSA(no_thread_safety_analysis)

namespace coterie::support {

/**
 * Annotated std::mutex wrapper the analysis can track. The name feeds
 * the runtime lock-order validator (support/lock_order.hh) and the
 * static lock-order analysis in coterie-lint; every mutex declaration
 * in src/ passes one (distinct instances may share a name — same-name
 * locks are rank-equal and never ordered against each other).
 */
class COTERIE_CAPABILITY("mutex") Mutex
{
  public:
    explicit Mutex(const char *name = "<unnamed>") : name_(name) {}
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() COTERIE_ACQUIRE()
    {
        // Hook BEFORE blocking: a recursive acquisition or an order
        // inversion must panic with a diagnostic, not sit forever in
        // m_.lock() waiting for the deadlock it just created.
        lockorder::onAcquire(this, name_);
        m_.lock();
    }
    void
    unlock() COTERIE_RELEASE()
    {
        lockorder::onRelease(this);
        m_.unlock();
    }
    bool
    tryLock() COTERIE_TRY_ACQUIRE(true)
    {
        const bool ok = m_.try_lock();
        if (ok)
            lockorder::onTryAcquire(this, name_);
        return ok;
    }

    /** The validator/diagnostic name this mutex was declared with. */
    const char *name() const { return name_; }

    /** The wrapped mutex, for interop (CondVar). */
    std::mutex &native() { return m_; }

  private:
    std::mutex m_;
    const char *name_;
};

/**
 * Scoped lock over `Mutex` (RAII, like std::unique_lock). Holds the
 * capability for its lifetime; `CondVar::wait` may release/reacquire
 * internally, which is invisible to (and sound for) the analysis as
 * long as guarded reads stay inside the scope.
 */
class COTERIE_SCOPED_CAPABILITY MutexLock
{
  public:
    // Acquire through Mutex::lock (not unique_lock's constructor) so
    // the lock-order validator checks every scoped acquisition before
    // it can block; the unique_lock adopts the already-held native
    // mutex.
    explicit MutexLock(Mutex &m) COTERIE_ACQUIRE(m)
        : mutex_(m),
          lock_((m.lock(), std::unique_lock<std::mutex>(
                               m.native(), std::adopt_lock)))
    {
    }
    ~MutexLock() COTERIE_RELEASE()
    {
        // Pop the held entry first; the unique_lock member then
        // performs the native unlock (same order as Mutex::unlock).
        lockorder::onRelease(&mutex_);
    }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    /** For CondVar interop only. */
    std::unique_lock<std::mutex> &native() { return lock_; }

  private:
    Mutex &mutex_;
    std::unique_lock<std::mutex> lock_;
};

/**
 * Condition variable paired with `Mutex`. No predicate overloads on
 * purpose: the analysis cannot see a mutex held inside a predicate
 * lambda, so callers write the standard `while (!cond) cv.wait(lock);`
 * loop with the condition read in the annotated scope.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    void wait(MutexLock &lock) { cv_.wait(lock.native()); }
    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace coterie::support
