/**
 * @file
 * Portable SIMD lane types for the batched render kernels.
 *
 * Two interchangeable implementations behind one API:
 *  - GCC/clang vector extensions (`vector_size`) when the compiler
 *    supports them and CMake's COTERIE_SIMD option is ON. The compiler
 *    lowers the 4-lane ops to whatever the target ISA provides
 *    (2x128-bit on plain x86-64, 256-bit under the AVX2/AVX-512
 *    `COTERIE_SIMD_CLONES` clones) with identical per-lane arithmetic.
 *  - A scalar-lane struct fallback (COTERIE_SIMD=OFF or other
 *    compilers): the same operations as plain per-lane loops.
 *
 * Determinism contract: every operation here is lane-wise and maps to
 * exactly one IEEE double (or exact integer) operation per lane, so a
 * kernel written against these types produces bit-identical results in
 * both implementations and under every dispatch clone. Kernels that
 * must match scalar reference code additionally avoid FP expressions
 * that a fused-multiply-add contraction could alter (see
 * world/terrain.cc: the cloned region is integer hashing plus
 * power-of-two scales only).
 */

#pragma once

#include <cstdint>
#include <cstring>

#ifndef COTERIE_SIMD_ENABLED
#define COTERIE_SIMD_ENABLED 1
#endif

#if COTERIE_SIMD_ENABLED && (defined(__GNUC__) || defined(__clang__))
#define COTERIE_SIMD_VECTOR_EXT 1
#endif

// Runtime dispatch: emit AVX-512DQ (native 64-bit lane multiply:
// vpmullq) and AVX2 clones next to the baseline symbol and resolve at
// load time. The clone dispatch runs through an ifunc resolver that
// executes before sanitizer runtimes initialise, so instrumented
// builds stay on the plain symbol.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define COTERIE_SIMD_NO_CLONES 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define COTERIE_SIMD_NO_CLONES 1
#endif
#endif
// target_clones miscompiles under gcc at -O0 (wild pointers inside
// the cloned kernels crash the render path and skew the codec's
// quality floor; observed with gcc 12, Debug builds only — every
// optimized build is clean). Unoptimized builds don't need runtime
// dispatch anyway, so pin them to the baseline symbol.
#if !defined(__OPTIMIZE__)
#define COTERIE_SIMD_NO_CLONES 1
#endif

#if defined(COTERIE_SIMD_VECTOR_EXT) && defined(__x86_64__) &&           \
    defined(__gnu_linux__) && defined(__has_attribute) &&                \
    !defined(COTERIE_SIMD_NO_CLONES)
#if __has_attribute(target_clones)
#define COTERIE_SIMD_CLONES                                              \
    __attribute__((target_clones("arch=x86-64-v4", "avx2", "default")))
#endif
#endif
#ifndef COTERIE_SIMD_CLONES
#define COTERIE_SIMD_CLONES
#endif

namespace coterie::support::simd {

inline constexpr int kLanes = 4;

#ifdef COTERIE_SIMD_VECTOR_EXT

// The wide helpers are internal and always inlined; the ABI of the
// vector return types is irrelevant.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpsabi"

/** Raw 2-lane double vector (SSE2/NEON width), for narrow kernels. */
typedef double V2dRaw __attribute__((vector_size(16)));
/** Raw 4-lane double vector. */
typedef double V4dRaw __attribute__((vector_size(32)));
/** Raw 4-lane unsigned 64-bit vector. */
typedef std::uint64_t V4uRaw __attribute__((vector_size(32)));

/** Four double lanes. */
struct F64x4
{
    V4dRaw v;

    static F64x4 splat(double x) { return {V4dRaw{x, x, x, x}}; }
    static F64x4
    load(const double *p)
    {
        F64x4 r;
        __builtin_memcpy(&r.v, p, sizeof(r.v));
        return r;
    }
    void store(double *p) const { __builtin_memcpy(p, &v, sizeof(v)); }
    double operator[](int i) const { return v[i]; }

    friend F64x4 operator+(F64x4 a, F64x4 b) { return {a.v + b.v}; }
    friend F64x4 operator-(F64x4 a, F64x4 b) { return {a.v - b.v}; }
    friend F64x4 operator*(F64x4 a, F64x4 b) { return {a.v * b.v}; }
};

/** Four unsigned 64-bit lanes (exact integer arithmetic). */
struct U64x4
{
    V4uRaw v;

    static U64x4
    splat(std::uint64_t x)
    {
        return {V4uRaw{x, x, x, x}};
    }
    static U64x4
    load(const std::uint64_t *p)
    {
        U64x4 r;
        __builtin_memcpy(&r.v, p, sizeof(r.v));
        return r;
    }
    std::uint64_t operator[](int i) const { return v[i]; }

    friend U64x4 operator+(U64x4 a, U64x4 b) { return {a.v + b.v}; }
    friend U64x4 operator*(U64x4 a, U64x4 b) { return {a.v * b.v}; }
    friend U64x4 operator^(U64x4 a, U64x4 b) { return {a.v ^ b.v}; }
    friend U64x4 operator>>(U64x4 a, int s) { return {a.v >> s}; }
    friend U64x4 operator<<(U64x4 a, int s) { return {a.v << s}; }
};

/** Per-lane minimum with std::min semantics (b < a ? b : a). */
inline F64x4
vmin(F64x4 a, F64x4 b)
{
    return {b.v < a.v ? b.v : a.v};
}

/** Per-lane maximum with std::max semantics (a < b ? b : a). */
inline F64x4
vmax(F64x4 a, F64x4 b)
{
    return {a.v < b.v ? b.v : a.v};
}

/**
 * Per-lane unsigned-to-double conversion. Exact (no rounding) for
 * values below 2^53, which is all the hash kernels feed it.
 */
inline F64x4
toDouble(U64x4 a)
{
    return {__builtin_convertvector(a.v, V4dRaw)};
}

/** Per-lane a <= b mask as lane bits (bit i set when lane i passes). */
inline int
lanesLessEqual(F64x4 a, F64x4 b)
{
    const auto m = a.v <= b.v; // lanes are all-ones / all-zero int64
    int mask = 0;
    for (int i = 0; i < kLanes; ++i)
        mask |= (m[i] != 0) << i;
    return mask;
}

#pragma GCC diagnostic pop

#else // !COTERIE_SIMD_VECTOR_EXT — scalar-lane fallback

struct F64x4
{
    double v[kLanes];

    static F64x4
    splat(double x)
    {
        return {{x, x, x, x}};
    }
    static F64x4
    load(const double *p)
    {
        F64x4 r;
        std::memcpy(r.v, p, sizeof(r.v));
        return r;
    }
    void store(double *p) const { std::memcpy(p, v, sizeof(v)); }
    double operator[](int i) const { return v[i]; }

    friend F64x4
    operator+(F64x4 a, F64x4 b)
    {
        F64x4 r;
        for (int i = 0; i < kLanes; ++i)
            r.v[i] = a.v[i] + b.v[i];
        return r;
    }
    friend F64x4
    operator-(F64x4 a, F64x4 b)
    {
        F64x4 r;
        for (int i = 0; i < kLanes; ++i)
            r.v[i] = a.v[i] - b.v[i];
        return r;
    }
    friend F64x4
    operator*(F64x4 a, F64x4 b)
    {
        F64x4 r;
        for (int i = 0; i < kLanes; ++i)
            r.v[i] = a.v[i] * b.v[i];
        return r;
    }
};

struct U64x4
{
    std::uint64_t v[kLanes];

    static U64x4
    splat(std::uint64_t x)
    {
        return {{x, x, x, x}};
    }
    static U64x4
    load(const std::uint64_t *p)
    {
        U64x4 r;
        std::memcpy(r.v, p, sizeof(r.v));
        return r;
    }
    std::uint64_t operator[](int i) const { return v[i]; }

    friend U64x4
    operator+(U64x4 a, U64x4 b)
    {
        U64x4 r;
        for (int i = 0; i < kLanes; ++i)
            r.v[i] = a.v[i] + b.v[i];
        return r;
    }
    friend U64x4
    operator*(U64x4 a, U64x4 b)
    {
        U64x4 r;
        for (int i = 0; i < kLanes; ++i)
            r.v[i] = a.v[i] * b.v[i];
        return r;
    }
    friend U64x4
    operator^(U64x4 a, U64x4 b)
    {
        U64x4 r;
        for (int i = 0; i < kLanes; ++i)
            r.v[i] = a.v[i] ^ b.v[i];
        return r;
    }
    friend U64x4
    operator>>(U64x4 a, int s)
    {
        U64x4 r;
        for (int i = 0; i < kLanes; ++i)
            r.v[i] = a.v[i] >> s;
        return r;
    }
    friend U64x4
    operator<<(U64x4 a, int s)
    {
        U64x4 r;
        for (int i = 0; i < kLanes; ++i)
            r.v[i] = a.v[i] << s;
        return r;
    }
};

inline F64x4
vmin(F64x4 a, F64x4 b)
{
    F64x4 r;
    for (int i = 0; i < kLanes; ++i)
        r.v[i] = b.v[i] < a.v[i] ? b.v[i] : a.v[i];
    return r;
}

inline F64x4
vmax(F64x4 a, F64x4 b)
{
    F64x4 r;
    for (int i = 0; i < kLanes; ++i)
        r.v[i] = a.v[i] < b.v[i] ? b.v[i] : a.v[i];
    return r;
}

inline F64x4
toDouble(U64x4 a)
{
    F64x4 r;
    for (int i = 0; i < kLanes; ++i)
        r.v[i] = static_cast<double>(a.v[i]);
    return r;
}

inline int
lanesLessEqual(F64x4 a, F64x4 b)
{
    int mask = 0;
    for (int i = 0; i < kLanes; ++i)
        mask |= (a.v[i] <= b.v[i]) << i;
    return mask;
}

#endif // COTERIE_SIMD_VECTOR_EXT

/** splitmix64 across four lanes — lane-exact mirror of support/rng.cc. */
inline U64x4
hashMix4(U64x4 value)
{
    U64x4 z = value + U64x4::splat(0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * U64x4::splat(0xbf58476d1ce4e5b9ULL);
    z = (z ^ (z >> 27)) * U64x4::splat(0x94d049bb133111ebULL);
    return z ^ (z >> 31);
}

/** Boost-style 64-bit combine across four lanes (mirror of rng.cc). */
inline U64x4
hashCombine4(U64x4 a, U64x4 b)
{
    return a ^ (b + U64x4::splat(0x9e3779b97f4a7c15ULL) + (a << 12) +
                (a >> 4));
}

} // namespace coterie::support::simd
