#include "support/logging.hh"

#include <atomic>
#include <cstdio>

namespace coterie {

namespace {

std::atomic<bool> g_verbose{false};
std::atomic<PanicHook> g_panicHook{nullptr};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

} // namespace

void
setVerbose(bool verbose)
{
    g_verbose.store(verbose, std::memory_order_relaxed);
}

bool
verbose()
{
    return g_verbose.load(std::memory_order_relaxed);
}

void
setPanicHook(PanicHook hook)
{
    g_panicHook.store(hook, std::memory_order_release);
}

namespace detail {

void
log(LogLevel level, const char *file, int line, const std::string &msg)
{
    if (level == LogLevel::Inform && !coterie::verbose())
        return;
    std::fprintf(stderr, "[%s] %s (%s:%d)\n", levelName(level), msg.c_str(),
                 file, line);
}

void
logAndDie(LogLevel level, const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s (%s:%d)\n", levelName(level), msg.c_str(),
                 file, line);
    if (level == LogLevel::Panic) {
        // Fire the crash hook (flight-recorder dump) exactly once; a
        // panic raised *inside* the hook must still abort.
        if (PanicHook hook =
                g_panicHook.exchange(nullptr, std::memory_order_acq_rel))
            hook();
        std::abort();
    }
    std::exit(1);
}

} // namespace detail
} // namespace coterie
