/**
 * @file
 * Runtime lock-order validator (lockdep-lite).
 *
 * The static lock-order analysis in tools/lint proves the annotated
 * acquisition graph acyclic; this validator asserts the same DAG on
 * every test run, catching orderings the static pass cannot see
 * (virtual calls, callbacks, locks taken through opaque interfaces).
 * It is compiled in only when CMake's COTERIE_LOCK_ORDER resolves to
 * ON (default: sanitizer and Debug builds); otherwise every hook is
 * an empty inline and `Mutex`/`MutexLock` carry zero overhead.
 *
 * Design notes:
 *  - The global order graph is keyed by mutex *name*, not address:
 *    short-lived mutexes (per-job `errorMutex` in support/parallel)
 *    reuse addresses, and a name-keyed graph needs no unregistration
 *    in ~Mutex. Two *instances* sharing a name never form an edge
 *    with each other (per-shard mutexes are rank-equal by design).
 *  - The per-thread held list is keyed by address, so recursive
 *    acquisition of one instance panics immediately.
 *  - `tryLock` pushes the held entry but adds no order edge: a
 *    non-blocking acquire cannot deadlock, and tryLock is exactly the
 *    idiom for taking locks against the established order.
 *  - A detected inversion calls COTERIE_PANIC naming both mutexes
 *    and the established path, then aborts (core-dumpable).
 *  - Kill switch: COTERIE_LOCK_ORDER=0 in the environment disables
 *    the checks at runtime (support/ owns the env access point).
 */

#pragma once

#include <map>
#include <set>
#include <string>

#ifndef COTERIE_LOCK_ORDER_ENABLED
#define COTERIE_LOCK_ORDER_ENABLED 0
#endif

namespace coterie::support::lockorder {

/**
 * The name-keyed order graph. Always compiled (the unit tests drive
 * it in every build config); the runtime hooks below feed it only
 * when the validator is enabled.
 */
class LockOrderRegistry
{
  public:
    /**
     * Record "@p acquired taken while @p held is held". Returns ""
     * when the edge is consistent with the graph (and inserts it);
     * otherwise returns the established opposite path, e.g.
     * "b -> a", without inserting the inverting edge.
     */
    std::string record(const std::string &held,
                       const std::string &acquired);

    /** Number of distinct order edges recorded (for tests). */
    std::size_t edgeCount() const;

  private:
    /** Path from @p from to @p to, "" if unreachable. */
    std::string pathBetween(const std::string &from,
                            const std::string &to) const;

    std::map<std::string, std::set<std::string>> succ_;
};

#if COTERIE_LOCK_ORDER_ENABLED

/** False when COTERIE_LOCK_ORDER=0 is set in the environment. */
bool enabled();

/**
 * About to block on @p mtx (named @p name). Called *before* the
 * native lock so a recursive acquisition or an order inversion
 * panics with a diagnostic instead of deadlocking silently.
 */
void onAcquire(const void *mtx, const char *name);
/** Non-blocking acquisition succeeded (held, but no order edge). */
void onTryAcquire(const void *mtx, const char *name);
/** @p mtx released. */
void onRelease(const void *mtx);

#else

inline bool
enabled()
{
    return false;
}
inline void
onAcquire(const void *, const char *)
{
}
inline void
onTryAcquire(const void *, const char *)
{
}
inline void
onRelease(const void *)
{
}

#endif // COTERIE_LOCK_ORDER_ENABLED

} // namespace coterie::support::lockorder
