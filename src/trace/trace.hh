/**
 * @file
 * Player movement traces: the per-frame (60 Hz) positions and headings
 * of each player in the virtual world. The similarity and caching
 * experiments replay these traces, exactly as the paper replays the
 * trajectories it recorded on the testbed.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/vec.hh"
#include "world/grid.hh"

namespace coterie::trace {

/** One sampled pose of one player. */
struct TracePoint
{
    double timeMs = 0.0;
    geom::Vec2 position;
    double yaw = 0.0; ///< heading, radians
};

/** A single player's trajectory. */
struct PlayerTrace
{
    int playerId = 0;
    std::vector<TracePoint> points;

    std::size_t size() const { return points.size(); }

    /** Total path length in meters. */
    double pathLength() const;

    /**
     * Collapse to the sequence of distinct grid points visited, in
     * order (consecutive duplicates removed). This is the granularity
     * at which BE frames are prefetched.
     */
    std::vector<world::GridPoint> gridPath(const world::GridMap &grid) const;
};

/** A multi-player session trace. */
struct SessionTrace
{
    std::string game;
    double tickMs = 1000.0 / 60.0;
    std::vector<PlayerTrace> players;

    int playerCount() const { return static_cast<int>(players.size()); }
    double durationMs() const;
};

/**
 * Random-access cursor over a player trace with linear interpolation
 * between ticks: consumers sample poses at arbitrary timestamps (the
 * DES system models run at non-tick-aligned event times).
 */
class TraceCursor
{
  public:
    explicit TraceCursor(const PlayerTrace &trace, double tickMs);

    /** Interpolated pose at absolute time @p timeMs (clamped). */
    TracePoint at(double timeMs) const;

    /** Instantaneous speed (m/s) at @p timeMs (finite difference). */
    double speedAt(double timeMs) const;

    double durationMs() const;

  private:
    const PlayerTrace &trace_;
    double tickMs_;
};

/** Save/load a session trace as a plain text file. */
bool saveTrace(const SessionTrace &trace, const std::string &path);
SessionTrace loadTrace(const std::string &path);

/**
 * Mean pairwise distance between players over time — the paper's
 * "multiplayer movement proximity" notion.
 */
double meanPlayerSeparation(const SessionTrace &trace);

} // namespace coterie::trace

