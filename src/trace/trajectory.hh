/**
 * @file
 * Trajectory synthesis: movement models per game genre (Table 2) and
 * multiplayer proximity coupling.
 *
 * Track games: all cars chase each other closely around the loop.
 * Roaming games: a leader wanders between waypoints; followers trail the
 * leader with offsets ("multiple avatars closely follow each other").
 * Indoor games: slow walks inside the room.
 *
 * A central property the paper measures (Table 5): players stay *near*
 * each other but essentially never traverse *exactly* the same path —
 * follower offsets and per-player jitter guarantee that here too.
 */

#pragma once

#include <cstdint>

#include "trace/trace.hh"
#include "world/gen/generators.hh"

namespace coterie::trace {

/** Synthesis knobs. */
struct TrajectoryParams
{
    int players = 1;
    double durationS = 600.0;      ///< paper: 10-minute plays
    double tickHz = 60.0;
    std::uint64_t seed = 7;
    /** Mean follower distance behind the leader (m). */
    double followGap = 3.0;
    /** Per-player lateral offset scale (m). */
    double lateralSpread = 0.6;
    /** Heading noise (radians/s RMS). */
    double headingNoise = 0.35;
};

/**
 * Generate a session trace for a game. Movement style and speed come
 * from the game's GameInfo; the world provides bounds (positions are
 * kept inside, and outside obstacles for roaming).
 */
SessionTrace generateTrace(const world::gen::GameInfo &info,
                           const world::VirtualWorld &world,
                           const TrajectoryParams &params);

} // namespace coterie::trace

