#include "trace/trajectory.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"
#include "support/rng.hh"
#include "world/gen/track.hh"

namespace coterie::trace {

using geom::Rect;
using geom::Vec2;
using world::gen::GameInfo;
using world::gen::MovementStyle;

namespace {

/** Keep roaming players away from the hard world edge. */
constexpr double kEdgeMargin = 2.0;

Rect
shrunk(const Rect &r, double margin)
{
    const double m = std::min({margin, r.width() / 4, r.height() / 4});
    return {r.lo + Vec2{m, m}, r.hi - Vec2{m, m}};
}

/**
 * Track-following: player i trails player 0 by i * followGap along the
 * arc, with a small lateral lane offset and speed jitter.
 */
PlayerTrace
trackTrace(const GameInfo &info, const world::VirtualWorld &world,
           const TrajectoryParams &params, int player, Rng &rng)
{
    world::gen::Track track({{0.0, 0.0}, {info.width, info.height}},
                            /*seed=*/world.terrain().params().seed);
    PlayerTrace out;
    out.playerId = player;
    const double dt = 1.0 / params.tickHz;
    const auto ticks =
        static_cast<std::size_t>(params.durationS * params.tickHz);
    out.points.reserve(ticks);

    double s = -static_cast<double>(player) * params.followGap * 4.0;
    const double lane =
        (player % 2 == 0 ? 1.0 : -1.0) *
        (0.5 + params.lateralSpread * 0.8 * (player / 2));
    double speed = info.playerSpeed;
    for (std::size_t t = 0; t < ticks; ++t) {
        // Speed wanders +-15% like a human driver.
        speed += rng.normal(0.0, info.playerSpeed * 0.01);
        speed = std::clamp(speed, info.playerSpeed * 0.85,
                           info.playerSpeed * 1.15);
        s += speed * dt;
        const Vec2 center = track.pointAt(s);
        const Vec2 tangent = track.tangentAt(s);
        const Vec2 pos = center + tangent.perp() * lane;
        TracePoint tp;
        tp.timeMs = static_cast<double>(t) * dt * 1000.0;
        tp.position = world.bounds().clamp(pos);
        tp.yaw = tangent.angle();
        out.points.push_back(tp);
    }
    return out;
}

/** Waypoint-roaming leader path; shared by all followers. */
std::vector<TracePoint>
leaderRoam(const GameInfo &info, const world::VirtualWorld &world,
           const TrajectoryParams &params, Rng &rng)
{
    const Rect area = shrunk(world.bounds(), kEdgeMargin);
    const double dt = 1.0 / params.tickHz;
    const auto ticks =
        static_cast<std::size_t>(params.durationS * params.tickHz);

    std::vector<TracePoint> pts;
    pts.reserve(ticks);
    // Roaming covers the whole playable map: waypoints are uniform in
    // the (margin-shrunk) world, the way mission/shooter players sweep
    // a level rather than orbiting one spot.
    Vec2 pos{rng.uniform(area.lo.x, area.hi.x),
             rng.uniform(area.lo.y, area.hi.y)};
    Vec2 waypoint = pos;
    double yaw = 0.0;
    for (std::size_t t = 0; t < ticks; ++t) {
        if (pos.distance(waypoint) < 1.0) {
            waypoint = Vec2{rng.uniform(area.lo.x, area.hi.x),
                            rng.uniform(area.lo.y, area.hi.y)};
        }
        const Vec2 to_wp = (waypoint - pos).normalized();
        yaw += rng.normal(0.0, params.headingNoise * dt);
        const double blend = 0.15;
        const Vec2 heading =
            (Vec2::fromAngle(yaw) * (1.0 - blend) + to_wp * blend)
                .normalized();
        yaw = heading.angle();
        pos += heading * (info.playerSpeed * dt);
        pos = area.clamp(pos);
        TracePoint tp;
        tp.timeMs = static_cast<double>(t) * dt * 1000.0;
        tp.position = pos;
        tp.yaw = yaw;
        pts.push_back(tp);
    }
    return pts;
}

/**
 * Followers trail the leader's *historic* position (followGap seconds
 * behind) plus a personal lateral offset and jitter: close proximity,
 * never the identical path.
 */
PlayerTrace
followerFrom(const std::vector<TracePoint> &leader,
             const TrajectoryParams &params, int player, Rng &rng,
             const Rect &area, double speed)
{
    PlayerTrace out;
    out.playerId = player;
    out.points.reserve(leader.size());
    const double dt_ms = 1000.0 / params.tickHz;
    const auto lag_ticks = static_cast<std::size_t>(
        params.followGap / std::max(speed, 0.1) * params.tickHz *
        static_cast<double>(player));
    const Vec2 offset{rng.normal(0.0, params.lateralSpread),
                      rng.normal(0.0, params.lateralSpread)};
    Vec2 jitter{0.0, 0.0};
    for (std::size_t t = 0; t < leader.size(); ++t) {
        const std::size_t src = t > lag_ticks ? t - lag_ticks : 0;
        // Smooth bounded random-walk jitter.
        jitter += Vec2{rng.normal(0.0, 0.02), rng.normal(0.0, 0.02)};
        jitter = jitter * 0.995;
        TracePoint tp = leader[src];
        tp.timeMs = static_cast<double>(t) * dt_ms;
        tp.position = area.clamp(tp.position + offset + jitter);
        out.points.push_back(tp);
    }
    return out;
}

} // namespace

SessionTrace
generateTrace(const GameInfo &info, const world::VirtualWorld &world,
              const TrajectoryParams &params)
{
    COTERIE_ASSERT(params.players >= 1, "need at least one player");
    SessionTrace session;
    session.game = info.name;
    session.tickMs = 1000.0 / params.tickHz;

    Rng rng(hashCombine(params.seed, static_cast<std::uint64_t>(info.id)));

    if (info.movement == MovementStyle::TrackFollow) {
        for (int p = 0; p < params.players; ++p) {
            Rng prng = rng.fork();
            session.players.push_back(
                trackTrace(info, world, params, p, prng));
        }
        return session;
    }

    // Roam / IndoorWalk: leader plus followers.
    const auto leader = leaderRoam(info, world, params, rng);
    const Rect area = shrunk(world.bounds(), kEdgeMargin);
    for (int p = 0; p < params.players; ++p) {
        if (p == 0) {
            PlayerTrace lead;
            lead.playerId = 0;
            lead.points = leader;
            session.players.push_back(std::move(lead));
        } else {
            Rng prng = rng.fork();
            session.players.push_back(followerFrom(
                leader, params, p, prng, area, info.playerSpeed));
        }
    }
    return session;
}

} // namespace coterie::trace
