#include "trace/trace.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/logging.hh"

namespace coterie::trace {

double
PlayerTrace::pathLength() const
{
    double total = 0.0;
    for (std::size_t i = 1; i < points.size(); ++i)
        total += points[i].position.distance(points[i - 1].position);
    return total;
}

std::vector<world::GridPoint>
PlayerTrace::gridPath(const world::GridMap &grid) const
{
    std::vector<world::GridPoint> path;
    for (const TracePoint &tp : points) {
        const world::GridPoint g = grid.snap(tp.position);
        if (path.empty() || !(path.back() == g))
            path.push_back(g);
    }
    return path;
}

double
SessionTrace::durationMs() const
{
    double latest = 0.0;
    for (const PlayerTrace &p : players)
        if (!p.points.empty())
            latest = std::max(latest, p.points.back().timeMs);
    return latest;
}

TraceCursor::TraceCursor(const PlayerTrace &trace, double tickMs)
    : trace_(trace), tickMs_(tickMs)
{
    COTERIE_ASSERT(tickMs > 0.0, "cursor needs a positive tick");
    COTERIE_ASSERT(!trace.points.empty(), "cursor over empty trace");
}

double
TraceCursor::durationMs() const
{
    return static_cast<double>(trace_.points.size() - 1) * tickMs_;
}

TracePoint
TraceCursor::at(double timeMs) const
{
    const double ticks = std::clamp(
        timeMs / tickMs_, 0.0,
        static_cast<double>(trace_.points.size() - 1));
    const auto lo = static_cast<std::size_t>(ticks);
    const double frac = ticks - static_cast<double>(lo);
    const TracePoint &a = trace_.points[lo];
    if (frac <= 0.0 || lo + 1 >= trace_.points.size())
        return a;
    const TracePoint &b = trace_.points[lo + 1];
    TracePoint out;
    out.timeMs = timeMs;
    out.position = a.position + (b.position - a.position) * frac;
    // Interpolate yaw along the shorter arc.
    double dyaw = b.yaw - a.yaw;
    while (dyaw > M_PI)
        dyaw -= 2.0 * M_PI;
    while (dyaw < -M_PI)
        dyaw += 2.0 * M_PI;
    out.yaw = a.yaw + dyaw * frac;
    return out;
}

double
TraceCursor::speedAt(double timeMs) const
{
    const double h = tickMs_ / 2.0;
    const TracePoint before = at(std::max(0.0, timeMs - h));
    const TracePoint after = at(std::min(durationMs(), timeMs + h));
    const double dt_s = (after.timeMs - before.timeMs) / 1000.0;
    if (dt_s <= 0.0)
        return 0.0;
    return before.position.distance(after.position) / dt_s;
}

bool
saveTrace(const SessionTrace &trace, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "coterie-trace 1\n%s %f %d\n", trace.game.c_str(),
                 trace.tickMs, trace.playerCount());
    for (const PlayerTrace &p : trace.players) {
        std::fprintf(f, "player %d %zu\n", p.playerId, p.points.size());
        for (const TracePoint &tp : p.points)
            std::fprintf(f, "%f %f %f %f\n", tp.timeMs, tp.position.x,
                         tp.position.y, tp.yaw);
    }
    std::fclose(f);
    return true;
}

SessionTrace
loadTrace(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        COTERIE_FATAL("cannot open trace file: ", path);
    SessionTrace trace;
    char magic[64];
    int version = 0;
    if (std::fscanf(f, "%63s %d", magic, &version) != 2 ||
        std::string(magic) != "coterie-trace" || version != 1) {
        std::fclose(f);
        COTERIE_FATAL("bad trace header in ", path);
    }
    char game[128];
    int players = 0;
    if (std::fscanf(f, "%127s %lf %d", game, &trace.tickMs, &players) != 3) {
        std::fclose(f);
        COTERIE_FATAL("bad trace session line in ", path);
    }
    trace.game = game;
    for (int i = 0; i < players; ++i) {
        char kw[32];
        int pid = 0;
        std::size_t n = 0;
        if (std::fscanf(f, "%31s %d %zu", kw, &pid, &n) != 3 ||
            std::string(kw) != "player") {
            std::fclose(f);
            COTERIE_FATAL("bad player header in ", path);
        }
        PlayerTrace p;
        p.playerId = pid;
        p.points.reserve(n);
        for (std::size_t k = 0; k < n; ++k) {
            TracePoint tp;
            if (std::fscanf(f, "%lf %lf %lf %lf", &tp.timeMs,
                            &tp.position.x, &tp.position.y, &tp.yaw) != 4) {
                std::fclose(f);
                COTERIE_FATAL("truncated trace in ", path);
            }
            p.points.push_back(tp);
        }
        trace.players.push_back(std::move(p));
    }
    std::fclose(f);
    return trace;
}

double
meanPlayerSeparation(const SessionTrace &trace)
{
    if (trace.players.size() < 2)
        return 0.0;
    double acc = 0.0;
    std::size_t n = 0;
    std::size_t ticks = SIZE_MAX;
    for (const PlayerTrace &p : trace.players)
        ticks = std::min(ticks, p.points.size());
    for (std::size_t t = 0; t < ticks; ++t) {
        for (std::size_t a = 0; a < trace.players.size(); ++a) {
            for (std::size_t b = a + 1; b < trace.players.size(); ++b) {
                acc += trace.players[a].points[t].position.distance(
                    trace.players[b].points[t].position);
                ++n;
            }
        }
    }
    return n ? acc / static_cast<double>(n) : 0.0;
}

} // namespace coterie::trace
