/**
 * @file
 * Ray-primitive intersection routines (sphere, box, ground plane,
 * cylinder) plus the slab test used by the BVH traversal.
 */

#pragma once

#include <algorithm>
#include <optional>

#include "geom/aabb.hh"
#include "geom/ray.hh"

namespace coterie::geom {

/** Ray vs sphere; returns hit distance t within [ray.tMin, ray.tMax]. */
std::optional<double> intersectSphere(const Ray &ray, Vec3 center,
                                      double radius);

/**
 * Ray vs axis-aligned box; returns the entry distance (or the exit
 * distance when the ray starts inside), with the outward surface normal
 * written to @p normal when non-null.
 */
std::optional<double> intersectBox(const Ray &ray, const Aabb &box,
                                   Vec3 *normal = nullptr);

/** Ray vs horizontal plane y = height. */
std::optional<double> intersectGround(const Ray &ray, double height);

/**
 * Ray vs vertical (y-axis-aligned) finite cylinder centered at
 * (center.x, *, center.z), spanning [center.y, center.y + height].
 */
std::optional<double> intersectCylinderY(const Ray &ray, Vec3 base,
                                         double radius, double height,
                                         Vec3 *normal = nullptr);

/** Cheap slab overlap test (no normal); used by BVH traversal. */
bool rayHitsAabb(const Ray &ray, const Aabb &box, double tMax);

/**
 * Per-ray precomputation for repeated slab tests: the inverse direction
 * and per-axis sign, computed once per ray instead of per BVH node.
 *
 * Zero (or denormal-tiny) direction components get a huge *finite*
 * signed inverse instead of the IEEE infinity `1.0 / 0.0` would give:
 * with an infinite inverse, an origin sitting exactly on a slab plane
 * evaluates `0 * inf = NaN` and poisons the interval comparisons. A
 * finite 1e300 keeps every product NaN-free and errs on the side of
 * visiting the box — conservative, so no true hit is ever culled.
 */
struct SlabRay
{
    Vec3 origin;
    double invDir[3];
    bool neg[3]; ///< direction component is negative (orders the slabs)
    double tMin = 0.0;
    double tMax = 0.0;
};

SlabRay makeSlabRay(const Ray &ray);

/**
 * A bundle of `kLanes` rays sharing one origin and clip interval (one
 * row-batch of camera rays), stored structure-of-arrays so the BVH
 * packet traversal can run the slab test across all lanes with one
 * vector op per plane. Inverse directions follow the same
 * finite-huge-inverse rules as `makeSlabRay`, so per-lane slab results
 * are bit-identical to the scalar test.
 */
struct RayPacket
{
    static constexpr int kLanes = 4;
    Vec3 origin;
    double dirX[kLanes], dirY[kLanes], dirZ[kLanes];
    double invX[kLanes], invY[kLanes], invZ[kLanes];
    bool neg0[3]; ///< lane-0 direction signs (orders child descent)
    double tMin = 0.0;
    double tMax = 0.0;

    /** Lane @p l as a standalone ray (leaf tests, winner refinement). */
    Ray
    lane(int l) const
    {
        Ray ray;
        ray.origin = origin;
        ray.dir = {dirX[l], dirY[l], dirZ[l]};
        ray.tMin = tMin;
        ray.tMax = tMax;
        return ray;
    }
};

/** Build a packet from SoA unit directions (shared origin/interval). */
RayPacket makeRayPacket(Vec3 origin, const double *dirX,
                        const double *dirY, const double *dirZ,
                        double tMin, double tMax);

/**
 * Slab overlap test against a precomputed ray. @p tLimit caps the exit
 * distance (traversal passes min(ray.tMax, best hit t)); the test stays
 * *strict* — a box whose entry distance equals the limit is still
 * reported hit — so equal-t tie-breaking in the caller sees every
 * candidate.
 */
inline bool
slabRayHitsAabb(const SlabRay &ray, const Aabb &box, double tLimit)
{
    // Branchless min/max form: both plane distances per axis, no
    // sign selects — compiles to minsd/maxsd with no data-dependent
    // branches (the per-node `neg[]` select mispredicts badly on
    // incoherent panorama rays).
    const double tx0 = (box.lo.x - ray.origin.x) * ray.invDir[0];
    const double tx1 = (box.hi.x - ray.origin.x) * ray.invDir[0];
    const double ty0 = (box.lo.y - ray.origin.y) * ray.invDir[1];
    const double ty1 = (box.hi.y - ray.origin.y) * ray.invDir[1];
    const double tz0 = (box.lo.z - ray.origin.z) * ray.invDir[2];
    const double tz1 = (box.hi.z - ray.origin.z) * ray.invDir[2];
    const double tEnter = std::max({std::min(tx0, tx1),
                                    std::min(ty0, ty1),
                                    std::min(tz0, tz1), ray.tMin});
    const double tExit = std::min({std::max(tx0, tx1),
                                   std::max(ty0, ty1),
                                   std::max(tz0, tz1), tLimit});
    return tEnter <= tExit;
}

} // namespace coterie::geom

