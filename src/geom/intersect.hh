/**
 * @file
 * Ray-primitive intersection routines (sphere, box, ground plane,
 * cylinder) plus the slab test used by the BVH traversal.
 */

#pragma once

#include <optional>

#include "geom/aabb.hh"
#include "geom/ray.hh"

namespace coterie::geom {

/** Ray vs sphere; returns hit distance t within [ray.tMin, ray.tMax]. */
std::optional<double> intersectSphere(const Ray &ray, Vec3 center,
                                      double radius);

/**
 * Ray vs axis-aligned box; returns the entry distance (or the exit
 * distance when the ray starts inside), with the outward surface normal
 * written to @p normal when non-null.
 */
std::optional<double> intersectBox(const Ray &ray, const Aabb &box,
                                   Vec3 *normal = nullptr);

/** Ray vs horizontal plane y = height. */
std::optional<double> intersectGround(const Ray &ray, double height);

/**
 * Ray vs vertical (y-axis-aligned) finite cylinder centered at
 * (center.x, *, center.z), spanning [center.y, center.y + height].
 */
std::optional<double> intersectCylinderY(const Ray &ray, Vec3 base,
                                         double radius, double height,
                                         Vec3 *normal = nullptr);

/** Cheap slab overlap test (no normal); used by BVH traversal. */
bool rayHitsAabb(const Ray &ray, const Aabb &box, double tMax);

} // namespace coterie::geom

