#include "geom/region.hh"

#include <algorithm>

namespace coterie::geom {

Vec2
Rect::clamp(Vec2 p) const
{
    return {std::clamp(p.x, lo.x, hi.x), std::clamp(p.y, lo.y, hi.y)};
}

std::array<Rect, 4>
Rect::quadrants() const
{
    const Vec2 c = center();
    return {
        Rect{lo, c},                       // SW
        Rect{{c.x, lo.y}, {hi.x, c.y}},    // SE
        Rect{{lo.x, c.y}, {c.x, hi.y}},    // NW
        Rect{c, hi},                       // NE
    };
}

} // namespace coterie::geom
