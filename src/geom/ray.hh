/**
 * @file
 * Ray type and hit record for the ray-casting renderer.
 */

#pragma once

#include <cstdint>
#include <limits>

#include "geom/vec.hh"

namespace coterie::geom {

/** A ray with a parametric validity interval [tMin, tMax]. */
struct Ray
{
    Vec3 origin;
    Vec3 dir; // must be normalized by callers that rely on t == distance
    double tMin = 1e-4;
    double tMax = std::numeric_limits<double>::infinity();

    Vec3 at(double t) const { return origin + dir * t; }
};

/** Result of a ray-primitive intersection. */
struct Hit
{
    double t = std::numeric_limits<double>::infinity();
    Vec3 point;
    Vec3 normal;
    std::uint32_t objectId = UINT32_MAX;

    bool valid() const { return objectId != UINT32_MAX; }
};

} // namespace coterie::geom

