/**
 * @file
 * 2D/3D vector types used throughout the world model and renderer.
 * Header-only for inlining in the ray-casting hot path.
 */

#pragma once

#include <cmath>

namespace coterie::geom {

/** 2D vector / point (virtual-world ground plane coordinates, meters). */
struct Vec2
{
    double x = 0.0;
    double y = 0.0;

    constexpr Vec2() = default;
    constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

    constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
    constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
    constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
    constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
    constexpr Vec2 &operator+=(Vec2 o) { x += o.x; y += o.y; return *this; }
    constexpr Vec2 &operator-=(Vec2 o) { x -= o.x; y -= o.y; return *this; }
    constexpr bool operator==(const Vec2 &) const = default;

    constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
    constexpr double lengthSq() const { return dot(*this); }
    double length() const { return std::sqrt(lengthSq()); }
    double distance(Vec2 o) const { return (*this - o).length(); }
    constexpr double distanceSq(Vec2 o) const
    {
        return (*this - o).lengthSq();
    }

    Vec2
    normalized() const
    {
        const double len = length();
        return len > 0.0 ? Vec2{x / len, y / len} : Vec2{0.0, 0.0};
    }

    /** Counter-clockwise perpendicular. */
    constexpr Vec2 perp() const { return {-y, x}; }

    /** Angle from +x axis in radians. */
    double angle() const { return std::atan2(y, x); }

    static Vec2
    fromAngle(double radians)
    {
        return {std::cos(radians), std::sin(radians)};
    }
};

/** 3D vector / point (x,z span the ground plane; y is up, meters). */
struct Vec3
{
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;

    constexpr Vec3() = default;
    constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

    constexpr Vec3 operator+(Vec3 o) const
    {
        return {x + o.x, y + o.y, z + o.z};
    }
    constexpr Vec3 operator-(Vec3 o) const
    {
        return {x - o.x, y - o.y, z - o.z};
    }
    constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
    constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
    constexpr Vec3 &operator+=(Vec3 o)
    {
        x += o.x; y += o.y; z += o.z;
        return *this;
    }
    constexpr bool operator==(const Vec3 &) const = default;

    constexpr double dot(Vec3 o) const
    {
        return x * o.x + y * o.y + z * o.z;
    }
    constexpr Vec3 cross(Vec3 o) const
    {
        return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
    }
    constexpr double lengthSq() const { return dot(*this); }
    double length() const { return std::sqrt(lengthSq()); }
    double distance(Vec3 o) const { return (*this - o).length(); }

    Vec3
    normalized() const
    {
        const double len = length();
        return len > 0.0 ? Vec3{x / len, y / len, z / len}
                         : Vec3{0.0, 0.0, 0.0};
    }

    /** Project onto the ground plane (x, z) -> Vec2. */
    constexpr Vec2 ground() const { return {x, z}; }
};

/** Lift a ground-plane point into 3D at height @p y. */
constexpr Vec3
lift(Vec2 ground, double y)
{
    return {ground.x, y, ground.y};
}

} // namespace coterie::geom

