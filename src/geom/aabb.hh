/**
 * @file
 * Axis-aligned bounding boxes in 3D, used for world objects and the BVH.
 */

#pragma once

#include <algorithm>
#include <limits>

#include "geom/vec.hh"

namespace coterie::geom {

/** 3D axis-aligned box. Invalid (empty) until extended or constructed. */
struct Aabb
{
    Vec3 lo{std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::infinity()};
    Vec3 hi{-std::numeric_limits<double>::infinity(),
            -std::numeric_limits<double>::infinity(),
            -std::numeric_limits<double>::infinity()};

    constexpr Aabb() = default;
    constexpr Aabb(Vec3 lo_, Vec3 hi_) : lo(lo_), hi(hi_) {}

    bool
    valid() const
    {
        return lo.x <= hi.x && lo.y <= hi.y && lo.z <= hi.z;
    }

    Vec3 center() const { return (lo + hi) * 0.5; }
    Vec3 extent() const { return hi - lo; }

    /** Grow to contain @p p. */
    void
    extend(Vec3 p)
    {
        lo.x = std::min(lo.x, p.x); lo.y = std::min(lo.y, p.y);
        lo.z = std::min(lo.z, p.z);
        hi.x = std::max(hi.x, p.x); hi.y = std::max(hi.y, p.y);
        hi.z = std::max(hi.z, p.z);
    }

    /** Grow to contain @p b. */
    void
    extend(const Aabb &b)
    {
        extend(b.lo);
        extend(b.hi);
    }

    bool
    contains(Vec3 p) const
    {
        return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
               p.z >= lo.z && p.z <= hi.z;
    }

    bool
    overlaps(const Aabb &b) const
    {
        return lo.x <= b.hi.x && hi.x >= b.lo.x && lo.y <= b.hi.y &&
               hi.y >= b.lo.y && lo.z <= b.hi.z && hi.z >= b.lo.z;
    }

    double
    surfaceArea() const
    {
        if (!valid())
            return 0.0;
        const Vec3 e = extent();
        return 2.0 * (e.x * e.y + e.y * e.z + e.z * e.x);
    }

    /** Squared distance from @p p to the closest point of the box. */
    double
    distanceSq(Vec3 p) const
    {
        const double dx = std::max({lo.x - p.x, 0.0, p.x - hi.x});
        const double dy = std::max({lo.y - p.y, 0.0, p.y - hi.y});
        const double dz = std::max({lo.z - p.z, 0.0, p.z - hi.z});
        return dx * dx + dy * dy + dz * dz;
    }
};

} // namespace coterie::geom

