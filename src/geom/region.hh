/**
 * @file
 * 2D rectangular regions on the virtual-world ground plane, plus the
 * quadtree-subdivision math used by the adaptive cutoff partitioner.
 */

#pragma once

#include <array>

#include "geom/vec.hh"

namespace coterie::geom {

/** Axis-aligned rectangle on the ground plane (meters). */
struct Rect
{
    Vec2 lo;
    Vec2 hi;

    constexpr Rect() = default;
    constexpr Rect(Vec2 lo_, Vec2 hi_) : lo(lo_), hi(hi_) {}

    double width() const { return hi.x - lo.x; }
    double height() const { return hi.y - lo.y; }
    double area() const { return width() * height(); }
    Vec2 center() const { return (lo + hi) * 0.5; }

    bool
    contains(Vec2 p) const
    {
        return p.x >= lo.x && p.x < hi.x && p.y >= lo.y && p.y < hi.y;
    }

    /** Containment including the top/right edges (for world bounds). */
    bool
    containsClosed(Vec2 p) const
    {
        return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
    }

    bool
    overlaps(const Rect &r) const
    {
        return lo.x < r.hi.x && hi.x > r.lo.x && lo.y < r.hi.y &&
               hi.y > r.lo.y;
    }

    /** Clamp a point into the rectangle. */
    Vec2 clamp(Vec2 p) const;

    /** Split into 4 equal quadrants: [SW, SE, NW, NE]. */
    std::array<Rect, 4> quadrants() const;
};

} // namespace coterie::geom

