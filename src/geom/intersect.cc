#include "geom/intersect.hh"

#include <algorithm>
#include <cmath>

namespace coterie::geom {

std::optional<double>
intersectSphere(const Ray &ray, Vec3 center, double radius)
{
    const Vec3 oc = ray.origin - center;
    const double a = ray.dir.dot(ray.dir);
    const double half_b = oc.dot(ray.dir);
    const double c = oc.dot(oc) - radius * radius;
    const double disc = half_b * half_b - a * c;
    if (disc < 0.0)
        return std::nullopt;
    const double sqrt_disc = std::sqrt(disc);
    double t = (-half_b - sqrt_disc) / a;
    if (t < ray.tMin) {
        t = (-half_b + sqrt_disc) / a;
        if (t < ray.tMin)
            return std::nullopt;
    }
    if (t > ray.tMax)
        return std::nullopt;
    return t;
}

std::optional<double>
intersectBox(const Ray &ray, const Aabb &box, Vec3 *normal)
{
    double t_enter = ray.tMin;
    double t_exit = ray.tMax;
    int enter_axis = -1;
    double enter_sign = 0.0;

    const double o[3] = {ray.origin.x, ray.origin.y, ray.origin.z};
    const double d[3] = {ray.dir.x, ray.dir.y, ray.dir.z};
    const double lo[3] = {box.lo.x, box.lo.y, box.lo.z};
    const double hi[3] = {box.hi.x, box.hi.y, box.hi.z};

    for (int axis = 0; axis < 3; ++axis) {
        if (std::abs(d[axis]) < 1e-12) {
            if (o[axis] < lo[axis] || o[axis] > hi[axis])
                return std::nullopt;
            continue;
        }
        const double inv = 1.0 / d[axis];
        double t0 = (lo[axis] - o[axis]) * inv;
        double t1 = (hi[axis] - o[axis]) * inv;
        double sign = -1.0;
        if (t0 > t1) {
            std::swap(t0, t1);
            sign = 1.0;
        }
        if (t0 > t_enter) {
            t_enter = t0;
            enter_axis = axis;
            enter_sign = sign;
        }
        t_exit = std::min(t_exit, t1);
        if (t_enter > t_exit)
            return std::nullopt;
    }

    double t = t_enter;
    if (enter_axis < 0) {
        // Ray origin is inside the box; report the exit point.
        t = t_exit;
        if (t < ray.tMin || t > ray.tMax)
            return std::nullopt;
        if (normal)
            *normal = ray.dir * -1.0;
        return t;
    }
    if (normal) {
        Vec3 n{0.0, 0.0, 0.0};
        if (enter_axis == 0)
            n.x = enter_sign;
        else if (enter_axis == 1)
            n.y = enter_sign;
        else
            n.z = enter_sign;
        *normal = n;
    }
    return t;
}

std::optional<double>
intersectGround(const Ray &ray, double height)
{
    if (std::abs(ray.dir.y) < 1e-12)
        return std::nullopt;
    const double t = (height - ray.origin.y) / ray.dir.y;
    if (t < ray.tMin || t > ray.tMax)
        return std::nullopt;
    return t;
}

std::optional<double>
intersectCylinderY(const Ray &ray, Vec3 base, double radius, double height,
                   Vec3 *normal)
{
    // Solve in the (x, z) plane.
    const double ox = ray.origin.x - base.x;
    const double oz = ray.origin.z - base.z;
    const double dx = ray.dir.x;
    const double dz = ray.dir.z;
    const double a = dx * dx + dz * dz;
    const double y0 = base.y;
    const double y1 = base.y + height;

    auto side_hit = [&](double t) -> bool {
        const double y = ray.origin.y + t * ray.dir.y;
        return y >= y0 && y <= y1 && t >= ray.tMin && t <= ray.tMax;
    };

    double best = std::numeric_limits<double>::infinity();
    Vec3 best_normal;

    if (a > 1e-12) {
        const double half_b = ox * dx + oz * dz;
        const double c = ox * ox + oz * oz - radius * radius;
        const double disc = half_b * half_b - a * c;
        if (disc >= 0.0) {
            const double sq = std::sqrt(disc);
            for (double t : {(-half_b - sq) / a, (-half_b + sq) / a}) {
                if (t < best && side_hit(t)) {
                    best = t;
                    const Vec3 p = ray.at(t);
                    best_normal =
                        Vec3{p.x - base.x, 0.0, p.z - base.z}.normalized();
                    break;
                }
            }
        }
    }

    // End caps.
    for (double y_cap : {y0, y1}) {
        if (std::abs(ray.dir.y) < 1e-12)
            continue;
        const double t = (y_cap - ray.origin.y) / ray.dir.y;
        if (t < ray.tMin || t > ray.tMax || t >= best)
            continue;
        const double px = ox + t * dx;
        const double pz = oz + t * dz;
        if (px * px + pz * pz <= radius * radius) {
            best = t;
            best_normal = Vec3{0.0, y_cap == y0 ? -1.0 : 1.0, 0.0};
        }
    }

    if (!std::isfinite(best))
        return std::nullopt;
    if (normal)
        *normal = best_normal;
    return best;
}

SlabRay
makeSlabRay(const Ray &ray)
{
    SlabRay slab;
    slab.origin = ray.origin;
    slab.tMin = ray.tMin;
    slab.tMax = ray.tMax;
    const double d[3] = {ray.dir.x, ray.dir.y, ray.dir.z};
    for (int axis = 0; axis < 3; ++axis) {
        if (d[axis] == 0.0) {
            // Positive huge inverse regardless of the zero's sign: the
            // slab order must match neg[] (false), and -0.0 would flip
            // the interval if copysign were used.
            slab.invDir[axis] = 1e300;
            slab.neg[axis] = false;
            continue;
        }
        double inv = 1.0 / d[axis];
        if (!std::isfinite(inv)) // denormal direction component
            inv = std::copysign(1e300, d[axis]);
        slab.invDir[axis] = inv;
        slab.neg[axis] = d[axis] < 0.0;
    }
    return slab;
}

RayPacket
makeRayPacket(Vec3 origin, const double *dirX, const double *dirY,
              const double *dirZ, double tMin, double tMax)
{
    RayPacket pack;
    pack.origin = origin;
    pack.tMin = tMin;
    pack.tMax = tMax;
    // Same zero/denormal handling as makeSlabRay, per lane.
    const auto safeInv = [](double d) {
        if (d == 0.0)
            return 1e300;
        const double inv = 1.0 / d;
        return std::isfinite(inv) ? inv : std::copysign(1e300, d);
    };
    for (int l = 0; l < RayPacket::kLanes; ++l) {
        pack.dirX[l] = dirX[l];
        pack.dirY[l] = dirY[l];
        pack.dirZ[l] = dirZ[l];
        pack.invX[l] = safeInv(dirX[l]);
        pack.invY[l] = safeInv(dirY[l]);
        pack.invZ[l] = safeInv(dirZ[l]);
    }
    pack.neg0[0] = dirX[0] < 0.0;
    pack.neg0[1] = dirY[0] < 0.0;
    pack.neg0[2] = dirZ[0] < 0.0;
    return pack;
}

bool
rayHitsAabb(const Ray &ray, const Aabb &box, double tMax)
{
    double t_enter = ray.tMin;
    double t_exit = std::min(ray.tMax, tMax);
    const double o[3] = {ray.origin.x, ray.origin.y, ray.origin.z};
    const double d[3] = {ray.dir.x, ray.dir.y, ray.dir.z};
    const double lo[3] = {box.lo.x, box.lo.y, box.lo.z};
    const double hi[3] = {box.hi.x, box.hi.y, box.hi.z};
    for (int axis = 0; axis < 3; ++axis) {
        if (std::abs(d[axis]) < 1e-12) {
            if (o[axis] < lo[axis] || o[axis] > hi[axis])
                return false;
            continue;
        }
        const double inv = 1.0 / d[axis];
        double t0 = (lo[axis] - o[axis]) * inv;
        double t1 = (hi[axis] - o[axis]) * inv;
        if (t0 > t1)
            std::swap(t0, t1);
        t_enter = std::max(t_enter, t0);
        t_exit = std::min(t_exit, t1);
        if (t_enter > t_exit)
            return false;
    }
    return true;
}

} // namespace coterie::geom
