/**
 * @file
 * Device render-cost model.
 *
 * The paper's Constraint 1 is an analytic statement: the mobile render
 * time of FI plus near BE, which is proportional to triangle count
 * (their ref [1]), must stay below 16.7 ms - RT_FI. We model render
 * time as base + ns/triangle * effective triangles, where effective
 * triangles apply a distance LOD falloff exactly as a production engine
 * would, and terrain tessellation contributes per covered area.
 * Constants are calibrated once against Table 1 (see device/phone.hh)
 * and reused for every experiment.
 */

#pragma once

#include <vector>

#include "world/world.hh"

namespace coterie::render {

/** Parameters of the triangle-throughput model. */
struct CostModelParams
{
    /** Nanoseconds of GPU time per effective triangle. */
    double nsPerTriangle = 50.0;
    /** Fixed per-frame cost (driver, setup, compose) in ms. */
    double baseMs = 1.0;
    /** LOD reference distance: at distance d, an object renders
     *  triangles * 1 / (1 + (d/lodDistance)^2). */
    double lodDistance = 25.0;
    /** Distance beyond which objects contribute nothing (engine cull). */
    double cullDistance = 600.0;
    /**
     * Engine LOD saturation: total effective triangles are compressed
     * as E / (1 + E / saturation) — a production engine keeps the
     * frame triangle budget roughly constant on huge scenes by
     * dropping LOD levels globally.
     */
    double saturationTriangles = 0.85e6;
};

/**
 * Effective triangle count seen from @p eye when rendering the depth
 * annulus [rMin, rMax] of the world (0, inf = whole scene).
 */
double effectiveTriangles(const world::VirtualWorld &world, geom::Vec2 eye,
                          double rMin, double rMax,
                          const CostModelParams &params = {});

/** Render time in ms for that annulus on a device with @p params. */
double renderTimeMs(const world::VirtualWorld &world, geom::Vec2 eye,
                    double rMin, double rMax,
                    const CostModelParams &params = {});

/**
 * Memoized cost queries for one eye location.
 *
 * The cutoff binary search evaluates `renderTimeMs` at the same
 * location a dozen times with different radii; the free function
 * re-runs the BVH disc query from scratch on every call. This cache
 * fetches the object set once (at the largest radius the search can
 * reach) and replays the same per-object terms, bit-identical to the
 * uncached path for any rMax <= maxRadius: membership uses the exact
 * footprint-distance test of `Bvh::queryDisc`, and summation keeps the
 * BVH traversal order.
 *
 * Thread-compatibility contract (checked by the clang thread-safety
 * build, see support/thread_annotations.hh): all state is written in
 * the constructor and immutable afterwards, so no member needs a
 * COTERIE_GUARDED_BY — the partitioner constructs one instance per
 * pool task and never shares it across tasks. Any future mutable
 * memoization added here must bring its own annotated Mutex.
 */
class LocationCostCache
{
  public:
    LocationCostCache(const world::VirtualWorld &world, geom::Vec2 eye,
                      double maxRadius, const CostModelParams &params = {});

    /** Same value as the free `effectiveTriangles` (rMax <= maxRadius). */
    double effectiveTriangles(double rMin, double rMax) const;

    /** Same value as the free `renderTimeMs` (rMax <= maxRadius). */
    double renderTimeMs(double rMin, double rMax) const;

  private:
    struct CachedObject
    {
        double footprintDistSq; ///< queryDisc's AABB-footprint metric
        double centerDist;      ///< distance used by the LOD falloff
        double triangles;
    };

    const world::VirtualWorld &world_;
    geom::Vec2 eye_;
    CostModelParams params_;
    std::vector<CachedObject> objects_; ///< in BVH traversal order
};

} // namespace coterie::render

