/**
 * @file
 * Device render-cost model.
 *
 * The paper's Constraint 1 is an analytic statement: the mobile render
 * time of FI plus near BE, which is proportional to triangle count
 * (their ref [1]), must stay below 16.7 ms - RT_FI. We model render
 * time as base + ns/triangle * effective triangles, where effective
 * triangles apply a distance LOD falloff exactly as a production engine
 * would, and terrain tessellation contributes per covered area.
 * Constants are calibrated once against Table 1 (see device/phone.hh)
 * and reused for every experiment.
 */

#ifndef COTERIE_RENDER_COST_MODEL_HH
#define COTERIE_RENDER_COST_MODEL_HH

#include "world/world.hh"

namespace coterie::render {

/** Parameters of the triangle-throughput model. */
struct CostModelParams
{
    /** Nanoseconds of GPU time per effective triangle. */
    double nsPerTriangle = 50.0;
    /** Fixed per-frame cost (driver, setup, compose) in ms. */
    double baseMs = 1.0;
    /** LOD reference distance: at distance d, an object renders
     *  triangles * 1 / (1 + (d/lodDistance)^2). */
    double lodDistance = 25.0;
    /** Distance beyond which objects contribute nothing (engine cull). */
    double cullDistance = 600.0;
    /**
     * Engine LOD saturation: total effective triangles are compressed
     * as E / (1 + E / saturation) — a production engine keeps the
     * frame triangle budget roughly constant on huge scenes by
     * dropping LOD levels globally.
     */
    double saturationTriangles = 0.85e6;
};

/**
 * Effective triangle count seen from @p eye when rendering the depth
 * annulus [rMin, rMax] of the world (0, inf = whole scene).
 */
double effectiveTriangles(const world::VirtualWorld &world, geom::Vec2 eye,
                          double rMin, double rMax,
                          const CostModelParams &params = {});

/** Render time in ms for that annulus on a device with @p params. */
double renderTimeMs(const world::VirtualWorld &world, geom::Vec2 eye,
                    double rMin, double rMax,
                    const CostModelParams &params = {});

} // namespace coterie::render

#endif // COTERIE_RENDER_COST_MODEL_HH
