#include "render/renderer.hh"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "render/pipeline.hh"
#include "support/logging.hh"
#include "support/parallel.hh"
#include "world/bvh.hh"

namespace coterie::render {

using geom::Hit;
using geom::Ray;
using geom::Vec2;
using geom::Vec3;
using image::Image;
using image::Rgb;

namespace {

/**
 * Run @p fn(row) over [0, rows) via the shared thread pool. Rows write
 * disjoint pixels, so any chunking is deterministic. A small fixed
 * grain keeps the BVH-heavy rows load-balanced.
 */
template <typename Fn>
void
parallelRows(int rows, int threads, Fn &&fn)
{
    support::parallelFor(
        0, rows, 4,
        [&](std::int64_t b, std::int64_t e) {
            COTERIE_SPAN("render.rows", "render");
            COTERIE_COUNT_N("render.rows", e - b);
            // Attribute BVH traversal work to rendering: discard any
            // counts a previous (non-render) caller left on this
            // thread, then drain what this chunk's rays accumulated.
            // One registry add per chunk — nothing per ray.
            world::Bvh::takeThreadStats();
            for (std::int64_t y = b; y < e; ++y)
                fn(static_cast<int>(y));
            const world::Bvh::TraversalStats stats =
                world::Bvh::takeThreadStats();
            COTERIE_COUNT_N("bvh.nodes_visited", stats.nodesVisited);
            COTERIE_COUNT_N("bvh.leaf_tests", stats.leafTests);
        },
        threads);
}

/**
 * Emit cumulative `bvh.*` counter tracks after a frame so traces carry
 * the traversal-cost trajectory (trace_report folds them into its
 * render section). Cheap no-op unless a trace is recording.
 */
/**
 * Batched frame body shared by renderPanorama and renderPerspective:
 * chunked rows through the staged pipeline with per-chunk scratch
 * buffers, BVH stats drained exactly like `parallelRows`. @p dirFn
 * runs stage 1 (projection-specific direction generation) for a row.
 */
template <typename DirFn>
void
batchedFrame(const world::VirtualWorld &world, Vec3 origin,
             const RenderOptions &opts, int width, int height,
             Image &frame, DirFn &&dirFn)
{
    support::parallelFor(
        0, height, 4,
        [&](std::int64_t b, std::int64_t e) {
            COTERIE_SPAN("render.rows", "render");
            COTERIE_COUNT_N("render.rows", e - b);
            world::Bvh::takeThreadStats();
            detail::RowBuffers rows;
            rows.resize(width);
            const detail::StageTimers timers{opts.stageTimers};
            for (std::int64_t row = b; row < e; ++row) {
                const int y = static_cast<int>(row);
                timers.run("render.stage.dirs_ms",
                           [&] { dirFn(y, rows); });
                timers.run("render.stage.raycast_ms", [&] {
                    detail::raycastRow(world, origin, opts, width, rows);
                });
                timers.run("render.stage.terrain_ms", [&] {
                    detail::terrainRow(world, origin, opts, width, rows);
                });
                timers.run("render.stage.shade_ms", [&] {
                    detail::shadeRow(world, origin, opts, width, rows);
                });
                timers.run("render.stage.sky_ms", [&] {
                    detail::compositeRow(world, opts, width, rows,
                                         &frame.at(0, y));
                });
            }
            const world::Bvh::TraversalStats stats =
                world::Bvh::takeThreadStats();
            COTERIE_COUNT_N("bvh.nodes_visited", stats.nodesVisited);
            COTERIE_COUNT_N("bvh.leaf_tests", stats.leafTests);
        },
        opts.threads);
}

void
traceBvhCounters()
{
    obs::TraceRecorder &recorder = obs::TraceRecorder::global();
    if (!recorder.enabled())
        return;
    obs::MetricsRegistry &registry = obs::MetricsRegistry::global();
    recorder.counter("bvh.nodes_visited",
                     static_cast<double>(
                         registry.counter("bvh.nodes_visited").value()));
    recorder.counter("bvh.leaf_tests",
                     static_cast<double>(
                         registry.counter("bvh.leaf_tests").value()));
}

} // namespace

Rgb
Renderer::shadeRay(const Ray &ray, const RenderOptions &opts) const
{
    // Closest object hit within the layer's depth interval.
    Ray clipped = ray;
    clipped.tMin = std::max(ray.tMin, opts.layer.nearClip);
    clipped.tMax = std::min(ray.tMax, opts.layer.farClip);

    Hit obj_hit;
    if (clipped.tMin < clipped.tMax)
        obj_hit = world_.bvh().closestHit(clipped);

    // Terrain hit within the same interval. The default path caps the
    // march at the object hit (result-identical, see
    // Terrain::intersect); SeedScalar runs the seed's per-sample march.
    double terrain_t = std::numeric_limits<double>::infinity();
    if (clipped.tMin < clipped.tMax) {
        std::optional<double> t;
        if (opts.path == RenderPath::SeedScalar) {
            t = world_.terrain().intersectReference(clipped,
                                                    opts.terrainMaxDist);
        } else {
            const double abort_beyond =
                obj_hit.valid()
                    ? obj_hit.t
                    : std::numeric_limits<double>::infinity();
            t = world_.terrain().intersect(clipped, opts.terrainMaxDist,
                                           abort_beyond);
        }
        if (t && *t >= clipped.tMin && *t <= clipped.tMax)
            terrain_t = *t;
    }

    const bool object_wins = obj_hit.valid() && obj_hit.t < terrain_t;
    if (object_wins) {
        const world::WorldObject &obj = world_.object(obj_hit.objectId);
        double light = 1.0;
        if (opts.shading) {
            const double diffuse =
                std::max(0.0, obj_hit.normal.dot(detail::kSunDir));
            light = 0.40 + 0.60 * diffuse;
        }
        if (opts.texture)
            light *=
                detail::textureFactor(obj_hit.point, obj_hit.t, opts);
        return detail::applyLight(obj.color, light);
    }
    if (std::isfinite(terrain_t)) {
        const Vec3 p = ray.at(terrain_t);
        const Rgb base = world_.terrain().colorAt(p.ground());
        double light = 1.0;
        if (opts.shading) {
            const double diffuse = std::max(
                0.0,
                world_.terrain().normalAt(p.ground()).dot(detail::kSunDir));
            light = 0.45 + 0.55 * diffuse;
        }
        if (opts.texture)
            light *= detail::textureFactor(p, terrain_t, opts);
        return detail::applyLight(base, light);
    }

    // Nothing in this depth layer. Far layers fall through to sky; a
    // clipped near layer reports the chroma key so merging works.
    if (std::isfinite(opts.layer.farClip)) {
        // Check whether something exists beyond the far clip: if the
        // layer is near-BE, everything beyond belongs to far BE and
        // this pixel must be transparent.
        return opts.clipKey;
    }
    const double pitch = std::asin(std::clamp(ray.dir.y, -1.0, 1.0));
    return world_.skyColor(std::max(0.0, pitch));
}

Image
Renderer::renderPerspective(const Camera &camera, int width, int height,
                            const RenderOptions &opts) const
{
    COTERIE_SPAN("render.perspective", "render");
    COTERIE_TIMER_SCOPE("render.perspective_ms");
    COTERIE_COUNT("render.perspective_frames");
    Image frame(width, height);
    const double aspect =
        static_cast<double>(width) / static_cast<double>(height);
    RenderOptions local = opts;
    local.pixelAngleRad = camera.fovY / static_cast<double>(height);
    if (opts.path == RenderPath::Batched) {
        batchedFrame(world_, camera.position, local, width, height, frame,
                     [&](int y, detail::RowBuffers &rows) {
                         detail::perspectiveRowDirs(camera, aspect, y,
                                                    width, height, rows);
                     });
    } else {
        parallelRows(height, opts.threads, [&](int y) {
            const double sy = 1.0 - 2.0 * (y + 0.5) / height;
            for (int x = 0; x < width; ++x) {
                const double sx = 2.0 * (x + 0.5) / width - 1.0;
                Ray ray;
                ray.origin = camera.position;
                ray.dir = camera.rayDirection(sx, sy, aspect);
                frame.at(x, y) = shadeRay(ray, local);
            }
        });
    }
    traceBvhCounters();
    return frame;
}

Image
Renderer::renderPanorama(Vec3 eye, int width, int height,
                         const RenderOptions &opts) const
{
    COTERIE_SPAN("render.panorama", "render");
    COTERIE_TIMER_SCOPE("render.panorama_ms");
    COTERIE_COUNT("render.panorama_frames");
    Image frame(width, height);
    RenderOptions local = opts;
    local.pixelAngleRad = M_PI / static_cast<double>(height);
    if (opts.path == RenderPath::Batched) {
        batchedFrame(world_, eye, local, width, height, frame,
                     [&](int y, detail::RowBuffers &rows) {
                         detail::panoramaRowDirs(y, width, height, rows);
                     });
    } else {
        parallelRows(height, opts.threads, [&](int y) {
            const double v = (y + 0.5) / height;
            for (int x = 0; x < width; ++x) {
                const double u = (x + 0.5) / width;
                Ray ray;
                ray.origin = eye;
                ray.dir = panoramaDirection(u, v);
                frame.at(x, y) = shadeRay(ray, local);
            }
        });
    }
    traceBvhCounters();
    return frame;
}

Image
Renderer::merge(const Image &nearLayer, const Image &farLayer, Rgb clipKey)
{
    COTERIE_ASSERT(nearLayer.width() == farLayer.width() &&
                   nearLayer.height() == farLayer.height(),
                   "merge size mismatch");
    Image out = farLayer;
    // Rows write disjoint pixels and read immutable inputs, so pool
    // chunking keeps the result byte-identical to the serial loop.
    parallelRows(out.height(), 0, [&](int y) {
        for (int x = 0; x < out.width(); ++x) {
            const Rgb p = nearLayer.at(x, y);
            if (!(p == clipKey))
                out.at(x, y) = p;
        }
    });
    return out;
}

Image
cropPanoramaToView(const Image &panorama, const Camera &camera, int width,
                   int height)
{
    Image out(width, height);
    const double aspect =
        static_cast<double>(width) / static_cast<double>(height);
    // Bilinear texture sampling (what the GPU's SphereTexture lookup
    // does); yaw wraps around, pitch clamps at the poles.
    const int pw = panorama.width();
    const int ph = panorama.height();
    auto sample = [&](double u, double v) {
        const double fx = u * pw - 0.5;
        const double fy = v * ph - 0.5;
        const auto x0 = static_cast<int>(std::floor(fx));
        const auto y0 = static_cast<int>(std::floor(fy));
        const double tx = fx - x0;
        const double ty = fy - y0;
        auto texel = [&](int x, int y) -> const Rgb & {
            const int xw = ((x % pw) + pw) % pw;
            const int yc = std::clamp(y, 0, ph - 1);
            return panorama.at(xw, yc);
        };
        const Rgb &c00 = texel(x0, y0);
        const Rgb &c10 = texel(x0 + 1, y0);
        const Rgb &c01 = texel(x0, y0 + 1);
        const Rgb &c11 = texel(x0 + 1, y0 + 1);
        auto mix = [&](std::uint8_t a, std::uint8_t b, std::uint8_t c,
                       std::uint8_t d) {
            const double top = a * (1.0 - tx) + b * tx;
            const double bot = c * (1.0 - tx) + d * tx;
            return static_cast<std::uint8_t>(
                std::clamp(top * (1.0 - ty) + bot * ty, 0.0, 255.0));
        };
        return Rgb{mix(c00.r, c10.r, c01.r, c11.r),
                   mix(c00.g, c10.g, c01.g, c11.g),
                   mix(c00.b, c10.b, c01.b, c11.b)};
    };
    // Per-pixel work is pure resampling; rows are independent, so the
    // pool-chunked result is byte-identical to the serial loop.
    parallelRows(height, 0, [&](int y) {
        const double sy = 1.0 - 2.0 * (y + 0.5) / height;
        for (int x = 0; x < width; ++x) {
            const double sx = 2.0 * (x + 0.5) / width - 1.0;
            const Vec3 dir = camera.rayDirection(sx, sy, aspect);
            double u, v;
            directionToPanoramaUv(dir, u, v);
            out.at(x, y) = sample(u, v);
        }
    });
    return out;
}

} // namespace coterie::render
