/**
 * @file
 * Row-batched SoA render pipeline.
 *
 * renderPanorama/renderPerspective's batched path splits the per-pixel
 * `shadeRay` into four stages over row-sized buffers:
 *
 *   1. direction generation — per-row trig hoisted (camera row basis),
 *      unit directions written SoA;
 *   2. object raycast — 4-wide ray packets through the BVH
 *      (`Bvh::closestHitPacket`);
 *   3. terrain resolution — the SIMD march, aborted past the pixel's
 *      object hit (provably result-identical, see Terrain::intersect);
 *   4. shading — hit resolution, then the `opts.shading` /
 *      `opts.texture` passes with those branches hoisted out of the
 *      pixel loop, then compositing (clip key / sky).
 *
 * Every stage preserves the scalar expression sequence per pixel, so a
 * batched frame is byte-identical to the per-pixel `RenderPath::Scalar`
 * frame (and to the seed renderer) — asserted by tests/renderer_test.cc.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "geom/ray.hh"
#include "image/image.hh"
#include "obs/metrics.hh"
#include "render/camera.hh"
#include "render/renderer.hh"
#include "world/world.hh"

namespace coterie::render::detail {

/** What a pixel resolved to after the terrain stage. */
enum class PixelKind : std::uint8_t
{
    Sky,
    ClipKey,
    Object,
    Terrain,
};

/** Per-chunk scratch: one row of every inter-stage buffer, SoA. */
struct RowBuffers
{
    // Stage 1: unit ray directions.
    std::vector<double> dirX, dirY, dirZ;
    // Stage 2: closest object hit per pixel.
    std::vector<geom::Hit> objHit;
    // Stage 3: terrain hit distance (+inf = none in the clip interval).
    std::vector<double> terrainT;
    // Stage 4 scratch.
    std::vector<PixelKind> kind;
    std::vector<image::Rgb> base;
    std::vector<double> light;
    std::vector<geom::Vec3> point; ///< terrain hit point (valid for Terrain)

    void resize(int width);
};

/** Stage 1, panorama: directions for row y of a width x height frame. */
void panoramaRowDirs(int y, int width, int height, RowBuffers &rows);

/** Stage 1, perspective: directions for row y through @p camera. */
void perspectiveRowDirs(const Camera &camera, double aspect, int y,
                        int width, int height, RowBuffers &rows);

/** Stage 2: packet raycast of the row against the world BVH. */
void raycastRow(const world::VirtualWorld &world, geom::Vec3 origin,
                const RenderOptions &opts, int width, RowBuffers &rows);

/** Stage 3: terrain march per pixel, capped at the object hit. */
void terrainRow(const world::VirtualWorld &world, geom::Vec3 origin,
                const RenderOptions &opts, int width, RowBuffers &rows);

/** Stage 4a: hit resolution + light/texture passes (branch-hoisted). */
void shadeRow(const world::VirtualWorld &world, geom::Vec3 origin,
              const RenderOptions &opts, int width, RowBuffers &rows);

/** Stage 4b: compositing — object/terrain color, clip key, sky. */
void compositeRow(const world::VirtualWorld &world,
                  const RenderOptions &opts, int width,
                  const RowBuffers &rows, image::Rgb *out);

/** Sun direction shared by the scalar and batched shading paths. */
extern const geom::Vec3 kSunDir;

/** Clamped diffuse lighting scale (shared with the scalar path). */
image::Rgb applyLight(image::Rgb base, double intensity);

/**
 * Mip-filtered procedural texture factor in [1-str, 1+str]. The sample
 * cell grows with the pixel footprint at the hit distance; blending
 * between the two nearest cell scales avoids popping.
 */
double textureFactor(geom::Vec3 point, double hitDist,
                     const RenderOptions &opts);

/**
 * Optional per-stage wall-clock attribution (`render.stage.*_ms`
 * metrics registry timers), enabled by RenderOptions::stageTimers;
 * zero work and zero branches-in-loop when disabled.
 */
struct StageTimers
{
    bool enabled = false;

    template <typename Fn>
    void
    run(const char *name, Fn &&fn) const
    {
        if (!enabled) {
            fn();
            return;
        }
        const std::uint64_t begin = obs::monotonicNowNs();
        fn();
        obs::MetricsRegistry::global().timer(name).observeNs(
            begin, obs::monotonicNowNs());
    }
};

} // namespace coterie::render::detail
