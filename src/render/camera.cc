#include "render/camera.hh"

#include <algorithm>
#include <cmath>

namespace coterie::render {

using geom::Vec3;

Vec3
Camera::rayDirection(double sx, double sy, double aspect) const
{
    const double tan_half = std::tan(fovY * 0.5);
    // Camera space: +x right, +y up, +z forward.
    const Vec3 local{sx * tan_half * aspect, sy * tan_half, 1.0};
    // Rotate by pitch (about x) then yaw (about y). Forward at yaw 0 is
    // +x in world space.
    const double cp = std::cos(pitch), sp = std::sin(pitch);
    const Vec3 pitched{local.x, local.y * cp + local.z * sp,
                       -local.y * sp + local.z * cp};
    const double cy = std::cos(yaw), sy2 = std::sin(yaw);
    // World forward for yaw: (cos yaw, 0, sin yaw); right: (sin yaw, 0,
    // -cos yaw).
    const Vec3 forward{cy, 0.0, sy2};
    const Vec3 right{sy2, 0.0, -cy};
    const Vec3 up{0.0, 1.0, 0.0};
    return (right * pitched.x + up * pitched.y + forward * pitched.z)
        .normalized();
}

CameraRowBasis
Camera::rowBasis(double sy, double aspect) const
{
    CameraRowBasis basis;
    basis.tanHalf = std::tan(fovY * 0.5);
    basis.aspect = aspect;
    // Mirror rayDirection's arithmetic exactly: local = (_, sy*tanHalf,
    // 1), rotated by pitch about x, then the yaw basis vectors.
    const double local_y = sy * basis.tanHalf;
    const double cp = std::cos(pitch), sp = std::sin(pitch);
    basis.pitchedY = local_y * cp + 1.0 * sp;
    basis.pitchedZ = -local_y * sp + 1.0 * cp;
    const double cy = std::cos(yaw), sy2 = std::sin(yaw);
    basis.forward = {cy, 0.0, sy2};
    basis.right = {sy2, 0.0, -cy};
    basis.up = {0.0, 1.0, 0.0};
    return basis;
}

PanoramaRowBasis
panoramaRowBasis(double v)
{
    const double pitch = (0.5 - v) * M_PI; // v=0 top (+pi/2)
    return {std::cos(pitch), std::sin(pitch)};
}

Vec3
panoramaDirection(double u, double v)
{
    const double yaw = u * 2.0 * M_PI;
    const double pitch = (0.5 - v) * M_PI; // v=0 top (+pi/2)
    const double cp = std::cos(pitch);
    return {cp * std::cos(yaw), std::sin(pitch), cp * std::sin(yaw)};
}

void
directionToPanoramaUv(Vec3 dir, double &u, double &v)
{
    const Vec3 d = dir.normalized();
    double yaw = std::atan2(d.z, d.x);
    if (yaw < 0.0)
        yaw += 2.0 * M_PI;
    const double pitch = std::asin(std::clamp(d.y, -1.0, 1.0));
    u = yaw / (2.0 * M_PI);
    v = 0.5 - pitch / M_PI;
}

} // namespace coterie::render
