/**
 * @file
 * Camera poses and projection descriptions for the two render modes:
 * perspective FoV frames (what the player sees) and equirectangular
 * panoramas (what the server pre-renders per grid point, croppable to
 * any head orientation at no cost — the Furion/Coterie trick).
 */

#pragma once

#include "geom/vec.hh"

namespace coterie::render {

/** A positioned, oriented perspective camera. */
struct Camera
{
    geom::Vec3 position;
    double yaw = 0.0;    ///< radians, 0 = +x, counter-clockwise
    double pitch = 0.0;  ///< radians, positive looks up
    double fovY = 1.815; ///< ~104 degrees vertical (Daydream-like)

    /** World-space ray direction through normalized screen coords
     *  (sx, sy) in [-1, 1] with aspect ratio @p aspect. */
    geom::Vec3 rayDirection(double sx, double sy, double aspect) const;
};

/** Direction for an equirectangular panorama texel. u,v in [0,1). */
geom::Vec3 panoramaDirection(double u, double v);

/** Inverse mapping: direction -> (u, v) in the panorama. */
void directionToPanoramaUv(geom::Vec3 dir, double &u, double &v);

} // namespace coterie::render

