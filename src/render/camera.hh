/**
 * @file
 * Camera poses and projection descriptions for the two render modes:
 * perspective FoV frames (what the player sees) and equirectangular
 * panoramas (what the server pre-renders per grid point, croppable to
 * any head orientation at no cost — the Furion/Coterie trick).
 */

#pragma once

#include <cmath>

#include "geom/vec.hh"

namespace coterie::render {

struct CameraRowBasis;

/** A positioned, oriented perspective camera. */
struct Camera
{
    geom::Vec3 position;
    double yaw = 0.0;    ///< radians, 0 = +x, counter-clockwise
    double pitch = 0.0;  ///< radians, positive looks up
    double fovY = 1.815; ///< ~104 degrees vertical (Daydream-like)

    /** World-space ray direction through normalized screen coords
     *  (sx, sy) in [-1, 1] with aspect ratio @p aspect. */
    geom::Vec3 rayDirection(double sx, double sy, double aspect) const;

    /**
     * Hoist the per-frame and per-row terms of `rayDirection` for a
     * fixed screen row sy: the FoV tangent, the camera basis vectors,
     * and the pitched y/z components, leaving only the sx-dependent
     * work per pixel. `basis.direction(sx)` reproduces
     * `rayDirection(sx, sy, aspect)` bit-for-bit.
     */
    CameraRowBasis rowBasis(double sy, double aspect) const;
};

/** See Camera::rowBasis. */
struct CameraRowBasis
{
    geom::Vec3 right, up, forward;
    double tanHalf = 0.0;
    double aspect = 1.0;
    double pitchedY = 0.0; ///< camera-space y after pitch rotation
    double pitchedZ = 0.0; ///< camera-space z after pitch rotation

    geom::Vec3
    direction(double sx) const
    {
        // Same evaluation order as rayDirection: pitched.x is
        // sx * tan_half * aspect, summed right/up/forward.
        return (right * (sx * tanHalf * aspect) + up * pitchedY +
                forward * pitchedZ)
            .normalized();
    }
};

/** Direction for an equirectangular panorama texel. u,v in [0,1). */
geom::Vec3 panoramaDirection(double u, double v);

/**
 * Per-row constants of `panoramaDirection` for a fixed v: one pitch
 * sin/cos pair serves a whole texel row. `direction(u)` reproduces
 * `panoramaDirection(u, v)` bit-for-bit.
 */
struct PanoramaRowBasis
{
    double cp = 1.0; ///< cos(pitch)
    double sp = 0.0; ///< sin(pitch)

    geom::Vec3
    direction(double u) const
    {
        const double yaw = u * 2.0 * M_PI;
        return {cp * std::cos(yaw), sp, cp * std::sin(yaw)};
    }
};

/** See PanoramaRowBasis. */
PanoramaRowBasis panoramaRowBasis(double v);

/** Inverse mapping: direction -> (u, v) in the panorama. */
void directionToPanoramaUv(geom::Vec3 dir, double &u, double &v);

} // namespace coterie::render

