#include "render/stereo.hh"

#include <cmath>

namespace coterie::render {

using geom::Vec3;
using image::Image;

Image
StereoFrame::composite() const
{
    Image out(left.width() + right.width(),
              std::max(left.height(), right.height()));
    for (int y = 0; y < left.height(); ++y)
        for (int x = 0; x < left.width(); ++x)
            out.at(x, y) = left.at(x, y);
    for (int y = 0; y < right.height(); ++y)
        for (int x = 0; x < right.width(); ++x)
            out.at(left.width() + x, y) = right.at(x, y);
    return out;
}

std::pair<Camera, Camera>
eyeCameras(const Camera &head, const StereoParams &params)
{
    // Eyes are displaced along the head's right vector.
    const double cy = std::cos(head.yaw);
    const double sy = std::sin(head.yaw);
    const Vec3 right{sy, 0.0, -cy};
    Camera left = head;
    Camera r = head;
    left.position = head.position - right * (params.ipdMeters / 2.0);
    r.position = head.position + right * (params.ipdMeters / 2.0);
    return {left, r};
}

StereoFrame
renderStereo(const Renderer &renderer, const Camera &head,
             const StereoParams &params, const RenderOptions &opts)
{
    const auto [left_cam, right_cam] = eyeCameras(head, params);
    StereoFrame out;
    out.left = renderer.renderPerspective(left_cam, params.eyeWidth,
                                          params.eyeHeight, opts);
    out.right = renderer.renderPerspective(right_cam, params.eyeWidth,
                                           params.eyeHeight, opts);
    return out;
}

StereoFrame
stereoFromPanorama(const Renderer &renderer, const image::Image &farPanorama,
                   const Camera &head, double cutoffRadius,
                   const StereoParams &params)
{
    const auto [left_cam, right_cam] = eyeCameras(head, params);
    StereoFrame out;
    RenderOptions near_opts;
    near_opts.layer = DepthLayer::nearBe(cutoffRadius);
    for (int eye = 0; eye < 2; ++eye) {
        const Camera &cam = eye == 0 ? left_cam : right_cam;
        // Far BE: crop of the shared panorama (objects beyond the
        // cutoff have negligible per-eye parallax — the same argument
        // that makes far frames reusable across grid points).
        const Image far_view = cropPanoramaToView(
            farPanorama, cam, params.eyeWidth, params.eyeHeight);
        // Near BE: true per-eye render (parallax matters up close).
        const Image near_view = renderer.renderPerspective(
            cam, params.eyeWidth, params.eyeHeight, near_opts);
        Image merged = Renderer::merge(near_view, far_view);
        (eye == 0 ? out.left : out.right) = std::move(merged);
    }
    return out;
}

} // namespace coterie::render
