/**
 * @file
 * Software ray-casting renderer.
 *
 * Produces real RGB frames from a VirtualWorld in two projections:
 * perspective FoV frames and equirectangular panoramas. Depth-interval
 * clipping implements the paper's near/far BE decoupling: near BE is the
 * scene with the far clip plane at the cutoff radius; far BE is the
 * scene from the cutoff radius outward. The "near-object" effect — the
 * core observation of the paper — emerges from perspective projection.
 */

#pragma once

#include <limits>

#include "image/image.hh"
#include "render/camera.hh"
#include "world/world.hh"

namespace coterie::render {

/** Which depth layer of the scene to render. */
struct DepthLayer
{
    double nearClip = 0.05;
    double farClip = std::numeric_limits<double>::infinity();

    /** The whole scene (whole-BE rendering, Furion-style). */
    static DepthLayer whole() { return {}; }

    /** Near BE: everything closer than the cutoff radius. */
    static DepthLayer
    nearBe(double cutoffRadius)
    {
        return {0.05, cutoffRadius};
    }

    /** Far BE: everything from the cutoff radius outward. */
    static DepthLayer
    farBe(double cutoffRadius)
    {
        return {cutoffRadius, std::numeric_limits<double>::infinity()};
    }
};

/**
 * Which implementation renders the frame. All three produce
 * byte-identical images (asserted by tests/renderer_test.cc); they
 * exist so bench_render can attribute the speedup and tests can pin
 * the batched pipeline against the seed renderer.
 */
enum class RenderPath
{
    /**
     * Row-batched SoA pipeline (default): per-row direction basis,
     * 4-wide BVH ray packets, SIMD terrain march with object-hit
     * abort, branch-hoisted shading stages.
     */
    Batched,
    /**
     * Per-pixel `shadeRay`, but with the SIMD terrain march and
     * object-hit abort — isolates the batching win from the march win.
     */
    Scalar,
    /**
     * Per-pixel `shadeRay` with the seed's per-sample scalar terrain
     * march and no abort — the honest pre-overhaul baseline.
     */
    SeedScalar,
};

/** Rendering options. */
struct RenderOptions
{
    DepthLayer layer = DepthLayer::whole();
    /** Pixels whose nearest hit is clipped out become transparent-key
     *  color (used when merging near over far). */
    image::Rgb clipKey{255, 0, 255};
    /** Maximum terrain ray-march distance. */
    double terrainMaxDist = 2000.0;
    /** Enable sun shading (outdoor) / headroom ambient (indoor). */
    bool shading = true;
    /**
     * Procedural surface texture. Real game content carries
     * high-frequency texture; without it, SSIM between shifted frames
     * stays unrealistically high and the near-object effect vanishes.
     * Texture is sampled mip-filtered: the sample cell grows with the
     * pixel's world-space footprint (distance * pixelAngle), exactly
     * like trilinear mip-mapping, so distant surfaces stay stable
     * under small camera moves while near surfaces decorrelate.
     */
    bool texture = true;
    double textureScale = 0.02;   ///< finest texel size (m)
    double textureStrength = 0.5; ///< amplitude of the modulation
    /**
     * Angular size of one pixel (radians); set by renderPanorama /
     * renderPerspective from the output resolution.
     */
    double pixelAngleRad = 0.01;
    /**
     * Threading: 0 = the shared `support::ThreadPool` (sized by
     * `COTERIE_THREADS`, else hardware concurrency), 1 = serial on the
     * calling thread. Frames are byte-identical either way.
     */
    int threads = 0;
    /** Implementation selector; all paths render identical frames. */
    RenderPath path = RenderPath::Batched;
    /**
     * Record per-stage wall-clock into the `render.stage.*_ms` metrics
     * registry timers (batched path only; bench_render --stages).
     */
    bool stageTimers = false;
};

/** Renderer over a finalized world. */
class Renderer
{
  public:
    explicit Renderer(const world::VirtualWorld &world) : world_(world) {}

    /** Render a perspective FoV frame. */
    image::Image renderPerspective(const Camera &camera, int width,
                                   int height,
                                   const RenderOptions &opts = {}) const;

    /**
     * Render an equirectangular panorama from an eye position (the
     * server's pre-rendered frame format).
     */
    image::Image renderPanorama(geom::Vec3 eye, int width, int height,
                                const RenderOptions &opts = {}) const;

    /**
     * Composite a near-BE frame over a far-BE frame: near pixels that
     * are not the clip key win (the client's per-frame "merge" task).
     */
    static image::Image merge(const image::Image &nearLayer,
                              const image::Image &farLayer,
                              image::Rgb clipKey = {255, 0, 255});

    /** Shade a single ray (exposed for tests). */
    image::Rgb shadeRay(const geom::Ray &ray,
                        const RenderOptions &opts) const;

  private:
    const world::VirtualWorld &world_;
};

/**
 * Crop a FoV view out of a panorama by resampling (the client-side
 * "crop far BE from SphereTexture" step).
 */
image::Image cropPanoramaToView(const image::Image &panorama,
                                const Camera &camera, int width, int height);

} // namespace coterie::render

