#include "render/pipeline.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/intersect.hh"
#include "support/rng.hh"
#include "world/bvh.hh"

namespace coterie::render::detail {

using geom::Hit;
using geom::Ray;
using geom::Vec3;
using image::Rgb;

const Vec3 kSunDir = Vec3{0.45, 0.8, 0.35}.normalized();

Rgb
applyLight(Rgb base, double intensity)
{
    intensity = std::clamp(intensity, 0.0, 2.0);
    const auto scale = [&](std::uint8_t c) {
        return static_cast<std::uint8_t>(
            std::clamp(c * intensity, 0.0, 255.0));
    };
    return {scale(base.r), scale(base.g), scale(base.b)};
}

double
textureFactor(Vec3 point, double hitDist, const RenderOptions &opts)
{
    const double footprint =
        std::max(opts.textureScale, hitDist * opts.pixelAngleRad * 2.0);
    // Snap cell size to power-of-two multiples of textureScale.
    const double level = std::log2(footprint / opts.textureScale);
    const double lo_cell =
        opts.textureScale * std::exp2(std::floor(level));
    const double hi_cell = lo_cell * 2.0;
    const double blend = level - std::floor(level);

    const auto sample = [&](double cell) {
        const auto qx = static_cast<std::int64_t>(
            std::floor(point.x / cell));
        const auto qy = static_cast<std::int64_t>(
            std::floor(point.y / cell));
        const auto qz = static_cast<std::int64_t>(
            std::floor(point.z / cell));
        const std::uint64_t h = hashCombine(
            hashCombine(hashMix(static_cast<std::uint64_t>(qx)),
                        hashMix(static_cast<std::uint64_t>(qy))),
            hashMix(static_cast<std::uint64_t>(qz)));
        return (h >> 11) * 0x1.0p-53; // [0, 1)
    };
    const double noise =
        sample(lo_cell) * (1.0 - blend) + sample(hi_cell) * blend;
    return 1.0 - opts.textureStrength + 2.0 * opts.textureStrength * noise;
}

void
RowBuffers::resize(int width)
{
    const auto n = static_cast<std::size_t>(width);
    dirX.resize(n);
    dirY.resize(n);
    dirZ.resize(n);
    objHit.resize(n);
    terrainT.resize(n);
    kind.resize(n);
    base.resize(n);
    light.resize(n);
    point.resize(n);
}

void
panoramaRowDirs(int y, int width, int height, RowBuffers &rows)
{
    const double v = (y + 0.5) / height;
    const PanoramaRowBasis basis = panoramaRowBasis(v);
    for (int x = 0; x < width; ++x) {
        const double u = (x + 0.5) / width;
        const Vec3 dir = basis.direction(u);
        rows.dirX[static_cast<std::size_t>(x)] = dir.x;
        rows.dirY[static_cast<std::size_t>(x)] = dir.y;
        rows.dirZ[static_cast<std::size_t>(x)] = dir.z;
    }
}

void
perspectiveRowDirs(const Camera &camera, double aspect, int y, int width,
                   int height, RowBuffers &rows)
{
    const double sy = 1.0 - 2.0 * (y + 0.5) / height;
    const CameraRowBasis basis = camera.rowBasis(sy, aspect);
    for (int x = 0; x < width; ++x) {
        const double sx = 2.0 * (x + 0.5) / width - 1.0;
        const Vec3 dir = basis.direction(sx);
        rows.dirX[static_cast<std::size_t>(x)] = dir.x;
        rows.dirY[static_cast<std::size_t>(x)] = dir.y;
        rows.dirZ[static_cast<std::size_t>(x)] = dir.z;
    }
}

void
raycastRow(const world::VirtualWorld &world, Vec3 origin,
           const RenderOptions &opts, int width, RowBuffers &rows)
{
    // The camera rays all carry the default validity interval; clip it
    // once for the row (same std::max/min shadeRay applies per ray).
    const Ray proto;
    const double tMin = std::max(proto.tMin, opts.layer.nearClip);
    const double tMax = std::min(proto.tMax, opts.layer.farClip);
    if (!(tMin < tMax)) {
        // shadeRay leaves obj_hit default-constructed in this case.
        std::fill(rows.objHit.begin(), rows.objHit.begin() + width, Hit{});
        return;
    }
    const world::Bvh &bvh = world.bvh();
    constexpr int kLanes = geom::RayPacket::kLanes;
    int x = 0;
    for (; x + kLanes <= width; x += kLanes) {
        const auto i = static_cast<std::size_t>(x);
        bvh.closestHitPacket(geom::makeRayPacket(origin, &rows.dirX[i],
                                                 &rows.dirY[i],
                                                 &rows.dirZ[i], tMin, tMax),
                             &rows.objHit[i]);
    }
    for (; x < width; ++x) {
        const auto i = static_cast<std::size_t>(x);
        Ray ray;
        ray.origin = origin;
        ray.dir = {rows.dirX[i], rows.dirY[i], rows.dirZ[i]};
        ray.tMin = tMin;
        ray.tMax = tMax;
        rows.objHit[i] = bvh.closestHit(ray);
    }
}

void
terrainRow(const world::VirtualWorld &world, Vec3 origin,
           const RenderOptions &opts, int width, RowBuffers &rows)
{
    const Ray proto;
    const double tMin = std::max(proto.tMin, opts.layer.nearClip);
    const double tMax = std::min(proto.tMax, opts.layer.farClip);
    const double inf = std::numeric_limits<double>::infinity();
    if (!(tMin < tMax)) {
        std::fill(rows.terrainT.begin(), rows.terrainT.begin() + width,
                  inf);
        return;
    }
    const world::Terrain &terrain = world.terrain();
    for (int x = 0; x < width; ++x) {
        const auto i = static_cast<std::size_t>(x);
        Ray clipped;
        clipped.origin = origin;
        clipped.dir = {rows.dirX[i], rows.dirY[i], rows.dirZ[i]};
        clipped.tMin = tMin;
        clipped.tMax = tMax;
        // Marching past the pixel's object hit cannot change the
        // frame: shadeRay discards any terrain t >= obj.t. The abort
        // is result-identical (see Terrain::intersect).
        const Hit &obj = rows.objHit[i];
        const double abortBeyond = obj.valid() ? obj.t : inf;
        double terrain_t = inf;
        if (auto t = terrain.intersect(clipped, opts.terrainMaxDist,
                                       abortBeyond)) {
            if (*t >= clipped.tMin && *t <= clipped.tMax)
                terrain_t = *t;
        }
        rows.terrainT[i] = terrain_t;
    }
}

void
shadeRow(const world::VirtualWorld &world, Vec3 origin,
         const RenderOptions &opts, int width, RowBuffers &rows)
{
    // Pass A: resolve each pixel to object / terrain / clip-key / sky
    // and record the base color and hit point. Same decision order as
    // shadeRay.
    const bool clip_key_layer = std::isfinite(opts.layer.farClip);
    for (int x = 0; x < width; ++x) {
        const auto i = static_cast<std::size_t>(x);
        const Hit &obj = rows.objHit[i];
        const double terrain_t = rows.terrainT[i];
        rows.light[i] = 1.0;
        if (obj.valid() && obj.t < terrain_t) {
            rows.kind[i] = PixelKind::Object;
            rows.base[i] = world.object(obj.objectId).color;
        } else if (std::isfinite(terrain_t)) {
            rows.kind[i] = PixelKind::Terrain;
            const Vec3 dir{rows.dirX[i], rows.dirY[i], rows.dirZ[i]};
            const Vec3 p = origin + dir * terrain_t; // Ray::at
            rows.point[i] = p;
            rows.base[i] = world.terrain().colorAt(p.ground());
        } else {
            rows.kind[i] =
                clip_key_layer ? PixelKind::ClipKey : PixelKind::Sky;
        }
    }

    // Pass B: diffuse sun lighting, branch hoisted out of the loop.
    if (opts.shading) {
        for (int x = 0; x < width; ++x) {
            const auto i = static_cast<std::size_t>(x);
            if (rows.kind[i] == PixelKind::Object) {
                const double diffuse = std::max(
                    0.0, rows.objHit[i].normal.dot(kSunDir));
                rows.light[i] = 0.40 + 0.60 * diffuse;
            } else if (rows.kind[i] == PixelKind::Terrain) {
                const double diffuse = std::max(
                    0.0, world.terrain()
                             .normalAt(rows.point[i].ground())
                             .dot(kSunDir));
                rows.light[i] = 0.45 + 0.55 * diffuse;
            }
        }
    }

    // Pass C: procedural texture modulation, branch hoisted.
    if (opts.texture) {
        for (int x = 0; x < width; ++x) {
            const auto i = static_cast<std::size_t>(x);
            if (rows.kind[i] == PixelKind::Object) {
                const Hit &obj = rows.objHit[i];
                rows.light[i] *= textureFactor(obj.point, obj.t, opts);
            } else if (rows.kind[i] == PixelKind::Terrain) {
                rows.light[i] *=
                    textureFactor(rows.point[i], rows.terrainT[i], opts);
            }
        }
    }
}

void
compositeRow(const world::VirtualWorld &world, const RenderOptions &opts,
             int width, const RowBuffers &rows, Rgb *out)
{
    for (int x = 0; x < width; ++x) {
        const auto i = static_cast<std::size_t>(x);
        switch (rows.kind[i]) {
        case PixelKind::Object:
        case PixelKind::Terrain:
            out[x] = applyLight(rows.base[i], rows.light[i]);
            break;
        case PixelKind::ClipKey:
            out[x] = opts.clipKey;
            break;
        case PixelKind::Sky: {
            const double pitch =
                std::asin(std::clamp(rows.dirY[i], -1.0, 1.0));
            out[x] = world.skyColor(std::max(0.0, pitch));
            break;
        }
        }
    }
}

} // namespace coterie::render::detail
