#include "render/cost_model.hh"

#include <algorithm>
#include <cmath>

#include "world/bvh.hh"

namespace coterie::render {

using geom::Vec2;

namespace {

double
lodWeight(double distance, const CostModelParams &params)
{
    const double ratio = distance / params.lodDistance;
    return 1.0 / (1.0 + ratio * ratio);
}

/**
 * Terrain triangles in the annulus with LOD falloff:
 * integral of 2*pi*r * rho * w(r) dr over [rMin, rMax]
 *   = pi * rho * lod^2 * ln((1 + (rMax/lod)^2) / (1 + (rMin/lod)^2)).
 */
/** Distance from @p eye to the farthest corner of the world bounds —
 *  terrain does not extend past the world, so neither does its cost. */
double
worldReach(const world::VirtualWorld &world, Vec2 eye)
{
    const geom::Rect &b = world.bounds();
    double reach = 0.0;
    for (const Vec2 corner : {b.lo, b.hi, Vec2{b.lo.x, b.hi.y},
                              Vec2{b.hi.x, b.lo.y}}) {
        reach = std::max(reach, eye.distance(corner));
    }
    return reach;
}

double
terrainEffectiveTriangles(const world::VirtualWorld &world, Vec2 eye,
                          double rMin, double rMax,
                          const CostModelParams &params)
{
    const double rho = world.terrain().params().trianglesPerM2;
    const double lod = params.lodDistance;
    const double hi =
        std::min({rMax, params.cullDistance, worldReach(world, eye)});
    if (hi <= rMin)
        return 0.0;
    const double a = 1.0 + (hi / lod) * (hi / lod);
    const double b = 1.0 + (rMin / lod) * (rMin / lod);
    return M_PI * rho * lod * lod * std::log(a / b);
}

} // namespace

double
effectiveTriangles(const world::VirtualWorld &world, Vec2 eye, double rMin,
                   double rMax, const CostModelParams &params)
{
    const double reach = std::min(rMax, params.cullDistance);
    double total =
        terrainEffectiveTriangles(world, eye, rMin, rMax, params);
    if (reach > rMin) {
        for (std::uint32_t id : world.objectsWithin(eye, reach)) {
            const world::WorldObject &obj = world.object(id);
            const double d = obj.footprint().distance(eye);
            if (d < rMin)
                continue; // belongs to the inner layer
            total += obj.triangles * lodWeight(d, params);
        }
    }
    // Global LOD saturation (see CostModelParams::saturationTriangles).
    if (params.saturationTriangles > 0.0)
        total = total / (1.0 + total / params.saturationTriangles);
    return total;
}

double
renderTimeMs(const world::VirtualWorld &world, Vec2 eye, double rMin,
             double rMax, const CostModelParams &params)
{
    const double tris = effectiveTriangles(world, eye, rMin, rMax, params);
    return params.baseMs + tris * params.nsPerTriangle * 1e-6;
}

} // namespace coterie::render
