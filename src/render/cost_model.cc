#include "render/cost_model.hh"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hh"
#include "world/bvh.hh"

namespace coterie::render {

using geom::Vec2;

namespace {

double
lodWeight(double distance, const CostModelParams &params)
{
    const double ratio = distance / params.lodDistance;
    return 1.0 / (1.0 + ratio * ratio);
}

/**
 * Terrain triangles in the annulus with LOD falloff:
 * integral of 2*pi*r * rho * w(r) dr over [rMin, rMax]
 *   = pi * rho * lod^2 * ln((1 + (rMax/lod)^2) / (1 + (rMin/lod)^2)).
 */
/** Distance from @p eye to the farthest corner of the world bounds —
 *  terrain does not extend past the world, so neither does its cost. */
double
worldReach(const world::VirtualWorld &world, Vec2 eye)
{
    const geom::Rect &b = world.bounds();
    double reach = 0.0;
    for (const Vec2 corner : {b.lo, b.hi, Vec2{b.lo.x, b.hi.y},
                              Vec2{b.hi.x, b.lo.y}}) {
        reach = std::max(reach, eye.distance(corner));
    }
    return reach;
}

double
terrainEffectiveTriangles(const world::VirtualWorld &world, Vec2 eye,
                          double rMin, double rMax,
                          const CostModelParams &params)
{
    const double rho = world.terrain().params().trianglesPerM2;
    const double lod = params.lodDistance;
    const double hi =
        std::min({rMax, params.cullDistance, worldReach(world, eye)});
    if (hi <= rMin)
        return 0.0;
    const double a = 1.0 + (hi / lod) * (hi / lod);
    const double b = 1.0 + (rMin / lod) * (rMin / lod);
    return M_PI * rho * lod * lod * std::log(a / b);
}

} // namespace

double
effectiveTriangles(const world::VirtualWorld &world, Vec2 eye, double rMin,
                   double rMax, const CostModelParams &params)
{
    const double reach = std::min(rMax, params.cullDistance);
    double total =
        terrainEffectiveTriangles(world, eye, rMin, rMax, params);
    if (reach > rMin) {
        // Callback disc query: BVH traversal order, no id-vector
        // allocation. LocationCostCache replays the same order, which
        // is what keeps the two paths bit-identical.
        world.forEachObjectWithin(eye, reach, [&](std::uint32_t id) {
            const world::WorldObject &obj = world.object(id);
            const double d = obj.footprint().distance(eye);
            if (d < rMin)
                return; // belongs to the inner layer
            total += obj.triangles * lodWeight(d, params);
        });
    }
    // Global LOD saturation (see CostModelParams::saturationTriangles).
    if (params.saturationTriangles > 0.0)
        total = total / (1.0 + total / params.saturationTriangles);
    return total;
}

double
renderTimeMs(const world::VirtualWorld &world, Vec2 eye, double rMin,
             double rMax, const CostModelParams &params)
{
    const double tris = effectiveTriangles(world, eye, rMin, rMax, params);
    return params.baseMs + tris * params.nsPerTriangle * 1e-6;
}

LocationCostCache::LocationCostCache(const world::VirtualWorld &world,
                                     Vec2 eye, double maxRadius,
                                     const CostModelParams &params)
    : world_(world), eye_(eye), params_(params)
{
    COTERIE_COUNT("cost.location_cache_builds");
    const double maxReach = std::min(maxRadius, params.cullDistance);
    if (maxReach <= 0.0)
        return;
    // Callback disc query, cached in BVH traversal order — replaying
    // objects_ in this order keeps effectiveTriangles() bit-identical
    // to the uncached free function (which sums in the same order).
    world.forEachObjectWithin(eye, maxReach, [&](std::uint32_t id) {
        const world::WorldObject &obj = world.object(id);
        // queryDisc's membership metric: squared distance from the eye
        // to the object's AABB footprint in the ground plane.
        const geom::Aabb box = obj.bounds();
        const double dx =
            std::max({box.lo.x - eye.x, 0.0, eye.x - box.hi.x});
        const double dz =
            std::max({box.lo.z - eye.y, 0.0, eye.y - box.hi.z});
        objects_.push_back({dx * dx + dz * dz,
                            obj.footprint().distance(eye),
                            static_cast<double>(obj.triangles)});
    });
}

double
LocationCostCache::effectiveTriangles(double rMin, double rMax) const
{
    // Every query here is a BVH disc query saved relative to the
    // uncached effectiveTriangles() path.
    COTERIE_COUNT("cost.location_cache_queries");
    const double reach = std::min(rMax, params_.cullDistance);
    double total =
        terrainEffectiveTriangles(world_, eye_, rMin, rMax, params_);
    if (reach > rMin) {
        const double r2 = reach * reach;
        for (const CachedObject &obj : objects_) {
            if (obj.footprintDistSq > r2)
                continue; // outside this query's disc
            if (obj.centerDist < rMin)
                continue; // belongs to the inner layer
            total += obj.triangles * lodWeight(obj.centerDist, params_);
        }
    }
    if (params_.saturationTriangles > 0.0)
        total = total / (1.0 + total / params_.saturationTriangles);
    return total;
}

double
LocationCostCache::renderTimeMs(double rMin, double rMax) const
{
    const double tris = effectiveTriangles(rMin, rMax);
    return params_.baseMs + tris * params_.nsPerTriangle * 1e-6;
}

} // namespace coterie::render
