/**
 * @file
 * Stereo projection — the paper's "Sensing and Projection" module: the
 * merged frame is projected into two per-eye views (Daydream renders
 * left/right with a ~64 mm interpupillary offset and converged optics).
 */

#pragma once

#include <utility>

#include "render/renderer.hh"

namespace coterie::render {

/** Stereo rig parameters. */
struct StereoParams
{
    double ipdMeters = 0.064;  ///< interpupillary distance
    int eyeWidth = 1920 / 2;   ///< per-eye resolution (half the panel)
    int eyeHeight = 1080;
};

/** The two per-eye frames. */
struct StereoFrame
{
    image::Image left;
    image::Image right;

    /** Panel layout: left and right side by side. */
    image::Image composite() const;
};

/** Per-eye cameras for a head pose. */
std::pair<Camera, Camera> eyeCameras(const Camera &head,
                                     const StereoParams &params = {});

/** Render both eyes directly from the world. */
StereoFrame renderStereo(const Renderer &renderer, const Camera &head,
                         const StereoParams &params = {},
                         const RenderOptions &opts = {});

/**
 * Project a (merged) panorama into both eyes by cropping — the client's
 * final step: far BE comes from the panorama, so per-eye parallax only
 * exists for the locally rendered near layer, which is re-rendered per
 * eye and merged over the shared panorama crop.
 */
StereoFrame stereoFromPanorama(const Renderer &renderer,
                               const image::Image &farPanorama,
                               const Camera &head, double cutoffRadius,
                               const StereoParams &params = {});

} // namespace coterie::render

