/**
 * @file
 * Intra-frame block-transform codec.
 *
 * The paper encodes pre-rendered panoramic frames with x264 (CRF 25,
 * fastdecode). We substitute a real — if much simpler — lossy intra
 * codec: YCoCg color transform, 8x8 block Haar transform, dead-zone
 * quantisation driven by a quality factor, zigzag scan, zero run-length
 * coding, and varint entropy coding. It produces genuinely
 * content-dependent byte sizes (flat far-BE frames compress harder than
 * busy whole-BE frames), which is the property the caching and
 * bandwidth experiments rely on.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "image/image.hh"

namespace coterie::image {

/** Codec tuning parameters. */
struct CodecParams
{
    /**
     * Quality in [1, 100]; higher keeps more coefficients. 60 roughly
     * corresponds to x264 CRF 25 in perceived quality (SSIM ~0.95+ on
     * our rendered content).
     */
    int quality = 60;
    /** Subsample chroma 2x in each dimension (like 4:2:0). */
    bool chromaSubsample = true;
};

/** An encoded frame: an opaque byte stream plus its dimensions. */
struct EncodedFrame
{
    int width = 0;
    int height = 0;
    CodecParams params;
    std::vector<std::uint8_t> bytes;

    std::size_t sizeBytes() const { return bytes.size(); }
};

/** Encode an RGB image. */
EncodedFrame encode(const Image &frame, const CodecParams &params = {});

/** Decode back to RGB; panics on a corrupt stream. */
Image decode(const EncodedFrame &encoded);

} // namespace coterie::image

