/**
 * @file
 * Additional image-quality metrics beyond SSIM: MSE/PSNR (the classic
 * codec-fidelity measures) and a per-block SSIM map useful for
 * inspecting where two frames diverge (e.g. near the cutoff boundary).
 */

#pragma once

#include <vector>

#include "image/image.hh"

namespace coterie::image {

/** Mean squared error over the luma plane. */
double mse(const Image &a, const Image &b);

/** Peak signal-to-noise ratio in dB (infinity for identical frames). */
double psnr(const Image &a, const Image &b);

/**
 * Per-window SSIM map: one value per (windowSize x windowSize) tile,
 * row-major, tiles truncated at the image edge. Useful to localise
 * merge seams and codec artefacts.
 */
struct SsimMap
{
    int tilesX = 0;
    int tilesY = 0;
    std::vector<double> values;

    double at(int tx, int ty) const
    {
        return values[static_cast<std::size_t>(ty) * tilesX + tx];
    }
    double min() const;
    double mean() const;
};

SsimMap ssimMap(const Image &a, const Image &b, int windowSize = 16);

/** Read a binary PPM (P6) file; returns an empty image on failure. */
Image readPpm(const std::string &path);

} // namespace coterie::image

