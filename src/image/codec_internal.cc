#include "image/codec_internal.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>

#include "support/logging.hh"
#include "support/simd.hh"

namespace coterie::image::detail {
namespace {

using support::simd::F64x4;

constexpr int kBlock = 8;

/** Zigzag scan order for an 8x8 block. */
const std::array<int, 64> &
zigzagOrder()
{
    static const std::array<int, 64> order = [] {
        std::array<int, 64> o{};
        int idx = 0;
        for (int s = 0; s < 2 * kBlock - 1; ++s) {
            if (s % 2 == 0) {
                for (int y = std::min(s, kBlock - 1);
                     y >= std::max(0, s - kBlock + 1); --y)
                    o[idx++] = y * kBlock + (s - y);
            } else {
                for (int y = std::max(0, s - kBlock + 1);
                     y <= std::min(s, kBlock - 1); ++y)
                    o[idx++] = y * kBlock + (s - y);
            }
        }
        return o;
    }();
    return order;
}

/** In-place 1D Haar lifting over 8 samples (3 levels). */
void
haar1d(double *v, int stride, bool inverse)
{
    double tmp[kBlock];
    if (!inverse) {
        int len = kBlock;
        while (len > 1) {
            const int half = len / 2;
            for (int i = 0; i < half; ++i) {
                const double a = v[(2 * i) * stride];
                const double b = v[(2 * i + 1) * stride];
                tmp[i] = (a + b) * 0.5;
                tmp[half + i] = (a - b) * 0.5;
            }
            for (int i = 0; i < len; ++i)
                v[i * stride] = tmp[i];
            len = half;
        }
    } else {
        int len = 2;
        while (len <= kBlock) {
            const int half = len / 2;
            for (int i = 0; i < half; ++i) {
                const double avg = v[i * stride];
                const double diff = v[(half + i) * stride];
                tmp[2 * i] = avg + diff;
                tmp[2 * i + 1] = avg - diff;
            }
            for (int i = 0; i < len; ++i)
                v[i * stride] = tmp[i];
            len *= 2;
        }
    }
}

/**
 * Column pass of the 2D Haar: all eight columns lifted at once, two
 * 4-lane vectors per block row (a column step is a row-wise op on the
 * row-major block). The lane arithmetic is (a ± b) * 0.5 / avg ± diff
 * — no fusable multiply-add shape — so the result is bit-identical to
 * per-column `haar1d` at any vector width or dispatch clone.
 */
COTERIE_SIMD_CLONES void
haarColumns(double *block, bool inverse)
{
    double tmp[kBlock * kBlock];
    const F64x4 half = F64x4::splat(0.5);
    const auto row = [&](double *base, int i) { return base + i * kBlock; };
    if (!inverse) {
        int len = kBlock;
        while (len > 1) {
            const int h = len / 2;
            for (int i = 0; i < h; ++i) {
                const double *ra = row(block, 2 * i);
                const double *rb = row(block, 2 * i + 1);
                for (int c = 0; c < kBlock; c += 4) {
                    const F64x4 a = F64x4::load(ra + c);
                    const F64x4 b = F64x4::load(rb + c);
                    ((a + b) * half).store(row(tmp, i) + c);
                    ((a - b) * half).store(row(tmp, h + i) + c);
                }
            }
            std::memcpy(block, tmp,
                        sizeof(double) * static_cast<std::size_t>(len) *
                            kBlock);
            len = h;
        }
    } else {
        int len = 2;
        while (len <= kBlock) {
            const int h = len / 2;
            for (int i = 0; i < h; ++i) {
                const double *ravg = row(block, i);
                const double *rdiff = row(block, h + i);
                for (int c = 0; c < kBlock; c += 4) {
                    const F64x4 avg = F64x4::load(ravg + c);
                    const F64x4 diff = F64x4::load(rdiff + c);
                    (avg + diff).store(row(tmp, 2 * i) + c);
                    (avg - diff).store(row(tmp, 2 * i + 1) + c);
                }
            }
            std::memcpy(block, tmp,
                        sizeof(double) * static_cast<std::size_t>(len) *
                            kBlock);
            len *= 2;
        }
    }
}

/** 2D Haar over an 8x8 block stored row-major. */
void
haar2d(double *block, bool inverse)
{
    if (!inverse) {
        for (int y = 0; y < kBlock; ++y)
            haar1d(block + y * kBlock, 1, false);
        haarColumns(block, false);
    } else {
        haarColumns(block, true);
        for (int y = 0; y < kBlock; ++y)
            haar1d(block + y * kBlock, 1, true);
    }
}

/** Quantisation step for coefficient index (frequency-weighted). */
double
quantStep(int zigzag_index, int quality, bool chroma)
{
    const double q = std::clamp(quality, 1, 100);
    // Map quality 1..100 to a base step ~ [24 .. 0.8].
    const double base = 80.0 / (q + 2.0) * (chroma ? 1.8 : 1.0);
    // Higher frequencies quantised more coarsely.
    const double freq = 1.0 + static_cast<double>(zigzag_index) * 0.25;
    return base * freq;
}

/** Append an unsigned varint (LEB128). */
void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t
getVarint(const std::vector<std::uint8_t> &in, std::size_t &pos)
{
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
        COTERIE_ASSERT(pos < in.size(), "varint past end of stream");
        const std::uint8_t byte = in[pos++];
        v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            break;
        shift += 7;
    }
    return v;
}

/** ZigZag-map a signed value to unsigned for varint coding. */
std::uint64_t
zz(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzz(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

} // namespace

/**
 * Encode one plane: per 8x8 block, Haar, quantise, zigzag, then emit
 * (runOfZeros, value) pairs with an end-of-block marker. DC coefficients
 * are delta-coded across blocks.
 */
void
encodePlane(const std::vector<double> &plane, int w, int h, int quality,
            bool chroma, std::vector<std::uint8_t> &out)
{
    const auto &order = zigzagOrder();
    std::int64_t prev_dc = 0;
    for (int by = 0; by < h; by += kBlock) {
        for (int bx = 0; bx < w; bx += kBlock) {
            double block[kBlock * kBlock];
            for (int y = 0; y < kBlock; ++y) {
                for (int x = 0; x < kBlock; ++x) {
                    const int sx = std::min(bx + x, w - 1);
                    const int sy = std::min(by + y, h - 1);
                    block[y * kBlock + x] =
                        plane[static_cast<std::size_t>(sy) * w + sx];
                }
            }
            haar2d(block, false);

            std::int64_t q[kBlock * kBlock];
            for (int i = 0; i < kBlock * kBlock; ++i) {
                const double step = quantStep(i, quality, chroma);
                q[i] = static_cast<std::int64_t>(
                    std::llround(block[order[i]] / step));
            }

            // DC delta.
            putVarint(out, zz(q[0] - prev_dc));
            prev_dc = q[0];

            // AC: run-length of zeros then value; 0-run 63 acts as EOB.
            int run = 0;
            for (int i = 1; i < kBlock * kBlock; ++i) {
                if (q[i] == 0) {
                    ++run;
                    continue;
                }
                putVarint(out, static_cast<std::uint64_t>(run));
                putVarint(out, zz(q[i]));
                run = 0;
            }
            putVarint(out, 63); // EOB
        }
    }
}

void
decodePlane(const std::vector<std::uint8_t> &in, std::size_t &pos, int w,
            int h, int quality, bool chroma, std::vector<double> &plane)
{
    const auto &order = zigzagOrder();
    plane.assign(static_cast<std::size_t>(w) * h, 0.0);
    std::int64_t prev_dc = 0;
    for (int by = 0; by < h; by += kBlock) {
        for (int bx = 0; bx < w; bx += kBlock) {
            std::int64_t q[kBlock * kBlock] = {};
            prev_dc += unzz(getVarint(in, pos));
            q[0] = prev_dc;
            // Read (run, value) pairs until the end-of-block marker;
            // the encoder always emits it, even after a value in the
            // final coefficient slot.
            int i = 1;
            while (true) {
                const std::uint64_t run = getVarint(in, pos);
                if (run == 63)
                    break;
                i += static_cast<int>(run);
                COTERIE_ASSERT(i < kBlock * kBlock, "corrupt AC run");
                q[i] = unzz(getVarint(in, pos));
                ++i;
            }

            double block[kBlock * kBlock];
            for (int j = 0; j < kBlock * kBlock; ++j)
                block[order[j]] =
                    static_cast<double>(q[j]) * quantStep(j, quality, chroma);
            haar2d(block, true);

            for (int y = 0; y < kBlock && by + y < h; ++y)
                for (int x = 0; x < kBlock && bx + x < w; ++x)
                    plane[static_cast<std::size_t>(by + y) * w + bx + x] =
                        block[y * kBlock + x];
        }
    }
}

/** RGB -> YCoCg (lossy in integer domain; we work in doubles). */
void
rgbToYcocg(const Image &img, std::vector<double> &yp, std::vector<double> &co,
           std::vector<double> &cg)
{
    const auto n = img.pixelCount();
    yp.resize(n);
    co.resize(n);
    cg.resize(n);
    const auto &px = img.pixels();
    for (std::size_t i = 0; i < n; ++i) {
        const double r = px[i].r, g = px[i].g, b = px[i].b;
        co[i] = r - b;
        const double tmp = b + co[i] * 0.5;
        cg[i] = g - tmp;
        yp[i] = tmp + cg[i] * 0.5;
    }
}

std::uint8_t
clamp255(double v)
{
    return static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
}

Image
ycocgToRgb(const std::vector<double> &yp, const std::vector<double> &co,
           const std::vector<double> &cg, int w, int h)
{
    Image out(w, h);
    auto &px = out.pixels();
    for (std::size_t i = 0; i < px.size(); ++i) {
        const double tmp = yp[i] - cg[i] * 0.5;
        const double g = cg[i] + tmp;
        const double b = tmp - co[i] * 0.5;
        const double r = b + co[i];
        px[i] = Rgb{clamp255(r + 0.5), clamp255(g + 0.5), clamp255(b + 0.5)};
    }
    return out;
}

std::vector<double>
subsample2(const std::vector<double> &plane, int w, int h, int &sw, int &sh)
{
    sw = (w + 1) / 2;
    sh = (h + 1) / 2;
    std::vector<double> out(static_cast<std::size_t>(sw) * sh);
    for (int y = 0; y < sh; ++y) {
        for (int x = 0; x < sw; ++x) {
            double sum = 0.0;
            int n = 0;
            for (int dy = 0; dy < 2; ++dy) {
                for (int dx = 0; dx < 2; ++dx) {
                    const int sx = 2 * x + dx;
                    const int sy = 2 * y + dy;
                    if (sx < w && sy < h) {
                        sum += plane[static_cast<std::size_t>(sy) * w + sx];
                        ++n;
                    }
                }
            }
            out[static_cast<std::size_t>(y) * sw + x] = sum / n;
        }
    }
    return out;
}

std::vector<double>
upsample2(const std::vector<double> &plane, int sw, int sh, int w, int h)
{
    std::vector<double> out(static_cast<std::size_t>(w) * h);
    for (int y = 0; y < h; ++y) {
        const int sy = std::min(y / 2, sh - 1);
        for (int x = 0; x < w; ++x) {
            const int sx = std::min(x / 2, sw - 1);
            out[static_cast<std::size_t>(y) * w + x] =
                plane[static_cast<std::size_t>(sy) * sw + sx];
        }
    }
    return out;
}


} // namespace coterie::image::detail
