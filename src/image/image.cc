#include "image/image.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/logging.hh"

namespace coterie::image {

double
luma(Rgb c)
{
    return 0.299 * c.r + 0.587 * c.g + 0.114 * c.b;
}

Image::Image(int width, int height, Rgb fill)
    : width_(width), height_(height),
      pixels_(static_cast<std::size_t>(width) * height, fill)
{
    COTERIE_ASSERT(width >= 0 && height >= 0, "negative image dims");
}

Rgb &
Image::at(int x, int y)
{
    COTERIE_ASSERT(x >= 0 && x < width_ && y >= 0 && y < height_,
                   "pixel out of range: ", x, ",", y);
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
}

const Rgb &
Image::at(int x, int y) const
{
    COTERIE_ASSERT(x >= 0 && x < width_ && y >= 0 && y < height_,
                   "pixel out of range: ", x, ",", y);
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
}

std::vector<double>
Image::lumaPlane() const
{
    std::vector<double> out;
    out.reserve(pixels_.size());
    for (const Rgb &p : pixels_)
        out.push_back(luma(p));
    return out;
}

Image
Image::downsample(int factor) const
{
    COTERIE_ASSERT(factor >= 1, "bad downsample factor");
    if (factor == 1)
        return *this;
    const int w = std::max(1, width_ / factor);
    const int h = std::max(1, height_ / factor);
    Image out(w, h);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            long sr = 0, sg = 0, sb = 0;
            int n = 0;
            for (int dy = 0; dy < factor; ++dy) {
                for (int dx = 0; dx < factor; ++dx) {
                    const int sx = x * factor + dx;
                    const int sy = y * factor + dy;
                    if (sx < width_ && sy < height_) {
                        const Rgb &p = at(sx, sy);
                        sr += p.r; sg += p.g; sb += p.b;
                        ++n;
                    }
                }
            }
            out.at(x, y) = Rgb{static_cast<std::uint8_t>(sr / n),
                               static_cast<std::uint8_t>(sg / n),
                               static_cast<std::uint8_t>(sb / n)};
        }
    }
    return out;
}

Image
Image::crop(int x0, int y0, int w, int h) const
{
    x0 = std::clamp(x0, 0, width_);
    y0 = std::clamp(y0, 0, height_);
    w = std::clamp(w, 0, width_ - x0);
    h = std::clamp(h, 0, height_ - y0);
    Image out(w, h);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            out.at(x, y) = at(x0 + x, y0 + y);
    return out;
}

double
Image::meanAbsDiff(const Image &other) const
{
    COTERIE_ASSERT(width_ == other.width_ && height_ == other.height_,
                   "meanAbsDiff on mismatched sizes");
    if (pixels_.empty())
        return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < pixels_.size(); ++i) {
        acc += std::abs(int(pixels_[i].r) - int(other.pixels_[i].r));
        acc += std::abs(int(pixels_[i].g) - int(other.pixels_[i].g));
        acc += std::abs(int(pixels_[i].b) - int(other.pixels_[i].b));
    }
    return acc / (3.0 * static_cast<double>(pixels_.size()));
}

bool
Image::writePpm(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    std::fprintf(f, "P6\n%d %d\n255\n", width_, height_);
    const bool ok = std::fwrite(pixels_.data(), sizeof(Rgb), pixels_.size(),
                                f) == pixels_.size();
    std::fclose(f);
    return ok;
}

} // namespace coterie::image
