/**
 * @file
 * Internal plane-level coding primitives shared by the still-frame
 * codec (codec.cc) and the video codec (video.cc): Haar transform,
 * quantisation, zigzag RLE/varint entropy coding, YCoCg conversion and
 * chroma resampling. Not part of the public API.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "image/image.hh"

namespace coterie::image::detail {

/** Encode one plane into the byte stream (8x8 Haar blocks). */
void encodePlane(const std::vector<double> &plane, int w, int h,
                 int quality, bool chroma, std::vector<std::uint8_t> &out);

/** Decode one plane from the stream at @p pos (advances pos). */
void decodePlane(const std::vector<std::uint8_t> &in, std::size_t &pos,
                 int w, int h, int quality, bool chroma,
                 std::vector<double> &plane);

/** RGB <-> YCoCg plane conversion. */
void rgbToYcocg(const Image &img, std::vector<double> &yp,
                std::vector<double> &co, std::vector<double> &cg);
Image ycocgToRgb(const std::vector<double> &yp,
                 const std::vector<double> &co,
                 const std::vector<double> &cg, int w, int h);

/** 2x chroma down/up sampling. */
std::vector<double> subsample2(const std::vector<double> &plane, int w,
                               int h, int &sw, int &sh);
std::vector<double> upsample2(const std::vector<double> &plane, int sw,
                              int sh, int w, int h);

} // namespace coterie::image::detail

