#include "image/ssim.hh"

#include <algorithm>
#include <memory>
#include <vector>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "support/logging.hh"
#include "support/parallel.hh"
#include "support/simd.hh"

namespace coterie::image {

namespace {

/** Bands per pool chunk. Fixed (thread-count-independent) so the
 *  chunk-local column-sum recurrences are deterministic at any
 *  COTERIE_THREADS value. */
constexpr std::int64_t kBandsPerChunk = 8;

/** Row-groups per pool chunk in the tiled kernel's build stage. */
constexpr std::int64_t kGroupsPerChunk = 8;

// Vector lanes and runtime dispatch come from support/simd.hh: the
// vector path follows the COTERIE_SIMD CMake option, and
// COTERIE_SIMD_CLONES emits AVX-512/AVX2 clones of the hot kernels
// (skipped under sanitizers — the ifunc resolver runs before their
// runtimes initialise). Results are thread-count deterministic either
// way; vector-vs-scalar builds agree to the kernels' documented 1e-12
// envelope rather than bit-exactly (ssim_test pins both properties).
#ifdef COTERIE_SIMD_VECTOR_EXT
#define COTERIE_SSIM_V2D 1
// The wide-vector helpers are internal and always inlined; the ABI of
// their V4d return type is irrelevant.
#pragma GCC diagnostic ignored "-Wpsabi"
using V2d = support::simd::V2dRaw;
using V4d = support::simd::V4dRaw;

inline V2d
loadu2(const double *p)
{
    V2d v;
    __builtin_memcpy(&v, p, sizeof(v));
    return v;
}

inline V4d
loadu4(const double *p)
{
    V4d v;
    __builtin_memcpy(&v, p, sizeof(v));
    return v;
}

inline void
storeu4(double *p, V4d v)
{
    __builtin_memcpy(p, &v, sizeof(v));
}
#endif
#define COTERIE_SSIM_CLONES COTERIE_SIMD_CLONES

/** Horizontal running window sums are recomputed from the column sums
 *  every this many window positions, bounding floating-point drift of
 *  the add/subtract recurrence (keeps the kernel within 1e-12 of the
 *  naive formulation). */
constexpr int kRefreshInterval = 64;

double
ssimWindow(double sa, double sb, double saa, double sbb, double sab,
           double inv_n, double C1, double C2)
{
    const double ma = sa * inv_n;
    const double mb = sb * inv_n;
    const double va = saa * inv_n - ma * ma;
    const double vb = sbb * inv_n - mb * mb;
    const double cov = sab * inv_n - ma * mb;
    return ((2 * ma * mb + C1) * (2 * cov + C2)) /
           ((ma * ma + mb * mb + C1) * (va + vb + C2));
}

/** Moments tracked per tile: Σa, Σb, Σa², Σb², Σab. */
constexpr int kMoments = 5;

/**
 * One row-group of the tiled kernel's moment table: for each
 * column-group j, the five moment sums over the stride x stride pixel
 * tile whose top-left corner is (j*stride, g*stride). Every pixel is
 * loaded exactly once; the inner accumulation runs on two-lane vectors
 * where the compiler supports them (scalar tail for odd strides).
 */
COTERIE_SSIM_CLONES void
buildTileRow(const double *a, const double *b, int width, int g,
             int xGroups, int stride, double *tg)
{
    const double *baseA = a + static_cast<std::size_t>(g) * stride * width;
    const double *baseB = b + static_cast<std::size_t>(g) * stride * width;
#ifdef COTERIE_SSIM_V2D
    if (stride == 4) {
        // The default geometry (8x8 windows, stride 4) fully unrolled:
        // one 4-lane vector per tile row, no inner-loop branches.
        const double *ra0 = baseA, *ra1 = baseA + width,
                     *ra2 = baseA + 2 * static_cast<std::size_t>(width),
                     *ra3 = baseA + 3 * static_cast<std::size_t>(width);
        const double *rb0 = baseB, *rb1 = baseB + width,
                     *rb2 = baseB + 2 * static_cast<std::size_t>(width),
                     *rb3 = baseB + 3 * static_cast<std::size_t>(width);
        for (int j = 0; j < xGroups; ++j) {
            const int x0 = j * 4;
            const V4d pa0 = loadu4(ra0 + x0), pb0 = loadu4(rb0 + x0);
            const V4d pa1 = loadu4(ra1 + x0), pb1 = loadu4(rb1 + x0);
            const V4d pa2 = loadu4(ra2 + x0), pb2 = loadu4(rb2 + x0);
            const V4d pa3 = loadu4(ra3 + x0), pb3 = loadu4(rb3 + x0);
            const V4d sa = (pa0 + pa1) + (pa2 + pa3);
            const V4d sb = (pb0 + pb1) + (pb2 + pb3);
            const V4d saa = (pa0 * pa0 + pa1 * pa1) + (pa2 * pa2 + pa3 * pa3);
            const V4d sbb = (pb0 * pb0 + pb1 * pb1) + (pb2 * pb2 + pb3 * pb3);
            const V4d sab = (pa0 * pb0 + pa1 * pb1) + (pa2 * pb2 + pa3 * pb3);
            double *t = tg + static_cast<std::size_t>(j) * kMoments;
            t[0] = sa[0] + sa[1] + sa[2] + sa[3];
            t[1] = sb[0] + sb[1] + sb[2] + sb[3];
            t[2] = saa[0] + saa[1] + saa[2] + saa[3];
            t[3] = sbb[0] + sbb[1] + sbb[2] + sbb[3];
            t[4] = sab[0] + sab[1] + sab[2] + sab[3];
        }
        return;
    }
    const int quads = stride / 4;
    const int pairs = (stride % 4) / 2;
    const bool odd = (stride & 1) != 0;
    for (int j = 0; j < xGroups; ++j) {
        const int x0 = j * stride;
        V4d qa{}, qb{}, qaa{}, qbb{}, qab{};
        V2d sa{}, sb{}, saa{}, sbb{}, sab{};
        double ta = 0, tb = 0, taa = 0, tbb = 0, tab = 0;
        for (int r = 0; r < stride; ++r) {
            const double *ra = baseA + static_cast<std::size_t>(r) * width + x0;
            const double *rb = baseB + static_cast<std::size_t>(r) * width + x0;
            for (int v = 0; v < quads; ++v) {
                const V4d pa = loadu4(ra + 4 * v);
                const V4d pb = loadu4(rb + 4 * v);
                qa += pa;
                qb += pb;
                qaa += pa * pa;
                qbb += pb * pb;
                qab += pa * pb;
            }
            for (int v = 0; v < pairs; ++v) {
                const V2d pa = loadu2(ra + 4 * quads + 2 * v);
                const V2d pb = loadu2(rb + 4 * quads + 2 * v);
                sa += pa;
                sb += pb;
                saa += pa * pa;
                sbb += pb * pb;
                sab += pa * pb;
            }
            if (odd) {
                const double pa = ra[stride - 1], pb = rb[stride - 1];
                ta += pa;
                tb += pb;
                taa += pa * pa;
                tbb += pb * pb;
                tab += pa * pb;
            }
        }
        double *t = tg + static_cast<std::size_t>(j) * kMoments;
        t[0] = qa[0] + qa[1] + qa[2] + qa[3] + sa[0] + sa[1] + ta;
        t[1] = qb[0] + qb[1] + qb[2] + qb[3] + sb[0] + sb[1] + tb;
        t[2] = qaa[0] + qaa[1] + qaa[2] + qaa[3] + saa[0] + saa[1] + taa;
        t[3] = qbb[0] + qbb[1] + qbb[2] + qbb[3] + sbb[0] + sbb[1] + tbb;
        t[4] = qab[0] + qab[1] + qab[2] + qab[3] + sab[0] + sab[1] + tab;
    }
#else
    for (int j = 0; j < xGroups; ++j) {
        const int x0 = j * stride;
        double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
        for (int r = 0; r < stride; ++r) {
            const double *ra = baseA + static_cast<std::size_t>(r) * width + x0;
            const double *rb = baseB + static_cast<std::size_t>(r) * width + x0;
            for (int c = 0; c < stride; ++c) {
                const double pa = ra[c], pb = rb[c];
                sa += pa;
                sb += pb;
                saa += pa * pa;
                sbb += pb * pb;
                sab += pa * pb;
            }
        }
        double *t = tg + static_cast<std::size_t>(j) * kMoments;
        t[0] = sa;
        t[1] = sb;
        t[2] = saa;
        t[3] = sbb;
        t[4] = sab;
    }
#endif
}

/**
 * Column-sum update for the sliding kernel: admit (+) or retire (-)
 * one pixel row's moments into the per-column running sums. Columns
 * are independent, so the 4-wide form performs the same per-column
 * arithmetic as the scalar tail; the result depends only on (row,
 * sign, width), never on thread count.
 */
COTERIE_SSIM_CLONES void
slideRow(const double *ra, const double *rb, int width, double sign,
         double *colA, double *colB, double *colAA, double *colBB,
         double *colAB)
{
    int x = 0;
#ifdef COTERIE_SSIM_V2D
    const V4d s = {sign, sign, sign, sign};
    for (; x + 4 <= width; x += 4) {
        const V4d pa = loadu4(ra + x);
        const V4d pb = loadu4(rb + x);
        storeu4(colA + x, loadu4(colA + x) + s * pa);
        storeu4(colB + x, loadu4(colB + x) + s * pb);
        storeu4(colAA + x, loadu4(colAA + x) + s * pa * pa);
        storeu4(colBB + x, loadu4(colBB + x) + s * pb * pb);
        storeu4(colAB + x, loadu4(colAB + x) + s * pa * pb);
    }
#endif
    for (; x < width; ++x) {
        const double pa = ra[x];
        const double pb = rb[x];
        colA[x] += sign * pa;
        colB[x] += sign * pb;
        colAA[x] += sign * pa * pa;
        colBB[x] += sign * pb * pb;
        colAB[x] += sign * pa * pb;
    }
}

/**
 * Tiled kernel for window grids whose stride divides the window size:
 * windows start on stride-aligned coordinates, so a window's moments
 * are the sum of q*q tile moments (q = win/stride). Each pixel is
 * touched once (vs (win/stride)^2 times in the naive pass). Both
 * stages parallelise over the shared pool with fixed chunk grids and
 * per-slot accumulation, so the result is identical at any thread
 * count.
 */
double
ssimLumaTiled(const std::vector<double> &a, const std::vector<double> &b,
              int width, int height, int win, int stride, double C1,
              double C2, int threads)
{
    const double inv_n = 1.0 / (static_cast<double>(win) * win);
    const int q = win / stride;
    const std::int64_t bands = (height - win) / stride + 1;
    const int xCount = (width - win) / stride + 1;
    const int xGroups = xCount - 1 + q;
    const std::int64_t rowGroups = bands - 1 + q;

    // Stage 1: for each row-group, tile moments (chunk-local scratch —
    // a tile is only ever combined within its own row-group) reduced
    // straight into horizontal window sums: H[g][i] = moments of the
    // win-wide, stride-tall slab at (i*stride, g*stride). Chunks write
    // disjoint rows of H and every slot is written, so the table skips
    // the zero-fill and the result is chunking-independent.
    const auto H = std::make_unique_for_overwrite<double[]>(
        static_cast<std::size_t>(rowGroups) * xCount * kMoments);
    support::parallelFor(
        0, rowGroups, kGroupsPerChunk,
        [&](std::int64_t gBegin, std::int64_t gEnd) {
            std::vector<double> tileRow(
                static_cast<std::size_t>(xGroups) * kMoments);
            for (std::int64_t g = gBegin; g < gEnd; ++g) {
                buildTileRow(a.data(), b.data(), width,
                             static_cast<int>(g), xGroups, stride,
                             tileRow.data());
                double *h =
                    &H[static_cast<std::size_t>(g) * xCount * kMoments];
                for (int i = 0; i < xCount; ++i) {
                    double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
                    for (int j = 0; j < q; ++j) {
                        const double *t =
                            &tileRow[static_cast<std::size_t>(i + j) *
                                     kMoments];
                        sa += t[0];
                        sb += t[1];
                        saa += t[2];
                        sbb += t[3];
                        sab += t[4];
                    }
                    double *hi = h + static_cast<std::size_t>(i) * kMoments;
                    hi[0] = sa;
                    hi[1] = sb;
                    hi[2] = saa;
                    hi[3] = sbb;
                    hi[4] = sab;
                }
            }
        },
        threads);

    // Stage 2: a window is q vertically adjacent slabs; one
    // accumulation slot per band (always written), ordered reduction.
    const auto bandAcc = std::make_unique_for_overwrite<double[]>(
        static_cast<std::size_t>(bands));
    support::parallelFor(
        0, bands, kBandsPerChunk,
        [&](std::int64_t bandBegin, std::int64_t bandEnd) {
            for (std::int64_t band = bandBegin; band < bandEnd; ++band) {
                double acc = 0.0;
                for (int i = 0; i < xCount; ++i) {
                    double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
                    for (int k = 0; k < q; ++k) {
                        const double *hi =
                            &H[(static_cast<std::size_t>(band + k) *
                                    xCount +
                                static_cast<std::size_t>(i)) *
                               kMoments];
                        sa += hi[0];
                        sb += hi[1];
                        saa += hi[2];
                        sbb += hi[3];
                        sab += hi[4];
                    }
                    acc += ssimWindow(sa, sb, saa, sbb, sab, inv_n, C1,
                                      C2);
                }
                bandAcc[static_cast<std::size_t>(band)] = acc;
            }
        },
        threads);

    double total = 0.0;
    for (std::int64_t band = 0; band < bands; ++band)
        total += bandAcc[static_cast<std::size_t>(band)];
    const double windows =
        static_cast<double>(bands) * static_cast<double>(xCount);
    return windows > 0 ? total / windows : 1.0;
}

} // namespace

double
ssimLumaReference(const std::vector<double> &a,
                  const std::vector<double> &b, int width, int height,
                  const SsimParams &params)
{
    COTERIE_ASSERT(a.size() == b.size() &&
                   a.size() ==
                       static_cast<std::size_t>(width) * height,
                   "ssim plane size mismatch");
    const int win = params.windowSize;
    const int stride = params.stride > 0 ? params.stride : win;
    const double c1 = params.k1 * params.dynamicRange;
    const double c2 = params.k2 * params.dynamicRange;
    const double C1 = c1 * c1;
    const double C2 = c2 * c2;

    if (width < win || height < win) {
        // Degenerate: single window over the whole image.
        double ma = 0, mb = 0;
        for (std::size_t i = 0; i < a.size(); ++i) {
            ma += a[i];
            mb += b[i];
        }
        const double n = static_cast<double>(a.size());
        ma /= n; mb /= n;
        double va = 0, vb = 0, cov = 0;
        for (std::size_t i = 0; i < a.size(); ++i) {
            va += (a[i] - ma) * (a[i] - ma);
            vb += (b[i] - mb) * (b[i] - mb);
            cov += (a[i] - ma) * (b[i] - mb);
        }
        va /= n; vb /= n; cov /= n;
        return ((2 * ma * mb + C1) * (2 * cov + C2)) /
               ((ma * ma + mb * mb + C1) * (va + vb + C2));
    }

    double acc = 0.0;
    std::size_t windows = 0;
    const double inv_n = 1.0 / (static_cast<double>(win) * win);
    for (int y0 = 0; y0 + win <= height; y0 += stride) {
        for (int x0 = 0; x0 + win <= width; x0 += stride) {
            double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
            for (int y = y0; y < y0 + win; ++y) {
                const double *ra = &a[static_cast<std::size_t>(y) * width];
                const double *rb = &b[static_cast<std::size_t>(y) * width];
                for (int x = x0; x < x0 + win; ++x) {
                    const double pa = ra[x];
                    const double pb = rb[x];
                    sa += pa; sb += pb;
                    saa += pa * pa; sbb += pb * pb;
                    sab += pa * pb;
                }
            }
            acc += ssimWindow(sa, sb, saa, sbb, sab, inv_n, C1, C2);
            ++windows;
        }
    }
    return windows ? acc / static_cast<double>(windows) : 1.0;
}

double
ssimLuma(const std::vector<double> &a, const std::vector<double> &b,
         int width, int height, const SsimParams &params)
{
    COTERIE_ASSERT(a.size() == b.size() &&
                   a.size() ==
                       static_cast<std::size_t>(width) * height,
                   "ssim plane size mismatch");
    COTERIE_SPAN("image.ssim", "image");
    COTERIE_TIMER_SCOPE("image.ssim_ms");
    const int win = params.windowSize;
    const int stride = params.stride > 0 ? params.stride : win;
    // Disjoint windows (stride >= win) have no overlap to exploit; the
    // naive pass is optimal there and stays bit-identical to the
    // historical implementation. Degenerate images share its one-window
    // path.
    if (width < win || height < win || stride >= win) {
        COTERIE_COUNT("image.ssim_reference");
        return ssimLumaReference(a, b, width, height, params);
    }

    const double c1 = params.k1 * params.dynamicRange;
    const double c2 = params.k2 * params.dynamicRange;
    const double C1 = c1 * c1;
    const double C2 = c2 * c2;

    // Stride-aligned grids with modest overlap (q = win/stride) are
    // fastest as tile sums: each pixel is read once and a window costs
    // q*q small loads. Beyond q = 4 the per-window tile traffic
    // overtakes the sliding kernel's O(stride) incremental updates.
    if (win % stride == 0 && win / stride <= 4) {
        COTERIE_COUNT("image.ssim_tiled");
        return ssimLumaTiled(a, b, width, height, win, stride, C1, C2,
                             params.threads);
    }
    COTERIE_COUNT("image.ssim_sliding");

    const double inv_n = 1.0 / (static_cast<double>(win) * win);
    const std::int64_t bands = (height - win) / stride + 1;
    const int xCount = (width - win) / stride + 1;

    // Per-band accumulation slots + ordered reduction: the mean never
    // depends on which worker ran which chunk.
    std::vector<double> bandAcc(static_cast<std::size_t>(bands), 0.0);

    support::parallelFor(
        0, bands, kBandsPerChunk,
        [&](std::int64_t bandBegin, std::int64_t bandEnd) {
            // Sliding-window state for this chunk: per-column running
            // sums over the current band's rows [y0, y0 + win).
            std::vector<double> colA(width, 0.0), colB(width, 0.0);
            std::vector<double> colAA(width, 0.0), colBB(width, 0.0);
            std::vector<double> colAB(width, 0.0);

            auto addRow = [&](int y, double sign) {
                slideRow(&a[static_cast<std::size_t>(y) * width],
                         &b[static_cast<std::size_t>(y) * width], width,
                         sign, colA.data(), colB.data(), colAA.data(),
                         colBB.data(), colAB.data());
            };

            for (std::int64_t band = bandBegin; band < bandEnd; ++band) {
                const int y0 = static_cast<int>(band) * stride;
                if (band == bandBegin) {
                    // Fresh column sums at the chunk boundary.
                    std::fill(colA.begin(), colA.end(), 0.0);
                    std::fill(colB.begin(), colB.end(), 0.0);
                    std::fill(colAA.begin(), colAA.end(), 0.0);
                    std::fill(colBB.begin(), colBB.end(), 0.0);
                    std::fill(colAB.begin(), colAB.end(), 0.0);
                    for (int y = y0; y < y0 + win; ++y)
                        addRow(y, 1.0);
                } else {
                    // O(stride) vertical slide: retire the rows that
                    // left the band, admit the rows that entered.
                    for (int y = y0 - stride; y < y0; ++y)
                        addRow(y, -1.0);
                    for (int y = y0 + win - stride; y < y0 + win; ++y)
                        addRow(y, 1.0);
                }

                // Horizontal pass: O(stride) window update from the
                // column sums instead of re-summing win^2 pixels.
                double acc = 0.0;
                double wa = 0, wb = 0, waa = 0, wbb = 0, wab = 0;
                int sinceRefresh = kRefreshInterval;
                for (int i = 0; i < xCount; ++i) {
                    const int x0 = i * stride;
                    if (sinceRefresh >= kRefreshInterval) {
                        wa = wb = waa = wbb = wab = 0.0;
                        for (int x = x0; x < x0 + win; ++x) {
                            wa += colA[x];
                            wb += colB[x];
                            waa += colAA[x];
                            wbb += colBB[x];
                            wab += colAB[x];
                        }
                        sinceRefresh = 0;
                    } else {
                        for (int x = x0 - stride; x < x0; ++x) {
                            wa -= colA[x];
                            wb -= colB[x];
                            waa -= colAA[x];
                            wbb -= colBB[x];
                            wab -= colAB[x];
                        }
                        for (int x = x0 + win - stride; x < x0 + win;
                             ++x) {
                            wa += colA[x];
                            wb += colB[x];
                            waa += colAA[x];
                            wbb += colBB[x];
                            wab += colAB[x];
                        }
                    }
                    ++sinceRefresh;
                    acc += ssimWindow(wa, wb, waa, wbb, wab, inv_n, C1,
                                      C2);
                }
                bandAcc[static_cast<std::size_t>(band)] = acc;
            }
        },
        params.threads);

    double total = 0.0;
    for (double band : bandAcc)
        total += band;
    const std::size_t windows =
        static_cast<std::size_t>(bands) * static_cast<std::size_t>(xCount);
    return windows ? total / static_cast<double>(windows) : 1.0;
}

double
ssim(const Image &a, const Image &b, const SsimParams &params)
{
    COTERIE_ASSERT(a.width() == b.width() && a.height() == b.height(),
                   "ssim size mismatch: ", a.width(), "x", a.height(),
                   " vs ", b.width(), "x", b.height());
    return ssimLuma(a.lumaPlane(), b.lumaPlane(), a.width(), a.height(),
                    params);
}

} // namespace coterie::image
