#include "image/ssim.hh"

#include "support/logging.hh"

namespace coterie::image {

double
ssimLuma(const std::vector<double> &a, const std::vector<double> &b,
         int width, int height, const SsimParams &params)
{
    COTERIE_ASSERT(a.size() == b.size() &&
                   a.size() ==
                       static_cast<std::size_t>(width) * height,
                   "ssim plane size mismatch");
    const int win = params.windowSize;
    const int stride = params.stride > 0 ? params.stride : win;
    const double c1 = params.k1 * params.dynamicRange;
    const double c2 = params.k2 * params.dynamicRange;
    const double C1 = c1 * c1;
    const double C2 = c2 * c2;

    if (width < win || height < win) {
        // Degenerate: single window over the whole image.
        double ma = 0, mb = 0;
        for (std::size_t i = 0; i < a.size(); ++i) {
            ma += a[i];
            mb += b[i];
        }
        const double n = static_cast<double>(a.size());
        ma /= n; mb /= n;
        double va = 0, vb = 0, cov = 0;
        for (std::size_t i = 0; i < a.size(); ++i) {
            va += (a[i] - ma) * (a[i] - ma);
            vb += (b[i] - mb) * (b[i] - mb);
            cov += (a[i] - ma) * (b[i] - mb);
        }
        va /= n; vb /= n; cov /= n;
        return ((2 * ma * mb + C1) * (2 * cov + C2)) /
               ((ma * ma + mb * mb + C1) * (va + vb + C2));
    }

    double acc = 0.0;
    std::size_t windows = 0;
    const double inv_n = 1.0 / (static_cast<double>(win) * win);
    for (int y0 = 0; y0 + win <= height; y0 += stride) {
        for (int x0 = 0; x0 + win <= width; x0 += stride) {
            double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
            for (int y = y0; y < y0 + win; ++y) {
                const double *ra = &a[static_cast<std::size_t>(y) * width];
                const double *rb = &b[static_cast<std::size_t>(y) * width];
                for (int x = x0; x < x0 + win; ++x) {
                    const double pa = ra[x];
                    const double pb = rb[x];
                    sa += pa; sb += pb;
                    saa += pa * pa; sbb += pb * pb;
                    sab += pa * pb;
                }
            }
            const double ma = sa * inv_n;
            const double mb = sb * inv_n;
            const double va = saa * inv_n - ma * ma;
            const double vb = sbb * inv_n - mb * mb;
            const double cov = sab * inv_n - ma * mb;
            acc += ((2 * ma * mb + C1) * (2 * cov + C2)) /
                   ((ma * ma + mb * mb + C1) * (va + vb + C2));
            ++windows;
        }
    }
    return windows ? acc / static_cast<double>(windows) : 1.0;
}

double
ssim(const Image &a, const Image &b, const SsimParams &params)
{
    COTERIE_ASSERT(a.width() == b.width() && a.height() == b.height(),
                   "ssim size mismatch: ", a.width(), "x", a.height(),
                   " vs ", b.width(), "x", b.height());
    return ssimLuma(a.lumaPlane(), b.lumaPlane(), a.width(), a.height(),
                    params);
}

} // namespace coterie::image
