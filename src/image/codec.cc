#include "image/codec.hh"

#include "image/codec_internal.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "support/logging.hh"

namespace coterie::image {

using detail::decodePlane;
using detail::encodePlane;
using detail::rgbToYcocg;
using detail::subsample2;
using detail::upsample2;
using detail::ycocgToRgb;

EncodedFrame
encode(const Image &frame, const CodecParams &params)
{
    COTERIE_ASSERT(!frame.empty(), "encoding empty frame");
    COTERIE_SPAN("codec.encode", "image");
    COTERIE_TIMER_SCOPE("codec.encode_ms");
    COTERIE_COUNT("codec.encodes");
    EncodedFrame out;
    out.width = frame.width();
    out.height = frame.height();
    out.params = params;

    std::vector<double> yp, co, cg;
    rgbToYcocg(frame, yp, co, cg);

    encodePlane(yp, frame.width(), frame.height(), params.quality, false,
                out.bytes);
    if (params.chromaSubsample) {
        int sw = 0, sh = 0;
        const auto co_s = subsample2(co, frame.width(), frame.height(),
                                     sw, sh);
        const auto cg_s = subsample2(cg, frame.width(), frame.height(),
                                     sw, sh);
        encodePlane(co_s, sw, sh, params.quality, true, out.bytes);
        encodePlane(cg_s, sw, sh, params.quality, true, out.bytes);
    } else {
        encodePlane(co, frame.width(), frame.height(), params.quality, true,
                    out.bytes);
        encodePlane(cg, frame.width(), frame.height(), params.quality, true,
                    out.bytes);
    }
    COTERIE_COUNT_N("codec.encoded_bytes", out.bytes.size());
    return out;
}

Image
decode(const EncodedFrame &encoded)
{
    const int w = encoded.width;
    const int h = encoded.height;
    COTERIE_ASSERT(w > 0 && h > 0, "decoding empty frame");
    COTERIE_SPAN("codec.decode", "image");
    COTERIE_TIMER_SCOPE("codec.decode_ms");
    COTERIE_COUNT("codec.decodes");
    std::size_t pos = 0;
    std::vector<double> yp, co, cg;
    decodePlane(encoded.bytes, pos, w, h, encoded.params.quality, false, yp);
    if (encoded.params.chromaSubsample) {
        const int sw = (w + 1) / 2;
        const int sh = (h + 1) / 2;
        std::vector<double> co_s, cg_s;
        decodePlane(encoded.bytes, pos, sw, sh, encoded.params.quality, true,
                    co_s);
        decodePlane(encoded.bytes, pos, sw, sh, encoded.params.quality, true,
                    cg_s);
        co = upsample2(co_s, sw, sh, w, h);
        cg = upsample2(cg_s, sw, sh, w, h);
    } else {
        decodePlane(encoded.bytes, pos, w, h, encoded.params.quality, true,
                    co);
        decodePlane(encoded.bytes, pos, w, h, encoded.params.quality, true,
                    cg);
    }
    return ycocgToRgb(yp, co, cg, w, h);
}

} // namespace coterie::image
