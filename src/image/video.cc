#include "image/video.hh"

#include "image/codec_internal.hh"
#include "support/logging.hh"

namespace coterie::image {

namespace {

/** The three YCoCg planes of a frame, chroma at full resolution. */
struct Planes
{
    std::vector<double> y, co, cg;
};

Planes
toPlanes(const Image &frame)
{
    Planes p;
    detail::rgbToYcocg(frame, p.y, p.co, p.cg);
    return p;
}

/** Encode (cur - ref) per plane; chroma subsampled if configured. */
void
encodePlanes(const Planes &planes, int w, int h, const CodecParams &params,
             std::vector<std::uint8_t> &out)
{
    detail::encodePlane(planes.y, w, h, params.quality, false, out);
    if (params.chromaSubsample) {
        int sw = 0, sh = 0;
        const auto co_s = detail::subsample2(planes.co, w, h, sw, sh);
        const auto cg_s = detail::subsample2(planes.cg, w, h, sw, sh);
        detail::encodePlane(co_s, sw, sh, params.quality, true, out);
        detail::encodePlane(cg_s, sw, sh, params.quality, true, out);
    } else {
        detail::encodePlane(planes.co, w, h, params.quality, true, out);
        detail::encodePlane(planes.cg, w, h, params.quality, true, out);
    }
}

Planes
decodePlanes(const std::vector<std::uint8_t> &bytes, int w, int h,
             const CodecParams &params)
{
    Planes p;
    std::size_t pos = 0;
    detail::decodePlane(bytes, pos, w, h, params.quality, false, p.y);
    if (params.chromaSubsample) {
        const int sw = (w + 1) / 2;
        const int sh = (h + 1) / 2;
        std::vector<double> co_s, cg_s;
        detail::decodePlane(bytes, pos, sw, sh, params.quality, true,
                            co_s);
        detail::decodePlane(bytes, pos, sw, sh, params.quality, true,
                            cg_s);
        p.co = detail::upsample2(co_s, sw, sh, w, h);
        p.cg = detail::upsample2(cg_s, sw, sh, w, h);
    } else {
        detail::decodePlane(bytes, pos, w, h, params.quality, true, p.co);
        detail::decodePlane(bytes, pos, w, h, params.quality, true, p.cg);
    }
    return p;
}

Planes
subtract(const Planes &a, const Planes &b)
{
    Planes out = a;
    for (std::size_t i = 0; i < out.y.size(); ++i) {
        out.y[i] -= b.y[i];
        out.co[i] -= b.co[i];
        out.cg[i] -= b.cg[i];
    }
    return out;
}

void
addInPlace(Planes &a, const Planes &b)
{
    for (std::size_t i = 0; i < a.y.size(); ++i) {
        a.y[i] += b.y[i];
        a.co[i] += b.co[i];
        a.cg[i] += b.cg[i];
    }
}

} // namespace

std::size_t
EncodedVideo::totalBytes() const
{
    std::size_t total = 0;
    for (const EncodedVideoFrame &frame : frames)
        total += frame.sizeBytes();
    return total;
}

EncodedVideo
encodeVideo(const std::vector<Image> &frames, const VideoParams &params)
{
    COTERIE_ASSERT(!frames.empty(), "encoding empty sequence");
    EncodedVideo video;
    video.width = frames.front().width();
    video.height = frames.front().height();
    video.params = params.codec;
    video.gopLength = std::max(1, params.gopLength);

    // The encoder tracks the *reconstructed* reference (what the
    // decoder will see), so quantisation error does not accumulate.
    Planes reference;
    for (std::size_t i = 0; i < frames.size(); ++i) {
        const Image &frame = frames[i];
        COTERIE_ASSERT(frame.width() == video.width &&
                       frame.height() == video.height,
                       "sequence frames must share dimensions");
        EncodedVideoFrame out;
        const Planes cur = toPlanes(frame);
        const bool intra =
            i % static_cast<std::size_t>(video.gopLength) == 0;
        if (intra) {
            out.type = FrameType::Intra;
            encodePlanes(cur, video.width, video.height, video.params,
                         out.bytes);
            reference = decodePlanes(out.bytes, video.width, video.height,
                                     video.params);
        } else {
            out.type = FrameType::Predicted;
            const Planes delta = subtract(cur, reference);
            encodePlanes(delta, video.width, video.height, video.params,
                         out.bytes);
            Planes recon = decodePlanes(out.bytes, video.width,
                                        video.height, video.params);
            addInPlace(recon, reference);
            reference = std::move(recon);
        }
        video.frames.push_back(std::move(out));
    }
    return video;
}

std::vector<Image>
decodeVideo(const EncodedVideo &video)
{
    std::vector<Image> out;
    out.reserve(video.frames.size());
    Planes reference;
    for (const EncodedVideoFrame &frame : video.frames) {
        Planes planes = decodePlanes(frame.bytes, video.width,
                                     video.height, video.params);
        if (frame.type == FrameType::Predicted) {
            COTERIE_ASSERT(!reference.y.empty(),
                           "P-frame before any I-frame");
            addInPlace(planes, reference);
        }
        reference = planes;
        out.push_back(detail::ycocgToRgb(planes.y, planes.co, planes.cg,
                                         video.width, video.height));
    }
    return out;
}

} // namespace coterie::image
