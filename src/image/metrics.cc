#include "image/metrics.hh"

#include <cmath>
#include <cstdio>
#include <limits>

#include "image/ssim.hh"
#include "support/logging.hh"

namespace coterie::image {

double
mse(const Image &a, const Image &b)
{
    COTERIE_ASSERT(a.width() == b.width() && a.height() == b.height(),
                   "mse size mismatch");
    if (a.empty())
        return 0.0;
    const auto la = a.lumaPlane();
    const auto lb = b.lumaPlane();
    double acc = 0.0;
    for (std::size_t i = 0; i < la.size(); ++i) {
        const double d = la[i] - lb[i];
        acc += d * d;
    }
    return acc / static_cast<double>(la.size());
}

double
psnr(const Image &a, const Image &b)
{
    const double err = mse(a, b);
    if (err <= 0.0)
        return std::numeric_limits<double>::infinity();
    return 10.0 * std::log10(255.0 * 255.0 / err);
}

double
SsimMap::min() const
{
    double m = 1.0;
    for (double v : values)
        m = std::min(m, v);
    return values.empty() ? 0.0 : m;
}

double
SsimMap::mean() const
{
    if (values.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : values)
        acc += v;
    return acc / static_cast<double>(values.size());
}

SsimMap
ssimMap(const Image &a, const Image &b, int windowSize)
{
    COTERIE_ASSERT(a.width() == b.width() && a.height() == b.height(),
                   "ssimMap size mismatch");
    COTERIE_ASSERT(windowSize >= 4, "window too small");
    SsimMap map;
    map.tilesX = std::max(1, a.width() / windowSize);
    map.tilesY = std::max(1, a.height() / windowSize);
    map.values.reserve(static_cast<std::size_t>(map.tilesX) * map.tilesY);
    SsimParams params;
    params.windowSize = std::min(windowSize, 8);
    params.stride = params.windowSize;
    for (int ty = 0; ty < map.tilesY; ++ty) {
        for (int tx = 0; tx < map.tilesX; ++tx) {
            const Image ta =
                a.crop(tx * windowSize, ty * windowSize, windowSize,
                       windowSize);
            const Image tb =
                b.crop(tx * windowSize, ty * windowSize, windowSize,
                       windowSize);
            map.values.push_back(ssim(ta, tb, params));
        }
    }
    return map;
}

Image
readPpm(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return {};
    char magic[3] = {};
    int w = 0, h = 0, maxval = 0;
    if (std::fscanf(f, "%2s %d %d %d", magic, &w, &h, &maxval) != 4 ||
        std::string(magic) != "P6" || maxval != 255 || w <= 0 || h <= 0) {
        std::fclose(f);
        return {};
    }
    std::fgetc(f); // single whitespace after the header
    Image img(w, h);
    const bool ok = std::fread(img.pixels().data(), sizeof(Rgb),
                               img.pixelCount(), f) == img.pixelCount();
    std::fclose(f);
    return ok ? img : Image{};
}

} // namespace coterie::image
