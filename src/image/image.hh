/**
 * @file
 * RGB8 frame buffer plus the small set of pixel operations the
 * similarity experiments need (luma extraction, downsampling, PPM io).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace coterie::image {

/** An 8-bit RGB color. */
struct Rgb
{
    std::uint8_t r = 0;
    std::uint8_t g = 0;
    std::uint8_t b = 0;

    constexpr bool operator==(const Rgb &) const = default;
};

/** Rec. 601 luma of a color, in [0, 255]. */
double luma(Rgb c);

/**
 * A dense row-major RGB8 image. This is the "frame" type flowing through
 * the renderer, the codec, and the SSIM metric.
 */
class Image
{
  public:
    Image() = default;
    Image(int width, int height, Rgb fill = {});

    int width() const { return width_; }
    int height() const { return height_; }
    bool empty() const { return pixels_.empty(); }
    std::size_t pixelCount() const { return pixels_.size(); }

    Rgb &at(int x, int y);
    const Rgb &at(int x, int y) const;

    const std::vector<Rgb> &pixels() const { return pixels_; }
    std::vector<Rgb> &pixels() { return pixels_; }

    /** Per-pixel luma plane as doubles (SSIM operates on this). */
    std::vector<double> lumaPlane() const;

    /** Box-filter downsample by an integer factor. */
    Image downsample(int factor) const;

    /** Crop a sub-rectangle; clamps to bounds. */
    Image crop(int x0, int y0, int w, int h) const;

    /** Mean absolute per-channel difference against another image. */
    double meanAbsDiff(const Image &other) const;

    /** Write a binary PPM (P6) file; returns false on IO failure. */
    bool writePpm(const std::string &path) const;

    bool operator==(const Image &) const = default;

  private:
    int width_ = 0;
    int height_ = 0;
    std::vector<Rgb> pixels_;
};

} // namespace coterie::image

