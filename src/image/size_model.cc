#include "image/size_model.hh"

#include <algorithm>
#include <cmath>

namespace coterie::image {

std::size_t
modelFrameBytes(const FrameSizeSpec &spec)
{
    // Bits-per-pixel at complexity 0.5 for each content class, fit to
    // the paper's measured 4K frame sizes:
    //   WholeBE: ~500 KB over 3840x2160      -> ~0.49 bpp
    //   FarBE:   ~200 KB                     -> ~0.20 bpp
    //   FoV:     ~620 KB over 1920x1080 (the Thin-client stream is
    //            encoded at much higher quality/bitrate) -> ~2.27 bpp
    double bpp_mid = 0.72;
    switch (spec.content) {
      case FrameContent::WholeBE: bpp_mid = 0.72; break;
      case FrameContent::FarBE:   bpp_mid = 0.30; break;
      case FrameContent::FovFrame: bpp_mid = 2.27; break;
    }
    // Complexity scales size roughly linearly around the midpoint; an
    // empty scene still costs headers and flat-block DC terms.
    const double complexity = std::clamp(spec.complexity, 0.0, 1.0);
    const double scale = 0.35 + 1.30 * complexity;
    const double pixels =
        static_cast<double>(spec.width) * static_cast<double>(spec.height);
    const double bits = bpp_mid * scale * pixels;
    const double overhead = 2048.0; // container + SPS/PPS etc.
    return static_cast<std::size_t>(bits / 8.0 + overhead);
}

} // namespace coterie::image
