/**
 * @file
 * Structural Similarity (SSIM) — Wang, Bovik, Sheikh, Simoncelli 2004 —
 * the metric the paper uses everywhere to quantify frame similarity.
 * An SSIM above 0.90 is the paper's threshold for "good" visual quality.
 */

#pragma once

#include "image/image.hh"

namespace coterie::image {

/** Parameters of the SSIM computation. */
struct SsimParams
{
    int windowSize = 8;    ///< square window side (paper uses 8x8 blocks)
    int stride = 4;        ///< window step; < windowSize -> overlapping
    double k1 = 0.01;      ///< stabilisation constant C1 = (k1*L)^2
    double k2 = 0.03;      ///< stabilisation constant C2 = (k2*L)^2
    double dynamicRange = 255.0;
    /** Threading: 0 = shared pool, 1 = serial (results identical). */
    int threads = 0;
};

/** The paper's similarity threshold for reusable / "good" frames. */
inline constexpr double kGoodSsim = 0.90;

/**
 * Mean SSIM between the luma planes of two equally-sized images.
 * Returns 1.0 for identical images; panics on size mismatch.
 */
double ssim(const Image &a, const Image &b, const SsimParams &params = {});

/**
 * SSIM on raw luma planes (width*height doubles each). Overlapping
 * window grids run one of two fast kernels, both fanned out over the
 * shared thread pool with thread-count-independent results:
 *
 * - stride divides windowSize (small overlap factor): a tiled kernel
 *   reads every pixel exactly once into stride x stride tile moments
 *   and assembles each window from q*q tile sums (q = win/stride);
 * - otherwise: a sliding-window kernel whose per-column running sums
 *   give O(stride) window updates instead of re-summing win^2 pixels.
 *
 * Bit-identical to `ssimLumaReference` when stride >= windowSize;
 * within 1e-12 for overlapping windows.
 */
double ssimLuma(const std::vector<double> &a, const std::vector<double> &b,
                int width, int height, const SsimParams &params = {});

/**
 * The naive O(win^2)-per-window serial formulation, kept as the
 * regression/benchmark reference for the fast kernels.
 */
double ssimLumaReference(const std::vector<double> &a,
                         const std::vector<double> &b, int width,
                         int height, const SsimParams &params = {});

} // namespace coterie::image

