/**
 * @file
 * Calibrated H.264 frame-size model.
 *
 * End-to-end benches run at 4K-panorama scale where ray-casting every
 * frame would be wasteful; instead they use this size model, calibrated
 * against the paper's measured per-frame sizes (Table 1 and Table 8) and
 * cross-checked against our real codec's scaling behaviour. Similarity
 * benches use the real codec on real frames.
 */

#pragma once

#include <cstddef>

namespace coterie::image {

/** Which content a frame carries; affects compressibility. */
enum class FrameContent
{
    WholeBE,   ///< full background environment panorama (Multi-Furion)
    FarBE,     ///< far-only panorama after near/far decoupling (Coterie)
    FovFrame,  ///< fully-rendered per-eye FoV frame (Thin-client)
};

/** Model inputs. */
struct FrameSizeSpec
{
    int width = 3840;
    int height = 2160;
    FrameContent content = FrameContent::WholeBE;
    /**
     * Scene complexity in [0, 1]: fraction of the panorama covered by
     * geometry edges/texture, derived from the world's object density.
     * 0.5 corresponds to the paper's mid-complexity apps (CTS).
     */
    double complexity = 0.5;
};

/**
 * Expected encoded size in bytes of one H.264 intra-coded frame at
 * CRF 25 with fastdecode tuning, per the paper's measurement points:
 * whole-BE 4K panoramas are 440-564 KB, far-BE panoramas 150-280 KB
 * (~2-3x smaller), and thin-client FoV frames 586-680 KB.
 */
std::size_t modelFrameBytes(const FrameSizeSpec &spec);

} // namespace coterie::image

