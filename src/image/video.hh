/**
 * @file
 * Sequence (video) codec: I-frames plus predicted P-frames.
 *
 * The Coterie server pre-encodes far-BE panoramas of neighbouring grid
 * points as a video (the paper uses x264). Consecutive far-BE frames
 * are highly similar — that is the whole premise — so P-frames that
 * code only the difference against the previously reconstructed frame
 * compress far better than independent stills. Built on the same
 * plane-level Haar/quantisation pipeline as the still codec.
 */

#pragma once

#include <vector>

#include "image/codec.hh"

namespace coterie::image {

/** Frame type within an encoded sequence. */
enum class FrameType : std::uint8_t { Intra, Predicted };

/** One encoded frame of a sequence. */
struct EncodedVideoFrame
{
    FrameType type = FrameType::Intra;
    std::vector<std::uint8_t> bytes;

    std::size_t sizeBytes() const { return bytes.size(); }
};

/** An encoded sequence. */
struct EncodedVideo
{
    int width = 0;
    int height = 0;
    CodecParams params;
    int gopLength = 8; ///< an I-frame every gopLength frames
    std::vector<EncodedVideoFrame> frames;

    std::size_t totalBytes() const;
};

/** Video encoding options. */
struct VideoParams
{
    CodecParams codec{};
    int gopLength = 8;
};

/** Encode a sequence of equally-sized frames. */
EncodedVideo encodeVideo(const std::vector<Image> &frames,
                         const VideoParams &params = {});

/** Decode the full sequence. */
std::vector<Image> decodeVideo(const EncodedVideo &video);

} // namespace coterie::image

