/**
 * @file
 * Bounding-volume hierarchy over world objects, used by the renderer
 * (closest-hit ray casts) and by radius queries. Median-split build,
 * iterative stack traversal.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "geom/intersect.hh"
#include "geom/ray.hh"
#include "world/object.hh"

namespace coterie::world {

/**
 * Static BVH. Leaves hold small runs of object indices; inner nodes are
 * laid out in a flat array (child indices), friendly to iterative
 * traversal.
 */
class Bvh
{
  public:
    /** Build over the given objects (indices refer into this vector). */
    explicit Bvh(const std::vector<WorldObject> &objects);

    /**
     * Closest intersection along the ray within [ray.tMin, ray.tMax],
     * respecting per-ray interval clipping (this is how near/far BE
     * separation by cutoff radius is implemented).
     */
    geom::Hit closestHit(const geom::Ray &ray) const;

    /** Any-hit predicate (shadow rays). */
    bool anyHit(const geom::Ray &ray) const;

    /** Ids of objects whose AABB intersects the XZ disc (cylinder). */
    std::vector<std::uint32_t> queryDisc(geom::Vec2 center,
                                         double radius) const;

    std::size_t nodeCount() const { return nodes_.size(); }

  private:
    struct Node
    {
        geom::Aabb box;
        std::int32_t left = -1;   // inner: child index; leaf: first item
        std::int32_t right = -1;  // inner: child index; leaf: -1
        std::int32_t count = 0;   // leaf: number of items; inner: 0
    };

    std::int32_t build(std::vector<std::uint32_t> &items, std::size_t begin,
                       std::size_t end);
    bool intersectObject(const geom::Ray &ray, const WorldObject &obj,
                         double &t, geom::Vec3 &normal) const;

    const std::vector<WorldObject> &objects_;
    std::vector<Node> nodes_;
    std::vector<std::uint32_t> items_;
};

} // namespace coterie::world

