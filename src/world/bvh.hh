/**
 * @file
 * Bounding-volume hierarchy over world objects, used by the renderer
 * (closest-hit ray casts) and by radius queries.
 *
 * Two build policies behind one flattened node layout:
 *  - `BinnedSah` (default): binned surface-area-heuristic splits — the
 *    production build, minimizing expected traversal cost.
 *  - `Median`: the original widest-axis median split, kept for A/B
 *    benchmarking (bench_render) and equivalence testing.
 *
 * Nodes are emitted in depth-first order, so a node's left child is
 * always the next array slot and only the right-child index is stored;
 * traversal descends the near child first using the split axis and the
 * ray-direction sign (front-to-back), pruning with a precomputed
 * inverse-direction slab test against the best hit so far. Closest-hit
 * results are *build-policy independent*: acceptance breaks equal-t
 * ties by lower object id, so SAH and median trees return bit-identical
 * hits (verified by tests/bvh_test.cc).
 */

#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "geom/intersect.hh"
#include "geom/ray.hh"
#include "world/object.hh"

namespace coterie::world {

/** How the BVH chooses split planes. */
enum class BvhBuildPolicy
{
    Median,    ///< widest-axis median of object centers (legacy)
    BinnedSah, ///< binned surface-area heuristic (default)
};

/**
 * Static BVH. Leaves hold small runs of object indices; inner nodes are
 * laid out in a flat depth-first array (left child implicit at +1),
 * friendly to iterative traversal.
 */
class Bvh
{
  public:
    /** Build over the given objects (indices refer into this vector). */
    explicit Bvh(const std::vector<WorldObject> &objects,
                 BvhBuildPolicy policy = BvhBuildPolicy::BinnedSah);

    /**
     * Closest intersection along the ray within [ray.tMin, ray.tMax],
     * respecting per-ray interval clipping (this is how near/far BE
     * separation by cutoff radius is implemented). Equal-t ties resolve
     * to the lower object id, making the result independent of build
     * policy and traversal order.
     */
    geom::Hit closestHit(const geom::Ray &ray) const;

    /**
     * Closest hit for a 4-lane ray packet (shared origin + clip
     * interval, SoA directions): one traversal walks the tree for all
     * lanes, testing each node's slabs across lanes in one vector op
     * and pruning per lane against that lane's best hit. Leaf
     * primitives are tested per active lane from the SoA leaf arrays
     * with the exact scalar accept rule (equal-t ties to the lower
     * object id), so every lane's Hit is bit-identical to
     * `closestHit` on that lane's ray (asserted by tests/bvh_test.cc).
     */
    void closestHitPacket(const geom::RayPacket &pack,
                          geom::Hit out[geom::RayPacket::kLanes]) const;

    /** Any-hit predicate (shadow rays); near-to-far, first hit wins. */
    bool anyHit(const geom::Ray &ray) const;

    /**
     * The pre-overhaul traversal, preserved verbatim as the honest
     * baseline: unordered child descent and a per-node division-based
     * slab test (geom::rayHitsAabb), no front-to-back ordering, no id
     * tie-break. Combined with a `Median` build this reproduces the
     * seed renderer's hot path. Only bench_render's A/B and the
     * equivalence tests call it — the renderer always uses closestHit.
     */
    geom::Hit closestHitSeedBaseline(const geom::Ray &ray) const;

    /**
     * Visit ids of objects whose AABB intersects the XZ disc
     * (cylinder), in deterministic depth-first traversal order. The
     * allocation-free path for hot callers (cost model, partitioner).
     */
    template <typename Fn>
    void queryDisc(geom::Vec2 center, double radius, Fn &&fn) const;

    /** Ids of objects whose AABB intersects the XZ disc (cylinder). */
    std::vector<std::uint32_t> queryDisc(geom::Vec2 center,
                                         double radius) const;

    std::size_t nodeCount() const { return nodes_.size(); }
    BvhBuildPolicy policy() const { return policy_; }

    /**
     * Per-thread traversal counters (nodes visited / leaf primitive
     * tests by closestHit + anyHit on the calling thread). Reading
     * resets the thread's counters; the renderer drains them per row
     * chunk into `bvh.nodes_visited` / `bvh.leaf_tests`. Plain
     * thread-local accumulation — no atomics on the traversal path, no
     * obs dependency in world/.
     */
    struct TraversalStats
    {
        std::uint64_t nodesVisited = 0;
        std::uint64_t leafTests = 0;
    };
    static TraversalStats takeThreadStats();

  private:
    struct Node
    {
        geom::Aabb box;
        std::int32_t rightOrFirst = -1; ///< inner: right child; leaf: first item
        std::int32_t count = 0;         ///< leaf: item count; inner: 0
        std::uint8_t axis = 0;          ///< inner: split axis (orders children)
    };

    /** Per-object build scratch: bounds + center, computed once. */
    struct BuildItem
    {
        geom::Aabb box;
        geom::Vec3 center;
        std::uint32_t id = 0;
    };

    std::int32_t build(std::vector<BuildItem> &items, std::size_t begin,
                       std::size_t end, int depth);
    std::int32_t emitLeaf(const std::vector<BuildItem> &items,
                          std::size_t begin, std::size_t end,
                          const geom::Aabb &box);
    bool intersectObject(const geom::Ray &ray, const WorldObject &obj,
                         double &t, geom::Vec3 &normal) const;
    bool intersectObjectT(const geom::Ray &ray, const WorldObject &obj,
                          double &t) const;
    bool intersectLeafSlotT(const geom::Ray &ray, std::size_t slot,
                            double &t) const;

    const std::vector<WorldObject> &objects_;
    BvhBuildPolicy policy_;
    std::vector<Node> nodes_;
    std::vector<std::uint32_t> items_;
    /**
     * Leaf-primitive SoA mirror of `items_`: shape tag, position, and
     * dimensions per leaf slot in traversal order. The packet leaf loop
     * reads these hot fields contiguously instead of gathering whole
     * WorldObject records (color, mesh metadata, ...) by object id.
     */
    struct LeafSoa
    {
        std::vector<std::uint8_t> shape;
        std::vector<double> px, py, pz;
        std::vector<double> dx, dy, dz;
    };
    LeafSoa leaf_;
};

template <typename Fn>
void
Bvh::queryDisc(geom::Vec2 center, double radius, Fn &&fn) const
{
    if (nodes_.empty())
        return;
    const double r2 = radius * radius;
    // Squared distance from the disc center to a box footprint in XZ.
    const auto footprintDistSq = [&](const geom::Aabb &box) {
        const double dx =
            std::max({box.lo.x - center.x, 0.0, center.x - box.hi.x});
        const double dz =
            std::max({box.lo.z - center.y, 0.0, center.y - box.hi.z});
        return dx * dx + dz * dz;
    };
    std::array<std::int32_t, 128> stack;
    int sp = 0;
    std::int32_t idx = 0;
    for (;;) {
        const Node &node = nodes_[idx];
        if (footprintDistSq(node.box) <= r2) {
            if (node.count > 0) {
                for (std::int32_t i = 0; i < node.count; ++i) {
                    const std::uint32_t obj_id =
                        items_[static_cast<std::size_t>(node.rightOrFirst +
                                                        i)];
                    if (footprintDistSq(objects_[obj_id].bounds()) <= r2)
                        fn(obj_id);
                }
            } else {
                stack[static_cast<std::size_t>(sp++)] = node.rightOrFirst;
                idx = idx + 1; // left child is adjacent in DFS order
                continue;
            }
        }
        if (sp == 0)
            break;
        idx = stack[static_cast<std::size_t>(--sp)];
    }
}

} // namespace coterie::world
