#include "world/world.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"
#include "support/rng.hh"
#include "world/bvh.hh"

namespace coterie::world {

using geom::Rect;
using geom::Vec2;
using geom::Vec3;

VirtualWorld::VirtualWorld(std::string name, Rect bounds,
                           TerrainParams terrain, SceneType type)
    : name_(std::move(name)), bounds_(bounds), terrain_(terrain), type_(type)
{
    COTERIE_ASSERT(bounds.width() > 0 && bounds.height() > 0,
                   "degenerate world bounds");
}

VirtualWorld::~VirtualWorld() = default;

VirtualWorld::VirtualWorld(VirtualWorld &&other) noexcept
    : name_(std::move(other.name_)), bounds_(other.bounds_),
      terrain_(other.terrain_), type_(other.type_),
      eyeHeight_(other.eyeHeight_), objects_(std::move(other.objects_))
{
    if (other.bvh_) {
        bvh_ = std::make_unique<Bvh>(objects_, other.bvh_->policy());
        other.bvh_.reset();
    }
}

VirtualWorld &
VirtualWorld::operator=(VirtualWorld &&other) noexcept
{
    if (this != &other) {
        name_ = std::move(other.name_);
        bounds_ = other.bounds_;
        terrain_ = other.terrain_;
        type_ = other.type_;
        eyeHeight_ = other.eyeHeight_;
        objects_ = std::move(other.objects_);
        bvh_.reset();
        if (other.bvh_) {
            bvh_ = std::make_unique<Bvh>(objects_, other.bvh_->policy());
            other.bvh_.reset();
        }
    }
    return *this;
}

std::uint32_t
VirtualWorld::addObject(WorldObject obj)
{
    COTERIE_ASSERT(!finalized(), "addObject after finalize");
    obj.id = static_cast<std::uint32_t>(objects_.size());
    objects_.push_back(obj);
    return obj.id;
}

void
VirtualWorld::finalize(BvhBuildPolicy policy)
{
    COTERIE_ASSERT(!finalized(), "double finalize");
    bvh_ = std::make_unique<Bvh>(objects_, policy);
}

void
VirtualWorld::rebuildIndex(BvhBuildPolicy policy)
{
    COTERIE_ASSERT(finalized(), "rebuildIndex before finalize");
    bvh_ = std::make_unique<Bvh>(objects_, policy);
}

const WorldObject &
VirtualWorld::object(std::uint32_t id) const
{
    COTERIE_ASSERT(id < objects_.size(), "bad object id ", id);
    return objects_[id];
}

const Bvh &
VirtualWorld::bvh() const
{
    COTERIE_ASSERT(finalized(), "world not finalized");
    return *bvh_;
}

image::Rgb
VirtualWorld::skyColor(double pitch) const
{
    if (type_ == SceneType::Indoor) {
        // Flat interior ceiling/ambient.
        return {58, 56, 60};
    }
    // Horizon-to-zenith gradient.
    const double t = std::clamp(pitch / (M_PI / 2.0), 0.0, 1.0);
    const auto mix = [](int a, int b, double f) {
        return static_cast<std::uint8_t>(a + (b - a) * f);
    };
    return {mix(190, 90, t), mix(210, 140, t), mix(235, 220, t)};
}

std::vector<std::uint32_t>
VirtualWorld::objectsWithin(Vec2 center, double radius) const
{
    return bvh().queryDisc(center, radius);
}

std::uint64_t
VirtualWorld::nearSetSignature(Vec2 center, double radius,
                               double minAngularSize) const
{
    auto ids = objectsWithin(center, radius);
    std::sort(ids.begin(), ids.end());
    std::uint64_t sig = 0x5eed;
    for (std::uint32_t id : ids) {
        const WorldObject &obj = objects_[id];
        const double dist = std::max(obj.footprint().distance(center), 1.0);
        if (obj.maxDimension() / dist < minAngularSize)
            continue;
        sig = hashCombine(sig, hashMix(id));
    }
    return sig;
}

double
VirtualWorld::trianglesWithin(Vec2 center, double radius) const
{
    // Callback query: no id-vector allocation, summed in traversal
    // order (the shared order contract of forEachObjectWithin).
    double total = terrain_.trianglesWithin(center, radius);
    forEachObjectWithin(center, radius, [&](std::uint32_t id) {
        total += objects_[id].triangles;
    });
    return total;
}

double
VirtualWorld::triangleDensity(Vec2 center, double radius) const
{
    const double area = M_PI * radius * radius;
    double object_tris = 0.0;
    forEachObjectWithin(center, radius, [&](std::uint32_t id) {
        object_tris += objects_[id].triangles;
    });
    return area > 0.0 ? object_tris / area : 0.0;
}

Vec3
VirtualWorld::eyePosition(Vec2 ground) const
{
    return geom::lift(ground, terrain_.foothold(ground) + eyeHeight_);
}

} // namespace coterie::world
