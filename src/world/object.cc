#include "world/object.hh"

#include <algorithm>

#include "support/logging.hh"

namespace coterie::world {

const char *
assetKindName(AssetKind kind)
{
    switch (kind) {
      case AssetKind::Tree:      return "tree";
      case AssetKind::Rock:      return "rock";
      case AssetKind::Building:  return "building";
      case AssetKind::Prop:      return "prop";
      case AssetKind::Vehicle:   return "vehicle";
      case AssetKind::Stand:     return "stand";
      case AssetKind::Wall:      return "wall";
      case AssetKind::Furniture: return "furniture";
      case AssetKind::Person:    return "person";
    }
    return "?";
}

double
WorldObject::maxDimension() const
{
    switch (shape) {
      case Shape::Sphere:
        return 2.0 * dims.x;
      case Shape::Box:
        return std::max({dims.x, dims.y, dims.z});
      case Shape::CylinderY:
        return std::max(2.0 * dims.x, dims.y);
    }
    COTERIE_PANIC("unknown shape");
}

geom::Aabb
WorldObject::bounds() const
{
    using geom::Vec3;
    switch (shape) {
      case Shape::Sphere: {
        const double r = dims.x;
        return {position - Vec3{r, r, r}, position + Vec3{r, r, r}};
      }
      case Shape::Box: {
        const Vec3 half = dims * 0.5;
        return {position - half, position + half};
      }
      case Shape::CylinderY: {
        const double r = dims.x;
        return {position - Vec3{r, 0.0, r},
                position + Vec3{r, dims.y, r}};
      }
    }
    COTERIE_PANIC("unknown shape");
}

} // namespace coterie::world
