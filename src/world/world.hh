/**
 * @file
 * The virtual game world: static objects + terrain + bounds, with the
 * spatial queries the Coterie pipeline needs (objects / triangles within
 * a radius, near-BE object-set signatures, density sampling).
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "geom/region.hh"
#include "image/image.hh"
#include "world/bvh.hh"
#include "world/object.hh"
#include "world/terrain.hh"

namespace coterie::world {

/** Indoor worlds render a ceiling-colored "sky" and flat floors. */
enum class SceneType { Outdoor, Indoor };

/**
 * An immutable static scene. Build with addObject() then finalize();
 * spatial queries and rendering require a finalized world.
 */
class VirtualWorld
{
  public:
    VirtualWorld(std::string name, geom::Rect bounds, TerrainParams terrain,
                 SceneType type = SceneType::Outdoor);
    ~VirtualWorld();

    /** Moves rebuild the spatial index: the BVH refers to the moved
     *  objects vector, so it cannot be transplanted wholesale. */
    VirtualWorld(VirtualWorld &&other) noexcept;
    VirtualWorld &operator=(VirtualWorld &&other) noexcept;
    VirtualWorld(const VirtualWorld &) = delete;
    VirtualWorld &operator=(const VirtualWorld &) = delete;

    const std::string &name() const { return name_; }
    const geom::Rect &bounds() const { return bounds_; }
    SceneType sceneType() const { return type_; }
    const Terrain &terrain() const { return terrain_; }

    /** Add an object (before finalize); assigns and returns its id. */
    std::uint32_t addObject(WorldObject obj);

    /** Build the spatial index; no more objects may be added after. */
    void finalize(BvhBuildPolicy policy = BvhBuildPolicy::BinnedSah);
    bool finalized() const { return bvh_ != nullptr; }

    /**
     * Rebuild the spatial index under a different build policy
     * (requires a finalized world). Closest-hit results are policy
     * independent — this exists for A/B benchmarking (bench_render)
     * and the BVH equivalence tests.
     */
    void rebuildIndex(BvhBuildPolicy policy);

    const std::vector<WorldObject> &objects() const { return objects_; }
    const WorldObject &object(std::uint32_t id) const;
    const Bvh &bvh() const;

    /** Sky / ceiling color for a view direction pitch in [-pi/2, pi/2]. */
    image::Rgb skyColor(double pitch) const;

    /**
     * Ids of objects whose bounds intersect the vertical cylinder of
     * @p radius around @p center — the paper's "near BE object set".
     */
    std::vector<std::uint32_t> objectsWithin(geom::Vec2 center,
                                             double radius) const;

    /**
     * Allocation-free variant: visit the ids in deterministic BVH
     * traversal order. Floating-point reductions over the visited set
     * (cost model, density sums) must all use this order so their
     * results stay mutually bit-identical.
     */
    template <typename Fn>
    void
    forEachObjectWithin(geom::Vec2 center, double radius, Fn &&fn) const
    {
        bvh().queryDisc(center, radius, std::forward<Fn>(fn));
    }

    /**
     * Order-independent signature of the *visually significant* near-BE
     * object set (frame-cache lookup criterion 3). Objects whose
     * angular size from the viewpoint is below a small threshold are
     * excluded: a clip-plane sliver of a distant barrel cannot leave a
     * visible hole after the merge, and including such objects would
     * churn the signature on every sub-centimeter move.
     */
    std::uint64_t nearSetSignature(geom::Vec2 center, double radius,
                                   double minAngularSize = 0.25) const;

    /**
     * Total triangle count within @p radius of @p center: full triangle
     * counts of intersecting objects plus tessellated terrain triangles.
     * This is the paper's object-density measure (triangles are the
     * render-cost currency).
     */
    double trianglesWithin(geom::Vec2 center, double radius) const;

    /** Object triangle density (triangles per m^2) around a point. */
    double triangleDensity(geom::Vec2 center, double radius) const;

    /** Camera eye height above the terrain foothold (meters). */
    double eyeHeight() const { return eyeHeight_; }
    void setEyeHeight(double h) { eyeHeight_ = h; }

    /** Eye position (3D) for a player standing at @p ground. */
    geom::Vec3 eyePosition(geom::Vec2 ground) const;

  private:
    std::string name_;
    geom::Rect bounds_;
    Terrain terrain_;
    SceneType type_;
    double eyeHeight_ = 1.7;
    std::vector<WorldObject> objects_;
    std::unique_ptr<Bvh> bvh_;
};

} // namespace coterie::world

