/**
 * @file
 * World objects ("assets" in Unity terminology): renderable primitives
 * carrying a triangle count used by the device render-cost model and the
 * object-density queries behind the adaptive cutoff scheme.
 */

#pragma once

#include <cstdint>
#include <string>

#include "geom/aabb.hh"
#include "geom/vec.hh"
#include "image/image.hh"

namespace coterie::world {

/** Geometric primitive used to render the object. */
enum class Shape : std::uint8_t
{
    Sphere,     ///< center + radius
    Box,        ///< axis-aligned box
    CylinderY,  ///< vertical cylinder: base center, radius, height
};

/** Coarse semantic category; drives triangle counts and colors. */
enum class AssetKind : std::uint8_t
{
    Tree,
    Rock,
    Building,
    Prop,       // barrels, fences, small furniture
    Vehicle,
    Stand,      // stadium stands / large structures
    Wall,       // indoor walls / ceiling slabs
    Furniture,  // tables, lanes, large indoor items
    Person,     // static crowd figures
};

const char *assetKindName(AssetKind kind);

/** A single static world object. */
struct WorldObject
{
    std::uint32_t id = 0;
    Shape shape = Shape::Box;
    AssetKind kind = AssetKind::Prop;

    /**
     * Placement. For Sphere: center and dims.x = radius. For Box: center
     * and dims = full extents. For CylinderY: center of the base circle
     * (y = base height), dims.x = radius, dims.y = height.
     */
    geom::Vec3 position;
    geom::Vec3 dims;

    image::Rgb color{128, 128, 128};

    /** Mesh complexity of the underlying asset (render-cost model). */
    std::uint32_t triangles = 100;

    /** World-space bounding box. */
    geom::Aabb bounds() const;

    /** Largest world-space extent (meters), for visibility tests. */
    double maxDimension() const;

    /** Ground-plane footprint center. */
    geom::Vec2 footprint() const { return position.ground(); }
};

} // namespace coterie::world

