/**
 * @file
 * Procedural heightfield terrain.
 *
 * The paper adjusts camera height per-location with a ray-cast "foothold"
 * query against the terrain; we reproduce that with an analytic value-
 * noise heightfield that also participates in rendering (ground pixels)
 * and the triangle-density model (terrain tessellation triangles count
 * toward near-BE render cost).
 */

#pragma once

#include <cstdint>
#include <limits>
#include <optional>

#include "geom/ray.hh"
#include "geom/region.hh"
#include "geom/vec.hh"
#include "image/image.hh"

namespace coterie::world {

/** Terrain configuration. */
struct TerrainParams
{
    std::uint64_t seed = 1;
    double amplitude = 3.0;      ///< peak-to-mean height variation (m)
    double featureScale = 60.0;  ///< horizontal noise wavelength (m)
    int octaves = 3;             ///< fractal octaves
    /** Triangles per square meter of the tessellated ground mesh. */
    double trianglesPerM2 = 8.0;
    /** Flat floor (indoor scenes). */
    bool flat = false;
};

/**
 * Continuous heightfield over the ground plane, built from fractal
 * value noise. Deterministic in its seed.
 */
class Terrain
{
  public:
    explicit Terrain(const TerrainParams &params = {});

    const TerrainParams &params() const { return params_; }

    /** Ground elevation at a ground-plane point. */
    double heightAt(geom::Vec2 p) const;

    /** Outward surface normal at a ground-plane point. */
    geom::Vec3 normalAt(geom::Vec2 p) const;

    /**
     * Foothold query: the paper ray-traces downward to place the camera.
     * Returns the standing elevation (== heightAt for a heightfield).
     */
    double foothold(geom::Vec2 p) const { return heightAt(p); }

    /**
     * March a ray against the heightfield; returns hit distance, or
     * nullopt if the ray escapes. Step-marched with refinement; the
     * noise evaluations run four schedule points at a time through the
     * SIMD hash kernel, bit-identical to `intersectReference` (the
     * integer hash core is exact and the FP glue stays scalar —
     * tests/terrain_test.cc asserts equality).
     *
     * @p abortBeyond lets the renderer stop marching once the sample
     * distance exceeds a known closer object hit: the march aborts only
     * at a sample with t > abortBeyond that found no surface crossing,
     * and any crossing the full march could still find would bisect to
     * a root beyond that sample — i.e. beyond @p abortBeyond — so the
     * caller's object-vs-terrain resolution is unchanged. Infinity
     * (the default) reproduces the uncapped march exactly.
     */
    std::optional<double>
    intersect(const geom::Ray &ray, double maxDist,
              double abortBeyond =
                  std::numeric_limits<double>::infinity()) const;

    /**
     * The seed per-sample scalar march, preserved verbatim as the
     * equivalence baseline for tests and bench_render's seed pipeline.
     */
    std::optional<double> intersectReference(const geom::Ray &ray,
                                             double maxDist) const;

    /** Ground albedo at a point (height/moisture-tinted). */
    image::Rgb colorAt(geom::Vec2 p) const;

    /** Terrain mesh triangles inside a disc of @p radius around @p p. */
    double trianglesWithin(geom::Vec2 p, double radius) const;

  private:
    double noise2(double x, double y, std::uint64_t salt) const;
    double fractal(geom::Vec2 p) const;

    TerrainParams params_;
};

} // namespace coterie::world

