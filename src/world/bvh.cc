#include "world/bvh.hh"

#include <cmath>
#include <limits>

#include "support/logging.hh"
#include "support/simd.hh"

namespace coterie::world {

using geom::Aabb;
using geom::Hit;
using geom::Ray;
using geom::SlabRay;
using geom::Vec2;
using geom::Vec3;

namespace {

constexpr std::size_t kLeafSize = 4;
/** SAH bin count: 16 bins recover nearly all of exact-sweep quality. */
constexpr int kSahBins = 16;
/**
 * Builder depth cap. Degenerate inputs (many coincident centers) can
 * drive lopsided splits; past this depth the node becomes a leaf, which
 * also bounds the traversal stacks (one pushed frame per level).
 */
constexpr int kMaxDepth = 40;

/** Thread-local traversal counters; drained by Bvh::takeThreadStats. */
thread_local Bvh::TraversalStats tlsStats;

double
axisOf(const Vec3 &v, int axis)
{
    if (axis == 0)
        return v.x;
    if (axis == 1)
        return v.y;
    return v.z;
}

int
widestAxis(const Vec3 &extent)
{
    int axis = 0;
    if (extent.y > extent.x)
        axis = 1;
    if (extent.z > (axis == 0 ? extent.x : extent.y))
        axis = 2;
    return axis;
}

} // namespace

Bvh::Bvh(const std::vector<WorldObject> &objects, BvhBuildPolicy policy)
    : objects_(objects), policy_(policy)
{
    if (objects.empty())
        return;
    std::vector<BuildItem> items(objects.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
        items[i].box = objects[i].bounds();
        items[i].center = items[i].box.center();
        items[i].id = static_cast<std::uint32_t>(i);
    }
    nodes_.reserve(2 * items.size());
    items_.reserve(items.size());
    build(items, 0, items.size(), 0);
    // Leaf-slot SoA mirror for the packet traversal (same order as
    // items_, so a leaf's [rightOrFirst, rightOrFirst + count) range
    // indexes both).
    leaf_.shape.resize(items_.size());
    leaf_.px.resize(items_.size());
    leaf_.py.resize(items_.size());
    leaf_.pz.resize(items_.size());
    leaf_.dx.resize(items_.size());
    leaf_.dy.resize(items_.size());
    leaf_.dz.resize(items_.size());
    for (std::size_t s = 0; s < items_.size(); ++s) {
        const WorldObject &obj = objects_[items_[s]];
        leaf_.shape[s] = static_cast<std::uint8_t>(obj.shape);
        leaf_.px[s] = obj.position.x;
        leaf_.py[s] = obj.position.y;
        leaf_.pz[s] = obj.position.z;
        leaf_.dx[s] = obj.dims.x;
        leaf_.dy[s] = obj.dims.y;
        leaf_.dz[s] = obj.dims.z;
    }
}

std::int32_t
Bvh::emitLeaf(const std::vector<BuildItem> &items, std::size_t begin,
              std::size_t end, const Aabb &box)
{
    const auto node_index = static_cast<std::int32_t>(nodes_.size());
    nodes_.emplace_back();
    Node &leaf = nodes_.back();
    leaf.box = box;
    leaf.rightOrFirst = static_cast<std::int32_t>(items_.size());
    leaf.count = static_cast<std::int32_t>(end - begin);
    for (std::size_t i = begin; i < end; ++i)
        items_.push_back(items[i].id);
    return node_index;
}

std::int32_t
Bvh::build(std::vector<BuildItem> &items, std::size_t begin,
           std::size_t end, int depth)
{
    Aabb box;
    for (std::size_t i = begin; i < end; ++i)
        box.extend(items[i].box);

    const std::size_t n = end - begin;
    if (n <= kLeafSize || depth >= kMaxDepth)
        return emitLeaf(items, begin, end, box);

    // Split selection. Both policies produce (axis, mid); fall through
    // to a leaf only when no plane separates anything (all centers
    // coincident).
    Aabb centroidBox;
    for (std::size_t i = begin; i < end; ++i)
        centroidBox.extend(items[i].center);
    const Vec3 cext = centroidBox.extent();

    int axis;
    std::size_t mid = begin;
    if (cext.x <= 0.0 && cext.y <= 0.0 && cext.z <= 0.0) {
        // Fully degenerate: every center identical. Split down the
        // middle by current order so the tree stays balanced.
        axis = 0;
        mid = begin + n / 2;
    } else if (policy_ == BvhBuildPolicy::Median) {
        // Widest axis of the node bounds, median of object centers —
        // the original build.
        axis = widestAxis(box.extent());
        mid = begin + n / 2;
        std::nth_element(
            items.begin() + static_cast<std::ptrdiff_t>(begin),
            items.begin() + static_cast<std::ptrdiff_t>(mid),
            items.begin() + static_cast<std::ptrdiff_t>(end),
            [axis](const BuildItem &a, const BuildItem &b) {
                return axisOf(a.center, axis) < axisOf(b.center, axis);
            });
    } else {
        // Binned SAH over the widest *centroid* axis (width > 0 here:
        // the fully-degenerate case was handled above).
        axis = widestAxis(cext);
        const double lo = axisOf(centroidBox.lo, axis);
        const double invWidth = kSahBins / axisOf(cext, axis);
        const auto binOf = [&](const BuildItem &item) {
            const auto bin = static_cast<int>(
                (axisOf(item.center, axis) - lo) * invWidth);
            return std::clamp(bin, 0, kSahBins - 1);
        };
        int counts[kSahBins] = {};
        Aabb bounds[kSahBins];
        for (std::size_t i = begin; i < end; ++i) {
            const int b = binOf(items[i]);
            ++counts[b];
            bounds[b].extend(items[i].box);
        }
        // Suffix sweep: cost of everything right of each plane. Empty
        // bins are skipped — extending with an invalid Aabb would
        // poison the accumulator with its infinite corners.
        double rightArea[kSahBins] = {};
        int rightCount[kSahBins] = {};
        {
            Aabb acc;
            int cnt = 0;
            for (int b = kSahBins - 1; b >= 1; --b) {
                if (counts[b] > 0)
                    acc.extend(bounds[b]);
                cnt += counts[b];
                rightArea[b] = acc.surfaceArea();
                rightCount[b] = cnt;
            }
        }
        // Prefix sweep: pick the plane minimizing
        // N_L * SA_L + N_R * SA_R.
        double bestCost = std::numeric_limits<double>::infinity();
        int bestPlane = -1;
        {
            Aabb acc;
            int cnt = 0;
            for (int b = 0; b < kSahBins - 1; ++b) {
                if (counts[b] > 0)
                    acc.extend(bounds[b]);
                cnt += counts[b];
                if (cnt == 0 || rightCount[b + 1] == 0)
                    continue;
                const double cost = cnt * acc.surfaceArea() +
                                    rightCount[b + 1] * rightArea[b + 1];
                if (cost < bestCost) {
                    bestCost = cost;
                    bestPlane = b;
                }
            }
        }
        if (bestPlane < 0) {
            // All occupied bins collapse to one: median fallback.
            mid = begin + n / 2;
            std::nth_element(
                items.begin() + static_cast<std::ptrdiff_t>(begin),
                items.begin() + static_cast<std::ptrdiff_t>(mid),
                items.begin() + static_cast<std::ptrdiff_t>(end),
                [axis](const BuildItem &a, const BuildItem &b) {
                    return axisOf(a.center, axis) <
                           axisOf(b.center, axis);
                });
        } else {
            const auto split = std::partition(
                items.begin() + static_cast<std::ptrdiff_t>(begin),
                items.begin() + static_cast<std::ptrdiff_t>(end),
                [&](const BuildItem &item) {
                    return binOf(item) <= bestPlane;
                });
            mid = static_cast<std::size_t>(split - items.begin());
        }
    }
    if (mid <= begin || mid >= end)
        mid = begin + n / 2; // never recurse on an empty side

    const auto node_index = static_cast<std::int32_t>(nodes_.size());
    nodes_.emplace_back();
    build(items, begin, mid, depth + 1); // left child lands at +1
    const std::int32_t right = build(items, mid, end, depth + 1);
    Node &node = nodes_[static_cast<std::size_t>(node_index)];
    node.box = box;
    node.rightOrFirst = right;
    node.count = 0;
    node.axis = static_cast<std::uint8_t>(axis);
    return node_index;
}

bool
Bvh::intersectObjectT(const Ray &ray, const WorldObject &obj,
                      double &t) const
{
    // Distance-only variant for candidate testing: skips all normal
    // work (the sphere's normalize() sqrt in particular). The winner's
    // normal is recomputed once after traversal — intersection is a
    // pure function of (ray, object), so the recomputed t and normal
    // are bit-identical to what the inline computation produced.
    std::optional<double> hit;
    switch (obj.shape) {
      case Shape::Sphere:
        hit = geom::intersectSphere(ray, obj.position, obj.dims.x);
        break;
      case Shape::Box:
        hit = geom::intersectBox(ray,
                                 Aabb{obj.position - obj.dims * 0.5,
                                      obj.position + obj.dims * 0.5});
        break;
      case Shape::CylinderY:
        hit = geom::intersectCylinderY(ray, obj.position, obj.dims.x,
                                       obj.dims.y);
        break;
    }
    if (!hit)
        return false;
    t = *hit;
    return true;
}

bool
Bvh::intersectObject(const Ray &ray, const WorldObject &obj, double &t,
                     Vec3 &normal) const
{
    std::optional<double> hit;
    Vec3 n{0.0, 1.0, 0.0};
    switch (obj.shape) {
      case Shape::Sphere:
        hit = geom::intersectSphere(ray, obj.position, obj.dims.x);
        if (hit)
            n = (ray.at(*hit) - obj.position).normalized();
        break;
      case Shape::Box:
        hit = geom::intersectBox(
            ray, Aabb{obj.position - obj.dims * 0.5,
                      obj.position + obj.dims * 0.5}, &n);
        break;
      case Shape::CylinderY:
        hit = geom::intersectCylinderY(ray, obj.position, obj.dims.x,
                                       obj.dims.y, &n);
        break;
    }
    if (!hit)
        return false;
    t = *hit;
    normal = n;
    return true;
}

Hit
Bvh::closestHit(const Ray &ray) const
{
    Hit best;
    best.t = ray.tMax;
    if (nodes_.empty())
        return best;

    const SlabRay slab = geom::makeSlabRay(ray);
    std::uint64_t visited = 0;
    std::uint64_t leafTests = 0;
    std::array<std::int32_t, 128> stack;
    int sp = 0;
    std::int32_t idx = 0;
    for (;;) {
        const Node &node = nodes_[static_cast<std::size_t>(idx)];
        ++visited;
        // Strict prune (> not >=): a box entered exactly at best.t may
        // still hold an equal-t lower-id winner.
        if (geom::slabRayHitsAabb(slab, node.box, best.t)) {
            if (node.count > 0) {
                for (std::int32_t i = 0; i < node.count; ++i) {
                    const std::uint32_t obj_id = items_[
                        static_cast<std::size_t>(node.rightOrFirst + i)];
                    ++leafTests;
                    double t;
                    if (!intersectObjectT(ray, objects_[obj_id], t))
                        continue;
                    // Deterministic tie-break: equal t resolves to the
                    // lower object id. best.valid() keeps the legacy
                    // edge semantics — a hit exactly at ray.tMax (the
                    // initial best.t) is still rejected.
                    if (t < best.t ||
                        (t == best.t && best.valid() &&
                         obj_id < best.objectId)) {
                        best.t = t;
                        best.objectId = obj_id;
                    }
                }
            } else {
                std::int32_t near = idx + 1;
                std::int32_t far = node.rightOrFirst;
                if (slab.neg[node.axis])
                    std::swap(near, far);
                COTERIE_ASSERT(sp < static_cast<int>(stack.size()),
                               "BVH traversal stack overflow");
                stack[static_cast<std::size_t>(sp++)] = far;
                idx = near;
                continue;
            }
        }
        if (sp == 0)
            break;
        idx = stack[static_cast<std::size_t>(--sp)];
    }
    tlsStats.nodesVisited += visited;
    tlsStats.leafTests += leafTests;
    if (best.valid()) {
        // One full intersection for the winner fills point + normal;
        // candidates above paid only for distance.
        double t;
        Vec3 normal;
        const bool ok =
            intersectObject(ray, objects_[best.objectId], t, normal);
        COTERIE_ASSERT(ok && t == best.t,
                       "winner re-intersection diverged");
        best.point = ray.at(t);
        best.normal = normal;
    }
    return best;
}

bool
Bvh::intersectLeafSlotT(const Ray &ray, std::size_t slot, double &t) const
{
    // SoA twin of intersectObjectT: identical geom:: calls on the same
    // position/dims doubles, so results match the AoS path bit for bit.
    std::optional<double> hit;
    const Vec3 pos{leaf_.px[slot], leaf_.py[slot], leaf_.pz[slot]};
    switch (static_cast<Shape>(leaf_.shape[slot])) {
      case Shape::Sphere:
        hit = geom::intersectSphere(ray, pos, leaf_.dx[slot]);
        break;
      case Shape::Box: {
        const Vec3 dims{leaf_.dx[slot], leaf_.dy[slot], leaf_.dz[slot]};
        hit = geom::intersectBox(
            ray, Aabb{pos - dims * 0.5, pos + dims * 0.5});
        break;
      }
      case Shape::CylinderY:
        hit = geom::intersectCylinderY(ray, pos, leaf_.dx[slot],
                                       leaf_.dy[slot]);
        break;
    }
    if (!hit)
        return false;
    t = *hit;
    return true;
}

namespace {

using support::simd::F64x4;

/** Per-node packet slab state: shared origin splatted, lane inverses. */
struct PacketSlab
{
    F64x4 ox, oy, oz;
    F64x4 invX, invY, invZ;
    F64x4 tMin;
};

/**
 * The branchless slab test of geom::slabRayHitsAabb across all packet
 * lanes at once; @p limit carries each lane's current best hit t.
 * Returns the lane mask (bit l set when lane l's slab interval is
 * non-empty — same strict `<=` as the scalar test).
 */
inline int
packetSlabMask(const PacketSlab &s, const geom::Aabb &box, F64x4 limit)
{
    using support::simd::lanesLessEqual;
    using support::simd::vmax;
    using support::simd::vmin;
    const F64x4 tx0 = (F64x4::splat(box.lo.x) - s.ox) * s.invX;
    const F64x4 tx1 = (F64x4::splat(box.hi.x) - s.ox) * s.invX;
    const F64x4 ty0 = (F64x4::splat(box.lo.y) - s.oy) * s.invY;
    const F64x4 ty1 = (F64x4::splat(box.hi.y) - s.oy) * s.invY;
    const F64x4 tz0 = (F64x4::splat(box.lo.z) - s.oz) * s.invZ;
    const F64x4 tz1 = (F64x4::splat(box.hi.z) - s.oz) * s.invZ;
    const F64x4 tEnter = vmax(vmax(vmin(tx0, tx1), vmin(ty0, ty1)),
                              vmax(vmin(tz0, tz1), s.tMin));
    const F64x4 tExit = vmin(vmin(vmax(tx0, tx1), vmax(ty0, ty1)),
                             vmin(vmax(tz0, tz1), limit));
    return lanesLessEqual(tEnter, tExit);
}

} // namespace

void
Bvh::closestHitPacket(const geom::RayPacket &pack,
                      Hit out[geom::RayPacket::kLanes]) const
{
    constexpr int kL = geom::RayPacket::kLanes;
    for (int l = 0; l < kL; ++l) {
        out[l] = Hit{}; // same defaults as the scalar miss result
        out[l].t = pack.tMax;
    }
    if (nodes_.empty())
        return;

    PacketSlab slab;
    slab.ox = F64x4::splat(pack.origin.x);
    slab.oy = F64x4::splat(pack.origin.y);
    slab.oz = F64x4::splat(pack.origin.z);
    slab.invX = F64x4::load(pack.invX);
    slab.invY = F64x4::load(pack.invY);
    slab.invZ = F64x4::load(pack.invZ);
    slab.tMin = F64x4::splat(pack.tMin);

    Ray laneRays[kL];
    double bestT[kL];
    std::uint32_t bestId[kL];
    for (int l = 0; l < kL; ++l) {
        laneRays[l] = pack.lane(l);
        bestT[l] = pack.tMax;
        bestId[l] = UINT32_MAX;
    }

    std::uint64_t visited = 0;
    std::uint64_t leafTests = 0;
    std::array<std::int32_t, 128> stack;
    int sp = 0;
    std::int32_t idx = 0;
    for (;;) {
        const Node &node = nodes_[static_cast<std::size_t>(idx)];
        ++visited;
        // Per-lane strict prune against each lane's own best: the node
        // is entered when any lane still needs it, and the lane mask
        // gates the leaf tests below.
        const int mask = packetSlabMask(slab, node.box, F64x4::load(bestT));
        if (mask != 0) {
            if (node.count > 0) {
                for (std::int32_t i = 0; i < node.count; ++i) {
                    const auto slot =
                        static_cast<std::size_t>(node.rightOrFirst + i);
                    const std::uint32_t obj_id = items_[slot];
                    for (int l = 0; l < kL; ++l) {
                        if (!(mask & (1 << l)))
                            continue;
                        ++leafTests;
                        double t;
                        if (!intersectLeafSlotT(laneRays[l], slot, t))
                            continue;
                        // Scalar accept rule per lane: equal-t ties to
                        // the lower object id; a hit exactly at
                        // pack.tMax (the initial best) stays rejected.
                        if (t < bestT[l] ||
                            (t == bestT[l] && bestId[l] != UINT32_MAX &&
                             obj_id < bestId[l])) {
                            bestT[l] = t;
                            bestId[l] = obj_id;
                        }
                    }
                }
            } else {
                // Front-to-back by lane 0's direction sign; descent
                // order only affects node visits, never results (the
                // accept rule is traversal-order independent).
                std::int32_t near = idx + 1;
                std::int32_t far = node.rightOrFirst;
                if (pack.neg0[node.axis])
                    std::swap(near, far);
                COTERIE_ASSERT(sp < static_cast<int>(stack.size()),
                               "BVH traversal stack overflow");
                stack[static_cast<std::size_t>(sp++)] = far;
                idx = near;
                continue;
            }
        }
        if (sp == 0)
            break;
        idx = stack[static_cast<std::size_t>(--sp)];
    }
    tlsStats.nodesVisited += visited;
    tlsStats.leafTests += leafTests;

    for (int l = 0; l < kL; ++l) {
        out[l].t = bestT[l];
        out[l].objectId = bestId[l];
        if (bestId[l] == UINT32_MAX)
            continue;
        // One full intersection per winning lane fills point + normal.
        double t;
        Vec3 normal;
        const bool ok =
            intersectObject(laneRays[l], objects_[bestId[l]], t, normal);
        COTERIE_ASSERT(ok && t == bestT[l],
                       "packet winner re-intersection diverged");
        out[l].point = laneRays[l].at(t);
        out[l].normal = normal;
    }
}

Hit
Bvh::closestHitSeedBaseline(const Ray &ray) const
{
    Hit best;
    best.t = ray.tMax;
    if (nodes_.empty())
        return best;
    std::array<std::int32_t, 128> stack;
    int sp = 0;
    stack[sp++] = 0;
    while (sp > 0) {
        const std::int32_t idx = stack[static_cast<std::size_t>(--sp)];
        const Node &node = nodes_[static_cast<std::size_t>(idx)];
        if (!geom::rayHitsAabb(ray, node.box, best.t))
            continue;
        if (node.count > 0) {
            for (std::int32_t i = 0; i < node.count; ++i) {
                const std::uint32_t obj_id = items_[
                    static_cast<std::size_t>(node.rightOrFirst + i)];
                double t;
                Vec3 normal;
                if (intersectObject(ray, objects_[obj_id], t, normal) &&
                    t < best.t) {
                    best.t = t;
                    best.point = ray.at(t);
                    best.normal = normal;
                    best.objectId = obj_id;
                }
            }
        } else {
            COTERIE_ASSERT(sp + 2 <= static_cast<int>(stack.size()),
                           "BVH traversal stack overflow");
            stack[static_cast<std::size_t>(sp++)] = idx + 1;
            stack[static_cast<std::size_t>(sp++)] = node.rightOrFirst;
        }
    }
    return best;
}

bool
Bvh::anyHit(const Ray &ray) const
{
    if (nodes_.empty())
        return false;
    const SlabRay slab = geom::makeSlabRay(ray);
    std::uint64_t visited = 0;
    std::uint64_t leafTests = 0;
    std::array<std::int32_t, 128> stack;
    int sp = 0;
    std::int32_t idx = 0;
    bool found = false;
    for (;;) {
        const Node &node = nodes_[static_cast<std::size_t>(idx)];
        ++visited;
        if (geom::slabRayHitsAabb(slab, node.box, ray.tMax)) {
            if (node.count > 0) {
                for (std::int32_t i = 0; i < node.count; ++i) {
                    const std::uint32_t obj_id = items_[
                        static_cast<std::size_t>(node.rightOrFirst + i)];
                    ++leafTests;
                    double t;
                    if (intersectObjectT(ray, objects_[obj_id], t)) {
                        found = true;
                        break;
                    }
                }
                if (found)
                    break;
            } else {
                // Near-to-far descent: the first leaf hit terminates.
                std::int32_t near = idx + 1;
                std::int32_t far = node.rightOrFirst;
                if (slab.neg[node.axis])
                    std::swap(near, far);
                COTERIE_ASSERT(sp < static_cast<int>(stack.size()),
                               "BVH traversal stack overflow");
                stack[static_cast<std::size_t>(sp++)] = far;
                idx = near;
                continue;
            }
        }
        if (sp == 0)
            break;
        idx = stack[static_cast<std::size_t>(--sp)];
    }
    tlsStats.nodesVisited += visited;
    tlsStats.leafTests += leafTests;
    return found;
}

std::vector<std::uint32_t>
Bvh::queryDisc(Vec2 center, double radius) const
{
    std::vector<std::uint32_t> out;
    queryDisc(center, radius,
              [&](std::uint32_t obj_id) { out.push_back(obj_id); });
    return out;
}

Bvh::TraversalStats
Bvh::takeThreadStats()
{
    const TraversalStats stats = tlsStats;
    tlsStats = {};
    return stats;
}

} // namespace coterie::world
