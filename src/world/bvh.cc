#include "world/bvh.hh"

#include <algorithm>
#include <array>

#include "support/logging.hh"

namespace coterie::world {

using geom::Aabb;
using geom::Hit;
using geom::Ray;
using geom::Vec2;
using geom::Vec3;

namespace {

constexpr std::size_t kLeafSize = 4;

} // namespace

Bvh::Bvh(const std::vector<WorldObject> &objects) : objects_(objects)
{
    std::vector<std::uint32_t> items(objects.size());
    for (std::size_t i = 0; i < items.size(); ++i)
        items[i] = static_cast<std::uint32_t>(i);
    if (!items.empty()) {
        nodes_.reserve(2 * items.size());
        build(items, 0, items.size());
    }
}

std::int32_t
Bvh::build(std::vector<std::uint32_t> &items, std::size_t begin,
           std::size_t end)
{
    const auto node_index = static_cast<std::int32_t>(nodes_.size());
    nodes_.emplace_back();

    Aabb box;
    for (std::size_t i = begin; i < end; ++i)
        box.extend(objects_[items[i]].bounds());

    if (end - begin <= kLeafSize) {
        Node &leaf = nodes_[node_index];
        leaf.box = box;
        leaf.left = static_cast<std::int32_t>(items_.size());
        leaf.count = static_cast<std::int32_t>(end - begin);
        for (std::size_t i = begin; i < end; ++i)
            items_.push_back(items[i]);
        return node_index;
    }

    // Split along the widest axis at the median of object centers.
    const Vec3 extent = box.extent();
    int axis = 0;
    if (extent.y > extent.x)
        axis = 1;
    if (extent.z > (axis == 0 ? extent.x : extent.y))
        axis = 2;

    const std::size_t mid = (begin + end) / 2;
    std::nth_element(
        items.begin() + static_cast<std::ptrdiff_t>(begin),
        items.begin() + static_cast<std::ptrdiff_t>(mid),
        items.begin() + static_cast<std::ptrdiff_t>(end),
        [&](std::uint32_t a, std::uint32_t b) {
            const Vec3 ca = objects_[a].bounds().center();
            const Vec3 cb = objects_[b].bounds().center();
            if (axis == 0)
                return ca.x < cb.x;
            if (axis == 1)
                return ca.y < cb.y;
            return ca.z < cb.z;
        });

    const std::int32_t left = build(items, begin, mid);
    const std::int32_t right = build(items, mid, end);
    Node &node = nodes_[node_index];
    node.box = box;
    node.left = left;
    node.right = right;
    node.count = 0;
    return node_index;
}

bool
Bvh::intersectObject(const Ray &ray, const WorldObject &obj, double &t,
                     Vec3 &normal) const
{
    std::optional<double> hit;
    Vec3 n{0.0, 1.0, 0.0};
    switch (obj.shape) {
      case Shape::Sphere:
        hit = geom::intersectSphere(ray, obj.position, obj.dims.x);
        if (hit)
            n = (ray.at(*hit) - obj.position).normalized();
        break;
      case Shape::Box:
        hit = geom::intersectBox(
            ray, Aabb{obj.position - obj.dims * 0.5,
                      obj.position + obj.dims * 0.5}, &n);
        break;
      case Shape::CylinderY:
        hit = geom::intersectCylinderY(ray, obj.position, obj.dims.x,
                                       obj.dims.y, &n);
        break;
    }
    if (!hit)
        return false;
    t = *hit;
    normal = n;
    return true;
}

Hit
Bvh::closestHit(const Ray &ray) const
{
    Hit best;
    best.t = ray.tMax;
    if (nodes_.empty())
        return best;

    std::array<std::int32_t, 64> stack;
    int sp = 0;
    stack[sp++] = 0;
    while (sp > 0) {
        const Node &node = nodes_[stack[--sp]];
        if (!geom::rayHitsAabb(ray, node.box, best.t))
            continue;
        if (node.count > 0) {
            for (std::int32_t i = 0; i < node.count; ++i) {
                const std::uint32_t obj_id = items_[node.left + i];
                const WorldObject &obj = objects_[obj_id];
                double t;
                Vec3 normal;
                if (intersectObject(ray, obj, t, normal) && t < best.t) {
                    best.t = t;
                    best.point = ray.at(t);
                    best.normal = normal;
                    best.objectId = obj_id;
                }
            }
        } else {
            COTERIE_ASSERT(sp + 2 <= static_cast<int>(stack.size()),
                           "BVH traversal stack overflow");
            stack[sp++] = node.left;
            stack[sp++] = node.right;
        }
    }
    return best;
}

bool
Bvh::anyHit(const Ray &ray) const
{
    if (nodes_.empty())
        return false;
    std::array<std::int32_t, 64> stack;
    int sp = 0;
    stack[sp++] = 0;
    while (sp > 0) {
        const Node &node = nodes_[stack[--sp]];
        if (!geom::rayHitsAabb(ray, node.box, ray.tMax))
            continue;
        if (node.count > 0) {
            for (std::int32_t i = 0; i < node.count; ++i) {
                const WorldObject &obj = objects_[items_[node.left + i]];
                double t;
                Vec3 normal;
                if (intersectObject(ray, obj, t, normal))
                    return true;
            }
        } else {
            stack[sp++] = node.left;
            stack[sp++] = node.right;
        }
    }
    return false;
}

std::vector<std::uint32_t>
Bvh::queryDisc(Vec2 center, double radius) const
{
    std::vector<std::uint32_t> out;
    if (nodes_.empty())
        return out;
    const double r2 = radius * radius;
    std::array<std::int32_t, 64> stack;
    int sp = 0;
    stack[sp++] = 0;
    while (sp > 0) {
        const Node &node = nodes_[stack[--sp]];
        // Distance from the disc center to the box footprint in XZ.
        const double dx = std::max(
            {node.box.lo.x - center.x, 0.0, center.x - node.box.hi.x});
        const double dz = std::max(
            {node.box.lo.z - center.y, 0.0, center.y - node.box.hi.z});
        if (dx * dx + dz * dz > r2)
            continue;
        if (node.count > 0) {
            for (std::int32_t i = 0; i < node.count; ++i) {
                const std::uint32_t obj_id = items_[node.left + i];
                const Aabb b = objects_[obj_id].bounds();
                const double ox = std::max(
                    {b.lo.x - center.x, 0.0, center.x - b.hi.x});
                const double oz = std::max(
                    {b.lo.z - center.y, 0.0, center.y - b.hi.z});
                if (ox * ox + oz * oz <= r2)
                    out.push_back(obj_id);
            }
        } else {
            stack[sp++] = node.left;
            stack[sp++] = node.right;
        }
    }
    return out;
}

} // namespace coterie::world
