#include "world/grid.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"

namespace coterie::world {

using geom::Rect;
using geom::Vec2;

GridMap::GridMap(Rect bounds, double spacing)
    : bounds_(bounds), spacing_(spacing)
{
    COTERIE_ASSERT(spacing > 0.0, "grid spacing must be positive");
    cols_ = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::floor(bounds.width() / spacing)));
    rows_ = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::floor(bounds.height() / spacing)));
}

GridPoint
GridMap::snap(Vec2 p) const
{
    const Vec2 local = p - bounds_.lo;
    auto ix = static_cast<std::int64_t>(std::llround(local.x / spacing_));
    auto iy = static_cast<std::int64_t>(std::llround(local.y / spacing_));
    ix = std::clamp<std::int64_t>(ix, 0, cols_ - 1);
    iy = std::clamp<std::int64_t>(iy, 0, rows_ - 1);
    return {ix, iy};
}

Vec2
GridMap::position(GridPoint g) const
{
    return bounds_.lo + Vec2{static_cast<double>(g.ix) * spacing_,
                             static_cast<double>(g.iy) * spacing_};
}

std::uint64_t
GridMap::index(GridPoint g) const
{
    COTERIE_ASSERT(g.ix >= 0 && g.ix < cols_ && g.iy >= 0 && g.iy < rows_,
                   "grid point out of range");
    return static_cast<std::uint64_t>(g.iy) *
               static_cast<std::uint64_t>(cols_) +
           static_cast<std::uint64_t>(g.ix);
}

double
GridMap::distance(GridPoint a, GridPoint b) const
{
    const double dx = static_cast<double>(a.ix - b.ix) * spacing_;
    const double dy = static_cast<double>(a.iy - b.iy) * spacing_;
    return std::sqrt(dx * dx + dy * dy);
}

} // namespace coterie::world
