/**
 * @file
 * Indoor world generators: Pool (single hall with tables), Bowling
 * (lanes and seating), Corridor (a small maze of corridors). Indoor
 * worlds use a flat floor and bounding walls; their small dimensions
 * produce the shallow quadtrees of Table 3.
 */

#include <cmath>

#include "support/logging.hh"
#include "support/rng.hh"
#include "world/gen/assets.hh"
#include "world/gen/generators.hh"

namespace coterie::world::gen {

using geom::Rect;
using geom::Vec2;
using image::Rgb;

namespace {

constexpr double kWallHeight = 3.2;
constexpr double kWallThickness = 0.3;

TerrainParams
indoorFloor(std::uint64_t seed)
{
    TerrainParams t;
    t.seed = seed;
    t.flat = true;
    t.trianglesPerM2 = 80.0;
    return t;
}

/** Perimeter walls around the whole world rectangle. */
void
addPerimeter(VirtualWorld &world, Rgb color)
{
    const Rect b = world.bounds();
    world.addObject(makeWallSegment({b.lo.x, b.lo.y}, {b.hi.x, b.lo.y},
                                    kWallHeight, kWallThickness, color));
    world.addObject(makeWallSegment({b.lo.x, b.hi.y}, {b.hi.x, b.hi.y},
                                    kWallHeight, kWallThickness, color));
    world.addObject(makeWallSegment({b.lo.x, b.lo.y}, {b.lo.x, b.hi.y},
                                    kWallHeight, kWallThickness, color));
    world.addObject(makeWallSegment({b.hi.x, b.lo.y}, {b.hi.x, b.hi.y},
                                    kWallHeight, kWallThickness, color));
}

VirtualWorld
makePool(const GameInfo &info, std::uint64_t seed)
{
    VirtualWorld world(info.name, {{0.0, 0.0}, {info.width, info.height}},
                       indoorFloor(seed), SceneType::Indoor);
    Rng rng(hashCombine(seed, 0x3001));
    addPerimeter(world, {110, 95, 80});

    // Two pool tables with surrounding chairs and a bar counter.
    for (const double cy : {4.0, 9.0}) {
        const Vec2 at{info.width / 2, cy};
        WorldObject table = makeFurniture(rng, at, 2.6, 0.85);
        table.color = {20, 90, 40};
        table.triangles = 18000;
        world.addObject(table);
        for (int k = 0; k < 4; ++k) {
            const double theta = 2.0 * M_PI * k / 4 + 0.4;
            world.addObject(makeFurniture(
                rng, at + Vec2{2.2 * std::cos(theta), 2.2 * std::sin(theta)},
                0.5, 1.0));
        }
    }
    world.addObject(makeFurniture(rng, {1.4, info.height / 2}, 1.0, 1.1));
    return world;
}

VirtualWorld
makeBowling(const GameInfo &info, std::uint64_t seed)
{
    VirtualWorld world(info.name, {{0.0, 0.0}, {info.width, info.height}},
                       indoorFloor(seed), SceneType::Indoor);
    Rng rng(hashCombine(seed, 0xB0));
    addPerimeter(world, {100, 100, 115});

    // Uniform rows of lanes with pin decks and ball returns: the most
    // homogeneous of the nine worlds (complete depth-2 quadtree).
    const int lanes = 8;
    const double lane_pitch = info.width / (lanes + 1);
    for (int lane = 1; lane <= lanes; ++lane) {
        const double x = lane * lane_pitch;
        WorldObject deck = makeFurniture(rng, {x, info.height - 5.0},
                                         1.2, 0.6);
        deck.color = {200, 195, 180};
        world.addObject(deck);
        WorldObject ret = makeFurniture(rng, {x, 8.0}, 0.8, 0.9);
        ret.color = {60, 60, 70};
        world.addObject(ret);
        world.addObject(makeFurniture(rng, {x, 4.0}, 0.9, 0.8));
    }
    return world;
}

VirtualWorld
makeCorridor(const GameInfo &info, std::uint64_t seed)
{
    VirtualWorld world(info.name, {{0.0, 0.0}, {info.width, info.height}},
                       indoorFloor(seed), SceneType::Indoor);
    Rng rng(hashCombine(seed, 0xC0DE));
    addPerimeter(world, {90, 88, 95});

    // Interior walls form corridors: vertical walls with door gaps.
    const Rgb wall_color{105, 100, 96};
    for (double x = 10.0; x < info.width - 5.0; x += 10.0) {
        const double gap_at = rng.uniform(6.0, info.height - 6.0);
        world.addObject(makeWallSegment({x, 0.0}, {x, gap_at - 1.5},
                                        kWallHeight, kWallThickness,
                                        wall_color));
        world.addObject(makeWallSegment({x, gap_at + 1.5},
                                        {x, info.height}, kWallHeight,
                                        kWallThickness, wall_color));
    }
    // One long cross corridor.
    world.addObject(makeWallSegment({0.0, info.height / 2},
                                    {info.width * 0.45, info.height / 2},
                                    kWallHeight, kWallThickness,
                                    wall_color));
    // Scattered props (crates, pipes).
    for (int i = 0; i < 30; ++i) {
        const Vec2 at{rng.uniform(1.0, info.width - 1.0),
                      rng.uniform(1.0, info.height - 1.0)};
        world.addObject(makeFurniture(rng, at, rng.uniform(0.4, 1.2),
                                      rng.uniform(0.5, 1.6)));
    }
    return world;
}

} // namespace

VirtualWorld
makeIndoorWorld(const GameInfo &info, std::uint64_t seed)
{
    switch (info.id) {
      case GameId::Pool:     return makePool(info, seed);
      case GameId::Bowling:  return makeBowling(info, seed);
      case GameId::Corridor: return makeCorridor(info, seed);
      default: break;
    }
    COTERIE_PANIC("not an indoor game");
}

} // namespace coterie::world::gen
