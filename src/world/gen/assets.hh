/**
 * @file
 * Asset factories shared by the world generators: parameterized trees,
 * rocks, buildings, props, stands, walls, furniture with triangle
 * budgets representative of high-quality Unity store assets.
 */

#pragma once

#include "support/rng.hh"
#include "world/object.hh"

namespace coterie::world::gen {

WorldObject makeTree(Rng &rng, geom::Vec2 at, double groundY);
WorldObject makeRock(Rng &rng, geom::Vec2 at, double groundY);
WorldObject makeBuilding(Rng &rng, geom::Vec2 at, double groundY);
WorldObject makeProp(Rng &rng, geom::Vec2 at, double groundY);
WorldObject makePerson(Rng &rng, geom::Vec2 at, double groundY);
WorldObject makeMountain(Rng &rng, geom::Vec2 at, double groundY);
/** Dense, high-detail clutter (market stalls, ornate props). */
WorldObject makeDenseProp(Rng &rng, geom::Vec2 at, double groundY);
WorldObject makeStandSection(Rng &rng, geom::Vec2 at, double groundY,
                             double facingRadians);

/** Indoor pieces sit on a flat floor (groundY == 0). */
WorldObject makeWallSegment(geom::Vec2 from, geom::Vec2 to, double height,
                            double thickness, image::Rgb color);
WorldObject makeFurniture(Rng &rng, geom::Vec2 at, double footprint,
                          double height);

} // namespace coterie::world::gen

