/**
 * @file
 * Outdoor world generators: Viking (clustered village), CTS (large
 * quasi-uniform forest), FPS (urban arena), Soccer (stadium), Racing
 * and DS (track worlds, one sparse with a trackside forest, one with
 * dense start/finish zones).
 */

#include <cmath>

#include "support/logging.hh"
#include "support/rng.hh"
#include "world/gen/assets.hh"
#include "world/gen/generators.hh"
#include "world/gen/track.hh"

namespace coterie::world::gen {

using geom::Rect;
using geom::Vec2;

namespace {

Rect
worldRect(const GameInfo &info)
{
    return {{0.0, 0.0}, {info.width, info.height}};
}

/** Place @p n objects via @p factory, rejecting points outside bounds. */
template <typename Factory>
void
scatter(VirtualWorld &world, Rng &rng, Rect area, int n, Factory &&factory)
{
    for (int i = 0; i < n; ++i) {
        const Vec2 at{rng.uniform(area.lo.x, area.hi.x),
                      rng.uniform(area.lo.y, area.hi.y)};
        if (!world.bounds().containsClosed(at))
            continue;
        world.addObject(factory(rng, at, world.terrain().heightAt(at)));
    }
}

/** Gaussian cluster of objects around a center. */
template <typename Factory>
void
cluster(VirtualWorld &world, Rng &rng, Vec2 center, double sigma, int n,
        Factory &&factory)
{
    for (int i = 0; i < n; ++i) {
        const Vec2 at = center + Vec2{rng.normal(0.0, sigma),
                                      rng.normal(0.0, sigma)};
        if (!world.bounds().containsClosed(at))
            continue;
        world.addObject(factory(rng, at, world.terrain().heightAt(at)));
    }
}

VirtualWorld
makeViking(const GameInfo &info, std::uint64_t seed)
{
    TerrainParams terrain;
    terrain.seed = seed;
    terrain.amplitude = 2.5;
    terrain.featureScale = 45.0;
    terrain.trianglesPerM2 = 40.0;
    VirtualWorld world(info.name, worldRect(info), terrain);
    Rng rng(hashCombine(seed, 0x71C1));

    // The village covers the whole (small) map: hut clusters at jittered
    // grid sites with varying clutter density. Object density therefore
    // varies at every scale, which is what drives Viking's nearly
    // complete depth-6 quadtree in Table 3.
    const double pitch = 26.0;
    for (double x = pitch / 2; x < info.width; x += pitch) {
        for (double y = pitch / 2; y < info.height; y += pitch) {
            if (!rng.chance(0.75))
                continue; // leave clearings
            const Vec2 site{x + rng.uniform(-6.0, 6.0),
                            y + rng.uniform(-6.0, 6.0)};
            const double richness = rng.uniform(0.1, 2.2);
            cluster(world, rng, site, 9.0,
                    static_cast<int>(3 * richness), makeBuilding);
            cluster(world, rng, site, 9.0,
                    static_cast<int>(52 * richness), makeProp);
            cluster(world, rng, site, 9.0,
                    static_cast<int>(5 * richness), makePerson);
        }
    }
    // Market square: a dense knot of high-detail clutter anchoring the
    // smallest cutoff radii of the whole study (Figure 8's 2 m bins).
    const Vec2 center = world.bounds().center();
    cluster(world, rng, center, 6.0, 250, makeDenseProp);
    cluster(world, rng, center, 6.0, 25, makePerson);

    // Trees and rocks interspersed.
    scatter(world, rng, world.bounds(), 150, makeTree);
    scatter(world, rng, world.bounds(), 100, makeRock);
    return world;
}

VirtualWorld
makeCts(const GameInfo &info, std::uint64_t seed)
{
    TerrainParams terrain;
    terrain.seed = seed;
    terrain.amplitude = 6.0;
    terrain.featureScale = 90.0;
    terrain.trianglesPerM2 = 30.0;
    VirtualWorld world(info.name, worldRect(info), terrain);
    Rng rng(hashCombine(seed, 0xC75));

    // Quasi-uniform forest: jittered grid with mild noise-modulated
    // density (shallow, regular quadtree).
    const double cell = 7.0;
    for (double x = cell / 2; x < info.width; x += cell) {
        for (double y = cell / 2; y < info.height; y += cell) {
            // Mild spatial density modulation.
            const double keep =
                0.45 + 0.25 * std::sin(x / 97.0) * std::cos(y / 83.0);
            if (!rng.chance(keep))
                continue;
            const Vec2 at{x + rng.uniform(-cell / 2, cell / 2),
                          y + rng.uniform(-cell / 2, cell / 2)};
            if (!world.bounds().containsClosed(at))
                continue;
            const double ground = world.terrain().heightAt(at);
            if (rng.chance(0.9))
                world.addObject(makeTree(rng, at, ground));
            else
                world.addObject(makeRock(rng, at, ground));
        }
    }
    return world;
}

VirtualWorld
makeFps(const GameInfo &info, std::uint64_t seed)
{
    TerrainParams terrain;
    terrain.seed = seed;
    terrain.amplitude = 0.8;
    terrain.featureScale = 30.0;
    terrain.trianglesPerM2 = 30.0;
    VirtualWorld world(info.name, worldRect(info), terrain);
    Rng rng(hashCombine(seed, 0xF125));

    // Urban arena: perimeter buildings, interior cover props.
    const Rect b = world.bounds();
    const double margin = 7.0;
    for (double x = margin; x < info.width - margin; x += 13.0) {
        for (const double y : {margin, info.height - margin}) {
            const Vec2 at{x + rng.uniform(-2.0, 2.0), y};
            world.addObject(
                makeBuilding(rng, at, world.terrain().heightAt(at)));
        }
    }
    for (double y = margin + 13.0; y < info.height - margin - 13.0;
         y += 13.0) {
        for (const double x : {margin, info.width - margin}) {
            const Vec2 at{x, y + rng.uniform(-2.0, 2.0)};
            world.addObject(
                makeBuilding(rng, at, world.terrain().heightAt(at)));
        }
    }
    scatter(world, rng, Rect{b.lo + Vec2{12, 12}, b.hi - Vec2{12, 12}}, 110,
            makeProp);
    scatter(world, rng, b, 18, makePerson);
    // Interior city blocks: density contrast inside the arena drives
    // the deeper quadtree the paper reports for FPS (208 leaves).
    for (double x = 22.0; x < info.width - 20.0; x += 16.0) {
        for (double y = 22.0; y < info.height - 20.0; y += 16.0) {
            if (!rng.chance(0.55))
                continue;
            const Vec2 at{x + rng.uniform(-3.0, 3.0),
                          y + rng.uniform(-3.0, 3.0)};
            world.addObject(
                makeBuilding(rng, at, world.terrain().heightAt(at)));
            cluster(world, rng, at, 4.0, 14, makeDenseProp);
        }
    }
    return world;
}

VirtualWorld
makeSoccer(const GameInfo &info, std::uint64_t seed)
{
    TerrainParams terrain;
    terrain.seed = seed;
    terrain.amplitude = 0.3;
    terrain.featureScale = 50.0;
    terrain.trianglesPerM2 = 20.0;
    VirtualWorld world(info.name, worldRect(info), terrain);
    Rng rng(hashCombine(seed, 0x50CC));

    // Empty central pitch ringed by dense stands and crowd figures.
    const Vec2 c = world.bounds().center();
    const double pitch_w = 40.0, pitch_h = 60.0;
    const double ring_w = pitch_w / 2 + 12.0;
    const double ring_h = pitch_h / 2 + 12.0;
    const int sections = 26;
    for (int i = 0; i < sections; ++i) {
        const double theta = 2.0 * M_PI * i / sections;
        const Vec2 at = c + Vec2{ring_w * std::cos(theta) * 1.25,
                                 ring_h * std::sin(theta) * 1.15};
        if (!world.bounds().containsClosed(at))
            continue;
        world.addObject(makeStandSection(
            rng, at, world.terrain().heightAt(at), theta));
        cluster(world, rng, at, 5.0, 3, makePerson);
    }
    // A few props near the touchlines.
    cluster(world, rng, c + Vec2{0.0, pitch_h / 2 + 4.0}, 6.0, 14, makeProp);
    cluster(world, rng, c - Vec2{0.0, pitch_h / 2 + 4.0}, 6.0, 14, makeProp);
    return world;
}

VirtualWorld
makeRacing(const GameInfo &info, std::uint64_t seed)
{
    TerrainParams terrain;
    terrain.seed = seed;
    terrain.amplitude = 14.0;
    terrain.featureScale = 220.0;
    terrain.trianglesPerM2 = 14.0;
    VirtualWorld world(info.name, worldRect(info), terrain);
    Rng rng(hashCombine(seed, 0x6ACE));

    Track track(worldRect(info), seed);
    // A forest hugging one sector of the track ("a few regions along the
    // track are very close to a forest of trees"), sparse elsewhere.
    const auto &pts = track.samples();
    const std::size_t forest_begin = pts.size() / 8;
    const std::size_t forest_end = pts.size() / 8 + pts.size() / 5;
    for (std::size_t i = forest_begin; i < forest_end; i += 6) {
        const Vec2 base = pts[i % pts.size()];
        for (int k = 0; k < 3; ++k) {
            const Vec2 at = base + Vec2{rng.normal(0.0, 24.0),
                                        rng.normal(0.0, 24.0)};
            if (world.bounds().containsClosed(at) &&
                track.distanceTo(at) > 12.0) {
                world.addObject(
                    makeTree(rng, at, world.terrain().heightAt(at)));
            }
        }
    }
    // Start-line paddock, set back from the racing line.
    const Vec2 paddock =
        track.start() + track.tangentAt(0.0).perp() * 22.0;
    cluster(world, rng, paddock, 12.0, 5, makeBuilding);
    cluster(world, rng, paddock, 12.0, 15, makeProp);
    // Sparse rocks across the vast world.
    scatter(world, rng, world.bounds(), 220, makeRock);
    // The mountain range the game is named for: huge sculpted meshes
    // well away from the track. They dominate the Mobile whole-scene
    // render cost but never enter any near BE.
    for (int i = 0; i < 350; ++i) {
        const Vec2 at{rng.uniform(0.0, info.width),
                      rng.uniform(0.0, info.height)};
        if (track.distanceTo(at) > 110.0) {
            world.addObject(
                makeMountain(rng, at, world.terrain().heightAt(at)));
        }
    }
    return world;
}

VirtualWorld
makeDs(const GameInfo &info, std::uint64_t seed)
{
    TerrainParams terrain;
    terrain.seed = seed;
    terrain.amplitude = 8.0;
    terrain.featureScale = 160.0;
    terrain.trianglesPerM2 = 14.0;
    VirtualWorld world(info.name, worldRect(info), terrain);
    Rng rng(hashCombine(seed, 0xD5));

    Track track(worldRect(info), seed, 0.08);
    // Dense start/finish zone: stadiums, buildings, crowds.
    const Vec2 start = track.start();
    for (int i = 0; i < 6; ++i) {
        const Vec2 at = start + Vec2{rng.normal(0.0, 30.0),
                                     rng.normal(0.0, 18.0)};
        if (world.bounds().containsClosed(at) &&
            track.distanceTo(at) > 8.0) {
            world.addObject(makeStandSection(
                rng, at, world.terrain().heightAt(at), 0.0));
        }
    }
    cluster(world, rng, start, 35.0, 14, makeBuilding);
    cluster(world, rng, start, 35.0, 60, makePerson);
    cluster(world, rng, start, 35.0, 40, makeProp);
    // The rest of the long world is nearly empty.
    scatter(world, rng, world.bounds(), 90, makeRock);
    scatter(world, rng, world.bounds(), 60, makeTree);
    for (int i = 0; i < 200; ++i) {
        const Vec2 at{rng.uniform(0.0, info.width),
                      rng.uniform(0.0, info.height)};
        if (track.distanceTo(at) > 110.0 && start.distance(at) > 150.0) {
            world.addObject(
                makeMountain(rng, at, world.terrain().heightAt(at)));
        }
    }
    return world;
}

} // namespace

VirtualWorld
makeOutdoorWorld(const GameInfo &info, std::uint64_t seed)
{
    switch (info.id) {
      case GameId::Viking: return makeViking(info, seed);
      case GameId::CTS:    return makeCts(info, seed);
      case GameId::FPS:    return makeFps(info, seed);
      case GameId::Soccer: return makeSoccer(info, seed);
      case GameId::Racing: return makeRacing(info, seed);
      case GameId::DS:     return makeDs(info, seed);
      default: break;
    }
    COTERIE_PANIC("not an outdoor game");
}

} // namespace coterie::world::gen
