/**
 * @file
 * Procedural generators for the nine VR game worlds of the paper's
 * study (Table 2), matching each game's published dimensions and grid
 * density (Table 3) and its qualitative object-density character
 * (uniform forest, clustered village, sparse track, dense start/finish,
 * small indoor rooms, ...). Deterministic in the seed.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "world/grid.hh"
#include "world/world.hh"

namespace coterie::world::gen {

/** The nine study games. */
enum class GameId
{
    Racing,   ///< Racing Mountain: huge sparse track world
    DS,       ///< Death Speedway: long track, dense start/finish
    Viking,   ///< Viking Village: small, heavily clustered village
    CTS,      ///< CTS Procedural World: large quasi-uniform forest
    FPS,      ///< urban shooter arena
    Soccer,   ///< stadium: empty pitch ringed by dense stands
    Pool,     ///< indoor pool hall
    Bowling,  ///< indoor bowling alley
    Corridor, ///< indoor corridor complex
};

/** Movement style of a game's players (drives trace generation). */
enum class MovementStyle
{
    TrackFollow, ///< vehicles on a closed track
    Roam,        ///< free waypoint roaming outdoors
    IndoorWalk,  ///< slow walking in a small interior
};

/** Static facts about a game (mirrors Tables 2 and 3). */
struct GameInfo
{
    GameId id;
    std::string name;
    std::string genre;
    std::string foregroundInteraction;
    SceneType sceneType;
    double width;        ///< world x-dimension (m)
    double height;       ///< world z-dimension (m)
    double gridSpacing;  ///< grid pitch (m) reproducing Table 3 counts
    MovementStyle movement;
    double playerSpeed;  ///< typical movement speed (m/s)
};

/** All nine games, in the paper's Table 2 order. */
const std::vector<GameInfo> &allGames();

/** Lookup by id; panics if unknown. */
const GameInfo &gameInfo(GameId id);

/** The three testbed-evaluation games (§7): Viking, CTS, Racing. */
std::vector<GameId> evaluationGames();

/** Build the world for a game. */
VirtualWorld makeWorld(GameId id, std::uint64_t seed = 42);

/** Grid map for a game, using its Table 3 spacing. */
GridMap makeGrid(const GameInfo &info);

/**
 * Reachability predicate for a game: roaming/indoor games can reach the
 * whole world; track games only a corridor around the track. Used by
 * the offline preprocessing (the server only pre-renders reachable grid
 * points) and by the adaptive-cutoff partitioner.
 */
std::function<bool(geom::Vec2)> makeReachability(const GameInfo &info,
                                                 const VirtualWorld &world);

} // namespace coterie::world::gen

