#include "world/gen/track.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"
#include "support/rng.hh"

namespace coterie::world::gen {

using geom::Rect;
using geom::Vec2;

Track::Track(Rect bounds, std::uint64_t seed, double wobble)
{
    const Vec2 center = bounds.center();
    const double rx = bounds.width() * 0.38;
    const double ry = bounds.height() * 0.38;

    // Low-order Fourier wobble keeps the loop smooth and closed.
    Rng rng(seed);
    const int harmonics = 3;
    std::vector<double> amp(harmonics), phase(harmonics);
    for (int h = 0; h < harmonics; ++h) {
        amp[h] = rng.uniform(0.0, wobble / (h + 1));
        phase[h] = rng.uniform(0.0, 2.0 * M_PI);
    }

    const int n = 2048;
    points_.reserve(n);
    for (int i = 0; i < n; ++i) {
        const double theta = 2.0 * M_PI * i / n;
        double radial = 1.0;
        for (int h = 0; h < harmonics; ++h)
            radial += amp[h] * std::sin((h + 2) * theta + phase[h]);
        points_.push_back(center + Vec2{rx * radial * std::cos(theta),
                                        ry * radial * std::sin(theta)});
    }

    cumLength_.resize(points_.size() + 1);
    cumLength_[0] = 0.0;
    for (std::size_t i = 0; i < points_.size(); ++i) {
        const Vec2 &a = points_[i];
        const Vec2 &b = points_[(i + 1) % points_.size()];
        cumLength_[i + 1] = cumLength_[i] + a.distance(b);
    }
    totalLength_ = cumLength_.back();
    COTERIE_ASSERT(totalLength_ > 0.0, "degenerate track");
}

Vec2
Track::pointAt(double s) const
{
    s = std::fmod(s, totalLength_);
    if (s < 0.0)
        s += totalLength_;
    const auto it =
        std::upper_bound(cumLength_.begin(), cumLength_.end(), s);
    const auto seg = static_cast<std::size_t>(
        std::max<std::ptrdiff_t>(0, it - cumLength_.begin() - 1));
    const double seg_start = cumLength_[seg];
    const double seg_len = cumLength_[seg + 1] - seg_start;
    const double t = seg_len > 0.0 ? (s - seg_start) / seg_len : 0.0;
    const Vec2 &a = points_[seg % points_.size()];
    const Vec2 &b = points_[(seg + 1) % points_.size()];
    return a + (b - a) * t;
}

Vec2
Track::tangentAt(double s) const
{
    const double eps = totalLength_ / static_cast<double>(points_.size());
    return (pointAt(s + eps) - pointAt(s)).normalized();
}

double
Track::distanceTo(Vec2 p) const
{
    double best = std::numeric_limits<double>::infinity();
    for (const Vec2 &q : points_)
        best = std::min(best, p.distanceSq(q));
    return std::sqrt(best);
}

} // namespace coterie::world::gen
