#include "world/gen/generators.hh"

#include <algorithm>
#include <cmath>

#include <memory>

#include "support/logging.hh"
#include "world/gen/assets.hh"
#include "world/gen/track.hh"

namespace coterie::world::gen {

using geom::Vec2;
using geom::Vec3;

const std::vector<GameInfo> &
allGames()
{
    // Dimensions and grid spacing reproduce Table 3's grid-point counts;
    // spacing is 1/32 m except the two racing games, whose reachable
    // grid is track-resolution (0.394 m).
    static const std::vector<GameInfo> games = {
        {GameId::Racing, "Racing", "racing/chasing", "racing car movement",
         SceneType::Outdoor, 1090.0, 1096.0, 0.394,
         MovementStyle::TrackFollow, 23.6},
        {GameId::DS, "DS", "racing/chasing", "racing car movement",
         SceneType::Outdoor, 1286.0, 361.0, 0.394,
         MovementStyle::TrackFollow, 23.6},
        {GameId::Viking, "Viking", "competing shooting",
         "roaming and killing enemies", SceneType::Outdoor, 187.0, 130.0,
         1.0 / 32.0, MovementStyle::Roam, 1.875},
        {GameId::CTS, "CTS", "group adventure/mission",
         "walking and jumping", SceneType::Outdoor, 512.0, 512.0,
         1.0 / 32.0, MovementStyle::Roam, 1.875},
        {GameId::FPS, "FPS", "competing shooting",
         "roaming and killing enemies", SceneType::Outdoor, 71.0, 70.0,
         1.0 / 32.0, MovementStyle::Roam, 1.875},
        {GameId::Soccer, "Soccer", "group adventure/mission",
         "moving and hitting balls", SceneType::Outdoor, 104.0, 140.0,
         1.0 / 32.0, MovementStyle::Roam, 1.875},
        {GameId::Pool, "Pool", "static sports", "walking and hitting balls",
         SceneType::Indoor, 10.0, 13.0, 1.0 / 32.0,
         MovementStyle::IndoorWalk, 0.9},
        {GameId::Bowling, "Bowling", "static sports",
         "walking and throwing balls", SceneType::Indoor, 34.0, 41.0,
         1.0 / 32.0, MovementStyle::IndoorWalk, 0.9},
        {GameId::Corridor, "Corridor", "group adventure", "roaming",
         SceneType::Indoor, 50.0, 30.0, 1.0 / 32.0,
         MovementStyle::IndoorWalk, 1.2},
    };
    return games;
}

const GameInfo &
gameInfo(GameId id)
{
    for (const GameInfo &info : allGames())
        if (info.id == id)
            return info;
    COTERIE_PANIC("unknown game id");
}

std::vector<GameId>
evaluationGames()
{
    return {GameId::Viking, GameId::CTS, GameId::Racing};
}

GridMap
makeGrid(const GameInfo &info)
{
    return GridMap(geom::Rect{{0.0, 0.0}, {info.width, info.height}},
                   info.gridSpacing);
}

std::function<bool(geom::Vec2)>
makeReachability(const GameInfo &info, const VirtualWorld &world)
{
    if (info.movement != MovementStyle::TrackFollow)
        return {}; // everywhere reachable
    // Track corridor: the drivable band around the centerline.
    auto track = std::make_shared<Track>(
        geom::Rect{{0.0, 0.0}, {info.width, info.height}},
        world.terrain().params().seed);
    return [track](geom::Vec2 p) { return track->distanceTo(p) < 60.0; };
}

// Implemented in outdoor.cc / indoor.cc.
VirtualWorld makeOutdoorWorld(const GameInfo &info, std::uint64_t seed);
VirtualWorld makeIndoorWorld(const GameInfo &info, std::uint64_t seed);

VirtualWorld
makeWorld(GameId id, std::uint64_t seed)
{
    const GameInfo &info = gameInfo(id);
    VirtualWorld world = info.sceneType == SceneType::Outdoor
                             ? makeOutdoorWorld(info, seed)
                             : makeIndoorWorld(info, seed);
    world.finalize();
    return world;
}

} // namespace coterie::world::gen
