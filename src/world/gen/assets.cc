#include "world/gen/assets.hh"

#include <algorithm>
#include <cmath>

namespace coterie::world::gen {

using geom::Vec2;
using geom::Vec3;
using image::Rgb;

namespace {

Rgb
jitterColor(Rng &rng, Rgb base, int spread)
{
    auto j = [&](int c) {
        const int v = c + static_cast<int>(rng.uniformInt(-spread, spread));
        return static_cast<std::uint8_t>(std::clamp(v, 0, 255));
    };
    return {j(base.r), j(base.g), j(base.b)};
}

} // namespace

WorldObject
makeTree(Rng &rng, Vec2 at, double groundY)
{
    WorldObject obj;
    obj.shape = Shape::CylinderY;
    obj.kind = AssetKind::Tree;
    const double height = rng.uniform(5.0, 14.0);
    const double canopy = rng.uniform(1.2, 3.0);
    obj.position = geom::lift(at, groundY);
    obj.dims = Vec3{canopy, height, 0.0};
    obj.color = jitterColor(rng, {46, 96, 42}, 18);
    // High-quality foliage assets: 8k-40k triangles.
    obj.triangles = static_cast<std::uint32_t>(rng.uniform(8000, 40000));
    return obj;
}

WorldObject
makeRock(Rng &rng, Vec2 at, double groundY)
{
    WorldObject obj;
    obj.shape = Shape::Sphere;
    obj.kind = AssetKind::Rock;
    const double radius = rng.uniform(0.4, 2.2);
    obj.position = geom::lift(at, groundY + radius * 0.4);
    obj.dims = Vec3{radius, 0.0, 0.0};
    obj.color = jitterColor(rng, {120, 116, 110}, 14);
    obj.triangles = static_cast<std::uint32_t>(rng.uniform(400, 2500));
    return obj;
}

WorldObject
makeBuilding(Rng &rng, Vec2 at, double groundY)
{
    WorldObject obj;
    obj.shape = Shape::Box;
    obj.kind = AssetKind::Building;
    const double w = rng.uniform(4.0, 12.0);
    const double d = rng.uniform(4.0, 12.0);
    const double h = rng.uniform(3.5, 9.0);
    obj.position = geom::lift(at, groundY + h * 0.5);
    obj.dims = Vec3{w, h, d};
    obj.color = jitterColor(rng, {150, 120, 90}, 24);
    obj.triangles = static_cast<std::uint32_t>(rng.uniform(20000, 90000));
    return obj;
}

WorldObject
makeProp(Rng &rng, Vec2 at, double groundY)
{
    WorldObject obj;
    obj.kind = AssetKind::Prop;
    if (rng.chance(0.5)) {
        obj.shape = Shape::CylinderY; // barrels, posts
        const double r = rng.uniform(0.25, 0.7);
        const double h = rng.uniform(0.6, 1.6);
        obj.position = geom::lift(at, groundY);
        obj.dims = Vec3{r, h, 0.0};
    } else {
        obj.shape = Shape::Box; // crates, carts, fences
        const double w = rng.uniform(0.5, 2.5);
        const double d = rng.uniform(0.5, 2.5);
        const double h = rng.uniform(0.5, 1.8);
        obj.position = geom::lift(at, groundY + h * 0.5);
        obj.dims = Vec3{w, h, d};
    }
    obj.color = jitterColor(rng, {140, 105, 70}, 30);
    obj.triangles = static_cast<std::uint32_t>(rng.uniform(800, 6000));
    return obj;
}

WorldObject
makePerson(Rng &rng, Vec2 at, double groundY)
{
    WorldObject obj;
    obj.shape = Shape::CylinderY;
    obj.kind = AssetKind::Person;
    obj.position = geom::lift(at, groundY);
    obj.dims = Vec3{0.3, rng.uniform(1.6, 1.9), 0.0};
    obj.color = jitterColor(rng, {180, 140, 120}, 40);
    obj.triangles = static_cast<std::uint32_t>(rng.uniform(6000, 15000));
    return obj;
}

WorldObject
makeMountain(Rng &rng, Vec2 at, double groundY)
{
    WorldObject obj;
    obj.shape = Shape::Sphere;
    obj.kind = AssetKind::Rock;
    const double radius = rng.uniform(35.0, 90.0);
    // Mostly buried: only the peak rises above the terrain.
    obj.position = geom::lift(at, groundY - radius * 0.45);
    obj.dims = Vec3{radius, 0.0, 0.0};
    obj.color = jitterColor(rng, {105, 108, 112}, 10);
    // Sculpted mountain meshes are enormous.
    obj.triangles =
        static_cast<std::uint32_t>(rng.uniform(250000, 700000));
    return obj;
}

WorldObject
makeDenseProp(Rng &rng, Vec2 at, double groundY)
{
    WorldObject obj = makeProp(rng, at, groundY);
    // Market-square clutter is modeled with full-detail assets.
    obj.triangles = static_cast<std::uint32_t>(rng.uniform(3000, 16000));
    return obj;
}

WorldObject
makeStandSection(Rng &rng, Vec2 at, double groundY, double facingRadians)
{
    (void)facingRadians; // stands are axis-aligned boxes in this model
    WorldObject obj;
    obj.shape = Shape::Box;
    obj.kind = AssetKind::Stand;
    const double w = rng.uniform(10.0, 18.0);
    const double d = rng.uniform(6.0, 10.0);
    const double h = rng.uniform(8.0, 14.0);
    obj.position = geom::lift(at, groundY + h * 0.5);
    obj.dims = Vec3{w, h, d};
    obj.color = jitterColor(rng, {90, 90, 110}, 15);
    obj.triangles = static_cast<std::uint32_t>(rng.uniform(30000, 80000));
    return obj;
}

WorldObject
makeWallSegment(Vec2 from, Vec2 to, double height, double thickness,
                Rgb color)
{
    WorldObject obj;
    obj.shape = Shape::Box;
    obj.kind = AssetKind::Wall;
    const Vec2 mid = (from + to) * 0.5;
    const double len_x = std::abs(to.x - from.x);
    const double len_y = std::abs(to.y - from.y);
    obj.position = geom::lift(mid, height * 0.5);
    obj.dims = Vec3{std::max(len_x, thickness), height,
                    std::max(len_y, thickness)};
    obj.color = color;
    obj.triangles = 120;
    return obj;
}

WorldObject
makeFurniture(Rng &rng, Vec2 at, double footprint, double height)
{
    WorldObject obj;
    obj.shape = Shape::Box;
    obj.kind = AssetKind::Furniture;
    obj.position = geom::lift(at, height * 0.5);
    obj.dims = Vec3{footprint, height, footprint * rng.uniform(0.6, 1.4)};
    obj.color = {rng.chance(0.5) ? std::uint8_t(60) : std::uint8_t(140),
                 90, 60};
    obj.triangles = static_cast<std::uint32_t>(rng.uniform(18000, 80000));
    return obj;
}

} // namespace coterie::world::gen
