/**
 * @file
 * Closed-loop race track geometry shared by the racing-game world
 * generators and the track-following trajectory model.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "geom/region.hh"

namespace coterie::world::gen {

/**
 * A smooth closed loop inside a rectangle: an ellipse with seeded radial
 * wobble, arc-length parameterised for constant-speed traversal.
 */
class Track
{
  public:
    /**
     * Build a loop fitted into @p bounds with margins; @p wobble in
     * [0, 0.3] controls how non-elliptical the loop is.
     */
    Track(geom::Rect bounds, std::uint64_t seed, double wobble = 0.15);

    /** Total loop length in meters. */
    double length() const { return totalLength_; }

    /** Point at arc length @p s (wraps around). */
    geom::Vec2 pointAt(double s) const;

    /** Unit tangent at arc length @p s. */
    geom::Vec2 tangentAt(double s) const;

    /** Shortest distance from @p p to the track centerline. */
    double distanceTo(geom::Vec2 p) const;

    /** The start/finish location (arc length 0). */
    geom::Vec2 start() const { return pointAt(0.0); }

    /** Polyline sampling of the loop (for placement along the track). */
    const std::vector<geom::Vec2> &samples() const { return points_; }

  private:
    std::vector<geom::Vec2> points_;    // dense polyline
    std::vector<double> cumLength_;     // prefix arc lengths
    double totalLength_ = 0.0;
};

} // namespace coterie::world::gen

