/**
 * @file
 * Virtual-world discretisation into grid points.
 *
 * Pre-rendering VR systems (Furion, Coterie, Kahawai) discretise the
 * reachable world into a finite grid so the server can pre-render a
 * panorama per grid point. This mirrors the paper's Table 3 "Grid
 * Points" counts via a per-game spacing.
 */

#pragma once

#include <cstdint>

#include "geom/region.hh"

namespace coterie::world {

/** Integer grid coordinates of a grid point. */
struct GridPoint
{
    std::int64_t ix = 0;
    std::int64_t iy = 0;

    bool operator==(const GridPoint &) const = default;
};

/** Uniform discretisation of a rectangular world. */
class GridMap
{
  public:
    /** @p spacing is the grid pitch in meters. */
    GridMap(geom::Rect bounds, double spacing);

    double spacing() const { return spacing_; }
    const geom::Rect &bounds() const { return bounds_; }

    /** Grid columns / rows. */
    std::int64_t cols() const { return cols_; }
    std::int64_t rows() const { return rows_; }

    /** Total number of grid points. */
    std::uint64_t pointCount() const
    {
        return static_cast<std::uint64_t>(cols_) *
               static_cast<std::uint64_t>(rows_);
    }

    /** Snap a world position to the nearest grid point. */
    GridPoint snap(geom::Vec2 p) const;

    /** World position of a grid point (clamped into bounds). */
    geom::Vec2 position(GridPoint g) const;

    /** Dense linear index of a grid point (row-major). */
    std::uint64_t index(GridPoint g) const;

    /** Euclidean distance between two grid points in meters. */
    double distance(GridPoint a, GridPoint b) const;

    /** 64-bit key usable in hash maps. */
    std::uint64_t key(GridPoint g) const { return index(g); }

  private:
    geom::Rect bounds_;
    double spacing_;
    std::int64_t cols_;
    std::int64_t rows_;
};

} // namespace coterie::world

