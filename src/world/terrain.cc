#include "world/terrain.hh"

#include <algorithm>
#include <cmath>

#include "support/rng.hh"
#include "support/simd.hh"

namespace coterie::world {

using geom::Ray;
using geom::Vec2;
using geom::Vec3;
using support::simd::U64x4;

Terrain::Terrain(const TerrainParams &params) : params_(params) {}

namespace {

/** Quintic fade for value-noise interpolation. */
double
fade(double t)
{
    return t * t * t * (t * (t * 6.0 - 15.0) + 10.0);
}

double
latticeValue(std::int64_t ix, std::int64_t iy, std::uint64_t seed,
             std::uint64_t salt)
{
    std::uint64_t h = hashCombine(seed ^ salt,
                                  hashCombine(hashMix(ix), hashMix(iy)));
    h = hashMix(h);
    return (h >> 11) * 0x1.0p-53 * 2.0 - 1.0; // [-1, 1)
}

constexpr int kLanes = support::simd::kLanes;

/**
 * The four lattice corner values for four sample cells at once — the
 * integer-hash core of `latticeValue`, lane-vectorized. Bit-exactness
 * vs the scalar path holds under every dispatch clone: the hashing is
 * exact integer arithmetic, the u64→double conversion is exact below
 * 2^53, and the final scale multiplies by powers of two (exact), so
 * even an FMA contraction of `x * 2.0 - 1.0` rounds once to the same
 * double. No other FP runs inside the cloned region.
 */
COTERIE_SIMD_CLONES void
latticeCorners4(const std::int64_t ix[kLanes], const std::int64_t iy[kLanes],
                std::uint64_t seedSalt, double v00[kLanes],
                double v10[kLanes], double v01[kLanes], double v11[kLanes])
{
    std::uint64_t ux[kLanes], ux1[kLanes], uy[kLanes], uy1[kLanes];
    for (int l = 0; l < kLanes; ++l) {
        ux[l] = static_cast<std::uint64_t>(ix[l]);
        ux1[l] = static_cast<std::uint64_t>(ix[l] + 1);
        uy[l] = static_cast<std::uint64_t>(iy[l]);
        uy1[l] = static_cast<std::uint64_t>(iy[l] + 1);
    }
    using support::simd::hashCombine4;
    using support::simd::hashMix4;
    using support::simd::toDouble;
    const U64x4 hx = hashMix4(U64x4::load(ux));
    const U64x4 hx1 = hashMix4(U64x4::load(ux1));
    const U64x4 hy = hashMix4(U64x4::load(uy));
    const U64x4 hy1 = hashMix4(U64x4::load(uy1));
    const U64x4 ss = U64x4::splat(seedSalt);
    const auto corner = [&](U64x4 cx, U64x4 cy, double out[kLanes]) {
        const U64x4 h = hashMix4(hashCombine4(ss, hashCombine4(cx, cy)));
        const support::simd::F64x4 val = toDouble(h >> 11);
        for (int l = 0; l < kLanes; ++l)
            out[l] = val[l] * 0x1.0p-53 * 2.0 - 1.0; // [-1, 1)
    };
    corner(hx, hy, v00);
    corner(hx1, hy, v10);
    corner(hx, hy1, v01);
    corner(hx1, hy1, v11);
}

/**
 * `noise2` over four sample points sharing one salt. The scalar FP
 * glue (floor, fade, lerp) is the exact expression sequence of the
 * scalar `noise2`, per lane; only the corner hashing is lane-wide.
 */
void
noise2x4(const TerrainParams &params, const double x[kLanes],
         const double y[kLanes], std::uint64_t salt, double out[kLanes])
{
    double fx[kLanes], fy[kLanes];
    std::int64_t ix[kLanes], iy[kLanes];
    for (int l = 0; l < kLanes; ++l) {
        fx[l] = std::floor(x[l]);
        fy[l] = std::floor(y[l]);
        ix[l] = static_cast<std::int64_t>(fx[l]);
        iy[l] = static_cast<std::int64_t>(fy[l]);
    }
    double v00[kLanes], v10[kLanes], v01[kLanes], v11[kLanes];
    latticeCorners4(ix, iy, params.seed ^ salt, v00, v10, v01, v11);
    for (int l = 0; l < kLanes; ++l) {
        const double tx = fade(x[l] - fx[l]);
        const double ty = fade(y[l] - fy[l]);
        const double a = v00[l] + (v10[l] - v00[l]) * tx;
        const double b = v01[l] + (v11[l] - v01[l]) * tx;
        out[l] = a + (b - a) * ty;
    }
}

/** `fractal` (and the amplitude scale of `heightAt`) over four ground
 *  points — per-lane op-for-op identical to the scalar octave loop. */
void
heightAt4(const TerrainParams &params, const double px[kLanes],
          const double pz[kLanes], double out[kLanes])
{
    double amp = 1.0;
    double freq = 1.0 / params.featureScale;
    double sum[kLanes] = {};
    double norm = 0.0;
    for (int o = 0; o < params.octaves; ++o) {
        double xs[kLanes], ys[kLanes], n[kLanes];
        for (int l = 0; l < kLanes; ++l) {
            xs[l] = px[l] * freq;
            ys[l] = pz[l] * freq;
        }
        noise2x4(params, xs, ys, 0x5eedULL + static_cast<std::uint64_t>(o),
                 n);
        for (int l = 0; l < kLanes; ++l)
            sum[l] += amp * n[l];
        norm += amp;
        amp *= 0.5;
        freq *= 2.0;
    }
    for (int l = 0; l < kLanes; ++l)
        out[l] = params.amplitude * (norm > 0.0 ? sum[l] / norm : 0.0);
}

} // namespace

double
Terrain::noise2(double x, double y, std::uint64_t salt) const
{
    const double fx = std::floor(x);
    const double fy = std::floor(y);
    const auto ix = static_cast<std::int64_t>(fx);
    const auto iy = static_cast<std::int64_t>(fy);
    const double tx = fade(x - fx);
    const double ty = fade(y - fy);
    const double v00 = latticeValue(ix, iy, params_.seed, salt);
    const double v10 = latticeValue(ix + 1, iy, params_.seed, salt);
    const double v01 = latticeValue(ix, iy + 1, params_.seed, salt);
    const double v11 = latticeValue(ix + 1, iy + 1, params_.seed, salt);
    const double a = v00 + (v10 - v00) * tx;
    const double b = v01 + (v11 - v01) * tx;
    return a + (b - a) * ty;
}

double
Terrain::fractal(Vec2 p) const
{
    double amp = 1.0;
    double freq = 1.0 / params_.featureScale;
    double sum = 0.0;
    double norm = 0.0;
    for (int o = 0; o < params_.octaves; ++o) {
        sum += amp * noise2(p.x * freq, p.y * freq,
                            0x5eedULL + static_cast<std::uint64_t>(o));
        norm += amp;
        amp *= 0.5;
        freq *= 2.0;
    }
    return norm > 0.0 ? sum / norm : 0.0;
}

double
Terrain::heightAt(Vec2 p) const
{
    if (params_.flat)
        return 0.0;
    return params_.amplitude * fractal(p);
}

Vec3
Terrain::normalAt(Vec2 p) const
{
    if (params_.flat)
        return {0.0, 1.0, 0.0};
    const double eps = 0.25;
    const double hx =
        heightAt({p.x + eps, p.y}) - heightAt({p.x - eps, p.y});
    const double hy =
        heightAt({p.x, p.y + eps}) - heightAt({p.x, p.y - eps});
    return Vec3{-hx / (2 * eps), 1.0, -hy / (2 * eps)}.normalized();
}

std::optional<double>
Terrain::intersect(const Ray &ray, double maxDist, double abortBeyond) const
{
    if (params_.flat) {
        // Plane y = 0: exact solve, nothing to march or abort.
        if (std::abs(ray.dir.y) < 1e-12)
            return std::nullopt;
        const double t = -ray.origin.y / ray.dir.y;
        if (t < ray.tMin || t > std::min(ray.tMax, maxDist))
            return std::nullopt;
        return t;
    }
    // Adaptive march (step grows with distance — angular error budget),
    // then bisection refinement; same schedule and brackets as
    // intersectReference, evaluated four schedule points per heightAt4
    // batch. A ray whose clipped start is already below the surface is
    // treated as clipped out (no hit), matching depth-interval clipping
    // semantics in the renderer.
    double t_prev = ray.tMin;
    const double h_start = ray.origin.y + t_prev * ray.dir.y -
                           heightAt(ray.at(t_prev).ground());
    if (h_start <= 0.0)
        return std::nullopt;
    const double limit = std::min(ray.tMax, maxDist);
    // Early-escape threshold for climbing rays. The fractal is a
    // normalized average of [-1, 1) noise, so |height| < |amplitude|
    // everywhere: above |amplitude| a non-descending ray can never
    // cross, making escape at |amplitude| result-identical to marching
    // on. The min() with the reference loop's amplitude + 0.5 keeps the
    // escape no later than the reference's for any params.
    const double escape =
        std::min(params_.amplitude + 0.5, std::abs(params_.amplitude));
    const bool climbing = ray.dir.y >= 0.0;
    const auto bisect = [&](double lo, double hi) {
        for (int i = 0; i < 16; ++i) {
            const double mid = 0.5 * (lo + hi);
            const Vec3 mp = ray.at(mid);
            if (mp.y - heightAt(mp.ground()) <= 0.0)
                hi = mid;
            else
                lo = mid;
        }
        return hi;
    };
    double t = t_prev;
    // Scalar prologue: rays from a low eye looking down cross within
    // the first few samples, and a 4-wide batch would pay for four
    // height evaluations where one suffices. The schedule is a pure
    // function of t, so peeling samples off the front changes nothing
    // but the batching.
    for (int k = 0; k < kLanes && t < limit; ++k) {
        t = std::min(limit, t + std::max(0.35, t * 0.025));
        const Vec3 p = ray.at(t);
        if (climbing && p.y > escape)
            return std::nullopt;
        if (p.y - heightAt(p.ground()) <= 0.0)
            return bisect(t_prev, t);
        if (t > abortBeyond)
            return std::nullopt;
        t_prev = t;
    }
#ifdef COTERIE_SIMD_VECTOR_EXT
    constexpr bool batched_march = true;
#else
    // Scalar-lane fallback build: heightAt4 has no SIMD payoff, and a
    // batch always evaluates its full width — overshoot work the
    // per-sample march below avoids. Same schedule, same results.
    constexpr bool batched_march = false;
#endif
    if (!batched_march) {
        while (t < limit) {
            t = std::min(limit, t + std::max(0.35, t * 0.025));
            const Vec3 p = ray.at(t);
            if (climbing && p.y > escape)
                return std::nullopt;
            if (p.y - heightAt(p.ground()) <= 0.0)
                return bisect(t_prev, t);
            if (t > abortBeyond)
                return std::nullopt;
            t_prev = t;
        }
        return std::nullopt;
    }
    while (t < limit) {
        // Next (up to) kLanes points of the reference schedule; the
        // schedule is a pure function of t, so batching does not move
        // any sample.
        double ts[kLanes];
        int n = 0;
        while (n < kLanes && t < limit) {
            t = std::min(limit, t + std::max(0.35, t * 0.025));
            ts[n++] = t;
        }
        double px[kLanes], py[kLanes], pz[kLanes];
        for (int k = 0; k < n; ++k) {
            const Vec3 p = ray.at(ts[k]);
            px[k] = p.x;
            py[k] = p.y;
            pz[k] = p.z;
        }
        for (int k = n; k < kLanes; ++k) { // pad idle lanes
            px[k] = px[n - 1];
            py[k] = py[n - 1];
            pz[k] = pz[n - 1];
        }
        double height[kLanes];
        heightAt4(params_, px, pz, height);
        for (int k = 0; k < n; ++k) {
            // Early escape: climbing above any possible terrain.
            if (climbing && py[k] > escape)
                return std::nullopt;
            if (py[k] - height[k] <= 0.0)
                return bisect(t_prev, ts[k]);
            // No crossing up to this sample: a later root would
            // bisect to hi > ts[k] > abortBeyond, which the caller
            // has declared irrelevant (occluded by a closer hit).
            if (ts[k] > abortBeyond)
                return std::nullopt;
            t_prev = ts[k];
        }
    }
    return std::nullopt;
}

std::optional<double>
Terrain::intersectReference(const Ray &ray, double maxDist) const
{
    if (params_.flat) {
        // Plane y = 0.
        if (std::abs(ray.dir.y) < 1e-12)
            return std::nullopt;
        const double t = -ray.origin.y / ray.dir.y;
        if (t < ray.tMin || t > std::min(ray.tMax, maxDist))
            return std::nullopt;
        return t;
    }
    double t_prev = ray.tMin;
    double h_prev = ray.origin.y + t_prev * ray.dir.y -
                    heightAt(ray.at(t_prev).ground());
    if (h_prev <= 0.0)
        return std::nullopt;
    const double limit = std::min(ray.tMax, maxDist);
    double t = t_prev;
    while (t < limit) {
        t = std::min(limit, t + std::max(0.35, t * 0.025));
        const Vec3 p = ray.at(t);
        // Early escape: climbing above any possible terrain.
        if (ray.dir.y >= 0.0 && p.y > params_.amplitude + 0.5)
            return std::nullopt;
        const double h = p.y - heightAt(p.ground());
        if (h <= 0.0) {
            double lo = t_prev, hi = t;
            for (int i = 0; i < 16; ++i) {
                const double mid = 0.5 * (lo + hi);
                const Vec3 mp = ray.at(mid);
                if (mp.y - heightAt(mp.ground()) <= 0.0)
                    hi = mid;
                else
                    lo = mid;
            }
            return hi;
        }
        t_prev = t;
        h_prev = h;
    }
    (void)h_prev;
    return std::nullopt;
}

image::Rgb
Terrain::colorAt(Vec2 p) const
{
    if (params_.flat)
        return {96, 92, 88}; // indoor floor
    const double h = heightAt(p);
    const double moisture =
        0.5 + 0.5 * noise2(p.x / 37.0, p.y / 37.0, 0x5151ULL);
    // Grass -> dirt -> rock blend with elevation.
    const double rockiness =
        std::clamp((h / std::max(params_.amplitude, 1e-9)) * 0.5 + 0.3,
                   0.0, 1.0);
    const auto mix = [](double a, double b, double t) {
        return a + (b - a) * t;
    };
    const double r = mix(mix(70, 110, moisture), 130, rockiness);
    const double g = mix(mix(120, 100, moisture), 125, rockiness);
    const double b = mix(mix(60, 60, moisture), 120, rockiness);
    return {static_cast<std::uint8_t>(r), static_cast<std::uint8_t>(g),
            static_cast<std::uint8_t>(b)};
}

double
Terrain::trianglesWithin(Vec2 /*p*/, double radius) const
{
    return params_.trianglesPerM2 * M_PI * radius * radius;
}

} // namespace coterie::world
