#include "world/terrain.hh"

#include <algorithm>
#include <cmath>

#include "support/rng.hh"

namespace coterie::world {

using geom::Ray;
using geom::Vec2;
using geom::Vec3;

Terrain::Terrain(const TerrainParams &params) : params_(params) {}

namespace {

/** Quintic fade for value-noise interpolation. */
double
fade(double t)
{
    return t * t * t * (t * (t * 6.0 - 15.0) + 10.0);
}

double
latticeValue(std::int64_t ix, std::int64_t iy, std::uint64_t seed,
             std::uint64_t salt)
{
    std::uint64_t h = hashCombine(seed ^ salt,
                                  hashCombine(hashMix(ix), hashMix(iy)));
    h = hashMix(h);
    return (h >> 11) * 0x1.0p-53 * 2.0 - 1.0; // [-1, 1)
}

} // namespace

double
Terrain::noise2(double x, double y, std::uint64_t salt) const
{
    const double fx = std::floor(x);
    const double fy = std::floor(y);
    const auto ix = static_cast<std::int64_t>(fx);
    const auto iy = static_cast<std::int64_t>(fy);
    const double tx = fade(x - fx);
    const double ty = fade(y - fy);
    const double v00 = latticeValue(ix, iy, params_.seed, salt);
    const double v10 = latticeValue(ix + 1, iy, params_.seed, salt);
    const double v01 = latticeValue(ix, iy + 1, params_.seed, salt);
    const double v11 = latticeValue(ix + 1, iy + 1, params_.seed, salt);
    const double a = v00 + (v10 - v00) * tx;
    const double b = v01 + (v11 - v01) * tx;
    return a + (b - a) * ty;
}

double
Terrain::fractal(Vec2 p) const
{
    double amp = 1.0;
    double freq = 1.0 / params_.featureScale;
    double sum = 0.0;
    double norm = 0.0;
    for (int o = 0; o < params_.octaves; ++o) {
        sum += amp * noise2(p.x * freq, p.y * freq,
                            0x5eedULL + static_cast<std::uint64_t>(o));
        norm += amp;
        amp *= 0.5;
        freq *= 2.0;
    }
    return norm > 0.0 ? sum / norm : 0.0;
}

double
Terrain::heightAt(Vec2 p) const
{
    if (params_.flat)
        return 0.0;
    return params_.amplitude * fractal(p);
}

Vec3
Terrain::normalAt(Vec2 p) const
{
    if (params_.flat)
        return {0.0, 1.0, 0.0};
    const double eps = 0.25;
    const double hx =
        heightAt({p.x + eps, p.y}) - heightAt({p.x - eps, p.y});
    const double hy =
        heightAt({p.x, p.y + eps}) - heightAt({p.x, p.y - eps});
    return Vec3{-hx / (2 * eps), 1.0, -hy / (2 * eps)}.normalized();
}

std::optional<double>
Terrain::intersect(const Ray &ray, double maxDist) const
{
    if (params_.flat) {
        // Plane y = 0.
        if (std::abs(ray.dir.y) < 1e-12)
            return std::nullopt;
        const double t = -ray.origin.y / ray.dir.y;
        if (t < ray.tMin || t > std::min(ray.tMax, maxDist))
            return std::nullopt;
        return t;
    }
    // Adaptive march (step grows with distance — angular error budget),
    // then bisection refinement. A ray whose clipped start is already
    // below the surface is treated as clipped out (no hit), matching
    // depth-interval clipping semantics in the renderer.
    double t_prev = ray.tMin;
    double h_prev = ray.origin.y + t_prev * ray.dir.y -
                    heightAt(ray.at(t_prev).ground());
    if (h_prev <= 0.0)
        return std::nullopt;
    const double limit = std::min(ray.tMax, maxDist);
    double t = t_prev;
    while (t < limit) {
        t = std::min(limit, t + std::max(0.35, t * 0.025));
        const Vec3 p = ray.at(t);
        // Early escape: climbing above any possible terrain.
        if (ray.dir.y >= 0.0 && p.y > params_.amplitude + 0.5)
            return std::nullopt;
        const double h = p.y - heightAt(p.ground());
        if (h <= 0.0) {
            double lo = t_prev, hi = t;
            for (int i = 0; i < 16; ++i) {
                const double mid = 0.5 * (lo + hi);
                const Vec3 mp = ray.at(mid);
                if (mp.y - heightAt(mp.ground()) <= 0.0)
                    hi = mid;
                else
                    lo = mid;
            }
            return hi;
        }
        t_prev = t;
        h_prev = h;
    }
    (void)h_prev;
    return std::nullopt;
}

image::Rgb
Terrain::colorAt(Vec2 p) const
{
    if (params_.flat)
        return {96, 92, 88}; // indoor floor
    const double h = heightAt(p);
    const double moisture =
        0.5 + 0.5 * noise2(p.x / 37.0, p.y / 37.0, 0x5151ULL);
    // Grass -> dirt -> rock blend with elevation.
    const double rockiness =
        std::clamp((h / std::max(params_.amplitude, 1e-9)) * 0.5 + 0.3,
                   0.0, 1.0);
    const auto mix = [](double a, double b, double t) {
        return a + (b - a) * t;
    };
    const double r = mix(mix(70, 110, moisture), 130, rockiness);
    const double g = mix(mix(120, 100, moisture), 125, rockiness);
    const double b = mix(mix(60, 60, moisture), 120, rockiness);
    return {static_cast<std::uint8_t>(r), static_cast<std::uint8_t>(g),
            static_cast<std::uint8_t>(b)};
}

double
Terrain::trianglesWithin(Vec2 /*p*/, double radius) const
{
    return params_.trianglesPerM2 * M_PI * radius * radius;
}

} // namespace coterie::world
