/**
 * @file
 * Multi-session fleet orchestration: a `SessionManager` multiplexes N
 * independent Coterie sessions ("coteries") over one shared
 * discrete-event queue, the shared thread pool, and one world-keyed
 * panorama render cache.
 *
 * Three robustness pillars (DESIGN.md §11):
 *
 *  - **Admission control.** A capacity model (session slots, total
 *    clients, estimated device render load) yields an explicit
 *    Admitted / Queued / Rejected verdict per submitted session;
 *    queued sessions wait in a bounded FIFO and start the instant
 *    capacity frees.
 *
 *  - **Overload detection + shedding.** A sim-time load governor
 *    samples each running session's deadline-miss rate (`LiveSlo`)
 *    and the DES backlog, and walks an escalating degradation ladder:
 *    conservative prefetch → stale-panorama substitution → quarantine
 *    of the worst-SLO session (at most one eviction per tick, after a
 *    strike count — shed always precedes evict). All inputs are
 *    simulation-time quantities, so governor decisions are
 *    bit-identical at any `COTERIE_THREADS`.
 *
 *  - **Fault isolation.** Each session runs behind the per-session
 *    error boundary (`FleetHooks`): an exception escaping its event
 *    code quarantines that session — fetches cancelled, pano-cache
 *    claims released, SLO label frozen — without perturbing sibling
 *    frame output (fleet_test asserts siblings byte-identical to solo
 *    runs).
 *
 * The empty fleet is a strict no-op: one submitted session with the
 * governor disabled produces frame output bit-identical to
 * `Session::runCoterieSystem()`.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/client.hh"
#include "core/session.hh"
#include "sim/lane_queue.hh"

namespace coterie::core {

/** Outcome of submitting a session to the manager. */
enum class AdmissionVerdict : std::uint8_t
{
    Admitted, ///< starts at its requested start time
    Queued,   ///< waits in the bounded admission queue for capacity
    Rejected, ///< queue full or the session can never fit
};

/** Lifecycle of a fleet session. */
enum class SessionPhase : std::uint8_t
{
    Queued,    ///< admitted to the wait queue, not yet started
    Running,   ///< frame loops live on the shared queue
    Completed, ///< ran to its horizon
    Evicted,   ///< quarantined by the load governor
    Faulted,   ///< quarantined by the error boundary
};

const char *admissionVerdictName(AdmissionVerdict v);
const char *sessionPhaseName(SessionPhase p);

/**
 * The capacity model admission control evaluates. Render load is
 * estimated as `players * rtFiMs * ticksPerSecond` — the steady-state
 * device render milliseconds one session adds per simulated second —
 * so a fleet of cheap sessions admits more coteries than a fleet of
 * expensive ones.
 */
struct FleetCapacity
{
    int maxSessions = 32;  ///< concurrent running sessions
    int maxClients = 128;  ///< concurrent players across sessions
    /** Estimated render load ceiling (ms of device render per
     *  simulated second, summed over running sessions). */
    double maxRenderLoadMsPerS = std::numeric_limits<double>::infinity();
    /** Bound on the admission wait queue; beyond it, Rejected. */
    int admissionQueueLimit = 8;
};

/**
 * Load-governor knobs. Disabled (the default) the governor never
 * runs — required for the strict no-op contract. Thresholds compare
 * against each session's `LiveSlo::windowMissRate()` over the
 * preceding tick; they must be ordered
 * `recover < shed < degrade < evict` for the ladder to be monotone.
 */
struct GovernorParams
{
    bool enabled = false;
    double tickMs = 500.0; ///< sampling cadence (sim time)
    /** Level 1 (throttlePrefetch) entry threshold. */
    double shedMissRate = 0.10;
    /** Level 2 (forceDegrade) entry threshold. */
    double degradeMissRate = 0.30;
    /** Eviction candidacy threshold (needs evictStrikes in a row). */
    double evictMissRate = 0.60;
    int evictStrikes = 3;
    /** Hysteresis: below this the session steps down one level. */
    double recoverMissRate = 0.02;
    /**
     * DES backlog pressure: when the pending-event count exceeds this,
     * shed/degrade thresholds are halved (the fleet reacts earlier
     * under global load). 0 disables the pressure signal. Pending
     * events are a deterministic sim-state quantity, unlike wall-clock
     * pool depth.
     */
    std::size_t pressureEvents = 0;
};

/** One session submission: a preprocessed base plus per-run overrides. */
struct FleetSessionSpec
{
    /** Preprocessed world/grid/catalogue; must outlive the manager.
     *  Sessions sharing a base (or bases built over the same shared
     *  pano cache) share renders. */
    const Session *base = nullptr;
    /** 0 = reuse the base's players and traces verbatim. */
    int players = 0;
    /** 0 = the base's trace duration. */
    double durationS = 0.0;
    /** Regenerate traces with this seed (0 = base traces verbatim;
     *  requires players/durationS defaults too). */
    std::uint64_t traceSeed = 0;
    /** Earliest start (absolute sim time on the shared clock). */
    double startMs = 0.0;
    /** Session tag for trace/SLO labels; empty = the base game name. */
    std::string label;
    /** Scripted chaos for this session (absolute sim times). Empty =
     *  clean run, collapsed to the pre-chaos code path. */
    sim::FaultPlan faults;
    net::ResilienceParams resilience{};
    net::FrameServerParams serverNet{};
    bool withCache = true;
    /** Record per-frame output logs (isolation assertions). */
    bool recordFrameLog = false;
    /** Error-boundary test hook (see SystemConfig::injectFaultAtMs). */
    double injectFaultAtMs = -1.0;
    /**
     * Bench mode: render a low-resolution far-BE panorama through the
     * shared world-keyed cache for every megaframe delivery, charged
     * to this session. Observe-only (pure compute outside the DES) —
     * it is how bench_fleet measures cross-session render sharing.
     */
    bool renderOnFetch = false;
    int renderWidth = 96;
    int renderHeight = 48;
};

/** Verdict handed back by SessionManager::submit. */
struct AdmissionDecision
{
    AdmissionVerdict verdict = AdmissionVerdict::Rejected;
    /** Session id (stable handle into FleetResult); 0 on rejection. */
    std::uint32_t id = 0;
    const char *reason = ""; ///< human-readable verdict cause
};

/** Per-session outcome in the fleet report. */
struct FleetSessionReport
{
    std::uint32_t id = 0;
    std::string label;
    SessionPhase phase = SessionPhase::Queued;
    /** Valid for Completed / Evicted / Faulted (partial results). */
    SystemResult result;
    LiveSlo slo;          ///< cumulative deadline accounting
    int shedLevel = 0;    ///< governor level at finish
    std::uint64_t fleetRenders = 0; ///< renderOnFetch renders issued
    std::string faultReason;        ///< Faulted only
    double startedAtMs = -1.0;
    double finishedAtMs = -1.0;
};

/** Whole-fleet outcome of SessionManager::run. */
struct FleetResult
{
    std::vector<FleetSessionReport> sessions; ///< in session-id order
    std::uint64_t admitted = 0;
    std::uint64_t queuedAdmissions = 0; ///< admitted via the wait queue
    std::uint64_t rejected = 0;
    std::uint64_t shedTransitions = 0;    ///< entries into level >= 1
    std::uint64_t degradeTransitions = 0; ///< entries into level >= 2
    std::uint64_t evictions = 0;
    std::uint64_t faults = 0;
    PanoCacheStats panoCache; ///< shared-cache counters at the end
    double horizonMs = 0.0;   ///< sim time when the queue drained
};

/**
 * Owns the shared event queue, the shared world-keyed panorama render
 * cache, and every fleet session's lifecycle. Usage:
 *
 *   SessionManager mgr(capacity, governor);
 *   SessionParams sp;
 *   sp.frameStore.sharedPanoCache = mgr.panoCache();
 *   auto base = Session::create(game, sp);
 *   mgr.submit({.base = base.get()});
 *   FleetResult fleet = mgr.run();
 *
 * Not thread-safe: submit/run from one thread. Internally run() drives
 * the parallel discrete-event engine (`sim::ParallelEventQueue`,
 * DESIGN.md §12): each session's events live in their own lane and
 * lanes advance concurrently on the shared pool between control-plane
 * barriers (admission wakes, governor ticks, finalize horizons), so a
 * fleet simulates on every core while staying bit-identical at any
 * `COTERIE_THREADS`. Pass @p serialEngine true for the one-core
 * baseline (the pre-lane behaviour; what benches A/B against).
 */
class SessionManager : public FleetHooks
{
  public:
    explicit SessionManager(FleetCapacity capacity = {},
                            GovernorParams governor = {},
                            std::size_t panoCacheBytes = 256ull << 20,
                            bool serialEngine = false);
    ~SessionManager() override;

    SessionManager(const SessionManager &) = delete;
    SessionManager &operator=(const SessionManager &) = delete;

    /** The shared render cache, for SessionParams::frameStore. */
    std::shared_ptr<PanoramaRenderCache> panoCache() const;

    /** The shared event queue (tests may inspect `now()`). */
    sim::EventQueue &queue();

    /**
     * Evaluate the capacity model and either schedule the session
     * (Admitted), park it in the bounded wait queue (Queued), or turn
     * it away (Rejected). Call before run(); admission of queued
     * sessions happens automatically as capacity frees.
     */
    AdmissionDecision submit(FleetSessionSpec spec);

    /**
     * Drain the shared queue to completion and assemble the fleet
     * report. Call once. Sessions still queued when every running
     * session has finished are started then (capacity permitting).
     */
    FleetResult run();

    // --- FleetHooks (invoked by sessions; observe-only).
    void onFrameFetched(std::uint32_t session, std::uint64_t gridKey,
                        int playerId, std::uint64_t bytes) override;
    void onSessionFault(std::uint32_t session, const char *what) override;

  private:
    struct SessionState;

    /** Capacity check against the currently running set. */
    bool fits(const FleetSessionSpec &spec, const char **why) const;
    double estimatedLoadMsPerS(const FleetSessionSpec &spec) const;
    std::uint32_t adopt(FleetSessionSpec spec, bool viaQueue);
    void startSession(SessionState &s);
    void finalizeSession(SessionState &s, SessionPhase phase,
                         double finishedAt);
    /** Control-plane half of a fault confinement (may run deferred at
     *  a round barrier; @p faultAt is the faulting lane's sim time). */
    void confirmSessionFault(std::uint32_t session, double faultAt);
    /** Round-barrier hook: the deferred renderOnFetch batch (serial
     *  deterministic cache decisions, parallel renders). */
    void drainRenderBatch();
    void drainAdmissionQueue();
    void armGovernor();
    void governorTick();

    FleetCapacity capacity_;
    GovernorParams governor_;
    std::shared_ptr<PanoramaRenderCache> panoCache_;
    sim::ParallelEventQueue queue_;

    /** All adopted sessions, id order (id = index + 1; 0 is the
     *  solo/unattributed pano-cache owner). */
    std::vector<std::unique_ptr<SessionState>> sessions_;
    /** Admission wait queue. Bounded by
     *  `capacity_.admissionQueueLimit` (checked in submit). */
    std::deque<std::uint32_t> admissionQueue_;

    int runningSessions_ = 0;
    int runningClients_ = 0;
    double runningLoadMsPerS_ = 0.0;
    bool governorArmed_ = false;
    bool ran_ = false;

    // Fleet-level counters for the report.
    std::uint64_t admitted_ = 0;
    std::uint64_t queuedAdmissions_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t shedTransitions_ = 0;
    std::uint64_t degradeTransitions_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t faults_ = 0;
};

} // namespace coterie::core
