/**
 * @file
 * Far-BE prefetcher (paper §5.2).
 *
 * When the player arrives at a new grid point moving in some direction,
 * the prefetcher computes the set of upcoming grid points whose frames
 * must be available (the next point along the heading plus its lateral
 * neighbours, covering head-turn/strafe uncertainty) and asks the frame
 * cache which of them still need fetching. Cache reuse both reduces
 * fetch frequency and widens the fetch deadline window.
 */

#pragma once

#include <vector>

#include "core/frame_cache.hh"
#include "core/partitioner.hh"
#include "world/grid.hh"
#include "world/world.hh"

namespace coterie::core {

/** Prefetcher tuning. */
struct PrefetcherParams
{
    /** How many grid steps ahead along the heading to cover. */
    int lookaheadSteps = 2;
    /** Lateral neighbour spread (grid steps) around the predicted
     *  path, covering direction changes. */
    int lateralSpread = 1;
    /**
     * Near-BE set signatures are evaluated from a quantized anchor
     * cell of this edge length rather than per grid point. A 3 cm
     * move cannot make a visually significant object wholly vanish
     * from the merged frame (boundary-straddling objects render
     * partially in both layers — paper footnote 2), so per-point
     * signatures would churn without correctness benefit.
     */
    double signatureCellM = 1.5;

    /**
     * The minimal-speculation shape of these params: cover only the
     * single predicted next grid point (lookahead 1, no lateral
     * spread). This is both the cache-less fetch policy (the Figure 11
     * "w/o cache" variant, Multi-Furion's shape) and what the fleet
     * load governor switches a session to when shedding load — fewer
     * speculative far-BE fetches, at the cost of less head-turn cover.
     */
    PrefetcherParams
    conservative() const
    {
        PrefetcherParams p = *this;
        p.lookaheadSteps = 1;
        p.lateralSpread = 0;
        return p;
    }
};

/** A frame the prefetcher wants fetched. */
struct PrefetchTarget
{
    world::GridPoint point;
    std::uint64_t gridKey = 0;
};

/**
 * Computes prefetch sets and consults the cache. Stateless apart from
 * configuration; owned by each client.
 */
class Prefetcher
{
  public:
    Prefetcher(const world::VirtualWorld &world, const world::GridMap &grid,
               const RegionIndex &regions, PrefetcherParams params = {});

    /**
     * The set of grid points that must be covered when the player is
     * at @p exactPos (snapped to @p at) heading along @p dirRadians.
     */
    std::vector<world::GridPoint> coverSet(world::GridPoint at,
                                           geom::Vec2 exactPos,
                                           double dirRadians) const;

    /**
     * Of the cover set, the targets the cache cannot serve (these get
     * requested from the server). @p thresholds maps leaf id -> dist
     * threshold. Pass nullptr cache to disable caching (fetch all).
     */
    std::vector<PrefetchTarget> misses(world::GridPoint at,
                                       geom::Vec2 exactPos,
                                       double dirRadians, FrameCache *cache,
                                       const std::vector<double> &thresholds)
        const;

    /**
     * Rejoin re-sync set: after a disconnect the movement heading is
     * stale, so cover *all* directions — the union of cover sets over
     * eight headings around @p at (the current point first), filtered
     * by what the cache can still serve. This is what restores a
     * rejoining client's frame-cache cover set in one burst.
     */
    std::vector<PrefetchTarget> resyncTargets(
        world::GridPoint at, geom::Vec2 exactPos, FrameCache *cache,
        const std::vector<double> &thresholds) const;

    /** Build a cache key for a grid point (near-set signature etc). */
    FrameCache::Key keyFor(world::GridPoint g) const;

  private:
    const world::VirtualWorld &world_;
    const world::GridMap &grid_;
    const RegionIndex &regions_;
    PrefetcherParams params_;
};

} // namespace coterie::core

