/**
 * @file
 * Adaptive cutoff scheme (paper §4.3): recursively quadtree-partition
 * the virtual world until the per-location maximal cutoff radiuses
 * within each subregion are roughly uniform; each leaf region gets the
 * minimum of its sampled radiuses. This reduces cutoff calculations
 * from hundreds of millions of grid points to a few hundred leaf
 * regions (Table 3).
 */

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/cutoff.hh"
#include "geom/region.hh"

namespace coterie::core {

/** Partitioning knobs. */
struct PartitionParams
{
    /** Samples per region (paper's K; K = 10 keeps Constraint-1
     *  violations under 0.25%, Figure 6). */
    int samplesPerRegion = 10;
    /**
     * Radius-uniformity test: a region splits when
     * (max - min) > max(absoluteSlack, relativeSlack * max).
     */
    double relativeSlack = 0.35;
    double absoluteSlack = 1.2;
    /**
     * Safety shrink applied to each leaf's minimal sampled radius: the
     * K samples can miss the densest spot of a region, so the recorded
     * cutoff keeps headroom (this is what pushes the Figure 6
     * violation rate toward zero at K = 10).
     */
    double cutoffSafetyFactor = 0.85;
    /** The world is always split at least this deep (the paper's
     *  shallowest quadtree is the complete depth-2 Bowling tree). */
    int minDepth = 2;
    /** Depth cap and minimum region edge stop the recursion. The
     *  offline tool never splits below 1/64 of the world edge (the
     *  deepest quadtree the paper reports is depth 6). A value of 0
     *  means "derive from the world bounds". */
    int maxDepth = 6;
    double minRegionEdge = 0.0;
    /**
     * Reachability predicate: the offline tool only processes grid
     * points the player can reach (e.g. the track corridor in racing
     * games). Sampling is restricted to reachable locations; regions
     * with no reachable locations become single unreachable leaves.
     * Null means everywhere is reachable.
     */
    std::function<bool(geom::Vec2)> reachable;
    std::uint64_t seed = 99;
    CutoffConstraint constraint{};
    /**
     * Threading for the per-region cutoff searches: 0 = shared pool,
     * 1 = serial. Leaf output is identical either way (sample
     * locations are always drawn on the caller thread).
     */
    int threads = 0;
};

/** One undivided ("leaf") region of the quadtree. */
struct LeafRegion
{
    std::uint32_t id = 0;
    geom::Rect rect;
    int depth = 0;
    /** Minimal sampled maximal cutoff radius: safe everywhere within. */
    double cutoffRadius = 0.0;
    /** Mean object-triangle density over the samples (tri/m^2). */
    double triangleDensity = 0.0;
    /** False when no reachable location was found in the region. */
    bool reachable = true;
};

/** Result of the adaptive partitioning. */
struct PartitionResult
{
    std::vector<LeafRegion> leaves;
    std::uint64_t cutoffCalculations = 0; ///< total sampled locations
    double avgLeafDepth = 0.0;
    int maxLeafDepth = 0;
    double wallClockSeconds = 0.0; ///< our actual compute time
    /**
     * Modeled offline processing time (hours) had each sampled cutoff
     * been measured with real pre-renders on the testbed, for
     * comparison against Table 3's "Proc. Time".
     */
    double modeledHours = 0.0;
};

/**
 * Spatial index over the leaves: maps a world position to its leaf
 * region (the frame-cache lookup's "same leaf region" criterion).
 */
class RegionIndex
{
  public:
    RegionIndex(geom::Rect bounds, std::vector<LeafRegion> leaves);

    /** Leaf containing @p p (bounds-clamped). */
    const LeafRegion &leafAt(geom::Vec2 p) const;

    const std::vector<LeafRegion> &leaves() const { return leaves_; }

    /** Cutoff radius in force at @p p. */
    double cutoffAt(geom::Vec2 p) const { return leafAt(p).cutoffRadius; }

  private:
    geom::Rect bounds_;
    std::vector<LeafRegion> leaves_;
    // Uniform lookup grid of leaf ids for O(1) point location.
    int gridCols_ = 0;
    int gridRows_ = 0;
    std::vector<std::uint32_t> lookup_;
};

/** Run the adaptive cutoff scheme over a world for a device. */
PartitionResult partitionWorld(const world::VirtualWorld &world,
                               const device::PhoneProfile &profile,
                               const PartitionParams &params = {});

/**
 * Fraction of trace locations whose region cutoff violates Constraint 1
 * (the Figure 6 metric), evaluated over @p locations.
 */
double constraintViolationRate(const world::VirtualWorld &world,
                               const device::PhoneProfile &profile,
                               const RegionIndex &index,
                               const std::vector<geom::Vec2> &locations,
                               const CutoffConstraint &constraint = {});

} // namespace coterie::core

