#include "core/pano_cache.hh"

#include <utility>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "support/logging.hh"

namespace coterie::core {

namespace {

/**
 * Emit cumulative hit/miss counter tracks when a trace is recording so
 * trace_report can chart the hit ratio over a run. Values are read
 * under the cache lock by the caller.
 */
void
tracePanoCounters(std::uint64_t hits, std::uint64_t misses)
{
    obs::TraceRecorder &recorder = obs::TraceRecorder::global();
    if (!recorder.enabled())
        return;
    recorder.counter("server.pano_cache.hits", static_cast<double>(hits));
    recorder.counter("server.pano_cache.misses",
                     static_cast<double>(misses));
}

} // namespace

std::shared_ptr<const image::Image>
PanoramaRenderCache::getOrRender(const PanoKey &key, const RenderFn &render,
                                 obs::FrameTraceContext *trace,
                                 std::uint32_t owner)
{
    const bool traced = trace != nullptr && trace->active();
    const std::uint64_t enteredNs = traced ? obs::monotonicNowNs() : 0;
    bool joined = false;
    std::uint64_t myClaim = 0;
    {
        support::MutexLock lock(mutex_);
        while (true) {
            auto it = entries_.find(key);
            if (it == entries_.end())
                break; // our miss: claim the render below
            if (it->second.image) {
                it->second.lastUse = ++useClock_;
                if (joined) {
                    // Already accounted as an inflight_join; the
                    // completed render we waited for is not a second
                    // cache event.
                } else {
                    ++stats_.hits;
                    COTERIE_COUNT("server.pano_cache.hit");
                }
                tracePanoCounters(stats_.hits, stats_.misses);
                if (traced) {
                    trace->hopWall(joined ? obs::Hop::CacheJoin
                                          : obs::Hop::CacheLookup,
                                   enteredNs, obs::monotonicNowNs());
                }
                return it->second.image;
            }
            // Someone else is rendering this key: join their flight.
            if (!joined) {
                joined = true;
                ++stats_.inflightJoins;
                COTERIE_COUNT("server.pano_cache.inflight_join");
            }
            readyCv_.wait(lock);
            // Re-check from scratch: the render may have completed,
            // failed (entry erased — we take over), or completed and
            // already been evicted.
        }
        Entry claim;
        claim.owner = owner;
        claim.claim = ++claimClock_;
        myClaim = claim.claim;
        entries_.emplace(key, claim);
        ++stats_.misses;
        COTERIE_COUNT("server.pano_cache.miss");
    }

    std::shared_ptr<const image::Image> image;
    const std::uint64_t renderBeginNs =
        traced ? obs::monotonicNowNs() : 0;
    try {
        COTERIE_SPAN("server.pano_cache.render", "core");
        image = std::make_shared<const image::Image>(render());
    } catch (...) {
        // Withdraw the claim so a waiter can take over the render —
        // unless releaseClaims already withdrew it (or a successor
        // re-claimed the key) while we were rendering.
        {
            support::MutexLock lock(mutex_);
            const auto it = entries_.find(key);
            if (it != entries_.end() && it->second.claim == myClaim)
                entries_.erase(it);
        }
        readyCv_.notifyAll();
        throw;
    }

    if (traced) {
        trace->hopWall(obs::Hop::Render, renderBeginNs,
                       obs::monotonicNowNs());
    }
    const std::size_t image_bytes =
        image->pixelCount() * sizeof(image::Rgb);
    {
        support::MutexLock lock(mutex_);
        const auto it = entries_.find(key);
        if (it == entries_.end() || it->second.claim != myClaim) {
            // Our claim was released (session teardown) or the key was
            // re-claimed by a successor: hand the image back uncached,
            // charging nobody, and leave the map to its new state.
            ++stats_.orphanRenders;
            COTERIE_COUNT("server.pano_cache.orphan_render");
            return image;
        }
        Entry &entry = it->second;
        COTERIE_ASSERT(!entry.image, "pano cache double render");
        entry.image = image;
        entry.lastUse = ++useClock_;
        entry.bytes = image_bytes;
        bytes_ += image_bytes;
        ownerBytes_[entry.owner] += image_bytes;
        evictLocked();
        stats_.bytes = bytes_;
        stats_.entries = entries_.size();
        COTERIE_GAUGE_SET("server.pano_cache.bytes", bytes_);
        tracePanoCounters(stats_.hits, stats_.misses);
    }
    readyCv_.notifyAll();
    return image;
}

std::optional<std::uint64_t>
PanoramaRenderCache::batchLookupOrClaim(const PanoKey &key,
                                        std::uint32_t owner)
{
    support::MutexLock lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
        // Resident, or claimed earlier in this batch (image still
        // null): a hit either way — under the serial engine the
        // earlier request's render would already have completed.
        if (it->second.image)
            it->second.lastUse = ++useClock_;
        ++stats_.hits;
        COTERIE_COUNT("server.pano_cache.hit");
        tracePanoCounters(stats_.hits, stats_.misses);
        return std::nullopt;
    }
    Entry claim;
    claim.owner = owner;
    claim.claim = ++claimClock_;
    entries_.emplace(key, claim);
    ++stats_.misses;
    COTERIE_COUNT("server.pano_cache.miss");
    return claim.claim;
}

void
PanoramaRenderCache::publishClaimed(const PanoKey &key,
                                    std::uint64_t claimToken,
                                    image::Image image)
{
    const auto shared =
        std::make_shared<const image::Image>(std::move(image));
    const std::size_t image_bytes =
        shared->pixelCount() * sizeof(image::Rgb);
    {
        support::MutexLock lock(mutex_);
        const auto it = entries_.find(key);
        if (it == entries_.end() || it->second.claim != claimToken) {
            // The claim was withdrawn (session teardown) between the
            // decision pass and this publish: drop the image uncached,
            // matching getOrRender's orphan path.
            ++stats_.orphanRenders;
            COTERIE_COUNT("server.pano_cache.orphan_render");
            return;
        }
        Entry &entry = it->second;
        COTERIE_ASSERT(!entry.image, "pano cache double publish");
        entry.image = shared;
        entry.lastUse = ++useClock_;
        entry.bytes = image_bytes;
        bytes_ += image_bytes;
        ownerBytes_[entry.owner] += image_bytes;
        evictLocked();
        stats_.bytes = bytes_;
        stats_.entries = entries_.size();
        COTERIE_GAUGE_SET("server.pano_cache.bytes", bytes_);
        tracePanoCounters(stats_.hits, stats_.misses);
    }
    readyCv_.notifyAll();
}

void
PanoramaRenderCache::evictLocked()
{
    while (bytes_ > budgetBytes_) {
        // Per-session fairness: pick the victim *owner* first — the
        // one with the largest resident charge (ties break toward the
        // lower owner id for determinism) — then evict that owner's
        // LRU completed entry. With a single owner this degenerates to
        // the original global LRU policy exactly.
        std::uint32_t victimOwner = 0;
        std::uint64_t victimCharge = 0;
        bool haveOwner = false;
        for (const auto &[ownerId, charge] : ownerBytes_) {
            if (charge == 0)
                continue;
            if (!haveOwner || charge > victimCharge ||
                (charge == victimCharge && ownerId < victimOwner)) {
                haveOwner = true;
                victimOwner = ownerId;
                victimCharge = charge;
            }
        }
        auto victim = entries_.end();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (!it->second.image)
                continue; // never evict an in-flight render
            if (haveOwner && it->second.owner != victimOwner)
                continue;
            if (victim == entries_.end() ||
                it->second.lastUse < victim->second.lastUse)
                victim = it;
        }
        if (victim == entries_.end())
            return; // only in-flight entries remain
        bytes_ -= victim->second.bytes;
        auto charged = ownerBytes_.find(victim->second.owner);
        if (charged != ownerBytes_.end()) {
            charged->second -= victim->second.bytes;
            if (charged->second == 0)
                ownerBytes_.erase(charged);
        }
        ++stats_.evictions;
        stats_.evictedBytes += victim->second.bytes;
        COTERIE_COUNT_N("server.pano_cache.evicted_bytes",
                        victim->second.bytes);
        entries_.erase(victim);
    }
}

std::size_t
PanoramaRenderCache::releaseClaims(std::uint32_t owner)
{
    std::size_t released = 0;
    {
        support::MutexLock lock(mutex_);
        for (auto it = entries_.begin(); it != entries_.end();) {
            if (!it->second.image && it->second.owner == owner) {
                it = entries_.erase(it);
                ++released;
            } else {
                ++it;
            }
        }
        stats_.claimsReleased += released;
        stats_.entries = entries_.size();
    }
    if (released > 0) {
        // Wake single-flight waiters parked on the withdrawn claims;
        // they re-check, find the key absent, and take over cleanly.
        readyCv_.notifyAll();
        COTERIE_COUNT_N("server.pano_cache.claims_released", released);
    }
    return released;
}

std::uint64_t
PanoramaRenderCache::ownerBytes(std::uint32_t owner) const
{
    support::MutexLock lock(mutex_);
    const auto it = ownerBytes_.find(owner);
    return it != ownerBytes_.end() ? it->second : 0;
}

PanoCacheStats
PanoramaRenderCache::stats() const
{
    support::MutexLock lock(mutex_);
    PanoCacheStats out = stats_;
    out.bytes = bytes_;
    out.entries = entries_.size();
    return out;
}

void
PanoramaRenderCache::clear()
{
    support::MutexLock lock(mutex_);
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (it->second.image) {
            bytes_ -= it->second.bytes;
            auto charged = ownerBytes_.find(it->second.owner);
            if (charged != ownerBytes_.end()) {
                charged->second -= it->second.bytes;
                if (charged->second == 0)
                    ownerBytes_.erase(charged);
            }
            it = entries_.erase(it);
        } else {
            ++it;
        }
    }
    stats_.bytes = bytes_;
    stats_.entries = entries_.size();
    COTERIE_GAUGE_SET("server.pano_cache.bytes", bytes_);
}

} // namespace coterie::core
