#include "core/fleet.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>

#include "obs/flight.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "support/logging.hh"
#include "support/parallel.hh"
#include "support/rng.hh"
#include "trace/trajectory.hh"

namespace coterie::core {

const char *
admissionVerdictName(AdmissionVerdict v)
{
    switch (v) {
      case AdmissionVerdict::Admitted: return "admitted";
      case AdmissionVerdict::Queued: return "queued";
      case AdmissionVerdict::Rejected: return "rejected";
    }
    return "unknown";
}

const char *
sessionPhaseName(SessionPhase p)
{
    switch (p) {
      case SessionPhase::Queued: return "queued";
      case SessionPhase::Running: return "running";
      case SessionPhase::Completed: return "completed";
      case SessionPhase::Evicted: return "evicted";
      case SessionPhase::Faulted: return "faulted";
    }
    return "unknown";
}

/** Everything the manager tracks for one adopted session. */
struct SessionManager::SessionState
{
    std::uint32_t id = 0;
    FleetSessionSpec spec; ///< stable storage for config.faults
    SessionPhase phase = SessionPhase::Queued;
    SystemConfig config;
    /** Regenerated traces when the spec overrides the base's. */
    std::optional<trace::SessionTrace> ownTraces;
    std::unique_ptr<SplitSystemRun> run;
    SystemResult result; ///< assembled at finalize
    int players = 0;
    double loadMsPerS = 0.0;
    int level = 0;   ///< governor shed level (0..2)
    int strikes = 0; ///< consecutive ticks above evictMissRate
    LiveSlo slo;     ///< last sample (cumulative fields authoritative)
    std::uint64_t fleetRenders = 0;
    std::string faultReason;
    double startedAtMs = -1.0;
    double finishedAtMs = -1.0;
    bool finalized = false;
    /** DES lane this session's events run in (0 = serial engine). */
    std::uint32_t lane = 0;
    /** renderOnFetch grid keys deferred to the round barrier. Written
     *  only by this session's lane, drained (and cleared) at every
     *  barrier, so growth is bounded by one round's deliveries. */
    std::vector<std::uint64_t> pendingRenders;
};

SessionManager::SessionManager(FleetCapacity capacity,
                               GovernorParams governor,
                               std::size_t panoCacheBytes,
                               bool serialEngine)
    : capacity_(capacity), governor_(governor),
      panoCache_(std::make_shared<PanoramaRenderCache>(panoCacheBytes)),
      queue_(/*laneMode=*/!serialEngine)
{
    queue_.setBarrierHook([this] { drainRenderBatch(); });
    COTERIE_ASSERT(governor_.recoverMissRate <= governor_.shedMissRate &&
                       governor_.shedMissRate <=
                           governor_.degradeMissRate &&
                       governor_.degradeMissRate <=
                           governor_.evictMissRate,
                   "governor thresholds must be ordered "
                   "recover <= shed <= degrade <= evict");
}

SessionManager::~SessionManager() = default;

std::shared_ptr<PanoramaRenderCache>
SessionManager::panoCache() const
{
    return panoCache_;
}

sim::EventQueue &
SessionManager::queue()
{
    return queue_;
}

double
SessionManager::estimatedLoadMsPerS(const FleetSessionSpec &spec) const
{
    const int players =
        spec.players > 0 ? spec.players : spec.base->params().players;
    const SystemConfig probe = spec.base->systemConfig();
    // Steady-state device render cost: one FI render per display tick
    // per player. This is the admission-time estimate; the governor
    // corrects for reality from live deadline misses.
    return players * probe.rtFiMs * (1000.0 / probe.tickMs);
}

bool
SessionManager::fits(const FleetSessionSpec &spec, const char **why) const
{
    const int players =
        spec.players > 0 ? spec.players : spec.base->params().players;
    if (runningSessions_ + 1 > capacity_.maxSessions) {
        *why = "session slots exhausted";
        return false;
    }
    if (runningClients_ + players > capacity_.maxClients) {
        *why = "client capacity exhausted";
        return false;
    }
    if (runningLoadMsPerS_ + estimatedLoadMsPerS(spec) >
        capacity_.maxRenderLoadMsPerS) {
        *why = "render load ceiling exceeded";
        return false;
    }
    *why = "fits";
    return true;
}

std::uint32_t
SessionManager::adopt(FleetSessionSpec spec, bool viaQueue)
{
    auto state = std::make_unique<SessionState>();
    SessionState &s = *state;
    s.id = static_cast<std::uint32_t>(sessions_.size()) + 1;
    s.spec = std::move(spec);
    s.players = s.spec.players > 0 ? s.spec.players
                                   : s.spec.base->params().players;
    s.loadMsPerS = estimatedLoadMsPerS(s.spec);

    s.config = s.spec.base->systemConfig();
    if (!s.spec.label.empty())
        s.config.sessionTag = s.spec.label;
    // Empty plans collapse to a null pointer inside the run (strict
    // no-op contract); non-empty plans point into the spec copy above,
    // which lives exactly as long as the manager.
    s.config.faults = s.spec.faults.empty() ? nullptr : &s.spec.faults;
    s.config.resilience = s.spec.resilience;
    s.config.serverNet = s.spec.serverNet;
    s.config.recordFrameLog = s.spec.recordFrameLog;
    s.config.injectFaultAtMs = s.spec.injectFaultAtMs;
    if (s.spec.players > 0 || s.spec.durationS > 0.0 ||
        s.spec.traceSeed != 0) {
        // The spec departs from the base's trace set: regenerate with
        // the same derivation session-setup uses, so traceSeed == 0
        // stays in the base's seed family.
        trace::TrajectoryParams tp;
        tp.players = s.players;
        tp.durationS = s.spec.durationS > 0.0
                           ? s.spec.durationS
                           : s.spec.base->params().durationS;
        tp.seed = s.spec.traceSeed != 0
                      ? s.spec.traceSeed
                      : hashCombine(s.spec.base->params().seed, 0x77ace);
        s.ownTraces = trace::generateTrace(s.spec.base->info(),
                                           s.spec.base->world(), tp);
        s.config.traces = &*s.ownTraces;
    }
    s.phase = viaQueue ? SessionPhase::Queued : SessionPhase::Running;
    sessions_.push_back(std::move(state));
    return sessions_.back()->id;
}

AdmissionDecision
SessionManager::submit(FleetSessionSpec spec)
{
    COTERIE_ASSERT(spec.base != nullptr,
                   "fleet session needs a base Session");
    COTERIE_ASSERT(!ran_, "submit() after run() is not supported");
    const int players =
        spec.players > 0 ? spec.players : spec.base->params().players;

    // Sessions that could never fit an empty fleet are rejected
    // outright rather than parked in the queue forever.
    const bool never_fits =
        capacity_.maxSessions < 1 || players > capacity_.maxClients ||
        estimatedLoadMsPerS(spec) > capacity_.maxRenderLoadMsPerS;
    const char *why = "";
    if (!never_fits && fits(spec, &why)) {
        const double start_at =
            std::max(queue_.now(), spec.startMs);
        const std::uint32_t id = adopt(std::move(spec), false);
        // Capacity is reserved at admission, not start, so a burst of
        // future-start submissions cannot over-commit the fleet.
        ++runningSessions_;
        runningClients_ += sessions_[id - 1]->players;
        runningLoadMsPerS_ += sessions_[id - 1]->loadMsPerS;
        ++admitted_;
        COTERIE_COUNT("fleet.admission.admitted");
        // The manager outlives the queue run; session ids are never
        // reused, so the wake needs no revalidation.
        queue_.scheduleAt( // lint:allow(epoch-guarded-schedule)
            start_at, [this, id] { startSession(*sessions_[id - 1]); });
        return {AdmissionVerdict::Admitted, id, "admitted"};
    }
    if (!never_fits &&
        admissionQueue_.size() <
            static_cast<std::size_t>(
                std::max(0, capacity_.admissionQueueLimit))) {
        const std::uint32_t id = adopt(std::move(spec), true);
        admissionQueue_.push_back(id);
        COTERIE_COUNT("fleet.admission.queued");
        return {AdmissionVerdict::Queued, id, why};
    }
    ++rejected_;
    COTERIE_COUNT("fleet.admission.rejected");
    return {AdmissionVerdict::Rejected, 0,
            never_fits ? "exceeds fleet capacity outright"
                       : "admission queue full"};
}

void
SessionManager::startSession(SessionState &s)
{
    s.phase = SessionPhase::Running;
    s.startedAtMs = queue_.now();
    // The session's whole object graph is constructed *into* its own
    // event lane: ctor-time scheduling (fault-driver arming, client
    // frame staggering) and every nested scheduleAt/scheduleIn the
    // session ever makes land in the lane, so the per-session stack
    // needs no lane awareness. The lane clock starts at the control
    // clock, exactly like admission on the old shared serial queue.
    s.lane = queue_.createLane();
    queue_.runInLane(s.lane, [&] {
        s.run = std::make_unique<SplitSystemRun>(
            queue_, s.config, SplitVariant::coterie(s.spec.withCache),
            s.spec.base->distThresholds(), "Coterie", this, s.id);
        s.run->start();
    });
    COTERIE_COUNT("fleet.session_started");
    obs::flight::recordInstant("fleet.session_started", "fleet",
                               queue_.now());
    // Finalize at the same trailing-delivery cutoff the solo wrapper
    // drains to — but strictly *after* every event at the horizon
    // instant (runUntil includes events at `when == horizon`; the
    // next representable double is the earliest time past all of
    // them), so fleet results match solo results bit for bit.
    const double horizon =
        queue_.now() + s.run->durationMs() + SplitSystemRun::settleMs();
    const std::uint32_t id = s.id;
    queue_.scheduleAt( // lint:allow(epoch-guarded-schedule)
        std::nextafter(horizon, std::numeric_limits<double>::infinity()),
        [this, id] {
            SessionState &state = *sessions_[id - 1];
            if (!state.finalized)
                finalizeSession(state, SessionPhase::Completed,
                                queue_.now());
        });
    armGovernor();
}

void
SessionManager::finalizeSession(SessionState &s, SessionPhase phase,
                                double finishedAt)
{
    if (s.finalized)
        return;
    s.finalized = true;
    s.phase = phase;
    s.run->shutdown(); // no-op when already quarantined
    s.slo = s.run->sampleSlo();
    s.result = s.run->finish();
    // For a confined fault this is the faulting lane's sim time, not
    // the barrier the confinement was deferred to — the report's
    // timeline reads the same as the serial engine's.
    s.finishedAtMs = finishedAt;
    // Fault isolation invariant: a departing session leaves nothing
    // pinned in the shared cache — in-flight claims are withdrawn so
    // sibling waiters take over, completed entries stay (they are
    // world-keyed shareable data, charged to this id until evicted).
    panoCache_->releaseClaims(s.id);
    --runningSessions_;
    runningClients_ -= s.players;
    runningLoadMsPerS_ -= s.loadMsPerS;
    COTERIE_COUNT("fleet.session_finished");
    drainAdmissionQueue();
}

void
SessionManager::drainAdmissionQueue()
{
    // FIFO with head-of-line blocking: admission order is a fairness
    // promise, so a large queued session is not overtaken by smaller
    // later ones.
    const char *why = "";
    while (!admissionQueue_.empty()) {
        SessionState &s = *sessions_[admissionQueue_.front() - 1];
        if (!fits(s.spec, &why))
            break;
        admissionQueue_.pop_front();
        ++runningSessions_;
        runningClients_ += s.players;
        runningLoadMsPerS_ += s.loadMsPerS;
        ++queuedAdmissions_;
        COTERIE_COUNT("fleet.admission.dequeued");
        startSession(s);
    }
}

void
SessionManager::armGovernor()
{
    if (!governor_.enabled || governorArmed_)
        return;
    governorArmed_ = true;
    // The manager outlives the run; governorTick re-checks the
    // running set itself.
    queue_.scheduleIn( // lint:allow(epoch-guarded-schedule)
        governor_.tickMs, [this] { governorTick(); });
}

void
SessionManager::governorTick()
{
    // Deterministic overload signal: the DES backlog (a pure function
    // of simulation state) stands in for pool queue depth; under
    // pressure the ladder reacts at half the usual miss rates.
    const bool pressured =
        governor_.pressureEvents > 0 &&
        queue_.pending() > governor_.pressureEvents;
    const double scale = pressured ? 0.5 : 1.0;

    SessionState *worst = nullptr;
    double worst_miss = 0.0;
    for (const auto &sp : sessions_) { // id order => deterministic
        SessionState &s = *sp;
        if (s.phase != SessionPhase::Running || s.finalized || !s.run)
            continue;
        s.slo = s.run->sampleSlo();
        double miss = s.slo.windowMissRate();
        if (s.slo.windowFrames == 0) {
            if (queue_.now() < s.startedAtMs + s.run->durationMs()) {
                // Mid-run with zero committed frames: the session is
                // fully stalled, which is strictly worse than any
                // nonzero miss rate. Treat the empty window as 100%
                // missing so the ladder can still reach it.
                miss = 1.0;
            } else {
                // Settle tail past the horizon: no signal, no strikes.
                s.strikes = 0;
                continue;
            }
        }
        int level = s.level;
        if (miss >= governor_.degradeMissRate * scale)
            level = 2;
        else if (miss >= governor_.shedMissRate * scale)
            level = std::max(level, 1);
        else if (miss <= governor_.recoverMissRate)
            level = std::max(0, level - 1); // hysteresis: one step down
        if (level != s.level) {
            if (s.level < 1 && level >= 1) {
                ++shedTransitions_;
                COTERIE_COUNT("fleet.governor.shed");
            }
            if (s.level < 2 && level >= 2) {
                ++degradeTransitions_;
                COTERIE_COUNT("fleet.governor.degrade");
            }
            s.level = level;
            s.run->throttlePrefetch(level >= 1);
            s.run->forceDegrade(level >= 2);
            obs::flight::recordInstant("fleet.governor.level_change",
                                       "fleet", queue_.now());
        }
        if (miss >= governor_.evictMissRate * scale)
            ++s.strikes;
        else
            s.strikes = 0;
        // Worst-SLO candidate; strict > keeps the lowest id on ties.
        if (s.strikes >= governor_.evictStrikes &&
            (worst == nullptr || miss > worst_miss)) {
            worst = &s;
            worst_miss = miss;
        }
    }
    // At most one eviction per tick: overload relief is gradual (shed
    // and degrade always precede eviction because the entry
    // thresholds are ordered and strikes take evictStrikes ticks).
    if (worst != nullptr) {
        worst->run->quarantine();
        ++evictions_;
        COTERIE_COUNT("fleet.session_evicted");
        obs::flight::recordInstant("fleet.session_evicted", "fleet",
                                   queue_.now());
        finalizeSession(*worst, SessionPhase::Evicted, queue_.now());
    }

    bool any_running = false;
    for (const auto &sp : sessions_)
        if (sp->phase == SessionPhase::Running && !sp->finalized)
            any_running = true;
    if (any_running) {
        queue_.scheduleIn( // lint:allow(epoch-guarded-schedule)
            governor_.tickMs, [this] { governorTick(); });
    } else {
        governorArmed_ = false; // re-armed by the next startSession
    }
}

void
SessionManager::onFrameFetched(std::uint32_t session,
                               std::uint64_t gridKey, int playerId,
                               std::uint64_t bytes)
{
    (void)playerId;
    (void)bytes;
    SessionState &s = *sessions_[session - 1];
    if (!s.spec.renderOnFetch)
        return;
    ++s.fleetRenders;
    if (queue_.currentLane() != 0) {
        // Lane context (parallel engine): the shared cache's hit/miss
        // accounting must not depend on how lanes interleave on the
        // pool, so the render is deferred to the round barrier, where
        // drainRenderBatch makes every cache decision serially in
        // (lane, delivery) order. SessionState is lane-owned between
        // barriers, so this buffer needs no lock.
        s.pendingRenders.push_back(gridKey);
        return;
    }
    // Serial engine: realize the delivered megaframe as an actual
    // far-BE render through the shared world-keyed cache, charged to
    // this session. Pure compute outside the DES — the result never
    // feeds back into simulation state, so frame output is unchanged.
    const world::GridMap &grid = s.spec.base->grid();
    const auto cols = static_cast<std::uint64_t>(grid.cols());
    const world::GridPoint g{
        static_cast<std::int64_t>(gridKey % cols),
        static_cast<std::int64_t>(gridKey / cols)};
    s.spec.base->frames().farBePanorama(
        grid.position(g), /*distThresh=*/0.0, s.spec.renderWidth,
        s.spec.renderHeight, /*threads=*/1, nullptr, session);
}

void
SessionManager::drainRenderBatch()
{
    // Phase A — serial cache decisions in (lane id, delivery order):
    // the deterministic merge order. First request for an absent key
    // claims the render (the miss, charged to that session); every
    // later request of the same key in the batch is a hit, exactly as
    // if the renders had completed synchronously in that order on the
    // serial engine.
    struct Claimed
    {
        const Session *base;
        FrameStore::FarBeLookup lookup;
        std::uint64_t token;
    };
    std::vector<Claimed> claimed;
    for (const auto &sp : sessions_) {
        SessionState &s = *sp;
        if (s.pendingRenders.empty())
            continue;
        const world::GridMap &grid = s.spec.base->grid();
        const auto cols = static_cast<std::uint64_t>(grid.cols());
        for (const std::uint64_t gridKey : s.pendingRenders) {
            const world::GridPoint g{
                static_cast<std::int64_t>(gridKey % cols),
                static_cast<std::int64_t>(gridKey / cols)};
            FrameStore::FarBeLookup lookup =
                s.spec.base->frames().farBeLookup(
                    grid.position(g), /*distThresh=*/0.0,
                    s.spec.renderWidth, s.spec.renderHeight);
            if (const auto token = panoCache_->batchLookupOrClaim(
                    lookup.key, s.id)) {
                claimed.push_back(Claimed{s.spec.base, lookup, *token});
            }
        }
        s.pendingRenders.clear();
    }
    if (claimed.empty())
        return;
    // Phase B — only the actual renders fan out over the pool. This is
    // where the fleet's dominant compute runs N-wide.
    auto images = support::parallelMap<image::Image>(
        static_cast<std::int64_t>(claimed.size()), 1,
        [&](std::int64_t i) {
            const Claimed &c = claimed[static_cast<std::size_t>(i)];
            return c.base->frames().renderFarBe(c.lookup, /*threads=*/1);
        });
    // Phase C — serial publication in the same order: charging, LRU
    // bookkeeping, and eviction are pure functions of the batch.
    for (std::size_t i = 0; i < claimed.size(); ++i)
        panoCache_->publishClaimed(claimed[i].lookup.key,
                                   claimed[i].token,
                                   std::move(images[i]));
}

void
SessionManager::onSessionFault(std::uint32_t session, const char *what)
{
    SessionState &s = *sessions_[session - 1];
    s.faultReason = what != nullptr ? what : "unknown";
    if (queue_.currentLane() != 0) {
        // Lane context: the confinement's manager half (fault
        // counters, capacity release, admission-queue drain) mutates
        // control-plane state, so it is deferred to the round barrier.
        // The faulting lane's sim time rides along so the report reads
        // identically to the serial engine's.
        const double faultAt = queue_.now();
        queue_.postControl([this, session, faultAt] {
            confirmSessionFault(session, faultAt);
        });
        return;
    }
    confirmSessionFault(session, queue_.now());
}

void
SessionManager::confirmSessionFault(std::uint32_t session, double faultAt)
{
    SessionState &s = *sessions_[session - 1];
    if (s.finalized)
        return;
    ++faults_;
    COTERIE_COUNT("fleet.session_fault_confined");
    obs::flight::recordInstant("fleet.session_fault_confined", "fleet",
                               faultAt);
    // The run already quarantined itself (fetches cancelled, SLO label
    // frozen); the manager's half is cache claims + capacity release.
    finalizeSession(s, SessionPhase::Faulted, faultAt);
}

FleetResult
SessionManager::run()
{
    COTERIE_ASSERT(!ran_, "SessionManager::run() may be called once");
    ran_ = true;
    COTERIE_NAMED_SPAN(fleetSpan, "fleet.run", "core");
    queue_.runToCompletion();

    FleetResult out;
    out.admitted = admitted_;
    out.queuedAdmissions = queuedAdmissions_;
    out.rejected = rejected_;
    out.shedTransitions = shedTransitions_;
    out.degradeTransitions = degradeTransitions_;
    out.evictions = evictions_;
    out.faults = faults_;
    out.horizonMs = queue_.now();
    fleetSpan.simTimeMs(queue_.now());
    for (const auto &sp : sessions_) {
        FleetSessionReport r;
        r.id = sp->id;
        r.label = sp->run != nullptr ? sp->run->label()
                                     : sp->config.sessionTag;
        r.phase = sp->phase;
        r.result = std::move(sp->result);
        r.slo = sp->slo;
        r.shedLevel = sp->level;
        r.fleetRenders = sp->fleetRenders;
        r.faultReason = sp->faultReason;
        r.startedAtMs = sp->startedAtMs;
        r.finishedAtMs = sp->finishedAtMs;
        out.sessions.push_back(std::move(r));
    }
    out.panoCache = panoCache_->stats();
    return out;
}

} // namespace coterie::core
