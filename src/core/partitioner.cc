#include "core/partitioner.hh"

#include <algorithm>
#include <cmath>

#include "obs/clock.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "support/logging.hh"
#include "support/parallel.hh"
#include "support/rng.hh"

namespace coterie::core {

using geom::Rect;
using geom::Vec2;

namespace {

/** Modeled seconds per sampled cutoff on the paper's testbed: each
 *  sample binary-searches the radius with a handful of trial renders
 *  and render-time measurements on the device. */
constexpr double kModeledSecondsPerSample = 3.0;

struct BuildContext
{
    const world::VirtualWorld &world;
    const device::PhoneProfile &profile;
    const PartitionParams &params;
    Rng rng;
    std::vector<LeafRegion> leaves;
    std::uint64_t calculations = 0;
};

void
partitionRecursive(BuildContext &ctx, const Rect &rect, int depth)
{
    const PartitionParams &params = ctx.params;

    std::vector<double> radii;
    radii.reserve(params.samplesPerRegion);
    double density_acc = 0.0;
    bool reachable = true;
    // Rejection-sample reachable locations; if the region contains
    // none (e.g. off-track wilderness), fall back to unrestricted
    // samples and mark the leaf unreachable.
    std::vector<Vec2> samples;
    if (params.reachable) {
        const int budget = params.samplesPerRegion * 60;
        for (int tries = 0;
             tries < budget &&
             samples.size() <
                 static_cast<std::size_t>(params.samplesPerRegion);
             ++tries) {
            const Vec2 p{ctx.rng.uniform(rect.lo.x, rect.hi.x),
                         ctx.rng.uniform(rect.lo.y, rect.hi.y)};
            if (params.reachable(p))
                samples.push_back(p);
        }
        reachable = !samples.empty();
    }
    if (samples.empty()) {
        for (int i = 0; i < params.samplesPerRegion; ++i) {
            samples.push_back(Vec2{ctx.rng.uniform(rect.lo.x, rect.hi.x),
                                   ctx.rng.uniform(rect.lo.y, rect.hi.y)});
        }
    }
    // The K sampled cutoff searches are independent pure queries; fan
    // them out over the shared pool. Only the RNG draws above stay on
    // the caller thread, so leaf output is seed-for-seed identical at
    // any thread count (results are reduced in sample order).
    struct SampleEval
    {
        double radius = 0.0;
        double density = 0.0;
    };
    const auto evals = support::parallelMap<SampleEval>(
        static_cast<std::int64_t>(samples.size()), 1,
        [&](std::int64_t i) -> SampleEval {
            const Vec2 p = samples[static_cast<std::size_t>(i)];
            return {maxCutoffRadius(ctx.world, p, ctx.profile,
                                    params.constraint),
                    ctx.world.triangleDensity(p, 12.0)};
        },
        params.threads);
    for (const SampleEval &eval : evals) {
        radii.push_back(eval.radius);
        density_acc += eval.density;
        ++ctx.calculations;
    }
    const auto [min_it, max_it] =
        std::minmax_element(radii.begin(), radii.end());
    const double min_r = *min_it;
    const double max_r = *max_it;

    const bool uniform =
        depth >= params.minDepth &&
        (max_r - min_r) <=
            std::max(params.absoluteSlack, params.relativeSlack * max_r);
    const bool can_split =
        depth < params.maxDepth &&
        std::min(rect.width(), rect.height()) / 2.0 >= params.minRegionEdge;

    if (uniform || !can_split || !reachable) {
        LeafRegion leaf;
        leaf.id = static_cast<std::uint32_t>(ctx.leaves.size());
        leaf.rect = rect;
        leaf.depth = depth;
        // Conservative region-wide cutoff: sampled minimum with a
        // safety margin for unsampled denser spots.
        leaf.cutoffRadius =
            std::max(params.constraint.minRadius,
                     min_r * params.cutoffSafetyFactor);
        leaf.triangleDensity =
            density_acc / static_cast<double>(samples.size());
        leaf.reachable = reachable;
        ctx.leaves.push_back(leaf);
        return;
    }

    for (const Rect &quadrant : rect.quadrants())
        partitionRecursive(ctx, quadrant, depth + 1);
}

} // namespace

PartitionResult
partitionWorld(const world::VirtualWorld &world,
               const device::PhoneProfile &profile,
               const PartitionParams &params)
{
    COTERIE_SPAN("core.partition", "core");
    const obs::Stopwatch watch;
    PartitionParams effective = params;
    if (effective.minRegionEdge <= 0.0) {
        effective.minRegionEdge =
            std::min(world.bounds().width(), world.bounds().height()) /
            std::exp2(effective.maxDepth);
    }
    BuildContext ctx{world, profile, effective, Rng(params.seed), {}, 0};
    partitionRecursive(ctx, world.bounds(), 0);

    PartitionResult result;
    result.leaves = std::move(ctx.leaves);
    result.cutoffCalculations = ctx.calculations;
    double depth_acc = 0.0;
    for (const LeafRegion &leaf : result.leaves) {
        depth_acc += leaf.depth;
        result.maxLeafDepth = std::max(result.maxLeafDepth, leaf.depth);
    }
    result.avgLeafDepth =
        result.leaves.empty()
            ? 0.0
            : depth_acc / static_cast<double>(result.leaves.size());
    result.wallClockSeconds = watch.elapsedSeconds();
    result.modeledHours = static_cast<double>(result.cutoffCalculations) *
                          kModeledSecondsPerSample / 3600.0;
    COTERIE_COUNT_N("core.partition_leaves", result.leaves.size());
    COTERIE_OBSERVE("core.partition_ms", watch.elapsedMillis());
    return result;
}

RegionIndex::RegionIndex(Rect bounds, std::vector<LeafRegion> leaves)
    : bounds_(bounds), leaves_(std::move(leaves))
{
    COTERIE_ASSERT(!leaves_.empty(), "RegionIndex needs leaves");
    // Resolution: the finest leaf edge, bounded for memory.
    double finest = std::min(bounds.width(), bounds.height());
    for (const LeafRegion &leaf : leaves_)
        finest = std::min(finest,
                          std::min(leaf.rect.width(), leaf.rect.height()));
    const int max_cells = 1024;
    gridCols_ = std::clamp(
        static_cast<int>(std::ceil(bounds.width() / finest)), 1, max_cells);
    gridRows_ = std::clamp(
        static_cast<int>(std::ceil(bounds.height() / finest)), 1, max_cells);
    lookup_.assign(static_cast<std::size_t>(gridCols_) * gridRows_, 0);
    for (const LeafRegion &leaf : leaves_) {
        const auto x0 = static_cast<int>(
            (leaf.rect.lo.x - bounds.lo.x) / bounds.width() * gridCols_);
        const auto x1 = static_cast<int>(std::ceil(
            (leaf.rect.hi.x - bounds.lo.x) / bounds.width() * gridCols_));
        const auto y0 = static_cast<int>(
            (leaf.rect.lo.y - bounds.lo.y) / bounds.height() * gridRows_);
        const auto y1 = static_cast<int>(std::ceil(
            (leaf.rect.hi.y - bounds.lo.y) / bounds.height() * gridRows_));
        for (int y = std::max(0, y0); y < std::min(gridRows_, y1); ++y) {
            for (int x = std::max(0, x0); x < std::min(gridCols_, x1); ++x) {
                // Cells fully inside one leaf (quadtree cells align);
                // boundary cells resolve by center containment below.
                lookup_[static_cast<std::size_t>(y) * gridCols_ + x] =
                    leaf.id;
            }
        }
    }
}

const LeafRegion &
RegionIndex::leafAt(Vec2 p) const
{
    const Vec2 q = bounds_.clamp(p);
    auto cx = static_cast<int>((q.x - bounds_.lo.x) / bounds_.width() *
                               gridCols_);
    auto cy = static_cast<int>((q.y - bounds_.lo.y) / bounds_.height() *
                               gridRows_);
    cx = std::clamp(cx, 0, gridCols_ - 1);
    cy = std::clamp(cy, 0, gridRows_ - 1);
    const LeafRegion &guess =
        leaves_[lookup_[static_cast<std::size_t>(cy) * gridCols_ + cx]];
    if (guess.rect.containsClosed(q))
        return guess;
    // Boundary cell: fall back to a scan (rare).
    for (const LeafRegion &leaf : leaves_)
        if (leaf.rect.containsClosed(q))
            return leaf;
    return guess;
}

double
constraintViolationRate(const world::VirtualWorld &world,
                        const device::PhoneProfile &profile,
                        const RegionIndex &index,
                        const std::vector<Vec2> &locations,
                        const CutoffConstraint &constraint)
{
    if (locations.empty())
        return 0.0;
    std::size_t violations = 0;
    for (const Vec2 &p : locations) {
        const double cutoff = index.cutoffAt(p);
        if (nearBeRenderTimeMs(world, p, cutoff, profile) >=
            constraint.nearBudgetMs()) {
            ++violations;
        }
    }
    return static_cast<double>(violations) /
           static_cast<double>(locations.size());
}

} // namespace coterie::core
