#include "core/prefetcher.hh"

#include <algorithm>
#include <cmath>

#include "obs/trace.hh"

namespace coterie::core {

using geom::Vec2;
using world::GridPoint;

Prefetcher::Prefetcher(const world::VirtualWorld &world,
                       const world::GridMap &grid,
                       const RegionIndex &regions, PrefetcherParams params)
    : world_(world), grid_(grid), regions_(regions), params_(params)
{
}

std::vector<GridPoint>
Prefetcher::coverSet(GridPoint at, Vec2 exactPos, double dirRadians) const
{
    std::vector<GridPoint> out;
    const Vec2 dir = Vec2::fromAngle(dirRadians);
    const Vec2 lat = dir.perp();
    const double spacing = grid_.spacing();
    const Vec2 base = exactPos;
    for (int step = 1; step <= params_.lookaheadSteps; ++step) {
        for (int side = -params_.lateralSpread;
             side <= params_.lateralSpread; ++side) {
            const Vec2 p = base + dir * (spacing * step) +
                           lat * (spacing * side);
            const GridPoint g = grid_.snap(p);
            if (std::find_if(out.begin(), out.end(), [&](GridPoint q) {
                    return q == g;
                }) == out.end() &&
                !(g == at)) {
                out.push_back(g);
            }
        }
    }
    return out;
}

FrameCache::Key
Prefetcher::keyFor(GridPoint g) const
{
    FrameCache::Key key;
    key.gridKey = grid_.key(g);
    key.position = grid_.position(g);
    const LeafRegion &leaf = regions_.leafAt(key.position);
    key.leafRegionId = leaf.id;
    // Anchored signature: quantize the evaluation point so nearby grid
    // points agree on the (visually significant) near-BE object set.
    const double cell = params_.signatureCellM;
    const geom::Vec2 anchor{
        (std::floor(key.position.x / cell) + 0.5) * cell,
        (std::floor(key.position.y / cell) + 0.5) * cell};
    key.nearSetSignature =
        world_.nearSetSignature(anchor, leaf.cutoffRadius);
    return key;
}

std::vector<PrefetchTarget>
Prefetcher::resyncTargets(GridPoint at, Vec2 exactPos, FrameCache *cache,
                          const std::vector<double> &thresholds) const
{
    std::vector<GridPoint> pts;
    pts.push_back(at); // the current frame is the most urgent
    constexpr double kPi = 3.14159265358979323846;
    for (int k = 0; k < 8; ++k) {
        for (const GridPoint g :
             coverSet(at, exactPos, k * (kPi / 4.0))) {
            if (std::find_if(pts.begin(), pts.end(), [&](GridPoint q) {
                    return q == g;
                }) == pts.end()) {
                pts.push_back(g);
            }
        }
    }
    std::vector<PrefetchTarget> out;
    for (const GridPoint g : pts) {
        const FrameCache::Key key = keyFor(g);
        if (cache) {
            const double thresh =
                key.leafRegionId < thresholds.size()
                    ? thresholds[key.leafRegionId]
                    : 0.0;
            if (cache->lookup(key, thresh))
                continue;
        }
        out.push_back(PrefetchTarget{g, key.gridKey});
    }
    return out;
}

std::vector<PrefetchTarget>
Prefetcher::misses(GridPoint at, Vec2 exactPos, double dirRadians,
                   FrameCache *cache,
                   const std::vector<double> &thresholds) const
{
    COTERIE_SPAN("client.prefetch_misses", "core");
    std::vector<PrefetchTarget> out;
    for (const GridPoint g : coverSet(at, exactPos, dirRadians)) {
        const FrameCache::Key key = keyFor(g);
        if (cache) {
            const double thresh =
                key.leafRegionId < thresholds.size()
                    ? thresholds[key.leafRegionId]
                    : 0.0;
            if (cache->lookup(key, thresh))
                continue;
        }
        out.push_back(PrefetchTarget{g, key.gridKey});
    }
    return out;
}

} // namespace coterie::core
