#include "core/server.hh"

#include <algorithm>
#include <cmath>

#include "support/rng.hh"

namespace coterie::core {

using geom::Vec2;
using image::FrameContent;
using image::FrameSizeSpec;

FrameStore::FrameStore(const world::VirtualWorld &world,
                       const world::GridMap &grid,
                       const RegionIndex &regions, FrameStoreParams params)
    : world_(world), grid_(grid), regions_(regions), params_(params)
{
}

double
FrameStore::wholeComplexity(Vec2 p) const
{
    const LeafRegion &leaf = regions_.leafAt(p);
    const auto it = wholeCplx_.find(leaf.id);
    if (it != wholeCplx_.end())
        return it->second;
    // Whole-BE complexity: content density near the viewer dominates
    // the frame (perspective projection).
    // Object density plus terrain ruggedness (mountainous worlds carry
    // high-frequency texture everywhere, and encode large).
    const double density = world_.triangleDensity(p, 40.0);
    const double rugged = world_.terrain().params().amplitude;
    const double cplx = std::clamp(
        0.14 + 0.6 * density / params_.complexitySaturationDensity +
            0.012 * rugged,
        0.05, 1.0);
    wholeCplx_.emplace(leaf.id, cplx);
    return cplx;
}

double
FrameStore::farComplexity(Vec2 p) const
{
    const LeafRegion &leaf = regions_.leafAt(p);
    const auto it = farCplx_.find(leaf.id);
    if (it != farCplx_.end())
        return it->second;
    // Far-BE complexity: only content beyond the cutoff contributes,
    // and it projects smaller — flatter, more compressible frames.
    const double cutoff = leaf.cutoffRadius;
    const double far_density =
        world_.triangleDensity(p, std::max(cutoff * 4.0, 120.0));
    const double cplx = std::clamp(
        0.25 + 0.9 * far_density / params_.complexitySaturationDensity,
        0.05, 1.0);
    farCplx_.emplace(leaf.id, cplx);
    return cplx;
}

std::uint64_t
FrameStore::farBeBytes(world::GridPoint g) const
{
    const Vec2 p = grid_.position(g);
    FrameSizeSpec spec;
    spec.width = params_.panoWidth;
    spec.height = params_.panoHeight;
    spec.content = FrameContent::FarBE;
    spec.complexity = farComplexity(p);
    return image::modelFrameBytes(spec);
}

std::uint64_t
FrameStore::wholeBeBytes(world::GridPoint g) const
{
    const Vec2 p = grid_.position(g);
    FrameSizeSpec spec;
    spec.width = params_.panoWidth;
    spec.height = params_.panoHeight;
    spec.content = FrameContent::WholeBE;
    spec.complexity = wholeComplexity(p);
    return image::modelFrameBytes(spec);
}

std::uint64_t
FrameStore::fovFrameBytes(world::GridPoint g) const
{
    const Vec2 p = grid_.position(g);
    FrameSizeSpec spec;
    // Thin-client streams display-resolution frames (1920x1080).
    spec.width = 1920;
    spec.height = 1080;
    spec.content = FrameContent::FovFrame;
    spec.complexity = wholeComplexity(p);
    return image::modelFrameBytes(spec);
}

double
FrameStore::meanFarBeKb(int samples, std::uint64_t seed) const
{
    Rng rng(seed);
    double acc = 0.0;
    for (int i = 0; i < samples; ++i) {
        const world::GridPoint g{rng.uniformInt(0, grid_.cols() - 1),
                                 rng.uniformInt(0, grid_.rows() - 1)};
        acc += static_cast<double>(farBeBytes(g));
    }
    return acc / samples / 1024.0;
}

double
FrameStore::meanWholeBeKb(int samples, std::uint64_t seed) const
{
    Rng rng(seed);
    double acc = 0.0;
    for (int i = 0; i < samples; ++i) {
        const world::GridPoint g{rng.uniformInt(0, grid_.cols() - 1),
                                 rng.uniformInt(0, grid_.rows() - 1)};
        acc += static_cast<double>(wholeBeBytes(g));
    }
    return acc / samples / 1024.0;
}

} // namespace coterie::core
