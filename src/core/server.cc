#include "core/server.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "image/size_model.hh"
#include "obs/clock.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "support/parallel.hh"
#include "support/rng.hh"

namespace coterie::core {

using geom::Vec2;
using image::FrameContent;
using image::FrameSizeSpec;

namespace {

/** Stable identity of a world for panorama cache keys. */
std::uint64_t
worldTagOf(const world::VirtualWorld &world)
{
    std::uint64_t tag = hashMix(world.objects().size());
    for (const char c : world.name())
        tag = hashCombine(tag, hashMix(static_cast<std::uint64_t>(
                                   static_cast<unsigned char>(c))));
    return tag;
}

} // namespace

FrameStore::FrameStore(const world::VirtualWorld &world,
                       const world::GridMap &grid,
                       const RegionIndex &regions, FrameStoreParams params)
    : world_(world), grid_(grid), regions_(regions), params_(params),
      worldTag_(worldTagOf(world)),
      panoCache_(params_.sharedPanoCache
                     ? params_.sharedPanoCache
                     : std::make_shared<PanoramaRenderCache>(
                           params_.panoCacheBytes))
{
}

double
FrameStore::wholeComplexity(Vec2 p) const
{
    const LeafRegion &leaf = regions_.leafAt(p);
    {
        support::MutexLock lock(cplxMutex_);
        const auto it = wholeCplx_.find(leaf.id);
        if (it != wholeCplx_.end())
            return it->second;
    }
    // Whole-BE complexity: content density near the viewer dominates
    // the frame (perspective projection).
    // Object density plus terrain ruggedness (mountainous worlds carry
    // high-frequency texture everywhere, and encode large).
    // Sampled at the leaf's canonical point, never the query point:
    // the cache is keyed per leaf and first-writer-wins, so a value
    // derived from the query would make every later lookup depend on
    // which session (and on the parallel engine, which lane
    // interleaving) asked first.
    const double density = world_.triangleDensity(leaf.rect.center(), 40.0);
    const double rugged = world_.terrain().params().amplitude;
    const double cplx = std::clamp(
        0.14 + 0.6 * density / params_.complexitySaturationDensity +
            0.012 * rugged,
        0.05, 1.0);
    support::MutexLock lock(cplxMutex_);
    wholeCplx_.emplace(leaf.id, cplx);
    return cplx;
}

double
FrameStore::farComplexity(Vec2 p) const
{
    const LeafRegion &leaf = regions_.leafAt(p);
    {
        support::MutexLock lock(cplxMutex_);
        const auto it = farCplx_.find(leaf.id);
        if (it != farCplx_.end())
            return it->second;
    }
    // Far-BE complexity: only content beyond the cutoff contributes,
    // and it projects smaller — flatter, more compressible frames.
    // Canonical-point sampling for the same reason as wholeComplexity:
    // the per-leaf cache must hold a pure function of the leaf.
    const double cutoff = leaf.cutoffRadius;
    const double far_density = world_.triangleDensity(
        leaf.rect.center(), std::max(cutoff * 4.0, 120.0));
    const double cplx = std::clamp(
        0.25 + 0.9 * far_density / params_.complexitySaturationDensity,
        0.05, 1.0);
    support::MutexLock lock(cplxMutex_);
    farCplx_.emplace(leaf.id, cplx);
    return cplx;
}

std::uint64_t
FrameStore::farBeBytes(world::GridPoint g) const
{
    const Vec2 p = grid_.position(g);
    FrameSizeSpec spec;
    spec.width = params_.panoWidth;
    spec.height = params_.panoHeight;
    spec.content = FrameContent::FarBE;
    spec.complexity = farComplexity(p);
    return image::modelFrameBytes(spec);
}

std::uint64_t
FrameStore::wholeBeBytes(world::GridPoint g) const
{
    const Vec2 p = grid_.position(g);
    FrameSizeSpec spec;
    spec.width = params_.panoWidth;
    spec.height = params_.panoHeight;
    spec.content = FrameContent::WholeBE;
    spec.complexity = wholeComplexity(p);
    return image::modelFrameBytes(spec);
}

std::uint64_t
FrameStore::fovFrameBytes(world::GridPoint g) const
{
    const Vec2 p = grid_.position(g);
    FrameSizeSpec spec;
    // Thin-client streams display-resolution frames (1920x1080).
    spec.width = 1920;
    spec.height = 1080;
    spec.content = FrameContent::FovFrame;
    spec.complexity = wholeComplexity(p);
    return image::modelFrameBytes(spec);
}

PrerenderResult
FrameStore::prerenderFarBe(std::int64_t cellStride, int width, int height,
                           int threads) const
{
    COTERIE_SPAN("server.prerender_far_be", "core");
    const obs::Stopwatch watch;
    cellStride = std::max<std::int64_t>(1, cellStride);

    // Row-major list of the grid points this pass covers; the ordered
    // result vector below makes the byte total scheduling-independent.
    std::vector<world::GridPoint> points;
    for (std::int64_t iy = 0; iy < grid_.rows(); iy += cellStride)
        for (std::int64_t ix = 0; ix < grid_.cols(); ix += cellStride)
            points.push_back({ix, iy});

    const render::Renderer renderer(world_);
    const auto sizes = support::parallelMap<std::uint64_t>(
        static_cast<std::int64_t>(points.size()), 1,
        [&](std::int64_t i) -> std::uint64_t {
            const world::GridPoint g = points[static_cast<std::size_t>(i)];
            const Vec2 p = grid_.position(g);
            const double cutoff = regions_.cutoffAt(p);
            // Route through the render cache (grid-index key scheme:
            // pitchBits == 0). Within one pass every point is distinct,
            // so this is a pure de-dup across passes and against online
            // farBePanorama() requests that land on the same frame.
            PanoKey key;
            key.worldTag = worldTag_;
            key.qx = g.ix;
            key.qy = g.iy;
            key.cutoffBits = std::bit_cast<std::uint64_t>(cutoff);
            key.pitchBits = 0;
            key.width = width;
            key.height = height;
            const auto pano = panoCache_->getOrRender(key, [&] {
                render::RenderOptions opts;
                opts.layer = render::DepthLayer::farBe(cutoff);
                // Nested render parallelism collapses inline on the
                // pool, so each grid point is one task end to end.
                return renderer.renderPanorama(world_.eyePosition(p),
                                               width, height, opts);
            });
            return image::encode(*pano).sizeBytes();
        },
        threads);

    PrerenderResult result;
    result.frames = sizes.size();
    for (std::uint64_t bytes : sizes)
        result.encodedBytes += bytes;
    result.wallSeconds = watch.elapsedSeconds();
    // Fan-out accounting for the offline pre-render pass (Table 3's
    // server-side budget): frames dispatched and bytes produced.
    COTERIE_COUNT_N("server.prerender_frames", result.frames);
    COTERIE_COUNT_N("server.prerender_bytes", result.encodedBytes);
    COTERIE_OBSERVE("server.prerender_ms", watch.elapsedMillis());
    return result;
}

FrameStore::FarBeLookup
FrameStore::farBeLookup(Vec2 pos, double distThresh, int width,
                        int height) const
{
    // Quantize the FI location: positions within `pitch` of each other
    // are "similar enough" to share a far-BE frame (the background
    // changes imperceptibly below the distance threshold). Grid spacing
    // is the floor so cells are never finer than the prerender grid.
    const geom::Rect &b = world_.bounds();
    const double pitch = std::max(distThresh, grid_.spacing());
    const auto qx =
        static_cast<std::int64_t>(std::floor((pos.x - b.lo.x) / pitch));
    const auto qy =
        static_cast<std::int64_t>(std::floor((pos.y - b.lo.y) / pitch));
    // Every position in the cell renders from the cell's representative
    // point, clamped into bounds (edge cells overhang the world).
    const Vec2 rep{std::clamp(b.lo.x + (qx + 0.5) * pitch, b.lo.x, b.hi.x),
                   std::clamp(b.lo.y + (qy + 0.5) * pitch, b.lo.y, b.hi.y)};
    const double cutoff = regions_.cutoffAt(rep);

    FarBeLookup lookup;
    lookup.rep = rep;
    lookup.cutoff = cutoff;
    lookup.key.worldTag = worldTag_;
    lookup.key.qx = qx;
    lookup.key.qy = qy;
    lookup.key.cutoffBits = std::bit_cast<std::uint64_t>(cutoff);
    lookup.key.pitchBits = std::bit_cast<std::uint64_t>(pitch);
    lookup.key.width = width;
    lookup.key.height = height;
    return lookup;
}

image::Image
FrameStore::renderFarBe(const FarBeLookup &lookup, int threads) const
{
    const render::Renderer renderer(world_);
    render::RenderOptions opts;
    opts.layer = render::DepthLayer::farBe(lookup.cutoff);
    opts.threads = threads;
    return renderer.renderPanorama(world_.eyePosition(lookup.rep),
                                   lookup.key.width, lookup.key.height,
                                   opts);
}

std::shared_ptr<const image::Image>
FrameStore::farBePanorama(Vec2 pos, double distThresh, int width,
                          int height, int threads,
                          obs::FrameTraceContext *trace,
                          std::uint32_t cacheOwner) const
{
    const FarBeLookup lookup =
        farBeLookup(pos, distThresh, width, height);
    return panoCache_->getOrRender(
        lookup.key, [&] { return renderFarBe(lookup, threads); }, trace,
        cacheOwner);
}

double
FrameStore::meanFarBeKb(int samples, std::uint64_t seed) const
{
    Rng rng(seed);
    double acc = 0.0;
    for (int i = 0; i < samples; ++i) {
        const world::GridPoint g{rng.uniformInt(0, grid_.cols() - 1),
                                 rng.uniformInt(0, grid_.rows() - 1)};
        acc += static_cast<double>(farBeBytes(g));
    }
    return acc / samples / 1024.0;
}

double
FrameStore::meanWholeBeKb(int samples, std::uint64_t seed) const
{
    Rng rng(seed);
    double acc = 0.0;
    for (int i = 0; i < samples; ++i) {
        const world::GridPoint g{rng.uniformInt(0, grid_.cols() - 1),
                                 rng.uniformInt(0, grid_.rows() - 1)};
        acc += static_cast<double>(wholeBeBytes(g));
    }
    return acc / samples / 1024.0;
}

} // namespace coterie::core
