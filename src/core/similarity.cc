#include "core/similarity.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/logging.hh"
#include "support/rng.hh"

namespace coterie::core {

using geom::Vec2;

RenderedSimilarity::RenderedSimilarity(const world::VirtualWorld &world,
                                       int panoWidth, int panoHeight)
    : world_(world), renderer_(world), width_(panoWidth),
      height_(panoHeight)
{
}

image::Image
RenderedSimilarity::renderFarBe(Vec2 p, double cutoff) const
{
    render::RenderOptions opts;
    opts.layer = render::DepthLayer::farBe(cutoff);
    return renderer_.renderPanorama(world_.eyePosition(p), width_, height_,
                                    opts);
}

image::Image
RenderedSimilarity::renderWholeBe(Vec2 p) const
{
    render::RenderOptions opts;
    opts.layer = render::DepthLayer::whole();
    return renderer_.renderPanorama(world_.eyePosition(p), width_, height_,
                                    opts);
}

double
RenderedSimilarity::farBeSsim(Vec2 a, Vec2 b, double cutoff) const
{
    const image::Image fa = cutoff > 0.0 ? renderFarBe(a, cutoff)
                                         : renderWholeBe(a);
    const image::Image fb = cutoff > 0.0 ? renderFarBe(b, cutoff)
                                         : renderWholeBe(b);
    return image::ssim(fa, fb);
}

double
AnalyticSimilarity::farBeSsim(Vec2 a, Vec2 b, double cutoff) const
{
    const double d = a.distance(b);
    if (d <= 0.0)
        return 1.0;
    const double radius = std::max(cutoff, params_.minRadius);
    const double x = d / radius;
    return params_.floor +
           (1.0 - params_.floor) *
               std::exp(-params_.decay * std::pow(x, params_.alpha));
}

double
AnalyticSimilarity::maxDisplacement(double cutoff, double threshold) const
{
    COTERIE_ASSERT(threshold > params_.floor && threshold < 1.0,
                   "threshold outside the model's range");
    const double radius = std::max(cutoff, params_.minRadius);
    const double y =
        std::log((1.0 - params_.floor) / (threshold - params_.floor));
    return radius * std::pow(y / params_.decay, 1.0 / params_.alpha);
}

AnalyticSimilarityParams
calibrateAnalytic(const world::VirtualWorld &world,
                  const std::vector<double> &cutoffs, int samplesPerCutoff,
                  std::uint64_t seed,
                  const std::function<bool(geom::Vec2)> &reachable)
{
    RenderedSimilarity rendered(world);
    Rng rng(seed);
    AnalyticSimilarityParams params;

    // Sample pairs across cutoffs and displacements near the decision
    // region (SSIM ~0.8-0.98); robust median fit of decay in the
    // stretched-exponential domain with alpha held at its default.
    // (A least-squares fit lets a few dense-content samples drag the
    // global decay up, collapsing reuse distances everywhere.)
    std::vector<double> estimates;
    const geom::Rect &b = world.bounds();
    for (double cutoff : cutoffs) {
        for (int i = 0; i < samplesPerCutoff; ++i) {
            const double margin = std::min({cutoff, b.width() / 4,
                                            b.height() / 4});
            Vec2 a{rng.uniform(b.lo.x + margin, b.hi.x - margin),
                   rng.uniform(b.lo.y + margin, b.hi.y - margin)};
            if (reachable) {
                for (int tries = 0; tries < 200 && !reachable(a);
                     ++tries) {
                    a = Vec2{rng.uniform(b.lo.x + margin, b.hi.x - margin),
                             rng.uniform(b.lo.y + margin, b.hi.y - margin)};
                }
            }
            const double x_target = rng.uniform(0.01, 0.25);
            const double d = x_target * std::max(cutoff,
                                                 params.minRadius);
            const double theta = rng.uniform(0.0, 2.0 * M_PI);
            const Vec2 p2 = a + Vec2::fromAngle(theta) * d;
            const double s = rendered.farBeSsim(a, p2, cutoff);
            const double clamped =
                std::clamp(s, params.floor + 0.01, 0.999);
            const double y = -std::log((clamped - params.floor) /
                                       (1.0 - params.floor));
            const double x =
                std::pow(d / std::max(cutoff, params.minRadius),
                         params.alpha);
            if (x > 1e-9)
                estimates.push_back(y / x);
        }
    }
    if (!estimates.empty()) {
        std::nth_element(estimates.begin(),
                         estimates.begin() + estimates.size() / 2,
                         estimates.end());
        params.decay = std::clamp(
            estimates[estimates.size() / 2], 0.2, 40.0);
    }
    return params;
}

} // namespace coterie::core
