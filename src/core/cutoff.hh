/**
 * @file
 * Near/far BE cutoff-radius computation (paper §4.3).
 *
 * Constraint 1: RT_FI + RT_nearBE < 16.7 ms. For a given location the
 * maximal cutoff radius is the largest radius whose near-BE render time
 * on the target device still meets the constraint; render time is
 * monotone in the radius, so a bracketed binary search suffices.
 */

#pragma once

#include "device/phone.hh"
#include "world/world.hh"

namespace coterie::core {

/** Constraint-1 budget parameters. */
struct CutoffConstraint
{
    double frameBudgetMs = 1000.0 / 60.0; ///< 16.7 ms for 60 FPS
    /**
     * Measured upper bound on FI render time for the app on the target
     * device (paper: well below 4 ms on Pixel 2 for the study apps).
     */
    double rtFiMs = 4.0;
    /** Smallest cutoff ever returned (a degenerate near BE). */
    double minRadius = 0.5;
    /** Search ceiling; clamped further by the world diagonal. */
    double maxRadius = 180.0;

    /**
     * Fraction of the remaining budget the offline tool actually
     * targets. A production deployment leaves headroom for render-time
     * jitter (the paper's measured Coterie GPU load of 39-58% implies
     * the same margin).
     */
    double utilizationTarget = 0.65;

    /** Near-BE render budget: (16.7 - RT_FI) * margin (Equation 1). */
    double
    nearBudgetMs() const
    {
        return (frameBudgetMs - rtFiMs) * utilizationTarget;
    }
};

/** Near-BE render time at @p location with @p cutoff (Constraint 1 LHS). */
double nearBeRenderTimeMs(const world::VirtualWorld &world,
                          geom::Vec2 location, double cutoff,
                          const device::PhoneProfile &profile);

/**
 * Largest cutoff radius at @p location satisfying Constraint 1 on
 * @p profile; binary search to within @p tolerance meters.
 */
double maxCutoffRadius(const world::VirtualWorld &world, geom::Vec2 location,
                       const device::PhoneProfile &profile,
                       const CutoffConstraint &constraint = {},
                       double tolerance = 0.25);

} // namespace coterie::core

