/**
 * @file
 * Far-BE frame-similarity models.
 *
 * RenderedSimilarity actually renders far-BE panoramas with the
 * software renderer and computes SSIM — the ground truth used by the
 * similarity experiments (Figures 1, 2, 5).
 *
 * AnalyticSimilarity is a closed-form surrogate — SSIM decays with the
 * angular displacement d / cutoff of the nearest far-BE content — used
 * by the large-scale caching and end-to-end experiments where rendering
 * every lookup would be wasteful. Its constants are calibrated against
 * RenderedSimilarity (see calibrateAnalytic and the similarity tests).
 */

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "image/ssim.hh"
#include "render/renderer.hh"
#include "world/world.hh"

namespace coterie::core {

/** Abstract far-BE similarity oracle. */
class SimilarityModel
{
  public:
    virtual ~SimilarityModel() = default;

    /**
     * SSIM between the far-BE panoramas rendered at ground positions
     * @p a and @p b with the given cutoff radius.
     */
    virtual double farBeSsim(geom::Vec2 a, geom::Vec2 b,
                             double cutoff) const = 0;
};

/** Renders real frames; exact but expensive. */
class RenderedSimilarity final : public SimilarityModel
{
  public:
    RenderedSimilarity(const world::VirtualWorld &world, int panoWidth = 192,
                       int panoHeight = 96);

    double farBeSsim(geom::Vec2 a, geom::Vec2 b,
                     double cutoff) const override;

    /** Render the far-BE panorama at @p p (exposed for experiments). */
    image::Image renderFarBe(geom::Vec2 p, double cutoff) const;

    /** Render the whole-BE panorama at @p p (cutoff 0). */
    image::Image renderWholeBe(geom::Vec2 p) const;

  private:
    const world::VirtualWorld &world_;
    render::Renderer renderer_;
    int width_, height_;
};

/** Parameters of the analytic decay model. */
struct AnalyticSimilarityParams
{
    /** SSIM floor for completely decorrelated views of the same area. */
    double floor = 0.15;
    /**
     * Stretched-exponential decay fit to rendered SSIM:
     * ssim = floor + (1-floor) * exp(-decay * (d/R)^alpha).
     */
    double decay = 1.5;
    double alpha = 0.75;
    /** Effective minimum radius (whole-BE has near content at ~eye
     *  height distance). */
    double minRadius = 0.8;
};

/** Closed-form surrogate. */
class AnalyticSimilarity final : public SimilarityModel
{
  public:
    explicit AnalyticSimilarity(AnalyticSimilarityParams params = {})
        : params_(params)
    {
    }

    double farBeSsim(geom::Vec2 a, geom::Vec2 b,
                     double cutoff) const override;

    /**
     * Largest displacement d with farBeSsim >= @p threshold at cutoff
     * @p R (closed-form inverse; the dist-thresh search cross-checks
     * against this).
     */
    double maxDisplacement(double cutoff, double threshold) const;

    const AnalyticSimilarityParams &params() const { return params_; }

  private:
    AnalyticSimilarityParams params_;
};

/**
 * Fit AnalyticSimilarityParams::decay against rendered SSIM samples at
 * @p nSamples random location pairs of @p world (least-squares in the
 * log domain). floor is taken from the most-distant pairs.
 */
AnalyticSimilarityParams
calibrateAnalytic(const world::VirtualWorld &world,
                  const std::vector<double> &cutoffs, int samplesPerCutoff = 6,
                  std::uint64_t seed = 5,
                  const std::function<bool(geom::Vec2)> &reachable = {});

} // namespace coterie::core

