#include "core/offline_io.hh"

#include <cstdio>

namespace coterie::core {

namespace {

constexpr int kFormatVersion = 1;

} // namespace

bool
saveArtifacts(const OfflineArtifacts &artifacts, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "coterie-offline %d\n", kFormatVersion);
    std::fprintf(f, "game %s\ndevice %s\n", artifacts.game.c_str(),
                 artifacts.device.c_str());
    std::fprintf(f, "bounds %.9g %.9g %.9g %.9g\n",
                 artifacts.worldBounds.lo.x, artifacts.worldBounds.lo.y,
                 artifacts.worldBounds.hi.x, artifacts.worldBounds.hi.y);
    std::fprintf(f, "leaves %zu\n", artifacts.leaves.size());
    for (std::size_t i = 0; i < artifacts.leaves.size(); ++i) {
        const LeafRegion &leaf = artifacts.leaves[i];
        const double thresh = i < artifacts.distThresholds.size()
                                  ? artifacts.distThresholds[i]
                                  : 0.0;
        std::fprintf(f,
                     "%u %.9g %.9g %.9g %.9g %d %.9g %.9g %d %.9g\n",
                     leaf.id, leaf.rect.lo.x, leaf.rect.lo.y,
                     leaf.rect.hi.x, leaf.rect.hi.y, leaf.depth,
                     leaf.cutoffRadius, leaf.triangleDensity,
                     leaf.reachable ? 1 : 0, thresh);
    }
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    return ok;
}

std::optional<OfflineArtifacts>
loadArtifacts(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return std::nullopt;
    const auto fail = [&]() -> std::optional<OfflineArtifacts> {
        std::fclose(f);
        return std::nullopt;
    };

    char magic[32] = {};
    int version = 0;
    if (std::fscanf(f, "%31s %d", magic, &version) != 2 ||
        std::string(magic) != "coterie-offline" ||
        version != kFormatVersion) {
        return fail();
    }

    OfflineArtifacts artifacts;
    char word[16] = {}, name[256] = {};
    if (std::fscanf(f, "%15s %255s", word, name) != 2 ||
        std::string(word) != "game")
        return fail();
    artifacts.game = name;
    if (std::fscanf(f, "%15s %255[^\n]", word, name) != 2 ||
        std::string(word) != "device")
        return fail();
    artifacts.device = name;

    if (std::fscanf(f, "%15s %lf %lf %lf %lf", word,
                    &artifacts.worldBounds.lo.x,
                    &artifacts.worldBounds.lo.y,
                    &artifacts.worldBounds.hi.x,
                    &artifacts.worldBounds.hi.y) != 5 ||
        std::string(word) != "bounds")
        return fail();

    std::size_t count = 0;
    if (std::fscanf(f, "%15s %zu", word, &count) != 2 ||
        std::string(word) != "leaves" || count > 10'000'000)
        return fail();

    artifacts.leaves.reserve(count);
    artifacts.distThresholds.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        LeafRegion leaf;
        int reachable = 1;
        double thresh = 0.0;
        if (std::fscanf(f, "%u %lf %lf %lf %lf %d %lf %lf %d %lf",
                        &leaf.id, &leaf.rect.lo.x, &leaf.rect.lo.y,
                        &leaf.rect.hi.x, &leaf.rect.hi.y, &leaf.depth,
                        &leaf.cutoffRadius, &leaf.triangleDensity,
                        &reachable, &thresh) != 10) {
            return fail();
        }
        leaf.reachable = reachable != 0;
        artifacts.leaves.push_back(leaf);
        artifacts.distThresholds.push_back(thresh);
    }
    std::fclose(f);
    return artifacts;
}

} // namespace coterie::core
