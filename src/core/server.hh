/**
 * @file
 * Coterie server: offline pre-rendering and per-grid-point encoded
 * frame metadata.
 *
 * The real server pre-renders and x264-encodes a panoramic far-BE frame
 * for every reachable grid point. At simulation scale we expose the two
 * things the online system consumes: encoded frame *sizes* (from the
 * calibrated H.264 size model, with per-region content complexity) and
 * on-demand *actual frames* (from the software renderer) for the
 * visual-quality experiments.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "core/pano_cache.hh"
#include "core/partitioner.hh"
#include "image/codec.hh"
#include "render/renderer.hh"
#include "support/thread_annotations.hh"
#include "world/grid.hh"

namespace coterie::core {

/** Frame catalogue configuration. */
struct FrameStoreParams
{
    int panoWidth = 3840;  ///< the paper's 4K panoramas
    int panoHeight = 2160;
    /** Density (tri/m^2) that saturates content complexity at 1.0. */
    double complexitySaturationDensity = 2500.0;
    /** Byte budget for the de-duplicating panorama render cache
     *  (ignored when sharedPanoCache is set). */
    std::size_t panoCacheBytes = 256ull << 20;
    /**
     * Optional externally owned render cache. A fleet passes one
     * cache to every session's FrameStore so same-world sessions
     * share renders (keys carry the world tag, so distinct worlds
     * can never collide); null = a private cache of panoCacheBytes,
     * the pre-fleet behaviour.
     */
    std::shared_ptr<PanoramaRenderCache> sharedPanoCache;
};

/** Aggregate result of an offline pre-render + encode pass. */
struct PrerenderResult
{
    std::uint64_t frames = 0;       ///< panoramas rendered + encoded
    std::uint64_t encodedBytes = 0; ///< total encoded payload
    double wallSeconds = 0.0;
};

/**
 * Pre-rendered frame catalogue over one world + grid + partition.
 * Sizes are deterministic per grid point.
 */
class FrameStore
{
  public:
    FrameStore(const world::VirtualWorld &world, const world::GridMap &grid,
               const RegionIndex &regions, FrameStoreParams params = {});

    /**
     * The install-time offline pass: render the far-BE panorama at
     * every @p cellStride-th grid point (cutoff taken from the point's
     * leaf region) and encode it, with grid points fanned out over the
     * shared thread pool. @p width/@p height size the panoramas (the
     * real server renders at panoWidth x panoHeight; callers pick a
     * reduced resolution for experiments). Deterministic: per-point
     * encoded sizes are reduced in row-major grid order regardless of
     * thread count (@p threads: 0 = pool, 1 = serial).
     */
    PrerenderResult prerenderFarBe(std::int64_t cellStride, int width,
                                   int height, int threads = 0) const;

    /**
     * The far-BE panorama a client standing at @p pos receives, through
     * the de-duplicating render cache: positions within the same
     * quantization cell (pitch = max(@p distThresh, grid spacing) —
     * the paper's FI-location similarity radius) share one cached
     * render keyed by the cell's representative point. Concurrent
     * first requests single-flight; @p threads as in prerenderFarBe.
     * @p trace (optional) stamps the cache outcome — CacheLookup /
     * CacheJoin / Render — into the caller's causal frame record.
     * @p cacheOwner charges the render to a fleet session for
     * eviction accounting (see PanoramaRenderCache::getOrRender).
     */
    std::shared_ptr<const image::Image>
    farBePanorama(geom::Vec2 pos, double distThresh, int width, int height,
                  int threads = 0,
                  obs::FrameTraceContext *trace = nullptr,
                  std::uint32_t cacheOwner = 0) const;

    /**
     * A fully-resolved online far-BE lookup: the cache key plus the
     * render inputs it maps to. Splitting resolution from rendering
     * lets batched callers (the parallel fleet's barrier render pass)
     * make all cache decisions serially in a deterministic order and
     * run only the actual renders in parallel.
     */
    struct FarBeLookup
    {
        PanoKey key;
        geom::Vec2 rep;     ///< cell representative eye position
        double cutoff = 0.0; ///< far-BE cutoff radius at rep
    };

    /** Resolve the lookup farBePanorama(pos, ...) would perform. */
    FarBeLookup farBeLookup(geom::Vec2 pos, double distThresh, int width,
                            int height) const;

    /** Render the panorama a resolved lookup describes (cache-free;
     *  the caller owns publication). @p threads as in prerenderFarBe. */
    image::Image renderFarBe(const FarBeLookup &lookup,
                             int threads = 0) const;

    /** Render-cache effectiveness counters (hits, misses, joins, ...). */
    PanoCacheStats panoCacheStats() const { return panoCache_->stats(); }

    /** The render cache itself (shared across a fleet when injected). */
    PanoramaRenderCache &panoCache() const { return *panoCache_; }

    /** World identity folded into every render-cache key. */
    std::uint64_t worldTag() const { return worldTag_; }

    /** Encoded far-BE frame size at a grid point (bytes). */
    std::uint64_t farBeBytes(world::GridPoint g) const;

    /** Encoded whole-BE frame size (Furion-style) at a grid point. */
    std::uint64_t wholeBeBytes(world::GridPoint g) const;

    /** Encoded per-eye FoV frame size (Thin-client). */
    std::uint64_t fovFrameBytes(world::GridPoint g) const;

    /** Mean sizes over sampled grid points (for reporting). */
    double meanFarBeKb(int samples = 256, std::uint64_t seed = 3) const;
    double meanWholeBeKb(int samples = 256, std::uint64_t seed = 3) const;

    const world::GridMap &grid() const { return grid_; }
    const RegionIndex &regions() const { return regions_; }
    const world::VirtualWorld &world() const { return world_; }
    const FrameStoreParams &params() const { return params_; }

  private:
    /** Content complexity in [0,1] for the far / whole layer at g. */
    double farComplexity(geom::Vec2 p) const;
    double wholeComplexity(geom::Vec2 p) const;

    const world::VirtualWorld &world_;
    const world::GridMap &grid_;
    const RegionIndex &regions_;
    FrameStoreParams params_;
    /** World identity folded into every cache key. */
    std::uint64_t worldTag_;
    /** De-dups far-BE panorama renders (internally synchronized).
     *  Either injected (fleet-shared) or privately owned. */
    std::shared_ptr<PanoramaRenderCache> panoCache_;
    /**
     * Complexity cached per leaf region (cheap, stable, deterministic —
     * the cached value never depends on which thread computed it).
     * Guarded so size queries may run from pool tasks.
     */
    mutable support::Mutex cplxMutex_{"FrameStore::cplxMutex_"};
    mutable std::unordered_map<std::uint32_t, double>
        farCplx_ COTERIE_GUARDED_BY(cplxMutex_);
    mutable std::unordered_map<std::uint32_t, double>
        wholeCplx_ COTERIE_GUARDED_BY(cplxMutex_);
};

} // namespace coterie::core

